module coherdb

go 1.22
