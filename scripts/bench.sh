#!/bin/sh
# bench.sh — gate the solver/SQL hot paths, then run the benchmarks with
# -benchmem and emit a compact JSON summary (name, ns/op, B/op, allocs/op)
# for revision-over-revision diffing.
#
# Usage:
#   scripts/bench.sh                 # default pattern and output file
#   scripts/bench.sh 'Benchmark.*'   # custom -bench pattern
#   BENCH_OUT=out.json scripts/bench.sh
#
# Before benchmarking, the script fails loudly (non-zero exit) if `go vet`
# or the race-detector runs fail: compiled constraint kernels are shared
# across solver workers, the morsel-parallel executor shares one pool and
# plan cache across concurrent statements, and every table now encodes
# into one process-wide dictionary whose decode side is lock-free — a racy
# hot path must never produce a green benchmark report.
#
# The default pattern covers the generation-sensitive benchmarks (the
# compiled-kernel solver on table D and the Fig. 3 incremental sweep)
# plus the planner-sensitive ones: the invariant suite (the paper's
# every-revision workload), the substrate SELECT/JOIN microbenchmarks,
# the prepared-statement floor, the EXPLAIN ANALYZE pair (plain vs
# instrumented execution of the same join), the scalar-vs-vectorized
# filter pair, the segment pack/unpack throughput, the out-of-core
# state-exploration trio (in-memory vs segmented vs spilled at a fixed
# memory budget, with states and bytes/state as extra metrics), and the
# multi-session server under reader/writer interference
# (BenchmarkServerQPS: ns/op is per-statement latency across concurrent
# line-protocol clients, p99-ns its tail). The race gates also cover
# the lock-free metrics plane, the segment store and the
# segmented-vs-serial model-checker equivalence, the
# vectorized-vs-scalar equivalence suites, the MVCC epoch/catalog layer
# and the query server (concurrent sessions, admission, drain), and
# TestNilTracerOverheadBound enforces the <5% off-path instrumentation
# budget before any number is recorded.
#
# After writing the summary, the script diffs it against the previous
# revision's baseline (BENCH_BASELINE, default BENCH_9.json) and prints a
# WARNING line for every benchmark whose ns/op or B/op regressed by more
# than 10%. The warnings are advisory (the script still exits 0): some
# hosts are noisy, and the acceptance gate reads the warnings, not the
# exit code.
set -eu

cd "$(dirname "$0")/.."

PATTERN="${1:-BenchmarkGenerateDirectoryD$|BenchmarkGenerateIncremental$|BenchmarkInvariantSuite$|BenchmarkInvariantSuiteSerial$|BenchmarkDeltaRecheck$|BenchmarkSQLSelectWhere$|BenchmarkSQLJoin$|BenchmarkSQLPreparedSelect$|BenchmarkExplainAnalyzeOverhead$|BenchmarkVectorizedFilter|BenchmarkStateExplore|BenchmarkSegmentPack}"
SERVER_PATTERN="${BENCH_SERVER_PATTERN:-BenchmarkServerQPS$}"
OUT="${BENCH_OUT:-BENCH_10.json}"
BASELINE="${BENCH_BASELINE:-BENCH_9.json}"
RAW="$(mktemp)"
trap 'rm -f "$RAW"' EXIT

echo "== go vet ./... =="
go vet ./...

echo "== race-detector storage-engine tests =="
go test -race ./internal/rel/...

echo "== race-detector solver tests =="
go test -race -run 'TestSolve|TestMonolithic|TestConcurrentSolves|TestQuickSolveEqualsMonolithic|TestBatchCursor|TestCompiledPredConcurrentUse|TestVectorizedSweepMatchesScalar' \
    ./internal/constraint/ ./internal/sqlmini/

echo "== race-detector parallel-executor tests =="
go test -race -run 'TestParallelMatchesSerial|TestParallelMatchesSerialControllers|TestConcurrentParallelSelects|TestParallelWorkerStats|TestEach' \
    ./internal/pool/ ./internal/sqlmini/

echo "== race-detector vectorized-equivalence tests =="
go test -race -run 'TestVectorizedMatchesScalarControllers|TestVecPredMatchesScalarKernel|TestSweepVecMatchesScalarSweep' \
    ./internal/sqlmini/

echo "== race-detector observability tests =="
go test -race ./internal/obs/...

echo "== race-detector delta-tracking tests =="
go test -race ./internal/delta/...

echo "== race-detector incremental-recheck equivalence =="
go test -race -run 'TestEditScriptEquivalence' ./internal/check/

echo "== race-detector segment-store tests =="
go test -race ./internal/segment/

echo "== race-detector segmented model-checker equivalence =="
go test -race -run 'TestSegmented|TestStateCodecMatchesFingerprint|TestTraceLogOutOfCore' \
    ./internal/modelcheck/ ./internal/sim/

echo "== race-detector MVCC catalog + session tests =="
go test -race -run 'TestCatalog|TestConcurrentSnapshotReaders|TestCarryIndexes|TestConcurrentSessions|TestSessionOverlay' \
    ./internal/rel/ ./internal/sqlmini/

echo "== race-detector query-server tests =="
go test -race ./internal/server/...

echo "== nil-tracer overhead bound (<5%) =="
go test -run 'TestNilTracerOverheadBound' -count=1 .

echo "== benchmarks =="
go test -run '^$' -bench "$PATTERN" -benchmem . | tee "$RAW"

echo "== server benchmarks =="
go test -run '^$' -bench "$SERVER_PATTERN" -benchmem ./internal/server/ | tee -a "$RAW"

# Benchmark lines look like:
#   BenchmarkSQLJoin   2422   495743 ns/op   171253 B/op   2531 allocs/op
# BenchmarkServerQPS also reports a p99-ns tail-latency metric.
awk '
/^Benchmark/ && /ns\/op/ {
    name = $1
    sub(/-[0-9]+$/, "", name)   # strip the -GOMAXPROCS suffix
    ns = ""; bytes = ""; allocs = ""; p99 = ""
    for (i = 2; i <= NF; i++) {
        if ($i == "ns/op")     ns = $(i - 1)
        if ($i == "B/op")      bytes = $(i - 1)
        if ($i == "allocs/op") allocs = $(i - 1)
        if ($i == "p99-ns")    p99 = $(i - 1)
    }
    if (ns == "") next
    if (out != "") out = out ",\n"
    out = out sprintf("  {\"name\": \"%s\", \"ns_per_op\": %s, \"bytes_per_op\": %s, \"allocs_per_op\": %s",
        name, ns, bytes == "" ? "null" : bytes, allocs == "" ? "null" : allocs)
    if (p99 != "") out = out sprintf(", \"p99_ns\": %s", p99)
    out = out "}"
}
END { printf "[\n%s\n]\n", out }
' "$RAW" > "$OUT"

echo "wrote $OUT"

if [ -f "$BASELINE" ] && [ "$BASELINE" != "$OUT" ]; then
    echo "== regression check vs $BASELINE (warn > 10% ns/op or B/op) =="
    awk -v base="$BASELINE" '
    function parse(file, ns, by,   line, name, v) {
        while ((getline line < file) > 0) {
            if (line !~ /"name"/) continue
            name = line; sub(/.*"name": "/, "", name); sub(/".*/, "", name)
            v = line; sub(/.*"ns_per_op": /, "", v); sub(/[,}].*/, "", v)
            ns[name] = v + 0
            if (line ~ /"bytes_per_op": [0-9]/) {
                v = line; sub(/.*"bytes_per_op": /, "", v); sub(/[,}].*/, "", v)
                by[name] = v + 0
            }
        }
        close(file)
    }
    function warn(metric, name, o, n) {
        printf "WARNING: %s regressed %.1f%% %s (%.0f -> %.0f)\n",
            name, 100 * (n / o - 1), metric, o, n
    }
    BEGIN {
        parse(base, oldns, oldby)
        parse(ARGV[1], newns, newby)
        warned = 0
        for (name in newns) {
            if ((name in oldns) && oldns[name] > 0 && newns[name] / oldns[name] > 1.10) {
                warn("ns/op", name, oldns[name], newns[name])
                warned = 1
            }
            if ((name in oldby) && oldby[name] > 0 && (name in newby) && newby[name] / oldby[name] > 1.10) {
                warn("B/op", name, oldby[name], newby[name])
                warned = 1
            }
        }
        if (!warned) print "no benchmark regressed more than 10% vs " base
        exit 0
    }
    ' "$OUT"
fi
