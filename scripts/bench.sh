#!/bin/sh
# bench.sh — gate the solver/SQL hot paths, then run the benchmarks with
# -benchmem and emit a compact JSON summary (name, ns/op, allocs/op) for
# revision-over-revision diffing.
#
# Usage:
#   scripts/bench.sh                 # default pattern and output file
#   scripts/bench.sh 'Benchmark.*'   # custom -bench pattern
#   BENCH_OUT=out.json scripts/bench.sh
#
# Before benchmarking, the script fails loudly (non-zero exit) if `go vet`
# or the race-detector run of the parallel solver tests fails — compiled
# constraint kernels are shared across solver workers, so a racy kernel
# must never produce a green benchmark report.
#
# The default pattern covers the generation-sensitive benchmarks (the
# compiled-kernel solver on table D and the Fig. 3 incremental sweep)
# plus the planner-sensitive ones: the invariant suite (the paper's
# every-revision workload), the substrate SELECT/JOIN microbenchmarks,
# and the prepared-statement floor.
set -eu

cd "$(dirname "$0")/.."

PATTERN="${1:-BenchmarkGenerateDirectoryD$|BenchmarkGenerateIncremental$|BenchmarkInvariantSuite$|BenchmarkInvariantSuiteSerial$|BenchmarkSQLSelectWhere$|BenchmarkSQLJoin$|BenchmarkSQLPreparedSelect$}"
OUT="${BENCH_OUT:-BENCH_3.json}"
RAW="$(mktemp)"
trap 'rm -f "$RAW"' EXIT

echo "== go vet ./... =="
go vet ./...

echo "== race-detector solver tests =="
go test -race -run 'TestSolve|TestMonolithic|TestConcurrentSolves|TestQuickSolveEqualsMonolithic|TestBatchCursor|TestCompiledPredConcurrentUse' \
    ./internal/constraint/ ./internal/sqlmini/

echo "== benchmarks =="
go test -run '^$' -bench "$PATTERN" -benchmem . | tee "$RAW"

# Benchmark lines look like:
#   BenchmarkSQLJoin   2422   495743 ns/op   171253 B/op   2531 allocs/op
awk '
/^Benchmark/ && /ns\/op/ {
    name = $1
    sub(/-[0-9]+$/, "", name)   # strip the -GOMAXPROCS suffix
    ns = ""; allocs = ""
    for (i = 2; i <= NF; i++) {
        if ($i == "ns/op")     ns = $(i - 1)
        if ($i == "allocs/op") allocs = $(i - 1)
    }
    if (ns == "") next
    if (out != "") out = out ",\n"
    out = out sprintf("  {\"name\": \"%s\", \"ns_per_op\": %s, \"allocs_per_op\": %s}", name, ns, allocs == "" ? "null" : allocs)
}
END { printf "[\n%s\n]\n", out }
' "$RAW" > "$OUT"

echo "wrote $OUT"
