#!/bin/sh
# bench.sh — gate the solver/SQL hot paths, then run the benchmarks with
# -benchmem and emit a compact JSON summary (name, ns/op, allocs/op) for
# revision-over-revision diffing.
#
# Usage:
#   scripts/bench.sh                 # default pattern and output file
#   scripts/bench.sh 'Benchmark.*'   # custom -bench pattern
#   BENCH_OUT=out.json scripts/bench.sh
#
# Before benchmarking, the script fails loudly (non-zero exit) if `go vet`
# or the race-detector runs fail: compiled constraint kernels are shared
# across solver workers, and the morsel-parallel executor shares one pool
# and plan cache across concurrent statements — a racy hot path must never
# produce a green benchmark report.
#
# The default pattern covers the generation-sensitive benchmarks (the
# compiled-kernel solver on table D and the Fig. 3 incremental sweep)
# plus the planner-sensitive ones: the invariant suite (the paper's
# every-revision workload), the substrate SELECT/JOIN microbenchmarks,
# and the prepared-statement floor.
#
# After writing the summary, the script diffs it against the previous
# revision's baseline (BENCH_BASELINE, default BENCH_3.json) and prints a
# WARNING line for every benchmark whose ns/op regressed by more than 10%.
# The warnings are advisory (the script still exits 0): some hosts are
# noisy, and the acceptance gate reads the warnings, not the exit code.
set -eu

cd "$(dirname "$0")/.."

PATTERN="${1:-BenchmarkGenerateDirectoryD$|BenchmarkGenerateIncremental$|BenchmarkInvariantSuite$|BenchmarkInvariantSuiteSerial$|BenchmarkSQLSelectWhere$|BenchmarkSQLJoin$|BenchmarkSQLPreparedSelect$}"
OUT="${BENCH_OUT:-BENCH_4.json}"
BASELINE="${BENCH_BASELINE:-BENCH_3.json}"
RAW="$(mktemp)"
trap 'rm -f "$RAW"' EXIT

echo "== go vet ./... =="
go vet ./...

echo "== race-detector solver tests =="
go test -race -run 'TestSolve|TestMonolithic|TestConcurrentSolves|TestQuickSolveEqualsMonolithic|TestBatchCursor|TestCompiledPredConcurrentUse' \
    ./internal/constraint/ ./internal/sqlmini/

echo "== race-detector parallel-executor tests =="
go test -race -run 'TestParallelMatchesSerial|TestParallelMatchesSerialControllers|TestConcurrentParallelSelects|TestParallelWorkerStats|TestEach' \
    ./internal/pool/ ./internal/sqlmini/

echo "== benchmarks =="
go test -run '^$' -bench "$PATTERN" -benchmem . | tee "$RAW"

# Benchmark lines look like:
#   BenchmarkSQLJoin   2422   495743 ns/op   171253 B/op   2531 allocs/op
awk '
/^Benchmark/ && /ns\/op/ {
    name = $1
    sub(/-[0-9]+$/, "", name)   # strip the -GOMAXPROCS suffix
    ns = ""; allocs = ""
    for (i = 2; i <= NF; i++) {
        if ($i == "ns/op")     ns = $(i - 1)
        if ($i == "allocs/op") allocs = $(i - 1)
    }
    if (ns == "") next
    if (out != "") out = out ",\n"
    out = out sprintf("  {\"name\": \"%s\", \"ns_per_op\": %s, \"allocs_per_op\": %s}", name, ns, allocs == "" ? "null" : allocs)
}
END { printf "[\n%s\n]\n", out }
' "$RAW" > "$OUT"

echo "wrote $OUT"

if [ -f "$BASELINE" ] && [ "$BASELINE" != "$OUT" ]; then
    echo "== regression check vs $BASELINE (warn > 10% ns/op) =="
    awk -v base="$BASELINE" '
    function parse(file, tab,   line, name, ns) {
        while ((getline line < file) > 0) {
            if (line !~ /"name"/) continue
            name = line; sub(/.*"name": "/, "", name); sub(/".*/, "", name)
            ns = line; sub(/.*"ns_per_op": /, "", ns); sub(/[,}].*/, "", ns)
            tab[name] = ns + 0
        }
        close(file)
    }
    BEGIN {
        parse(base, old)
        parse(ARGV[1], new)
        warned = 0
        for (name in new) {
            if (!(name in old) || old[name] <= 0) continue
            ratio = new[name] / old[name]
            if (ratio > 1.10) {
                printf "WARNING: %s regressed %.1f%% (%.0f -> %.0f ns/op)\n",
                    name, 100 * (ratio - 1), old[name], new[name]
                warned = 1
            }
        }
        if (!warned) print "no benchmark regressed more than 10% vs " base
        exit 0
    }
    ' "$OUT"
fi
