package hwmap

import (
	"fmt"

	"coherdb/internal/protocol"
	"coherdb/internal/rel"
)

// Controller executes the nine implementation tables as the Figure 5
// micro-architecture does: the incoming message is routed to the request or
// the response controller, each of whose output tables is consulted with
// the same input key, and the per-table outputs are combined. It is the
// software twin of the generated hardware and the basis of the
// table-vs-implementation equivalence check.
type Controller struct {
	request  []*implLookup
	response []*implLookup
}

// implLookup matches one implementation table the way the hardware does: a
// TCAM-style ternary match in which a NULL input cell is a dontcare (§3:
// the NULL value "helps in optimal mapping of tables to hardware"). Rows
// are bucketed by the incoming message; the most specific matching row
// (fewest dontcares) wins.
type implLookup struct {
	name    string
	outCols []string
	inIdx   []int
	outIdx  []int
	tab     *rel.Table
	// inCodes holds the input columns as zero-copy dictionary-code vectors
	// so the ternary match is integer compares. byMsg stays keyed by
	// Str() — S("") and NULL collide under it, and that looseness is part
	// of the matcher's observed behaviour.
	inCodes [][]uint32
	byMsg   map[string][]int
}

// noCode marks an input value absent from the dictionary: no table cell
// can equal it, so it never matches a non-dontcare cell.
const noCode = ^uint32(0)

func newImplLookup(t *rel.Table) (*implLookup, error) {
	l := &implLookup{name: t.Name(), tab: t, byMsg: make(map[string][]int)}
	l.inIdx = make([]int, len(edInputCols))
	l.inCodes = make([][]uint32, len(edInputCols))
	for i, c := range edInputCols {
		j := t.ColIndex(c)
		if j < 0 {
			return nil, fmt.Errorf("hwmap: implementation table %q lacks input %q", t.Name(), c)
		}
		l.inIdx[i] = j
		l.inCodes[i] = t.ColCodes(j)
	}
	l.outCols = t.Columns()[len(edInputCols):]
	l.outIdx = make([]int, len(l.outCols))
	for i, c := range l.outCols {
		l.outIdx[i] = t.ColIndex(c)
	}
	msgIdx := t.ColIndex("inmsg")
	exact := map[string]int{}
	for r := 0; r < t.NumRows(); r++ {
		msg := t.At(r, msgIdx).Str()
		l.byMsg[msg] = append(l.byMsg[msg], r)
		key := t.RowKey(r, l.inIdx)
		if prev, dup := exact[key]; dup {
			same := true
			for _, j := range l.outIdx {
				if t.CodeAt(prev, j) != t.CodeAt(r, j) {
					same = false
					break
				}
			}
			if !same {
				return nil, fmt.Errorf("hwmap: table %q is nondeterministic for one input", t.Name())
			}
			continue
		}
		exact[key] = r
	}
	return l, nil
}

// match finds the most specific row matching the inputs (NULL row cells are
// dontcares) and returns its outputs. The inputs encode once through a
// read-only dictionary probe; candidate rows then score with integer
// compares against the column code vectors.
func (l *implLookup) match(inputs map[string]rel.Value) ([]rel.Value, bool) {
	d := l.tab.Dict()
	bcodes := make([]uint32, len(l.inIdx))
	for i := range l.inIdx {
		if c, ok := d.LookupCode(inputs[edInputCols[i]]); ok {
			bcodes[i] = c
		} else {
			bcodes[i] = noCode
		}
	}
	best, bestScore := -1, -1
	for _, r := range l.byMsg[inputs["inmsg"].Str()] {
		score := 0
		ok := true
		for i := range l.inIdx {
			want := l.inCodes[i][r]
			if want == rel.NullCode {
				continue
			}
			if want != bcodes[i] {
				ok = false
				break
			}
			score++
		}
		if ok && score > bestScore {
			best, bestScore = r, score
		}
	}
	if best < 0 {
		return nil, false
	}
	outs := make([]rel.Value, len(l.outIdx))
	for i, j := range l.outIdx {
		outs[i] = l.tab.At(best, j)
	}
	return outs, true
}

// NewController builds the executable controller from a mapping.
func NewController(m *Mapping) (*Controller, error) {
	c := &Controller{}
	for i, t := range m.Tables {
		l, err := newImplLookup(t)
		if err != nil {
			return nil, err
		}
		if i < len(requestOutputGroups) {
			c.request = append(c.request, l)
		} else {
			c.response = append(c.response, l)
		}
	}
	return c, nil
}

// Lookup routes one input combination through the split controller and
// returns the combined outputs keyed by column name. The boolean reports
// whether any table matched.
func (c *Controller) Lookup(inputs map[string]rel.Value) (map[string]rel.Value, bool) {
	tables := c.response
	if protocol.IsRequest(inputs["inmsg"].Str()) {
		tables = c.request
	}
	out := map[string]rel.Value{}
	matched := false
	for _, l := range tables {
		vals, ok := l.match(inputs)
		if !ok {
			continue
		}
		matched = true
		for i, col := range l.outCols {
			out[col] = vals[i]
		}
	}
	if !matched {
		return nil, false
	}
	return out, true
}

// VerifyEquivalence proves the split controller behaves exactly like the
// extended table: for every ED row, routing its inputs through the nine
// implementation tables reproduces every output column. This is the §5
// guarantee — "the debugged tables must be mapped to an implementation
// while preserving all the properties established by static analyses" —
// checked executably rather than by reconstruction alone.
func (m *Mapping) VerifyEquivalence() error {
	ctrl, err := NewController(m)
	if err != nil {
		return err
	}
	ed := m.Extended
	for i := 0; i < ed.NumRows(); i++ {
		inputs := map[string]rel.Value{}
		for _, col := range edInputCols {
			inputs[col] = ed.Get(i, col)
		}
		got, ok := ctrl.Lookup(inputs)
		if !ok {
			return fmt.Errorf("%w: row %d has no implementation behaviour", ErrBroken, i)
		}
		for _, col := range ed.Columns() {
			if !isOutputCol(col) && col != ColFdback {
				continue
			}
			want := ed.Get(i, col)
			have, present := got[col]
			if !present {
				have = rel.Null()
			}
			if !have.Equal(want) {
				return fmt.Errorf("%w: row %d column %s: implementation says %v, table says %v",
					ErrBroken, i, col, have, want)
			}
		}
	}
	return nil
}
