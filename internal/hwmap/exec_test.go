package hwmap

import (
	"errors"
	"testing"

	"coherdb/internal/rel"
)

func TestControllerEquivalence(t *testing.T) {
	// C5: the split request/response controller built from the nine
	// implementation tables behaves exactly like the extended table on
	// every input.
	_, m := mapping(t)
	if err := m.VerifyEquivalence(); err != nil {
		t.Fatal(err)
	}
}

func TestControllerLookupRoutes(t *testing.T) {
	_, m := mapping(t)
	ctrl, err := NewController(m)
	if err != nil {
		t.Fatal(err)
	}
	// A request row: readex at SI with free queues.
	ed := m.Extended
	var inputs map[string]rel.Value
	for i := 0; i < ed.NumRows(); i++ {
		if ed.Get(i, "inmsg").Equal(rel.S("readex")) &&
			ed.Get(i, "dirst").Equal(rel.S("SI")) &&
			ed.Get(i, ColQstatus).Equal(rel.S(NotFull)) {
			inputs = map[string]rel.Value{}
			for _, c := range edInputCols {
				inputs[c] = ed.Get(i, c)
			}
			break
		}
	}
	if inputs == nil {
		t.Fatal("no readex@SI row in ED")
	}
	out, ok := ctrl.Lookup(inputs)
	if !ok {
		t.Fatal("lookup missed")
	}
	if !out["remmsg"].Equal(rel.S("sinv")) || !out["memmsg"].Equal(rel.S("mread")) {
		t.Fatalf("outputs = %v", out)
	}
	// An unknown input combination misses.
	inputs["inmsg"] = rel.S("readex")
	inputs["dirst"] = rel.S("nosuchstate")
	if _, ok := ctrl.Lookup(inputs); ok {
		t.Fatal("phantom lookup")
	}
}

func TestVerifyEquivalenceDetectsCorruption(t *testing.T) {
	_, m := mapping(t)
	tab := m.Tables[2] // Request_memmsg
	clone := tab.Clone()
	seeded := false
	for i := 0; i < clone.NumRows() && !seeded; i++ {
		if clone.Get(i, "memmsg").Equal(rel.S("mread")) {
			if err := clone.Set(i, "memmsg", rel.S("mwrite")); err != nil {
				t.Fatal(err)
			}
			seeded = true
		}
	}
	if !seeded {
		t.Fatal("nothing to corrupt")
	}
	m.Tables[2] = clone
	defer func() { m.Tables[2] = tab }()
	if err := m.VerifyEquivalence(); !errors.Is(err, ErrBroken) {
		t.Fatalf("err = %v, want ErrBroken", err)
	}
}

func TestNewControllerRejectsNondeterminism(t *testing.T) {
	_, m := mapping(t)
	tab := m.Tables[0]
	clone := tab.Clone()
	// Duplicate the first row with a different output: same inputs, two
	// behaviours.
	row := append([]rel.Value(nil), clone.RawRow(0)...)
	j := clone.ColIndex("locmsg")
	if clone.RawRow(0)[j].Equal(rel.S("retry")) {
		row[j] = rel.S("nack")
	} else {
		row[j] = rel.S("retry")
	}
	if err := clone.InsertRow(row); err != nil {
		t.Fatal(err)
	}
	m.Tables[0] = clone
	defer func() { m.Tables[0] = tab }()
	if _, err := NewController(m); err == nil {
		t.Fatal("nondeterministic table accepted")
	}
}
