package hwmap

import (
	"errors"
	"strings"
	"sync"
	"testing"

	"coherdb/internal/constraint"
	"coherdb/internal/protocol"
	"coherdb/internal/rel"
	"coherdb/internal/sqlmini"
)

var (
	dOnce sync.Once
	dTab  *rel.Table
	dErr  error
)

func directoryTable(t testing.TB) *rel.Table {
	t.Helper()
	dOnce.Do(func() {
		spec, err := protocol.BuildDirectorySpec()
		if err != nil {
			dErr = err
			return
		}
		dTab, _, dErr = constraint.Solve(spec)
	})
	if dErr != nil {
		t.Fatal(dErr)
	}
	return dTab
}

func mapping(t testing.TB) (*sqlmini.DB, *Mapping) {
	t.Helper()
	db := sqlmini.NewDB()
	m, err := Partition(db, directoryTable(t))
	if err != nil {
		t.Fatal(err)
	}
	return db, m
}

func TestBuildExtendedShape(t *testing.T) {
	d := directoryTable(t)
	ed, err := BuildExtended(d)
	if err != nil {
		t.Fatal(err)
	}
	if ed.NumCols() != d.NumCols()+3 {
		t.Fatalf("ED has %d columns, want %d", ed.NumCols(), d.NumCols()+3)
	}
	// Every D row splits in two (a queue-status pair), plus the two
	// Dfdback rows.
	if ed.NumRows() != 2*d.NumRows()+2 {
		t.Fatalf("ED has %d rows, want %d", ed.NumRows(), 2*d.NumRows()+2)
	}
}

func TestExtendedRetryOnFullQueues(t *testing.T) {
	d := directoryTable(t)
	ed, err := BuildExtended(d)
	if err != nil {
		t.Fatal(err)
	}
	full := ed.Select(func(r rel.Row) bool {
		return r.Get(ColQstatus).Equal(rel.S(Full)) && !r.Get("inmsg").Equal(rel.S("Dfdback"))
	})
	if full.Empty() {
		t.Fatal("no Qstatus=Full rows")
	}
	for i := 0; i < full.NumRows(); i++ {
		if !full.Get(i, "locmsg").Equal(rel.S("retry")) {
			t.Fatalf("Qstatus=Full row %d does not retry: %v", i, full.RawRow(i))
		}
		if !full.Get(i, "remmsg").IsNull() || !full.Get(i, "memmsg").IsNull() ||
			!full.Get(i, "nxtbdirst").IsNull() {
			t.Fatalf("Qstatus=Full row %d has side effects", i)
		}
	}
}

func TestExtendedFeedbackOnFullUpdateQueue(t *testing.T) {
	d := directoryTable(t)
	ed, err := BuildExtended(d)
	if err != nil {
		t.Fatal(err)
	}
	// Responses that needed a directory update and found the update queue
	// full must defer it via Dfdback.
	deferred := ed.Select(func(r rel.Row) bool {
		return r.Get(ColDqstatus).Equal(rel.S(Full)) && r.Get(ColFdback).Equal(rel.S("Dfdback"))
	})
	if deferred.Empty() {
		t.Fatal("no deferred-update rows")
	}
	for i := 0; i < deferred.NumRows(); i++ {
		if !deferred.Get(i, "dirupd").IsNull() {
			t.Fatalf("deferred row %d still updates the directory", i)
		}
		// Busy bookkeeping and messages still proceed.
		if deferred.Get(i, "bdirupd").IsNull() && deferred.Get(i, "locmsg").IsNull() &&
			deferred.Get(i, "memmsg").IsNull() {
			t.Fatalf("deferred row %d does nothing else: %v", i, deferred.RawRow(i))
		}
	}
	// The Dfdback replay row exists and performs an update.
	replay := ed.Select(func(r rel.Row) bool {
		return r.Get("inmsg").Equal(rel.S("Dfdback")) && r.Get(ColQstatus).Equal(rel.S(NotFull))
	})
	if replay.NumRows() != 1 || !replay.Get(0, "dirupd").Equal(rel.S("upd")) {
		t.Fatalf("Dfdback replay row wrong:\n%s", replay)
	}
	// And the requeue row re-feeds itself when the queues are full.
	requeue := ed.Select(func(r rel.Row) bool {
		return r.Get("inmsg").Equal(rel.S("Dfdback")) && r.Get(ColQstatus).Equal(rel.S(Full))
	})
	if requeue.NumRows() != 1 || !requeue.Get(0, ColFdback).Equal(rel.S("Dfdback")) {
		t.Fatalf("Dfdback requeue row wrong:\n%s", requeue)
	}
}

func TestBuildExtendedRejectsWrongSchema(t *testing.T) {
	bad := rel.MustNewTable("X", "a", "b")
	if _, err := BuildExtended(bad); !errors.Is(err, ErrNotDirectory) {
		t.Fatalf("err = %v", err)
	}
}

func TestNineImplementationTables(t *testing.T) {
	// F5/C5: nine implementation tables are generated for D.
	db, m := mapping(t)
	if len(m.Tables) != 9 {
		t.Fatalf("implementation tables = %d, want 9", len(m.Tables))
	}
	names := ImplementationTableNames()
	if len(names) != 9 {
		t.Fatalf("names = %v", names)
	}
	for i, tab := range m.Tables {
		if tab.Empty() {
			t.Fatalf("%s is empty", names[i])
		}
		if _, ok := db.Table(names[i]); !ok {
			t.Fatalf("%s not installed in the database", names[i])
		}
	}
	// Request tables hold exactly the request rows (incl. Dfdback).
	reqRows := m.Extended.Select(func(r rel.Row) bool {
		return protocol.IsRequest(r.Get("inmsg").Str())
	}).NumRows()
	if got := m.Tables[0].NumRows(); got != reqRows {
		t.Fatalf("Request_locmsg rows = %d, want %d", got, reqRows)
	}
}

func TestReconstructionPreservesD(t *testing.T) {
	// C5: the paper's explicit check — ED is reconstructible from the
	// nine implementation tables.
	_, m := mapping(t)
	rec, err := m.Verify()
	if err != nil {
		t.Fatal(err)
	}
	if rec.Empty() {
		t.Fatal("reconstruction empty")
	}
	// And the reconstruction agrees with ED exactly (both directions).
	proj, err := m.Extended.Project(rec.Columns()...)
	if err != nil {
		t.Fatal(err)
	}
	eq, err := rec.Distinct().EqualRows(proj.SetName(rec.Name()).Distinct())
	if err != nil {
		t.Fatal(err)
	}
	if !eq {
		t.Fatal("reconstruction differs from ED")
	}
}

func TestVerifyDetectsBrokenMapping(t *testing.T) {
	_, m := mapping(t)
	// Corrupt one implementation table: drop a row.
	tab := m.Tables[2]
	clone := tab.Clone()
	clone.DeleteWhere(func(r rel.Row) bool {
		return r.Get("memmsg").Equal(rel.S("mread"))
	})
	m.Tables[2] = clone
	if _, err := m.Verify(); !errors.Is(err, ErrBroken) {
		t.Fatalf("err = %v, want ErrBroken", err)
	}
	m.Tables[2] = tab
	if _, err := m.Verify(); err != nil {
		t.Fatalf("restore failed: %v", err)
	}
}

func TestVerifyDetectsCorruptedOutput(t *testing.T) {
	_, m := mapping(t)
	tab := m.Tables[1] // Request_remmsg
	clone := tab.Clone()
	seeded := false
	for i := 0; i < clone.NumRows() && !seeded; i++ {
		if clone.Get(i, "remmsg").Equal(rel.S("sinv")) {
			if err := clone.Set(i, "remmsg", rel.S("sread")); err != nil {
				t.Fatal(err)
			}
			seeded = true
		}
	}
	if !seeded {
		t.Fatal("no sinv row found")
	}
	m.Tables[1] = clone
	if _, err := m.Verify(); !errors.Is(err, ErrBroken) {
		t.Fatalf("err = %v, want ErrBroken", err)
	}
}

func TestGenerateGo(t *testing.T) {
	_, m := mapping(t)
	var sb strings.Builder
	if err := GenerateGo(&sb, "dctrl", m); err != nil {
		t.Fatal(err)
	}
	GenerateGoKeyHelper(&sb)
	src := sb.String()
	for _, want := range []string{
		"package dctrl",
		"type Inputs struct",
		"func Request_remmsg(in Inputs)",
		"func Response_bdir(in Inputs)",
		"func key(in Inputs) string",
		`"sinv"`,
	} {
		if !strings.Contains(src, want) {
			t.Errorf("generated Go missing %q", want)
		}
	}
}

func TestGenerateVerilog(t *testing.T) {
	_, m := mapping(t)
	var sb strings.Builder
	if err := GenerateVerilog(&sb, m); err != nil {
		t.Fatal(err)
	}
	src := sb.String()
	for _, want := range []string{
		"module request_locmsg(",
		"module response_bdir(",
		"always @(*)",
		"casez", // or case
	} {
		if want == "casez" {
			if !strings.Contains(src, "case (") {
				t.Errorf("generated Verilog missing case block")
			}
			continue
		}
		if !strings.Contains(src, want) {
			t.Errorf("generated Verilog missing %q", want)
		}
	}
}
