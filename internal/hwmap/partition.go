package hwmap

import (
	"fmt"
	"strings"

	"coherdb/internal/protocol"
	"coherdb/internal/rel"
	"coherdb/internal/sqlmini"
)

// Mapping is the result of mapping D onto hardware: the extended table and
// the nine implementation tables, all installed in the database.
type Mapping struct {
	Extended *rel.Table
	// Tables holds the nine implementation tables in
	// ImplementationTableNames order.
	Tables []*rel.Table
}

// Partition builds ED from d, installs it in db, and generates the nine
// implementation tables with CREATE TABLE ... AS SELECT DISTINCT statements
// (§5), one per request/response controller output.
func Partition(db *sqlmini.DB, d *rel.Table) (*Mapping, error) {
	ed, err := BuildExtended(d)
	if err != nil {
		return nil, err
	}
	protocol.RegisterFuncs(db.Register)
	db.PutTable(ed)
	m := &Mapping{Extended: ed}
	run := func(groups []outputGroup, class string) error {
		for _, g := range groups {
			// The §5 statement, e.g.:
			//   Create Table Request_remmsg as Select distinct
			//   <ED.Inputs>, remmsg... from ED Where isrequest(ED.inmsg)
			// (Dfdback is an implementation-defined request, so the
			// isrequest predicate routes it to the request controller.)
			cols := append(append([]string{}, edInputCols...), g.Cols...)
			stmt := fmt.Sprintf(
				"CREATE TABLE %s AS SELECT DISTINCT %s FROM ED WHERE %s(inmsg)",
				g.Name, strings.Join(cols, ", "), class)
			db.DropTable(g.Name)
			res, err := db.Exec(stmt)
			if err != nil {
				return fmt.Errorf("hwmap: generating %s: %w", g.Name, err)
			}
			m.Tables = append(m.Tables, res.Table)
		}
		return nil
	}
	if err := run(requestOutputGroups, "isrequest"); err != nil {
		return nil, err
	}
	if err := run(responseOutputGroups, "isresponse"); err != nil {
		return nil, err
	}
	return m, nil
}

// Reconstruct reassembles an extended table from the nine implementation
// tables by joining each controller's output tables on the input columns
// (§5: "each SQL table operation that modifies an extended table must
// specify the corresponding SQL table operations to reconstruct the
// original table"). The request and response halves are rebuilt
// independently and unioned.
func (m *Mapping) Reconstruct() (*rel.Table, error) {
	reqTables := m.Tables[:len(requestOutputGroups)]
	respTables := m.Tables[len(requestOutputGroups):]
	req, err := joinOnInputs(reqTables)
	if err != nil {
		return nil, err
	}
	resp, err := joinOnInputs(respTables)
	if err != nil {
		return nil, err
	}
	// Align the response half to the request half's schema: the response
	// controller has no remmsg output (never snoops); fill with NULLs.
	aligned, err := alignTo(resp, req.Columns())
	if err != nil {
		return nil, err
	}
	out, err := req.Union(aligned)
	if err != nil {
		return nil, err
	}
	return out.SetName("ED_reconstructed"), nil
}

// joinOnInputs joins the given implementation tables pairwise on the ED
// input columns, accumulating all output groups.
func joinOnInputs(tables []*rel.Table) (*rel.Table, error) {
	if len(tables) == 0 {
		return nil, fmt.Errorf("hwmap: nothing to join")
	}
	acc := tables[0]
	for _, t := range tables[1:] {
		// Rename the right side's input columns to avoid collisions, join
		// on them, then project them away.
		ren := make(map[string]string, len(edInputCols))
		on := make([]rel.JoinOn, 0, len(edInputCols))
		for _, c := range edInputCols {
			ren[c] = "r_" + c
			on = append(on, rel.JoinOn{Left: c, Right: "r_" + c})
		}
		right, err := t.Rename(ren)
		if err != nil {
			return nil, err
		}
		// NULL join keys never match in SQL; the dontcare inputs of ED are
		// part of row identity here, so materialize them as sentinel
		// strings for the join and restore after.
		leftS := sentinelize(acc, edInputCols)
		rightS := sentinelize(right, rightNames(edInputCols))
		joined, err := leftS.EquiJoin(rightS, on)
		if err != nil {
			return nil, err
		}
		keep := []string{}
		for _, c := range joined.Columns() {
			if !strings.HasPrefix(c, "r_") {
				keep = append(keep, c)
			}
		}
		acc, err = joined.Project(keep...)
		if err != nil {
			return nil, err
		}
		acc = desentinelize(acc, edInputCols)
	}
	return acc, nil
}

func rightNames(cols []string) []string {
	out := make([]string, len(cols))
	for i, c := range cols {
		out[i] = "r_" + c
	}
	return out
}

// sentinel marks a NULL input materialized for joining.
const sentinel = "\x00null"

func sentinelize(t *rel.Table, cols []string) *rel.Table {
	out := t.Clone()
	for _, c := range cols {
		out.ReplaceInCol(c, rel.Null(), rel.S(sentinel))
	}
	return out
}

func desentinelize(t *rel.Table, cols []string) *rel.Table {
	for _, c := range cols {
		t.ReplaceInCol(c, rel.S(sentinel), rel.Null())
	}
	return t
}

// alignTo reorders/extends t's columns to match the target schema, filling
// absent columns with NULL.
func alignTo(t *rel.Table, target []string) (*rel.Table, error) {
	out, err := rel.NewTable(t.Name(), target...)
	if err != nil {
		return nil, err
	}
	idx := make([]int, len(target))
	for k, c := range target {
		idx[k] = t.ColIndex(c)
	}
	for i := 0; i < t.NumRows(); i++ {
		row := make([]rel.Value, len(target))
		for k, j := range idx {
			if j >= 0 {
				row[k] = t.RawRow(i)[j]
			}
		}
		if err := out.InsertRow(row); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// Verify checks that the reconstruction contains the original extended
// table (§5: "it was explicitly checked that D could be reconstructed from
// these nine implementation tables"). It returns the reconstructed table on
// success.
func (m *Mapping) Verify() (*rel.Table, error) {
	rec, err := m.Reconstruct()
	if err != nil {
		return nil, err
	}
	proj, err := m.Extended.Project(rec.Columns()...)
	if err != nil {
		return nil, err
	}
	ok, err := rec.ContainsAll(proj.SetName(rec.Name()).Distinct())
	if err != nil {
		return nil, err
	}
	if !ok {
		return nil, ErrBroken
	}
	return rec, nil
}
