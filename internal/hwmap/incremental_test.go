package hwmap

import (
	"testing"

	"coherdb/internal/sqlmini"
)

func TestPartitionIncrementalReuse(t *testing.T) {
	db := sqlmini.NewDB()
	d := directoryTable(t).Clone() // this test mutates D
	var p Partitioner

	m1, reused, err := p.PartitionIncremental(db, d)
	if err != nil {
		t.Fatal(err)
	}
	if reused {
		t.Fatal("first partition reported reused")
	}

	// Same db, same table, same revision: cached mapping by pointer.
	m2, reused, err := p.PartitionIncremental(db, d)
	if err != nil {
		t.Fatal(err)
	}
	if !reused || m2 != m1 {
		t.Fatalf("clean repeat: reused=%v same=%v", reused, m2 == m1)
	}

	// A revision bump on D forces a fresh partition.
	if err := d.Set(0, d.ColumnsRef()[0], d.At(0, 0)); err != nil {
		t.Fatal(err)
	}
	m3, reused, err := p.PartitionIncremental(db, d)
	if err != nil {
		t.Fatal(err)
	}
	if reused || m3 == m1 {
		t.Fatal("post-edit partition was served from cache")
	}
	if _, err := m3.Verify(); err != nil {
		t.Fatal(err)
	}

	// A different database never reuses, even with an unmoved D.
	db2 := sqlmini.NewDB()
	if _, reused, err = p.PartitionIncremental(db2, d); err != nil || reused {
		t.Fatalf("fresh db: reused=%v err=%v", reused, err)
	}

}
