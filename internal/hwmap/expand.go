package hwmap

import (
	"coherdb/internal/protocol"
	"coherdb/internal/rel"
)

// ExpandDontcares is the ablation for the paper's §3 claim that "the NULL
// value allows a controller table entry to be specified only using the
// relevant values and helps in optimal mapping of tables to hardware": it
// rewrites a directory controller table without dontcares, enumerating
// every NULL input over the column's full domain. The result is the table
// a naive (TCAM-free) mapping would have to store; its row count blowup is
// the cost the dontcare representation avoids.
func ExpandDontcares(d *rel.Table) (*rel.Table, error) {
	if err := checkDirectorySchema(d); err != nil {
		return nil, err
	}
	domains := map[string][]rel.Value{
		"bdirst": domainOf(append([]string{protocol.DirI}, protocol.BusyStates()...)),
		"bdirpv": domainOf(protocol.PVEncodings()),
		"dirhit": domainOf([]string{"hit", "miss"}),
		"dirst":  domainOf(protocol.DirStates()),
		"dirpv":  domainOf(protocol.PVEncodings()),
	}
	out, err := rel.NewTable(d.Name()+"_expanded", d.Columns()...)
	if err != nil {
		return nil, err
	}
	cols := d.Columns()
	var expand func(row []rel.Value, from int) error
	expand = func(row []rel.Value, from int) error {
		for i := from; i < len(cols); i++ {
			dom, isInput := domains[cols[i]]
			if !isInput || !row[i].IsNull() {
				continue
			}
			for _, v := range dom {
				next := append([]rel.Value(nil), row...)
				next[i] = v
				if err := expand(next, i+1); err != nil {
					return err
				}
			}
			return nil
		}
		return out.InsertRow(append([]rel.Value(nil), row...))
	}
	for i := 0; i < d.NumRows(); i++ {
		if err := expand(d.RawRow(i), 0); err != nil {
			return nil, err
		}
	}
	return out, nil
}

func domainOf(vals []string) []rel.Value {
	out := make([]rel.Value, len(vals))
	for i, v := range vals {
		out[i] = rel.S(v)
	}
	return out
}
