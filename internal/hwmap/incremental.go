package hwmap

import (
	"coherdb/internal/rel"
	"coherdb/internal/sqlmini"
)

// Partitioner caches the last Partition result and reuses it while the
// directory table is provably unchanged. The zero value is ready to use.
//
// Identity is the (database, table pointer, table revision) triple: the
// solver's incremental path hands back the same *rel.Table when a
// re-solve changed nothing, and every rel.Table mutation bumps its
// revision, so pointer+revision equality guarantees ED and the nine
// implementation tables would regenerate byte-identically.
type Partitioner struct {
	db  *sqlmini.DB
	d   *rel.Table
	rev uint64
	m   *Mapping
}

// PartitionIncremental is Partition with reuse: when db and d match the
// previous call and d's revision has not moved, the cached Mapping is
// returned with reused=true and no SQL runs. Otherwise it partitions from
// scratch and refreshes the cache.
func (p *Partitioner) PartitionIncremental(db *sqlmini.DB, d *rel.Table) (*Mapping, bool, error) {
	if p.m != nil && p.db == db && p.d == d && p.rev == d.Revision() {
		return p.m, true, nil
	}
	m, err := Partition(db, d)
	if err != nil {
		p.m = nil
		return nil, false, err
	}
	p.db, p.d, p.rev, p.m = db, d, d.Revision(), m
	return m, false, nil
}

// Invalidate drops the cached mapping; the next call partitions fresh.
func (p *Partitioner) Invalidate() { p.m = nil }
