package hwmap

import (
	"errors"
	"testing"

	"coherdb/internal/rel"
)

func TestExpandDontcaresBlowup(t *testing.T) {
	// A5: the dontcare representation is dramatically smaller than the
	// fully enumerated table it stands for.
	d := directoryTable(t)
	exp, err := ExpandDontcares(d)
	if err != nil {
		t.Fatal(err)
	}
	if exp.NumRows() <= 2*d.NumRows() {
		t.Fatalf("expansion only grew %d -> %d rows; dontcares are not earning their keep",
			d.NumRows(), exp.NumRows())
	}
	// No NULL remains in the enumerated input columns.
	for i := 0; i < exp.NumRows(); i++ {
		for _, c := range []string{"bdirst", "bdirpv", "dirhit", "dirst", "dirpv"} {
			if exp.Get(i, c).IsNull() {
				t.Fatalf("row %d still has a dontcare in %s", i, c)
			}
		}
	}
	t.Logf("dontcare table: %d rows; enumerated: %d rows (%.1fx)",
		d.NumRows(), exp.NumRows(), float64(exp.NumRows())/float64(d.NumRows()))
}

func TestExpandDontcaresPreservesSemantics(t *testing.T) {
	// Every original row must be represented: some expanded row agrees
	// with it on all non-NULL inputs and on every output column.
	d := directoryTable(t)
	exp, err := ExpandDontcares(d)
	if err != nil {
		t.Fatal(err)
	}
	inputs := []string{"inmsg", "inmsgsrc", "inmsgdest", "inmsgrsrc",
		"bdirhit", "bdirst", "bdirpv", "dirhit", "dirst", "dirpv"}
	for i := 0; i < d.NumRows(); i += 7 { // sample for speed
		orig := d.Row(i)
		found := false
		for j := 0; j < exp.NumRows() && !found; j++ {
			cand := exp.Row(j)
			match := true
			for _, c := range inputs {
				if v := orig.Get(c); !v.IsNull() && !cand.Get(c).Equal(v) {
					match = false
					break
				}
			}
			if !match {
				continue
			}
			same := true
			for _, c := range d.Columns() {
				if isOutputCol(c) && !cand.Get(c).Equal(orig.Get(c)) {
					same = false
					break
				}
			}
			found = same
		}
		if !found {
			t.Fatalf("row %d of D has no faithful expansion: %v", i, orig.Values())
		}
	}
}

func TestExpandDontcaresRejectsWrongSchema(t *testing.T) {
	bad := rel.MustNewTable("x", "a")
	if _, err := ExpandDontcares(bad); !errors.Is(err, ErrNotDirectory) {
		t.Fatalf("err = %v", err)
	}
}
