package sim

import (
	"strings"
	"testing"

	"coherdb/internal/protocol"
)

// fig4ImplSystem builds the Fig. 4 scenario on the implementation engine,
// with width concurrent readex-vs-writeback races.
func fig4ImplSystem(t *testing.T, assignName string, width int) *System {
	t.Helper()
	v, err := protocol.BuildAssignment(assignName)
	if err != nil {
		t.Fatal(err)
	}
	sys, err := NewSystem(Config{
		Nodes: 2, ChannelCap: 1,
		ChannelCaps: map[string]int{"VC0": 8, "VC1": 2},
		// A slow snoop link lets both invalidations get issued before the
		// first idone returns, and a slow local-response link keeps the
		// remote's writebacks unresolved (MI_w) when the snoops land — the
		// window in which the memmsg queue fills while a second response
		// is already in flight.
		ChannelLatency: map[string]int{"VC1": 4, "VC3": 8},
		Tables:         genTables(t).Map(),
		Assignment:     v, Mapping: implMapping(t),
		ImplOutQueueCap: 1, MemLatency: 40, MaxRetries: 1,
		StarvationLimit: 600, MaxSteps: 40000, Trace: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	local, remote := sys.Node(0), sys.Node(1)
	// Line B: modified at the local node; lines A1..Ak at the remote.
	lineB := Addr(0xB0)
	local.SetCache(lineB, protocol.CacheM)
	sys.Dir().SetOwner(lineB, NodeID(0))
	local.Script(Op{Kind: "previct", Addr: lineB})
	for k := 0; k < width; k++ {
		lineA := Addr(0xA0 + k)
		remote.SetCache(lineA, protocol.CacheM)
		sys.Dir().SetOwner(lineA, NodeID(1))
		local.Script(Op{Kind: "prwrite", Addr: lineA})
		remote.Script(Op{Kind: "previct", Addr: lineA, Delay: 1 + k})
	}
	return sys
}

func TestImplBufferingAbsorbsSingleRace(t *testing.T) {
	// The Fig. 5 queues are store-and-forward buffers: with a single
	// readex/writeback race, the idone is absorbed into the memmsg queue
	// even while VC4 is blocked, so the spec-level deadlock does not
	// freeze the implementation — buffering defers the hazard.
	sys := fig4ImplSystem(t, protocol.AssignVC4, 1)
	res, err := sys.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Outcome != Completed {
		t.Fatalf("outcome = %v\n%s", res.Outcome, res.Blockage)
	}
}

func TestImplSaturatedQueuesDeadlock(t *testing.T) {
	// ... but buffering only defers it: a second concurrent race fills the
	// single-entry memmsg queue and the §4.2 cyclic wait freezes the
	// implementation too — finite queues are exactly the resources the
	// static VCG analysis reasons about.
	sys := fig4ImplSystem(t, protocol.AssignVC4, 2)
	res, err := sys.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Outcome != Deadlocked {
		t.Fatalf("outcome = %v, want deadlock\n%s", res.Outcome, strings.Join(res.Trace, "\n"))
	}
	if !strings.Contains(res.Blockage, "VC4") || !strings.Contains(res.Blockage, "VC2") {
		t.Fatalf("blockage does not show the VC2/VC4 pair:\n%s", res.Blockage)
	}
}

func TestImplSaturatedQueuesFixedCompletes(t *testing.T) {
	// Under the repaired assignment the saturated scenario completes.
	sys := fig4ImplSystem(t, protocol.AssignFixed, 2)
	res, err := sys.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Outcome != Completed {
		t.Fatalf("outcome = %v\n%s", res.Outcome, res.Blockage)
	}
	if v := sys.CheckCoherence(); len(v) != 0 {
		t.Fatalf("coherence: %v", v)
	}
}
