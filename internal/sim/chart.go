package sim

import (
	"fmt"
	"strings"
)

// SequenceChart renders the run's message exchanges for one line address as
// an ASCII sequence chart — the form of the paper's Figure 2, with the
// relative ordering of the messages down the page. Events are recorded
// whenever tracing is enabled.
func (s *System) SequenceChart(addr Addr) string {
	lanes := make([]EntityID, 0, len(s.nodes)+2)
	for i := range s.nodes {
		lanes = append(lanes, NodeID(i))
	}
	lanes = append(lanes, Dir, Mem)
	col := map[EntityID]int{}
	const width = 14
	for i, l := range lanes {
		col[l] = i * width
	}
	var sb strings.Builder
	// Header.
	for _, l := range lanes {
		cell := string(l)
		if len(cell) > width-2 {
			cell = cell[:width-2]
		}
		sb.WriteString(cell)
		sb.WriteString(strings.Repeat(" ", width-len(cell)))
	}
	sb.WriteByte('\n')
	line := func() []byte {
		b := make([]byte, width*len(lanes))
		for i := range b {
			b[i] = ' '
		}
		for _, l := range lanes {
			b[col[l]] = '|'
		}
		return b
	}
	n := 0
	for _, ev := range s.events {
		if ev.Addr != addr {
			continue
		}
		from, okF := col[ev.From]
		to, okT := col[ev.To]
		if !okF || !okT || from == to {
			continue
		}
		n++
		b := line()
		lo, hi := from, to
		dirRight := true
		if lo > hi {
			lo, hi = hi, lo
			dirRight = false
		}
		for i := lo + 1; i < hi; i++ {
			b[i] = '-'
		}
		if dirRight {
			b[hi-1] = '>'
		} else {
			b[lo+1] = '<'
		}
		// Embed "n.msg[vc]" in the middle of the arrow.
		label := fmt.Sprintf("%d.%s", n, ev.Type)
		if ev.VC != "" {
			label += "[" + ev.VC + "]"
		}
		mid := (lo + hi + 1 - len(label)) / 2
		if mid <= lo+1 {
			mid = lo + 2
		}
		for i := 0; i < len(label) && mid+i < hi-1; i++ {
			b[mid+i] = label[i]
		}
		sb.Write(b)
		sb.WriteByte('\n')
	}
	if n == 0 {
		return "no messages recorded for that line (enable Config.Trace)\n"
	}
	return sb.String()
}
