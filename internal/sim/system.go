package sim

import (
	"errors"
	"fmt"
	"sort"
	"strings"

	"coherdb/internal/hwmap"
	"coherdb/internal/rel"
	"coherdb/internal/segment"
)

// Errors returned by the simulator.
var (
	ErrNoRow    = errors.New("sim: no controller table row matches")
	ErrBadTable = errors.New("sim: controller table missing or malformed")
)

// Op is one processor operation in a node's script.
type Op struct {
	Kind string // prread, prwrite, previct, prflush
	Addr Addr
	// Delay withholds the op until the given simulation step, for
	// choreographed scenarios.
	Delay int
}

// Config describes a simulated system.
type Config struct {
	// Nodes is the number of processor nodes (>= 1). Node 0 plays the
	// "local" role in scenarios; others are potential sharers/owners.
	Nodes int
	// ChannelCap is the per-virtual-channel capacity (the finite resource
	// whose exhaustion causes deadlock). <= 0 means unbounded.
	ChannelCap int
	// ChannelCaps overrides the capacity of individual channels by name.
	ChannelCaps map[string]int
	// ChannelLatency sets per-channel link traversal times in steps.
	ChannelLatency map[string]int
	// Tables are the generated controller tables, keyed "D", "M", "C", "N".
	Tables map[string]*rel.Table
	// Assignment is the V table (columns m, s, d, v). Message hops absent
	// from V ride dedicated/internal unbounded paths.
	Assignment *rel.Table
	// Mapping, when set, runs the directory as the Figure 5
	// implementation: the nine implementation tables with real internal
	// queues and the Dfdback feedback path (see implDirCtl).
	Mapping *hwmap.Mapping
	// ImplOutQueueCap / ImplUpdQueueCap size the implementation's internal
	// queues (defaults 2 and 1).
	ImplOutQueueCap int
	ImplUpdQueueCap int
	// MemLatency delays the memory controller: it only processes a
	// message after it has sat at the head of its queue for this many
	// steps. Used to steer interleavings (Fig. 4 needs a slow memory).
	MemLatency int
	// MaxRetries bounds how often a node re-issues an aborted operation;
	// 0 means unlimited.
	MaxRetries int
	// StarvationLimit declares deadlock when a message sits unprocessed
	// at a channel head for this many steps (retry traffic elsewhere can
	// otherwise mask a frozen channel pair). 0 means 2000.
	StarvationLimit int
	// MaxSteps bounds the run.
	MaxSteps int
	// Trace enables the event trace.
	Trace bool
	// TraceBudget caps the resident bytes of the accumulated trace
	// (which is stored as compressed code segments, see TraceLog);
	// 0 means unlimited. When a budget is set, Result.Trace stays nil
	// and callers stream lines with System.StreamTrace instead of
	// materializing the whole corpus.
	TraceBudget int64
	// TraceSpillDir, when set with TraceBudget, lets cold trace blocks
	// spill to disk so the corpus can exceed RAM. System.Close removes
	// the spill files.
	TraceSpillDir string
}

// Outcome classifies how a run ended.
type Outcome int

// Run outcomes.
const (
	Completed Outcome = iota // all scripts drained, no messages in flight
	Deadlocked
	StepLimit
)

func (o Outcome) String() string {
	switch o {
	case Completed:
		return "completed"
	case Deadlocked:
		return "deadlocked"
	case StepLimit:
		return "step limit reached"
	}
	return "unknown"
}

// Stats aggregates a run.
type Stats struct {
	Steps        int
	Delivered    int
	Blocked      int
	Retries      int
	OpsCompleted int
	// DeliveredPerChannel breaks Delivered down by virtual channel (the
	// unnamed internal/dedicated paths count under "internal").
	DeliveredPerChannel map[string]int
	// Transitions counts controller table-row firings across all entities.
	Transitions int
	// OpLatencySum and OpLatencyMax aggregate issue-to-completion times
	// (in steps) over completed remote transactions.
	OpLatencySum int
	OpLatencyMax int
	MaxOccupancy map[string]int
}

// AvgOpLatency returns the mean issue-to-completion latency in steps.
func (s Stats) AvgOpLatency() float64 {
	if s.OpsCompleted == 0 {
		return 0
	}
	return float64(s.OpLatencySum) / float64(s.OpsCompleted)
}

// Result is the outcome of a run.
type Result struct {
	Outcome Outcome
	Stats   Stats
	// Blockage describes the channel state at deadlock.
	Blockage string
	Trace    []string
}

// dirEngine abstracts the directory controller: the spec-level table
// executor (dirCtl) or the Figure 5 implementation (implDirCtl).
type dirEngine interface {
	process(Message) (bool, error)
	tick() bool
	quiescent() bool
	SetOwner(a Addr, owner EntityID)
	SetShared(a Addr, sharers ...EntityID)
	Entry(a Addr) (string, []EntityID)
	BusyCount() int
	base() *dirCtl
}

// System is one simulated multiprocessor.
type System struct {
	cfg      Config
	vcs      map[VKey]string
	channels map[string]*Channel
	dir      dirEngine
	mem      *memCtl
	nodes    []*nodeCtl
	stats    Stats
	tlog     *TraceLog
	events   []Message
	step     int
}

// VKey identifies a channel assignment (message, source role, dest role).
type VKey struct{ M, S, D string }

// NewSystem builds a system from the config.
func NewSystem(cfg Config) (*System, error) {
	if cfg.Nodes < 1 {
		cfg.Nodes = 2
	}
	if cfg.MaxSteps <= 0 {
		cfg.MaxSteps = 100000
	}
	s := &System{
		cfg:      cfg,
		vcs:      make(map[VKey]string),
		channels: make(map[string]*Channel),
	}
	s.stats.MaxOccupancy = make(map[string]int)
	if cfg.Assignment != nil {
		v := cfg.Assignment
		for _, c := range []string{"m", "s", "d", "v"} {
			if !v.HasColumn(c) {
				return nil, fmt.Errorf("%w: V lacks column %q", ErrBadTable, c)
			}
		}
		for i := 0; i < v.NumRows(); i++ {
			k := VKey{M: v.Get(i, "m").Str(), S: v.Get(i, "s").Str(), D: v.Get(i, "d").Str()}
			vc := v.Get(i, "v").Str()
			s.vcs[k] = vc
			if _, ok := s.channels[vc]; !ok {
				capn := cfg.ChannelCap
				if c, ok := cfg.ChannelCaps[vc]; ok {
					capn = c
				}
				ch := NewChannel(vc, capn)
				ch.Latency = cfg.ChannelLatency[vc]
				ch.now = &s.step
				s.channels[vc] = ch
			}
		}
	}
	// The dedicated/internal path is unbounded.
	s.channels[""] = NewChannel("internal", 0)
	s.channels[""].now = &s.step

	var err error
	if cfg.Mapping != nil {
		s.dir, err = newImplDirCtl(s, cfg.Tables["D"], cfg.Mapping, cfg.ImplOutQueueCap, cfg.ImplUpdQueueCap)
	} else {
		s.dir, err = newDirCtl(s, cfg.Tables["D"])
	}
	if err != nil {
		return nil, err
	}
	if s.mem, err = newMemCtl(s, cfg.Tables["M"]); err != nil {
		return nil, err
	}
	for i := 0; i < cfg.Nodes; i++ {
		n, err := newNodeCtl(s, i, cfg.Tables["C"], cfg.Tables["N"])
		if err != nil {
			return nil, err
		}
		s.nodes = append(s.nodes, n)
	}
	return s, nil
}

// Node returns node i's controller (for scenario setup).
func (s *System) Node(i int) *nodeCtl { return s.nodes[i] }

// Dir returns the directory engine (for scenario setup).
func (s *System) Dir() dirEngine { return s.dir }

// ImplDir returns the Figure 5 implementation engine when the system was
// built with a Mapping, for inspecting its queue/feedback statistics.
func (s *System) ImplDir() *implDirCtl {
	d, _ := s.dir.(*implDirCtl)
	return d
}

// vcOf resolves the channel for a hop; "" means untracked (internal path).
func (s *System) vcOf(m, src, dst string) string {
	return s.vcs[VKey{M: m, S: src, D: dst}]
}

// send enqueues msg on its channel; reports false when full.
func (s *System) send(msg Message) bool {
	ch := s.channels[msg.VC]
	if ch == nil {
		ch = s.channels[""]
		msg.VC = ""
	}
	if !ch.Send(msg) {
		s.stats.Blocked++
		return false
	}
	if ch.Len() > s.stats.MaxOccupancy[ch.Name] {
		s.stats.MaxOccupancy[ch.Name] = ch.Len()
	}
	if s.cfg.Trace {
		s.events = append(s.events, msg)
	}
	s.tracef("send %s", msg)
	return true
}

// canSendAll checks capacity for a batch of messages atomically.
func (s *System) canSendAll(msgs []Message) bool {
	need := map[string]int{}
	for _, m := range msgs {
		vc := m.VC
		if s.channels[vc] == nil {
			vc = ""
		}
		need[vc]++
	}
	for vc, n := range need {
		if !s.channels[vc].CanSend(n) {
			return false
		}
	}
	return true
}

// sendAll enqueues a batch after canSendAll.
func (s *System) sendAll(msgs []Message) {
	for _, m := range msgs {
		if !s.send(m) {
			panic("sim: sendAll after canSendAll failed")
		}
	}
}

func (s *System) tracef(format string, args ...any) {
	if s.cfg.Trace {
		if s.tlog == nil {
			// Lazy so clones (which drop the parent's log) only pay
			// for a log once they actually trace.
			s.tlog = NewTraceLog(s.cfg.TraceBudget, s.cfg.TraceSpillDir)
		}
		s.tlog.Add(s.step, fmt.Sprintf(format, args...))
	}
}

// SetTraceBudget caps the resident bytes of the event trace after
// construction (the scenario builders don't expose Config directly).
// With a budget, Result.Trace stays nil — stream with StreamTrace.
// Must be called before the first traced step; once a log exists the
// call is ignored.
func (s *System) SetTraceBudget(budget int64, spillDir string) {
	if s.tlog != nil {
		return
	}
	s.cfg.TraceBudget = budget
	s.cfg.TraceSpillDir = spillDir
}

// StreamTrace invokes fn for each accumulated trace line in order
// without materializing the corpus; returning false stops early. It is
// the out-of-core alternative to Result.Trace.
func (s *System) StreamTrace(fn func(line string) bool) {
	if s.tlog != nil {
		s.tlog.Each(fn)
	}
}

// TraceStats exposes the trace log's segment-store accounting
// (resident/spilled bytes, spills, faults); zero when not tracing.
func (s *System) TraceStats() segment.Stats {
	if s.tlog == nil {
		return segment.Stats{}
	}
	return s.tlog.Stats()
}

// TraceLines materializes the accumulated trace (empty when not
// tracing); prefer StreamTrace for out-of-core corpora.
func (s *System) TraceLines() []string {
	if s.tlog == nil {
		return nil
	}
	return s.tlog.Lines()
}

// Close releases trace spill files, if any. Safe on every system.
func (s *System) Close() error {
	if s.tlog != nil {
		return s.tlog.Close()
	}
	return nil
}

// entityFor returns the consumer of a message.
func (s *System) entityFor(id EntityID) interface{ process(Message) (bool, error) } {
	switch id {
	case Dir:
		return s.dir
	case Mem:
		return s.mem
	default:
		for i := range s.nodes {
			if NodeID(i) == id {
				return s.nodes[i]
			}
		}
	}
	return nil
}

// countDelivered records one delivery on the named channel.
func (s *System) countDelivered(name string) {
	if name == "" {
		name = "internal"
	}
	if s.stats.DeliveredPerChannel == nil {
		s.stats.DeliveredPerChannel = map[string]int{}
	}
	s.stats.DeliveredPerChannel[name]++
	s.stats.Delivered++
}

// Run executes until completion, deadlock or the step limit.
func (s *System) Run() (*Result, error) {
	starvation := s.cfg.StarvationLimit
	if starvation <= 0 {
		starvation = 2000
	}
	headAge := map[string]int{}
	lastHead := map[string]Message{}
	for s.step = 0; s.step < s.cfg.MaxSteps; s.step++ {
		progress := false
		// Processors issue operations.
		for _, n := range s.nodes {
			issued, err := n.issue()
			if err != nil {
				return nil, err
			}
			progress = progress || issued
		}
		// Drain channel heads in a fixed, fair order.
		names := make([]string, 0, len(s.channels))
		for name := range s.channels {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			ch := s.channels[name]
			msg, ok := ch.Head()
			if !ok {
				continue
			}
			ent := s.entityFor(msg.To)
			if ent == nil {
				return nil, fmt.Errorf("sim: message %s to unknown entity", msg)
			}
			if name == "" {
				// Internal/dedicated paths have no head-of-line blocking:
				// deliver as many as possible.
				for {
					msg, ok := ch.Head()
					if !ok {
						break
					}
					done, err := s.entityFor(msg.To).process(msg)
					if err != nil {
						return nil, err
					}
					if !done {
						break
					}
					ch.Pop()
					s.countDelivered(name)
					progress = true
					s.tracef("deliver %s", msg)
				}
				continue
			}
			done, err := ent.process(msg)
			if err != nil {
				return nil, err
			}
			if done {
				ch.Pop()
				s.countDelivered(name)
				progress = true
				s.tracef("deliver %s", msg)
			}
		}
		if s.dir.tick() {
			progress = true
		}
		if s.idle() {
			s.stats.Steps = s.step + 1
			return s.result(Completed), nil
		}
		if s.mem.latencyWait {
			s.mem.latencyWait = false
			progress = true
		}
		for _, ch := range s.channels {
			if ch.InFlight() {
				progress = true // link latency elapsing is progress
				break
			}
		}
		if !progress {
			s.stats.Steps = s.step + 1
			return s.result(Deadlocked), nil
		}
		// Starvation detection: a message frozen at a tracked channel
		// head means a channel-resource deadlock even while unrelated
		// retry traffic keeps flowing.
		for name, ch := range s.channels {
			if name == "" {
				continue
			}
			head, ok := ch.Head()
			if !ok {
				headAge[name] = 0
				continue
			}
			if head == lastHead[name] {
				headAge[name]++
				if headAge[name] >= starvation {
					s.stats.Steps = s.step + 1
					return s.result(Deadlocked), nil
				}
			} else {
				lastHead[name] = head
				headAge[name] = 0
			}
		}
	}
	s.stats.Steps = s.cfg.MaxSteps
	return s.result(StepLimit), nil
}

// idle reports whether all work is done: scripts drained, no outstanding
// operations, no messages in flight.
func (s *System) idle() bool {
	for _, ch := range s.channels {
		if ch.Len() > 0 {
			return false
		}
	}
	for _, n := range s.nodes {
		if !n.idle() {
			return false
		}
	}
	return s.dir.BusyCount() == 0 && s.dir.quiescent()
}

func (s *System) result(o Outcome) *Result {
	res := &Result{Outcome: o, Stats: s.stats}
	if s.tlog != nil && s.cfg.TraceBudget == 0 {
		// Unbudgeted traces keep the materialized []string contract;
		// budgeted (out-of-core) runs stream via StreamTrace instead.
		res.Trace = s.tlog.Lines()
	}
	if o == Deadlocked {
		var sb strings.Builder
		names := make([]string, 0, len(s.channels))
		for name := range s.channels {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			ch := s.channels[name]
			if ch.Len() == 0 {
				continue
			}
			fmt.Fprintf(&sb, "%s (%d/%d):", ch.Name, ch.Len(), ch.Cap)
			for _, m := range ch.Snapshot() {
				fmt.Fprintf(&sb, " %s;", m)
			}
			sb.WriteByte('\n')
		}
		res.Blockage = sb.String()
	}
	return res
}

// ChannelLen reports the current occupancy of a channel (tests, tooling).
func (s *System) ChannelLen(vc string) int {
	if ch := s.channels[vc]; ch != nil {
		return ch.Len()
	}
	return 0
}
