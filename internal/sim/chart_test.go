package sim

import (
	"strings"
	"testing"
)

func TestSequenceChartReadEx(t *testing.T) {
	tables := genTables(t)
	sys, err := ReadExSystem(tables, fixedAssignment(t), 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Run(); err != nil {
		t.Fatal(err)
	}
	chart := sys.SequenceChart(0x100)
	t.Logf("\n%s", chart)
	for _, want := range []string{"readex", "sinv", "mread", "idone", "mdata", "datax", "compl"} {
		if !strings.Contains(chart, want) {
			t.Errorf("chart missing %s", want)
		}
	}
	// Order: readex before sinv before datax.
	if strings.Index(chart, "readex") > strings.Index(chart, "sinv[") {
		t.Error("readex must precede sinv")
	}
	// Empty chart case.
	if !strings.Contains(sys.SequenceChart(0xdead), "no messages") {
		t.Error("empty chart message missing")
	}
}
