package sim

import (
	"math/rand"
	"strings"
	"testing"

	"coherdb/internal/protocol"
)

// fig4CodecSystem builds the Figure 4 configuration used by the model
// checker, under the given assignment.
func fig4CodecSystem(t testing.TB, assign string) *System {
	t.Helper()
	v, err := protocol.BuildAssignment(assign)
	if err != nil {
		t.Fatal(err)
	}
	sys, err := NewSystem(Config{
		Nodes: 2, ChannelCap: 1,
		ChannelCaps: map[string]int{"VC0": 2},
		Tables:      genTables(t).Map(),
		Assignment:  v,
		MaxSteps:    100000,
	})
	if err != nil {
		t.Fatal(err)
	}
	sys.Node(0).SetCache(0xB, protocol.CacheM)
	sys.Dir().SetOwner(0xB, NodeID(0))
	sys.Node(1).SetCache(0xA, protocol.CacheM)
	sys.Dir().SetOwner(0xA, NodeID(1))
	sys.Node(0).Script(
		Op{Kind: "previct", Addr: 0xB},
		Op{Kind: "prwrite", Addr: 0xA},
	)
	sys.Node(1).Script(Op{Kind: "previct", Addr: 0xA})
	return sys
}

// TestStateCodecMatchesFingerprint randomly walks the action graph and
// asserts tuple equality is exactly Fingerprint equality — the codec is
// the out-of-core replacement for the fingerprint string, so any
// divergence would corrupt the visited set.
func TestStateCodecMatchesFingerprint(t *testing.T) {
	for _, assign := range []string{protocol.AssignFixed, protocol.AssignVC4} {
		t.Run(assign, func(t *testing.T) {
			root := fig4CodecSystem(t, assign)
			codec := NewStateCodec(root)
			rng := rand.New(rand.NewSource(7))

			type rec struct {
				fp    string
				tuple []uint32
			}
			var seen []rec
			record := func(s *System) {
				tup := codec.Encode(s, nil)
				seen = append(seen, rec{fp: s.Fingerprint(), tuple: tup})
			}
			record(root)
			for walk := 0; walk < 30; walk++ {
				cur := root.Clone()
				for step := 0; step < 40; step++ {
					cands := cur.CandidateActions()
					if len(cands) == 0 {
						break
					}
					a := cands[rng.Intn(len(cands))]
					if _, err := cur.Apply(a); err != nil {
						t.Fatal(err)
					}
					record(cur)
				}
			}
			for i := range seen {
				for j := i + 1; j < len(seen); j++ {
					fpEq := seen[i].fp == seen[j].fp
					tupEq := equalU32(seen[i].tuple, seen[j].tuple)
					if fpEq != tupEq {
						t.Fatalf("state %d vs %d: fingerprint equal=%v but tuple equal=%v\nfp_i=%s\nfp_j=%s",
							i, j, fpEq, tupEq, seen[i].fp, seen[j].fp)
					}
				}
			}
			if len(seen) < 100 {
				t.Fatalf("walks visited only %d states", len(seen))
			}
		})
	}
}

func equalU32(a, b []uint32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestStateCodecActionRoundTrip(t *testing.T) {
	sys := fig4CodecSystem(t, protocol.AssignFixed)
	codec := NewStateCodec(sys)
	actions := []Action{
		{Kind: "issue", Node: 0},
		{Kind: "issue", Node: 13},
		{Kind: "deliver", Chan: "VC0"},
		{Kind: "deliver", Chan: ""},
	}
	for _, a := range actions {
		back := codec.DecodeAction(codec.EncodeAction(a))
		if back != a {
			t.Fatalf("action %+v round-tripped to %+v", a, back)
		}
	}
}

// TestTraceLogOutOfCore runs a traced scenario with a tiny budget and a
// spill directory: the trace must spill, stream back identical to the
// materialized baseline, and leave Result.Trace nil (streaming
// contract).
func TestTraceLogOutOfCore(t *testing.T) {
	run := func(budget int64, spill string) (*System, *Result) {
		t.Helper()
		sys2, err := NewSystem(Config{
			Nodes: 2, ChannelCap: 1,
			ChannelCaps:   map[string]int{"VC0": 2},
			Tables:        genTables(t).Map(),
			Assignment:    fixedAssignment(t),
			MaxSteps:      100000,
			Trace:         true,
			TraceBudget:   budget,
			TraceSpillDir: spill,
		})
		if err != nil {
			t.Fatal(err)
		}
		sys2.Node(0).SetCache(0xB, protocol.CacheM)
		sys2.Dir().SetOwner(0xB, NodeID(0))
		sys2.Node(1).SetCache(0xA, protocol.CacheM)
		sys2.Dir().SetOwner(0xA, NodeID(1))
		sys2.Node(0).Script(
			Op{Kind: "previct", Addr: 0xB},
			Op{Kind: "prwrite", Addr: 0xA},
		)
		sys2.Node(1).Script(Op{Kind: "previct", Addr: 0xA})
		res, err := sys2.Run()
		if err != nil {
			t.Fatal(err)
		}
		return sys2, res
	}

	base, baseRes := run(0, "")
	defer base.Close()
	if len(baseRes.Trace) == 0 {
		t.Fatal("baseline produced no trace")
	}

	spilled, spilledRes := run(512, t.TempDir())
	defer spilled.Close()
	if spilledRes.Trace != nil {
		t.Fatalf("budgeted run materialized %d trace lines; want streaming-only", len(spilledRes.Trace))
	}
	st := spilled.TraceStats()
	if st.Spills == 0 || st.SpilledBytes == 0 {
		t.Fatalf("expected trace spills under a 512B budget, got %+v", st)
	}
	var got []string
	spilled.StreamTrace(func(line string) bool {
		got = append(got, line)
		return true
	})
	if strings.Join(got, "\n") != strings.Join(baseRes.Trace, "\n") {
		t.Fatalf("streamed trace differs from materialized baseline:\nstreamed %d lines, baseline %d", len(got), len(baseRes.Trace))
	}
}
