package sim

import (
	"fmt"
	"sort"
	"strings"
)

// The fine-grained action API used by the explicit-state model checker
// (package modelcheck): instead of the Run scheduler's fixed per-step order,
// every enabled scheduling choice — issuing a processor op or delivering
// one channel head — is exposed as an Action, and System values can be
// cloned and fingerprinted so the state graph can be explored exhaustively.

// Action is one scheduling choice.
type Action struct {
	// Kind is "issue" or "deliver".
	Kind string
	// Node is the issuing node for "issue".
	Node int
	// Chan is the channel whose head is delivered for "deliver".
	Chan string
}

func (a Action) String() string {
	if a.Kind == "issue" {
		return fmt.Sprintf("issue@node%d", a.Node)
	}
	ch := a.Chan
	if ch == "" {
		ch = "internal"
	}
	return "deliver@" + ch
}

// CandidateActions lists the scheduling choices that might change the
// state: one issue per node with pending ops, one delivery per non-empty
// channel. Whether a candidate actually progresses is determined by Apply.
func (s *System) CandidateActions() []Action {
	var out []Action
	for i, n := range s.nodes {
		if len(n.pendingOp) > 0 {
			out = append(out, Action{Kind: "issue", Node: i})
		}
	}
	names := make([]string, 0, len(s.channels))
	for name, ch := range s.channels {
		if ch.Len() > 0 {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	for _, name := range names {
		out = append(out, Action{Kind: "deliver", Chan: name})
	}
	return out
}

// Apply executes one action; it reports whether the state changed (a
// blocked delivery or ineligible issue leaves the state intact).
func (s *System) Apply(a Action) (bool, error) {
	switch a.Kind {
	case "issue":
		if a.Node < 0 || a.Node >= len(s.nodes) {
			return false, fmt.Errorf("sim: no node %d", a.Node)
		}
		return s.nodes[a.Node].issue()
	case "deliver":
		ch := s.channels[a.Chan]
		if ch == nil {
			return false, fmt.Errorf("sim: no channel %q", a.Chan)
		}
		msg, ok := ch.Head()
		if !ok {
			return false, nil
		}
		ent := s.entityFor(msg.To)
		if ent == nil {
			return false, fmt.Errorf("sim: message %s to unknown entity", msg)
		}
		done, err := ent.process(msg)
		if err != nil {
			return false, err
		}
		if done {
			ch.Pop()
			s.countDelivered(a.Chan)
		}
		return done, nil
	default:
		return false, fmt.Errorf("sim: unknown action kind %q", a.Kind)
	}
}

// Idle reports whether all work has drained (exported for the model
// checker's accept condition).
func (s *System) Idle() bool { return s.idle() }

// Clone deep-copies the system state. The configuration and tables are
// shared; queues, directory, busy directory, caches, MSHRs and scripts are
// copied.
func (s *System) Clone() *System {
	if _, ok := s.dir.(*dirCtl); !ok {
		panic("sim: Clone supports only the spec-level directory engine")
	}
	c := &System{
		cfg:      s.cfg,
		vcs:      s.vcs,
		channels: make(map[string]*Channel, len(s.channels)),
		stats:    s.stats,
		step:     s.step,
	}
	c.stats.MaxOccupancy = map[string]int{}
	if s.stats.DeliveredPerChannel != nil {
		// Deep-copy: the struct assignment above aliased the map, so a
		// delivery on the clone would otherwise mutate the original
		// (and race with sibling clones under parallel exploration).
		c.stats.DeliveredPerChannel = make(map[string]int, len(s.stats.DeliveredPerChannel))
		for k, v := range s.stats.DeliveredPerChannel {
			c.stats.DeliveredPerChannel[k] = v
		}
	}
	for name, ch := range s.channels {
		nc := NewChannel(ch.Name, ch.Cap)
		nc.Latency = ch.Latency
		nc.now = &c.step
		nc.q = append([]Message(nil), ch.q...)
		nc.stamps = append([]int(nil), ch.stamps...)
		c.channels[name] = nc
	}
	sd := s.dir.base()
	cd := &dirCtl{
		sys:  c,
		core: sd.core,
		dir:  make(map[Addr]*dirEntry, len(sd.dir)),
		busy: make(map[Addr]*busyEntry, len(sd.busy)),
	}
	for a, e := range sd.dir {
		ne := &dirEntry{st: e.st, sharers: make(map[EntityID]bool, len(e.sharers))}
		for k, v := range e.sharers {
			ne.sharers[k] = v
		}
		cd.dir[a] = ne
	}
	for a, b := range sd.busy {
		nb := *b
		cd.busy[a] = &nb
	}
	c.dir = cd
	c.mem = &memCtl{sys: c, core: s.mem.core, firstSeen: make(map[Message]int, len(s.mem.firstSeen))}
	for k, v := range s.mem.firstSeen {
		c.mem.firstSeen[k] = v
	}
	for _, n := range s.nodes {
		nn := &nodeCtl{
			sys:         c,
			id:          n.id,
			eid:         n.eid,
			cacheCore:   n.cacheCore,
			mshrCore:    n.mshrCore,
			cache:       make(map[Addr]string, len(n.cache)),
			mshr:        make(map[Addr]bool, len(n.mshr)),
			pendingOp:   append([]Op(nil), n.pendingOp...),
			attempts:    make(map[Addr]int, len(n.attempts)),
			outstanding: make(map[Addr]Op, len(n.outstanding)),
			issuedAt:    make(map[Addr]int, len(n.issuedAt)),
			completed:   n.completed,
		}
		for k, v := range n.cache {
			nn.cache[k] = v
		}
		for k, v := range n.mshr {
			nn.mshr[k] = v
		}
		for k, v := range n.attempts {
			nn.attempts[k] = v
		}
		for k, v := range n.outstanding {
			nn.outstanding[k] = v
		}
		for k, v := range n.issuedAt {
			nn.issuedAt[k] = v
		}
		c.nodes = append(c.nodes, nn)
	}
	return c
}

// Fingerprint returns a canonical encoding of the protocol-relevant state:
// channel contents, directory and busy directory, caches, MSHRs and
// remaining scripts. Two states with equal fingerprints behave identically.
func (s *System) Fingerprint() string {
	var sb strings.Builder
	names := make([]string, 0, len(s.channels))
	for name := range s.channels {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		sb.WriteString("ch:")
		sb.WriteString(name)
		for _, m := range s.channels[name].q {
			fmt.Fprintf(&sb, "|%s,%s,%s,%d", m.Type, m.From, m.To, m.Addr)
		}
		sb.WriteByte(';')
	}
	sd := s.dir.base()
	var addrs []Addr
	for a := range sd.dir {
		addrs = append(addrs, a)
	}
	sort.Slice(addrs, func(i, j int) bool { return addrs[i] < addrs[j] })
	for _, a := range addrs {
		e := sd.dir[a]
		fmt.Fprintf(&sb, "dir:%d=%s", a, e.st)
		var sh []string
		for k := range e.sharers {
			sh = append(sh, string(k))
		}
		sort.Strings(sh)
		sb.WriteString(strings.Join(sh, ","))
		sb.WriteByte(';')
	}
	addrs = addrs[:0]
	for a := range sd.busy {
		addrs = append(addrs, a)
	}
	sort.Slice(addrs, func(i, j int) bool { return addrs[i] < addrs[j] })
	for _, a := range addrs {
		b := sd.busy[a]
		fmt.Fprintf(&sb, "busy:%d=%s,%d,%s;", a, b.st, b.pending, b.requester)
	}
	for _, n := range s.nodes {
		fmt.Fprintf(&sb, "n%d:", n.id)
		var cad []Addr
		for a := range n.cache {
			cad = append(cad, a)
		}
		sort.Slice(cad, func(i, j int) bool { return cad[i] < cad[j] })
		for _, a := range cad {
			fmt.Fprintf(&sb, "c%d=%s,", a, n.cache[a])
		}
		cad = cad[:0]
		for a := range n.mshr {
			cad = append(cad, a)
		}
		sort.Slice(cad, func(i, j int) bool { return cad[i] < cad[j] })
		for _, a := range cad {
			fmt.Fprintf(&sb, "m%d,", a)
		}
		for _, op := range n.pendingOp {
			fmt.Fprintf(&sb, "op%s/%d,", op.Kind, op.Addr)
		}
		cad = cad[:0]
		for a := range n.outstanding {
			cad = append(cad, a)
		}
		sort.Slice(cad, func(i, j int) bool { return cad[i] < cad[j] })
		for _, a := range cad {
			fmt.Fprintf(&sb, "o%d=%s,", a, n.outstanding[a].Kind)
		}
		sb.WriteByte(';')
	}
	return sb.String()
}
