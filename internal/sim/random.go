package sim

import (
	"fmt"
	"math/rand"

	"coherdb/internal/protocol"
	"coherdb/internal/rel"
)

// RandomConfig describes a random-workload fuzzing run — the "late
// detection" baseline the paper's introduction contrasts with: protocol
// testing by running random tests against the implementation.
type RandomConfig struct {
	Nodes      int
	Addrs      int
	OpsPerNode int
	Seed       int64
	ChannelCap int
	MaxSteps   int
	// DirectOps mixes in I/O, uncached, atomic, sync, interrupt and
	// cache-management transactions over a disjoint address range (a node
	// never issues a direct op on a line its own cache may hold).
	DirectOps bool
}

// RandomSystem builds a system with seeded random scripts. Every node
// issues a mix of loads, stores, evictions and flushes over a small set of
// shared lines.
func RandomSystem(tables Tables, assignment *rel.Table, cfg RandomConfig) (*System, error) {
	if cfg.Nodes <= 0 {
		cfg.Nodes = 4
	}
	if cfg.Addrs <= 0 {
		cfg.Addrs = 4
	}
	if cfg.OpsPerNode <= 0 {
		cfg.OpsPerNode = 25
	}
	if cfg.ChannelCap == 0 {
		cfg.ChannelCap = 16
	}
	if cfg.MaxSteps <= 0 {
		cfg.MaxSteps = 200000
	}
	sys, err := NewSystem(Config{
		Nodes:      cfg.Nodes,
		ChannelCap: cfg.ChannelCap,
		Tables:     tables.Map(),
		Assignment: assignment,
		MaxSteps:   cfg.MaxSteps,
	})
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	kinds := []string{"prread", "prread", "prwrite", "prwrite", "previct", "prflush"}
	direct := []string{"ioread", "iowrite", "ucread", "ucwrite", "fetchadd",
		"sync", "flush", "readinv", "prefetch"}
	if cfg.Nodes >= 2 {
		direct = append(direct, "intr")
	}
	// Address map: cacheable workload lines at 0x0, I/O-and-uncached space
	// at 0x1000 (its busy families only conflict among themselves, like
	// real disjoint address spaces), cache-management ops at 0x2000, and
	// per-node prefetch lines at 0x3000.
	const (
		ioBase   = 0x1000
		mgmtBase = 0x2000
		pfBase   = 0x3000
		syBase   = 0x4000 // sync/intr: not line addresses at all
	)
	uncachedKind := map[string]bool{
		"ioread": true, "iowrite": true, "ucread": true, "ucwrite": true, "fetchadd": true,
	}
	for i := 0; i < cfg.Nodes; i++ {
		for k := 0; k < cfg.OpsPerNode; k++ {
			if cfg.DirectOps && rng.Intn(3) == 0 {
				kind := direct[rng.Intn(len(direct))]
				var addr Addr
				switch {
				case uncachedKind[kind]:
					addr = Addr(ioBase + rng.Intn(cfg.Addrs))
				case kind == "prefetch":
					// Prefetches fill this node's cache; keep them on
					// per-node lines so flush/readinv by others never
					// race a cached copy.
					addr = Addr(pfBase + i)
				case kind == "sync" || kind == "intr":
					// Barriers and interrupts are not line addresses;
					// their busy entries must never collide with line
					// transactions.
					addr = Addr(syBase + i)
				default: // flush, readinv
					addr = Addr(mgmtBase + rng.Intn(cfg.Addrs))
				}
				sys.Node(i).Script(Op{Kind: kind, Addr: addr})
				continue
			}
			sys.Node(i).Script(Op{
				Kind: kinds[rng.Intn(len(kinds))],
				Addr: Addr(rng.Intn(cfg.Addrs)),
			})
		}
	}
	return sys, nil
}

// CopyScripts copies every node's pending script from one system to another
// (same node count), so a workload can be replayed on a differently
// configured system (e.g. the implementation engine).
func CopyScripts(from, to *System) {
	for i := range from.nodes {
		to.nodes[i].Script(from.nodes[i].pendingOp...)
	}
}

// CoherenceViolation describes a single-writer/no-stale-sharer violation
// found by CheckCoherence.
type CoherenceViolation struct {
	Addr   Addr
	Detail string
}

// cacheStatesPerAddr collects every cached line's state across nodes.
func (s *System) cacheStatesPerAddr() map[Addr]map[EntityID]string {
	perAddr := map[Addr]map[EntityID]string{}
	for i, n := range s.nodes {
		for a, st := range n.cache {
			if perAddr[a] == nil {
				perAddr[a] = map[EntityID]string{}
			}
			perAddr[a][NodeID(i)] = st
		}
	}
	return perAddr
}

// SafetyViolations checks the MESI single-writer property, which must hold
// in *every* reachable state: at most one cache holds a line
// modified/exclusive, and never alongside sharers. The model checker
// evaluates this per state.
func (s *System) SafetyViolations() []CoherenceViolation {
	var out []CoherenceViolation
	for a, holders := range s.cacheStatesPerAddr() {
		owners, sharers := 0, 0
		for _, st := range holders {
			switch st {
			case protocol.CacheM, protocol.CacheE:
				owners++
			case protocol.CacheS:
				sharers++
			}
		}
		if owners > 1 {
			out = append(out, CoherenceViolation{Addr: a, Detail: fmt.Sprintf("%d exclusive owners", owners)})
		}
		if owners == 1 && sharers > 0 {
			out = append(out, CoherenceViolation{Addr: a, Detail: fmt.Sprintf("owner coexists with %d sharers", sharers)})
		}
	}
	return out
}

// CheckCoherence verifies the full coherence contract on a quiescent
// (completed) system: the single-writer property plus agreement between the
// directory metadata and the caches. The presence vector is a safe
// over-approximation — a dropped replacement hint can leave a stale sharer
// listed, and a later snoop to it is answered benignly — so the check
// demands that every actual holder is tracked, never the converse.
func (s *System) CheckCoherence() []CoherenceViolation {
	out := s.SafetyViolations()
	for a, holders := range s.cacheStatesPerAddr() {
		st, dirSharers := s.dir.Entry(a)
		listed := map[EntityID]bool{}
		for _, id := range dirSharers {
			listed[id] = true
		}
		for id, cst := range holders {
			switch cst {
			case protocol.CacheM, protocol.CacheE:
				if st != protocol.DirMESI || !listed[id] {
					out = append(out, CoherenceViolation{Addr: a,
						Detail: fmt.Sprintf("%s owns the line but directory says %s %v", id, st, dirSharers)})
				}
			case protocol.CacheS:
				if st == protocol.DirI || !listed[id] {
					out = append(out, CoherenceViolation{Addr: a,
						Detail: fmt.Sprintf("%s shares the line but directory says %s %v", id, st, dirSharers)})
				}
			}
		}
	}
	return out
}
