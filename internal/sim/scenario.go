package sim

import (
	"fmt"

	"coherdb/internal/protocol"
	"coherdb/internal/rel"
)

// Tables bundles the controller tables the simulator needs.
type Tables struct {
	D, M, C, N *rel.Table
}

// Map converts the bundle to the Config map form.
func (t Tables) Map() map[string]*rel.Table {
	return map[string]*rel.Table{"D": t.D, "M": t.M, "C": t.C, "N": t.N}
}

// Figure4System builds the §4.2 / Fig. 4 scenario: two interleaved
// transactions on lines A and B across two quads. The local node (node 0)
// holds B modified and wants A exclusive; the remote node (node 1) holds A
// modified and is evicting it. With unit channel capacities and a memory
// controller slower than the snoop round trip, the VC2/VC4 cyclic wait
// freezes under the VC4 assignment and completes under the fixed one.
func Figure4System(tables Tables, assignment *rel.Table) (*System, error) {
	sys, err := NewSystem(Config{
		Nodes:      2,
		ChannelCap: 1,
		// VC0 must hold the two concurrent requests from the local node
		// (§4.2: "the local node concurrently issues wb(B) and readex(A)
		// requests on VC0").
		ChannelCaps:     map[string]int{"VC0": 2},
		Tables:          tables.Map(),
		Assignment:      assignment,
		MemLatency:      12,
		MaxRetries:      1,
		StarvationLimit: 400,
		MaxSteps:        20000,
		Trace:           true,
	})
	if err != nil {
		return nil, err
	}
	const (
		lineA Addr = 0xA
		lineB Addr = 0xB
	)
	local, remote := sys.Node(0), sys.Node(1)
	// Line B: modified at the local node; line A: modified at the remote.
	local.SetCache(lineB, protocol.CacheM)
	sys.Dir().SetOwner(lineB, NodeID(0))
	remote.SetCache(lineA, protocol.CacheM)
	sys.Dir().SetOwner(lineA, NodeID(1))
	// The local node concurrently writes back B and requests A exclusive;
	// the remote node evicts A, so its writeback races the invalidation.
	local.Script(
		Op{Kind: "previct", Addr: lineB}, // -> wb(B)
		Op{Kind: "prwrite", Addr: lineA}, // -> readex(A)
	)
	remote.Script(
		// The eviction is cued so its wb(A) is in flight exactly when
		// sinv(A) lands (§4.2: "the remote node writes back its modified
		// line A... before receiving sinv(A)").
		Op{Kind: "previct", Addr: lineA, Delay: 1},
	)
	return sys, nil
}

// RunFigure4 runs the Fig. 4 scenario under the named channel assignment
// and returns the result.
func RunFigure4(tables Tables, assignmentName string) (*Result, error) {
	v, err := protocol.BuildAssignment(assignmentName)
	if err != nil {
		return nil, err
	}
	sys, err := Figure4System(tables, v)
	if err != nil {
		return nil, err
	}
	return sys.Run()
}

// ReadExSystem builds the Fig. 2 scenario: node 0 requests exclusive
// ownership of a line shared by nodes 1..k, exercising the
// Busy-sd -> Busy-s/Busy-d readex flow.
func ReadExSystem(tables Tables, assignment *rel.Table, sharers int) (*System, error) {
	sys, err := NewSystem(Config{
		Nodes:      sharers + 1,
		ChannelCap: 8,
		Tables:     tables.Map(),
		Assignment: assignment,
		MaxSteps:   50000,
		Trace:      true,
	})
	if err != nil {
		return nil, err
	}
	const line Addr = 0x100
	ids := make([]EntityID, 0, sharers)
	for i := 1; i <= sharers; i++ {
		sys.Node(i).SetCache(line, protocol.CacheS)
		ids = append(ids, NodeID(i))
	}
	sys.Dir().SetShared(line, ids...)
	sys.Node(0).Script(Op{Kind: "prwrite", Addr: line})
	return sys, nil
}

// ScenarioNames lists the built-in scenarios for cmd/cohersim.
func ScenarioNames() []string { return []string{"readex", "fig4"} }

// RunScenario runs a named scenario.
func RunScenario(name string, tables Tables, assignmentName string) (*Result, error) {
	v, err := protocol.BuildAssignment(assignmentName)
	if err != nil {
		return nil, err
	}
	switch name {
	case "readex":
		sys, err := ReadExSystem(tables, v, 3)
		if err != nil {
			return nil, err
		}
		return sys.Run()
	case "fig4":
		sys, err := Figure4System(tables, v)
		if err != nil {
			return nil, err
		}
		return sys.Run()
	default:
		return nil, fmt.Errorf("sim: unknown scenario %q", name)
	}
}
