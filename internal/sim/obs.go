package sim

import "coherdb/internal/obs"

// PublishMetrics records a run's statistics into reg as Prometheus-style
// counters: per-channel delivered messages, controller state transitions,
// steps and retries. A nil registry is a no-op.
func (s Stats) PublishMetrics(reg *obs.Registry) {
	if reg == nil {
		return
	}
	reg.Help("coherdb_sim_messages_delivered_total", "Messages delivered per virtual channel.")
	for ch, n := range s.DeliveredPerChannel {
		reg.Counter("coherdb_sim_messages_delivered_total", obs.L("channel", ch)).Add(int64(n))
	}
	reg.Help("coherdb_sim_transitions_total", "Controller table-row firings across all entities.")
	reg.Counter("coherdb_sim_transitions_total").Add(int64(s.Transitions))
	reg.Help("coherdb_sim_steps_total", "Simulation steps executed.")
	reg.Counter("coherdb_sim_steps_total").Add(int64(s.Steps))
	reg.Help("coherdb_sim_retries_total", "Operations re-issued after an abort.")
	reg.Counter("coherdb_sim_retries_total").Add(int64(s.Retries))
}
