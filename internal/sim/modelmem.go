package sim

// CloneDetached clones the system like Clone and additionally detaches
// the shared table cores' transition counters (tableCore.hits points at
// the ORIGINAL system's stats and is shared by every clone — a data
// race under concurrent Apply). The detached cores are inherited by all
// further Clones of the result, so a whole parallel exploration derived
// from one CloneDetached root is race-free.
func (s *System) CloneDetached() *System {
	c := s.Clone()
	detach := func(tc *tableCore) *tableCore {
		if tc == nil || tc.hits == nil {
			return tc
		}
		cp := *tc
		cp.hits = nil
		return &cp
	}
	cd := c.dir.base()
	cd.core = detach(cd.core)
	c.mem.core = detach(c.mem.core)
	for _, n := range c.nodes {
		n.cacheCore = detach(n.cacheCore)
		n.mshrCore = detach(n.mshrCore)
	}
	return c
}

// Per-container cost estimates for ApproxBytes: Go map/slice headers,
// buckets, and the strings typical protocol states hold.
const (
	systemFixedBytes  = 640 // System + dirCtl + memCtl + per-clone map headers
	channelFixedBytes = 160
	messageBytes      = 112 // Message struct: 3 string headers + contents
	dirEntryBytes     = 144
	sharerBytes       = 48
	busyEntryBytes    = 112
	nodeFixedBytes    = 400
	cacheEntryBytes   = 64
	mshrEntryBytes    = 48
	opBytes           = 40
	outstandingBytes  = 72
	intMapEntryBytes  = 48
)

// ApproxBytes estimates the heap bytes one retained Clone of this
// system costs — what the in-memory model checker pays per stored
// state. It is an estimate (Go map overhead varies with load factor),
// tuned to be slightly conservative; the budget-aware engines use it
// for admission accounting, never for correctness.
func (s *System) ApproxBytes() int64 {
	n := int64(systemFixedBytes)
	for _, ch := range s.channels {
		n += channelFixedBytes + int64(len(ch.q))*messageBytes + int64(len(ch.stamps))*8
	}
	sd := s.dir.base()
	for _, e := range sd.dir {
		n += dirEntryBytes + int64(len(e.sharers))*sharerBytes
	}
	n += int64(len(sd.busy)) * busyEntryBytes
	n += int64(len(s.mem.firstSeen)) * messageBytes
	for _, nd := range s.nodes {
		n += nodeFixedBytes
		n += int64(len(nd.cache)) * cacheEntryBytes
		n += int64(len(nd.mshr)) * mshrEntryBytes
		n += int64(len(nd.pendingOp)) * opBytes
		n += int64(len(nd.outstanding)) * outstandingBytes
		n += int64(len(nd.attempts)+len(nd.issuedAt)) * intMapEntryBytes
	}
	return n
}
