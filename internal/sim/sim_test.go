package sim

import (
	"strings"
	"sync"
	"testing"

	"coherdb/internal/constraint"
	"coherdb/internal/protocol"
	"coherdb/internal/rel"
)

var (
	tabOnce sync.Once
	tabVal  Tables
	tabErr  error
)

func genTables(t testing.TB) Tables {
	t.Helper()
	tabOnce.Do(func() {
		specs, err := protocol.BuildAllSpecs()
		if err != nil {
			tabErr = err
			return
		}
		solve := func(name string) *rel.Table {
			if tabErr != nil {
				return nil
			}
			tab, _, err := constraint.Solve(specs[name])
			if err != nil {
				tabErr = err
				return nil
			}
			return tab
		}
		tabVal = Tables{
			D: solve(protocol.DirectoryTable),
			M: solve(protocol.MemoryTable),
			C: solve(protocol.CacheTable),
			N: solve(protocol.NodeTable),
		}
	})
	if tabErr != nil {
		t.Fatal(tabErr)
	}
	return tabVal
}

func fixedAssignment(t testing.TB) *rel.Table {
	t.Helper()
	v, err := protocol.BuildAssignment(protocol.AssignFixed)
	if err != nil {
		t.Fatal(err)
	}
	return v
}

func TestChannelFIFO(t *testing.T) {
	ch := NewChannel("VC0", 2)
	m1 := Message{Type: "a"}
	m2 := Message{Type: "b"}
	if !ch.Send(m1) || !ch.Send(m2) {
		t.Fatal("sends failed")
	}
	if ch.Send(Message{Type: "c"}) {
		t.Fatal("overfull send accepted")
	}
	if h, ok := ch.Head(); !ok || h.Type != "a" {
		t.Fatal("head wrong")
	}
	if got, _ := ch.Pop(); got.Type != "a" {
		t.Fatal("pop wrong")
	}
	if ch.Len() != 1 {
		t.Fatal("len wrong")
	}
	if !ch.CanSend(1) || ch.CanSend(2) {
		t.Fatal("CanSend wrong")
	}
	snap := ch.Snapshot()
	if len(snap) != 1 || snap[0].Type != "b" {
		t.Fatal("snapshot wrong")
	}
	unbounded := NewChannel("x", 0)
	for i := 0; i < 100; i++ {
		if !unbounded.Send(Message{}) {
			t.Fatal("unbounded channel rejected send")
		}
	}
}

func TestTableCoreMostSpecificMatch(t *testing.T) {
	tab := rel.MustNewTable("T", "inmsg", "st", "out")
	tab.MustInsert(rel.S("req"), rel.Null(), rel.S("generic"))
	tab.MustInsert(rel.S("req"), rel.S("busy"), rel.S("specific"))
	core, err := newTableCore(tab, []string{"inmsg", "st"})
	if err != nil {
		t.Fatal(err)
	}
	row, ok := core.match(map[string]rel.Value{"inmsg": rel.S("req"), "st": rel.S("busy")})
	if !ok || !row.Get("out").Equal(rel.S("specific")) {
		t.Fatal("most specific row not preferred")
	}
	row, ok = core.match(map[string]rel.Value{"inmsg": rel.S("req"), "st": rel.S("other")})
	if !ok || !row.Get("out").Equal(rel.S("generic")) {
		t.Fatal("dontcare row not used as fallback")
	}
	if _, ok := core.match(map[string]rel.Value{"inmsg": rel.S("nosuch"), "st": rel.Null()}); ok {
		t.Fatal("phantom match")
	}
}

func TestSimpleReadMiss(t *testing.T) {
	tables := genTables(t)
	sys, err := NewSystem(Config{
		Nodes: 2, ChannelCap: 4, Tables: tables.Map(),
		Assignment: fixedAssignment(t), MaxSteps: 10000,
	})
	if err != nil {
		t.Fatal(err)
	}
	sys.Node(0).Script(Op{Kind: "prread", Addr: 1})
	res, err := sys.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Outcome != Completed {
		t.Fatalf("outcome = %v", res.Outcome)
	}
	if sys.Node(0).CacheState(1) != protocol.CacheS {
		t.Fatalf("cache state = %s, want S", sys.Node(0).CacheState(1))
	}
	st, sharers := sys.Dir().Entry(1)
	if st != protocol.DirSI || len(sharers) != 1 || sharers[0] != NodeID(0) {
		t.Fatalf("directory = %s %v", st, sharers)
	}
	if sys.Dir().BusyCount() != 0 {
		t.Fatal("busy entries leaked")
	}
}

func TestWriteMissTakesOwnership(t *testing.T) {
	tables := genTables(t)
	sys, err := NewSystem(Config{
		Nodes: 2, ChannelCap: 4, Tables: tables.Map(),
		Assignment: fixedAssignment(t), MaxSteps: 10000,
	})
	if err != nil {
		t.Fatal(err)
	}
	sys.Node(0).Script(Op{Kind: "prwrite", Addr: 7})
	res, err := sys.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Outcome != Completed {
		t.Fatalf("outcome = %v", res.Outcome)
	}
	if sys.Node(0).CacheState(7) != protocol.CacheM {
		t.Fatalf("cache state = %s, want M", sys.Node(0).CacheState(7))
	}
	st, sharers := sys.Dir().Entry(7)
	if st != protocol.DirMESI || len(sharers) != 1 {
		t.Fatalf("directory = %s %v", st, sharers)
	}
}

func TestFigure2ReadExInvalidatesSharers(t *testing.T) {
	tables := genTables(t)
	sys, err := ReadExSystem(tables, fixedAssignment(t), 3)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sys.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Outcome != Completed {
		t.Fatalf("outcome = %v\n%s", res.Outcome, strings.Join(res.Trace, "\n"))
	}
	const line Addr = 0x100
	if sys.Node(0).CacheState(line) != protocol.CacheM {
		t.Fatalf("requester state = %s", sys.Node(0).CacheState(line))
	}
	for i := 1; i <= 3; i++ {
		if st := sys.Node(i).CacheState(line); st != protocol.CacheI {
			t.Fatalf("sharer %d state = %s, want I", i, st)
		}
	}
	st, sharers := sys.Dir().Entry(line)
	if st != protocol.DirMESI || len(sharers) != 1 || sharers[0] != NodeID(0) {
		t.Fatalf("directory = %s %v", st, sharers)
	}
	// The trace must show the Fig. 2 message sequence.
	trace := strings.Join(res.Trace, "\n")
	for _, want := range []string{"readex", "sinv", "mread", "idone", "mdata", "datax", "compl"} {
		if !strings.Contains(trace, want) {
			t.Errorf("trace missing %s", want)
		}
	}
}

func TestUpgradeSoleSharer(t *testing.T) {
	// read then write on the same node: the upgrade finds no other
	// sharer; the synthesized zero-vector completion must still finish.
	tables := genTables(t)
	sys, err := NewSystem(Config{
		Nodes: 2, ChannelCap: 4, Tables: tables.Map(),
		Assignment: fixedAssignment(t), MaxSteps: 20000,
	})
	if err != nil {
		t.Fatal(err)
	}
	sys.Node(0).Script(
		Op{Kind: "prread", Addr: 3},
		Op{Kind: "prwrite", Addr: 3},
	)
	res, err := sys.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Outcome != Completed {
		t.Fatalf("outcome = %v", res.Outcome)
	}
	if sys.Node(0).CacheState(3) != protocol.CacheM {
		t.Fatalf("state = %s, want M", sys.Node(0).CacheState(3))
	}
}

func TestWritebackReleasesOwnership(t *testing.T) {
	tables := genTables(t)
	sys, err := NewSystem(Config{
		Nodes: 2, ChannelCap: 4, Tables: tables.Map(),
		Assignment: fixedAssignment(t), MaxSteps: 20000,
	})
	if err != nil {
		t.Fatal(err)
	}
	sys.Node(0).SetCache(9, protocol.CacheM)
	sys.Dir().SetOwner(9, NodeID(0))
	sys.Node(0).Script(Op{Kind: "previct", Addr: 9})
	res, err := sys.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Outcome != Completed {
		t.Fatalf("outcome = %v", res.Outcome)
	}
	if st, _ := sys.Dir().Entry(9); st != protocol.DirI {
		t.Fatalf("directory = %s, want I", st)
	}
	if sys.Node(0).CacheState(9) != protocol.CacheI {
		t.Fatal("cache still holds the line")
	}
}

func TestFigure4DeadlockUnderVC4Assignment(t *testing.T) {
	// F4: the published deadlock manifests dynamically under the VC4
	// assignment...
	tables := genTables(t)
	res, err := RunFigure4(tables, protocol.AssignVC4)
	if err != nil {
		t.Fatal(err)
	}
	if res.Outcome != Deadlocked {
		t.Fatalf("outcome = %v, want deadlock\n%s", res.Outcome, strings.Join(res.Trace, "\n"))
	}
	// The blockage must involve VC2 and VC4 (the cyclic pair of Fig. 4).
	if !strings.Contains(res.Blockage, "VC4") || !strings.Contains(res.Blockage, "VC2") {
		t.Fatalf("blockage does not show the VC2/VC4 pair:\n%s", res.Blockage)
	}
}

func TestFigure4CompletesUnderFixedAssignment(t *testing.T) {
	// ... and disappears once mread rides the dedicated path.
	tables := genTables(t)
	res, err := RunFigure4(tables, protocol.AssignFixed)
	if err != nil {
		t.Fatal(err)
	}
	if res.Outcome != Completed {
		t.Fatalf("outcome = %v\n%s\n%s", res.Outcome, res.Blockage, strings.Join(res.Trace, "\n"))
	}
}

func TestRunScenarioNames(t *testing.T) {
	tables := genTables(t)
	if len(ScenarioNames()) != 2 {
		t.Fatal("scenario list wrong")
	}
	if _, err := RunScenario("nosuch", tables, protocol.AssignFixed); err == nil {
		t.Fatal("unknown scenario must error")
	}
	res, err := RunScenario("readex", tables, protocol.AssignFixed)
	if err != nil || res.Outcome != Completed {
		t.Fatalf("readex scenario: %v %v", err, res)
	}
}

func TestRandomWorkloadCoherent(t *testing.T) {
	tables := genTables(t)
	for _, seed := range []int64{1, 2, 3} {
		sys, err := RandomSystem(tables, fixedAssignment(t), RandomConfig{
			Nodes: 3, Addrs: 3, OpsPerNode: 15, Seed: seed,
		})
		if err != nil {
			t.Fatal(err)
		}
		res, err := sys.Run()
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if res.Outcome != Completed {
			t.Fatalf("seed %d: outcome %v\n%s", seed, res.Outcome, res.Blockage)
		}
		if v := sys.CheckCoherence(); len(v) != 0 {
			t.Fatalf("seed %d: coherence violations: %v", seed, v)
		}
		if res.Stats.OpsCompleted == 0 {
			t.Fatalf("seed %d: nothing completed", seed)
		}
	}
}

func TestDeterministicRuns(t *testing.T) {
	tables := genTables(t)
	run := func() Stats {
		sys, err := RandomSystem(tables, fixedAssignment(t), RandomConfig{
			Nodes: 3, Addrs: 2, OpsPerNode: 10, Seed: 42,
		})
		if err != nil {
			t.Fatal(err)
		}
		res, err := sys.Run()
		if err != nil {
			t.Fatal(err)
		}
		return res.Stats
	}
	a, b := run(), run()
	if a.Steps != b.Steps || a.Delivered != b.Delivered || a.OpsCompleted != b.OpsCompleted {
		t.Fatalf("nondeterministic: %+v vs %+v", a, b)
	}
}

func TestDeterministicFinalFingerprint(t *testing.T) {
	// Same seed, same final protocol state — byte for byte.
	tables := genTables(t)
	run := func() string {
		sys, err := RandomSystem(tables, fixedAssignment(t), RandomConfig{
			Nodes: 3, Addrs: 3, OpsPerNode: 15, Seed: 99, DirectOps: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := sys.Run(); err != nil {
			t.Fatal(err)
		}
		return sys.Fingerprint()
	}
	if run() != run() {
		t.Fatal("final fingerprints differ across identical runs")
	}
}

func TestOutcomeString(t *testing.T) {
	if Completed.String() == "" || Deadlocked.String() == "" || StepLimit.String() == "" {
		t.Fatal("outcome strings empty")
	}
	if Outcome(99).String() != "unknown" {
		t.Fatal("unknown outcome")
	}
}
