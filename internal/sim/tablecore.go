package sim

import (
	"fmt"

	"coherdb/internal/rel"
)

// tableCore executes a controller table: given a binding of input columns,
// it finds the matching row. A NULL in an input column of a row is a
// dontcare and matches anything; the most specific matching row (fewest
// dontcares among bound inputs) wins, which resolves the overlap between
// the concrete interleaving rows and dontcare retry rows.
type tableCore struct {
	tab    *rel.Table
	inCols []string
	inIdx  []int
	// index on the first input column (typically inmsg) to avoid scanning
	// the whole table for every lookup.
	byFirst map[string][]int
	// hits, when set, is incremented on every successful match — wired to
	// the owning System's Stats.Transitions.
	hits *int
}

func newTableCore(tab *rel.Table, inCols []string) (*tableCore, error) {
	tc := &tableCore{tab: tab, inCols: inCols, byFirst: make(map[string][]int)}
	for _, c := range inCols {
		j := tab.ColIndex(c)
		if j < 0 {
			return nil, fmt.Errorf("sim: table %q lacks input column %q", tab.Name(), c)
		}
		tc.inIdx = append(tc.inIdx, j)
	}
	first := tc.inIdx[0]
	for i := 0; i < tab.NumRows(); i++ {
		k := tab.RawRow(i)[first].Str()
		tc.byFirst[k] = append(tc.byFirst[k], i)
	}
	return tc, nil
}

// match finds the most specific row matching the binding. The binding maps
// input column names to concrete values; a missing binding entry is treated
// as NULL.
func (tc *tableCore) match(binding map[string]rel.Value) (rel.Row, bool) {
	firstVal := binding[tc.inCols[0]]
	best := -1
	bestScore := -1
	for _, i := range tc.byFirst[firstVal.Str()] {
		row := tc.tab.RawRow(i)
		score := 0
		ok := true
		for k, j := range tc.inIdx {
			want := row[j]
			if want.IsNull() {
				continue // dontcare
			}
			got := binding[tc.inCols[k]]
			if !want.Equal(got) {
				ok = false
				break
			}
			score++
		}
		if ok && score > bestScore {
			bestScore = score
			best = i
		}
	}
	if best < 0 {
		return rel.Row{}, false
	}
	if tc.hits != nil {
		*tc.hits++
	}
	return tc.tab.Row(best), true
}
