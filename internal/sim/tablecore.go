package sim

import (
	"fmt"

	"coherdb/internal/rel"
)

// tableCore executes a controller table: given a binding of input columns,
// it finds the matching row. A NULL in an input column of a row is a
// dontcare and matches anything; the most specific matching row (fewest
// dontcares among bound inputs) wins, which resolves the overlap between
// the concrete interleaving rows and dontcare retry rows.
type tableCore struct {
	tab    *rel.Table
	inCols []string
	inIdx  []int
	// inCodes holds the table's input columns as zero-copy dictionary-code
	// vectors, so matching is pure uint32 compares against the pre-encoded
	// binding.
	inCodes [][]uint32
	// index on the first input column (typically inmsg) to avoid scanning
	// the whole table for every lookup. Keyed by Str(), not code: S("")
	// and NULL collide under Str(), and that looseness is part of the
	// matcher's observed behaviour.
	byFirst map[string][]int
	// hits, when set, is incremented on every successful match — wired to
	// the owning System's Stats.Transitions.
	hits *int
}

// noCode marks a binding value absent from the dictionary: no table cell
// can equal it, so it never matches a non-dontcare cell.
const noCode = ^uint32(0)

func newTableCore(tab *rel.Table, inCols []string) (*tableCore, error) {
	tc := &tableCore{tab: tab, inCols: inCols, byFirst: make(map[string][]int)}
	for _, c := range inCols {
		j := tab.ColIndex(c)
		if j < 0 {
			return nil, fmt.Errorf("sim: table %q lacks input column %q", tab.Name(), c)
		}
		tc.inIdx = append(tc.inIdx, j)
		tc.inCodes = append(tc.inCodes, tab.ColCodes(j))
	}
	for i := 0; i < tab.NumRows(); i++ {
		k := tab.At(i, tc.inIdx[0]).Str()
		tc.byFirst[k] = append(tc.byFirst[k], i)
	}
	return tc, nil
}

// match finds the most specific row matching the binding. The binding maps
// input column names to concrete values; a missing binding entry is treated
// as NULL. The binding is encoded once (a read-only dictionary probe — a
// value the dictionary has never seen cannot match any cell), then every
// candidate row is scored with integer compares.
func (tc *tableCore) match(binding map[string]rel.Value) (rel.Row, bool) {
	d := tc.tab.Dict()
	bcodes := make([]uint32, len(tc.inCols))
	for k, name := range tc.inCols {
		if c, ok := d.LookupCode(binding[name]); ok {
			bcodes[k] = c
		} else {
			bcodes[k] = noCode
		}
	}
	best := -1
	bestScore := -1
	for _, i := range tc.byFirst[binding[tc.inCols[0]].Str()] {
		score := 0
		ok := true
		for k := range tc.inIdx {
			want := tc.inCodes[k][i]
			if want == rel.NullCode {
				continue // dontcare
			}
			if want != bcodes[k] {
				ok = false
				break
			}
			score++
		}
		if ok && score > bestScore {
			bestScore = score
			best = i
		}
	}
	if best < 0 {
		return rel.Row{}, false
	}
	if tc.hits != nil {
		*tc.hits++
	}
	return tc.tab.Row(best), true
}
