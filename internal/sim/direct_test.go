package sim

import (
	"strings"
	"testing"

	"coherdb/internal/protocol"
)

// newDirectSystem builds a 2-node system with generous channels for the
// direct-transaction tests.
func newDirectSystem(t *testing.T) *System {
	t.Helper()
	sys, err := NewSystem(Config{
		Nodes: 2, ChannelCap: 8, Tables: genTables(t).Map(),
		Assignment: fixedAssignment(t), MaxSteps: 30000, Trace: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

func runDirect(t *testing.T, sys *System, wantOps int) *Result {
	t.Helper()
	res, err := sys.Run()
	if err != nil {
		t.Fatalf("%v\n%s", err, strings.Join(sys.TraceLines(), "\n"))
	}
	if res.Outcome != Completed {
		t.Fatalf("outcome = %v\n%s", res.Outcome, res.Blockage)
	}
	if res.Stats.OpsCompleted != wantOps {
		t.Fatalf("ops completed = %d, want %d", res.Stats.OpsCompleted, wantOps)
	}
	return res
}

func wantTrace(t *testing.T, res *Result, wants ...string) {
	t.Helper()
	trace := strings.Join(res.Trace, "\n")
	for _, w := range wants {
		if !strings.Contains(trace, w) {
			t.Errorf("trace missing %q", w)
		}
	}
}

func TestIOReadTransaction(t *testing.T) {
	sys := newDirectSystem(t)
	sys.Node(0).Script(Op{Kind: "ioread", Addr: 0x1000})
	res := runDirect(t, sys, 1)
	wantTrace(t, res, "ioread", "mread", "iodata", "compl")
	if sys.Dir().BusyCount() != 0 {
		t.Fatal("busy entry leaked")
	}
}

func TestIOWriteTransaction(t *testing.T) {
	sys := newDirectSystem(t)
	sys.Node(0).Script(Op{Kind: "iowrite", Addr: 0x1000})
	res := runDirect(t, sys, 1)
	wantTrace(t, res, "iowrite", "mwrite", "mdone", "iocompl", "compl")
}

func TestUncachedTransactions(t *testing.T) {
	sys := newDirectSystem(t)
	sys.Node(0).Script(
		Op{Kind: "ucread", Addr: 0x1001},
		Op{Kind: "ucwrite", Addr: 0x1002},
	)
	res := runDirect(t, sys, 2)
	wantTrace(t, res, "ucread", "ucdata", "ucwrite", "uccompl")
}

func TestFetchAddTransaction(t *testing.T) {
	sys := newDirectSystem(t)
	sys.Node(0).Script(Op{Kind: "fetchadd", Addr: 0x1003})
	res := runDirect(t, sys, 1)
	// mrmw returns both mdata and mdone; the transaction must traverse
	// the at-dm -> at-m/at-d -> at-c chain.
	wantTrace(t, res, "fetchadd", "mrmw", "mdata", "mdone", "atdata")
}

func TestSyncTransaction(t *testing.T) {
	sys := newDirectSystem(t)
	sys.Node(0).Script(Op{Kind: "sync", Addr: 0})
	res := runDirect(t, sys, 1)
	wantTrace(t, res, "sync", "syncack", "compl")
}

func TestInterruptTransaction(t *testing.T) {
	sys := newDirectSystem(t)
	sys.Node(0).Script(Op{Kind: "intr", Addr: 0})
	res := runDirect(t, sys, 1)
	// The interrupt is forwarded to the peer node, acknowledged back to
	// home, and the ack is relayed to the requester.
	wantTrace(t, res, "intr(0) dir->node1", "intrack(0) node1->dir", "intrack(0) dir->node0")
}

func TestFlushTransactionInvalidatesSharers(t *testing.T) {
	sys := newDirectSystem(t)
	// Node 1 holds the line shared; node 0 flushes it.
	sys.Node(1).SetCache(0x20, protocol.CacheS)
	sys.Dir().SetShared(0x20, NodeID(1))
	sys.Node(0).Script(Op{Kind: "flush", Addr: 0x20})
	res := runDirect(t, sys, 1)
	wantTrace(t, res, "flush", "sinv", "idone", "flcompl")
	if st, _ := sys.Dir().Entry(0x20); st != protocol.DirI {
		t.Fatalf("directory = %s, want I", st)
	}
	if sys.Node(1).CacheState(0x20) != protocol.CacheI {
		t.Fatal("sharer still holds the line")
	}
}

func TestFlushTransactionDrainsOwner(t *testing.T) {
	sys := newDirectSystem(t)
	sys.Node(1).SetCache(0x21, protocol.CacheM)
	sys.Dir().SetOwner(0x21, NodeID(1))
	sys.Node(0).Script(Op{Kind: "flush", Addr: 0x21})
	res := runDirect(t, sys, 1)
	// MESI flush: sflush to the owner, its data written back, then done.
	wantTrace(t, res, "sflush", "sdata", "mwrite", "mdone", "flcompl")
	if st, _ := sys.Dir().Entry(0x21); st != protocol.DirI {
		t.Fatalf("directory = %s, want I", st)
	}
}

func TestReadInvTransaction(t *testing.T) {
	sys := newDirectSystem(t)
	sys.Node(1).SetCache(0x22, protocol.CacheS)
	sys.Dir().SetShared(0x22, NodeID(1))
	sys.Node(0).Script(Op{Kind: "readinv", Addr: 0x22})
	res := runDirect(t, sys, 1)
	wantTrace(t, res, "readinv", "sinv", "idone", "data")
	if st, _ := sys.Dir().Entry(0x22); st != protocol.DirI {
		t.Fatalf("directory = %s, want I (readinv leaves nothing cached)", st)
	}
	if sys.Node(0).CacheState(0x22) != protocol.CacheI {
		t.Fatal("readinv must not fill the requester's cache")
	}
}

func TestPrefetchTransaction(t *testing.T) {
	sys := newDirectSystem(t)
	sys.Node(0).Script(Op{Kind: "prefetch", Addr: 0x23})
	res := runDirect(t, sys, 1)
	wantTrace(t, res, "prefetch", "mread", "pfdata")
	if sys.Node(0).CacheState(0x23) != protocol.CacheS {
		t.Fatal("prefetch must fill the cache shared")
	}
	st, sharers := sys.Dir().Entry(0x23)
	if st != protocol.DirSI || len(sharers) != 1 {
		t.Fatalf("directory = %s %v", st, sharers)
	}
	if v := sys.CheckCoherence(); len(v) != 0 {
		t.Fatalf("coherence: %v", v)
	}
}

func TestDirectConflictRetries(t *testing.T) {
	// Two nodes hammer the same I/O line; the busy directory serializes
	// them with retries and both eventually complete.
	sys := newDirectSystem(t)
	sys.Node(0).Script(Op{Kind: "iowrite", Addr: 0x1000})
	sys.Node(1).Script(Op{Kind: "iowrite", Addr: 0x1000})
	res := runDirect(t, sys, 2)
	if res.Stats.Retries == 0 {
		t.Log("note: no retry was needed (interleaving avoided the conflict)")
	}
	if sys.Dir().BusyCount() != 0 {
		t.Fatal("busy entry leaked")
	}
}

func TestRandomWithDirectOpsCoherent(t *testing.T) {
	for _, seed := range []int64{7, 8, 9, 10} {
		sys, err := RandomSystem(genTables(t), fixedAssignment(t), RandomConfig{
			Nodes: 3, Addrs: 3, OpsPerNode: 20, Seed: seed, DirectOps: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		res, err := sys.Run()
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if res.Outcome != Completed {
			t.Fatalf("seed %d: %v\n%s", seed, res.Outcome, res.Blockage)
		}
		if v := sys.CheckCoherence(); len(v) != 0 {
			t.Fatalf("seed %d: %v", seed, v)
		}
	}
}
