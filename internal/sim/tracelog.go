package sim

import (
	"fmt"

	"coherdb/internal/rel"
	"coherdb/internal/segment"
)

// TraceLog accumulates the event trace out-of-core: each line is a
// (step, body) pair stored as a width-2 code tuple in a compressed
// segment store, with the body interned in a log-private dictionary.
// Trace bodies repeat heavily (the same sends/delivers over and over),
// so long runs cost a few bytes per line instead of a retained string;
// with a budget and spill directory the trace corpus can exceed RAM.
type TraceLog struct {
	dict  *rel.Dict
	store *segment.Store
	buf   []uint32
}

// NewTraceLog returns an empty log. budget caps resident bytes (0 =
// unlimited); spillDir, when non-empty, lets cold blocks spill to disk
// under budget pressure.
func NewTraceLog(budget int64, spillDir string) *TraceLog {
	return &TraceLog{
		dict: rel.NewDict(),
		store: segment.NewStore(segment.StoreConfig{
			Width:     2,
			BlockRows: 1024,
			Budget:    budget,
			SpillDir:  spillDir,
		}),
		buf: make([]uint32, 2),
	}
}

// Add appends one line.
func (t *TraceLog) Add(step int, body string) {
	t.buf[0] = uint32(step)
	t.buf[1] = t.dict.Code(rel.S(body))
	t.store.Append(t.buf)
}

// Len reports the number of lines.
func (t *TraceLog) Len() int64 { return t.store.Rows() }

// Each streams the formatted lines in order; returning false stops.
func (t *TraceLog) Each(fn func(line string) bool) {
	t.store.Stream(0, t.store.Rows(), func(id int64, tuple []uint32) bool {
		return fn(fmt.Sprintf("[%5d] %s", int(tuple[0]), t.dict.Value(tuple[1]).Str()))
	})
}

// Lines materializes every formatted line (the in-memory Result.Trace
// contract; for out-of-core traces prefer Each).
func (t *TraceLog) Lines() []string {
	out := make([]string, 0, t.store.Rows())
	t.Each(func(line string) bool {
		out = append(out, line)
		return true
	})
	return out
}

// Stats exposes the underlying store accounting (resident/spilled
// bytes, spills, faults).
func (t *TraceLog) Stats() segment.Stats { return t.store.Stats() }

// Bytes reports resident bytes of the log (store + dictionary).
func (t *TraceLog) Bytes() int64 {
	return t.store.Stats().ResidentBytes + t.dict.Bytes()
}

// Close removes any spill files.
func (t *TraceLog) Close() error { return t.store.Close() }
