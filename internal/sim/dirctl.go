package sim

import (
	"fmt"
	"sort"

	"coherdb/internal/protocol"
	"coherdb/internal/rel"
)

// dirEntry is the concrete directory state the hardware keeps beside the
// table: the stable state and the identities behind the presence vector.
type dirEntry struct {
	st      string
	sharers map[EntityID]bool
}

// busyEntry is one busy-directory entry: the transaction's current busy
// state, the pending response count, and the requester the completion goes
// back to.
type busyEntry struct {
	st        string
	pending   int
	requester EntityID
}

// dirCtl executes the generated directory table D.
type dirCtl struct {
	sys  *System
	core *tableCore
	dir  map[Addr]*dirEntry
	busy map[Addr]*busyEntry
}

var dirInputs = []string{
	"inmsg", "inmsgsrc", "inmsgdest", "inmsgrsrc",
	"bdirhit", "bdirst", "bdirpv", "dirhit", "dirst", "dirpv",
}

func newDirCtl(s *System, tab *rel.Table) (*dirCtl, error) {
	if tab == nil {
		return nil, fmt.Errorf("%w: D", ErrBadTable)
	}
	core, err := newTableCore(tab, dirInputs)
	if err != nil {
		return nil, err
	}
	core.hits = &s.stats.Transitions
	return &dirCtl{
		sys:  s,
		core: core,
		dir:  make(map[Addr]*dirEntry),
		busy: make(map[Addr]*busyEntry),
	}, nil
}

// SetOwner initializes a line as exclusively owned (scenario setup).
func (d *dirCtl) SetOwner(a Addr, owner EntityID) {
	d.dir[a] = &dirEntry{st: protocol.DirMESI, sharers: map[EntityID]bool{owner: true}}
}

// SetShared initializes a line as shared by the given nodes.
func (d *dirCtl) SetShared(a Addr, sharers ...EntityID) {
	e := &dirEntry{st: protocol.DirSI, sharers: map[EntityID]bool{}}
	for _, s := range sharers {
		e.sharers[s] = true
	}
	d.dir[a] = e
}

// Entry returns the directory state and sharers of a line (tests).
func (d *dirCtl) Entry(a Addr) (string, []EntityID) {
	e, ok := d.dir[a]
	if !ok || e.st == protocol.DirI {
		return protocol.DirI, nil
	}
	var out []EntityID
	for s := range e.sharers {
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return e.st, out
}

// BusyCount returns the number of live busy entries (tests).
func (d *dirCtl) BusyCount() int { return len(d.busy) }

// tick is a no-op for the spec-level engine (no internal queues).
func (d *dirCtl) tick() bool { return false }

// quiescent is always true for the spec-level engine.
func (d *dirCtl) quiescent() bool { return true }

// base exposes the shared directory state to the System (cloning,
// fingerprinting).
func (d *dirCtl) base() *dirCtl { return d }

var snoopResponseSet = map[string]bool{
	"idone": true, "sdone": true, "sdata": true, "swbdata": true, "intrack": true,
}

// srcRole computes the role the sender plays for this message, mirroring
// the table's inmsgsrc constraint.
func (d *dirCtl) srcRole(msg Message) string {
	switch {
	case snoopResponseSet[msg.Type]:
		return protocol.RoleRemote
	case msg.From == Mem:
		return protocol.RoleHome
	default:
		return protocol.RoleLocal
	}
}

func pvOf(st string) string {
	switch st {
	case protocol.DirSI:
		return protocol.PVGone
	case protocol.DirMESI:
		return protocol.PVOne
	default:
		return protocol.PVZero
	}
}

var cacheableSet = func() map[string]bool {
	m := map[string]bool{}
	for _, q := range []string{"read", "readex", "upgrade", "readinv", "wb", "pwb", "flush", "replhint", "prefetch"} {
		m[q] = true
	}
	return m
}()

// rowGetter abstracts a matched controller row: rel.Row satisfies it, and
// so does the implementation controller's output map.
type rowGetter interface {
	Get(col string) rel.Value
}

// mapRow adapts a column->value map to rowGetter.
type mapRow map[string]rel.Value

// Get implements rowGetter; absent columns read as NULL.
func (m mapRow) Get(col string) rel.Value { return m[col] }

// bindingFor builds the D-table input binding for one message, together
// with the current busy and directory entries.
func (d *dirCtl) bindingFor(msg Message) (map[string]rel.Value, *busyEntry, *dirEntry, error) {
	isReq := protocol.IsRequest(msg.Type)
	be := d.busy[msg.Addr]
	de := d.dir[msg.Addr]

	binding := map[string]rel.Value{
		"inmsg":     rel.S(msg.Type),
		"inmsgsrc":  rel.S(d.srcRole(msg)),
		"inmsgdest": rel.S(protocol.RoleHome),
		"inmsgrsrc": rel.S(protocol.QResp),
		"bdirhit":   rel.S("miss"),
		"bdirst":    rel.S(protocol.DirI),
		"bdirpv":    rel.Null(),
		"dirhit":    rel.Null(),
		"dirst":     rel.Null(),
		"dirpv":     rel.Null(),
	}
	if isReq {
		binding["inmsgrsrc"] = rel.S(protocol.QReq)
	}
	if be != nil {
		binding["bdirhit"] = rel.S("hit")
		binding["bdirst"] = rel.S(be.st)
		if msg.Type == "idone" {
			if be.pending <= 1 {
				binding["bdirpv"] = rel.S(protocol.PVOne)
			} else {
				binding["bdirpv"] = rel.S(protocol.PVGone)
			}
		}
	} else if !isReq {
		return nil, nil, nil, fmt.Errorf("sim: response %s with no busy entry", msg)
	}
	if isReq && be == nil && cacheableSet[msg.Type] {
		st := protocol.DirI
		if de != nil {
			st = de.st
		}
		// The hardware compares the presence vector with the requester: a
		// writeback from a non-owner, or an upgrade/replacement hint from
		// a node no longer in the vector (it lost a race and was
		// invalidated), is stale and treated as a miss — the nack rows
		// answer it.
		switch msg.Type {
		case "wb", "pwb":
			if st == protocol.DirMESI && !de.sharers[msg.From] {
				st = protocol.DirI
			}
		case "upgrade", "replhint":
			if st == protocol.DirSI && !de.sharers[msg.From] {
				st = protocol.DirI
			}
		}
		if st == protocol.DirI {
			binding["dirhit"] = rel.S("miss")
		} else {
			binding["dirhit"] = rel.S("hit")
		}
		binding["dirst"] = rel.S(st)
		binding["dirpv"] = rel.S(pvOf(st))
	}
	return binding, be, de, nil
}

// requesterFor resolves the transaction's requester: the sender for
// requests, the busy entry's recorded requester for responses.
func (d *dirCtl) requesterFor(msg Message, be *busyEntry) EntityID {
	if !protocol.IsRequest(msg.Type) && be != nil {
		return be.requester
	}
	return msg.From
}

// outputsFor builds the outgoing message batch of a matched row, plus the
// snoop target list and whether a zero-target counting allocation needs a
// synthesized idone.
func (d *dirCtl) outputsFor(row rowGetter, msg Message, de *dirEntry, requester EntityID) (out []Message, snoopTargets []EntityID, loadWithNoTargets bool) {
	if m := row.Get("remmsg"); !m.IsNull() {
		snoopTargets = d.snoopTargets(msg, de, requester)
		for _, tgt := range snoopTargets {
			out = append(out, Message{
				Type: m.Str(), From: Dir, To: tgt, Addr: msg.Addr,
				VC: d.sys.vcOf(m.Str(), protocol.RoleHome, protocol.RoleRemote),
			})
		}
	}
	if m := row.Get("locmsg"); !m.IsNull() {
		out = append(out, Message{
			Type: m.Str(), From: Dir, To: requester, Addr: msg.Addr,
			VC: d.sys.vcOf(m.Str(), protocol.RoleHome, protocol.RoleLocal),
		})
	}
	if m := row.Get("memmsg"); !m.IsNull() {
		out = append(out, Message{
			Type: m.Str(), From: Dir, To: Mem, Addr: msg.Addr,
			VC: d.sys.vcOf(m.Str(), protocol.RoleHome, protocol.RoleHome),
		})
	}
	// Counting allocation with no snoop target (the requester is the only
	// sharer): the hardware sees an already-zero vector; we synthesize the
	// final idone over the internal path so the completion row fires.
	loadWithNoTargets = row.Get("nxtbdirpv").Equal(rel.S(protocol.PVLoad)) &&
		!row.Get("remmsg").IsNull() && len(snoopTargets) == 0
	if loadWithNoTargets {
		out = append(out, Message{Type: "idone", From: Dir, To: Dir, Addr: msg.Addr, VC: ""})
	}
	return out, snoopTargets, loadWithNoTargets
}

// process consumes one message; it returns false (leaving the message at
// the channel head) when the required output channel slots are unavailable.
func (d *dirCtl) process(msg Message) (bool, error) {
	binding, be, de, err := d.bindingFor(msg)
	if err != nil {
		return false, err
	}
	row, ok := d.core.match(binding)
	if !ok {
		return false, fmt.Errorf("%w: D input %v", ErrNoRow, describeBinding(binding))
	}
	requester := d.requesterFor(msg, be)
	out, snoopTargets, loadWithNoTargets := d.outputsFor(row, msg, de, requester)
	if !d.sys.canSendAll(out) {
		return false, nil
	}
	d.applyState(row, msg, be, de, requester, snoopTargets, loadWithNoTargets)
	d.sys.sendAll(out)
	return true, nil
}

// applyState applies a matched row's busy-directory and directory updates.
func (d *dirCtl) applyState(row rowGetter, msg Message, be *busyEntry, de *dirEntry, requester EntityID, snoopTargets []EntityID, loadWithNoTargets bool) {
	// Apply busy-directory updates.
	switch {
	case row.Get("bdiralloc").Equal(rel.S("alloc")):
		nb := &busyEntry{st: row.Get("nxtbdirst").Str(), requester: requester}
		if row.Get("nxtbdirpv").Equal(rel.S(protocol.PVLoad)) {
			nb.pending = len(snoopTargets)
			if loadWithNoTargets {
				nb.pending = 1
			}
		}
		d.busy[msg.Addr] = nb
	case row.Get("bdiralloc").Equal(rel.S("dealloc")):
		delete(d.busy, msg.Addr)
	default:
		if be != nil {
			if v := row.Get("nxtbdirst"); !v.IsNull() {
				be.st = v.Str()
			}
			if row.Get("nxtbdirpv").Equal(rel.S(protocol.PVDec)) {
				be.pending--
			}
		}
	}

	// Apply directory updates.
	if row.Get("dirupd").Equal(rel.S("upd")) {
		if de == nil {
			de = &dirEntry{st: protocol.DirI, sharers: map[EntityID]bool{}}
			d.dir[msg.Addr] = de
		}
		actor := msg.From
		switch row.Get("nxtdirpv").Str() {
		case protocol.PVInc:
			de.sharers[requester] = true
		case protocol.PVRepl:
			de.sharers = map[EntityID]bool{requester: true}
		case protocol.PVClear:
			de.sharers = map[EntityID]bool{}
		case protocol.PVDec:
			delete(de.sharers, actor)
		case protocol.PVDRepl:
			delete(de.sharers, actor)
			if len(de.sharers) == 0 {
				de.st = protocol.DirI
			}
		}
		if v := row.Get("nxtdirst"); !v.IsNull() {
			de.st = v.Str()
		}
		if row.Get("diralloc").Equal(rel.S("dealloc")) || de.st == protocol.DirI && len(de.sharers) == 0 {
			if de.st == protocol.DirI {
				delete(d.dir, msg.Addr)
			}
		}
	}
}

// snoopTargets resolves which nodes a remmsg goes to: the owner under MESI,
// all sharers except the requester under SI, and a peer node for forwarded
// interrupts.
func (d *dirCtl) snoopTargets(msg Message, de *dirEntry, requester EntityID) []EntityID {
	if msg.Type == "intr" {
		for i := range d.sys.nodes {
			if NodeID(i) != requester {
				return []EntityID{NodeID(i)}
			}
		}
		return nil
	}
	if de == nil {
		return nil
	}
	var out []EntityID
	for sh := range de.sharers {
		if sh != requester {
			out = append(out, sh)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func describeBinding(b map[string]rel.Value) string {
	keys := make([]string, 0, len(b))
	for k := range b {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	s := ""
	for _, k := range keys {
		s += fmt.Sprintf("%s=%v ", k, b[k])
	}
	return s
}
