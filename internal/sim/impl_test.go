package sim

import (
	"strings"
	"sync"
	"testing"

	"coherdb/internal/hwmap"
	"coherdb/internal/protocol"
	"coherdb/internal/sqlmini"
)

var (
	mapOnce sync.Once
	mapVal  *hwmap.Mapping
	mapErr  error
)

func implMapping(t testing.TB) *hwmap.Mapping {
	t.Helper()
	mapOnce.Do(func() {
		db := sqlmini.NewDB()
		mapVal, mapErr = hwmap.Partition(db, genTables(t).D)
	})
	if mapErr != nil {
		t.Fatal(mapErr)
	}
	return mapVal
}

func implSystem(t *testing.T, updqCap int) *System {
	t.Helper()
	sys, err := NewSystem(Config{
		Nodes: 3, ChannelCap: 8, Tables: genTables(t).Map(),
		Assignment: fixedAssignment(t), Mapping: implMapping(t),
		ImplUpdQueueCap: updqCap, MaxSteps: 60000, Trace: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

func TestImplSimpleReadMiss(t *testing.T) {
	sys := implSystem(t, 0)
	sys.Node(0).Script(Op{Kind: "prread", Addr: 1})
	res, err := sys.Run()
	if err != nil {
		t.Fatalf("%v\n%s", err, strings.Join(res2trace(sys), "\n"))
	}
	if res.Outcome != Completed {
		t.Fatalf("outcome = %v", res.Outcome)
	}
	if sys.Node(0).CacheState(1) != protocol.CacheS {
		t.Fatalf("cache = %s", sys.Node(0).CacheState(1))
	}
	st, sharers := sys.Dir().Entry(1)
	if st != protocol.DirSI || len(sharers) != 1 {
		t.Fatalf("directory = %s %v", st, sharers)
	}
}

func res2trace(s *System) []string { return s.TraceLines() }

func TestImplReadExFlow(t *testing.T) {
	sys, err := NewSystem(Config{
		Nodes: 4, ChannelCap: 8, Tables: genTables(t).Map(),
		Assignment: fixedAssignment(t), Mapping: implMapping(t),
		MaxSteps: 60000,
	})
	if err != nil {
		t.Fatal(err)
	}
	const line Addr = 0x100
	for i := 1; i <= 3; i++ {
		sys.Node(i).SetCache(line, protocol.CacheS)
	}
	sys.Dir().SetShared(line, NodeID(1), NodeID(2), NodeID(3))
	sys.Node(0).Script(Op{Kind: "prwrite", Addr: line})
	res, err := sys.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Outcome != Completed {
		t.Fatalf("outcome = %v", res.Outcome)
	}
	if sys.Node(0).CacheState(line) != protocol.CacheM {
		t.Fatal("requester not M")
	}
	st, sharers := sys.Dir().Entry(line)
	if st != protocol.DirMESI || len(sharers) != 1 || sharers[0] != NodeID(0) {
		t.Fatalf("directory = %s %v", st, sharers)
	}
}

func TestImplMatchesSpecOnRandomWorkloads(t *testing.T) {
	// The §5 preservation claim, dynamically: the implementation engine
	// completes the same workloads coherently and with the same number of
	// operations as the spec-level engine.
	for _, seed := range []int64{11, 12, 13} {
		run := func(m *hwmap.Mapping) (*Result, *System) {
			sys, err := RandomSystem(genTables(t), fixedAssignment(t), RandomConfig{
				Nodes: 3, Addrs: 3, OpsPerNode: 15, Seed: seed, DirectOps: true,
			})
			if err != nil {
				t.Fatal(err)
			}
			if m != nil {
				// Rebuild with the implementation engine and identical scripts.
				implSys, err := NewSystem(Config{
					Nodes: 3, ChannelCap: 16, Tables: genTables(t).Map(),
					Assignment: fixedAssignment(t), Mapping: m, MaxSteps: 200000,
				})
				if err != nil {
					t.Fatal(err)
				}
				for i := 0; i < 3; i++ {
					implSys.Node(i).Script(sys.Node(i).pendingOp...)
				}
				sys = implSys
			}
			res, err := sys.Run()
			if err != nil {
				t.Fatalf("seed %d: %v", seed, err)
			}
			return res, sys
		}
		specRes, specSys := run(nil)
		implRes, implSys := run(implMapping(t))
		if specRes.Outcome != Completed || implRes.Outcome != Completed {
			t.Fatalf("seed %d: outcomes %v / %v", seed, specRes.Outcome, implRes.Outcome)
		}
		if v := specSys.CheckCoherence(); len(v) != 0 {
			t.Fatalf("seed %d: spec incoherent: %v", seed, v)
		}
		if v := implSys.CheckCoherence(); len(v) != 0 {
			t.Fatalf("seed %d: impl incoherent: %v", seed, v)
		}
		if specRes.Stats.OpsCompleted != implRes.Stats.OpsCompleted {
			t.Fatalf("seed %d: ops %d vs %d", seed,
				specRes.Stats.OpsCompleted, implRes.Stats.OpsCompleted)
		}
	}
}

func TestImplFeedbackPathExercised(t *testing.T) {
	// Two completions processed back-to-back with a single-entry update
	// queue: the second must defer its directory write over the feedback
	// path (the §5 Dfdback mechanism), and the deferred write must land.
	sys := implSystem(t, 1)
	d := sys.ImplDir()
	if d == nil {
		t.Fatal("no implementation engine")
	}
	// Open two read transactions on distinct lines.
	for i, addr := range []Addr{0x10, 0x11} {
		_ = i
		if ok, err := d.process(Message{Type: "read", From: NodeID(0), To: Dir, Addr: addr}); err != nil || !ok {
			t.Fatalf("read setup: %v %v", ok, err)
		}
	}
	// Drain the memq into... nothing; directly answer with mdata twice
	// without ticking, so the update queue cannot drain in between.
	for _, addr := range []Addr{0x10, 0x11} {
		if ok, err := d.process(Message{Type: "mdata", From: Mem, To: Dir, Addr: addr}); err != nil || !ok {
			t.Fatalf("mdata: %v %v", ok, err)
		}
	}
	if d.ImplStats.Feedbacks != 1 {
		t.Fatalf("feedbacks = %d, want 1", d.ImplStats.Feedbacks)
	}
	// Ticking drains the update queue and replays the deferred write.
	for i := 0; i < 10; i++ {
		d.tick()
	}
	if d.ImplStats.Replays != 1 {
		t.Fatalf("replays = %d, want 1", d.ImplStats.Replays)
	}
	for _, addr := range []Addr{0x10, 0x11} {
		st, sharers := d.Entry(addr)
		if st != protocol.DirSI || len(sharers) != 1 {
			t.Fatalf("line %d: directory = %s %v (deferred write lost?)", addr, st, sharers)
		}
	}
}

func TestImplQstatusRetry(t *testing.T) {
	// With the memmsg queue artificially full, a fresh request must be
	// answered with a retry (the Qstatus=Full row).
	sys := implSystem(t, 0)
	d := sys.ImplDir()
	for i := 0; i < d.outqCap; i++ {
		d.memq = append(d.memq, Message{Type: "mread", From: Dir, To: Mem, Addr: Addr(0x900 + i), VC: "zz"})
	}
	if ok, err := d.process(Message{Type: "read", From: NodeID(0), To: Dir, Addr: 0x20}); err != nil || !ok {
		t.Fatalf("process: %v %v", ok, err)
	}
	if d.ImplStats.QFullRetries != 1 {
		t.Fatalf("QFullRetries = %d", d.ImplStats.QFullRetries)
	}
	// The retry went to the locmsg queue, not a memory access.
	if len(d.locq) != 1 || d.locq[0].Type != "retry" {
		t.Fatalf("locq = %v", d.locq)
	}
	if d.BusyCount() != 0 {
		t.Fatal("a retried request must not allocate a busy entry")
	}
}

func TestImplCloneUnsupported(t *testing.T) {
	sys := implSystem(t, 0)
	defer func() {
		if recover() == nil {
			t.Fatal("Clone on the implementation engine must panic")
		}
	}()
	sys.Clone()
}
