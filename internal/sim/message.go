// Package sim is a discrete-event protocol simulator that executes the
// generated controller tables directly: the directory, memory, cache and
// node-interface entities look their transitions up in the very tables the
// constraint solver produced, and exchange messages over finite virtual
// channel queues assigned by a V table. Because channel occupancy is
// modeled faithfully (capacity-limited FIFOs with head-of-line blocking),
// the simulator reproduces the §4.2 deadlock dynamically and validates the
// fixed assignment — the execution counterpart to the static VCG analysis.
package sim

import (
	"fmt"
)

// EntityID names a simulated entity. The home quad hosts the directory
// ("dir") and memory ("mem") controllers; each node i has a cache/node
// interface pair ("node0", "node1", ...).
type EntityID string

// Fixed entity IDs.
const (
	Dir EntityID = "dir"
	Mem EntityID = "mem"
)

// NodeID returns the entity ID for node i.
func NodeID(i int) EntityID { return EntityID(fmt.Sprintf("node%d", i)) }

// Addr is a cache line address.
type Addr int

// Message is one protocol message in flight.
type Message struct {
	Type string
	From EntityID
	To   EntityID
	Addr Addr
	// VC is the virtual channel the message rides, or "" for dedicated /
	// node-internal paths (unbounded).
	VC string
}

func (m Message) String() string {
	vc := m.VC
	if vc == "" {
		vc = "internal"
	}
	return fmt.Sprintf("%s(%d) %s->%s on %s", m.Type, m.Addr, m.From, m.To, vc)
}

// Channel is a capacity-limited FIFO. A full channel rejects sends; only
// the head may be consumed (head-of-line blocking), which is what makes
// channel deadlocks reproducible. An optional link latency withholds each
// message for a number of steps after it was sent.
type Channel struct {
	Name string
	Cap  int // <= 0 means unbounded
	// Latency is the link traversal time in steps; 0 delivers same-step.
	Latency int
	// now points at the owning system's step counter.
	now    *int
	q      []Message
	stamps []int
}

// NewChannel creates a channel with the given capacity.
func NewChannel(name string, capacity int) *Channel {
	zero := 0
	return &Channel{Name: name, Cap: capacity, now: &zero}
}

// CanSend reports whether n more messages fit.
func (c *Channel) CanSend(n int) bool {
	return c.Cap <= 0 || len(c.q)+n <= c.Cap
}

// Send enqueues m; it reports false when full.
func (c *Channel) Send(m Message) bool {
	if !c.CanSend(1) {
		return false
	}
	c.q = append(c.q, m)
	c.stamps = append(c.stamps, *c.now)
	return true
}

// Head returns the head message without consuming it. With a link latency,
// a message younger than the latency is still in flight and not yet
// deliverable.
func (c *Channel) Head() (Message, bool) {
	if len(c.q) == 0 {
		return Message{}, false
	}
	if c.Latency > 0 && *c.now-c.stamps[0] < c.Latency {
		return Message{}, false
	}
	return c.q[0], true
}

// Pop consumes the head (regardless of latency; callers gate on Head).
func (c *Channel) Pop() (Message, bool) {
	if len(c.q) == 0 {
		return Message{}, false
	}
	m := c.q[0]
	c.q = c.q[1:]
	c.stamps = c.stamps[1:]
	return m, true
}

// InFlight reports whether the channel holds messages that are not yet
// deliverable purely because of link latency — time passing is progress.
func (c *Channel) InFlight() bool {
	if len(c.q) == 0 || c.Latency <= 0 {
		return false
	}
	return *c.now-c.stamps[0] < c.Latency
}

// Len returns the number of queued messages.
func (c *Channel) Len() int { return len(c.q) }

// Snapshot returns a copy of the queued messages, head first.
func (c *Channel) Snapshot() []Message { return append([]Message(nil), c.q...) }
