package sim

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"coherdb/internal/rel"
)

// StateCodec encodes protocol-relevant System state as a fixed-width
// tuple of uint32 dictionary codes — the out-of-core representation
// behind the segmented model checker. Two systems encode to equal
// tuples if and only if their Fingerprints are equal: every component
// the fingerprint covers (channel queues, directory and busy
// directory, caches, MSHRs, scripts, outstanding transactions) maps to
// a dedicated column, with variable-length components interned as
// canonical strings in a codec-private dictionary and 0 reserved for
// "absent".
//
// The address and channel universes are fixed at codec construction
// from the initial system; the protocol never invents addresses, so
// the universe is closed over exploration. Encoding a system that
// mentions an unknown address panics.
//
// Encode is not safe for concurrent use on one codec ONLY with a
// shared scratch; the codec itself (dictionary interning) is
// thread-safe, so concurrent encoders each passing their own dst are
// fine.
type StateCodec struct {
	dict  *rel.Dict
	chans []string
	addrs []Addr
	addrIdx map[Addr]int
	nodes int
	width int

	// Column layout: [channels][dir per addr][busy per addr] then per
	// node: [cache per addr][mshr per addr][script][outstanding per addr].
	dirOff, busyOff, nodeOff, perNode int

	ownerM, ownerE, sharerS uint32
}

// NewStateCodec builds a codec for systems shaped like s (same config,
// channels, nodes, and address universe).
func NewStateCodec(s *System) *StateCodec {
	c := &StateCodec{dict: rel.NewDict(), nodes: len(s.nodes), addrIdx: map[Addr]int{}}
	for name := range s.channels {
		c.chans = append(c.chans, name)
	}
	sort.Strings(c.chans)

	seen := map[Addr]bool{}
	add := func(a Addr) { seen[a] = true }
	sd := s.dir.base()
	for a := range sd.dir {
		add(a)
	}
	for a := range sd.busy {
		add(a)
	}
	for _, n := range s.nodes {
		for a := range n.cache {
			add(a)
		}
		for a := range n.mshr {
			add(a)
		}
		for a := range n.outstanding {
			add(a)
		}
		for _, op := range n.pendingOp {
			add(op.Addr)
		}
	}
	for _, ch := range s.channels {
		for _, m := range ch.q {
			add(m.Addr)
		}
	}
	for a := range seen {
		c.addrs = append(c.addrs, a)
	}
	sort.Slice(c.addrs, func(i, j int) bool { return c.addrs[i] < c.addrs[j] })
	for i, a := range c.addrs {
		c.addrIdx[a] = i
	}

	na := len(c.addrs)
	c.dirOff = len(c.chans)
	c.busyOff = c.dirOff + na
	c.nodeOff = c.busyOff + na
	c.perNode = 3*na + 1
	c.width = c.nodeOff + c.nodes*c.perNode

	// Pre-intern the MESI cache-state names so streaming coherence
	// checks can compare raw codes without decoding.
	c.ownerM = c.intern(cacheStateM)
	c.ownerE = c.intern(cacheStateE)
	c.sharerS = c.intern(cacheStateS)
	return c
}

// The protocol package's stable cache-state names, referenced here via
// constants to avoid an import cycle risk in future splits.
const (
	cacheStateM = "M"
	cacheStateE = "E"
	cacheStateS = "S"
)

func (c *StateCodec) intern(s string) uint32 { return c.dict.Code(rel.S(s)) }

// Width reports the codes per encoded state.
func (c *StateCodec) Width() int { return c.width }

// NumAddrs reports the size of the address universe.
func (c *StateCodec) NumAddrs() int { return len(c.addrs) }

// NumNodes reports the node count.
func (c *StateCodec) NumNodes() int { return c.nodes }

// AddrAt returns the i-th address of the sorted universe.
func (c *StateCodec) AddrAt(i int) Addr { return c.addrs[i] }

// Dict exposes the codec-private dictionary (for byte accounting and
// metrics attribution).
func (c *StateCodec) Dict() *rel.Dict { return c.dict }

// CacheCol returns the column index of node n's cache state for the
// a-th address of the universe.
func (c *StateCodec) CacheCol(n, a int) int {
	return c.nodeOff + n*c.perNode + a
}

// IsOwnerCode reports whether a cache-state code means M or E.
func (c *StateCodec) IsOwnerCode(code uint32) bool {
	return code == c.ownerM || code == c.ownerE
}

// IsSharerCode reports whether a cache-state code means S.
func (c *StateCodec) IsSharerCode(code uint32) bool { return code == c.sharerS }

func (c *StateCodec) addrSlot(a Addr) int {
	i, ok := c.addrIdx[a]
	if !ok {
		panic(fmt.Sprintf("sim: address %d outside the codec universe", a))
	}
	return i
}

// Encode writes s's state tuple into dst (grown if needed) and returns
// it. The scratch builder sb is reused across components.
func (c *StateCodec) Encode(s *System, dst []uint32) []uint32 {
	if cap(dst) < c.width {
		dst = make([]uint32, c.width)
	}
	dst = dst[:c.width]
	for i := range dst {
		dst[i] = 0
	}
	var sb strings.Builder

	for i, name := range c.chans {
		ch := s.channels[name]
		if ch == nil || len(ch.q) == 0 {
			continue
		}
		sb.Reset()
		for _, m := range ch.q {
			sb.WriteString(m.Type)
			sb.WriteByte(',')
			sb.WriteString(string(m.From))
			sb.WriteByte(',')
			sb.WriteString(string(m.To))
			sb.WriteByte(',')
			sb.WriteString(strconv.Itoa(int(m.Addr)))
			sb.WriteByte('|')
		}
		dst[i] = c.intern(sb.String())
	}

	sd := s.dir.base()
	for a, e := range sd.dir {
		sb.Reset()
		sb.WriteString(e.st)
		sb.WriteByte('|')
		sh := make([]string, 0, len(e.sharers))
		for k := range e.sharers {
			sh = append(sh, string(k))
		}
		sort.Strings(sh)
		sb.WriteString(strings.Join(sh, ","))
		dst[c.dirOff+c.addrSlot(a)] = c.intern(sb.String())
	}
	for a, b := range sd.busy {
		sb.Reset()
		sb.WriteString(b.st)
		sb.WriteByte('|')
		sb.WriteString(strconv.Itoa(b.pending))
		sb.WriteByte('|')
		sb.WriteString(string(b.requester))
		dst[c.busyOff+c.addrSlot(a)] = c.intern(sb.String())
	}

	na := len(c.addrs)
	for ni, n := range s.nodes {
		base := c.nodeOff + ni*c.perNode
		for a, st := range n.cache {
			dst[base+c.addrSlot(a)] = c.intern(st)
		}
		// MSHR entries are presence-only (only ever set true or
		// deleted), and Fingerprint keys on presence — mirror that.
		for a := range n.mshr {
			dst[base+na+c.addrSlot(a)] = 1
		}
		if len(n.pendingOp) > 0 {
			sb.Reset()
			for _, op := range n.pendingOp {
				// Kind/Addr only: Fingerprint ignores Delay, so the
				// codec must too or equal states would encode apart.
				sb.WriteString(op.Kind)
				sb.WriteByte('/')
				sb.WriteString(strconv.Itoa(int(op.Addr)))
				sb.WriteByte(';')
			}
			dst[base+2*na] = c.intern(sb.String())
		}
		for a, op := range n.outstanding {
			dst[base+2*na+1+c.addrSlot(a)] = c.intern(op.Kind)
		}
	}
	return dst
}

// isRawCol reports whether column j holds a raw number (the MSHR
// presence flags) rather than a dictionary code.
func (c *StateCodec) isRawCol(j int) bool {
	if j < c.nodeOff {
		return false
	}
	k := (j - c.nodeOff) % c.perNode
	na := len(c.addrs)
	return k >= na && k < 2*na
}

// ValueHash hashes an encoded state by its decoded VALUES, not its
// codes — two codecs (or two processes) that interned strings in
// different orders still hash equal states equally. The model checker
// XORs these per state into the order-insensitive reachable-set hash.
func (c *StateCodec) ValueHash(tuple []uint32) uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	mix := func(b byte) { h = (h ^ uint64(b)) * prime }
	for j, code := range tuple {
		switch {
		case c.isRawCol(j):
			mix(0x03)
			mix(byte(code))
			mix(byte(code >> 8))
			mix(byte(code >> 16))
			mix(byte(code >> 24))
		case code == 0:
			mix(0x02)
		default:
			mix(0x01)
			s := c.dict.Value(code).Str()
			for i := 0; i < len(s); i++ {
				mix(s[i])
			}
			mix(0x00)
		}
	}
	return h
}

// EncodeAction interns a for compact storage in the search tree.
func (c *StateCodec) EncodeAction(a Action) uint32 {
	if a.Kind == "issue" {
		return c.intern("issue|" + strconv.Itoa(a.Node))
	}
	return c.intern("deliver|" + a.Chan)
}

// DecodeAction inverts EncodeAction.
func (c *StateCodec) DecodeAction(code uint32) Action {
	s := c.dict.Value(code).Str()
	if rest, ok := strings.CutPrefix(s, "issue|"); ok {
		n, err := strconv.Atoi(rest)
		if err != nil {
			panic("sim: bad action code " + s)
		}
		return Action{Kind: "issue", Node: n}
	}
	if rest, ok := strings.CutPrefix(s, "deliver|"); ok {
		return Action{Kind: "deliver", Chan: rest}
	}
	panic("sim: bad action code " + s)
}
