package sim

import (
	"strings"
	"testing"

	"coherdb/internal/protocol"
)

// TestRandomSweepNoProtocolHoles drives forty seeded random workloads
// through the spec-level engine: every run must complete with no unmatched
// table input (a protocol hole) and a coherent final state. The sweep is
// what exposed the stale-upgrade race (an upgrade from a node invalidated
// mid-flight must be nacked via the presence-vector membership check).
func TestRandomSweepNoProtocolHoles(t *testing.T) {
	v, err := protocol.BuildAssignment(protocol.AssignFixed)
	if err != nil {
		t.Fatal(err)
	}
	for seed := int64(1); seed <= 40; seed++ {
		sys, err := RandomSystem(genTables(t), v, RandomConfig{
			Nodes: 3, Addrs: 3, OpsPerNode: 20, Seed: seed, DirectOps: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		res, err := sys.Run()
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if res.Outcome != Completed {
			t.Fatalf("seed %d: %v\n%s", seed, res.Outcome, res.Blockage)
		}
		if viol := sys.CheckCoherence(); len(viol) != 0 {
			t.Fatalf("seed %d: %v", seed, viol)
		}
	}
}

// TestRandomSweepImplEngine runs a smaller sweep on the Figure 5
// implementation engine.
func TestRandomSweepImplEngine(t *testing.T) {
	v, err := protocol.BuildAssignment(protocol.AssignFixed)
	if err != nil {
		t.Fatal(err)
	}
	for seed := int64(1); seed <= 10; seed++ {
		sys, err := NewSystem(Config{
			Nodes: 3, ChannelCap: 16, Tables: genTables(t).Map(),
			Assignment: v, Mapping: implMapping(t), MaxSteps: 400000,
		})
		if err != nil {
			t.Fatal(err)
		}
		seedSys, err := RandomSystem(genTables(t), v, RandomConfig{
			Nodes: 3, Addrs: 3, OpsPerNode: 20, Seed: seed, DirectOps: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		CopyScripts(seedSys, sys)
		res, err := sys.Run()
		if err != nil {
			t.Fatalf("seed %d: %v\n%s", seed, err, strings.Join(sys.TraceLines(), "\n"))
		}
		if res.Outcome != Completed {
			t.Fatalf("seed %d: %v\n%s", seed, res.Outcome, res.Blockage)
		}
		if viol := sys.CheckCoherence(); len(viol) != 0 {
			t.Fatalf("seed %d: %v", seed, viol)
		}
	}
}
