package sim

import (
	"fmt"

	"coherdb/internal/protocol"
	"coherdb/internal/rel"
)

// nodeCtl is one processor node: the cache controller (table C), the node
// interface with its MSHRs (table N), and a scripted processor that issues
// operations and re-executes them after aborts.
type nodeCtl struct {
	sys       *System
	id        int
	eid       EntityID
	cacheCore *tableCore
	mshrCore  *tableCore
	cache     map[Addr]string
	mshr      map[Addr]bool
	pendingOp []Op
	attempts  map[Addr]int
	// outstanding maps an address to the op whose transaction is in
	// flight; issuedAt records when it started.
	outstanding map[Addr]Op
	issuedAt    map[Addr]int
	completed   int
}

var cacheInputs = []string{"inmsg", "inmsgsrc", "inmsgdest", "inmsgrsrc", "cachest"}
var mshrInputs = []string{"inmsg", "inmsgsrc", "inmsgdest", "inmsgrsrc", "mshrst"}

func newNodeCtl(s *System, id int, cacheTab, mshrTab *rel.Table) (*nodeCtl, error) {
	if cacheTab == nil || mshrTab == nil {
		return nil, fmt.Errorf("%w: C or N", ErrBadTable)
	}
	cc, err := newTableCore(cacheTab, cacheInputs)
	if err != nil {
		return nil, err
	}
	cc.hits = &s.stats.Transitions
	mc, err := newTableCore(mshrTab, mshrInputs)
	if err != nil {
		return nil, err
	}
	mc.hits = &s.stats.Transitions
	return &nodeCtl{
		sys:         s,
		id:          id,
		eid:         NodeID(id),
		cacheCore:   cc,
		mshrCore:    mc,
		cache:       make(map[Addr]string),
		mshr:        make(map[Addr]bool),
		attempts:    make(map[Addr]int),
		outstanding: make(map[Addr]Op),
		issuedAt:    make(map[Addr]int),
	}, nil
}

// Script appends operations to the node's processor script.
func (n *nodeCtl) Script(ops ...Op) { n.pendingOp = append(n.pendingOp, ops...) }

// SetCache initializes a line's cache state (scenario setup).
func (n *nodeCtl) SetCache(a Addr, st string) { n.cache[a] = st }

// CacheState returns the cache state of a line.
func (n *nodeCtl) CacheState(a Addr) string {
	if st, ok := n.cache[a]; ok {
		return st
	}
	return protocol.CacheI
}

// Completed returns the number of operations this node has finished.
func (n *nodeCtl) Completed() int { return n.completed }

func (n *nodeCtl) idle() bool {
	return len(n.pendingOp) == 0 && len(n.outstanding) == 0
}

func stable(st string) bool {
	switch st {
	case protocol.CacheI, protocol.CacheS, protocol.CacheE, protocol.CacheM:
		return true
	}
	return false
}

// lookupCache runs table C for one input message.
func (n *nodeCtl) lookupCache(inmsg, src, dest, rsrc string, addr Addr) (rel.Row, bool) {
	return n.cacheCore.match(map[string]rel.Value{
		"inmsg": rel.S(inmsg), "inmsgsrc": rel.S(src), "inmsgdest": rel.S(dest),
		"inmsgrsrc": rel.S(rsrc), "cachest": rel.S(n.CacheState(addr)),
	})
}

// directOps are operations injected at the node interface without cache
// involvement: I/O, uncached, atomic and special transactions, plus the
// cache-management transactions a DMA engine or kernel would issue.
var directOps = map[string]bool{
	"ioread": true, "iowrite": true, "ucread": true, "ucwrite": true,
	"fetchadd": true, "sync": true, "intr": true,
	"flush": true, "readinv": true, "prefetch": true,
}

// issue attempts to start the first eligible scripted operation. It
// reports whether any progress was made.
func (n *nodeCtl) issue() (bool, error) {
	for i, op := range n.pendingOp {
		if n.sys.step < op.Delay {
			continue // choreographed ops wait for their cue
		}
		if !stable(n.CacheState(op.Addr)) || n.mshr[op.Addr] {
			continue // transaction in flight for this line
		}
		if max := n.maxRetries(); max > 0 && n.attempts[op.Addr] >= max {
			// Retry budget exhausted: drop the op.
			n.pendingOp = append(n.pendingOp[:i], n.pendingOp[i+1:]...)
			return true, nil
		}
		if directOps[op.Kind] {
			done, err := n.inject(op.Kind, op.Addr)
			if err != nil {
				return false, err
			}
			if !done {
				continue
			}
			n.attempts[op.Addr]++
			n.outstanding[op.Addr] = op
			n.issuedAt[op.Addr] = n.sys.step
			n.pendingOp = append(n.pendingOp[:i], n.pendingOp[i+1:]...)
			n.sys.tracef("%s issues %s(%d)", n.eid, op.Kind, op.Addr)
			return true, nil
		}
		row, ok := n.lookupCache(op.Kind, protocol.RoleLocal, protocol.RoleLocal, protocol.QReq, op.Addr)
		if !ok {
			return false, fmt.Errorf("%w: C op %s at %s", ErrNoRow, op.Kind, n.CacheState(op.Addr))
		}
		if bus := row.Get("busmsg"); !bus.IsNull() {
			done, err := n.inject(bus.Str(), op.Addr)
			if err != nil {
				return false, err
			}
			if !done {
				continue // channel full; retry next step
			}
			n.attempts[op.Addr]++
			n.applyCacheRow(row, op.Addr)
			n.outstanding[op.Addr] = op
			n.issuedAt[op.Addr] = n.sys.step
			n.pendingOp = append(n.pendingOp[:i], n.pendingOp[i+1:]...)
			n.sys.tracef("%s issues %s(%d)", n.eid, op.Kind, op.Addr)
			return true, nil
		}
		// Cache hit or no-op: completes immediately.
		n.applyCacheRow(row, op.Addr)
		n.completed++
		n.sys.stats.OpsCompleted++
		n.pendingOp = append(n.pendingOp[:i], n.pendingOp[i+1:]...)
		n.sys.tracef("%s completes %s(%d) locally", n.eid, op.Kind, op.Addr)
		return true, nil
	}
	return false, nil
}

func (n *nodeCtl) maxRetries() int {
	// 0 means unlimited.
	return n.sys.cfg.MaxRetries
}

// inject drives table N with a cache bus request and sends the resulting
// network message; it reports false when the channel is full.
func (n *nodeCtl) inject(busmsg string, addr Addr) (bool, error) {
	mshrst := "idle"
	if n.mshr[addr] {
		mshrst = "pending"
	}
	row, ok := n.mshrCore.match(map[string]rel.Value{
		"inmsg": rel.S(busmsg), "inmsgsrc": rel.S(protocol.RoleLocal),
		"inmsgdest": rel.S(protocol.RoleLocal), "inmsgrsrc": rel.S(protocol.QReq),
		"mshrst": rel.S(mshrst),
	})
	if !ok {
		return false, fmt.Errorf("%w: N request %s@%s", ErrNoRow, busmsg, mshrst)
	}
	if net := row.Get("netmsg"); !net.IsNull() {
		msg := Message{
			Type: net.Str(), From: n.eid, To: Dir, Addr: addr,
			VC: n.sys.vcOf(net.Str(), protocol.RoleLocal, protocol.RoleHome),
		}
		if !n.sys.canSendAll([]Message{msg}) {
			return false, nil
		}
		n.sys.sendAll([]Message{msg})
	}
	if v := row.Get("nxtmshrst"); !v.IsNull() {
		n.setMshr(addr, v.Str())
	}
	return true, nil
}

func (n *nodeCtl) setMshr(addr Addr, st string) {
	if st == "pending" {
		n.mshr[addr] = true
	} else {
		delete(n.mshr, addr)
	}
}

// applyCacheRow applies a C row's state transition and accounts op
// completion/abort via prresp.
func (n *nodeCtl) applyCacheRow(row rel.Row, addr Addr) {
	if v := row.Get("nxtcachest"); !v.IsNull() {
		if v.Str() == protocol.CacheI {
			delete(n.cache, addr)
		} else {
			n.cache[addr] = v.Str()
		}
	}
}

// cacheRespSet are the completions table C handles directly.
var cacheRespSet = map[string]bool{
	"data": true, "datax": true, "upgack": true, "wbcompl": true,
	"retry": true, "nack": true,
}

// process consumes one network message addressed to this node.
func (n *nodeCtl) process(msg Message) (bool, error) {
	switch msg.Type {
	case "sinv", "sread", "sflush":
		row, ok := n.lookupCache(msg.Type, protocol.RoleHome, protocol.RoleRemote, protocol.QReq, msg.Addr)
		if !ok {
			return false, fmt.Errorf("%w: C snoop %s at %s", ErrNoRow, msg.Type, n.CacheState(msg.Addr))
		}
		var out []Message
		if snp := row.Get("snpmsg"); !snp.IsNull() {
			out = append(out, Message{
				Type: snp.Str(), From: n.eid, To: Dir, Addr: msg.Addr,
				VC: n.sys.vcOf(snp.Str(), protocol.RoleRemote, protocol.RoleHome),
			})
		}
		if !n.sys.canSendAll(out) {
			return false, nil
		}
		n.applyCacheRow(row, msg.Addr)
		n.sys.sendAll(out)
		return true, nil
	case "intr":
		// Delivered to the I/O bridge; acknowledge to home.
		out := []Message{{
			Type: "intrack", From: n.eid, To: Dir, Addr: msg.Addr,
			VC: n.sys.vcOf("intrack", protocol.RoleRemote, protocol.RoleHome),
		}}
		if !n.sys.canSendAll(out) {
			return false, nil
		}
		n.sys.sendAll(out)
		return true, nil
	}

	// Completion path through the node interface.
	mshrst := "idle"
	if n.mshr[msg.Addr] {
		mshrst = "pending"
	}
	row, ok := n.mshrCore.match(map[string]rel.Value{
		"inmsg": rel.S(msg.Type), "inmsgsrc": rel.S(protocol.RoleHome),
		"inmsgdest": rel.S(protocol.RoleLocal), "inmsgrsrc": rel.S(protocol.QResp),
		"mshrst": rel.S(mshrst),
	})
	if !ok {
		return false, fmt.Errorf("%w: N response %s@%s", ErrNoRow, msg.Type, mshrst)
	}
	var out []Message
	if net := row.Get("netmsg"); !net.IsNull() {
		out = append(out, Message{
			Type: net.Str(), From: n.eid, To: Dir, Addr: msg.Addr,
			VC: n.sys.vcOf(net.Str(), protocol.RoleLocal, protocol.RoleHome),
		})
	}
	if !n.sys.canSendAll(out) {
		return false, nil
	}

	// Deliver the cresp to the cache when it is in a transient state and
	// the table handles the message; otherwise the node absorbs it. A
	// retry always means the transaction must be re-executed.
	cresp := row.Get("cresp")
	aborted := cresp.Equal(rel.S("retry"))
	if !cresp.IsNull() && cacheRespSet[cresp.Str()] && !stable(n.CacheState(msg.Addr)) {
		crow, ok := n.lookupCache(cresp.Str(), protocol.RoleLocal, protocol.RoleLocal, protocol.QResp, msg.Addr)
		if !ok {
			return false, fmt.Errorf("%w: C response %s at %s", ErrNoRow, cresp.Str(), n.CacheState(msg.Addr))
		}
		n.applyCacheRow(crow, msg.Addr)
		aborted = crow.Get("prresp").Equal(rel.S("pstall"))
	}
	if v := row.Get("nxtmshrst"); !v.IsNull() {
		n.setMshr(msg.Addr, v.Str())
	}
	// A completed prefetch fills the cache with a shared copy (the
	// directory has recorded this node as a sharer).
	if cresp.Equal(rel.S("pfdata")) {
		n.cache[msg.Addr] = protocol.CacheS
	}
	// Account the outstanding op.
	if op, ok := n.outstanding[msg.Addr]; ok && !n.mshr[msg.Addr] {
		delete(n.outstanding, msg.Addr)
		if aborted {
			n.sys.stats.Retries++
			n.pendingOp = append(n.pendingOp, op)
			n.sys.tracef("%s re-queues %s(%d) after retry", n.eid, op.Kind, op.Addr)
		} else {
			n.attempts[msg.Addr] = 0
			n.completed++
			n.sys.stats.OpsCompleted++
			lat := n.sys.step - n.issuedAt[msg.Addr]
			n.sys.stats.OpLatencySum += lat
			if lat > n.sys.stats.OpLatencyMax {
				n.sys.stats.OpLatencyMax = lat
			}
			n.sys.tracef("%s completes %s(%d)", n.eid, op.Kind, op.Addr)
		}
	}
	n.sys.sendAll(out)
	return true, nil
}
