package sim

import (
	"fmt"

	"coherdb/internal/hwmap"
	"coherdb/internal/protocol"
	"coherdb/internal/rel"
)

// implDirCtl is the Figure 5 micro-architecture executed dynamically: the
// directory controller implemented by the nine implementation tables (via
// hwmap.Controller), with real internal output queues (locmsg, remmsg,
// memmsg), a directory update queue, and the Dfdback feedback path. Qstatus
// and Dqstatus are computed from actual queue occupancy, so the §5
// implementation details — retry under full queues, deferred directory
// updates — are exercised, not just statically checked.
type implDirCtl struct {
	*dirCtl
	ctrl *hwmap.Controller
	// Output queues toward the virtual channels. A remq entry is one
	// multicast (the hardware stores one entry plus the presence vector
	// and expands it on the way out).
	locq, memq []Message
	remq       [][]Message
	outqCap    int
	// The directory update queue: deferred state applications.
	updq    []func()
	updqCap int
	// The feedback path: deferred updates awaiting replay as Dfdback.
	feedback []func()
	// ImplStats counts implementation-path events.
	ImplStats struct {
		QFullRetries int
		Feedbacks    int
		Replays      int
	}
}

func newImplDirCtl(s *System, tab *rel.Table, m *hwmap.Mapping, outqCap, updqCap int) (*implDirCtl, error) {
	base, err := newDirCtl(s, tab)
	if err != nil {
		return nil, err
	}
	ctrl, err := hwmap.NewController(m)
	if err != nil {
		return nil, err
	}
	if outqCap <= 0 {
		outqCap = 2
	}
	if updqCap <= 0 {
		updqCap = 1
	}
	return &implDirCtl{dirCtl: base, ctrl: ctrl, outqCap: outqCap, updqCap: updqCap}, nil
}

// qstatus computes the §5 Qstatus: Full if any of the locmsg, remmsg,
// memmsg or update queues is full.
func (d *implDirCtl) qstatus() string {
	if len(d.locq) >= d.outqCap || len(d.remq) >= d.outqCap ||
		len(d.memq) >= d.outqCap || len(d.updq) >= d.updqCap {
		return hwmap.Full
	}
	return hwmap.NotFull
}

func (d *implDirCtl) dqstatus() string {
	if len(d.updq) >= d.updqCap {
		return hwmap.Full
	}
	return hwmap.NotFull
}

// process consumes one message through the split request/response
// controller. Outputs enter the internal queues; the input blocks only when
// even the row's queue demand cannot be met (e.g. a retry with a full
// locmsg queue — exactly the blocking the Fig. 5 design minimizes).
func (d *implDirCtl) process(msg Message) (bool, error) {
	binding, be, de, err := d.bindingFor(msg)
	if err != nil {
		return false, err
	}
	isReq := protocol.IsRequest(msg.Type)
	if isReq {
		binding[hwmap.ColQstatus] = rel.S(d.qstatus())
		binding[hwmap.ColDqstatus] = rel.Null()
	} else {
		binding[hwmap.ColQstatus] = rel.Null()
		binding[hwmap.ColDqstatus] = rel.S(d.dqstatus())
	}
	outs, ok := d.ctrl.Lookup(binding)
	if !ok {
		return false, fmt.Errorf("%w: implementation tables, input %v", ErrNoRow, describeBinding(binding))
	}
	row := mapRow(outs)
	requester := d.requesterFor(msg, be)
	batch, snoopTargets, loadWithNoTargets := d.outputsFor(row, msg, de, requester)
	if !d.enqueueAll(batch) {
		return false, nil
	}
	if isReq && binding[hwmap.ColQstatus].Equal(rel.S(hwmap.Full)) {
		d.ImplStats.QFullRetries++
	}

	// Busy-directory updates apply immediately (the busy directory has its
	// own write port); directory updates go through the update queue, or
	// over the feedback path when it is full.
	d.applyBusyOnly(row, msg, be, snoopTargets, loadWithNoTargets, requester)
	switch {
	case row.Get(hwmap.ColFdback).Equal(rel.S("Dfdback")):
		// The deferred payload is what the un-deferred row would have
		// written: look up the Dqstatus=NotFull variant.
		d.ImplStats.Feedbacks++
		free := make(map[string]rel.Value, len(binding))
		for k, v := range binding {
			free[k] = v
		}
		free[hwmap.ColDqstatus] = rel.S(hwmap.NotFull)
		fullOuts, ok := d.ctrl.Lookup(free)
		if !ok {
			return false, fmt.Errorf("%w: no un-deferred variant for %v", ErrNoRow, describeBinding(binding))
		}
		fullRow := mapRow(fullOuts)
		m, req := msg, requester
		d.feedback = append(d.feedback, func() {
			d.applyDirOnly(fullRow, m, req)
		})
	case row.Get("dirupd").Equal(rel.S("upd")):
		m, req := msg, requester
		d.updq = append(d.updq, func() {
			d.applyDirOnly(row, m, req)
		})
	}
	return true, nil
}

// enqueueAll admits a batch into the internal output queues, atomically. A
// snoop multicast occupies a single remmsg queue entry.
func (d *implDirCtl) enqueueAll(batch []Message) bool {
	needLoc, needMem, needRem := 0, 0, 0
	var multicast []Message
	for _, m := range batch {
		switch {
		case m.To == Mem:
			needMem++
		case m.To == Dir:
			// synthesized internal idone: bypasses the queues
		case protocol.IsRequest(m.Type):
			multicast = append(multicast, m)
			needRem = 1
		default:
			needLoc++
		}
	}
	if len(d.locq)+needLoc > d.outqCap || len(d.remq)+needRem > d.outqCap || len(d.memq)+needMem > d.outqCap {
		return false
	}
	for _, m := range batch {
		switch {
		case m.To == Mem:
			d.memq = append(d.memq, m)
		case m.To == Dir:
			if !d.sys.send(m) {
				panic("sim: internal channel rejected send")
			}
		case protocol.IsRequest(m.Type):
			// appended below as one multicast entry
		default:
			d.locq = append(d.locq, m)
		}
	}
	if len(multicast) > 0 {
		d.remq = append(d.remq, multicast)
	}
	return true
}

// applyBusyOnly applies the busy-directory half of a row.
func (d *implDirCtl) applyBusyOnly(row rowGetter, msg Message, be *busyEntry, snoopTargets []EntityID, loadWithNoTargets bool, requester EntityID) {
	switch {
	case row.Get("bdiralloc").Equal(rel.S("alloc")):
		nb := &busyEntry{st: row.Get("nxtbdirst").Str(), requester: requester}
		if row.Get("nxtbdirpv").Equal(rel.S(protocol.PVLoad)) {
			nb.pending = len(snoopTargets)
			if loadWithNoTargets {
				nb.pending = 1
			}
		}
		d.busy[msg.Addr] = nb
	case row.Get("bdiralloc").Equal(rel.S("dealloc")):
		delete(d.busy, msg.Addr)
	default:
		if be != nil {
			if v := row.Get("nxtbdirst"); !v.IsNull() {
				be.st = v.Str()
			}
			if row.Get("nxtbdirpv").Equal(rel.S(protocol.PVDec)) {
				be.pending--
			}
		}
	}
}

// applyDirOnly applies the directory half of a row (possibly deferred).
func (d *implDirCtl) applyDirOnly(row rowGetter, msg Message, requester EntityID) {
	de := d.dir[msg.Addr]
	if de == nil {
		de = &dirEntry{st: protocol.DirI, sharers: map[EntityID]bool{}}
		d.dir[msg.Addr] = de
	}
	actor := msg.From
	switch row.Get("nxtdirpv").Str() {
	case protocol.PVInc:
		de.sharers[requester] = true
	case protocol.PVRepl:
		de.sharers = map[EntityID]bool{requester: true}
	case protocol.PVClear:
		de.sharers = map[EntityID]bool{}
	case protocol.PVDec:
		delete(de.sharers, actor)
	case protocol.PVDRepl:
		delete(de.sharers, actor)
		if len(de.sharers) == 0 {
			de.st = protocol.DirI
		}
	}
	if v := row.Get("nxtdirst"); !v.IsNull() {
		de.st = v.Str()
	}
	if de.st == protocol.DirI && len(de.sharers) == 0 {
		delete(d.dir, msg.Addr)
	}
}

// tick drains the micro-architecture by one cycle: each output queue's head
// toward its channel, one update-queue application, and one feedback replay
// when the queues have room. It reports whether anything moved.
func (d *implDirCtl) tick() bool {
	progressed := false
	drain := func(q *[]Message) {
		for len(*q) > 0 {
			if !d.sys.send((*q)[0]) {
				return
			}
			*q = (*q)[1:]
			progressed = true
		}
	}
	drain(&d.locq)
	drain(&d.memq)
	// The head multicast entry expands message by message; a partial send
	// keeps the remainder at the head.
	for len(d.remq) > 0 {
		head := d.remq[0]
		for len(head) > 0 && d.sys.send(head[0]) {
			head = head[1:]
			progressed = true
		}
		d.remq[0] = head
		if len(head) > 0 {
			break
		}
		d.remq = d.remq[1:]
	}
	if len(d.updq) > 0 {
		d.updq[0]()
		d.updq = d.updq[1:]
		progressed = true
	}
	if len(d.feedback) > 0 && d.qstatus() == hwmap.NotFull {
		d.feedback[0]()
		d.feedback = d.feedback[1:]
		d.ImplStats.Replays++
		progressed = true
	}
	return progressed
}

// base exposes the shared directory state.
func (d *implDirCtl) base() *dirCtl { return d.dirCtl }

// quiescent reports whether all internal queues have drained.
func (d *implDirCtl) quiescent() bool {
	return len(d.locq) == 0 && len(d.remq) == 0 && len(d.memq) == 0 &&
		len(d.updq) == 0 && len(d.feedback) == 0
}
