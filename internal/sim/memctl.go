package sim

import (
	"fmt"

	"coherdb/internal/protocol"
	"coherdb/internal/rel"
)

// memCtl executes the generated memory controller table M. An optional
// latency delays processing: a message must sit at the head of the memory
// queue for MemLatency steps before it is served, which is how scenarios
// steer interleavings (the Fig. 4 deadlock needs a memory slower than the
// snoop round trip).
type memCtl struct {
	sys  *System
	core *tableCore
	// firstSeen records when each pending message first reached a queue
	// head, so latency is tracked per message even when several queues
	// feed the controller.
	firstSeen map[Message]int
	// latencyWait is set when the controller declined a message purely
	// because of latency; the scheduler counts that as progress.
	latencyWait bool
}

var memInputs = []string{"inmsg", "inmsgsrc", "inmsgdest", "inmsgrsrc", "bankst"}

func newMemCtl(s *System, tab *rel.Table) (*memCtl, error) {
	if tab == nil {
		return nil, fmt.Errorf("%w: M", ErrBadTable)
	}
	core, err := newTableCore(tab, memInputs)
	if err != nil {
		return nil, err
	}
	core.hits = &s.stats.Transitions
	return &memCtl{sys: s, core: core, firstSeen: make(map[Message]int)}, nil
}

func (m *memCtl) process(msg Message) (bool, error) {
	if m.sys.cfg.MemLatency > 0 {
		seen, ok := m.firstSeen[msg]
		if !ok {
			m.firstSeen[msg] = m.sys.step
			m.latencyWait = true
			return false, nil
		}
		if m.sys.step-seen < m.sys.cfg.MemLatency {
			m.latencyWait = true
			return false, nil
		}
	}
	binding := map[string]rel.Value{
		"inmsg":     rel.S(msg.Type),
		"inmsgsrc":  rel.S(protocol.RoleHome),
		"inmsgdest": rel.S(protocol.RoleHome),
		"inmsgrsrc": rel.S(protocol.QMem),
		"bankst":    rel.S("ready"),
	}
	row, ok := m.core.match(binding)
	if !ok {
		return false, fmt.Errorf("%w: M input %v", ErrNoRow, describeBinding(binding))
	}
	var out []Message
	for _, g := range []string{"dirmsg", "dirmsg2"} {
		if v := row.Get(g); !v.IsNull() {
			out = append(out, Message{
				Type: v.Str(), From: Mem, To: Dir, Addr: msg.Addr,
				VC: m.sys.vcOf(v.Str(), protocol.RoleHome, protocol.RoleHome),
			})
		}
	}
	if !m.sys.canSendAll(out) {
		return false, nil
	}
	m.sys.sendAll(out)
	delete(m.firstSeen, msg)
	return true, nil
}
