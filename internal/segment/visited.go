package segment

import (
	"encoding/binary"
	"math/bits"
)

// HashTuple is the canonical 64-bit fingerprint of a code tuple:
// FNV-1a over the little-endian bytes of each code. Shard selection
// uses the high bits and slot probing the low bits, so both stay well
// distributed.
func HashTuple(t []uint32) uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	var b [4]byte
	for _, c := range t {
		binary.LittleEndian.PutUint32(b[:], c)
		h = (h ^ uint64(b[0])) * prime
		h = (h ^ uint64(b[1])) * prime
		h = (h ^ uint64(b[2])) * prime
		h = (h ^ uint64(b[3])) * prime
	}
	return h
}

// Visited is an exact membership index over the rows of a Store,
// sharded by the high bits of the tuple hash. Each shard is an
// open-addressed (hash, rowID) table; a hash hit is confirmed by
// decoding the stored tuple from the (possibly spilled) store, so the
// index is never probabilistic — equal fingerprints with different
// tuples coexist.
//
// Concurrency contract: distinct shards may be probed/inserted
// concurrently (the model checker partitions candidates by ShardOf);
// operations on one shard must be serialized by the caller.
type Visited struct {
	store     *Store
	shards    []vshard
	shardBits uint
}

type vshard struct {
	keys []uint64
	ids  []int64
	used int
}

// NewVisited returns an index over store with nshards shards (rounded
// up to a power of two, minimum 1).
func NewVisited(store *Store, nshards int) *Visited {
	if nshards < 1 {
		nshards = 1
	}
	n := 1
	for n < nshards {
		n <<= 1
	}
	v := &Visited{store: store, shards: make([]vshard, n), shardBits: uint(bits.Len(uint(n - 1)))}
	for i := range v.shards {
		v.shards[i].init(64)
	}
	return v
}

// Shards reports the shard count (a power of two).
func (v *Visited) Shards() int { return len(v.shards) }

// ShardOf maps a tuple hash to its shard.
func (v *Visited) ShardOf(h uint64) int {
	if v.shardBits == 0 {
		return 0
	}
	return int(h >> (64 - v.shardBits))
}

func (sh *vshard) init(capHint int) {
	sh.keys = make([]uint64, capHint)
	sh.ids = make([]int64, capHint)
	for i := range sh.ids {
		sh.ids[i] = -1
	}
	sh.used = 0
}

// Lookup reports whether tuple (with hash h) is already present in
// shard, returning its row id. scratch is decode scratch space (grown
// and returned for reuse); callers probing concurrently must each pass
// their own. Lookup never mutates the index, so any number of
// concurrent Lookups may run against a frozen index (the model
// checker's parallel pre-filter relies on this).
func (v *Visited) Lookup(shard int, h uint64, tuple, scratch []uint32) (int64, bool, []uint32) {
	sh := &v.shards[shard]
	mask := uint64(len(sh.keys) - 1)
	for slot := h & mask; ; slot = (slot + 1) & mask {
		id := sh.ids[slot]
		if id < 0 {
			return 0, false, scratch
		}
		if sh.keys[slot] == h {
			scratch = v.store.Tuple(id, scratch)
			if equalTuples(scratch, tuple) {
				return id, true, scratch
			}
		}
	}
}

// Insert records tuple (with hash h) as row id in shard. The caller
// must have established absence via Lookup; duplicate inserts create
// shadow entries.
func (v *Visited) Insert(shard int, h uint64, id int64) {
	sh := &v.shards[shard]
	if (sh.used+1)*3 >= len(sh.keys)*2 {
		sh.grow()
	}
	mask := uint64(len(sh.keys) - 1)
	slot := h & mask
	for sh.ids[slot] >= 0 {
		slot = (slot + 1) & mask
	}
	sh.keys[slot] = h
	sh.ids[slot] = id
	sh.used++
}

func (sh *vshard) grow() {
	oldKeys, oldIDs := sh.keys, sh.ids
	sh.init(len(oldKeys) * 2)
	mask := uint64(len(sh.keys) - 1)
	for i, id := range oldIDs {
		if id < 0 {
			continue
		}
		slot := oldKeys[i] & mask
		for sh.ids[slot] >= 0 {
			slot = (slot + 1) & mask
		}
		sh.keys[slot] = oldKeys[i]
		sh.ids[slot] = id
	}
	sh.used = len(oldIDs) - countFree(oldIDs)
}

func countFree(ids []int64) int {
	n := 0
	for _, id := range ids {
		if id < 0 {
			n++
		}
	}
	return n
}

// Bytes reports the resident size of the index tables.
func (v *Visited) Bytes() int64 {
	n := int64(0)
	for i := range v.shards {
		n += 16 * int64(len(v.shards[i].keys))
	}
	return n
}

func equalTuples(a, b []uint32) bool {
	if len(a) != len(b) {
		return false
	}
	for i, v := range a {
		if v != b[i] {
			return false
		}
	}
	return true
}
