package segment

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
)

// StoreConfig configures a Store.
type StoreConfig struct {
	// Width is the fixed number of codes per row. Required.
	Width int
	// BlockRows is the number of rows accumulated before the active
	// writer is sealed into a compressed segment. Defaults to 4096.
	BlockRows int
	// Budget caps the resident bytes of sealed segments; when the cap
	// is exceeded and SpillDir is set, cold segments are written to
	// disk and dropped from memory. Zero means unlimited.
	Budget int64
	// SpillDir, when non-empty, enables spill-to-disk under Budget
	// pressure. Spill files live in a private subdirectory and are
	// removed by Close.
	SpillDir string
}

// storeSeg is one sealed block: resident (seg != nil), spilled
// (seg == nil, path != ""), or both (resident with a disk copy).
type storeSeg struct {
	seg       *Segment
	firstRow  int64
	rows      int
	memBytes  int64
	diskBytes int64
	path      string
	lastUse   int64
}

// Store is an append-only sequence of fixed-width code rows backed by
// compressed segments, with an optional byte budget and spill-to-disk.
//
// Concurrency contract: Append and Seal must be serialized by the
// caller and must not overlap with reads; Tuple and Stream may run
// concurrently with each other (faulting spilled segments back in is
// internally synchronized). This matches the model checker's phased
// level-synchronous use.
type Store struct {
	cfg StoreConfig

	mu       sync.RWMutex
	segs     []*storeSeg
	tail     *Writer
	tailRow  int64 // global row id of the first tail row
	rows     int64
	resident int64 // sealed resident bytes (excludes tail)
	spilled  int64 // bytes currently on disk
	clock    int64
	spillSeq int
	dir      string // created lazily under cfg.SpillDir

	spills  atomic.Int64
	faults  atomic.Int64
	sealed  atomic.Int64
	onDisk  atomic.Int64 // segments currently without a resident copy
	closeMu sync.Mutex
	closed  bool
}

// NewStore returns an empty store for rows of cfg.Width codes.
func NewStore(cfg StoreConfig) *Store {
	if cfg.Width <= 0 {
		panic(fmt.Sprintf("segment: store width %d", cfg.Width))
	}
	if cfg.BlockRows <= 0 {
		cfg.BlockRows = 4096
	}
	return &Store{cfg: cfg, tail: NewWriter(cfg.Width)}
}

// Width reports the codes per row.
func (st *Store) Width() int { return st.cfg.Width }

// Rows reports the total rows appended (sealed + unsealed).
func (st *Store) Rows() int64 { return st.rows }

// Append adds one row and returns its global row id. When the active
// writer reaches BlockRows it is sealed (and possibly spilled).
func (st *Store) Append(tuple []uint32) int64 {
	id := st.rows
	st.tail.Append(tuple)
	st.rows++
	if st.tail.Rows() >= st.cfg.BlockRows {
		st.sealTail()
	}
	return id
}

// Seal compresses any unsealed tail rows so every row lives in an
// immutable segment (e.g. before a streaming pass that must observe a
// fixed snapshot cheaply).
func (st *Store) Seal() {
	if st.tail.Rows() > 0 {
		st.sealTail()
	}
}

func (st *Store) sealTail() {
	n := st.tail.Rows()
	seg := st.tail.Seal()
	if seg == nil {
		return
	}
	ss := &storeSeg{
		seg:      seg,
		firstRow: st.tailRow,
		rows:     n,
		memBytes: seg.Bytes(),
	}
	st.mu.Lock()
	ss.lastUse = st.tick()
	st.segs = append(st.segs, ss)
	st.resident += ss.memBytes
	st.tailRow += int64(n)
	st.sealed.Store(int64(len(st.segs)))
	st.evictLocked(nil)
	st.mu.Unlock()
}

func (st *Store) tick() int64 {
	st.clock++
	return st.clock
}

// evictLocked spills least-recently-used resident segments until the
// sealed resident bytes fit the budget. keep, when non-nil, is never
// evicted (the segment just faulted in). Requires st.mu held.
func (st *Store) evictLocked(keep *storeSeg) {
	if st.cfg.Budget <= 0 || st.cfg.SpillDir == "" {
		return
	}
	for st.resident > st.cfg.Budget {
		var victim *storeSeg
		for _, ss := range st.segs {
			if ss.seg == nil || ss == keep {
				continue
			}
			if victim == nil || ss.lastUse < victim.lastUse {
				victim = ss
			}
		}
		if victim == nil {
			return
		}
		if err := st.spillLocked(victim); err != nil {
			// Spill failure (disk full, permissions): stop evicting and
			// keep the segment resident rather than lose data.
			return
		}
	}
}

// spillLocked writes victim to disk (if not already there) and drops
// its resident copy. Requires st.mu held.
func (st *Store) spillLocked(victim *storeSeg) error {
	if victim.path == "" {
		if st.dir == "" {
			d, err := os.MkdirTemp(st.cfg.SpillDir, "coherseg-*")
			if err != nil {
				return err
			}
			st.dir = d
		}
		st.spillSeq++
		path := filepath.Join(st.dir, fmt.Sprintf("seg-%06d.csg", st.spillSeq))
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		n, err := victim.seg.WriteTo(f)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			os.Remove(path)
			return err
		}
		victim.path = path
		victim.diskBytes = n
		st.spilled += n
	}
	victim.seg = nil
	st.resident -= victim.memBytes
	st.spills.Add(1)
	st.onDisk.Add(1)
	return nil
}

// loadFile reads a spilled segment payload from disk.
func loadFile(path string) (*Segment, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Read(f)
}

// segFor locates the sealed segment containing global row id, or nil
// if id lives in the tail. Requires st.mu held (read or write).
func (st *Store) segForLocked(id int64) *storeSeg {
	if id >= st.tailRow {
		return nil
	}
	i := sort.Search(len(st.segs), func(i int) bool {
		return st.segs[i].firstRow+int64(st.segs[i].rows) > id
	})
	return st.segs[i]
}

// Tuple decodes global row id into dst (grown if needed). Spilled
// segments fault back in (and may evict another segment to stay under
// budget).
func (st *Store) Tuple(id int64, dst []uint32) []uint32 {
	st.mu.RLock()
	if id >= st.tailRow {
		dst = st.tail.Tuple(int(id-st.tailRow), dst)
		st.mu.RUnlock()
		return dst
	}
	ss := st.segForLocked(id)
	seg := ss.seg
	if seg != nil {
		atomic.StoreInt64(&ss.lastUse, atomic.LoadInt64(&st.clock))
		st.mu.RUnlock()
		return seg.Tuple(int(id-ss.firstRow), dst)
	}
	st.mu.RUnlock()

	st.mu.Lock()
	if ss.seg == nil {
		loaded, err := loadFile(ss.path)
		if err != nil {
			st.mu.Unlock()
			panic(fmt.Sprintf("segment: fault %s: %v", ss.path, err))
		}
		ss.seg = loaded
		st.resident += ss.memBytes
		st.faults.Add(1)
		st.onDisk.Add(-1)
		ss.lastUse = st.tick()
		st.evictLocked(ss)
	}
	seg = ss.seg
	ss.lastUse = st.tick()
	st.mu.Unlock()
	return seg.Tuple(int(id-ss.firstRow), dst)
}

// Stream decodes global rows [lo, hi) in order, invoking fn with the
// global row id and a reused scratch tuple; returning false stops the
// stream. Spilled segments are read sequentially from disk into a
// transient buffer that is NOT cached (a full scan does not evict the
// hot working set), so out-of-core scans run at sequential-read speed
// without mmap.
func (st *Store) Stream(lo, hi int64, fn func(id int64, tuple []uint32) bool) {
	if lo < 0 {
		lo = 0
	}
	if hi > st.rows {
		hi = st.rows
	}
	if lo >= hi {
		return
	}
	buf := make([]uint32, st.cfg.Width)
	for lo < hi {
		st.mu.RLock()
		ss := st.segForLocked(lo)
		if ss == nil { // tail
			tail, start := st.tail, st.tailRow
			st.mu.RUnlock()
			for ; lo < hi; lo++ {
				tail.Tuple(int(lo-start), buf)
				if !fn(lo, buf) {
					return
				}
			}
			return
		}
		seg := ss.seg
		first, rows, path := ss.firstRow, ss.rows, ss.path
		if seg != nil {
			atomic.StoreInt64(&ss.lastUse, atomic.LoadInt64(&st.clock))
		}
		st.mu.RUnlock()
		if seg == nil {
			loaded, err := loadFile(path)
			if err != nil {
				panic(fmt.Sprintf("segment: stream %s: %v", path, err))
			}
			seg = loaded
			st.faults.Add(1)
		}
		end := first + int64(rows)
		if end > hi {
			end = hi
		}
		stop := false
		seg.Stream(int(lo-first), int(end-first), buf, func(i int, t []uint32) bool {
			if !fn(first+int64(i), t) {
				stop = true
				return false
			}
			return true
		})
		if stop {
			return
		}
		lo = end
	}
}

// Stats is a point-in-time snapshot of the store's memory accounting.
type Stats struct {
	Rows          int64 // total rows appended
	Segments      int64 // sealed segments
	SpilledSegs   int64 // sealed segments currently only on disk
	ResidentBytes int64 // sealed resident bytes + unsealed tail bytes
	SpilledBytes  int64 // bytes in spill files
	Spills        int64 // cumulative segment spill events
	Faults        int64 // cumulative disk reads (random faults + stream loads)
}

// Stats samples the store's counters.
func (st *Store) Stats() Stats {
	st.mu.RLock()
	s := Stats{
		Rows:          st.rows,
		Segments:      int64(len(st.segs)),
		SpilledSegs:   st.onDisk.Load(),
		ResidentBytes: st.resident + st.tail.Bytes(),
		SpilledBytes:  st.spilled,
		Spills:        st.spills.Load(),
		Faults:        st.faults.Load(),
	}
	st.mu.RUnlock()
	return s
}

// Close removes any spill files. The store must not be used afterwards.
func (st *Store) Close() error {
	st.closeMu.Lock()
	defer st.closeMu.Unlock()
	if st.closed {
		return nil
	}
	st.closed = true
	st.mu.Lock()
	dir := st.dir
	st.dir = ""
	st.segs = nil
	st.mu.Unlock()
	if dir != "" {
		return os.RemoveAll(dir)
	}
	return nil
}
