// Package segment implements immutable, compressed blocks of code
// vectors — the out-of-core storage layer behind the model checker's
// visited set and the simulator's trace log.
//
// A segment holds a fixed number of fixed-width rows of uint32
// dictionary codes, stored column-major. Each column is compressed
// with frame-of-reference delta coding (subtract the column minimum)
// followed by bit-packing of the deltas into 64-bit words; columns
// whose packed form would not beat 4 bytes/value fall back to a raw
// []uint32 copy, and constant columns store no payload at all. The
// encoding is exact: every code (including the NULL code 0 and
// math.MaxUint32 outliers) round-trips byte-identical.
//
// Segments are built through a Writer (append rows, then Seal), are
// immutable once sealed, stream without per-row allocation, and
// serialize to a compact little-endian byte format for spill-to-disk
// (see Store).
package segment

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math/bits"
)

// col is one compressed column. Exactly one representation is active:
//
//	bits == 0:  constant column; every value equals base. No payload.
//	bits == 32: raw fallback; values are raw[i]. base is unused.
//	otherwise:  frame-of-reference bit-packing; value i is base plus
//	            the bits-wide integer at bit offset i*bits of words.
type col struct {
	base  uint32
	bits  uint8
	words []uint64
	raw   []uint32
}

// Segment is an immutable compressed block of fixed-width code rows.
type Segment struct {
	rows  int
	width int
	cols  []col
}

// Rows reports the number of rows in the segment.
func (s *Segment) Rows() int { return s.rows }

// Width reports the number of uint32 codes per row.
func (s *Segment) Width() int { return s.width }

// Bytes reports the approximate resident payload size of the segment:
// compressed column payloads plus fixed per-column overhead.
func (s *Segment) Bytes() int64 {
	n := int64(segHeaderBytes) + int64(len(s.cols))*colHeaderBytes
	for _, c := range s.cols {
		n += 8*int64(len(c.words)) + 4*int64(len(c.raw))
	}
	return n
}

const (
	segHeaderBytes = 48 // struct + slice headers, approximate
	colHeaderBytes = 64
)

// At returns the code at row i, column j. It performs no bounds
// normalization beyond the slice accesses themselves.
func (s *Segment) At(i, j int) uint32 {
	c := &s.cols[j]
	switch c.bits {
	case 0:
		return c.base
	case 32:
		return c.raw[i]
	default:
		return c.base + c.unpack(i)
	}
}

// unpack extracts the i-th bits-wide delta from the packed words.
func (c *col) unpack(i int) uint32 {
	nb := uint(c.bits)
	bit := uint(i) * nb
	w, off := bit>>6, bit&63
	v := c.words[w] >> off
	if off+nb > 64 {
		v |= c.words[w+1] << (64 - off)
	}
	return uint32(v & (1<<nb - 1))
}

// Tuple decodes row i into dst (grown if needed) and returns it.
func (s *Segment) Tuple(i int, dst []uint32) []uint32 {
	if cap(dst) < s.width {
		dst = make([]uint32, s.width)
	}
	dst = dst[:s.width]
	for j := range s.cols {
		dst[j] = s.At(i, j)
	}
	return dst
}

// Stream decodes rows [lo, hi) in order, invoking fn with the row index
// and a scratch tuple that is reused between calls (callers must copy
// it to retain it). Returning false from fn stops the stream early.
// With a caller-provided buf of capacity >= Width, streaming performs
// no per-row allocation.
func (s *Segment) Stream(lo, hi int, buf []uint32, fn func(i int, tuple []uint32) bool) {
	if lo < 0 {
		lo = 0
	}
	if hi > s.rows {
		hi = s.rows
	}
	if lo >= hi {
		return
	}
	if cap(buf) < s.width {
		buf = make([]uint32, s.width)
	}
	buf = buf[:s.width]
	for i := lo; i < hi; i++ {
		for j := range s.cols {
			buf[j] = s.At(i, j)
		}
		if !fn(i, buf) {
			return
		}
	}
}

// Writer accumulates fixed-width code rows column-major and seals them
// into an immutable compressed Segment. A Writer is not safe for
// concurrent use.
type Writer struct {
	width int
	rows  int
	cols  [][]uint32
}

// NewWriter returns a Writer for rows of the given width (codes/row).
func NewWriter(width int) *Writer {
	if width <= 0 {
		panic(fmt.Sprintf("segment: invalid width %d", width))
	}
	return &Writer{width: width, cols: make([][]uint32, width)}
}

// Width reports the number of codes per row.
func (w *Writer) Width() int { return w.width }

// Rows reports the number of rows appended so far.
func (w *Writer) Rows() int { return w.rows }

// Bytes reports the approximate resident size of the unsealed rows.
func (w *Writer) Bytes() int64 {
	n := int64(0)
	for _, c := range w.cols {
		n += 4 * int64(cap(c))
	}
	return n
}

// Append adds one row. len(tuple) must equal Width.
func (w *Writer) Append(tuple []uint32) {
	if len(tuple) != w.width {
		panic(fmt.Sprintf("segment: append width %d into writer width %d", len(tuple), w.width))
	}
	for j, v := range tuple {
		w.cols[j] = append(w.cols[j], v)
	}
	w.rows++
}

// At returns the code at unsealed row i, column j.
func (w *Writer) At(i, j int) uint32 { return w.cols[j][i] }

// Tuple decodes unsealed row i into dst (grown if needed).
func (w *Writer) Tuple(i int, dst []uint32) []uint32 {
	if cap(dst) < w.width {
		dst = make([]uint32, w.width)
	}
	dst = dst[:w.width]
	for j := range w.cols {
		dst[j] = w.cols[j][i]
	}
	return dst
}

// Seal compresses the accumulated rows into an immutable Segment and
// resets the writer to empty. Sealing zero rows returns nil.
func (w *Writer) Seal() *Segment {
	if w.rows == 0 {
		return nil
	}
	s := Pack(w.cols, w.rows)
	for j := range w.cols {
		w.cols[j] = w.cols[j][:0]
	}
	w.rows = 0
	return s
}

// Pack compresses n rows of column-major codes into a Segment. Each
// cols[j] must have at least n elements; the inputs are copied, never
// aliased.
func Pack(cols [][]uint32, n int) *Segment {
	if n <= 0 {
		return nil
	}
	s := &Segment{rows: n, width: len(cols), cols: make([]col, len(cols))}
	for j, src := range cols {
		s.cols[j] = packColumn(src[:n])
	}
	return s
}

// packColumn picks the cheapest exact representation for one column:
// constant, frame-of-reference bit-packed, or raw.
func packColumn(codes []uint32) col {
	lo, hi := codes[0], codes[0]
	for _, v := range codes[1:] {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	nb := uint(bits.Len32(hi - lo))
	if nb == 0 {
		return col{base: lo, bits: 0}
	}
	packedBytes := (len(codes)*int(nb) + 63) / 64 * 8
	if nb >= 32 || packedBytes >= 4*len(codes) {
		raw := make([]uint32, len(codes))
		copy(raw, codes)
		return col{bits: 32, raw: raw}
	}
	words := make([]uint64, (len(codes)*int(nb)+63)/64)
	for i, v := range codes {
		d := uint64(v - lo)
		bit := uint(i) * nb
		w, off := bit>>6, bit&63
		words[w] |= d << off
		if off+nb > 64 {
			words[w+1] |= d >> (64 - off)
		}
	}
	return col{base: lo, bits: uint8(nb), words: words}
}

// Serialization format (little-endian):
//
//	magic "CSG1" | u32 width | u32 rows
//	per column: u32 base | u8 bits | u32 n | payload
//	  bits == 0:  n == 0, no payload
//	  bits == 32: n raw uint32 values
//	  else:       n packed uint64 words
var magic = [4]byte{'C', 'S', 'G', '1'}

// WriteTo serializes the segment. It implements io.WriterTo.
func (s *Segment) WriteTo(w io.Writer) (int64, error) {
	bw := bufio.NewWriter(w)
	cw := &countWriter{w: bw}
	if _, err := cw.Write(magic[:]); err != nil {
		return cw.n, err
	}
	var hdr [8]byte
	binary.LittleEndian.PutUint32(hdr[0:], uint32(s.width))
	binary.LittleEndian.PutUint32(hdr[4:], uint32(s.rows))
	if _, err := cw.Write(hdr[:]); err != nil {
		return cw.n, err
	}
	var scratch [8]byte
	for _, c := range s.cols {
		binary.LittleEndian.PutUint32(scratch[0:], c.base)
		scratch[4] = c.bits
		n := len(c.words)
		if c.bits == 32 {
			n = len(c.raw)
		}
		if _, err := cw.Write(scratch[:5]); err != nil {
			return cw.n, err
		}
		var nb [4]byte
		binary.LittleEndian.PutUint32(nb[:], uint32(n))
		if _, err := cw.Write(nb[:]); err != nil {
			return cw.n, err
		}
		switch c.bits {
		case 0:
		case 32:
			var vb [4]byte
			for _, v := range c.raw {
				binary.LittleEndian.PutUint32(vb[:], v)
				if _, err := cw.Write(vb[:]); err != nil {
					return cw.n, err
				}
			}
		default:
			var wb [8]byte
			for _, v := range c.words {
				binary.LittleEndian.PutUint64(wb[:], v)
				if _, err := cw.Write(wb[:]); err != nil {
					return cw.n, err
				}
			}
		}
	}
	if err := bw.Flush(); err != nil {
		return cw.n, err
	}
	return cw.n, nil
}

type countWriter struct {
	w io.Writer
	n int64
}

func (c *countWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += int64(n)
	return n, err
}

// Read deserializes a segment written by WriteTo.
func Read(r io.Reader) (*Segment, error) {
	br := bufio.NewReader(r)
	var m [4]byte
	if _, err := io.ReadFull(br, m[:]); err != nil {
		return nil, fmt.Errorf("segment: read magic: %w", err)
	}
	if m != magic {
		return nil, fmt.Errorf("segment: bad magic %q", m[:])
	}
	var hdr [8]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, fmt.Errorf("segment: read header: %w", err)
	}
	width := int(binary.LittleEndian.Uint32(hdr[0:]))
	rows := int(binary.LittleEndian.Uint32(hdr[4:]))
	if width <= 0 || width > 1<<20 || rows < 0 || rows > 1<<31-1 {
		return nil, fmt.Errorf("segment: implausible header width=%d rows=%d", width, rows)
	}
	s := &Segment{rows: rows, width: width, cols: make([]col, width)}
	for j := 0; j < width; j++ {
		var ch [9]byte
		if _, err := io.ReadFull(br, ch[:]); err != nil {
			return nil, fmt.Errorf("segment: read column %d header: %w", j, err)
		}
		c := col{base: binary.LittleEndian.Uint32(ch[0:]), bits: ch[4]}
		n := int(binary.LittleEndian.Uint32(ch[5:]))
		switch {
		case c.bits == 0:
			if n != 0 {
				return nil, fmt.Errorf("segment: constant column %d with payload", j)
			}
		case c.bits == 32:
			if n != rows {
				return nil, fmt.Errorf("segment: raw column %d has %d values, want %d", j, n, rows)
			}
			c.raw = make([]uint32, n)
			var vb [4]byte
			for i := range c.raw {
				if _, err := io.ReadFull(br, vb[:]); err != nil {
					return nil, fmt.Errorf("segment: read column %d: %w", j, err)
				}
				c.raw[i] = binary.LittleEndian.Uint32(vb[:])
			}
		case c.bits < 32:
			want := (rows*int(c.bits) + 63) / 64
			if n != want {
				return nil, fmt.Errorf("segment: packed column %d has %d words, want %d", j, n, want)
			}
			c.words = make([]uint64, n)
			var wb [8]byte
			for i := range c.words {
				if _, err := io.ReadFull(br, wb[:]); err != nil {
					return nil, fmt.Errorf("segment: read column %d: %w", j, err)
				}
				c.words[i] = binary.LittleEndian.Uint64(wb[:])
			}
		default:
			return nil, fmt.Errorf("segment: column %d has invalid bit width %d", j, c.bits)
		}
		s.cols[j] = c
	}
	return s, nil
}

// DiskBytes reports the exact serialized size of the segment.
func (s *Segment) DiskBytes() int64 {
	n := int64(4 + 8)
	for _, c := range s.cols {
		n += 9
		switch c.bits {
		case 0:
		case 32:
			n += 4 * int64(len(c.raw))
		default:
			n += 8 * int64(len(c.words))
		}
	}
	return n
}
