package segment_test

import (
	"bytes"
	"fmt"
	"testing"

	"coherdb/internal/rel"
	"coherdb/internal/segment"
	"coherdb/internal/sqlmini"
)

// TestRoundTripBothNullDialects drives real query output — produced
// under both NULL dialects (ANSI three-valued and the legacy
// NULL-equals-NULL semantics) over tables containing NULL code 0 —
// through the rel code-vector export hook and a full segment
// pack → seal → serialize → stream round trip, asserting the decoded
// codes are byte-identical to the source table.
func TestRoundTripBothNullDialects(t *testing.T) {
	for _, strict := range []bool{false, true} {
		t.Run(fmt.Sprintf("strict=%v", strict), func(t *testing.T) {
			db := sqlmini.NewDB()
			db.SetStrictNulls(strict)
			tab, err := rel.NewTable("T", "id", "state", "owner")
			if err != nil {
				t.Fatal(err)
			}
			for i := 0; i < 200; i++ {
				owner := rel.S(fmt.Sprintf("node%d", i%3))
				if i%4 == 0 {
					owner = rel.Value{} // NULL → code 0
				}
				tab.MustInsert(rel.I(int64(i)), rel.S([]string{"I", "S", "M", "E"}[i%4]), owner)
			}
			db.PutTable(tab)
			res, err := db.Query("SELECT id, state, owner FROM T WHERE owner <> 'node1' OR owner IS NULL")
			if err != nil {
				t.Fatal(err)
			}
			if res.NumRows() == 0 {
				t.Fatal("query returned no rows")
			}
			for _, src := range []*rel.Table{tab, res} {
				cols, n := src.ExportCodeColumns()
				seg := segment.Pack(cols, n)
				if seg.Rows() != n || seg.Width() != len(cols) {
					t.Fatalf("packed %dx%d, want %dx%d", seg.Rows(), seg.Width(), n, len(cols))
				}
				var b bytes.Buffer
				if _, err := seg.WriteTo(&b); err != nil {
					t.Fatal(err)
				}
				back, err := segment.Read(&b)
				if err != nil {
					t.Fatal(err)
				}
				seen := 0
				back.Stream(0, back.Rows(), nil, func(i int, tuple []uint32) bool {
					for j := range tuple {
						if want := src.CodeAt(i, j); tuple[j] != want {
							t.Fatalf("%s row %d col %d: code %d, want %d", src.Name(), i, j, tuple[j], want)
						}
					}
					seen++
					return true
				})
				if seen != n {
					t.Fatalf("streamed %d rows, want %d", seen, n)
				}
			}
		})
	}
}
