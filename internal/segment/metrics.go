package segment

import (
	"sort"
	"sync"

	"coherdb/internal/obs"
)

// The package tracks named stores so long-running processes can expose
// their segment memory accounting on /metrics without plumbing every
// store to the diagnostics server. Track registers (or replaces) a
// store under a label; Untrack removes it.
var (
	trackMu sync.Mutex
	tracked = map[string]*Store{}
	// final keeps the last-sampled stats of untracked stores so a
	// -metrics dump at process exit still shows the run's accounting
	// after the engine released its stores.
	final = map[string]Stats{}
)

// Track registers st under label for metrics publication. Passing a
// nil store removes the label, retaining a final stats snapshot.
func Track(label string, st *Store) {
	trackMu.Lock()
	if st == nil {
		if prev, ok := tracked[label]; ok {
			final[label] = prev.Stats()
			delete(tracked, label)
		}
	} else {
		tracked[label] = st
		delete(final, label)
	}
	trackMu.Unlock()
}

// Untrack removes a tracked store.
func Untrack(label string) { Track(label, nil) }

// PublishMetrics registers the coherdb_segment_* gauges on reg and
// returns a refresh function that re-samples every tracked store; call
// it from a scrape hook (core.Diag wires it into /metrics). Gauges are
// labeled by store:
//
//	coherdb_segment_segments        — sealed segments
//	coherdb_segment_spilled_segments— sealed segments only on disk
//	coherdb_segment_resident_bytes  — resident (in-memory) bytes
//	coherdb_segment_spilled_bytes   — bytes in spill files
//	coherdb_segment_spills_total    — cumulative spill events
//	coherdb_segment_faults_total    — cumulative disk reads
//	coherdb_segment_bytes_per_state — resident+spilled bytes / rows
func PublishMetrics(reg *obs.Registry) func() {
	if reg == nil {
		return func() {}
	}
	reg.Help("coherdb_segment_segments", "Sealed segments per tracked store.")
	reg.Help("coherdb_segment_spilled_segments", "Sealed segments currently only on disk.")
	reg.Help("coherdb_segment_resident_bytes", "Resident bytes of sealed segments plus the unsealed tail.")
	reg.Help("coherdb_segment_spilled_bytes", "Bytes in spill files.")
	reg.Help("coherdb_segment_spills_total", "Cumulative segment spill events.")
	reg.Help("coherdb_segment_faults_total", "Cumulative disk reads (faults and streaming loads).")
	reg.Help("coherdb_segment_bytes_per_state", "Total (resident+spilled) bytes divided by stored rows.")
	refresh := func() {
		trackMu.Lock()
		labels := make([]string, 0, len(tracked)+len(final))
		for l := range tracked {
			labels = append(labels, l)
		}
		for l := range final {
			labels = append(labels, l)
		}
		sort.Strings(labels)
		for _, l := range labels {
			s := final[l]
			if st, ok := tracked[l]; ok {
				s = st.Stats()
			}
			lb := obs.L("store", l)
			reg.Gauge("coherdb_segment_segments", lb).Set(s.Segments)
			reg.Gauge("coherdb_segment_spilled_segments", lb).Set(s.SpilledSegs)
			reg.Gauge("coherdb_segment_resident_bytes", lb).Set(s.ResidentBytes)
			reg.Gauge("coherdb_segment_spilled_bytes", lb).Set(s.SpilledBytes)
			reg.Gauge("coherdb_segment_spills_total", lb).Set(s.Spills)
			reg.Gauge("coherdb_segment_faults_total", lb).Set(s.Faults)
			perState := int64(0)
			if s.Rows > 0 {
				perState = (s.ResidentBytes + s.SpilledBytes) / s.Rows
			}
			reg.Gauge("coherdb_segment_bytes_per_state", lb).Set(perState)
		}
		trackMu.Unlock()
	}
	refresh()
	return refresh
}

// ParseBytes parses a human byte-size string: a plain integer is
// bytes; suffixes K/M/G (and KB/MB/GB, KiB/MiB/GiB, case-insensitive)
// scale by 1024.
func ParseBytes(s string) (int64, error) {
	mult := int64(1)
	trim := s
	lower := func(b byte) byte {
		if b >= 'A' && b <= 'Z' {
			return b + 32
		}
		return b
	}
	for _, suf := range []struct {
		text string
		mul  int64
	}{
		{"kib", 1 << 10}, {"mib", 1 << 20}, {"gib", 1 << 30},
		{"kb", 1 << 10}, {"mb", 1 << 20}, {"gb", 1 << 30},
		{"k", 1 << 10}, {"m", 1 << 20}, {"g", 1 << 30},
	} {
		n := len(trim) - len(suf.text)
		if n <= 0 {
			continue
		}
		match := true
		for i := 0; i < len(suf.text); i++ {
			if lower(trim[n+i]) != suf.text[i] {
				match = false
				break
			}
		}
		if match {
			mult = suf.mul
			trim = trim[:n]
			break
		}
	}
	var v int64
	if trim == "" {
		return 0, errBadSize(s)
	}
	for i := 0; i < len(trim); i++ {
		c := trim[i]
		if c < '0' || c > '9' {
			return 0, errBadSize(s)
		}
		v = v*10 + int64(c-'0')
	}
	return v * mult, nil
}

type errBadSize string

func (e errBadSize) Error() string { return "invalid byte size " + string(e) }
