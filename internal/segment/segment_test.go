package segment

import (
	"bytes"
	"math"
	"math/rand"
	"strings"
	"testing"

	"coherdb/internal/obs"
)

// roundTrip packs rows through a Writer, seals, and checks every
// access path (At, Tuple, Stream, serialize→Read) is byte-identical.
func roundTrip(t *testing.T, rows [][]uint32, width int) {
	t.Helper()
	w := NewWriter(width)
	for _, r := range rows {
		w.Append(r)
	}
	if w.Rows() != len(rows) {
		t.Fatalf("writer rows = %d, want %d", w.Rows(), len(rows))
	}
	// Tail reads before sealing.
	for i, r := range rows {
		for j, want := range r {
			if got := w.At(i, j); got != want {
				t.Fatalf("writer At(%d,%d) = %d, want %d", i, j, got, want)
			}
		}
	}
	seg := w.Seal()
	if len(rows) == 0 {
		if seg != nil {
			t.Fatalf("sealing zero rows: got non-nil segment")
		}
		return
	}
	if seg.Rows() != len(rows) || seg.Width() != width {
		t.Fatalf("segment %dx%d, want %dx%d", seg.Rows(), seg.Width(), len(rows), width)
	}
	check := func(name string, s *Segment) {
		t.Helper()
		for i, r := range rows {
			for j, want := range r {
				if got := s.At(i, j); got != want {
					t.Fatalf("%s: At(%d,%d) = %d, want %d", name, i, j, got, want)
				}
			}
		}
		var buf []uint32
		n := 0
		s.Stream(0, s.Rows(), buf, func(i int, tuple []uint32) bool {
			for j, want := range rows[i] {
				if tuple[j] != want {
					t.Fatalf("%s: stream row %d col %d = %d, want %d", name, i, j, tuple[j], want)
				}
			}
			n++
			return true
		})
		if n != len(rows) {
			t.Fatalf("%s: streamed %d rows, want %d", name, n, len(rows))
		}
	}
	check("sealed", seg)

	var b bytes.Buffer
	n, err := seg.WriteTo(&b)
	if err != nil {
		t.Fatalf("WriteTo: %v", err)
	}
	if n != int64(b.Len()) {
		t.Fatalf("WriteTo reported %d bytes, wrote %d", n, b.Len())
	}
	if n != seg.DiskBytes() {
		t.Fatalf("DiskBytes = %d, serialized %d", seg.DiskBytes(), n)
	}
	back, err := Read(&b)
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	check("deserialized", back)
}

func TestRoundTripHandPicked(t *testing.T) {
	cases := []struct {
		name string
		rows [][]uint32
	}{
		{"single", [][]uint32{{1, 2, 3}}},
		{"constant columns", [][]uint32{{7, 0, 9}, {7, 0, 9}, {7, 0, 9}}},
		{"all null codes", [][]uint32{{0, 0, 0}, {0, 0, 0}}},
		{"small deltas", [][]uint32{{100, 5, 0}, {101, 6, 1}, {103, 4, 0}, {100, 7, 1}}},
		{"max uint32 outliers", [][]uint32{
			{0, 1, math.MaxUint32},
			{math.MaxUint32, 2, 0},
			{5, 3, math.MaxUint32 - 1},
		}},
		{"mixed null and max", [][]uint32{
			{0, math.MaxUint32, 42},
			{0, 0, 42},
			{1, math.MaxUint32 - 7, 42},
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			roundTrip(t, tc.rows, len(tc.rows[0]))
		})
	}
}

func TestRoundTripEmpty(t *testing.T) {
	roundTrip(t, nil, 4)
}

// genRows builds a random row set that exercises the interesting code
// ranges: NULL code 0, dense small codes, sparse large codes, and
// math.MaxUint32 outliers. Column widths vary per column.
func genRows(rng *rand.Rand, nrows, width int) [][]uint32 {
	kind := make([]int, width)
	for j := range kind {
		kind[j] = rng.Intn(5)
	}
	rows := make([][]uint32, nrows)
	for i := range rows {
		r := make([]uint32, width)
		for j := range r {
			switch kind[j] {
			case 0: // constant
				r[j] = 42
			case 1: // NULL-heavy small codes
				if rng.Intn(3) == 0 {
					r[j] = 0
				} else {
					r[j] = uint32(rng.Intn(16))
				}
			case 2: // mid-range dense
				r[j] = 100000 + uint32(rng.Intn(4096))
			case 3: // wide range, forces raw
				r[j] = rng.Uint32()
			default: // outliers
				switch rng.Intn(4) {
				case 0:
					r[j] = 0
				case 1:
					r[j] = math.MaxUint32
				default:
					r[j] = uint32(rng.Intn(100))
				}
			}
		}
		rows[i] = r
	}
	return rows
}

// TestRoundTripProperty is the randomized round-trip property test:
// arbitrary code vectors (NULL code 0, empty columns, max-uint32
// outliers) survive pack → seal → stream and pack → serialize → read
// byte-identical. Run under -race by scripts/bench.sh and CI.
func TestRoundTripProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 60; trial++ {
		nrows := 1 + rng.Intn(300)
		width := 1 + rng.Intn(12)
		roundTrip(t, genRows(rng, nrows, width), width)
	}
}

func FuzzPackRoundTrip(f *testing.F) {
	f.Add(uint32(0), uint32(1), uint32(math.MaxUint32), 3)
	f.Add(uint32(7), uint32(7), uint32(7), 1)
	f.Fuzz(func(t *testing.T, a, b, c uint32, n int) {
		if n <= 0 || n > 512 {
			return
		}
		rows := make([][]uint32, n)
		for i := range rows {
			rows[i] = []uint32{a + uint32(i)%3, b, c ^ uint32(i)}
		}
		roundTrip(t, rows, 3)
	})
}

func TestStoreSpillRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	rows := genRows(rng, 5000, 6)
	st := NewStore(StoreConfig{
		Width:     6,
		BlockRows: 256,
		Budget:    4096, // tiny: forces nearly everything to disk
		SpillDir:  t.TempDir(),
	})
	defer st.Close()
	for i, r := range rows {
		if id := st.Append(r); id != int64(i) {
			t.Fatalf("append id = %d, want %d", id, i)
		}
	}
	s := st.Stats()
	if s.Spills == 0 || s.SpilledBytes == 0 {
		t.Fatalf("expected spills under a 4KiB budget, got %+v", s)
	}
	if s.ResidentBytes > 4096+int64(st.tail.Bytes())+8192 {
		t.Errorf("resident bytes %d way over budget", s.ResidentBytes)
	}

	// Sequential stream over the whole store (faults spilled segments
	// transiently).
	n := 0
	st.Stream(0, st.Rows(), func(id int64, tuple []uint32) bool {
		for j, want := range rows[id] {
			if tuple[j] != want {
				t.Fatalf("stream row %d col %d = %d, want %d", id, j, tuple[j], want)
			}
		}
		n++
		return true
	})
	if n != len(rows) {
		t.Fatalf("streamed %d rows, want %d", n, len(rows))
	}

	// Random access faults segments back in under the budget.
	var scratch []uint32
	for trial := 0; trial < 500; trial++ {
		id := int64(rng.Intn(len(rows)))
		scratch = st.Tuple(id, scratch)
		for j, want := range rows[id] {
			if scratch[j] != want {
				t.Fatalf("tuple %d col %d = %d, want %d", id, j, scratch[j], want)
			}
		}
	}
	if st.Stats().Faults == 0 {
		t.Fatalf("expected faults after random access over spilled store")
	}

	// Partial stream with early stop.
	got := 0
	st.Stream(100, 400, func(id int64, tuple []uint32) bool {
		got++
		return got < 50
	})
	if got != 50 {
		t.Fatalf("early-stopped stream visited %d rows, want 50", got)
	}
}

func TestStoreConcurrentReads(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	rows := genRows(rng, 3000, 4)
	st := NewStore(StoreConfig{Width: 4, BlockRows: 128, Budget: 2048, SpillDir: t.TempDir()})
	defer st.Close()
	for _, r := range rows {
		st.Append(r)
	}
	done := make(chan error, 8)
	for g := 0; g < 8; g++ {
		go func(seed int64) {
			rng := rand.New(rand.NewSource(seed))
			var scratch []uint32
			for trial := 0; trial < 300; trial++ {
				id := int64(rng.Intn(len(rows)))
				scratch = st.Tuple(id, scratch)
				for j, want := range rows[id] {
					if scratch[j] != want {
						done <- errMismatch
						return
					}
				}
			}
			done <- nil
		}(int64(g))
	}
	for g := 0; g < 8; g++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}

var errMismatch = errBadSize("concurrent read mismatch")

func TestVisitedExactness(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	st := NewStore(StoreConfig{Width: 5, BlockRows: 64, Budget: 2048, SpillDir: t.TempDir()})
	defer st.Close()
	v := NewVisited(st, 8)
	if v.Shards() != 8 {
		t.Fatalf("shards = %d, want 8", v.Shards())
	}

	ref := map[string]int64{}
	key := func(tup []uint32) string {
		b := make([]byte, 0, len(tup)*4)
		for _, c := range tup {
			b = append(b, byte(c), byte(c>>8), byte(c>>16), byte(c>>24))
		}
		return string(b)
	}
	for trial := 0; trial < 4000; trial++ {
		tup := make([]uint32, 5)
		for j := range tup {
			tup[j] = uint32(rng.Intn(40)) // small universe → duplicates
		}
		h := HashTuple(tup)
		shard := v.ShardOf(h)
		id, ok, _ := v.Lookup(shard, h, tup, nil)
		wantID, wantOK := ref[key(tup)]
		if ok != wantOK || (ok && id != wantID) {
			t.Fatalf("lookup %v = (%d,%v), want (%d,%v)", tup, id, ok, wantID, wantOK)
		}
		if !ok {
			id := st.Append(tup)
			v.Insert(shard, h, id)
			ref[key(tup)] = id
		}
	}
	if v.Bytes() <= 0 {
		t.Fatalf("visited Bytes() = %d", v.Bytes())
	}
}

func TestParseBytes(t *testing.T) {
	cases := []struct {
		in   string
		want int64
		err  bool
	}{
		{"0", 0, false},
		{"123", 123, false},
		{"4k", 4096, false},
		{"4K", 4096, false},
		{"2KiB", 2048, false},
		{"64MB", 64 << 20, false},
		{"1g", 1 << 30, false},
		{"256MiB", 256 << 20, false},
		{"", 0, true},
		{"12x", 0, true},
		{"MB", 0, true},
	}
	for _, tc := range cases {
		got, err := ParseBytes(tc.in)
		if tc.err != (err != nil) || got != tc.want {
			t.Errorf("ParseBytes(%q) = (%d, %v), want (%d, err=%v)", tc.in, got, err, tc.want, tc.err)
		}
	}
}

func BenchmarkSegmentPack(b *testing.B) {
	rng := rand.New(rand.NewSource(41))
	const rows, width = 4096, 8
	cols := make([][]uint32, width)
	for j := range cols {
		cols[j] = make([]uint32, rows)
		for i := range cols[j] {
			cols[j][i] = 1000 + uint32(rng.Intn(500)) // ~9-bit deltas
		}
	}
	b.Run("pack", func(b *testing.B) {
		b.SetBytes(rows * width * 4)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if Pack(cols, rows) == nil {
				b.Fatal("nil segment")
			}
		}
	})
	seg := Pack(cols, rows)
	b.Run("unpack", func(b *testing.B) {
		b.SetBytes(rows * width * 4)
		b.ReportAllocs()
		buf := make([]uint32, width)
		for i := 0; i < b.N; i++ {
			seg.Stream(0, rows, buf, func(int, []uint32) bool { return true })
		}
	})
}

// Untracking a store must retain a final stats snapshot so a metrics
// dump at process exit still reports the run's accounting.
func TestMetricsSurviveUntrack(t *testing.T) {
	st := NewStore(StoreConfig{Width: 3, BlockRows: 4})
	defer st.Close()
	for i := uint32(0); i < 20; i++ {
		st.Append([]uint32{i, i + 1, i + 2})
	}
	reg := obs.NewRegistry()
	refresh := PublishMetrics(reg)

	Track("test_untrack_snapshot", st)
	refresh()
	Untrack("test_untrack_snapshot")
	defer Track("test_untrack_snapshot", nil)

	refresh()
	var buf bytes.Buffer
	if err := reg.WriteMetrics(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, `coherdb_segment_segments{store="test_untrack_snapshot"} 5`) {
		t.Fatalf("exit dump lost untracked store's gauges:\n%s", out)
	}
	if !strings.Contains(out, `coherdb_segment_resident_bytes{store="test_untrack_snapshot"}`) {
		t.Fatalf("missing resident bytes gauge:\n%s", out)
	}
}
