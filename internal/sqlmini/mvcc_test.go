package sqlmini

import (
	"errors"
	"fmt"
	"sync"
	"testing"

	"coherdb/internal/rel"
)

// TestPlanCacheDDLEquivalentReplacementMisses pins the plan-cache key
// refactor: the cache is keyed by (statement text, catalog schema
// fingerprint), not text alone, so dropping a table and recreating it
// with the identical column list — a DDL-equivalent replacement the
// old text-keyed cache would have served a stale plan for — must MISS
// and recompile.
func TestPlanCacheDDLEquivalentReplacementMisses(t *testing.T) {
	db := newTestDB(t)
	const q = `SELECT m FROM V WHERE s = 'local'`
	if _, err := db.Query(q); err != nil { // compile: miss
		t.Fatal(err)
	}
	if _, err := db.Query(q); err != nil { // reuse: hit
		t.Fatal(err)
	}
	base := db.Stats()

	if err := db.ExecScript(`
		DROP TABLE V;
		CREATE TABLE V (m, s, d, v);
		INSERT INTO V VALUES ('fresh', 'local', 'home', 'VC0');
	`); err != nil {
		t.Fatal(err)
	}
	tab, err := db.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	if tab.NumRows() != 1 || !tab.Get(0, "m").Equal(rel.S("fresh")) {
		t.Fatalf("after DDL-equivalent replacement, rows = %v", tab)
	}
	st := db.Stats()
	if got := st.PlanCacheMisses - base.PlanCacheMisses; got < 1 {
		t.Errorf("DDL-equivalent replacement produced %d plan-cache misses for the reused query, want >= 1", got)
	}
	// The recompiled plan is cached again under the new fingerprint.
	mid := db.Stats()
	if _, err := db.Query(q); err != nil {
		t.Fatal(err)
	}
	if got := db.Stats().PlanCacheHits - mid.PlanCacheHits; got != 1 {
		t.Errorf("re-run after recompile: hits = %d, want 1", got)
	}
}

// TestSessionOverlayShadowing pins the session isolation rules: CREATE
// shadows a shared name with a private copy, session DML on the shadow
// never leaks into the shared catalog or other sessions, and dropping
// a shared table from inside a session is refused.
func TestSessionOverlayShadowing(t *testing.T) {
	db := newTestDB(t)
	a := db.NewSession()
	bsess := db.NewSession()

	if _, err := a.Exec(`CREATE TABLE V AS SELECT * FROM V`); err != nil {
		t.Fatal(err)
	}
	if _, err := a.Exec(`DELETE FROM V`); err != nil {
		t.Fatal(err)
	}
	if tab, err := a.Query(`SELECT m FROM V`); err != nil || tab.NumRows() != 0 {
		t.Fatalf("session a shadow: rows %v, err %v", tab, err)
	}
	if tab, err := bsess.Query(`SELECT m FROM V`); err != nil || tab.NumRows() == 0 {
		t.Fatalf("session b lost shared rows to a's shadow: rows %v, err %v", tab, err)
	}
	if tab, err := db.Query(`SELECT m FROM V`); err != nil || tab.NumRows() == 0 {
		t.Fatalf("shared catalog lost rows to a's shadow: rows %v, err %v", tab, err)
	}

	// Dropping the shadow un-shadows; dropping a shared name is refused.
	if _, err := a.Exec(`DROP TABLE V`); err != nil {
		t.Fatal(err)
	}
	if tab, err := a.Query(`SELECT m FROM V`); err != nil || tab.NumRows() == 0 {
		t.Fatalf("after shadow drop, session a should see shared rows: %v, err %v", tab, err)
	}
	if _, err := a.Exec(`DROP TABLE V`); !errors.Is(err, ErrSharedDrop) {
		t.Fatalf("dropping a shared table in a session: err = %v, want ErrSharedDrop", err)
	}
}

// TestConcurrentSessionsSeeAtomicStatements is the SQL-level half of
// the MVCC race test (the rel-level half lives in rel/catalog_test.go):
// a writer publishes epochs with two-row INSERTs and whole-batch
// DELETEs while reader sessions scan the same shared table under -race.
// Statement atomicity means every scan sees an even row count — a torn
// epoch or a read through the writer's working set shows up as an odd
// count (or as a race report).
func TestConcurrentSessionsSeeAtomicStatements(t *testing.T) {
	db := NewDB()
	if err := db.ExecScript(`CREATE TABLE T (k, v); INSERT INTO T VALUES ('s1', '0'), ('s2', '0')`); err != nil {
		t.Fatal(err)
	}

	const readers = 8
	const rounds = 60
	var wg sync.WaitGroup
	stop := make(chan struct{})
	errs := make(chan error, readers)

	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			sess := db.NewSession()
			defer sess.Close()
			for {
				select {
				case <-stop:
					return
				default:
				}
				tab, err := sess.Query(`SELECT k FROM T`)
				if err != nil {
					errs <- err
					return
				}
				if tab.NumRows()%2 != 0 {
					errs <- fmt.Errorf("reader saw %d rows (odd): torn statement", tab.NumRows())
					return
				}
			}
		}()
	}

	for i := 0; i < rounds; i++ {
		if _, err := db.Exec(fmt.Sprintf(`INSERT INTO T VALUES ('a%d', '1'), ('b%d', '1')`, i, i)); err != nil {
			t.Fatal(err)
		}
		if i%8 == 7 {
			if _, err := db.Exec(`DELETE FROM T WHERE v = '1'`); err != nil {
				t.Fatal(err)
			}
		}
	}
	close(stop)
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}
