package sqlmini

import (
	"strconv"

	"coherdb/internal/rel"
)

// Parser turns a token stream into statements and expressions. Grammar
// (informal):
//
//	stmt      := select | create | drop | insert | delete | update
//	select    := SELECT [DISTINCT] items FROM refs {join} [WHERE expr]
//	             [ORDER BY keys] [LIMIT n] [UNION [ALL] select]
//	expr      := or [ '?' expr ':' expr ]          (right associative)
//	or        := and {OR and}
//	and       := not {AND not}
//	not       := [NOT] cmp
//	cmp       := primary [cmpop primary | IN (...) | IS [NOT] NULL | BETWEEN]
//	primary   := literal | column | call | CASE | '(' expr ')'
type Parser struct {
	toks []Token
	pos  int
}

// NewParser builds a parser over src.
func NewParser(src string) (*Parser, error) {
	toks, err := Lex(src)
	if err != nil {
		return nil, err
	}
	return &Parser{toks: toks}, nil
}

// ParseStatement parses a single SQL statement from src. A trailing
// semicolon is allowed.
func ParseStatement(src string) (Stmt, error) {
	p, err := NewParser(src)
	if err != nil {
		return nil, err
	}
	s, err := p.parseStmt()
	if err != nil {
		return nil, err
	}
	p.accept(TokSymbol, ";")
	if !p.atEOF() {
		return nil, errAt(p.cur().Pos, "unexpected %s after statement", p.cur())
	}
	return s, nil
}

// ParseScript parses a semicolon-separated sequence of statements.
func ParseScript(src string) ([]Stmt, error) {
	p, err := NewParser(src)
	if err != nil {
		return nil, err
	}
	var out []Stmt
	for !p.atEOF() {
		s, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		out = append(out, s)
		if !p.accept(TokSymbol, ";") && !p.atEOF() {
			return nil, errAt(p.cur().Pos, "expected ';' between statements, got %s", p.cur())
		}
	}
	return out, nil
}

// ParseExpr parses a standalone expression (the constraint language of the
// paper uses bare ternary expressions, not full statements).
func ParseExpr(src string) (Expr, error) {
	p, err := NewParser(src)
	if err != nil {
		return nil, err
	}
	e, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if !p.atEOF() {
		return nil, errAt(p.cur().Pos, "unexpected %s after expression", p.cur())
	}
	return e, nil
}

func (p *Parser) cur() Token  { return p.toks[p.pos] }
func (p *Parser) atEOF() bool { return p.cur().Kind == TokEOF }

func (p *Parser) accept(kind TokKind, text string) bool {
	if p.cur().Kind == kind && p.cur().Text == text {
		p.pos++
		return true
	}
	return false
}

func (p *Parser) expect(kind TokKind, text string) error {
	if !p.accept(kind, text) {
		return errAt(p.cur().Pos, "expected %q, got %s", text, p.cur())
	}
	return nil
}

func (p *Parser) acceptKeyword(kw string) bool { return p.accept(TokKeyword, kw) }

func (p *Parser) expectIdent() (string, error) {
	if p.cur().Kind == TokIdent {
		name := p.cur().Text
		p.pos++
		return name, nil
	}
	return "", errAt(p.cur().Pos, "expected identifier, got %s", p.cur())
}

func (p *Parser) parseStmt() (Stmt, error) {
	switch {
	case p.cur().Kind == TokKeyword && p.cur().Text == "SELECT":
		return p.parseSelect()
	case p.acceptKeyword("EXPLAIN"):
		analyze := p.acceptKeyword("ANALYZE")
		sel, err := p.parseSelect()
		if err != nil {
			return nil, err
		}
		return &ExplainStmt{Query: sel, Analyze: analyze}, nil
	case p.acceptKeyword("CREATE"):
		return p.parseCreate()
	case p.acceptKeyword("DROP"):
		return p.parseDrop()
	case p.acceptKeyword("INSERT"):
		return p.parseInsert()
	case p.acceptKeyword("DELETE"):
		return p.parseDelete()
	case p.acceptKeyword("UPDATE"):
		return p.parseUpdate()
	default:
		return nil, errAt(p.cur().Pos, "expected a statement, got %s", p.cur())
	}
}

func (p *Parser) parseSelect() (*SelectStmt, error) {
	if err := p.expect(TokKeyword, "SELECT"); err != nil {
		return nil, err
	}
	s := &SelectStmt{Limit: -1}
	s.Distinct = p.acceptKeyword("DISTINCT")
	for {
		item, err := p.parseSelectItem()
		if err != nil {
			return nil, err
		}
		s.Items = append(s.Items, item)
		if !p.accept(TokSymbol, ",") {
			break
		}
	}
	if p.acceptKeyword("FROM") {
		for {
			ref, err := p.parseTableRef()
			if err != nil {
				return nil, err
			}
			s.From = append(s.From, ref)
			if !p.accept(TokSymbol, ",") {
				break
			}
		}
		for p.acceptKeyword("JOIN") {
			ref, err := p.parseTableRef()
			if err != nil {
				return nil, err
			}
			if err := p.expect(TokKeyword, "ON"); err != nil {
				return nil, err
			}
			on, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			s.Joins = append(s.Joins, JoinClause{Ref: ref, On: on})
		}
	}
	if p.acceptKeyword("WHERE") {
		w, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		s.Where = w
	}
	if p.acceptKeyword("GROUP") {
		if err := p.expect(TokKeyword, "BY"); err != nil {
			return nil, err
		}
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			s.GroupBy = append(s.GroupBy, e)
			if !p.accept(TokSymbol, ",") {
				break
			}
		}
	}
	if p.acceptKeyword("HAVING") {
		h, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		s.Having = h
	}
	if p.acceptKeyword("ORDER") {
		if err := p.expect(TokKeyword, "BY"); err != nil {
			return nil, err
		}
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			key := OrderKey{Expr: e}
			if p.acceptKeyword("DESC") {
				key.Desc = true
			} else {
				p.acceptKeyword("ASC")
			}
			s.OrderBy = append(s.OrderBy, key)
			if !p.accept(TokSymbol, ",") {
				break
			}
		}
	}
	if p.acceptKeyword("LIMIT") {
		if p.cur().Kind != TokNumber {
			return nil, errAt(p.cur().Pos, "expected number after LIMIT, got %s", p.cur())
		}
		n, err := strconv.Atoi(p.cur().Text)
		if err != nil || n < 0 {
			return nil, errAt(p.cur().Pos, "bad LIMIT %q", p.cur().Text)
		}
		p.pos++
		s.Limit = n
	}
	if p.acceptKeyword("UNION") {
		s.UnionAll = p.acceptKeyword("ALL")
		u, err := p.parseSelect()
		if err != nil {
			return nil, err
		}
		s.Union = u
	}
	return s, nil
}

func (p *Parser) parseSelectItem() (SelectItem, error) {
	if p.accept(TokSymbol, "*") {
		return SelectItem{Star: true}, nil
	}
	e, err := p.parseExpr()
	if err != nil {
		return SelectItem{}, err
	}
	item := SelectItem{Expr: e}
	if p.acceptKeyword("AS") {
		a, err := p.expectIdent()
		if err != nil {
			return SelectItem{}, err
		}
		item.Alias = a
	} else if p.cur().Kind == TokIdent {
		item.Alias = p.cur().Text
		p.pos++
	}
	return item, nil
}

func (p *Parser) parseTableRef() (TableRef, error) {
	name, err := p.expectIdent()
	if err != nil {
		return TableRef{}, err
	}
	ref := TableRef{Name: name}
	if p.acceptKeyword("AS") {
		a, err := p.expectIdent()
		if err != nil {
			return TableRef{}, err
		}
		ref.Alias = a
	} else if p.cur().Kind == TokIdent {
		ref.Alias = p.cur().Text
		p.pos++
	}
	return ref, nil
}

func (p *Parser) parseCreate() (Stmt, error) {
	if err := p.expect(TokKeyword, "TABLE"); err != nil {
		return nil, err
	}
	name, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	if p.acceptKeyword("AS") {
		sel, err := p.parseSelect()
		if err != nil {
			return nil, err
		}
		return &CreateStmt{Name: name, As: sel}, nil
	}
	if err := p.expect(TokSymbol, "("); err != nil {
		return nil, err
	}
	var cols []string
	for {
		c, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		cols = append(cols, c)
		// Ignore an optional type word for SQL compatibility.
		if p.cur().Kind == TokIdent {
			p.pos++
		}
		if !p.accept(TokSymbol, ",") {
			break
		}
	}
	if err := p.expect(TokSymbol, ")"); err != nil {
		return nil, err
	}
	return &CreateStmt{Name: name, Cols: cols}, nil
}

func (p *Parser) parseDrop() (Stmt, error) {
	if err := p.expect(TokKeyword, "TABLE"); err != nil {
		return nil, err
	}
	d := &DropStmt{}
	if p.acceptKeyword("IF") {
		if err := p.expect(TokKeyword, "EXISTS"); err != nil {
			return nil, err
		}
		d.IfExists = true
	}
	name, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	d.Name = name
	return d, nil
}

func (p *Parser) parseInsert() (Stmt, error) {
	if err := p.expect(TokKeyword, "INTO"); err != nil {
		return nil, err
	}
	name, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	ins := &InsertStmt{Table: name}
	if p.accept(TokSymbol, "(") {
		for {
			c, err := p.expectIdent()
			if err != nil {
				return nil, err
			}
			ins.Cols = append(ins.Cols, c)
			if !p.accept(TokSymbol, ",") {
				break
			}
		}
		if err := p.expect(TokSymbol, ")"); err != nil {
			return nil, err
		}
	}
	if err := p.expect(TokKeyword, "VALUES"); err != nil {
		return nil, err
	}
	for {
		if err := p.expect(TokSymbol, "("); err != nil {
			return nil, err
		}
		var row []Expr
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			row = append(row, e)
			if !p.accept(TokSymbol, ",") {
				break
			}
		}
		if err := p.expect(TokSymbol, ")"); err != nil {
			return nil, err
		}
		ins.Rows = append(ins.Rows, row)
		if !p.accept(TokSymbol, ",") {
			break
		}
	}
	return ins, nil
}

func (p *Parser) parseDelete() (Stmt, error) {
	if err := p.expect(TokKeyword, "FROM"); err != nil {
		return nil, err
	}
	name, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	d := &DeleteStmt{Table: name}
	if p.acceptKeyword("WHERE") {
		w, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		d.Where = w
	}
	return d, nil
}

func (p *Parser) parseUpdate() (Stmt, error) {
	name, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	if err := p.expect(TokKeyword, "SET"); err != nil {
		return nil, err
	}
	u := &UpdateStmt{Table: name}
	for {
		c, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		if err := p.expect(TokSymbol, "="); err != nil {
			return nil, err
		}
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		u.Cols = append(u.Cols, c)
		u.Exprs = append(u.Exprs, e)
		if !p.accept(TokSymbol, ",") {
			break
		}
	}
	if p.acceptKeyword("WHERE") {
		w, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		u.Where = w
	}
	return u, nil
}

// parseExpr parses the top level: ternary over OR.
func (p *Parser) parseExpr() (Expr, error) {
	cond, err := p.parseOr()
	if err != nil {
		return nil, err
	}
	if p.accept(TokSymbol, "?") {
		thenE, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expect(TokSymbol, ":"); err != nil {
			return nil, err
		}
		elseE, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		return Ternary{Cond: cond, Then: thenE, Else: elseE}, nil
	}
	return cond, nil
}

func (p *Parser) parseOr() (Expr, error) {
	l, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.acceptKeyword("OR") {
		r, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		l = Binary{Op: "OR", L: l, R: r}
	}
	return l, nil
}

func (p *Parser) parseAnd() (Expr, error) {
	l, err := p.parseNot()
	if err != nil {
		return nil, err
	}
	for p.acceptKeyword("AND") {
		r, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		l = Binary{Op: "AND", L: l, R: r}
	}
	return l, nil
}

func (p *Parser) parseNot() (Expr, error) {
	if p.acceptKeyword("NOT") {
		x, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		return Unary{Op: "NOT", X: x}, nil
	}
	return p.parseCmp()
}

func (p *Parser) parseCmp() (Expr, error) {
	l, err := p.parsePrimary()
	if err != nil {
		return nil, err
	}
	// Postfix predicates.
	switch {
	case p.cur().Kind == TokSymbol && isCmpOp(p.cur().Text):
		op := p.cur().Text
		p.pos++
		if op == "!=" || op == "==" {
			if op == "!=" {
				op = "<>"
			} else {
				op = "="
			}
		}
		r, err := p.parsePrimary()
		if err != nil {
			return nil, err
		}
		return Binary{Op: op, L: l, R: r}, nil
	case p.acceptKeyword("IS"):
		neg := p.acceptKeyword("NOT")
		if err := p.expect(TokKeyword, "NULL"); err != nil {
			return nil, err
		}
		return IsNull{X: l, Negate: neg}, nil
	case p.acceptKeyword("IN"):
		return p.parseInTail(l, false)
	case p.acceptKeyword("NOT"):
		switch {
		case p.acceptKeyword("IN"):
			return p.parseInTail(l, true)
		case p.acceptKeyword("BETWEEN"):
			return p.parseBetweenTail(l, true)
		default:
			return nil, errAt(p.cur().Pos, "expected IN or BETWEEN after NOT, got %s", p.cur())
		}
	case p.acceptKeyword("BETWEEN"):
		return p.parseBetweenTail(l, false)
	}
	return l, nil
}

func (p *Parser) parseInTail(l Expr, neg bool) (Expr, error) {
	if err := p.expect(TokSymbol, "("); err != nil {
		return nil, err
	}
	var set []Expr
	for {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		set = append(set, e)
		if !p.accept(TokSymbol, ",") {
			break
		}
	}
	if err := p.expect(TokSymbol, ")"); err != nil {
		return nil, err
	}
	return InList{X: l, Set: set, Negate: neg}, nil
}

func (p *Parser) parseBetweenTail(l Expr, neg bool) (Expr, error) {
	lo, err := p.parsePrimary()
	if err != nil {
		return nil, err
	}
	if err := p.expect(TokKeyword, "AND"); err != nil {
		return nil, err
	}
	hi, err := p.parsePrimary()
	if err != nil {
		return nil, err
	}
	return Between{X: l, Lo: lo, Hi: hi, Negate: neg}, nil
}

func isCmpOp(s string) bool {
	switch s {
	case "=", "==", "!=", "<>", "<", "<=", ">", ">=":
		return true
	}
	return false
}

func (p *Parser) parsePrimary() (Expr, error) {
	t := p.cur()
	switch t.Kind {
	case TokString:
		p.pos++
		return Lit{Val: rel.S(t.Text)}, nil
	case TokNumber:
		p.pos++
		n, err := strconv.ParseInt(t.Text, 10, 64)
		if err != nil {
			return nil, errAt(t.Pos, "bad number %q", t.Text)
		}
		return Lit{Val: rel.I(n)}, nil
	case TokKeyword:
		switch t.Text {
		case "NULL":
			p.pos++
			return Lit{Val: rel.Null()}, nil
		case "TRUE":
			p.pos++
			return Lit{Val: rel.B(true)}, nil
		case "FALSE":
			p.pos++
			return Lit{Val: rel.B(false)}, nil
		case "CASE":
			return p.parseCase()
		case "COUNT":
			// COUNT(*) is handled by the executor as a select item;
			// parse it as a call for uniformity.
			p.pos++
			if err := p.expect(TokSymbol, "("); err != nil {
				return nil, err
			}
			if err := p.expect(TokSymbol, "*"); err != nil {
				return nil, err
			}
			if err := p.expect(TokSymbol, ")"); err != nil {
				return nil, err
			}
			return Call{Name: "count_star"}, nil
		case "MIN", "MAX":
			// Aggregate min/max over a grouped column.
			name := "agg_min"
			if t.Text == "MAX" {
				name = "agg_max"
			}
			p.pos++
			if err := p.expect(TokSymbol, "("); err != nil {
				return nil, err
			}
			arg, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if err := p.expect(TokSymbol, ")"); err != nil {
				return nil, err
			}
			return Call{Name: name, Args: []Expr{arg}}, nil
		}
		return nil, errAt(t.Pos, "unexpected %s in expression", t)
	case TokIdent:
		p.pos++
		name := t.Text
		if p.accept(TokSymbol, "(") {
			call := Call{Name: name}
			if !p.accept(TokSymbol, ")") {
				for {
					a, err := p.parseExpr()
					if err != nil {
						return nil, err
					}
					call.Args = append(call.Args, a)
					if !p.accept(TokSymbol, ",") {
						break
					}
				}
				if err := p.expect(TokSymbol, ")"); err != nil {
					return nil, err
				}
			}
			return call, nil
		}
		if p.accept(TokSymbol, ".") {
			col, err := p.expectIdent()
			if err != nil {
				return nil, err
			}
			return Col{Qualifier: name, Name: col}, nil
		}
		return Col{Name: name}, nil
	case TokSymbol:
		if t.Text == "(" {
			p.pos++
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if err := p.expect(TokSymbol, ")"); err != nil {
				return nil, err
			}
			return e, nil
		}
	}
	return nil, errAt(t.Pos, "unexpected %s in expression", t)
}

func (p *Parser) parseCase() (Expr, error) {
	if err := p.expect(TokKeyword, "CASE"); err != nil {
		return nil, err
	}
	var c Case
	for p.acceptKeyword("WHEN") {
		cond, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expect(TokKeyword, "THEN"); err != nil {
			return nil, err
		}
		val, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		c.Whens = append(c.Whens, When{Cond: cond, Val: val})
	}
	if len(c.Whens) == 0 {
		return nil, errAt(p.cur().Pos, "CASE requires at least one WHEN")
	}
	if p.acceptKeyword("ELSE") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		c.Else = e
	}
	if err := p.expect(TokKeyword, "END"); err != nil {
		return nil, err
	}
	return c, nil
}
