package sqlmini

import (
	"errors"
	"fmt"

	"coherdb/internal/rel"
)

// Errors returned by expression evaluation.
var (
	ErrUnknownColumn = errors.New("sqlmini: unknown column")
	ErrUnknownFunc   = errors.New("sqlmini: unknown function")
	ErrType          = errors.New("sqlmini: type error")
)

// Func is a registered scalar function callable from SQL (the paper uses
// isrequest/isresponse predicates over the message catalog).
type Func func(args []rel.Value) (rel.Value, error)

// Env resolves column references during evaluation.
type Env interface {
	// Lookup returns the value of the (possibly qualified) column. The
	// second result is false if the column is not in scope.
	Lookup(qualifier, name string) (rel.Value, bool)
}

// posEnv is implemented by Envs that expose positional row access, letting
// plan-bound column references (boundCol) skip name resolution entirely.
type posEnv interface {
	At(i int) (rel.Value, bool)
}

// MapEnv is an Env backed by a map from column name to value; qualifiers are
// ignored. Used by the constraint solver, where a candidate row is a simple
// name→value binding.
type MapEnv map[string]rel.Value

// Lookup implements Env.
func (m MapEnv) Lookup(_, name string) (rel.Value, bool) {
	v, ok := m[name]
	return v, ok
}

// Evaluator evaluates expressions under a set of registered functions.
//
// NullEq selects the equality dialect. With NullEq false the evaluator uses
// SQL three-valued logic: any comparison with NULL is unknown. With NullEq
// true it uses the paper's constraint dialect, where NULL is an ordinary
// domain value ("dontcare"/"noop") and "col = NULL" is satisfied exactly
// when col is NULL — the semantics required for column constraints such as
// "inmsg = readex and dirst = SI ? remmsg = sinv : remmsg = NULL".
type Evaluator struct {
	Funcs  map[string]Func
	NullEq bool
}

// tri is three-valued logic: -1 false, 0 unknown, +1 true.
type tri int8

const (
	triFalse   tri = -1
	triUnknown tri = 0
	triTrue    tri = 1
)

func triOf(v rel.Value) tri {
	if v.IsNull() {
		return triUnknown
	}
	if v.Truthy() {
		return triTrue
	}
	return triFalse
}

func triVal(t tri) rel.Value {
	switch t {
	case triTrue:
		return rel.B(true)
	case triFalse:
		return rel.B(false)
	default:
		return rel.Null()
	}
}

// Eval evaluates e under env, returning a value (possibly NULL for SQL
// unknown).
func (ev *Evaluator) Eval(e Expr, env Env) (rel.Value, error) {
	switch x := e.(type) {
	case Lit:
		return x.Val, nil
	case Col:
		v, ok := env.Lookup(x.Qualifier, x.Name)
		if !ok {
			return rel.Null(), fmt.Errorf("%w: %s", ErrUnknownColumn, x.String())
		}
		return v, nil
	case boundCol:
		if re, ok := env.(posEnv); ok {
			if v, ok := re.At(x.Idx); ok {
				return v, nil
			}
		}
		// Non-positional Env, or a stale position: resolve by name.
		v, ok := env.Lookup(x.Qualifier, x.Name)
		if !ok {
			return rel.Null(), fmt.Errorf("%w: %s", ErrUnknownColumn, x.Col.String())
		}
		return v, nil
	case Unary:
		t, err := ev.Bool(x.X, env)
		if err != nil {
			return rel.Null(), err
		}
		return triVal(-t), nil // NOT flips true/false, keeps unknown
	case Binary:
		return ev.evalBinary(x, env)
	case InList:
		return ev.evalIn(x, env)
	case IsNull:
		v, err := ev.Eval(x.X, env)
		if err != nil {
			return rel.Null(), err
		}
		res := v.IsNull() != x.Negate
		return rel.B(res), nil
	case Between:
		return ev.evalBetween(x, env)
	case Ternary:
		c, err := ev.Bool(x.Cond, env)
		if err != nil {
			return rel.Null(), err
		}
		// The paper's ternary chooses the else branch whenever the
		// condition does not hold; unknown behaves as false.
		if c == triTrue {
			return ev.Eval(x.Then, env)
		}
		return ev.Eval(x.Else, env)
	case Case:
		for _, w := range x.Whens {
			c, err := ev.Bool(w.Cond, env)
			if err != nil {
				return rel.Null(), err
			}
			if c == triTrue {
				return ev.Eval(w.Val, env)
			}
		}
		if x.Else != nil {
			return ev.Eval(x.Else, env)
		}
		return rel.Null(), nil
	case Call:
		fn, ok := ev.Funcs[x.Name]
		if !ok {
			return rel.Null(), fmt.Errorf("%w: %s", ErrUnknownFunc, x.Name)
		}
		args := make([]rel.Value, len(x.Args))
		for i, a := range x.Args {
			v, err := ev.Eval(a, env)
			if err != nil {
				return rel.Null(), err
			}
			args[i] = v
		}
		return fn(args)
	default:
		return rel.Null(), fmt.Errorf("sqlmini: unhandled expression %T", e)
	}
}

// Bool evaluates e as a condition, returning three-valued truth.
func (ev *Evaluator) Bool(e Expr, env Env) (tri, error) {
	// Short-circuit AND/OR with Kleene logic directly so that unknown
	// operands combine correctly (unknown OR true = true).
	if b, ok := e.(Binary); ok && (b.Op == "AND" || b.Op == "OR") {
		l, err := ev.Bool(b.L, env)
		if err != nil {
			return triUnknown, err
		}
		if b.Op == "AND" && l == triFalse {
			return triFalse, nil
		}
		if b.Op == "OR" && l == triTrue {
			return triTrue, nil
		}
		r, err := ev.Bool(b.R, env)
		if err != nil {
			return triUnknown, err
		}
		if b.Op == "AND" {
			return triMin(l, r), nil
		}
		return triMax(l, r), nil
	}
	v, err := ev.Eval(e, env)
	if err != nil {
		return triUnknown, err
	}
	return triOf(v), nil
}

// True reports whether e evaluates to definite truth (WHERE semantics).
func (ev *Evaluator) True(e Expr, env Env) (bool, error) {
	t, err := ev.Bool(e, env)
	return t == triTrue, err
}

func triMin(a, b tri) tri {
	if a < b {
		return a
	}
	return b
}

func triMax(a, b tri) tri {
	if a > b {
		return a
	}
	return b
}

func (ev *Evaluator) evalBinary(x Binary, env Env) (rel.Value, error) {
	switch x.Op {
	case "AND", "OR":
		t, err := ev.Bool(x, env)
		if err != nil {
			return rel.Null(), err
		}
		return triVal(t), nil
	}
	l, err := ev.Eval(x.L, env)
	if err != nil {
		return rel.Null(), err
	}
	r, err := ev.Eval(x.R, env)
	if err != nil {
		return rel.Null(), err
	}
	return triVal(ev.compare(x.Op, l, r)), nil
}

// compare applies a comparison operator under the configured NULL dialect.
func (ev *Evaluator) compare(op string, l, r rel.Value) tri {
	return compareVals(op, l, r, ev.NullEq)
}

// compareVals is the operator kernel shared by the tree-walking evaluator
// and the compiled closures (compile.go): one comparison under the given
// NULL dialect.
func compareVals(op string, l, r rel.Value, nullEq bool) tri {
	if l.IsNull() || r.IsNull() {
		if nullEq {
			// Constraint dialect: NULL is a plain domain value.
			switch op {
			case "=":
				return triBool(l.Equal(r))
			case "<>":
				return triBool(!l.Equal(r))
			default:
				// Ordered comparison against dontcare never holds.
				return triFalse
			}
		}
		return triUnknown
	}
	switch op {
	case "=":
		return triBool(l.Equal(r))
	case "<>":
		return triBool(!l.Equal(r))
	}
	// Ordered comparisons require same-kind operands.
	if l.Kind() != r.Kind() {
		return triFalse
	}
	c := l.Compare(r)
	switch op {
	case "<":
		return triBool(c < 0)
	case "<=":
		return triBool(c <= 0)
	case ">":
		return triBool(c > 0)
	case ">=":
		return triBool(c >= 0)
	}
	return triUnknown
}

func triBool(b bool) tri {
	if b {
		return triTrue
	}
	return triFalse
}

func (ev *Evaluator) evalIn(x InList, env Env) (rel.Value, error) {
	v, err := ev.Eval(x.X, env)
	if err != nil {
		return rel.Null(), err
	}
	res := triFalse
	for _, s := range x.Set {
		sv, err := ev.Eval(s, env)
		if err != nil {
			return rel.Null(), err
		}
		res = triMax(res, ev.compare("=", v, sv))
		if res == triTrue {
			break
		}
	}
	if x.Negate {
		res = -res
	}
	return triVal(res), nil
}

func (ev *Evaluator) evalBetween(x Between, env Env) (rel.Value, error) {
	v, err := ev.Eval(x.X, env)
	if err != nil {
		return rel.Null(), err
	}
	lo, err := ev.Eval(x.Lo, env)
	if err != nil {
		return rel.Null(), err
	}
	hi, err := ev.Eval(x.Hi, env)
	if err != nil {
		return rel.Null(), err
	}
	res := triMin(ev.compare(">=", v, lo), ev.compare("<=", v, hi))
	if x.Negate {
		res = -res
	}
	return triVal(res), nil
}

// Columns returns the set of column names referenced by e (unqualified
// spelling). The constraint solver uses this to schedule incremental column
// generation: a column's constraint can only be applied once every column it
// mentions has been generated.
func Columns(e Expr) map[string]struct{} {
	out := make(map[string]struct{})
	collectCols(e, out)
	return out
}

func collectCols(e Expr, out map[string]struct{}) {
	switch x := e.(type) {
	case Lit:
	case Col:
		out[x.Name] = struct{}{}
	case boundCol:
		out[x.Name] = struct{}{}
	case Unary:
		collectCols(x.X, out)
	case Binary:
		collectCols(x.L, out)
		collectCols(x.R, out)
	case InList:
		collectCols(x.X, out)
		for _, s := range x.Set {
			collectCols(s, out)
		}
	case IsNull:
		collectCols(x.X, out)
	case Between:
		collectCols(x.X, out)
		collectCols(x.Lo, out)
		collectCols(x.Hi, out)
	case Ternary:
		collectCols(x.Cond, out)
		collectCols(x.Then, out)
		collectCols(x.Else, out)
	case Case:
		for _, w := range x.Whens {
			collectCols(w.Cond, out)
			collectCols(w.Val, out)
		}
		if x.Else != nil {
			collectCols(x.Else, out)
		}
	case Call:
		for _, a := range x.Args {
			collectCols(a, out)
		}
	}
}
