package sqlmini

import (
	"testing"
)

func kinds(toks []Token) []TokKind {
	out := make([]TokKind, len(toks))
	for i, t := range toks {
		out[i] = t.Kind
	}
	return out
}

func TestLexBasicStatement(t *testing.T) {
	toks, err := Lex(`Select inmsg, dirst from D where dirst = 'MESI'`)
	if err != nil {
		t.Fatal(err)
	}
	want := []struct {
		kind TokKind
		text string
	}{
		{TokKeyword, "SELECT"}, {TokIdent, "inmsg"}, {TokSymbol, ","},
		{TokIdent, "dirst"}, {TokKeyword, "FROM"}, {TokIdent, "D"},
		{TokKeyword, "WHERE"}, {TokIdent, "dirst"}, {TokSymbol, "="},
		{TokString, "MESI"}, {TokEOF, ""},
	}
	if len(toks) != len(want) {
		t.Fatalf("got %d tokens, want %d: %v", len(toks), len(want), toks)
	}
	for i, w := range want {
		if toks[i].Kind != w.kind || toks[i].Text != w.text {
			t.Errorf("token %d = %v, want %s %q", i, toks[i], w.kind, w.text)
		}
	}
}

func TestLexDoubleQuotedValuesAreStrings(t *testing.T) {
	// The paper writes: dirst = "Busy-d".
	toks, err := Lex(`dirst = "Busy-d"`)
	if err != nil {
		t.Fatal(err)
	}
	if toks[2].Kind != TokString || toks[2].Text != "Busy-d" {
		t.Fatalf("token = %v, want string Busy-d", toks[2])
	}
}

func TestLexStringEscapes(t *testing.T) {
	toks, err := Lex(`'it''s'`)
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].Text != "it's" {
		t.Fatalf("text = %q", toks[0].Text)
	}
}

func TestLexComments(t *testing.T) {
	toks, err := Lex("select a -- trailing comment\nfrom t")
	if err != nil {
		t.Fatal(err)
	}
	if len(toks) != 5 { // SELECT a FROM t EOF
		t.Fatalf("tokens = %v", toks)
	}
}

func TestLexNegativeNumbers(t *testing.T) {
	toks, err := Lex(`a in (-1, 2)`)
	if err != nil {
		t.Fatal(err)
	}
	if toks[3].Kind != TokNumber || toks[3].Text != "-1" {
		t.Fatalf("token = %v", toks[3])
	}
}

func TestLexHyphenatedIdentifiers(t *testing.T) {
	// Protocol state names like Busy-sd lex as single identifiers.
	toks, err := Lex(`Busy-sd`)
	if err != nil {
		t.Fatal(err)
	}
	if len(toks) != 2 || toks[0].Kind != TokIdent || toks[0].Text != "Busy-sd" {
		t.Fatalf("tokens = %v", toks)
	}
}

func TestLexSymbols(t *testing.T) {
	toks, err := Lex(`!= <> <= >= == ( ) . ? : ; *`)
	if err != nil {
		t.Fatal(err)
	}
	wantTexts := []string{"!=", "<>", "<=", ">=", "==", "(", ")", ".", "?", ":", ";", "*"}
	for i, w := range wantTexts {
		if toks[i].Kind != TokSymbol || toks[i].Text != w {
			t.Errorf("token %d = %v, want symbol %q", i, toks[i], w)
		}
	}
}

func TestLexErrors(t *testing.T) {
	for _, src := range []string{"'unterminated", `"unterminated`, "a @ b"} {
		if _, err := Lex(src); err == nil {
			t.Errorf("Lex(%q) succeeded, want error", src)
		}
	}
}

func TestLexErrorPosition(t *testing.T) {
	_, err := Lex("abc @")
	se, ok := err.(*SyntaxError)
	if !ok {
		t.Fatalf("err type %T", err)
	}
	if se.Pos != 4 {
		t.Fatalf("pos = %d, want 4", se.Pos)
	}
	if se.Error() == "" {
		t.Fatal("empty error text")
	}
}

func TestLexKeywordsCaseInsensitive(t *testing.T) {
	toks, err := Lex("sElEcT NuLl")
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].Text != "SELECT" || toks[1].Text != "NULL" {
		t.Fatalf("tokens = %v", toks)
	}
	if got := kinds(toks); got[0] != TokKeyword || got[1] != TokKeyword {
		t.Fatalf("kinds = %v", got)
	}
}
