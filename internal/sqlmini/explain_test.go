package sqlmini

import (
	"fmt"
	"strings"
	"testing"

	"coherdb/internal/rel"
)

// planLines renders a plan table as "op|target|est_rows|detail" lines for
// golden comparison.
func planLines(t *testing.T, p *rel.Table) []string {
	t.Helper()
	want := []string{"step", "op", "target", "est_rows", "detail"}
	if got := p.Columns(); strings.Join(got, ",") != strings.Join(want, ",") {
		t.Fatalf("plan columns %v, want %v", got, want)
	}
	var out []string
	for i := 0; i < p.NumRows(); i++ {
		if s := p.Get(i, "step"); s.Int() != int64(i+1) {
			t.Fatalf("row %d has step %s", i, s)
		}
		out = append(out, fmt.Sprintf("%s|%s|%d|%s",
			p.Get(i, "op").Str(), p.Get(i, "target").Str(),
			p.Get(i, "est_rows").Int(), p.Get(i, "detail").Str()))
	}
	return out
}

func checkPlan(t *testing.T, db *DB, query string, want []string) {
	t.Helper()
	res, err := db.Exec(query)
	if err != nil {
		t.Fatal(err)
	}
	got := planLines(t, res.Table)
	if strings.Join(got, "\n") != strings.Join(want, "\n") {
		t.Errorf("plan for %s:\n%s\nwant:\n%s",
			query, strings.Join(got, "\n"), strings.Join(want, "\n"))
	}
}

func TestExplainHashJoinWithPushdown(t *testing.T) {
	db := newTestDB(t)
	// Both WHERE conjuncts are column-equals-literal, so both become index
	// scans; the join then hashes the two reduced inputs (neither side is
	// a whole-table scan, so no persistent index applies).
	checkPlan(t, db,
		`EXPLAIN SELECT D.inmsg FROM D JOIN V ON D.inmsg = V.m WHERE D.dirst = 'SI' AND V.d = 'home'`,
		[]string{
			`indexscan|D|1|index(dirst) = ('SI'); storage=columnar`,
			`indexscan|V|1|index(d) = ('home'); storage=columnar`,
			`join|V|1|hash, 1 key(s), build=right`,
		})
}

func TestExplainIndexJoin(t *testing.T) {
	db := newTestDB(t)
	// Both sides are pristine whole-table scans; the left is larger, so
	// the executor indexes the left table and probes it with right rows.
	checkPlan(t, db,
		`EXPLAIN SELECT * FROM D JOIN V ON D.inmsg = V.m`,
		[]string{
			`scan|D|6|storage=columnar`,
			`scan|V|5|storage=columnar`,
			`join|V|7|index nested-loop via D(inmsg)`,
		})
}

func TestExplainNestedLoopJoin(t *testing.T) {
	db := newTestDB(t)
	checkPlan(t, db,
		`EXPLAIN SELECT * FROM D JOIN V ON D.inmsg <> V.m`,
		[]string{
			`scan|D|6|storage=columnar`,
			`scan|V|5|storage=columnar`,
			`join|V|10|nested-loop: (D.inmsg <> V.m)`,
		})
}

func TestExplainCrossWithResidue(t *testing.T) {
	db := newTestDB(t)
	// The cross-source comparison cannot be pushed; it stays as a residual
	// filter above the cross product.
	checkPlan(t, db,
		`EXPLAIN SELECT * FROM D, V WHERE D.inmsg = V.m AND D.dirst = 'SI'`,
		[]string{
			`indexscan|D|1|index(dirst) = ('SI'); storage=columnar`,
			`scan|V|5|storage=columnar`,
			`cross|V|5|cross product`,
			`filter||1|(D.inmsg = V.m)`,
		})
}

func TestExplainSingleTableShape(t *testing.T) {
	db := newTestDB(t)
	// Single-table selects get the same index treatment as join inputs.
	checkPlan(t, db,
		`EXPLAIN SELECT DISTINCT inmsg FROM D WHERE dirst = 'SI' ORDER BY inmsg DESC LIMIT 1`,
		[]string{
			`indexscan|D|1|index(dirst) = ('SI'); storage=columnar`,
			`distinct||1|`,
			`sort||1|1 key(s)`,
			`limit||1|LIMIT 1`,
		})
}

func TestExplainGroupAndUnion(t *testing.T) {
	db := newTestDB(t)
	checkPlan(t, db,
		`EXPLAIN SELECT dirst, COUNT(*) FROM D GROUP BY dirst
		 UNION ALL SELECT m, COUNT(*) FROM V GROUP BY m`,
		[]string{
			`scan|D|6|storage=columnar`,
			`group||1|1 key(s)`,
			`scan|V|5|storage=columnar`,
			`group||1|1 key(s)`,
			`union||2|ALL`,
		})
}

func TestExplainAggregateWithoutGroup(t *testing.T) {
	db := newTestDB(t)
	checkPlan(t, db,
		`EXPLAIN SELECT COUNT(*) FROM D`,
		[]string{
			`scan|D|6|storage=columnar`,
			`aggregate||1|`,
		})
}

func TestExplainEvalAnnotation(t *testing.T) {
	db := newTestDB(t)
	// A non-equality conjunct stays as a pushdown filter; with every
	// conjunct lowered to a selection-vector kernel the plan advertises the
	// column-at-a-time path, and flipping the toggle reverts the same plan
	// to row-at-a-time evaluation.
	checkPlan(t, db,
		`EXPLAIN SELECT * FROM D WHERE inmsg <> 'readex'`,
		[]string{
			`scan|D|2|pushdown: (inmsg <> 'readex'); eval=vectorized; storage=columnar`,
		})
	checkPlan(t, db,
		`EXPLAIN SELECT * FROM D WHERE dirst = 'SI' AND inmsg <> 'readex'`,
		[]string{
			`indexscan|D|1|index(dirst) = ('SI'); filter: (inmsg <> 'readex'); eval=vectorized; storage=columnar`,
		})
	db.SetVectorized(false)
	checkPlan(t, db,
		`EXPLAIN SELECT * FROM D WHERE inmsg <> 'readex'`,
		[]string{
			`scan|D|2|pushdown: (inmsg <> 'readex'); eval=scalar; storage=columnar`,
		})
}

func TestExplainDoesNotExecute(t *testing.T) {
	db := newTestDB(t)
	if _, err := db.Exec(`EXPLAIN SELECT * FROM D JOIN V ON D.inmsg = V.m`); err != nil {
		t.Fatal(err)
	}
	st := db.Stats()
	if st.RowsScanned != 0 || st.HashJoins != 0 {
		t.Errorf("EXPLAIN scanned %d rows, ran %d hash joins; want 0", st.RowsScanned, st.HashJoins)
	}
	if st.LastQuery.Kind != "EXPLAIN" {
		t.Errorf("LastQuery.Kind = %q, want EXPLAIN", st.LastQuery.Kind)
	}
}

func TestExplainUnknownTable(t *testing.T) {
	db := newTestDB(t)
	if _, err := db.Exec(`EXPLAIN SELECT * FROM nope`); err == nil {
		t.Fatal("want error for unknown table")
	}
}
