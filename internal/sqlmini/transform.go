package sqlmini

import "coherdb/internal/rel"

// ResolveSymbols rewrites an expression for the paper's constraint dialect,
// in which bare identifiers denote symbolic domain values unless they name a
// column: "inmsg = readex and dirst = SI" compares the inmsg column against
// the *value* readex. Every Col whose name is not accepted by isColumn is
// replaced by a string literal of the same spelling.
func ResolveSymbols(e Expr, isColumn func(string) bool) Expr {
	switch x := e.(type) {
	case Lit:
		return x
	case Col:
		if x.Qualifier == "" && !isColumn(x.Name) {
			return Lit{Val: rel.S(x.Name)}
		}
		return x
	case Unary:
		return Unary{Op: x.Op, X: ResolveSymbols(x.X, isColumn)}
	case Binary:
		return Binary{Op: x.Op, L: ResolveSymbols(x.L, isColumn), R: ResolveSymbols(x.R, isColumn)}
	case InList:
		set := make([]Expr, len(x.Set))
		for i, s := range x.Set {
			set[i] = ResolveSymbols(s, isColumn)
		}
		return InList{X: ResolveSymbols(x.X, isColumn), Set: set, Negate: x.Negate}
	case IsNull:
		return IsNull{X: ResolveSymbols(x.X, isColumn), Negate: x.Negate}
	case Between:
		return Between{
			X:      ResolveSymbols(x.X, isColumn),
			Lo:     ResolveSymbols(x.Lo, isColumn),
			Hi:     ResolveSymbols(x.Hi, isColumn),
			Negate: x.Negate,
		}
	case Ternary:
		return Ternary{
			Cond: ResolveSymbols(x.Cond, isColumn),
			Then: ResolveSymbols(x.Then, isColumn),
			Else: ResolveSymbols(x.Else, isColumn),
		}
	case Case:
		whens := make([]When, len(x.Whens))
		for i, w := range x.Whens {
			whens[i] = When{Cond: ResolveSymbols(w.Cond, isColumn), Val: ResolveSymbols(w.Val, isColumn)}
		}
		var els Expr
		if x.Else != nil {
			els = ResolveSymbols(x.Else, isColumn)
		}
		return Case{Whens: whens, Else: els}
	case Call:
		args := make([]Expr, len(x.Args))
		for i, a := range x.Args {
			args[i] = ResolveSymbols(a, isColumn)
		}
		return Call{Name: x.Name, Args: args}
	default:
		return e
	}
}
