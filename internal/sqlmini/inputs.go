package sqlmini

import (
	"fmt"
	"sort"

	"coherdb/internal/delta"
)

// StmtInputs extracts the (table, columns-read) dependency list of a parsed
// statement — the planner-level column bindings the delta layer's
// dependency graph is populated from. A SELECT's inputs are every table in
// FROM/JOIN with the columns its expressions reference; DML statements
// depend on their target table. Attribution is conservative: an unqualified
// column in a multi-table query is charged to every table in scope, a star
// select charges the whole table (nil Cols), and an unresolvable statement
// reports whole-table inputs — over-approximation can only cause a spurious
// re-check, never a wrong skip.
func StmtInputs(st Stmt) []delta.Input {
	acc := newInputAcc()
	switch x := st.(type) {
	case *SelectStmt:
		acc.selectStmt(x)
	case *ExplainStmt:
		acc.selectStmt(x.Query)
	case *CreateStmt:
		if x.As != nil {
			acc.selectStmt(x.As)
		}
	case *InsertStmt:
		// INSERT reads nothing from existing rows; VALUES are literals.
	case *DeleteStmt:
		acc.dml(x.Table, x.Where)
	case *UpdateStmt:
		acc.dml(x.Table, x.Where)
		for _, e := range x.Exprs {
			acc.exprCols(e, map[string]string{x.Table: x.Table}, []string{x.Table})
		}
	}
	return acc.inputs()
}

// QueryInputs parses src (through the expression/statement cache) and
// returns StmtInputs of the first statement.
func QueryInputs(src string) ([]delta.Input, error) {
	st, err := ParseStatement(src)
	if err != nil {
		return nil, fmt.Errorf("sqlmini: inputs of %q: %w", src, err)
	}
	return StmtInputs(st), nil
}

// inputAcc accumulates column references per table. cols[t] == nil means
// the whole table; a non-nil set lists specific columns.
type inputAcc struct {
	tables []string
	cols   map[string]map[string]struct{}
	whole  map[string]bool
}

func newInputAcc() *inputAcc {
	return &inputAcc{cols: make(map[string]map[string]struct{}), whole: make(map[string]bool)}
}

func (a *inputAcc) touchTable(t string) {
	if _, ok := a.cols[t]; !ok {
		a.cols[t] = make(map[string]struct{})
		a.tables = append(a.tables, t)
	}
}

func (a *inputAcc) addCol(t, c string) {
	a.touchTable(t)
	a.cols[t][c] = struct{}{}
}

func (a *inputAcc) addWhole(t string) {
	a.touchTable(t)
	a.whole[t] = true
}

func (a *inputAcc) dml(table string, where Expr) {
	a.touchTable(table)
	if where != nil {
		a.exprCols(where, map[string]string{table: table}, []string{table})
	}
}

func (a *inputAcc) selectStmt(s *SelectStmt) {
	if s == nil {
		return
	}
	// Scope: alias → table name for this branch.
	aliases := make(map[string]string, len(s.From)+len(s.Joins))
	var scope []string
	add := func(r TableRef) {
		aliases[r.Name] = r.Name
		if r.Alias != "" {
			aliases[r.Alias] = r.Name
		}
		scope = append(scope, r.Name)
		a.touchTable(r.Name)
	}
	for _, r := range s.From {
		add(r)
	}
	for _, j := range s.Joins {
		add(j.Ref)
	}
	for _, it := range s.Items {
		if it.Star {
			for _, t := range scope {
				a.addWhole(t)
			}
			continue
		}
		a.exprCols(it.Expr, aliases, scope)
	}
	for _, j := range s.Joins {
		a.exprCols(j.On, aliases, scope)
	}
	a.exprCols(s.Where, aliases, scope)
	for _, e := range s.GroupBy {
		a.exprCols(e, aliases, scope)
	}
	a.exprCols(s.Having, aliases, scope)
	for _, k := range s.OrderBy {
		a.exprCols(k.Expr, aliases, scope)
	}
	a.selectStmt(s.Union)
}

// exprCols charges every column reference in e to its table: qualified
// columns via the alias scope, unqualified ones to the single table in
// scope or — conservatively — to all of them.
func (a *inputAcc) exprCols(e Expr, aliases map[string]string, scope []string) {
	if e == nil {
		return
	}
	for q := range collectQualified(e, nil) {
		switch {
		case q.qual != "":
			if t, ok := aliases[q.qual]; ok {
				a.addCol(t, q.name)
			} else {
				// Unknown qualifier: treat it as a table name outright.
				a.addCol(q.qual, q.name)
			}
		case len(scope) == 1:
			a.addCol(scope[0], q.name)
		default:
			for _, t := range scope {
				a.addCol(t, q.name)
			}
		}
	}
}

type qualCol struct{ qual, name string }

func collectQualified(e Expr, out map[qualCol]struct{}) map[qualCol]struct{} {
	if out == nil {
		out = make(map[qualCol]struct{})
	}
	switch x := e.(type) {
	case Lit:
	case Col:
		out[qualCol{x.Qualifier, x.Name}] = struct{}{}
	case boundCol:
		out[qualCol{"", x.Name}] = struct{}{}
	case Unary:
		collectQualified(x.X, out)
	case Binary:
		collectQualified(x.L, out)
		collectQualified(x.R, out)
	case InList:
		collectQualified(x.X, out)
		for _, s := range x.Set {
			collectQualified(s, out)
		}
	case IsNull:
		collectQualified(x.X, out)
	case Between:
		collectQualified(x.X, out)
		collectQualified(x.Lo, out)
		collectQualified(x.Hi, out)
	case Ternary:
		collectQualified(x.Cond, out)
		collectQualified(x.Then, out)
		collectQualified(x.Else, out)
	case Case:
		for _, w := range x.Whens {
			collectQualified(w.Cond, out)
			collectQualified(w.Val, out)
		}
		if x.Else != nil {
			collectQualified(x.Else, out)
		}
	case Call:
		for _, a := range x.Args {
			collectQualified(a, out)
		}
	}
	return out
}

// inputs renders the accumulator as a sorted delta.Input list.
func (a *inputAcc) inputs() []delta.Input {
	out := make([]delta.Input, 0, len(a.tables))
	tabs := append([]string(nil), a.tables...)
	sort.Strings(tabs)
	for _, t := range tabs {
		if a.whole[t] {
			out = append(out, delta.Input{Table: t})
			continue
		}
		cols := make([]string, 0, len(a.cols[t]))
		for c := range a.cols[t] {
			cols = append(cols, c)
		}
		sort.Strings(cols)
		if len(cols) == 0 {
			// Referenced in FROM but no column pinned (e.g. COUNT(*)):
			// depend on the whole table.
			out = append(out, delta.Input{Table: t})
			continue
		}
		out = append(out, delta.Input{Table: t, Cols: cols})
	}
	return out
}
