package sqlmini

import (
	"errors"
	"testing"

	"coherdb/internal/rel"
)

// compileFixtureCols is the column layout the compiler tests bind against.
var compileFixtureCols = map[string]int{"a": 0, "b": 1, "c": 2}

// compileFixtureEnv views a positional row as a MapEnv for the interpreter.
func compileFixtureEnv(row []rel.Value) MapEnv {
	return MapEnv{"a": row[0], "b": row[1], "c": row[2]}
}

// fixtureEvaluator builds an evaluator with one registered function, in the
// requested NULL dialect.
func fixtureEvaluator(nullEq bool) *Evaluator {
	return &Evaluator{
		NullEq: nullEq,
		Funcs: map[string]Func{
			"isp": func(args []rel.Value) (rel.Value, error) {
				return rel.B(args[0].Str() == "p"), nil
			},
		},
	}
}

// compileTestExprs covers every operator the compiler lowers: comparisons,
// boolean connectives, IN (literal and general), BETWEEN, IS NULL, ternary
// chains, CASE, and function calls.
var compileTestExprs = []string{
	`a = "p"`,
	`a <> "p"`,
	`a < b`,
	`a >= b`,
	`a = b and b = c`,
	`a = "p" or b = "q"`,
	`not (a = "p")`,
	`a in ("p", "q")`,
	`a not in ("p", NULL)`,
	`a in ("p", b)`,
	`a is null`,
	`b is not null`,
	`a between "p" and "r"`,
	`a not between b and c`,
	`a = "p" ? b = "q" : c = "r"`,
	`a = "p" ? b = "q" : a = "q" ? b = "r" : b = NULL`,
	`case when a = "p" then b = "q" when a = "q" then c = "r" end`,
	`case when a = "p" then b = "q" else b is null end`,
	`isp(a)`,
	`isp(a) and b = c`,
	`a = NULL`,
	`b <> NULL`,
}

// fixtureDomain is the value domain each column ranges over in the
// exhaustive sweeps: NULL plus three strings.
var fixtureDomain = []rel.Value{rel.Null(), rel.S("p"), rel.S("q"), rel.S("r")}

// forEachFixtureRow calls fn with every row in the 3-column cross product
// of fixtureDomain.
func forEachFixtureRow(fn func(row []rel.Value)) {
	for _, av := range fixtureDomain {
		for _, bv := range fixtureDomain {
			for _, cv := range fixtureDomain {
				fn([]rel.Value{av, bv, cv})
			}
		}
	}
}

// TestCompileAgreesWithInterpreter is the golden equivalence property at
// unit level: over every operator form, dialect and 3-column env, Compile
// and Evaluator.True agree exactly.
func TestCompileAgreesWithInterpreter(t *testing.T) {
	for _, nullEq := range []bool{false, true} {
		ev := fixtureEvaluator(nullEq)
		for _, src := range compileTestExprs {
			e, err := ParseExpr(src)
			if err != nil {
				t.Fatalf("parse %q: %v", src, err)
			}
			pred, err := ev.Compile(e, compileFixtureCols)
			if err != nil {
				t.Fatalf("compile %q: %v", src, err)
			}
			forEachFixtureRow(func(row []rel.Value) {
				want, werr := ev.True(e, compileFixtureEnv(row))
				got, gerr := pred(row)
				if (werr == nil) != (gerr == nil) {
					t.Fatalf("%q (nullEq=%v) on %v: interpreter err %v, compiled err %v",
						src, nullEq, row, werr, gerr)
				}
				if got != want {
					t.Fatalf("%q (nullEq=%v) on %v: interpreter %v, compiled %v",
						src, nullEq, row, want, got)
				}
			})
		}
	}
}

// TestCompileSweepAgreesWithInterpreter drives the sweep-compiled form the
// way the solver does — one NextRow per base row, then the last column
// swept across the domain — and checks the cached evaluation still agrees
// with the interpreter everywhere.
func TestCompileSweepAgreesWithInterpreter(t *testing.T) {
	for _, nullEq := range []bool{false, true} {
		ev := fixtureEvaluator(nullEq)
		for _, src := range compileTestExprs {
			e, err := ParseExpr(src)
			if err != nil {
				t.Fatalf("parse %q: %v", src, err)
			}
			prog, err := ev.CompileSweep(e, compileFixtureCols, 2)
			if err != nil {
				t.Fatalf("compile %q: %v", src, err)
			}
			in := prog.Instance()
			for _, av := range fixtureDomain {
				for _, bv := range fixtureDomain {
					in.NextRow()
					for _, cv := range fixtureDomain {
						row := []rel.Value{av, bv, cv}
						want, werr := ev.True(e, compileFixtureEnv(row))
						got, gerr := prog.Eval(in, row)
						if (werr == nil) != (gerr == nil) || got != want {
							t.Fatalf("%q (nullEq=%v) on %v: interpreter (%v, %v), sweep-compiled (%v, %v)",
								src, nullEq, row, want, werr, got, gerr)
						}
					}
				}
			}
		}
	}
}

func TestCompileUnknownColumnIsCompileTimeError(t *testing.T) {
	ev := fixtureEvaluator(true)
	e, err := ParseExpr(`ghost = "p"`)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ev.Compile(e, compileFixtureCols); !errors.Is(err, ErrUnknownColumn) {
		t.Fatalf("err = %v, want ErrUnknownColumn", err)
	}
}

func TestCompileUnknownFuncIsCompileTimeError(t *testing.T) {
	ev := fixtureEvaluator(true)
	e, err := ParseExpr(`nosuch(a)`)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ev.Compile(e, compileFixtureCols); !errors.Is(err, ErrUnknownFunc) {
		t.Fatalf("err = %v, want ErrUnknownFunc", err)
	}
}

func TestCompiledPredShortRowErrors(t *testing.T) {
	ev := fixtureEvaluator(true)
	e, err := ParseExpr(`c = "p"`)
	if err != nil {
		t.Fatal(err)
	}
	pred, err := ev.Compile(e, compileFixtureCols)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := pred([]rel.Value{rel.S("p")}); !errors.Is(err, ErrUnknownColumn) {
		t.Fatalf("err = %v, want ErrUnknownColumn for out-of-range position", err)
	}
}

// TestCompiledPredConcurrentUse runs one compiled predicate from many
// goroutines; it must be safe because all mutable state lives in per-worker
// Instances (and a plain Compile has none). Meant for -race runs.
func TestCompiledPredConcurrentUse(t *testing.T) {
	ev := fixtureEvaluator(true)
	e, err := ParseExpr(`a = "p" ? b = "q" : b in ("q", "r")`)
	if err != nil {
		t.Fatal(err)
	}
	pred, err := ev.Compile(e, compileFixtureCols)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 8)
	for g := 0; g < 8; g++ {
		go func() {
			for i := 0; i < 1000; i++ {
				row := []rel.Value{rel.S("p"), rel.S("q"), fixtureDomain[i%len(fixtureDomain)]}
				if ok, err := pred(row); err != nil || !ok {
					done <- err
					return
				}
			}
			done <- nil
		}()
	}
	for g := 0; g < 8; g++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}
