package sqlmini

import (
	"fmt"
	"math/rand"
	"testing"

	"coherdb/internal/rel"
)

// Kernel-level audits of the vectorized execution layer: the selection-
// vector kernels against the scalar compiled predicates they replace, the
// sweep-vector programs against the scalar sweep programs, and the
// steady-state allocation contract of EvalVec.

// vecTestValues is the value universe the random predicate generator draws
// from: a NULL, a few strings, a few ints — enough to exercise both NULL
// dialects and the decoded-compare fallback.
var vecTestValues = []rel.Value{
	rel.Null(), rel.S("p"), rel.S("q"), rel.S("r"), rel.I(1), rel.I(2), rel.I(7),
}

// randBoundExpr builds a random plan-bound predicate over ncols columns
// from the grammar's comparable subset: =, <>, IN, IS NULL, ordered
// compares (which exercise the memoized fallback kernel), NOT, AND, OR and
// the ternary.
func randBoundExpr(rng *rand.Rand, ncols, depth int) Expr {
	col := func() Expr {
		return boundCol{Col: Col{Name: fmt.Sprintf("c%d", rng.Intn(ncols))}, Idx: rng.Intn(ncols)}
	}
	lit := func() Expr { return Lit{Val: vecTestValues[rng.Intn(len(vecTestValues))]} }
	if depth <= 0 {
		switch rng.Intn(6) {
		case 0:
			return Binary{Op: "=", L: col(), R: lit()}
		case 1:
			return Binary{Op: "<>", L: col(), R: lit()}
		case 2:
			return Binary{Op: "=", L: col(), R: col()}
		case 3:
			set := make([]Expr, rng.Intn(4))
			for i := range set {
				set[i] = lit()
			}
			return InList{X: col(), Set: set, Negate: rng.Intn(2) == 0}
		case 4:
			return IsNull{X: col(), Negate: rng.Intn(2) == 0}
		default:
			ops := []string{"<", "<=", ">", ">="}
			return Binary{Op: ops[rng.Intn(len(ops))], L: col(), R: lit()}
		}
	}
	switch rng.Intn(4) {
	case 0:
		return Binary{Op: "AND", L: randBoundExpr(rng, ncols, depth-1), R: randBoundExpr(rng, ncols, depth-1)}
	case 1:
		return Binary{Op: "OR", L: randBoundExpr(rng, ncols, depth-1), R: randBoundExpr(rng, ncols, depth-1)}
	case 2:
		return Unary{Op: "NOT", X: randBoundExpr(rng, ncols, depth-1)}
	default:
		return Ternary{
			Cond: randBoundExpr(rng, ncols, depth-1),
			Then: randBoundExpr(rng, ncols, depth-1),
			Else: randBoundExpr(rng, ncols, depth-1),
		}
	}
}

// randCodeCols builds nrows random rows over ncols columns, column-major,
// every code interned from the test value universe.
func randCodeCols(rng *rand.Rand, ncols, nrows int) [][]uint32 {
	cols := make([][]uint32, ncols)
	for j := range cols {
		cols[j] = make([]uint32, nrows)
		for i := range cols[j] {
			cols[j][i] = dict.Code(vecTestValues[rng.Intn(len(vecTestValues))])
		}
	}
	return cols
}

// TestVecPredMatchesScalarKernel is the seeded randomized cross-check: for
// hundreds of random predicates, in both NULL dialects, the selection
// vector EvalVec keeps must be exactly the rows the scalar CodePred
// accepts one at a time.
func TestVecPredMatchesScalarKernel(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	const ncols, nrows = 3, 64
	for trial := 0; trial < 400; trial++ {
		e := randBoundExpr(rng, ncols, rng.Intn(3))
		cols := randCodeCols(rng, ncols, nrows)
		for _, strict := range []bool{false, true} {
			ev := &Evaluator{NullEq: !strict}
			vp, err := ev.CompileBoundVec(e)
			if err != nil {
				continue // not vectorizable (e.g. multi-column fallback): scalar path owns it
			}
			cp, err := ev.CompileBoundCodes(e)
			if err != nil {
				t.Fatalf("trial %d strict=%v: scalar compile of %s: %v", trial, strict, e, err)
			}
			sel := make([]uint32, nrows)
			for i := range sel {
				sel[i] = uint32(i)
			}
			kept, err := vp.EvalVec(cols, sel)
			if err != nil {
				t.Fatalf("trial %d strict=%v: EvalVec of %s: %v", trial, strict, e, err)
			}
			crow := make([]uint32, ncols)
			var want []uint32
			for i := 0; i < nrows; i++ {
				for j := 0; j < ncols; j++ {
					crow[j] = cols[j][i]
				}
				ok, err := cp(crow)
				if err != nil {
					t.Fatalf("trial %d strict=%v: scalar eval of %s: %v", trial, strict, e, err)
				}
				if ok {
					want = append(want, uint32(i))
				}
			}
			if fmt.Sprint(kept) != fmt.Sprint(want) {
				t.Fatalf("trial %d strict=%v: %s\nvectorized keeps %v\nscalar keeps    %v",
					trial, strict, e, kept, want)
			}
		}
	}
}

// randSweepExpr builds a random unbound condition over named columns,
// including the shapes the sweep vectorizer lowers structurally (=, <>,
// IN, IS NULL, AND/OR, ternary) and the ones it must route through the
// scalar fallback (ordered compares, BETWEEN).
func randSweepExpr(rng *rand.Rand, names []string, depth int) Expr {
	col := func() Expr { return Col{Name: names[rng.Intn(len(names))]} }
	lit := func() Expr { return Lit{Val: vecTestValues[rng.Intn(len(vecTestValues))]} }
	if depth <= 0 {
		switch rng.Intn(6) {
		case 0:
			return Binary{Op: "=", L: col(), R: lit()}
		case 1:
			return Binary{Op: "<>", L: col(), R: col()}
		case 2:
			set := make([]Expr, rng.Intn(3))
			for i := range set {
				set[i] = lit()
			}
			return InList{X: col(), Set: set, Negate: rng.Intn(2) == 0}
		case 3:
			return IsNull{X: col(), Negate: rng.Intn(2) == 0}
		case 4:
			return Binary{Op: ">", L: col(), R: lit()}
		default:
			return Between{X: col(), Lo: lit(), Hi: lit(), Negate: rng.Intn(2) == 0}
		}
	}
	switch rng.Intn(4) {
	case 0:
		return Binary{Op: "AND", L: randSweepExpr(rng, names, depth-1), R: randSweepExpr(rng, names, depth-1)}
	case 1:
		return Binary{Op: "OR", L: randSweepExpr(rng, names, depth-1), R: randSweepExpr(rng, names, depth-1)}
	case 2:
		return Unary{Op: "NOT", X: randSweepExpr(rng, names, depth-1)}
	default:
		return Ternary{
			Cond: randSweepExpr(rng, names, depth-1),
			Then: randSweepExpr(rng, names, depth-1),
			Else: randSweepExpr(rng, names, depth-1),
		}
	}
}

// TestSweepVecMatchesScalarSweep cross-checks CompileSweepVec against
// CompileSweep on random expressions: for random base rows and domains,
// every lane EvalSweepTrue keeps must match EvalCodes on the row with the
// sweep column substituted — in both NULL dialects, with the sweep cache
// exercised across consecutive rows.
func TestSweepVecMatchesScalarSweep(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	names := []string{"a", "b", "c", "d"}
	ix := map[string]int{"a": 0, "b": 1, "c": 2, "d": 3}
	for trial := 0; trial < 300; trial++ {
		e := randSweepExpr(rng, names, rng.Intn(3))
		sweep := rng.Intn(len(names))
		for _, strict := range []bool{false, true} {
			ev := &Evaluator{NullEq: !strict}
			sp, err := ev.CompileSweepVec(e, ix, sweep)
			if err != nil {
				t.Fatalf("trial %d strict=%v: sweep-vec compile of %s: %v", trial, strict, e, err)
			}
			prog, err := ev.CompileSweep(e, ix, sweep)
			if err != nil {
				t.Fatalf("trial %d strict=%v: sweep compile of %s: %v", trial, strict, e, err)
			}
			vin, sin := sp.Instance(), prog.Instance()
			domain := make([]uint32, 1+rng.Intn(6))
			for i := range domain {
				domain[i] = dict.Code(vecTestValues[rng.Intn(len(vecTestValues))])
			}
			keep := make([]bool, len(domain))
			crow := make([]uint32, len(names))
			for row := 0; row < 4; row++ {
				for j := range crow {
					crow[j] = dict.Code(vecTestValues[rng.Intn(len(vecTestValues))])
				}
				vin.NextRow()
				sin.NextRow()
				for i := range keep {
					keep[i] = true
				}
				if _, err := sp.EvalSweepTrue(vin, crow, domain, keep); err != nil {
					t.Fatalf("trial %d strict=%v: EvalSweepTrue of %s: %v", trial, strict, e, err)
				}
				for di, d := range domain {
					crow[sweep] = d
					want, err := prog.EvalCodes(sin, crow)
					if err != nil {
						t.Fatalf("trial %d strict=%v: scalar sweep of %s: %v", trial, strict, e, err)
					}
					if keep[di] != want {
						t.Fatalf("trial %d strict=%v row %d lane %d: %s\nvectorized=%v scalar=%v (sweep col %d = code %d)",
							trial, strict, row, di, e, keep[di], want, sweep, d)
					}
				}
			}
		}
	}
}

// TestVectorizedFilterAllocs audits the steady-state allocation contract:
// once a VecPred's pooled scratch state is warm, EvalVec must not allocate
// — for the pure code-compare kernels and for the memoized single-column
// fallback alike (the memo table is grown on first contact, then reused).
func TestVectorizedFilterAllocs(t *testing.T) {
	if raceEnabled {
		// Under the race detector sync.Pool deliberately drops items to
		// surface reuse races, so the scratch state re-allocates by design.
		t.Skip("sync.Pool bypasses reuse under -race")
	}
	const nrows = 256
	rng := rand.New(rand.NewSource(3))
	cols := randCodeCols(rng, 2, nrows)
	ev := &Evaluator{NullEq: false}
	exprs := []struct {
		name string
		e    Expr
	}{
		{"eq-or-in", Binary{Op: "OR",
			L: Binary{Op: "=", L: boundCol{Col: Col{Name: "a"}, Idx: 0}, R: Lit{Val: rel.S("p")}},
			R: InList{X: boundCol{Col: Col{Name: "b"}, Idx: 1}, Set: []Expr{Lit{Val: rel.I(1)}, Lit{Val: rel.I(2)}}},
		}},
		{"memo-fallback", Binary{Op: ">", L: boundCol{Col: Col{Name: "b"}, Idx: 1}, R: Lit{Val: rel.I(1)}}},
	}
	sel := make([]uint32, nrows)
	for _, tc := range exprs {
		vp, err := ev.CompileBoundVec(tc.e)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		run := func() {
			for i := range sel {
				sel[i] = uint32(i)
			}
			if _, err := vp.EvalVec(cols, sel[:nrows]); err != nil {
				t.Fatal(err)
			}
		}
		run() // warm the pool and the fallback memo
		if got := testing.AllocsPerRun(100, run); got > 0 {
			t.Errorf("%s: EvalVec allocates %.1f per call at steady state, want 0", tc.name, got)
		}
	}
}
