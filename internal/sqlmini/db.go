package sqlmini

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"time"

	"coherdb/internal/obs"
	"coherdb/internal/pool"
	"coherdb/internal/rel"
)

// DefaultMorselSize is the scan batch grain: parallel phases deal rows to
// workers in contiguous batches of this many rows, and a phase must have
// at least two morsels' worth of input before going parallel at all (the
// controller tables, a few hundred rows each, stay serial by default).
const DefaultMorselSize = 1024

// Errors returned by the executor.
var (
	ErrNoTable    = errors.New("sqlmini: no such table")
	ErrTableExist = errors.New("sqlmini: table already exists")
	ErrSharedDrop = errors.New("sqlmini: cannot DROP a shared table from a session")
)

// DB is a catalog of named tables plus a function registry — the "central
// database" of the paper in which all controller tables live. The catalog
// is MVCC: every statement pins one immutable epoch (rel.Catalog) for its
// whole execution, writers derive copy-on-write working tables off the
// current epoch and publish the successor atomically when the statement
// commits. SELECTs therefore never block on DML and never see torn state;
// DML/DDL statements serialize on a single writer lock and are atomic per
// statement (an errored statement publishes nothing).
//
// Tables obtained from Table() are published snapshots. Mutating one
// directly (the pipeline and solver do, for bulk loads) still works — the
// catalog holds the pointer, not the storage — but requires the caller's
// own exclusion against concurrent readers, exactly as before. SQL DML is
// the concurrency-safe path.
//
// By default the DB evaluates expressions in the paper's constraint dialect
// (NULL is an ordinary dontcare/noop domain value, so col = NULL holds when
// col is NULL). Use SetStrictNulls for ANSI three-valued semantics.
type DB struct {
	// cat is the atomically published current catalog. Readers Load (pin)
	// it wait-free; only writers holding writeMu replace it.
	cat rel.CatalogRef
	// writeMu serializes everything that publishes a new epoch: DML/DDL
	// statements, PutTable/DropTable, Register. Readers never take it.
	writeMu sync.Mutex

	// cfgMu guards the execution configuration below. Statements snapshot
	// the configuration once at start and never touch it again, so Set*
	// calls cannot tear a running statement.
	cfgMu    sync.RWMutex
	eval     Evaluator
	tracer   obs.Tracer
	metrics  *obs.Registry
	queryLog *obs.QueryLog
	// exec is the worker pool behind morsel-parallel scans and join
	// probes (the process-wide shared pool by default); workers caps the
	// participants one statement phase may recruit (0 means the pool
	// size, 1 forces serial execution) and morsel is the batch grain.
	exec    *pool.Pool
	workers int
	morsel  int
	// vectorized enables the column-at-a-time scan path (on by default).
	vectorized bool

	// statsMu guards the aggregate stats separately, so folding a
	// read-only statement's stats does not serialize concurrent readers.
	statsMu sync.Mutex
	stats   DBStats

	// planMu guards the plan cache: parse trees and physical plans keyed
	// by trimmed statement text plus the catalog schema fingerprint the
	// statement was looked up under (see plan.go).
	planMu sync.Mutex
	plans  map[planKey]*planEntry

	// nextSession numbers sessions for obs attribution; see NewSession.
	sessMu      sync.Mutex
	nextSession uint64
}

// execCfg is the per-statement snapshot of the DB's execution
// configuration, taken once under cfgMu at statement start.
type execCfg struct {
	ev       Evaluator
	tracer   obs.Tracer
	metrics  *obs.Registry
	queryLog *obs.QueryLog
	exec     *pool.Pool
	workers  int
	morsel   int
	vec      bool
}

func (db *DB) snapshotCfg() execCfg {
	db.cfgMu.RLock()
	defer db.cfgMu.RUnlock()
	return execCfg{
		ev: db.eval, tracer: db.tracer, metrics: db.metrics, queryLog: db.queryLog,
		exec: db.exec, workers: db.workers, morsel: db.morsel, vec: db.vectorized,
	}
}

// run is the context of one executing statement: the DB, the pinned
// catalog epoch, the session overlay (nil outside sessions), the writer
// working set (nil for read-only statements), a snapshot of the evaluator,
// the statement's stats sink, the plan-cache entry when the statement came
// in as text, and the parallel-execution knobs.
type run struct {
	db      *DB
	cat     *rel.Catalog
	sess    *Session
	overlay map[string]*rel.Table
	write   *catWrite
	ev      Evaluator
	qs      *QueryStats
	entry   *planEntry
	// fp tags plans with the schema fingerprint of the pinned epoch
	// (mixed with the session overlay generation inside sessions); cached
	// branch plans rebuild when it moves.
	fp uint64

	// az collects per-operator measurements during EXPLAIN ANALYZE; nil
	// for every other statement, so the executor's azBegin/azEnd hooks
	// cost one nil check each on the normal path.
	az *azRun

	pool    *pool.Pool
	workers int
	morsel  int
	vec     bool
}

// table resolves a name as this statement sees it: the session overlay
// shadows the shared catalog, and a writer statement sees its own working
// copies (so an INSERT's later rows see its earlier ones).
func (r *run) table(name string) (*rel.Table, bool) {
	if r.overlay != nil {
		if t, ok := r.overlay[name]; ok {
			return t, true
		}
	}
	if r.write != nil {
		return r.write.lookup(name)
	}
	return r.cat.Table(name)
}

// writeTable resolves the mutable target of a DML statement: the
// session-local table when the name is shadowed (mutated in place — it is
// private to the session), otherwise a copy-on-write working copy from
// the writer working set.
func (r *run) writeTable(name string) (*rel.Table, bool) {
	if r.overlay != nil {
		if t, ok := r.overlay[name]; ok {
			return t, true
		}
	}
	if r.write != nil {
		return r.write.mutable(name)
	}
	return nil, false
}

// parallel decides whether a phase over n rows runs on the pool: it
// returns the pool, the worker cap and the morsel size, or a nil pool
// when the phase should stay serial (input smaller than two morsels, a
// worker cap of one, or no pool). The two-morsel floor guarantees that
// going parallel can actually split the work.
func (r *run) parallel(n int) (*pool.Pool, int, int) {
	morsel := r.morsel
	if morsel < 1 {
		morsel = DefaultMorselSize
	}
	if r.pool == nil || n < 2*morsel {
		return nil, 0, 0
	}
	workers := r.workers
	if workers <= 0 || workers > r.pool.Size() {
		workers = r.pool.Size()
	}
	if workers <= 1 {
		return nil, 0, 0
	}
	return r.pool, workers, morsel
}

// catWrite is one writer statement's working set over its base epoch:
// the first touch of a table derives a copy-on-write snapshot, and a
// successful statement publishes every touched table as the next epoch.
// An errored statement simply discards the working set, which is what
// makes DML/DDL atomic per statement.
type catWrite struct {
	base  *rel.Catalog
	work  map[string]*rel.Table // name -> working copy (or created table)
	orig  map[string]*rel.Table // name -> base version; nil for created
	drops map[string]bool
}

func newCatWrite(base *rel.Catalog) *catWrite { return &catWrite{base: base} }

// lookup resolves a name through the working set: dropped names are gone,
// touched names resolve to their working copies, everything else to the
// base epoch.
func (w *catWrite) lookup(name string) (*rel.Table, bool) {
	if w.drops[name] {
		return nil, false
	}
	if t, ok := w.work[name]; ok {
		return t, true
	}
	return w.base.Table(name)
}

// mutable returns the writable working copy of name, deriving it off the
// base epoch on first touch.
func (w *catWrite) mutable(name string) (*rel.Table, bool) {
	if w.drops[name] {
		return nil, false
	}
	if t, ok := w.work[name]; ok {
		return t, true
	}
	t, ok := w.base.Table(name)
	if !ok {
		return nil, false
	}
	cp := t.Snapshot()
	w.record(name, cp, t)
	return cp, true
}

// create installs a freshly created table into the working set.
func (w *catWrite) create(t *rel.Table) {
	w.record(t.Name(), t, nil)
	delete(w.drops, t.Name())
}

func (w *catWrite) record(name string, work, orig *rel.Table) {
	if w.work == nil {
		w.work = make(map[string]*rel.Table, 2)
		w.orig = make(map[string]*rel.Table, 2)
	}
	w.work[name] = work
	w.orig[name] = orig
}

// drop removes name from the working view, reporting whether it existed.
func (w *catWrite) drop(name string) bool {
	if _, ok := w.lookup(name); !ok {
		return false
	}
	delete(w.work, name)
	delete(w.orig, name)
	if w.drops == nil {
		w.drops = make(map[string]bool, 1)
	}
	w.drops[name] = true
	return true
}

// publish builds the successor epoch off the base and swaps it in. A
// statement that touched nothing — a DELETE matching zero rows — burns no
// epoch. The caller holds the DB's writer lock, so the swap from base
// cannot lose a race with another statement; an out-of-band Store is
// tolerated by re-deriving once off the then-current epoch.
func (w *catWrite) publish(db *DB) {
	changed := len(w.drops) > 0
	if !changed {
		for name, t := range w.work {
			if old := w.orig[name]; old == nil || t.Revision() != old.Revision() {
				changed = true
				break
			}
		}
	}
	if !changed {
		return
	}
	next := w.build(w.base)
	if !db.cat.CompareAndSwap(w.base, next) {
		cur := db.cat.Load()
		db.cat.CompareAndSwap(cur, w.build(cur))
	}
	if m := db.snapshotCfg().metrics; m != nil {
		m.Gauge("coherdb_catalog_epoch").Set(int64(db.cat.Load().Epoch()))
	}
}

func (w *catWrite) build(base *rel.Catalog) *rel.Catalog {
	b := base.Derive()
	for name := range w.drops {
		b.Drop(name)
	}
	for name, t := range w.work {
		if old := w.orig[name]; old != nil {
			// Epoch-publish-time index maintenance: append-only working
			// copies extend the base epoch's indexes incrementally,
			// rewrites rebuild them, and either way the published table
			// starts warm.
			t.CarryIndexes(old)
		}
		b.Put(t)
		_ = name
	}
	return b.Build()
}

// NewDB creates an empty database with the standard function registry
// (typename, coalesce2) pre-installed.
func NewDB() *DB {
	db := &DB{
		eval:       Evaluator{Funcs: make(map[string]Func), NullEq: true},
		plans:      make(map[planKey]*planEntry),
		exec:       pool.Shared(),
		morsel:     DefaultMorselSize,
		vectorized: true,
	}
	db.eval.Funcs["typename"] = func(args []rel.Value) (rel.Value, error) {
		if len(args) != 1 {
			return rel.Null(), fmt.Errorf("%w: typename wants 1 arg", ErrType)
		}
		return rel.S(args[0].Kind().String()), nil
	}
	db.eval.Funcs["coalesce2"] = func(args []rel.Value) (rel.Value, error) {
		if len(args) != 2 {
			return rel.Null(), fmt.Errorf("%w: coalesce2 wants 2 args", ErrType)
		}
		if args[0].IsNull() {
			return args[1], nil
		}
		return args[0], nil
	}
	return db
}

// Epoch returns the version number of the currently published catalog.
// It advances on every committed DML/DDL statement and on PutTable /
// DropTable; two equal Epoch() observations bracket a quiescent catalog.
func (db *DB) Epoch() uint64 { return db.cat.Load().Epoch() }

// Catalog returns the currently published catalog snapshot. The catalog
// and every table in it are immutable; pinning it gives the caller a
// torn-free view for as long as it keeps the pointer.
func (db *DB) Catalog() *rel.Catalog { return db.cat.Load() }

// SetStrictNulls switches between ANSI SQL NULL semantics (true) and the
// paper's constraint dialect (false, the default). Cached plans survive the
// toggle: compiled predicates specialize on the dialect, so each plan-cache
// entry keeps one compiled plan per dialect (see planEntry) and toggling
// just selects the other slot.
func (db *DB) SetStrictNulls(strict bool) {
	db.cfgMu.Lock()
	defer db.cfgMu.Unlock()
	db.eval.NullEq = !strict
}

// SetWorkers caps how many pool workers one statement phase may recruit:
// 0 restores the default (the pool size, GOMAXPROCS for the shared pool)
// and 1 forces serial execution. Parallel and serial execution produce
// byte-identical results; the knob trades latency for pool pressure.
func (db *DB) SetWorkers(n int) {
	db.cfgMu.Lock()
	defer db.cfgMu.Unlock()
	if n < 0 {
		n = 0
	}
	db.workers = n
}

// SetPool replaces the DB's worker pool (nil restores the shared pool).
// The default shared pool is sized to GOMAXPROCS; an explicit pool lets
// an embedder — or a test forcing the parallel path on a small machine —
// run statement phases on more workers than there are CPUs.
func (db *DB) SetPool(p *pool.Pool) {
	db.cfgMu.Lock()
	defer db.cfgMu.Unlock()
	if p == nil {
		p = pool.Shared()
	}
	db.exec = p
}

// SetMorselSize sets the rows-per-batch grain of parallel phases; 0
// restores DefaultMorselSize. Smaller morsels parallelize smaller inputs
// (a phase needs at least two morsels of rows) at more scheduling
// overhead per row.
func (db *DB) SetMorselSize(n int) {
	db.cfgMu.Lock()
	defer db.cfgMu.Unlock()
	if n < 1 {
		n = DefaultMorselSize
	}
	db.morsel = n
}

// SetVectorized enables or disables the column-at-a-time scan path
// (enabled by default). Vectorized and scalar execution produce
// byte-identical results; the knob exists for the golden equivalence
// tests and the scalar-vs-vectorized benchmark pair.
func (db *DB) SetVectorized(on bool) {
	db.cfgMu.Lock()
	defer db.cfgMu.Unlock()
	db.vectorized = on
}

// SetTracer installs (or, with nil, removes) a tracer: every statement
// then emits one "sql.stmt" span carrying its QueryStats — rows scanned
// and produced, join strategies, index and plan-cache use, eval time.
func (db *DB) SetTracer(t obs.Tracer) {
	db.cfgMu.Lock()
	defer db.cfgMu.Unlock()
	db.tracer = t
}

// SetMetrics installs (or, with nil, removes) a metrics registry: every
// statement then bumps the coherdb_sql_* counters — statements by verb,
// plan-cache hits and misses, index scans and index joins.
func (db *DB) SetMetrics(m *obs.Registry) {
	db.cfgMu.Lock()
	defer db.cfgMu.Unlock()
	db.metrics = m
	if m != nil {
		m.Help("coherdb_sql_statements_total", "Executed SQL statements by verb.")
		m.Help("coherdb_sql_plan_cache_hits_total", "Statements served from the plan cache without re-parsing.")
		m.Help("coherdb_sql_plan_cache_misses_total", "Statements parsed and planned fresh.")
		m.Help("coherdb_sql_index_scans_total", "Table scans answered from a persistent hash index.")
		m.Help("coherdb_sql_index_joins_total", "Joins that probed a persistent index instead of building a hash table.")
		m.Help("coherdb_sql_parallel_morsels_total", "Row batches dealt to the worker pool by parallel scans and join probes.")
		m.Help("coherdb_sql_parallel_steals_total", "Morsels claimed by a worker beyond its fair share (work-stealing rebalances).")
		m.Help("coherdb_sql_vectorized_batches_total", "Selection-vector batches evaluated by the column-at-a-time scan path.")
		m.Help("coherdb_sql_vectorized_rows_total", "Rows entering vectorized filter kernels (selection-vector inputs).")
		m.Help("coherdb_catalog_epoch", "Version number of the published catalog epoch.")
		m.Gauge("coherdb_catalog_epoch").Set(int64(db.cat.Load().Epoch()))
	}
}

// SetQueryLog installs (or, with nil, removes) a query log: every
// statement then registers as in-flight with its statement text, updates
// its phase and rows-so-far while executing, and lands in the slow-query
// ring when it exceeds the log's threshold or fails.
func (db *DB) SetQueryLog(q *obs.QueryLog) {
	db.cfgMu.Lock()
	defer db.cfgMu.Unlock()
	db.queryLog = q
}

// Stats returns a snapshot of the aggregate statement statistics.
func (db *DB) Stats() DBStats {
	db.statsMu.Lock()
	defer db.statsMu.Unlock()
	return db.stats
}

// Register installs fn as a SQL-callable scalar function. The paper
// registers protocol predicates such as isrequest(msg). The function map
// is copied on write (running statements snapshot it), and registering
// publishes an epoch with a bumped schema generation: compiled plans
// resolve functions at compile time, so a (re)bound name invalidates them
// exactly like a schema change.
func (db *DB) Register(name string, fn Func) {
	db.writeMu.Lock()
	defer db.writeMu.Unlock()
	db.cfgMu.Lock()
	funcs := make(map[string]Func, len(db.eval.Funcs)+1)
	for n, f := range db.eval.Funcs {
		funcs[n] = f
	}
	funcs[name] = fn
	db.eval.Funcs = funcs
	db.cfgMu.Unlock()
	cur := db.cat.Load()
	b := cur.Derive()
	b.BumpSchema()
	db.cat.CompareAndSwap(cur, b.Build())
}

// PutTable installs (or replaces) a table under its own name, publishing
// a new epoch. The caller's pointer is installed directly (not snapshot),
// preserving the bulk-load workflow where the pipeline keeps mutating the
// table it registered; such direct mutation needs the caller's own
// exclusion against readers. Cached plans are invalidated only when the
// name is new or the column list changed; replacing a table with an
// identically-shaped revision (the pipeline does this on every protocol
// revision) keeps every plan.
func (db *DB) PutTable(t *rel.Table) {
	db.writeMu.Lock()
	defer db.writeMu.Unlock()
	cur := db.cat.Load()
	b := cur.Derive()
	b.Put(t)
	db.cat.CompareAndSwap(cur, b.Build())
}

// Table returns the named table of the current epoch. The pointer stays
// valid (and immutable, if all writes go through SQL) forever; it simply
// stops being current once a later epoch replaces it.
func (db *DB) Table(name string) (*rel.Table, bool) {
	return db.cat.Load().Table(name)
}

// MustTable returns the named table or panics; for names known statically.
func (db *DB) MustTable(name string) *rel.Table {
	t, ok := db.Table(name)
	if !ok {
		panic(fmt.Sprintf("sqlmini: no such table %q", name))
	}
	return t
}

// DropTable removes the named table; it reports whether it existed.
func (db *DB) DropTable(name string) bool {
	db.writeMu.Lock()
	defer db.writeMu.Unlock()
	cur := db.cat.Load()
	b := cur.Derive()
	if !b.Drop(name) {
		return false
	}
	db.cat.CompareAndSwap(cur, b.Build())
	return true
}

// Names returns the sorted table names of the current epoch.
func (db *DB) Names() []string {
	return append([]string(nil), db.cat.Load().Names()...)
}

// Result is the outcome of executing one statement.
type Result struct {
	// Table is the result relation for SELECT (and CREATE ... AS SELECT);
	// nil for other statements.
	Table *rel.Table
	// Affected is the number of rows inserted, deleted or updated.
	Affected int
}

// Exec executes a single statement, parsing it through the plan cache: a
// statement text seen before under the same catalog schema reuses its
// parse tree and physical plan.
func (db *DB) Exec(src string) (*Result, error) {
	entry, hit, err := db.lookupPlan(src, db.planFP(nil))
	if err != nil {
		return nil, err
	}
	pc := "miss"
	if hit {
		pc = "hit"
	}
	return db.execute(entry.stmt, execOpts{entry: entry, src: strings.TrimSpace(src), planCache: pc})
}

// ExecScript parses and executes a semicolon-separated script, stopping at
// the first error.
func (db *DB) ExecScript(src string) error {
	stmts, err := ParseScript(src)
	if err != nil {
		return err
	}
	for _, s := range stmts {
		if _, err := db.ExecStmt(s); err != nil {
			return err
		}
	}
	return nil
}

// Query executes a SELECT and returns the result table.
func (db *DB) Query(src string) (*rel.Table, error) {
	res, err := db.Exec(src)
	if err != nil {
		return nil, err
	}
	if res.Table == nil {
		return nil, errNotQuery(strings.TrimSpace(src))
	}
	return res.Table, nil
}

// QueryEmpty executes a SELECT and reports whether its result is empty —
// the "[Select ...] = empty" idiom the paper uses for every invariant.
func (db *DB) QueryEmpty(src string) (bool, error) {
	t, err := db.Query(src)
	if err != nil {
		return false, err
	}
	return t.Empty(), nil
}

func errNotQuery(src string) error {
	return fmt.Errorf("sqlmini: statement %q is not a query", src)
}

// ExecStmt executes an already-parsed statement. It bypasses the plan
// cache (there is no text key); plans are built per execution.
func (db *DB) ExecStmt(stmt Stmt) (*Result, error) {
	return db.execute(stmt, execOpts{})
}

// execOpts carries the optional context of one execute call.
type execOpts struct {
	entry     *planEntry
	src       string
	planCache string
	into      *QueryStats
	sess      *Session
	// strict, when non-nil, pins this statement's NULL dialect (true =
	// ANSI) regardless of the DB or session default — the invariant
	// suite's per-statement alternative to toggling SetStrictNulls, which
	// would perturb concurrent sessions.
	strict *bool
}

// writeTarget classifies a statement: the table it writes and whether it
// writes at all.
func writeTarget(stmt Stmt) (string, bool) {
	switch s := stmt.(type) {
	case *CreateStmt:
		return s.Name, true
	case *DropStmt:
		return s.Name, true
	case *InsertStmt:
		return s.Table, true
	case *DeleteStmt:
		return s.Table, true
	case *UpdateStmt:
		return s.Table, true
	}
	return "", false
}

// execute runs one statement, recording QueryStats (and a span and
// counters, when a tracer or registry is installed). Read-only statements
// pin the current epoch and run without any DB lock; writers serialize on
// writeMu, mutate copy-on-write working tables, and publish the successor
// epoch on success. Session-local writes (CREATE/DROP, and DML against a
// shadowed name) touch only the session overlay and take no lock at all.
// A non-nil into receives the statement's final QueryStats (the
// per-invariant stats feed of cohercheck -stats).
func (db *DB) execute(stmt Stmt, o execOpts) (res *Result, err error) {
	qs := &QueryStats{Kind: stmtKind(stmt), Statement: o.src, PlanCache: o.planCache}
	target, isWrite := writeTarget(stmt)
	local := false
	if isWrite && o.sess != nil {
		switch stmt.(type) {
		case *CreateStmt, *DropStmt:
			local = true // session DDL is always overlay-local
		default:
			local = o.sess.shadows(target)
		}
	}
	shared := isWrite && !local
	if shared {
		db.writeMu.Lock()
		defer db.writeMu.Unlock()
	}
	cat := db.cat.Load()
	cfg := db.snapshotCfg()
	ev := cfg.ev
	if o.sess != nil && o.sess.strict != nil {
		ev.NullEq = !*o.sess.strict
	}
	if o.strict != nil {
		ev.NullEq = !*o.strict
	}
	var sid uint64
	var overlay map[string]*rel.Table
	if o.sess != nil {
		sid = o.sess.id
		overlay = o.sess.overlay
	}
	qs.tok = cfg.queryLog.StartSession(qs.Kind, o.src, sid)
	r := &run{
		db: db, cat: cat, sess: o.sess, overlay: overlay, ev: ev, qs: qs,
		entry: o.entry, fp: sessionFP(cat, o.sess),
		pool: cfg.exec, workers: cfg.workers, morsel: cfg.morsel, vec: cfg.vec,
	}
	if shared {
		r.write = newCatWrite(cat)
	}
	span := obs.StartSpan(cfg.tracer, "sql.stmt", obs.String("kind", qs.Kind))
	if span != nil {
		if o.src != "" {
			span.SetAttr(obs.String("statement", o.src))
		}
		span.SetAttr(obs.Int("epoch", int(cat.Epoch())))
		if sid != 0 {
			span.SetAttr(obs.Int("session", int(sid)))
		}
	}
	start := time.Now()
	defer func() {
		qs.Elapsed = time.Since(start)
		if res != nil && res.Table != nil {
			qs.addProduced(res.Table.NumRows())
		} else if res != nil {
			qs.addProduced(res.Affected)
		}
		qs.tok.Finish(err)
		if o.into != nil {
			*o.into = *qs
		}
		db.statsMu.Lock()
		db.stats.fold(qs)
		db.statsMu.Unlock()
		observe(cfg.metrics, qs)
		if span != nil {
			span.SetAttr(
				obs.String("storage", "columnar"),
				obs.Int("dict_size", rel.SharedDict().Len()),
				obs.Int("rows_scanned", qs.RowsScanned),
				obs.Int("rows_produced", qs.RowsProduced),
				obs.Int("hash_joins", qs.HashJoins),
				obs.Int("loop_joins", qs.LoopJoins),
				obs.Int("index_joins", qs.IndexJoins),
				obs.Int("index_scans", qs.IndexScans),
				obs.Int("pushdown_hits", qs.PushdownHits),
			)
			if qs.PlanCache != "" {
				span.SetAttr(obs.String("plan_cache", qs.PlanCache))
			}
			if qs.Morsels > 0 {
				span.SetAttr(
					obs.Int("parallel_morsels", qs.Morsels),
					obs.Int("parallel_steals", qs.Steals),
					obs.Int("parallel_workers", len(qs.WorkerBusy)),
				)
			}
			if err != nil {
				span.SetAttr(obs.String("error", err.Error()))
			}
			span.Finish()
		}
	}()
	res, err = r.dispatch(stmt)
	if err == nil && r.write != nil {
		r.write.publish(db)
	}
	return res, err
}

// observe bumps the statement counters on the installed registry.
func observe(m *obs.Registry, qs *QueryStats) {
	if m == nil {
		return
	}
	m.Counter("coherdb_sql_statements_total", obs.L("kind", qs.Kind)).Inc()
	switch qs.PlanCache {
	case "hit":
		m.Counter("coherdb_sql_plan_cache_hits_total").Inc()
	case "miss":
		m.Counter("coherdb_sql_plan_cache_misses_total").Inc()
	}
	m.Counter("coherdb_sql_index_scans_total").Add(int64(qs.IndexScans))
	m.Counter("coherdb_sql_index_joins_total").Add(int64(qs.IndexJoins))
	m.Counter("coherdb_sql_parallel_morsels_total").Add(int64(qs.Morsels))
	m.Counter("coherdb_sql_parallel_steals_total").Add(int64(qs.Steals))
	m.Counter("coherdb_sql_vectorized_batches_total").Add(int64(qs.VecBatches))
	m.Counter("coherdb_sql_vectorized_rows_total").Add(int64(qs.VecRowsIn))
}

// dispatch routes a statement to its executor.
func (r *run) dispatch(stmt Stmt) (*Result, error) {
	switch s := stmt.(type) {
	case *SelectStmt:
		t, err := r.execSelect(s)
		if err != nil {
			return nil, err
		}
		return &Result{Table: t}, nil
	case *ExplainStmt:
		var t *rel.Table
		var err error
		if s.Analyze {
			t, err = r.execAnalyze(s.Query)
		} else {
			t, err = r.explainSelect(s.Query)
		}
		if err != nil {
			return nil, err
		}
		return &Result{Table: t}, nil
	case *CreateStmt:
		return r.execCreate(s)
	case *DropStmt:
		return r.execDrop(s)
	case *InsertStmt:
		return r.execInsert(s)
	case *DeleteStmt:
		return r.execDelete(s)
	case *UpdateStmt:
		return r.execUpdate(s)
	default:
		return nil, fmt.Errorf("sqlmini: unhandled statement %T", stmt)
	}
}

func (r *run) execCreate(s *CreateStmt) (*Result, error) {
	if r.sess != nil {
		// Session CREATE lands in the overlay and may shadow a shared
		// name — CREATE TABLE D AS SELECT * FROM D captures a private
		// copy, since the source resolves before the shadow exists.
		if _, dup := r.overlay[s.Name]; dup {
			return nil, fmt.Errorf("%w: %q", ErrTableExist, s.Name)
		}
	} else if _, dup := r.table(s.Name); dup {
		return nil, fmt.Errorf("%w: %q", ErrTableExist, s.Name)
	}
	var t *rel.Table
	if s.As != nil {
		sel, err := r.execSelect(s.As)
		if err != nil {
			return nil, err
		}
		t = sel.SetName(s.Name)
	} else {
		nt, err := rel.NewTable(s.Name, s.Cols...)
		if err != nil {
			return nil, err
		}
		t = nt
	}
	if r.sess != nil {
		r.overlay[s.Name] = t
		r.sess.gen++
	} else {
		r.write.create(t)
	}
	if s.As != nil {
		return &Result{Table: t, Affected: t.NumRows()}, nil
	}
	return &Result{}, nil
}

func (r *run) execDrop(s *DropStmt) (*Result, error) {
	if r.sess != nil {
		// Session DDL touches only the overlay: dropping a shadow
		// uncovers the shared table again; dropping a shared name a
		// session never shadowed would mutate state other sessions see,
		// which sessions are not allowed to do through DDL.
		if _, ok := r.overlay[s.Name]; ok {
			delete(r.overlay, s.Name)
			r.sess.gen++
			return &Result{}, nil
		}
		if _, isShared := r.cat.Table(s.Name); isShared {
			return nil, fmt.Errorf("%w: %q", ErrSharedDrop, s.Name)
		}
		if s.IfExists {
			return &Result{}, nil
		}
		return nil, fmt.Errorf("%w: %q", ErrNoTable, s.Name)
	}
	if !r.write.drop(s.Name) {
		if s.IfExists {
			return &Result{}, nil
		}
		return nil, fmt.Errorf("%w: %q", ErrNoTable, s.Name)
	}
	return &Result{}, nil
}

func (r *run) execInsert(s *InsertStmt) (*Result, error) {
	t, ok := r.writeTable(s.Table)
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNoTable, s.Table)
	}
	cols := s.Cols
	if cols == nil {
		cols = t.Columns()
	}
	pos := make([]int, len(cols))
	for i, c := range cols {
		j := t.ColIndex(c)
		if j < 0 {
			return nil, fmt.Errorf("%w: %s in table %q", ErrUnknownColumn, c, s.Table)
		}
		pos[i] = j
	}
	emptyEnv := MapEnv{}
	for _, rexprs := range s.Rows {
		if len(rexprs) != len(cols) {
			return nil, fmt.Errorf("%w: INSERT row has %d values, want %d", rel.ErrArity, len(rexprs), len(cols))
		}
		row := make([]rel.Value, t.NumCols())
		for i, e := range rexprs {
			v, err := r.ev.Eval(e, emptyEnv)
			if err != nil {
				return nil, err
			}
			row[pos[i]] = v
		}
		if err := t.InsertRow(row); err != nil {
			return nil, err
		}
	}
	return &Result{Affected: len(s.Rows)}, nil
}

func (r *run) execDelete(s *DeleteStmt) (*Result, error) {
	t, ok := r.writeTable(s.Table)
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNoTable, s.Table)
	}
	r.qs.addScanned(t.NumRows())
	var evalErr error
	n := t.DeleteWhere(func(row rel.Row) bool {
		if evalErr != nil {
			return false
		}
		if s.Where == nil {
			return true
		}
		ok, err := r.ev.True(s.Where, rowEnv{row: row})
		if err != nil {
			evalErr = err
			return false
		}
		return ok
	})
	if evalErr != nil {
		return nil, evalErr
	}
	return &Result{Affected: n}, nil
}

func (r *run) execUpdate(s *UpdateStmt) (*Result, error) {
	t, ok := r.writeTable(s.Table)
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNoTable, s.Table)
	}
	for _, c := range s.Cols {
		if !t.HasColumn(c) {
			return nil, fmt.Errorf("%w: %s in table %q", ErrUnknownColumn, c, s.Table)
		}
	}
	r.qs.addScanned(t.NumRows())
	n := 0
	for i := 0; i < t.NumRows(); i++ {
		env := rowEnv{row: t.Row(i)}
		if s.Where != nil {
			ok, err := r.ev.True(s.Where, env)
			if err != nil {
				return nil, err
			}
			if !ok {
				continue
			}
		}
		// Evaluate all RHS before assigning, so SET a=b, b=a swaps.
		vals := make([]rel.Value, len(s.Exprs))
		for k, e := range s.Exprs {
			v, err := r.ev.Eval(e, env)
			if err != nil {
				return nil, err
			}
			vals[k] = v
		}
		for k, c := range s.Cols {
			if err := t.Set(i, c, vals[k]); err != nil {
				return nil, err
			}
		}
		n++
	}
	return &Result{Affected: n}, nil
}

// rowEnv adapts a single-table row to Env; the qualifier, if present, must
// match the table name.
type rowEnv struct {
	row rel.Row
}

func (e rowEnv) Lookup(q, name string) (rel.Value, bool) {
	t := e.row.Table()
	if q != "" && q != t.Name() {
		return rel.Null(), false
	}
	if !t.HasColumn(name) {
		return rel.Null(), false
	}
	return e.row.Get(name), true
}
