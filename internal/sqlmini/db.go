package sqlmini

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"coherdb/internal/obs"
	"coherdb/internal/pool"
	"coherdb/internal/rel"
)

// DefaultMorselSize is the scan batch grain: parallel phases deal rows to
// workers in contiguous batches of this many rows, and a phase must have
// at least two morsels' worth of input before going parallel at all (the
// controller tables, a few hundred rows each, stay serial by default).
const DefaultMorselSize = 1024

// Errors returned by the executor.
var (
	ErrNoTable    = errors.New("sqlmini: no such table")
	ErrTableExist = errors.New("sqlmini: table already exists")
)

// DB is a catalog of named tables plus a function registry — the "central
// database" of the paper in which all controller tables live. It is safe for
// concurrent use: SELECT and EXPLAIN run under a shared reader lock, so the
// invariant suite's workers query in parallel, while DML/DDL statements are
// exclusive.
//
// By default the DB evaluates expressions in the paper's constraint dialect
// (NULL is an ordinary dontcare/noop domain value, so col = NULL holds when
// col is NULL). Use SetStrictNulls for ANSI three-valued semantics.
type DB struct {
	mu     sync.RWMutex
	tables map[string]*rel.Table
	eval   Evaluator
	// schemaEpoch counts catalog shape changes — a table created, dropped,
	// or replaced with a different column list. Cached plans carry the
	// epoch they were built under and rebuild when it moves; data-only
	// changes never bump it, because plan validity depends only on schemas
	// (row freshness is handled by the tables' persistent indexes).
	schemaEpoch uint64

	// tracer, when set, receives one span per executed statement with the
	// per-statement QueryStats as attributes; metrics, when set, receives
	// the coherdb_sql_* counters.
	tracer  obs.Tracer
	metrics *obs.Registry
	// queryLog, when set, tracks every statement as in-flight (with live
	// phase and rows-so-far) and retains slow ones — the /queries feed of
	// the diagnostics server.
	queryLog *obs.QueryLog

	// statsMu guards the aggregate stats separately from mu, so folding a
	// read-only statement's stats does not serialize concurrent readers.
	statsMu sync.Mutex
	stats   DBStats

	// planMu guards the plan cache: parse trees and physical plans keyed
	// by trimmed statement text (see plan.go).
	planMu sync.Mutex
	plans  map[string]*planEntry

	// exec is the worker pool behind morsel-parallel scans and join
	// probes (the process-wide shared pool by default); workers caps the
	// participants one statement phase may recruit (0 means the pool
	// size, 1 forces serial execution) and morsel is the batch grain.
	exec    *pool.Pool
	workers int
	morsel  int

	// vectorized enables the column-at-a-time scan path (on by default).
	// Plans carry both forms of every compiled conjunct, so toggling
	// selects the execution path per statement without invalidating
	// anything — the scalar path exists as the compile-time fallback and
	// as the reference for the vectorized-vs-scalar golden tests.
	vectorized bool
}

// run is the context of one executing statement: the DB, a snapshot of its
// evaluator, the statement's stats sink, the plan-cache entry when the
// statement came in as text, the schema epoch plans are tagged with, and
// the parallel-execution knobs snapshotted under the statement lock.
type run struct {
	db    *DB
	ev    Evaluator
	qs    *QueryStats
	entry *planEntry
	epoch uint64

	// az collects per-operator measurements during EXPLAIN ANALYZE; nil
	// for every other statement, so the executor's azBegin/azEnd hooks
	// cost one nil check each on the normal path.
	az *azRun

	pool    *pool.Pool
	workers int
	morsel  int
	vec     bool
}

// parallel decides whether a phase over n rows runs on the pool: it
// returns the pool, the worker cap and the morsel size, or a nil pool
// when the phase should stay serial (input smaller than two morsels, a
// worker cap of one, or no pool). The two-morsel floor guarantees that
// going parallel can actually split the work.
func (r *run) parallel(n int) (*pool.Pool, int, int) {
	morsel := r.morsel
	if morsel < 1 {
		morsel = DefaultMorselSize
	}
	if r.pool == nil || n < 2*morsel {
		return nil, 0, 0
	}
	workers := r.workers
	if workers <= 0 || workers > r.pool.Size() {
		workers = r.pool.Size()
	}
	if workers <= 1 {
		return nil, 0, 0
	}
	return r.pool, workers, morsel
}

// NewDB creates an empty database with the standard function registry
// (typename, coalesce2) pre-installed.
func NewDB() *DB {
	db := &DB{
		tables:     make(map[string]*rel.Table),
		eval:       Evaluator{Funcs: make(map[string]Func), NullEq: true},
		plans:      make(map[string]*planEntry),
		exec:       pool.Shared(),
		morsel:     DefaultMorselSize,
		vectorized: true,
	}
	db.eval.Funcs["typename"] = func(args []rel.Value) (rel.Value, error) {
		if len(args) != 1 {
			return rel.Null(), fmt.Errorf("%w: typename wants 1 arg", ErrType)
		}
		return rel.S(args[0].Kind().String()), nil
	}
	db.eval.Funcs["coalesce2"] = func(args []rel.Value) (rel.Value, error) {
		if len(args) != 2 {
			return rel.Null(), fmt.Errorf("%w: coalesce2 wants 2 args", ErrType)
		}
		if args[0].IsNull() {
			return args[1], nil
		}
		return args[0], nil
	}
	return db
}

// SetStrictNulls switches between ANSI SQL NULL semantics (true) and the
// paper's constraint dialect (false, the default). Cached plans survive the
// toggle: compiled predicates specialize on the dialect, so each plan-cache
// entry keeps one compiled plan per dialect (see planEntry) and toggling
// just selects the other slot.
func (db *DB) SetStrictNulls(strict bool) {
	db.mu.Lock()
	defer db.mu.Unlock()
	db.eval.NullEq = !strict
}

// SetWorkers caps how many pool workers one statement phase may recruit:
// 0 restores the default (the pool size, GOMAXPROCS for the shared pool)
// and 1 forces serial execution. Parallel and serial execution produce
// byte-identical results; the knob trades latency for pool pressure.
func (db *DB) SetWorkers(n int) {
	db.mu.Lock()
	defer db.mu.Unlock()
	if n < 0 {
		n = 0
	}
	db.workers = n
}

// SetPool replaces the DB's worker pool (nil restores the shared pool).
// The default shared pool is sized to GOMAXPROCS; an explicit pool lets
// an embedder — or a test forcing the parallel path on a small machine —
// run statement phases on more workers than there are CPUs.
func (db *DB) SetPool(p *pool.Pool) {
	db.mu.Lock()
	defer db.mu.Unlock()
	if p == nil {
		p = pool.Shared()
	}
	db.exec = p
}

// SetMorselSize sets the rows-per-batch grain of parallel phases; 0
// restores DefaultMorselSize. Smaller morsels parallelize smaller inputs
// (a phase needs at least two morsels of rows) at more scheduling
// overhead per row.
func (db *DB) SetMorselSize(n int) {
	db.mu.Lock()
	defer db.mu.Unlock()
	if n < 1 {
		n = DefaultMorselSize
	}
	db.morsel = n
}

// SetVectorized enables or disables the column-at-a-time scan path
// (enabled by default). Vectorized and scalar execution produce
// byte-identical results; the knob exists for the golden equivalence
// tests and the scalar-vs-vectorized benchmark pair.
func (db *DB) SetVectorized(on bool) {
	db.mu.Lock()
	defer db.mu.Unlock()
	db.vectorized = on
}

// SetTracer installs (or, with nil, removes) a tracer: every statement
// then emits one "sql.stmt" span carrying its QueryStats — rows scanned
// and produced, join strategies, index and plan-cache use, eval time.
func (db *DB) SetTracer(t obs.Tracer) {
	db.mu.Lock()
	defer db.mu.Unlock()
	db.tracer = t
}

// SetMetrics installs (or, with nil, removes) a metrics registry: every
// statement then bumps the coherdb_sql_* counters — statements by verb,
// plan-cache hits and misses, index scans and index joins.
func (db *DB) SetMetrics(m *obs.Registry) {
	db.mu.Lock()
	defer db.mu.Unlock()
	db.metrics = m
	if m != nil {
		m.Help("coherdb_sql_statements_total", "Executed SQL statements by verb.")
		m.Help("coherdb_sql_plan_cache_hits_total", "Statements served from the plan cache without re-parsing.")
		m.Help("coherdb_sql_plan_cache_misses_total", "Statements parsed and planned fresh.")
		m.Help("coherdb_sql_index_scans_total", "Table scans answered from a persistent hash index.")
		m.Help("coherdb_sql_index_joins_total", "Joins that probed a persistent index instead of building a hash table.")
		m.Help("coherdb_sql_parallel_morsels_total", "Row batches dealt to the worker pool by parallel scans and join probes.")
		m.Help("coherdb_sql_parallel_steals_total", "Morsels claimed by a worker beyond its fair share (work-stealing rebalances).")
		m.Help("coherdb_sql_vectorized_batches_total", "Selection-vector batches evaluated by the column-at-a-time scan path.")
		m.Help("coherdb_sql_vectorized_rows_total", "Rows entering vectorized filter kernels (selection-vector inputs).")
	}
}

// SetQueryLog installs (or, with nil, removes) a query log: every
// statement then registers as in-flight with its statement text, updates
// its phase and rows-so-far while executing, and lands in the slow-query
// ring when it exceeds the log's threshold or fails.
func (db *DB) SetQueryLog(q *obs.QueryLog) {
	db.mu.Lock()
	defer db.mu.Unlock()
	db.queryLog = q
}

// Stats returns a snapshot of the aggregate statement statistics.
func (db *DB) Stats() DBStats {
	db.statsMu.Lock()
	defer db.statsMu.Unlock()
	return db.stats
}

// Register installs fn as a SQL-callable scalar function. The paper
// registers protocol predicates such as isrequest(msg). Registering bumps
// the schema epoch: compiled plans resolve functions at compile time, so
// a (re)bound name invalidates them exactly like a schema change.
func (db *DB) Register(name string, fn Func) {
	db.mu.Lock()
	defer db.mu.Unlock()
	db.eval.Funcs[name] = fn
	db.schemaEpoch++
}

// PutTable installs (or replaces) a table under its own name. Cached plans
// are invalidated only when the name is new or the column list changed;
// replacing a table with an identically-shaped revision (the pipeline does
// this on every protocol revision) keeps every plan.
func (db *DB) PutTable(t *rel.Table) {
	db.mu.Lock()
	defer db.mu.Unlock()
	old, ok := db.tables[t.Name()]
	if !ok || !sameSchema(old, t) {
		db.schemaEpoch++
	}
	db.tables[t.Name()] = t
}

// sameSchema reports whether two tables have the same column list in the
// same order.
func sameSchema(a, b *rel.Table) bool {
	if a.NumCols() != b.NumCols() {
		return false
	}
	for i, c := range a.Columns() {
		if b.ColIndex(c) != i {
			return false
		}
	}
	return true
}

// Table returns the named table.
func (db *DB) Table(name string) (*rel.Table, bool) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	t, ok := db.tables[name]
	return t, ok
}

// MustTable returns the named table or panics; for names known statically.
func (db *DB) MustTable(name string) *rel.Table {
	t, ok := db.Table(name)
	if !ok {
		panic(fmt.Sprintf("sqlmini: no such table %q", name))
	}
	return t
}

// DropTable removes the named table; it reports whether it existed.
func (db *DB) DropTable(name string) bool {
	db.mu.Lock()
	defer db.mu.Unlock()
	_, ok := db.tables[name]
	if ok {
		delete(db.tables, name)
		db.schemaEpoch++
	}
	return ok
}

// Names returns the sorted table names.
func (db *DB) Names() []string {
	db.mu.RLock()
	defer db.mu.RUnlock()
	out := make([]string, 0, len(db.tables))
	for n := range db.tables {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Result is the outcome of executing one statement.
type Result struct {
	// Table is the result relation for SELECT (and CREATE ... AS SELECT);
	// nil for other statements.
	Table *rel.Table
	// Affected is the number of rows inserted, deleted or updated.
	Affected int
}

// Exec executes a single statement, parsing it through the plan cache: a
// statement text seen before reuses its parse tree and physical plan.
func (db *DB) Exec(src string) (*Result, error) {
	entry, hit, err := db.lookupPlan(src)
	if err != nil {
		return nil, err
	}
	pc := "miss"
	if hit {
		pc = "hit"
	}
	return db.execute(entry.stmt, entry, strings.TrimSpace(src), pc, nil)
}

// ExecScript parses and executes a semicolon-separated script, stopping at
// the first error.
func (db *DB) ExecScript(src string) error {
	stmts, err := ParseScript(src)
	if err != nil {
		return err
	}
	for _, s := range stmts {
		if _, err := db.ExecStmt(s); err != nil {
			return err
		}
	}
	return nil
}

// Query executes a SELECT and returns the result table.
func (db *DB) Query(src string) (*rel.Table, error) {
	res, err := db.Exec(src)
	if err != nil {
		return nil, err
	}
	if res.Table == nil {
		return nil, errNotQuery(strings.TrimSpace(src))
	}
	return res.Table, nil
}

// QueryEmpty executes a SELECT and reports whether its result is empty —
// the "[Select ...] = empty" idiom the paper uses for every invariant.
func (db *DB) QueryEmpty(src string) (bool, error) {
	t, err := db.Query(src)
	if err != nil {
		return false, err
	}
	return t.Empty(), nil
}

func errNotQuery(src string) error {
	return fmt.Errorf("sqlmini: statement %q is not a query", src)
}

// ExecStmt executes an already-parsed statement. It bypasses the plan
// cache (there is no text key); plans are built per execution.
func (db *DB) ExecStmt(stmt Stmt) (*Result, error) {
	return db.execute(stmt, nil, "", "", nil)
}

// execute runs one statement, recording QueryStats (and a span and
// counters, when a tracer or registry is installed). SELECT and EXPLAIN
// take the shared lock so queries run in parallel; everything else is
// exclusive. A non-nil into receives the statement's final QueryStats
// (the per-invariant stats feed of cohercheck -stats).
func (db *DB) execute(stmt Stmt, entry *planEntry, src, planCache string, into *QueryStats) (res *Result, err error) {
	qs := &QueryStats{Kind: stmtKind(stmt), Statement: src, PlanCache: planCache}
	if qs.Kind == "SELECT" || qs.Kind == "EXPLAIN" {
		db.mu.RLock()
		defer db.mu.RUnlock()
	} else {
		db.mu.Lock()
		defer db.mu.Unlock()
	}
	qs.tok = db.queryLog.Start(qs.Kind, src)
	r := &run{
		db: db, ev: db.eval, qs: qs, entry: entry, epoch: db.schemaEpoch,
		pool: db.exec, workers: db.workers, morsel: db.morsel, vec: db.vectorized,
	}
	span := obs.StartSpan(db.tracer, "sql.stmt", obs.String("kind", qs.Kind))
	if src != "" {
		span.SetAttr(obs.String("statement", src))
	}
	start := time.Now()
	defer func() {
		qs.Elapsed = time.Since(start)
		if res != nil && res.Table != nil {
			qs.addProduced(res.Table.NumRows())
		} else if res != nil {
			qs.addProduced(res.Affected)
		}
		qs.tok.Finish(err)
		if into != nil {
			*into = *qs
		}
		db.statsMu.Lock()
		db.stats.fold(qs)
		db.statsMu.Unlock()
		db.observe(qs)
		if span != nil {
			span.SetAttr(
				obs.String("storage", "columnar"),
				obs.Int("dict_size", rel.SharedDict().Len()),
				obs.Int("rows_scanned", qs.RowsScanned),
				obs.Int("rows_produced", qs.RowsProduced),
				obs.Int("hash_joins", qs.HashJoins),
				obs.Int("loop_joins", qs.LoopJoins),
				obs.Int("index_joins", qs.IndexJoins),
				obs.Int("index_scans", qs.IndexScans),
				obs.Int("pushdown_hits", qs.PushdownHits),
			)
			if qs.PlanCache != "" {
				span.SetAttr(obs.String("plan_cache", qs.PlanCache))
			}
			if qs.Morsels > 0 {
				span.SetAttr(
					obs.Int("parallel_morsels", qs.Morsels),
					obs.Int("parallel_steals", qs.Steals),
					obs.Int("parallel_workers", len(qs.WorkerBusy)),
				)
			}
			if err != nil {
				span.SetAttr(obs.String("error", err.Error()))
			}
			span.Finish()
		}
	}()
	return r.dispatch(stmt)
}

// observe bumps the statement counters on the installed registry.
func (db *DB) observe(qs *QueryStats) {
	m := db.metrics
	if m == nil {
		return
	}
	m.Counter("coherdb_sql_statements_total", obs.L("kind", qs.Kind)).Inc()
	switch qs.PlanCache {
	case "hit":
		m.Counter("coherdb_sql_plan_cache_hits_total").Inc()
	case "miss":
		m.Counter("coherdb_sql_plan_cache_misses_total").Inc()
	}
	m.Counter("coherdb_sql_index_scans_total").Add(int64(qs.IndexScans))
	m.Counter("coherdb_sql_index_joins_total").Add(int64(qs.IndexJoins))
	m.Counter("coherdb_sql_parallel_morsels_total").Add(int64(qs.Morsels))
	m.Counter("coherdb_sql_parallel_steals_total").Add(int64(qs.Steals))
	m.Counter("coherdb_sql_vectorized_batches_total").Add(int64(qs.VecBatches))
	m.Counter("coherdb_sql_vectorized_rows_total").Add(int64(qs.VecRowsIn))
}

// dispatch routes a statement to its executor. The caller holds db.mu in
// the mode execute chose.
func (r *run) dispatch(stmt Stmt) (*Result, error) {
	switch s := stmt.(type) {
	case *SelectStmt:
		t, err := r.execSelect(s)
		if err != nil {
			return nil, err
		}
		return &Result{Table: t}, nil
	case *ExplainStmt:
		var t *rel.Table
		var err error
		if s.Analyze {
			t, err = r.execAnalyze(s.Query)
		} else {
			t, err = r.explainSelect(s.Query)
		}
		if err != nil {
			return nil, err
		}
		return &Result{Table: t}, nil
	case *CreateStmt:
		return r.execCreate(s)
	case *DropStmt:
		if _, ok := r.db.tables[s.Name]; !ok {
			if s.IfExists {
				return &Result{}, nil
			}
			return nil, fmt.Errorf("%w: %q", ErrNoTable, s.Name)
		}
		delete(r.db.tables, s.Name)
		r.db.schemaEpoch++
		return &Result{}, nil
	case *InsertStmt:
		return r.execInsert(s)
	case *DeleteStmt:
		return r.execDelete(s)
	case *UpdateStmt:
		return r.execUpdate(s)
	default:
		return nil, fmt.Errorf("sqlmini: unhandled statement %T", stmt)
	}
}

func (r *run) execCreate(s *CreateStmt) (*Result, error) {
	if _, dup := r.db.tables[s.Name]; dup {
		return nil, fmt.Errorf("%w: %q", ErrTableExist, s.Name)
	}
	if s.As != nil {
		t, err := r.execSelect(s.As)
		if err != nil {
			return nil, err
		}
		t.SetName(s.Name)
		r.db.tables[s.Name] = t
		r.db.schemaEpoch++
		return &Result{Table: t, Affected: t.NumRows()}, nil
	}
	t, err := rel.NewTable(s.Name, s.Cols...)
	if err != nil {
		return nil, err
	}
	r.db.tables[s.Name] = t
	r.db.schemaEpoch++
	return &Result{}, nil
}

func (r *run) execInsert(s *InsertStmt) (*Result, error) {
	t, ok := r.db.tables[s.Table]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNoTable, s.Table)
	}
	cols := s.Cols
	if cols == nil {
		cols = t.Columns()
	}
	pos := make([]int, len(cols))
	for i, c := range cols {
		j := t.ColIndex(c)
		if j < 0 {
			return nil, fmt.Errorf("%w: %s in table %q", ErrUnknownColumn, c, s.Table)
		}
		pos[i] = j
	}
	emptyEnv := MapEnv{}
	for _, rexprs := range s.Rows {
		if len(rexprs) != len(cols) {
			return nil, fmt.Errorf("%w: INSERT row has %d values, want %d", rel.ErrArity, len(rexprs), len(cols))
		}
		row := make([]rel.Value, t.NumCols())
		for i, e := range rexprs {
			v, err := r.ev.Eval(e, emptyEnv)
			if err != nil {
				return nil, err
			}
			row[pos[i]] = v
		}
		if err := t.InsertRow(row); err != nil {
			return nil, err
		}
	}
	return &Result{Affected: len(s.Rows)}, nil
}

func (r *run) execDelete(s *DeleteStmt) (*Result, error) {
	t, ok := r.db.tables[s.Table]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNoTable, s.Table)
	}
	r.qs.addScanned(t.NumRows())
	var evalErr error
	n := t.DeleteWhere(func(row rel.Row) bool {
		if evalErr != nil {
			return false
		}
		if s.Where == nil {
			return true
		}
		ok, err := r.ev.True(s.Where, rowEnv{row: row})
		if err != nil {
			evalErr = err
			return false
		}
		return ok
	})
	if evalErr != nil {
		return nil, evalErr
	}
	return &Result{Affected: n}, nil
}

func (r *run) execUpdate(s *UpdateStmt) (*Result, error) {
	t, ok := r.db.tables[s.Table]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNoTable, s.Table)
	}
	for _, c := range s.Cols {
		if !t.HasColumn(c) {
			return nil, fmt.Errorf("%w: %s in table %q", ErrUnknownColumn, c, s.Table)
		}
	}
	r.qs.addScanned(t.NumRows())
	n := 0
	for i := 0; i < t.NumRows(); i++ {
		env := rowEnv{row: t.Row(i)}
		if s.Where != nil {
			ok, err := r.ev.True(s.Where, env)
			if err != nil {
				return nil, err
			}
			if !ok {
				continue
			}
		}
		// Evaluate all RHS before assigning, so SET a=b, b=a swaps.
		vals := make([]rel.Value, len(s.Exprs))
		for k, e := range s.Exprs {
			v, err := r.ev.Eval(e, env)
			if err != nil {
				return nil, err
			}
			vals[k] = v
		}
		for k, c := range s.Cols {
			if err := t.Set(i, c, vals[k]); err != nil {
				return nil, err
			}
		}
		n++
	}
	return &Result{Affected: n}, nil
}

// rowEnv adapts a single-table row to Env; the qualifier, if present, must
// match the table name.
type rowEnv struct {
	row rel.Row
}

func (e rowEnv) Lookup(q, name string) (rel.Value, bool) {
	t := e.row.Table()
	if q != "" && q != t.Name() {
		return rel.Null(), false
	}
	if !t.HasColumn(name) {
		return rel.Null(), false
	}
	return e.row.Get(name), true
}
