package sqlmini

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"coherdb/internal/obs"
	"coherdb/internal/rel"
)

// Errors returned by the executor.
var (
	ErrNoTable    = errors.New("sqlmini: no such table")
	ErrTableExist = errors.New("sqlmini: table already exists")
)

// DB is a catalog of named tables plus a function registry — the "central
// database" of the paper in which all controller tables live. It is safe for
// concurrent use.
//
// By default the DB evaluates expressions in the paper's constraint dialect
// (NULL is an ordinary dontcare/noop domain value, so col = NULL holds when
// col is NULL). Use SetStrictNulls for ANSI three-valued semantics.
type DB struct {
	mu     sync.RWMutex
	tables map[string]*rel.Table
	eval   Evaluator

	// tracer, when set, receives one span per executed statement with the
	// per-statement QueryStats as attributes.
	tracer obs.Tracer
	// stats aggregates per-statement work; cur is the statement being
	// executed (guarded by mu, which exec holds exclusively).
	stats DBStats
	cur   *QueryStats
}

// NewDB creates an empty database with the standard function registry
// (typename, coalesce2) pre-installed.
func NewDB() *DB {
	db := &DB{
		tables: make(map[string]*rel.Table),
		eval:   Evaluator{Funcs: make(map[string]Func), NullEq: true},
	}
	db.eval.Funcs["typename"] = func(args []rel.Value) (rel.Value, error) {
		if len(args) != 1 {
			return rel.Null(), fmt.Errorf("%w: typename wants 1 arg", ErrType)
		}
		return rel.S(args[0].Kind().String()), nil
	}
	db.eval.Funcs["coalesce2"] = func(args []rel.Value) (rel.Value, error) {
		if len(args) != 2 {
			return rel.Null(), fmt.Errorf("%w: coalesce2 wants 2 args", ErrType)
		}
		if args[0].IsNull() {
			return args[1], nil
		}
		return args[0], nil
	}
	return db
}

// SetStrictNulls switches between ANSI SQL NULL semantics (true) and the
// paper's constraint dialect (false, the default).
func (db *DB) SetStrictNulls(strict bool) {
	db.mu.Lock()
	defer db.mu.Unlock()
	db.eval.NullEq = !strict
}

// SetTracer installs (or, with nil, removes) a tracer: every statement
// then emits one "sql.stmt" span carrying its QueryStats — rows scanned
// and produced, join strategies, pushdown hits and eval time.
func (db *DB) SetTracer(t obs.Tracer) {
	db.mu.Lock()
	defer db.mu.Unlock()
	db.tracer = t
}

// Stats returns a snapshot of the aggregate statement statistics.
func (db *DB) Stats() DBStats {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return db.stats
}

// Register installs fn as a SQL-callable scalar function. The paper
// registers protocol predicates such as isrequest(msg).
func (db *DB) Register(name string, fn Func) {
	db.mu.Lock()
	defer db.mu.Unlock()
	db.eval.Funcs[name] = fn
}

// PutTable installs (or replaces) a table under its own name.
func (db *DB) PutTable(t *rel.Table) {
	db.mu.Lock()
	defer db.mu.Unlock()
	db.tables[t.Name()] = t
}

// Table returns the named table.
func (db *DB) Table(name string) (*rel.Table, bool) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	t, ok := db.tables[name]
	return t, ok
}

// MustTable returns the named table or panics; for names known statically.
func (db *DB) MustTable(name string) *rel.Table {
	t, ok := db.Table(name)
	if !ok {
		panic(fmt.Sprintf("sqlmini: no such table %q", name))
	}
	return t
}

// DropTable removes the named table; it reports whether it existed.
func (db *DB) DropTable(name string) bool {
	db.mu.Lock()
	defer db.mu.Unlock()
	_, ok := db.tables[name]
	delete(db.tables, name)
	return ok
}

// Names returns the sorted table names.
func (db *DB) Names() []string {
	db.mu.RLock()
	defer db.mu.RUnlock()
	out := make([]string, 0, len(db.tables))
	for n := range db.tables {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Result is the outcome of executing one statement.
type Result struct {
	// Table is the result relation for SELECT (and CREATE ... AS SELECT);
	// nil for other statements.
	Table *rel.Table
	// Affected is the number of rows inserted, deleted or updated.
	Affected int
}

// Exec parses and executes a single statement.
func (db *DB) Exec(src string) (*Result, error) {
	stmt, err := ParseStatement(src)
	if err != nil {
		return nil, err
	}
	return db.exec(stmt, strings.TrimSpace(src))
}

// ExecScript parses and executes a semicolon-separated script, stopping at
// the first error.
func (db *DB) ExecScript(src string) error {
	stmts, err := ParseScript(src)
	if err != nil {
		return err
	}
	for _, s := range stmts {
		if _, err := db.ExecStmt(s); err != nil {
			return err
		}
	}
	return nil
}

// Query executes a SELECT and returns the result table.
func (db *DB) Query(src string) (*rel.Table, error) {
	res, err := db.Exec(src)
	if err != nil {
		return nil, err
	}
	if res.Table == nil {
		return nil, fmt.Errorf("sqlmini: statement %q is not a query", strings.TrimSpace(src))
	}
	return res.Table, nil
}

// QueryEmpty executes a SELECT and reports whether its result is empty —
// the "[Select ...] = empty" idiom the paper uses for every invariant.
func (db *DB) QueryEmpty(src string) (bool, error) {
	t, err := db.Query(src)
	if err != nil {
		return false, err
	}
	return t.Empty(), nil
}

// ExecStmt executes an already-parsed statement.
func (db *DB) ExecStmt(stmt Stmt) (*Result, error) {
	return db.exec(stmt, "")
}

// exec runs one statement under the exclusive lock, recording QueryStats
// (and a span, when a tracer is installed).
func (db *DB) exec(stmt Stmt, src string) (res *Result, err error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	qs := &QueryStats{Kind: stmtKind(stmt), Statement: src}
	db.cur = qs
	span := obs.StartSpan(db.tracer, "sql.stmt", obs.String("kind", qs.Kind))
	if src != "" {
		span.SetAttr(obs.String("statement", src))
	}
	start := time.Now()
	defer func() {
		db.cur = nil
		qs.Elapsed = time.Since(start)
		if res != nil && res.Table != nil {
			qs.addProduced(res.Table.NumRows())
		} else if res != nil {
			qs.addProduced(res.Affected)
		}
		db.stats.fold(qs)
		if span != nil {
			span.SetAttr(
				obs.Int("rows_scanned", qs.RowsScanned),
				obs.Int("rows_produced", qs.RowsProduced),
				obs.Int("hash_joins", qs.HashJoins),
				obs.Int("loop_joins", qs.LoopJoins),
				obs.Int("pushdown_hits", qs.PushdownHits),
			)
			if err != nil {
				span.SetAttr(obs.String("error", err.Error()))
			}
			span.Finish()
		}
	}()
	return db.execLocked(stmt)
}

// execLocked dispatches a statement; the caller holds db.mu exclusively.
func (db *DB) execLocked(stmt Stmt) (*Result, error) {
	switch s := stmt.(type) {
	case *SelectStmt:
		t, err := db.execSelect(s)
		if err != nil {
			return nil, err
		}
		return &Result{Table: t}, nil
	case *ExplainStmt:
		t, err := db.explainSelect(s.Query)
		if err != nil {
			return nil, err
		}
		return &Result{Table: t}, nil
	case *CreateStmt:
		return db.execCreate(s)
	case *DropStmt:
		if _, ok := db.tables[s.Name]; !ok {
			if s.IfExists {
				return &Result{}, nil
			}
			return nil, fmt.Errorf("%w: %q", ErrNoTable, s.Name)
		}
		delete(db.tables, s.Name)
		return &Result{}, nil
	case *InsertStmt:
		return db.execInsert(s)
	case *DeleteStmt:
		return db.execDelete(s)
	case *UpdateStmt:
		return db.execUpdate(s)
	default:
		return nil, fmt.Errorf("sqlmini: unhandled statement %T", stmt)
	}
}

func (db *DB) execCreate(s *CreateStmt) (*Result, error) {
	if _, dup := db.tables[s.Name]; dup {
		return nil, fmt.Errorf("%w: %q", ErrTableExist, s.Name)
	}
	if s.As != nil {
		t, err := db.execSelect(s.As)
		if err != nil {
			return nil, err
		}
		t.SetName(s.Name)
		db.tables[s.Name] = t
		return &Result{Table: t, Affected: t.NumRows()}, nil
	}
	t, err := rel.NewTable(s.Name, s.Cols...)
	if err != nil {
		return nil, err
	}
	db.tables[s.Name] = t
	return &Result{}, nil
}

func (db *DB) execInsert(s *InsertStmt) (*Result, error) {
	t, ok := db.tables[s.Table]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNoTable, s.Table)
	}
	cols := s.Cols
	if cols == nil {
		cols = t.Columns()
	}
	pos := make([]int, len(cols))
	for i, c := range cols {
		j := t.ColIndex(c)
		if j < 0 {
			return nil, fmt.Errorf("%w: %s in table %q", ErrUnknownColumn, c, s.Table)
		}
		pos[i] = j
	}
	emptyEnv := MapEnv{}
	for _, rexprs := range s.Rows {
		if len(rexprs) != len(cols) {
			return nil, fmt.Errorf("%w: INSERT row has %d values, want %d", rel.ErrArity, len(rexprs), len(cols))
		}
		row := make([]rel.Value, t.NumCols())
		for i, e := range rexprs {
			v, err := db.eval.Eval(e, emptyEnv)
			if err != nil {
				return nil, err
			}
			row[pos[i]] = v
		}
		if err := t.InsertRow(row); err != nil {
			return nil, err
		}
	}
	return &Result{Affected: len(s.Rows)}, nil
}

func (db *DB) execDelete(s *DeleteStmt) (*Result, error) {
	t, ok := db.tables[s.Table]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNoTable, s.Table)
	}
	db.cur.addScanned(t.NumRows())
	var evalErr error
	n := t.DeleteWhere(func(r rel.Row) bool {
		if evalErr != nil {
			return false
		}
		if s.Where == nil {
			return true
		}
		ok, err := db.eval.True(s.Where, rowEnv{row: r})
		if err != nil {
			evalErr = err
			return false
		}
		return ok
	})
	if evalErr != nil {
		return nil, evalErr
	}
	return &Result{Affected: n}, nil
}

func (db *DB) execUpdate(s *UpdateStmt) (*Result, error) {
	t, ok := db.tables[s.Table]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNoTable, s.Table)
	}
	for _, c := range s.Cols {
		if !t.HasColumn(c) {
			return nil, fmt.Errorf("%w: %s in table %q", ErrUnknownColumn, c, s.Table)
		}
	}
	db.cur.addScanned(t.NumRows())
	n := 0
	for i := 0; i < t.NumRows(); i++ {
		env := rowEnv{row: t.Row(i)}
		if s.Where != nil {
			ok, err := db.eval.True(s.Where, env)
			if err != nil {
				return nil, err
			}
			if !ok {
				continue
			}
		}
		// Evaluate all RHS before assigning, so SET a=b, b=a swaps.
		vals := make([]rel.Value, len(s.Exprs))
		for k, e := range s.Exprs {
			v, err := db.eval.Eval(e, env)
			if err != nil {
				return nil, err
			}
			vals[k] = v
		}
		for k, c := range s.Cols {
			if err := t.Set(i, c, vals[k]); err != nil {
				return nil, err
			}
		}
		n++
	}
	return &Result{Affected: n}, nil
}

// rowEnv adapts a single-table row to Env; the qualifier, if present, must
// match the table name.
type rowEnv struct {
	row rel.Row
}

func (e rowEnv) Lookup(q, name string) (rel.Value, bool) {
	t := e.row.Table()
	if q != "" && q != t.Name() {
		return rel.Null(), false
	}
	if !t.HasColumn(name) {
		return rel.Null(), false
	}
	return e.row.Get(name), true
}
