package sqlmini

import (
	"strings"
	"sync"

	"coherdb/internal/rel"
)

// The query planner: every SELECT branch is compiled into a branchPlan —
// per-source index-equality keys, pushed-down filters and the residual
// post-join predicate — once, and the plan is cached on the DB keyed by
// the statement text plus the catalog's schema fingerprint. Plans depend
// only on the catalog's schemas (which tables exist and their column
// lists), never on row contents, so DML leaves them valid: data freshness
// is the job of the persistent table indexes (rel.Table.IndexOn), which
// are carried forward at epoch-publish time. Any schema change (CREATE,
// DROP, PutTable/DropTable with a new shape — even a DROP + CREATE that
// reproduces the identical shape) lands on a new fingerprint, so a cached
// plan can never be served across a DDL boundary.

// planCacheCap bounds the number of cached statements; past it, new
// statements are parsed per execution but not retained.
const planCacheCap = 4096

// srcPlan describes how one table source of a SELECT branch is scanned.
type srcPlan struct {
	// eqCols/eqVals are the pushed-down equality conjuncts of the form
	// column = literal (non-NULL): the scan is answered by a persistent
	// hash index on eqCols probed with eqVals. NULL literals are excluded
	// so the plan is valid under both NULL dialects.
	eqCols []string
	eqVals []rel.Value
	// filters are the remaining pushed conjuncts, evaluated over the
	// (index-reduced) scan of this source.
	filters []Expr
	// progs holds the compiled form of each filter conjunct (same index),
	// evaluated directly over dictionary-code rows; a nil slot means the
	// compiler declined that conjunct and it is interpreted per row.
	progs []CodePred
	// vecs holds the vectorized form of each filter conjunct (same index),
	// evaluating a whole morsel's column vectors per call; a nil slot means
	// the conjunct's shape forces row-at-a-time evaluation. The scan takes
	// the column-at-a-time path only when every conjunct vectorized (see
	// fullyVec), so a partially lowered filter never splits evaluation
	// orders.
	vecs []*VecPred
}

// pristine reports whether the source is scanned whole, with no pushed
// predicates — the precondition for probing its persistent index during a
// join.
func (sp srcPlan) pristine() bool { return len(sp.eqCols) == 0 && len(sp.filters) == 0 }

// branchPlan is the cached physical plan of one SELECT branch.
type branchPlan struct {
	srcs    []srcPlan
	residue Expr // post-join filter; nil when fully pushed
	// resConj/resProgs are the residue's conjuncts split once at plan time
	// and their compiled forms (nil slots interpreted), so execution never
	// re-splits or re-lowers the post-join filter.
	resConj  []Expr
	resProgs []CodePred
}

// residueConjuncts returns the post-join filter as conjuncts plus their
// compiled forms; plans built through planBranch carry both precomputed,
// while the defensive fallback plan (planAt) splits on demand.
func (p *branchPlan) residueConjuncts() ([]Expr, []CodePred) {
	if p.resConj != nil {
		return p.resConj, p.resProgs
	}
	if p.residue == nil {
		return nil, nil
	}
	return splitAnd(p.residue), nil
}

// src returns the i-th source plan, or a zero plan when out of range
// (defensive: plans are built from the same statement they execute).
func (p *branchPlan) src(i int) srcPlan {
	if p == nil || i < 0 || i >= len(p.srcs) {
		return srcPlan{}
	}
	return p.srcs[i]
}

// planEntry is one plan-cache slot: the parsed statement plus the lazily
// built branch plans, tagged with the schema fingerprint they were
// planned under. Plans are cached per NULL dialect (index 0 strict ANSI,
// 1 the constraint dialect) because compiled predicates specialize
// comparisons on the dialect at compile time; the invariant suite runs
// every query under a strict-dialect pin, and two slots keep both
// variants warm instead of rebuilding ~50 plans per dialect switch.
type planEntry struct {
	stmt Stmt

	mu       sync.Mutex
	fp       [2]uint64
	branches [2][]*branchPlan
}

// dialect indexes planEntry caches by the evaluator's NULL dialect.
func dialect(nullEq bool) int {
	if nullEq {
		return 1
	}
	return 0
}

// branchPlans returns the entry's cached branch plans for s (the entry's
// SELECT, or the SELECT embedded in its EXPLAIN/CREATE ... AS), rebuilding
// them when the schema fingerprint of the pinned epoch moved. entry.mu
// serializes concurrent readers planning the same statement.
func (e *planEntry) branchPlans(r *run, s *SelectStmt) ([]*branchPlan, error) {
	d := dialect(r.ev.NullEq)
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.branches[d] != nil && e.fp[d] == r.fp {
		return e.branches[d], nil
	}
	plans, err := r.buildBranchPlans(s)
	if err != nil {
		return nil, err
	}
	e.branches[d], e.fp[d] = plans, r.fp
	return plans, nil
}

// planKey identifies one plan-cache slot: the trimmed statement text plus
// the schema fingerprint it was looked up under. Folding the fingerprint
// into the key means a DDL boundary — even DROP + CREATE reproducing the
// identical shape — must miss the cache rather than serve a stale plan.
type planKey struct {
	src string
	fp  uint64
}

// planFP returns the fingerprint statements are cached under right now:
// the current catalog's schema fingerprint, mixed with the session's
// overlay shape when the statement runs inside a session that shadows
// shared names.
func (db *DB) planFP(sess *Session) uint64 {
	return sessionFP(db.cat.Load(), sess)
}

// sessionFP mixes a catalog's schema fingerprint with the session overlay
// generation. A session with an empty overlay resolves names exactly like
// the shared catalog and shares its plan entries; once the overlay
// shadows anything, the session id and its DDL generation split the key.
func sessionFP(cat *rel.Catalog, sess *Session) uint64 {
	fp := cat.Fingerprint()
	if sess == nil || len(sess.overlay) == 0 {
		return fp
	}
	var buf [16]byte
	for i := 0; i < 8; i++ {
		buf[i] = byte(sess.id >> (8 * i))
		buf[8+i] = byte(sess.gen >> (8 * i))
	}
	return fp ^ rel.HashBytes(buf[:])
}

// lookupPlan resolves src through the plan cache under the given schema
// fingerprint, parsing on miss. The second result reports whether the
// entry was served from the cache.
func (db *DB) lookupPlan(src string, fp uint64) (*planEntry, bool, error) {
	key := planKey{src: strings.TrimSpace(src), fp: fp}
	db.planMu.Lock()
	e, ok := db.plans[key]
	db.planMu.Unlock()
	if ok {
		return e, true, nil
	}
	stmt, err := ParseStatement(src)
	if err != nil {
		return nil, false, err
	}
	e = &planEntry{stmt: stmt}
	db.planMu.Lock()
	if have, dup := db.plans[key]; dup {
		e = have // lost a parse race; reuse the first entry
	} else if len(db.plans) < planCacheCap {
		db.plans[key] = e
	}
	db.planMu.Unlock()
	return e, false, nil
}

// plansFor returns the branch plans for s: from the statement's cache
// entry when the statement came in as text, or built fresh for pre-parsed
// statements.
func (r *run) plansFor(s *SelectStmt) ([]*branchPlan, error) {
	if r.entry != nil {
		return r.entry.branchPlans(r, s)
	}
	return r.buildBranchPlans(s)
}

// buildBranchPlans plans every branch of a UNION chain in order.
func (r *run) buildBranchPlans(s *SelectStmt) ([]*branchPlan, error) {
	var out []*branchPlan
	for b := s; b != nil; b = b.Union {
		bp, err := r.planBranch(b)
		if err != nil {
			return nil, err
		}
		out = append(out, bp)
	}
	return out, nil
}

// planBranch compiles one SELECT branch: WHERE conjuncts that reference a
// single source are pushed to that source's scan, and among those the
// column-equals-literal conjuncts become index keys; everything else is
// the post-join residue.
func (r *run) planBranch(s *SelectStmt) (*branchPlan, error) {
	sources, err := r.selectSources(s)
	if err != nil {
		return nil, err
	}
	plan := &branchPlan{srcs: make([]srcPlan, len(sources))}
	if s.Where == nil {
		return plan, nil
	}
	for _, c := range splitAnd(s.Where) {
		target := pushTarget(c, sources)
		if target < 0 {
			if plan.residue == nil {
				plan.residue = c
			} else {
				plan.residue = Binary{Op: "AND", L: plan.residue, R: c}
			}
			continue
		}
		sp := &plan.srcs[target]
		if col, val, ok := indexableEq(c, sources[target]); ok && !hasCol(sp.eqCols, col) {
			sp.eqCols = append(sp.eqCols, col)
			sp.eqVals = append(sp.eqVals, val)
			continue
		}
		sp.filters = append(sp.filters, c)
	}
	// Bind column references to row positions: pushed filters against their
	// source's schema, the residue against the joined layout. Fully bound
	// conjuncts are additionally lowered to compiled predicates, the form
	// the filter loop and the morsel-parallel scan evaluate.
	for i := range plan.srcs {
		sp := &plan.srcs[i]
		for j, e := range sp.filters {
			sp.filters[j] = bindExpr(e, sources[i])
		}
		sp.progs = compilePreds(&r.ev, sp.filters)
		sp.vecs = compileVecs(&r.ev, sp.filters)
	}
	if plan.residue != nil {
		plan.residue = bindExpr(plan.residue, joinedSchema(sources))
		plan.resConj = splitAnd(plan.residue)
		plan.resProgs = compilePreds(&r.ev, plan.resConj)
	}
	return plan, nil
}

// compilePreds lowers each bound conjunct through CompileBoundCodes. A
// conjunct the compiler declines — an unresolved column reference, or an
// operator outside the compilable subset — keeps a nil slot and is
// interpreted per row, which preserves the unplanned path's error
// reporting exactly.
func compilePreds(ev *Evaluator, conjuncts []Expr) []CodePred {
	if len(conjuncts) == 0 {
		return nil
	}
	out := make([]CodePred, len(conjuncts))
	for i, c := range conjuncts {
		if p, err := ev.CompileBoundCodes(c); err == nil {
			out[i] = p
		}
	}
	return out
}

// boundCol is a column reference resolved to a row position at plan time.
// Only bindExpr produces it — never the parser — so it appears only inside
// cached plans, whose frame layout is pinned by the schema epoch. The
// embedded Col keeps the original spelling for rendering (EXPLAIN output is
// unchanged) and for the name-resolution fallback under non-frame Envs.
type boundCol struct {
	Col
	Idx int
}

// joinedSchema concatenates the sources' schemas in execution order —
// exactly the row layout cross and join produce — so the post-join residue
// can be bound to positions.
func joinedSchema(sources []*frame) *frame {
	out := &frame{}
	for _, s := range sources {
		out.aliases = append(out.aliases, s.aliases...)
		out.names = append(out.names, s.names...)
	}
	return out
}

// bindExpr rewrites e with every resolvable column reference replaced by
// its position in f's row layout, so per-row evaluation indexes the row
// directly instead of resolving names. The tree is copied, never mutated:
// parsed statements are shared across executions and epochs. References
// that do not resolve (unknown or ambiguous) keep their Col node, so
// runtime errors are identical to the unplanned path.
func bindExpr(e Expr, f *frame) Expr {
	switch x := e.(type) {
	case Col:
		if i := f.resolve(x.Qualifier, x.Name); i >= 0 {
			return boundCol{Col: x, Idx: i}
		}
		return x
	case Unary:
		x.X = bindExpr(x.X, f)
		return x
	case Binary:
		x.L = bindExpr(x.L, f)
		x.R = bindExpr(x.R, f)
		return x
	case InList:
		x.X = bindExpr(x.X, f)
		set := make([]Expr, len(x.Set))
		for i, s := range x.Set {
			set[i] = bindExpr(s, f)
		}
		x.Set = set
		return x
	case IsNull:
		x.X = bindExpr(x.X, f)
		return x
	case Between:
		x.X = bindExpr(x.X, f)
		x.Lo = bindExpr(x.Lo, f)
		x.Hi = bindExpr(x.Hi, f)
		return x
	case Ternary:
		x.Cond = bindExpr(x.Cond, f)
		x.Then = bindExpr(x.Then, f)
		x.Else = bindExpr(x.Else, f)
		return x
	case Case:
		whens := make([]When, len(x.Whens))
		for i, w := range x.Whens {
			whens[i] = When{Cond: bindExpr(w.Cond, f), Val: bindExpr(w.Val, f)}
		}
		x.Whens = whens
		if x.Else != nil {
			x.Else = bindExpr(x.Else, f)
		}
		return x
	case Call:
		args := make([]Expr, len(x.Args))
		for i, a := range x.Args {
			args[i] = bindExpr(a, f)
		}
		x.Args = args
		return x
	default:
		return e
	}
}

// pushTarget finds the single source a conjunct's column references all
// resolve in, or -1 when the conjunct has no column references, spans
// sources, or references something ambiguous/unresolvable.
func pushTarget(c Expr, sources []*frame) int {
	var cols []Col
	colRefs(c, &cols)
	if len(cols) == 0 {
		return -1
	}
	target := -1
	for _, col := range cols {
		si := -1
		for i, src := range sources {
			if src.resolve(col.Qualifier, col.Name) >= 0 {
				if si >= 0 {
					return -1 // resolvable in two sources: not pushable
				}
				si = i
			}
		}
		if si < 0 || (target >= 0 && si != target) {
			return -1
		}
		target = si
	}
	return target
}

// indexableEq recognizes a pushed conjunct of the form column = literal
// (either order) with a non-NULL literal, returning the base column name
// and the key value. NULL literals are rejected: under strict ANSI NULLs
// the conjunct can never hold, and excluding them keeps one plan valid in
// both dialects.
func indexableEq(c Expr, src *frame) (string, rel.Value, bool) {
	b, ok := c.(Binary)
	if !ok || b.Op != "=" {
		return "", rel.Value{}, false
	}
	col, okc := b.L.(Col)
	lit, okl := b.R.(Lit)
	if !okc || !okl {
		col, okc = b.R.(Col)
		lit, okl = b.L.(Lit)
	}
	if !okc || !okl || lit.Val.IsNull() {
		return "", rel.Value{}, false
	}
	if src.resolve(col.Qualifier, col.Name) < 0 {
		return "", rel.Value{}, false
	}
	return col.Name, lit.Val, true
}

func hasCol(cols []string, c string) bool {
	for _, have := range cols {
		if have == c {
			return true
		}
	}
	return false
}

// Prepared is a parsed-and-planned statement bound to a DB (or to one of
// its sessions) — the prepared-statement layer the invariant suite uses
// so re-checking a revision never re-parses its ~50 queries.
type Prepared struct {
	db    *DB
	sess  *Session
	src   string
	entry *planEntry
}

// Prepare parses src (through the plan cache) and returns a handle whose
// executions skip parsing and reuse the cached plan.
func (db *DB) Prepare(src string) (*Prepared, error) {
	entry, _, err := db.lookupPlan(src, db.planFP(nil))
	if err != nil {
		return nil, err
	}
	return &Prepared{db: db, src: strings.TrimSpace(src), entry: entry}, nil
}

// Exec executes the prepared statement. Prepared executions count as
// plan-cache hits: the whole point of the handle is never re-parsing.
func (p *Prepared) Exec() (*Result, error) {
	return p.db.execute(p.entry.stmt, execOpts{entry: p.entry, src: p.src, planCache: "hit", sess: p.sess})
}

// ExecStats executes the prepared statement and additionally returns the
// execution's QueryStats — rows scanned/produced, join strategies, morsel
// and steal counts — so callers like the invariant suite can attribute
// runtime per query without scraping the DB-wide aggregates.
func (p *Prepared) ExecStats() (*Result, QueryStats, error) {
	var qs QueryStats
	res, err := p.db.execute(p.entry.stmt, execOpts{entry: p.entry, src: p.src, planCache: "hit", into: &qs, sess: p.sess})
	return res, qs, err
}

// ExecStatsDialect is ExecStats with the statement's NULL dialect pinned
// (true = strict ANSI) for just this execution, regardless of the DB or
// session default. The invariant suite runs its ~50 queries this way so
// concurrent sessions never observe each other's dialect — the global
// SetStrictNulls toggle it replaces would.
func (p *Prepared) ExecStatsDialect(strict bool) (*Result, QueryStats, error) {
	var qs QueryStats
	res, err := p.db.execute(p.entry.stmt, execOpts{entry: p.entry, src: p.src, planCache: "hit", into: &qs, sess: p.sess, strict: &strict})
	return res, qs, err
}

// Query executes the prepared statement and returns its result table.
func (p *Prepared) Query() (*rel.Table, error) {
	res, err := p.Exec()
	if err != nil {
		return nil, err
	}
	if res.Table == nil {
		return nil, errNotQuery(p.src)
	}
	return res.Table, nil
}

// QueryEmpty reports whether the prepared query's result is empty — the
// "[Select ...] = empty" invariant idiom.
func (p *Prepared) QueryEmpty() (bool, error) {
	t, err := p.Query()
	if err != nil {
		return false, err
	}
	return t.Empty(), nil
}

// exprCache backs ParseExprCached: constraint expressions are a fixed
// vocabulary re-parsed on every solver run, and parsed Exprs are
// immutable value trees, so sharing them is safe.
var (
	exprCacheMu sync.Mutex
	exprCache   = map[string]Expr{}
)

// maxCachedExprLen bounds which expression texts are retained. Short
// hand-written constraints dominate solver runs and are worth keeping;
// the rule compiler's generated multi-kilobyte ternary chains are parsed
// once per generation and retaining their pointer-dense trees for the
// process lifetime taxes every later GC cycle more than the re-parse
// costs.
const maxCachedExprLen = 256

// ParseExprCached is ParseExpr behind a process-wide bounded cache, for
// callers (the constraint solver) that parse the same expression texts on
// every run. The returned tree is shared: treat it as read-only.
func ParseExprCached(src string) (Expr, error) {
	cacheable := len(src) <= maxCachedExprLen
	if cacheable {
		exprCacheMu.Lock()
		e, ok := exprCache[src]
		exprCacheMu.Unlock()
		if ok {
			return e, nil
		}
	}
	e, err := ParseExpr(src)
	if err != nil {
		return nil, err
	}
	if cacheable {
		exprCacheMu.Lock()
		if len(exprCache) < planCacheCap {
			exprCache[src] = e
		}
		exprCacheMu.Unlock()
	}
	return e, nil
}
