package sqlmini

import (
	"testing"

	"coherdb/internal/obs"
)

func TestQueryStatsJoinAndPushdown(t *testing.T) {
	db := newTestDB(t)
	base := db.Stats() // setup INSERTs count toward RowsProduced
	res, err := db.Query(`SELECT D.inmsg FROM D JOIN V ON D.inmsg = V.m WHERE D.dirst = 'SI' AND V.s = 'local'`)
	if err != nil {
		t.Fatal(err)
	}
	st := db.Stats()
	st.RowsProduced -= base.RowsProduced
	// Both equality conjuncts are answered from persistent indexes: the
	// scan reads only the matching bucket rows (2 from D, 2 from V).
	if st.RowsScanned != 4 {
		t.Errorf("RowsScanned = %d, want 4", st.RowsScanned)
	}
	if st.IndexScans != 2 {
		t.Errorf("IndexScans = %d, want 2", st.IndexScans)
	}
	if st.HashJoins != 1 || st.LoopJoins != 0 {
		t.Errorf("joins hash=%d loop=%d, want 1/0", st.HashJoins, st.LoopJoins)
	}
	if st.PushdownHits != 2 {
		t.Errorf("PushdownHits = %d, want 2", st.PushdownHits)
	}
	if st.RowsProduced != int64(res.NumRows()) {
		t.Errorf("RowsProduced = %d, want %d", st.RowsProduced, res.NumRows())
	}
	if st.Queries != 1 {
		t.Errorf("Queries = %d, want 1", st.Queries)
	}
	if st.EvalTime <= 0 {
		t.Errorf("EvalTime = %v, want > 0", st.EvalTime)
	}
}

// Pushdown is an optimization, not a semantics change: a pushable and a
// non-pushable phrasing of the same predicate must agree.
func TestPushdownPreservesSemantics(t *testing.T) {
	db := newTestDB(t)
	pushed, err := db.Query(`SELECT D.inmsg, V.v FROM D JOIN V ON D.inmsg = V.m WHERE D.dirst = 'MESI'`)
	if err != nil {
		t.Fatal(err)
	}
	// CASE over both sides cannot be pushed; same rows must survive.
	residual, err := db.Query(`SELECT D.inmsg, V.v FROM D JOIN V ON D.inmsg = V.m
		WHERE CASE WHEN V.m = D.inmsg THEN D.dirst ELSE NULL END = 'MESI'`)
	if err != nil {
		t.Fatal(err)
	}
	if pushed.NumRows() == 0 {
		t.Fatal("expected at least one matching row")
	}
	eq, err := pushed.EqualRows(residual)
	if err != nil {
		t.Fatal(err)
	}
	if !eq {
		t.Errorf("pushed plan:\n%s\nresidual plan:\n%s", pushed, residual)
	}
}

func TestLoopJoinCounted(t *testing.T) {
	db := newTestDB(t)
	if _, err := db.Query(`SELECT * FROM D JOIN V ON D.inmsg <> V.m`); err != nil {
		t.Fatal(err)
	}
	if st := db.Stats(); st.LoopJoins != 1 || st.HashJoins != 0 {
		t.Errorf("joins hash=%d loop=%d, want 0/1", st.HashJoins, st.LoopJoins)
	}
}

func TestStatsCountStatements(t *testing.T) {
	db := newTestDB(t)
	if err := db.ExecScript(`
		CREATE TABLE s (a, b);
		INSERT INTO s VALUES (1, 2), (3, 4);
		UPDATE s SET b = 5 WHERE a = 1;
		DELETE FROM s WHERE a = 3;
	`); err != nil {
		t.Fatal(err)
	}
	st := db.Stats()
	// newTestDB ran 4 statements; the script above runs 4 more.
	if st.Statements != 8 {
		t.Errorf("Statements = %d, want 8", st.Statements)
	}
	if st.Queries != 0 {
		t.Errorf("Queries = %d, want 0", st.Queries)
	}
	// UPDATE and DELETE each scan the 2-row table.
	if st.RowsScanned != 4 {
		t.Errorf("RowsScanned = %d, want 4", st.RowsScanned)
	}
}

func TestTracerEmitsStatementSpans(t *testing.T) {
	db := newTestDB(t)
	c := obs.NewCollector(16)
	db.SetTracer(c)
	if _, err := db.Query(`SELECT * FROM D WHERE dirst = 'SI'`); err != nil {
		t.Fatal(err)
	}
	spans := c.Spans()
	if len(spans) != 1 {
		t.Fatalf("got %d spans, want 1", len(spans))
	}
	sp := spans[0]
	if sp.Name != "sql.stmt" {
		t.Errorf("span name %q", sp.Name)
	}
	attrs := map[string]string{}
	for _, a := range sp.Attrs {
		attrs[a.Key] = a.Value
	}
	if attrs["kind"] != "SELECT" {
		t.Errorf("kind attr = %q", attrs["kind"])
	}
	if attrs["rows_scanned"] != "2" { // index scan on dirst = 'SI'
		t.Errorf("rows_scanned attr = %q", attrs["rows_scanned"])
	}
	if attrs["index_scans"] != "1" {
		t.Errorf("index_scans attr = %q", attrs["index_scans"])
	}
	if sp.End.Before(sp.Start) {
		t.Error("span never finished")
	}
}
