package sqlmini

import (
	"math/rand"
	"testing"

	"coherdb/internal/rel"
)

// randExpr generates a random expression tree of bounded depth in the
// dialect's grammar.
func randExpr(rng *rand.Rand, depth int) Expr {
	if depth <= 0 {
		switch rng.Intn(4) {
		case 0:
			return Lit{Val: rel.I(int64(rng.Intn(20) - 10))}
		case 1:
			return Lit{Val: rel.S([]string{"readex", "Busy-sd", "it's", "x"}[rng.Intn(4)])}
		case 2:
			return Lit{Val: rel.Null()}
		default:
			return Col{Name: []string{"a", "b", "dirst"}[rng.Intn(3)]}
		}
	}
	sub := func() Expr { return randExpr(rng, depth-1) }
	switch rng.Intn(8) {
	case 0:
		return Binary{Op: []string{"=", "<>", "<", "<=", ">", ">=", "AND", "OR"}[rng.Intn(8)], L: sub(), R: sub()}
	case 1:
		return Unary{Op: "NOT", X: sub()}
	case 2:
		n := 1 + rng.Intn(3)
		set := make([]Expr, n)
		for i := range set {
			set[i] = sub()
		}
		return InList{X: sub(), Set: set, Negate: rng.Intn(2) == 0}
	case 3:
		return IsNull{X: sub(), Negate: rng.Intn(2) == 0}
	case 4:
		return Between{X: sub(), Lo: sub(), Hi: sub(), Negate: rng.Intn(2) == 0}
	case 5:
		return Ternary{Cond: sub(), Then: sub(), Else: sub()}
	case 6:
		n := 1 + rng.Intn(2)
		whens := make([]When, n)
		for i := range whens {
			whens[i] = When{Cond: sub(), Val: sub()}
		}
		var els Expr
		if rng.Intn(2) == 0 {
			els = sub()
		}
		return Case{Whens: whens, Else: els}
	default:
		n := rng.Intn(3)
		args := make([]Expr, n)
		for i := range args {
			args[i] = sub()
		}
		return Call{Name: "f", Args: args}
	}
}

// TestQuickRenderParseFixpoint: for random expression trees, String() must
// parse back, and re-rendering must reach a fixpoint after one round.
func TestQuickRenderParseFixpoint(t *testing.T) {
	rng := rand.New(rand.NewSource(4242))
	for trial := 0; trial < 500; trial++ {
		e := randExpr(rng, 3)
		s1 := e.String()
		p1, err := ParseExpr(s1)
		if err != nil {
			t.Fatalf("trial %d: %q does not reparse: %v", trial, s1, err)
		}
		s2 := p1.String()
		p2, err := ParseExpr(s2)
		if err != nil {
			t.Fatalf("trial %d: second render %q does not reparse: %v", trial, s2, err)
		}
		if s3 := p2.String(); s2 != s3 {
			t.Fatalf("trial %d: render not a fixpoint:\n%q\n%q", trial, s2, s3)
		}
	}
}

// TestQuickRenderedSemanticsStable: evaluating the original tree and the
// reparsed tree under random environments gives identical results.
func TestQuickRenderedSemanticsStable(t *testing.T) {
	rng := rand.New(rand.NewSource(777))
	ev := &Evaluator{Funcs: map[string]Func{
		"f": func(args []rel.Value) (rel.Value, error) {
			if len(args) == 0 {
				return rel.I(7), nil
			}
			return args[0], nil
		},
	}, NullEq: true}
	for trial := 0; trial < 300; trial++ {
		e := randExpr(rng, 3)
		p, err := ParseExpr(e.String())
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		env := MapEnv{
			"a":     rel.I(int64(rng.Intn(5))),
			"b":     rel.S([]string{"x", "readex", ""}[rng.Intn(3)]),
			"dirst": rel.Null(),
		}
		v1, err1 := ev.Eval(e, env)
		v2, err2 := ev.Eval(p, env)
		if (err1 == nil) != (err2 == nil) {
			t.Fatalf("trial %d: error mismatch %v vs %v", trial, err1, err2)
		}
		if err1 == nil && !v1.Equal(v2) {
			t.Fatalf("trial %d: %q evaluates to %v original, %v reparsed", trial, e.String(), v1, v2)
		}
	}
}
