package sqlmini_test

import (
	"testing"

	"coherdb/internal/check"
	"coherdb/internal/pool"
	"coherdb/internal/protocol"
	"coherdb/internal/sqlmini"
)

// TestParallelMatchesSerialControllers is the tentpole's golden
// equivalence gate on the real workload: over all eight generated
// controller tables, every query — full scans, filtered scans, grouping,
// the Fig. 3 readex-rows projection, and the complete ~50-invariant suite
// — must produce byte-identical results under morsel-parallel and serial
// execution, in both NULL dialects. A 4-worker pool with a 4-row morsel
// forces the parallel path even on a single-CPU machine.
func TestParallelMatchesSerialControllers(t *testing.T) {
	if testing.Short() {
		t.Skip("generates all controller tables")
	}
	db := sqlmini.NewDB()
	if _, err := protocol.GenerateAll(db); err != nil {
		t.Fatal(err)
	}

	var queries []string
	for _, tab := range []string{"D", "M", "C", "N", "R", "IO", "INT", "SY"} {
		queries = append(queries,
			`SELECT * FROM `+tab,
			`SELECT * FROM `+tab+` WHERE inmsg IS NOT NULL`,
			`SELECT inmsg, COUNT(*) AS n FROM `+tab+` GROUP BY inmsg`,
		)
	}
	// The Fig. 3 fragment: the readex transaction rows of D.
	queries = append(queries,
		`SELECT inmsg, dirst, dirpv, locmsg, remmsg, memmsg, nxtbdirst, nxtdirpv
		 FROM D WHERE inmsg = 'readex' AND bdirhit = 'miss'`)
	for _, inv := range check.ProtocolSuite().Invariants() {
		queries = append(queries, inv.SQL)
	}

	for _, strict := range []bool{false, true} {
		db.SetStrictNulls(strict)
		for _, q := range queries {
			db.SetPool(nil)
			db.SetWorkers(1)
			db.SetMorselSize(0)
			serial, err := db.Query(q)
			if err != nil {
				t.Fatalf("serial (strict=%v) %q: %v", strict, q, err)
			}
			db.SetPool(pool.New(4))
			db.SetWorkers(4)
			db.SetMorselSize(4)
			par, err := db.Query(q)
			if err != nil {
				t.Fatalf("parallel (strict=%v) %q: %v", strict, q, err)
			}
			if serial.String() != par.String() {
				t.Errorf("parallel result differs (strict=%v) for %q:\nserial:\n%s\nparallel:\n%s",
					strict, q, serial, par)
			}
		}
	}
	if db.Stats().Morsels == 0 {
		t.Fatal("no query took the parallel path: the golden comparison was vacuous")
	}
}
