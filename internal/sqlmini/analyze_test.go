package sqlmini

import (
	"fmt"
	"regexp"
	"strings"
	"testing"

	"coherdb/internal/rel"
)

// Volatile measured fields are normalized before golden comparison: wall
// times and steal counts vary run to run, morsel counts and row counts do
// not.
var (
	azSteals = regexp.MustCompile(`steals=\d+`)
	azPhases = regexp.MustCompile(`build_us=\d+ probe_us=\d+`)
	azArenaB = regexp.MustCompile(`arena_bytes=\d+`)
)

// analyzeLines renders an EXPLAIN ANALYZE table as "op|target|rows|detail"
// lines with volatile fields masked. time_us is checked for presence and
// sanity but not compared.
func analyzeLines(t *testing.T, p *rel.Table) []string {
	t.Helper()
	want := []string{"step", "op", "target", "rows", "time_us", "detail"}
	if got := p.Columns(); strings.Join(got, ",") != strings.Join(want, ",") {
		t.Fatalf("analyze columns %v, want %v", got, want)
	}
	var out []string
	for i := 0; i < p.NumRows(); i++ {
		if s := p.Get(i, "step"); s.Int() != int64(i+1) {
			t.Fatalf("row %d has step %s", i, s)
		}
		if us := p.Get(i, "time_us").Int(); us < 0 {
			t.Fatalf("row %d has negative time_us %d", i, us)
		}
		detail := p.Get(i, "detail").Str()
		detail = azSteals.ReplaceAllString(detail, "steals=S")
		detail = azPhases.ReplaceAllString(detail, "build_us=T probe_us=T")
		detail = azArenaB.ReplaceAllString(detail, "arena_bytes=B")
		out = append(out, fmt.Sprintf("%s|%s|%d|%s",
			p.Get(i, "op").Str(), p.Get(i, "target").Str(),
			p.Get(i, "rows").Int(), detail))
	}
	return out
}

func checkAnalyze(t *testing.T, db *DB, query string, want []string) {
	t.Helper()
	res, err := db.Exec(query)
	if err != nil {
		t.Fatal(err)
	}
	got := analyzeLines(t, res.Table)
	if strings.Join(got, "\n") != strings.Join(want, "\n") {
		t.Errorf("analyze for %s:\n%s\nwant:\n%s",
			query, strings.Join(got, "\n"), strings.Join(want, "\n"))
	}
}

func TestExplainAnalyzeIndexJoin(t *testing.T) {
	db := newTestDB(t)
	// Measured counterpart of TestExplainIndexJoin: the rows column holds
	// rows each operator actually produced, not estimates, and the join's
	// detail carries the arena growth of the emitted rows.
	checkAnalyze(t, db,
		`EXPLAIN ANALYZE SELECT * FROM D JOIN V ON D.inmsg = V.m`,
		[]string{
			`scan|D|6|storage=columnar`,
			`scan|V|5|storage=columnar`,
			`join|V|6|index nested-loop via D(inmsg); arena_bytes=B`,
			`project||6|`,
		})
}

func TestExplainAnalyzeHashJoin(t *testing.T) {
	db := newTestDB(t)
	// Both inputs are index-reduced, so the join falls back to an ad-hoc
	// hash table; the detail records the build side and the phase split.
	checkAnalyze(t, db,
		`EXPLAIN ANALYZE SELECT D.inmsg FROM D JOIN V ON D.inmsg = V.m WHERE D.dirst = 'SI' AND V.d = 'home'`,
		[]string{
			`indexscan|D|2|index(dirst) = ('SI'); storage=columnar`,
			`indexscan|V|3|index(d) = ('home'); storage=columnar`,
			`join|V|2|hash, 1 key(s), build=left; build_us=T probe_us=T; arena_bytes=B`,
			`project||2|`,
		})
}

func TestExplainAnalyzeParallelScan(t *testing.T) {
	db := bigTestDB(t, 64)
	forceParallel(db)
	// 64 rows at an 8-row morsel split into 8 morsels; the morsel count is
	// deterministic, steal counts are not. Both conjuncts vectorize (the
	// range compare through the memoized single-column kernel), so the scan
	// reports the measured selection density and batch count.
	checkAnalyze(t, db,
		`EXPLAIN ANALYZE SELECT id, val FROM T WHERE val > 50 AND flag IS NOT NULL`,
		[]string{
			`scan|T|23|pushdown: (val > 50) AND (flag IS NOT NULL); eval=vectorized; storage=columnar; sel_density=0.36 vec_batches=8; morsels=8 steals=S`,
			`project||23|`,
		})
}

func TestExplainAnalyzeGroupSortLimit(t *testing.T) {
	db := bigTestDB(t, 64)
	checkAnalyze(t, db,
		`EXPLAIN ANALYZE SELECT grp, COUNT(*) AS n FROM T GROUP BY grp ORDER BY grp LIMIT 3`,
		[]string{
			`scan|T|64|storage=columnar`,
			`group||7|1 key(s)`,
			`sort||7|1 key(s)`,
			`limit||3|LIMIT 3`,
		})
}

func TestExplainAnalyzeExecutes(t *testing.T) {
	db := newTestDB(t)
	if _, err := db.Exec(`EXPLAIN ANALYZE SELECT * FROM D JOIN V ON D.inmsg = V.m`); err != nil {
		t.Fatal(err)
	}
	// Unlike plain EXPLAIN (see TestExplainDoesNotExecute), ANALYZE runs
	// the query for real.
	st := db.Stats()
	if st.RowsScanned == 0 {
		t.Error("EXPLAIN ANALYZE scanned 0 rows; want > 0")
	}
	if st.IndexJoins != 1 {
		t.Errorf("EXPLAIN ANALYZE ran %d index joins, want 1", st.IndexJoins)
	}
}

func TestExplainAnalyzeMatchesSerialResults(t *testing.T) {
	// Turning analyze on must not change what the underlying query
	// produces: run each parallel query with and without instrumentation
	// and compare the analyze row counts against the real result sizes.
	for _, q := range parallelQueries {
		db := bigTestDB(t, 96)
		forceParallel(db)
		res, err := db.Query(q)
		if err != nil {
			t.Fatal(err)
		}
		plan, err := db.Exec(`EXPLAIN ANALYZE ` + q)
		if err != nil {
			t.Fatal(err)
		}
		last := plan.Table.NumRows() - 1
		if got := plan.Table.Get(last, "rows").Int(); got != int64(res.NumRows()) {
			t.Errorf("%s: final analyze op reports %d rows, query produced %d",
				q, got, res.NumRows())
		}
	}
}
