package sqlmini

import (
	"fmt"
	"sort"
	"strings"

	"coherdb/internal/rel"
)

// Session is one client's view of a DB: the shared MVCC catalog plus a
// private overlay of session-local tables. Every statement a session runs
// pins one published epoch, so concurrent sessions read consistent
// snapshots without blocking the writer; DML against shared tables goes
// through the DB's single-writer epoch-publish path, while CREATE/DROP
// and DML against shadowed names stay entirely inside the overlay.
//
// Sessions carry their own prepared statements, an optional NULL-dialect
// pin, and delta Revision brackets (BeginRevision) over their view, which
// is what per-session -incremental re-checking in the server is built on.
//
// A Session is owned by one client: its methods must not be called
// concurrently with each other (the server runs one command at a time per
// session). Different sessions are fully concurrent.
type Session struct {
	db *DB
	id uint64
	// overlay holds session-local tables, shadowing shared names.
	overlay map[string]*rel.Table
	// gen counts overlay DDL (CREATE/DROP); it splits the session's
	// plan-cache keys from the shared ones whenever the overlay is
	// non-empty (see sessionFP).
	gen uint64
	// strict, when non-nil, pins the session's NULL dialect independently
	// of the DB default.
	strict *bool
}

// NewSession opens a session over the DB's shared catalog.
func (db *DB) NewSession() *Session {
	db.sessMu.Lock()
	db.nextSession++
	id := db.nextSession
	db.sessMu.Unlock()
	return &Session{db: db, id: id, overlay: make(map[string]*rel.Table)}
}

// ID returns the session's number, used for obs attribution (QueryLog
// records and sql.stmt spans carry it).
func (s *Session) ID() uint64 { return s.id }

// DB returns the underlying shared database.
func (s *Session) DB() *DB { return s.db }

// SetStrictNulls pins the session's NULL dialect (true = ANSI strict),
// overriding the DB default for this session's statements only.
func (s *Session) SetStrictNulls(strict bool) { s.strict = &strict }

// Close drops the session's overlay tables. The session must not be used
// afterwards.
func (s *Session) Close() {
	s.overlay = nil
}

// Exec executes a single statement in the session, parsing it through the
// shared plan cache under the session's fingerprint.
func (s *Session) Exec(src string) (*Result, error) {
	entry, hit, err := s.db.lookupPlan(src, s.db.planFP(s))
	if err != nil {
		return nil, err
	}
	pc := "miss"
	if hit {
		pc = "hit"
	}
	return s.db.execute(entry.stmt, execOpts{entry: entry, src: strings.TrimSpace(src), planCache: pc, sess: s})
}

// Query executes a SELECT and returns the result table.
func (s *Session) Query(src string) (*rel.Table, error) {
	res, err := s.Exec(src)
	if err != nil {
		return nil, err
	}
	if res.Table == nil {
		return nil, errNotQuery(strings.TrimSpace(src))
	}
	return res.Table, nil
}

// QueryEmpty executes a SELECT and reports whether its result is empty.
func (s *Session) QueryEmpty(src string) (bool, error) {
	t, err := s.Query(src)
	if err != nil {
		return false, err
	}
	return t.Empty(), nil
}

// Prepare parses src (through the shared plan cache) and returns a handle
// bound to this session: executions resolve names through the overlay and
// carry the session's dialect pin and obs attribution.
func (s *Session) Prepare(src string) (*Prepared, error) {
	entry, _, err := s.db.lookupPlan(src, s.db.planFP(s))
	if err != nil {
		return nil, err
	}
	return &Prepared{db: s.db, sess: s, src: strings.TrimSpace(src), entry: entry}, nil
}

// shadows reports whether the session overlay holds name.
func (s *Session) shadows(name string) bool {
	_, ok := s.overlay[name]
	return ok
}

// Table returns the named table as the session sees it right now: the
// overlay shadow if present, else the current shared epoch's table.
func (s *Session) Table(name string) (*rel.Table, bool) {
	if t, ok := s.overlay[name]; ok {
		return t, true
	}
	return s.db.Table(name)
}

// MustTable returns the named table or panics; for names known statically.
func (s *Session) MustTable(name string) *rel.Table {
	t, ok := s.Table(name)
	if !ok {
		panic(fmt.Sprintf("sqlmini: no such table %q", name))
	}
	return t
}

// Names returns the sorted table names of the session's view (overlay
// union shared).
func (s *Session) Names() []string {
	cat := s.db.Catalog()
	out := make([]string, 0, cat.Len()+len(s.overlay))
	out = append(out, cat.Names()...)
	for n := range s.overlay {
		if _, dup := cat.Table(n); !dup {
			out = append(out, n)
		}
	}
	sort.Strings(out)
	return out
}

// BeginRevision opens a delta bracket over the session's view: shared
// tables and overlay shadows alike are baselined, so a later Commit
// reports exactly what changed — this session's local edits and other
// sessions' published epochs both — which is what the per-session
// incremental re-check loop feeds to check.Suite.RunDelta.
func (s *Session) BeginRevision() *Revision {
	return beginRevision(s)
}
