package sqlmini_test

import (
	"testing"

	"coherdb/internal/check"
	"coherdb/internal/pool"
	"coherdb/internal/protocol"
	"coherdb/internal/sqlmini"
)

// TestVectorizedMatchesScalarControllers is the vectorized executor's
// golden equivalence gate on the real workload, the vectorized counterpart
// of TestParallelMatchesSerialControllers: over all eight generated
// controller tables, every query — full scans, filtered scans, grouping,
// the Fig. 3 readex-rows projection, and the complete ~50-invariant suite
// — must produce byte-identical results with column-at-a-time evaluation
// on and off, in both NULL dialects, serial and under a forced-parallel
// morsel split.
func TestVectorizedMatchesScalarControllers(t *testing.T) {
	if testing.Short() {
		t.Skip("generates all controller tables")
	}
	db := sqlmini.NewDB()
	if _, err := protocol.GenerateAll(db); err != nil {
		t.Fatal(err)
	}

	var queries []string
	for _, tab := range []string{"D", "M", "C", "N", "R", "IO", "INT", "SY"} {
		queries = append(queries,
			`SELECT * FROM `+tab,
			`SELECT * FROM `+tab+` WHERE inmsg IS NOT NULL`,
			`SELECT * FROM `+tab+` WHERE inmsg <> 'readex' AND inmsg IS NOT NULL`,
			`SELECT inmsg, COUNT(*) AS n FROM `+tab+` GROUP BY inmsg`,
		)
	}
	// The Fig. 3 fragment: the readex transaction rows of D.
	queries = append(queries,
		`SELECT inmsg, dirst, dirpv, locmsg, remmsg, memmsg, nxtbdirst, nxtdirpv
		 FROM D WHERE inmsg = 'readex' AND bdirhit = 'miss'`)
	for _, inv := range check.ProtocolSuite().Invariants() {
		queries = append(queries, inv.SQL)
	}

	for _, parallel := range []bool{false, true} {
		if parallel {
			db.SetPool(pool.New(4))
			db.SetWorkers(4)
			db.SetMorselSize(4)
		} else {
			db.SetPool(nil)
			db.SetWorkers(1)
			db.SetMorselSize(0)
		}
		for _, strict := range []bool{false, true} {
			db.SetStrictNulls(strict)
			for _, q := range queries {
				db.SetVectorized(false)
				scalar, err := db.Query(q)
				if err != nil {
					t.Fatalf("scalar (strict=%v, parallel=%v) %q: %v", strict, parallel, q, err)
				}
				db.SetVectorized(true)
				vec, err := db.Query(q)
				if err != nil {
					t.Fatalf("vectorized (strict=%v, parallel=%v) %q: %v", strict, parallel, q, err)
				}
				if scalar.String() != vec.String() {
					t.Errorf("vectorized result differs (strict=%v, parallel=%v) for %q:\nscalar:\n%s\nvectorized:\n%s",
						strict, parallel, q, scalar, vec)
				}
			}
		}
	}
	if db.Stats().VecBatches == 0 {
		t.Fatal("no query took the vectorized path: the golden comparison was vacuous")
	}
}
