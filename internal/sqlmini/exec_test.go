package sqlmini

import (
	"errors"
	"strings"
	"testing"

	"coherdb/internal/rel"
)

// newTestDB builds a DB with a small directory table and the V channel
// assignment table, mirroring the paper's running example.
func newTestDB(t *testing.T) *DB {
	t.Helper()
	db := NewDB()
	if err := db.ExecScript(`
		CREATE TABLE D (inmsg, dirst, dirpv, remmsg, nxtdirst);
		INSERT INTO D VALUES
			('readex', 'I',      'zero', NULL,   'Busy-d'),
			('readex', 'SI',     'one',  'sinv', 'Busy-sd'),
			('readex', 'SI',     'gone', 'sinv', 'Busy-sd'),
			('data',   'Busy-d', 'zero', NULL,   'MESI'),
			('idone',  'Busy-sd','zero', NULL,   'Busy-d'),
			('wb',     'MESI',   'one',  NULL,   'Busy-w');
		CREATE TABLE V (m, s, d, v);
		INSERT INTO V VALUES
			('readex', 'local',  'home', 'VC0'),
			('wb',     'local',  'home', 'VC0'),
			('sinv',   'home',   'remote', 'VC1'),
			('idone',  'remote', 'home', 'VC2'),
			('data',   'home',   'local', 'VC3');
	`); err != nil {
		t.Fatal(err)
	}
	return db
}

func TestExecSelectWhere(t *testing.T) {
	db := newTestDB(t)
	res, err := db.Query(`SELECT inmsg, nxtdirst FROM D WHERE dirst = 'SI'`)
	if err != nil {
		t.Fatal(err)
	}
	if res.NumRows() != 2 || res.NumCols() != 2 {
		t.Fatalf("result %dx%d\n%s", res.NumRows(), res.NumCols(), res)
	}
}

func TestExecSelectStar(t *testing.T) {
	db := newTestDB(t)
	res, err := db.Query(`SELECT * FROM D`)
	if err != nil {
		t.Fatal(err)
	}
	if res.NumCols() != 5 || res.NumRows() != 6 {
		t.Fatalf("star result %dx%d", res.NumRows(), res.NumCols())
	}
}

func TestExecDistinct(t *testing.T) {
	db := newTestDB(t)
	res, err := db.Query(`SELECT DISTINCT inmsg FROM D`)
	if err != nil {
		t.Fatal(err)
	}
	if res.NumRows() != 4 { // readex, data, idone, wb
		t.Fatalf("distinct rows = %d\n%s", res.NumRows(), res)
	}
}

func TestExecOrderByAndLimit(t *testing.T) {
	db := newTestDB(t)
	res, err := db.Query(`SELECT inmsg FROM D ORDER BY inmsg DESC LIMIT 2`)
	if err != nil {
		t.Fatal(err)
	}
	if res.NumRows() != 2 || !res.Get(0, "inmsg").Equal(rel.S("wb")) {
		t.Fatalf("order/limit wrong:\n%s", res)
	}
	// ORDER BY an output alias.
	res, err = db.Query(`SELECT inmsg AS m FROM D ORDER BY m LIMIT 1`)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Get(0, "m").Equal(rel.S("data")) {
		t.Fatalf("alias order wrong:\n%s", res)
	}
}

func TestExecJoinHashPath(t *testing.T) {
	db := newTestDB(t)
	res, err := db.Query(`SELECT D.inmsg, V.v FROM D JOIN V ON D.inmsg = V.m WHERE D.dirst = 'SI'`)
	if err != nil {
		t.Fatal(err)
	}
	if res.NumRows() != 2 {
		t.Fatalf("join rows = %d\n%s", res.NumRows(), res)
	}
	if !res.Get(0, "v").Equal(rel.S("VC0")) {
		t.Fatalf("join value wrong:\n%s", res)
	}
}

func TestExecJoinNestedLoopPath(t *testing.T) {
	db := newTestDB(t)
	// Non-equi ON forces the nested-loop path.
	res, err := db.Query(`SELECT D.inmsg, V.m FROM D JOIN V ON D.inmsg <> V.m WHERE D.inmsg = 'data'`)
	if err != nil {
		t.Fatal(err)
	}
	if res.NumRows() != 4 { // data joins the 4 other messages
		t.Fatalf("rows = %d\n%s", res.NumRows(), res)
	}
}

func TestExecJoinWithAliasesSelfJoin(t *testing.T) {
	db := newTestDB(t)
	// Self-join of V: pairs where the destination of one assignment is the
	// source of another — the composition step of the deadlock analysis.
	res, err := db.Query(`SELECT a.m, b.m FROM V a JOIN V b ON a.d = b.s`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Empty() {
		t.Fatal("self-join found nothing")
	}
	cols := res.Columns()
	if cols[0] == cols[1] {
		t.Fatalf("duplicate output columns not disambiguated: %v", cols)
	}
}

func TestExecCrossFromList(t *testing.T) {
	db := newTestDB(t)
	res, err := db.Query(`SELECT COUNT(*) FROM D, V`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Get(0, "count").Int() != 30 {
		t.Fatalf("cross count = %v", res.Get(0, "count"))
	}
}

func TestExecCountStar(t *testing.T) {
	db := newTestDB(t)
	res, err := db.Query(`SELECT COUNT(*) AS n FROM D WHERE inmsg = 'readex'`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Get(0, "n").Int() != 3 {
		t.Fatalf("count = %v", res.Get(0, "n"))
	}
}

func TestExecUnion(t *testing.T) {
	db := newTestDB(t)
	res, err := db.Query(`SELECT inmsg FROM D WHERE dirst = 'I' UNION SELECT inmsg FROM D WHERE dirst = 'SI'`)
	if err != nil {
		t.Fatal(err)
	}
	if res.NumRows() != 1 { // readex appears in both; UNION dedups
		t.Fatalf("union rows = %d\n%s", res.NumRows(), res)
	}
	res, err = db.Query(`SELECT inmsg FROM D WHERE dirst = 'I' UNION ALL SELECT inmsg FROM D WHERE dirst = 'SI'`)
	if err != nil {
		t.Fatal(err)
	}
	if res.NumRows() != 3 {
		t.Fatalf("union all rows = %d", res.NumRows())
	}
	if _, err := db.Query(`SELECT inmsg FROM D UNION SELECT m, s FROM V`); !errors.Is(err, rel.ErrSchema) {
		t.Fatalf("mismatched union err = %v", err)
	}
}

func TestExecCreateTableAsSelect(t *testing.T) {
	db := newTestDB(t)
	if _, err := db.Exec(`CREATE TABLE busyrows AS SELECT inmsg, dirst FROM D WHERE dirst IN ('Busy-d', 'Busy-sd')`); err != nil {
		t.Fatal(err)
	}
	bt := db.MustTable("busyrows")
	if bt.NumRows() != 2 {
		t.Fatalf("rows = %d", bt.NumRows())
	}
	if _, err := db.Exec(`CREATE TABLE busyrows (x)`); !errors.Is(err, ErrTableExist) {
		t.Fatalf("dup create err = %v", err)
	}
}

func TestExecInsertWithColumnSubset(t *testing.T) {
	db := newTestDB(t)
	if _, err := db.Exec(`INSERT INTO D (inmsg, dirst) VALUES ('retry', 'I')`); err != nil {
		t.Fatal(err)
	}
	d := db.MustTable("D")
	last := d.NumRows() - 1
	if !d.Get(last, "inmsg").Equal(rel.S("retry")) || !d.Get(last, "dirpv").IsNull() {
		t.Fatal("subset insert wrong")
	}
	if _, err := db.Exec(`INSERT INTO D (ghost) VALUES ('x')`); !errors.Is(err, ErrUnknownColumn) {
		t.Fatalf("err = %v", err)
	}
	if _, err := db.Exec(`INSERT INTO D (inmsg, dirst) VALUES ('only-one')`); !errors.Is(err, rel.ErrArity) {
		t.Fatalf("err = %v", err)
	}
}

func TestExecDelete(t *testing.T) {
	db := newTestDB(t)
	res, err := db.Exec(`DELETE FROM V WHERE v = 'VC0'`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Affected != 2 || db.MustTable("V").NumRows() != 3 {
		t.Fatalf("affected = %d", res.Affected)
	}
	res, err = db.Exec(`DELETE FROM V`)
	if err != nil || res.Affected != 3 {
		t.Fatalf("delete all: %v, %d", err, res.Affected)
	}
}

func TestExecUpdate(t *testing.T) {
	db := newTestDB(t)
	res, err := db.Exec(`UPDATE V SET v = 'VC4' WHERE m = 'idone'`)
	if err != nil || res.Affected != 1 {
		t.Fatalf("update: %v, %+v", err, res)
	}
	out, err := db.Query(`SELECT v FROM V WHERE m = 'idone'`)
	if err != nil || !out.Get(0, "v").Equal(rel.S("VC4")) {
		t.Fatalf("update lost: %v\n%s", err, out)
	}
	// Simultaneous assignment semantics.
	if err := db.ExecScript(`CREATE TABLE p (a, b); INSERT INTO p VALUES (1, 2)`); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Exec(`UPDATE p SET a = b, b = a`); err != nil {
		t.Fatal(err)
	}
	pt := db.MustTable("p")
	if pt.Get(0, "a").Int() != 2 || pt.Get(0, "b").Int() != 1 {
		t.Fatalf("swap failed: %s", pt)
	}
}

func TestExecDropTable(t *testing.T) {
	db := newTestDB(t)
	if _, err := db.Exec(`DROP TABLE V`); err != nil {
		t.Fatal(err)
	}
	if _, ok := db.Table("V"); ok {
		t.Fatal("V still present")
	}
	if _, err := db.Exec(`DROP TABLE V`); !errors.Is(err, ErrNoTable) {
		t.Fatalf("err = %v", err)
	}
	if _, err := db.Exec(`DROP TABLE IF EXISTS V`); err != nil {
		t.Fatalf("IF EXISTS err = %v", err)
	}
}

func TestExecQueryEmptyIdiom(t *testing.T) {
	db := newTestDB(t)
	// The invariant idiom: "[Select ... where <violation>] = empty".
	empty, err := db.QueryEmpty(`SELECT dirst, dirpv FROM D WHERE dirst = 'MESI' AND NOT dirpv = 'one'`)
	if err != nil {
		t.Fatal(err)
	}
	if !empty {
		t.Fatal("expected no violations in the seed table")
	}
	empty, err = db.QueryEmpty(`SELECT inmsg FROM D WHERE dirst = 'SI'`)
	if err != nil || empty {
		t.Fatalf("expected non-empty: %v %v", empty, err)
	}
}

func TestExecRegisteredFunction(t *testing.T) {
	db := newTestDB(t)
	db.Register("isrequest", func(args []rel.Value) (rel.Value, error) {
		m := args[0].Str()
		return rel.B(m == "readex" || m == "wb"), nil
	})
	res, err := db.Query(`SELECT DISTINCT inmsg FROM D WHERE isrequest(inmsg)`)
	if err != nil {
		t.Fatal(err)
	}
	if res.NumRows() != 2 {
		t.Fatalf("rows = %d\n%s", res.NumRows(), res)
	}
}

func TestExecNoSuchTable(t *testing.T) {
	db := NewDB()
	for _, src := range []string{
		`SELECT * FROM ghost`,
		`INSERT INTO ghost VALUES (1)`,
		`DELETE FROM ghost`,
		`UPDATE ghost SET a = 1`,
	} {
		if _, err := db.Exec(src); !errors.Is(err, ErrNoTable) {
			t.Errorf("%q err = %v, want ErrNoTable", src, err)
		}
	}
}

func TestExecQueryOnNonQuery(t *testing.T) {
	db := newTestDB(t)
	if _, err := db.Query(`DELETE FROM V`); err == nil {
		t.Fatal("Query on DELETE must error")
	}
}

func TestExecFromlessSelect(t *testing.T) {
	db := NewDB()
	res, err := db.Query(`SELECT 1 AS one, 'x' AS s`)
	if err != nil {
		t.Fatal(err)
	}
	if res.NumRows() != 1 || res.Get(0, "one").Int() != 1 || !res.Get(0, "s").Equal(rel.S("x")) {
		t.Fatalf("fromless select:\n%s", res)
	}
}

func TestExecAmbiguousColumnIsError(t *testing.T) {
	db := newTestDB(t)
	if err := db.ExecScript(`CREATE TABLE W (m, q); INSERT INTO W VALUES ('readex', 'VC9')`); err != nil {
		t.Fatal(err)
	}
	// m exists in both V and W: unqualified reference must fail.
	if _, err := db.Query(`SELECT m FROM V, W`); err == nil {
		t.Fatal("ambiguous column must error")
	}
	// Qualified reference is fine.
	if _, err := db.Query(`SELECT V.m FROM V, W`); err != nil {
		t.Fatal(err)
	}
}

func TestExecStarQualifiesAmbiguous(t *testing.T) {
	db := newTestDB(t)
	if err := db.ExecScript(`CREATE TABLE W (m); INSERT INTO W VALUES ('x')`); err != nil {
		t.Fatal(err)
	}
	res, err := db.Query(`SELECT * FROM V, W`)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, c := range res.Columns() {
		if strings.Contains(c, ".") {
			found = true
		}
	}
	if !found {
		t.Fatalf("ambiguous star columns not qualified: %v", res.Columns())
	}
}

func TestExecScriptStopsOnError(t *testing.T) {
	db := NewDB()
	err := db.ExecScript(`CREATE TABLE a (x); SELECT * FROM nope; CREATE TABLE b (y)`)
	if err == nil {
		t.Fatal("script must fail")
	}
	if _, ok := db.Table("b"); ok {
		t.Fatal("statements after error must not run")
	}
}

func TestDBNames(t *testing.T) {
	db := newTestDB(t)
	names := db.Names()
	if len(names) != 2 || names[0] != "D" || names[1] != "V" {
		t.Fatalf("names = %v", names)
	}
}

func TestMustTablePanics(t *testing.T) {
	db := NewDB()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	db.MustTable("ghost")
}

func TestBuiltinFunctions(t *testing.T) {
	db := NewDB()
	res, err := db.Query(`SELECT typename('x') AS t1, coalesce2(NULL, 'y') AS t2`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Get(0, "t1").Str() != "string" || res.Get(0, "t2").Str() != "y" {
		t.Fatalf("builtins:\n%s", res)
	}
}

func TestStrictNullsToggle(t *testing.T) {
	db := newTestDB(t)
	db.SetStrictNulls(true)
	// remmsg = NULL never matches under ANSI semantics.
	res, err := db.Query(`SELECT inmsg FROM D WHERE remmsg = NULL`)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Empty() {
		t.Fatalf("strict: rows = %d", res.NumRows())
	}
	db.SetStrictNulls(false)
	res, err = db.Query(`SELECT inmsg FROM D WHERE remmsg = NULL`)
	if err != nil {
		t.Fatal(err)
	}
	if res.NumRows() != 4 {
		t.Fatalf("dialect: rows = %d\n%s", res.NumRows(), res)
	}
}
