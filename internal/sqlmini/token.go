// Package sqlmini implements the SQL dialect used by the coherdb
// reproduction: a lexer, parser, three-valued expression evaluator and
// statement executor over the relational engine in package rel.
//
// The dialect covers what the paper uses: CREATE TABLE (optionally AS
// SELECT), DROP TABLE, INSERT, DELETE, UPDATE, and SELECT with DISTINCT,
// multi-table FROM, JOIN ... ON, WHERE, ORDER BY, LIMIT and UNION [ALL],
// plus EXPLAIN SELECT, which reports the query plan (scans, pushed-down
// predicates, join strategy, estimated row counts) without executing.
// Expressions include =, <>, comparisons, IN, BETWEEN, IS [NOT] NULL,
// AND/OR/NOT, CASE, registered Go functions (e.g. isrequest), and the
// paper's ternary constraint form "cond ? then : else".
package sqlmini

import "fmt"

// TokKind is the lexical class of a token.
type TokKind uint8

// Token kinds.
const (
	TokEOF TokKind = iota
	TokIdent
	TokKeyword
	TokString
	TokNumber
	TokSymbol
)

func (k TokKind) String() string {
	switch k {
	case TokEOF:
		return "EOF"
	case TokIdent:
		return "identifier"
	case TokKeyword:
		return "keyword"
	case TokString:
		return "string"
	case TokNumber:
		return "number"
	case TokSymbol:
		return "symbol"
	}
	return "token"
}

// Token is a single lexical token. For keywords, Text is upper-cased; for
// identifiers and strings it is the literal spelling.
type Token struct {
	Kind TokKind
	Text string
	Pos  int // byte offset in the input, for error messages
}

func (t Token) String() string {
	if t.Kind == TokEOF {
		return "end of input"
	}
	return fmt.Sprintf("%s %q", t.Kind, t.Text)
}

// keywords recognized by the lexer. Identifiers matching these
// (case-insensitively) become TokKeyword with upper-cased text.
var keywords = map[string]bool{
	"SELECT": true, "DISTINCT": true, "FROM": true, "WHERE": true,
	"AND": true, "OR": true, "NOT": true, "IN": true, "IS": true,
	"NULL": true, "TRUE": true, "FALSE": true, "AS": true,
	"CREATE": true, "TABLE": true, "DROP": true, "INSERT": true,
	"INTO": true, "VALUES": true, "DELETE": true, "UPDATE": true,
	"SET": true, "JOIN": true, "ON": true, "ORDER": true, "BY": true,
	"LIMIT": true, "UNION": true, "ALL": true, "CASE": true,
	"WHEN": true, "THEN": true, "ELSE": true, "END": true,
	"BETWEEN": true, "ASC": true, "DESC": true, "IF": true,
	"EXISTS": true, "COUNT": true, "GROUP": true, "HAVING": true,
	"MIN": true, "MAX": true, "EXPLAIN": true, "ANALYZE": true,
}
