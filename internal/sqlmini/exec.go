package sqlmini

import (
	"fmt"
	"sort"

	"coherdb/internal/rel"
)

// frame is the working relation during SELECT execution: a list of columns,
// each tagged with the alias of the table it came from, and the joined rows.
type frame struct {
	aliases []string
	names   []string
	rows    [][]rel.Value
}

func frameOf(t *rel.Table, alias string) *frame {
	if alias == "" {
		alias = t.Name()
	}
	f := &frame{}
	for _, c := range t.Columns() {
		f.aliases = append(f.aliases, alias)
		f.names = append(f.names, c)
	}
	f.rows = make([][]rel.Value, t.NumRows())
	for i := 0; i < t.NumRows(); i++ {
		f.rows[i] = t.RawRow(i)
	}
	return f
}

// resolve finds the column position for a (possibly qualified) name.
// It returns -1 when absent or ambiguous.
func (f *frame) resolve(q, name string) int {
	found := -1
	for i := range f.names {
		if f.names[i] != name {
			continue
		}
		if q != "" {
			if f.aliases[i] == q {
				return i
			}
			continue
		}
		if found >= 0 {
			return -1 // ambiguous unqualified reference
		}
		found = i
	}
	return found
}

func (f *frame) cross(g *frame) *frame {
	out := &frame{
		aliases: append(append([]string(nil), f.aliases...), g.aliases...),
		names:   append(append([]string(nil), f.names...), g.names...),
	}
	out.rows = make([][]rel.Value, 0, len(f.rows)*len(g.rows))
	for _, a := range f.rows {
		for _, b := range g.rows {
			row := make([]rel.Value, 0, len(a)+len(b))
			row = append(row, a...)
			row = append(row, b...)
			out.rows = append(out.rows, row)
		}
	}
	return out
}

// frameEnv evaluates expressions against one row of a frame.
type frameEnv struct {
	f   *frame
	row []rel.Value
}

func (e frameEnv) Lookup(q, name string) (rel.Value, bool) {
	i := e.f.resolve(q, name)
	if i < 0 {
		return rel.Null(), false
	}
	return e.row[i], true
}

func (db *DB) execSelect(s *SelectStmt) (*rel.Table, error) {
	out, err := db.execSelectOne(s)
	if err != nil {
		return nil, err
	}
	for u, all := s.Union, s.UnionAll; u != nil; u, all = u.Union, u.UnionAll {
		// Each branch's own Union chain is cleared before execution to
		// avoid double-processing; we walk the chain here instead.
		branch := *u
		branch.Union = nil
		bt, err := db.execSelectOne(&branch)
		if err != nil {
			return nil, err
		}
		if bt.NumCols() != out.NumCols() {
			return nil, fmt.Errorf("%w: UNION branches have %d and %d columns", rel.ErrSchema, out.NumCols(), bt.NumCols())
		}
		renamed, err := bt.Rename(renameTo(bt.Columns(), out.Columns()))
		if err != nil {
			return nil, err
		}
		if all {
			out, err = out.Union(renamed)
		} else {
			out, err = out.UnionDistinct(renamed)
		}
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

func renameTo(from, to []string) map[string]string {
	m := make(map[string]string, len(from))
	for i := range from {
		m[from[i]] = to[i]
	}
	return m
}

func (db *DB) execSelectOne(s *SelectStmt) (*rel.Table, error) {
	// WHERE conjuncts that reference a single table are pushed below the
	// joins and applied while scanning that table (predicate pushdown);
	// the residue is evaluated against the joined frame as usual.
	where := s.Where
	var pushed map[int][]Expr
	if where != nil && len(s.From)+len(s.Joins) > 1 {
		var err error
		pushed, where, err = db.planPushdown(s)
		if err != nil {
			return nil, err
		}
	}
	applyPushed := func(g *frame, si int) (*frame, error) {
		cs := pushed[si]
		if len(cs) == 0 {
			return g, nil
		}
		db.cur.addPushdown(len(cs))
		return db.filterFrame(g, cs)
	}
	// FROM clause: build the working frame.
	var f *frame
	if len(s.From) == 0 {
		f = &frame{rows: [][]rel.Value{{}}} // one empty row for FROM-less SELECT
	}
	si := 0
	for _, ref := range s.From {
		t, ok := db.tables[ref.Name]
		if !ok {
			return nil, fmt.Errorf("%w: %q", ErrNoTable, ref.Name)
		}
		db.cur.addScanned(t.NumRows())
		g, err := applyPushed(frameOf(t, ref.Alias), si)
		if err != nil {
			return nil, err
		}
		si++
		if f == nil {
			f = g
		} else {
			f = f.cross(g)
		}
	}
	for _, j := range s.Joins {
		t, ok := db.tables[j.Ref.Name]
		if !ok {
			return nil, fmt.Errorf("%w: %q", ErrNoTable, j.Ref.Name)
		}
		db.cur.addScanned(t.NumRows())
		g, err := applyPushed(frameOf(t, j.Ref.Alias), si)
		if err != nil {
			return nil, err
		}
		si++
		joined, err := db.join(f, g, j.On)
		if err != nil {
			return nil, err
		}
		f = joined
	}
	// WHERE (residue after pushdown).
	if where != nil {
		filtered, err := db.filterFrame(f, splitAnd(where))
		if err != nil {
			return nil, err
		}
		f = filtered
	}
	// GROUP BY aggregation; aggregates without GROUP BY treat the whole
	// input as one group.
	if len(s.GroupBy) > 0 || (hasAggregates(s.Items) && !isCountStar(s.Items)) {
		return db.execGrouped(s, f)
	}
	// COUNT(*) aggregate.
	if isCountStar(s.Items) {
		name := "count"
		if s.Items[0].Alias != "" {
			name = s.Items[0].Alias
		}
		t := rel.MustNewTable("result", name)
		t.MustInsert(rel.I(int64(len(f.rows))))
		return t, nil
	}
	// Projection list.
	cols, exprs, err := db.projection(s.Items, f)
	if err != nil {
		return nil, err
	}
	type outRow struct {
		vals []rel.Value
		keys []rel.Value
	}
	rows := make([]outRow, 0, len(f.rows))
	for _, row := range f.rows {
		env := frameEnv{f: f, row: row}
		vals := make([]rel.Value, len(exprs))
		for i, e := range exprs {
			v, err := db.eval.Eval(e, env)
			if err != nil {
				return nil, err
			}
			vals[i] = v
		}
		var keys []rel.Value
		if len(s.OrderBy) > 0 {
			keys = make([]rel.Value, len(s.OrderBy))
			for i, k := range s.OrderBy {
				v, err := db.eval.Eval(k.Expr, orderEnv{frame: env, cols: cols, vals: vals})
				if err != nil {
					return nil, err
				}
				keys[i] = v
			}
		}
		rows = append(rows, outRow{vals: vals, keys: keys})
	}
	if s.Distinct {
		seen := make(map[string]struct{}, len(rows))
		kept := rows[:0]
		for _, r := range rows {
			k := rowKeyOf(r.vals)
			if _, dup := seen[k]; dup {
				continue
			}
			seen[k] = struct{}{}
			kept = append(kept, r)
		}
		rows = kept
	}
	if len(s.OrderBy) > 0 {
		sort.SliceStable(rows, func(a, b int) bool {
			for i, k := range s.OrderBy {
				c := rows[a].keys[i].Compare(rows[b].keys[i])
				if k.Desc {
					c = -c
				}
				if c != 0 {
					return c < 0
				}
			}
			return false
		})
	}
	if s.Limit >= 0 && len(rows) > s.Limit {
		rows = rows[:s.Limit]
	}
	out, err := rel.NewTable("result", cols...)
	if err != nil {
		return nil, err
	}
	for _, r := range rows {
		if err := out.InsertRow(r.vals); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// execGrouped evaluates a GROUP BY query: rows are bucketed by the group
// expressions; each bucket yields one output row, with COUNT(*) bound to
// the bucket size for the select list and the HAVING filter.
func (db *DB) execGrouped(s *SelectStmt, f *frame) (*rel.Table, error) {
	type group struct {
		rows [][]rel.Value
	}
	var order []string
	groups := map[string]*group{}
	for _, row := range f.rows {
		env := frameEnv{f: f, row: row}
		key := ""
		for _, ge := range s.GroupBy {
			v, err := db.eval.Eval(ge, env)
			if err != nil {
				return nil, err
			}
			key += v.Key() + "\x1f"
		}
		g, ok := groups[key]
		if !ok {
			g = &group{}
			groups[key] = g
			order = append(order, key)
		}
		g.rows = append(g.rows, row)
	}
	cols, exprs, err := db.projection(s.Items, f)
	if err != nil {
		return nil, err
	}
	out, err := rel.NewTable("result", cols...)
	if err != nil {
		return nil, err
	}
	for _, key := range order {
		g := groups[key]
		env := frameEnv{f: f, row: g.rows[0]}
		if s.Having != nil {
			h, err := db.rewriteAggs(s.Having, f, g.rows)
			if err != nil {
				return nil, err
			}
			keep, err := db.eval.True(h, env)
			if err != nil {
				return nil, err
			}
			if !keep {
				continue
			}
		}
		vals := make([]rel.Value, len(exprs))
		for i, e := range exprs {
			re, err := db.rewriteAggs(e, f, g.rows)
			if err != nil {
				return nil, err
			}
			v, err := db.eval.Eval(re, env)
			if err != nil {
				return nil, err
			}
			vals[i] = v
		}
		if err := out.InsertRow(vals); err != nil {
			return nil, err
		}
	}
	// ORDER BY over the output columns (aggregates are already
	// materialized per row).
	if len(s.OrderBy) > 0 {
		type keyed struct {
			row  []rel.Value
			keys []rel.Value
		}
		rows := make([]keyed, out.NumRows())
		for i := 0; i < out.NumRows(); i++ {
			k := keyed{row: out.RawRow(i), keys: make([]rel.Value, len(s.OrderBy))}
			env := groupOutEnv{cols: cols, vals: out.RawRow(i)}
			for j, key := range s.OrderBy {
				v, err := db.eval.Eval(key.Expr, env)
				if err != nil {
					return nil, err
				}
				k.keys[j] = v
			}
			rows[i] = k
		}
		sort.SliceStable(rows, func(a, b int) bool {
			for j, key := range s.OrderBy {
				c := rows[a].keys[j].Compare(rows[b].keys[j])
				if key.Desc {
					c = -c
				}
				if c != 0 {
					return c < 0
				}
			}
			return false
		})
		sorted, err := rel.NewTable("result", cols...)
		if err != nil {
			return nil, err
		}
		for _, k := range rows {
			if err := sorted.InsertRow(k.row); err != nil {
				return nil, err
			}
		}
		out = sorted
	}
	if s.Limit >= 0 && out.NumRows() > s.Limit {
		limited, err := rel.NewTable("result", cols...)
		if err != nil {
			return nil, err
		}
		for i := 0; i < s.Limit; i++ {
			if err := limited.InsertRow(out.RawRow(i)); err != nil {
				return nil, err
			}
		}
		out = limited
	}
	return out, nil
}

// rewriteAggs replaces aggregate calls (count_star, agg_min, agg_max) in
// an expression with literals computed over the group's rows, so the
// remaining expression evaluates against the group's representative row.
func (db *DB) rewriteAggs(e Expr, f *frame, rows [][]rel.Value) (Expr, error) {
	switch x := e.(type) {
	case Call:
		switch x.Name {
		case "count_star":
			return Lit{Val: rel.I(int64(len(rows)))}, nil
		case "agg_min", "agg_max":
			if len(x.Args) != 1 {
				return nil, fmt.Errorf("%w: %s wants 1 argument", ErrType, x.Name)
			}
			best := rel.Null()
			for _, row := range rows {
				v, err := db.eval.Eval(x.Args[0], frameEnv{f: f, row: row})
				if err != nil {
					return nil, err
				}
				if v.IsNull() {
					continue // aggregates skip NULLs
				}
				if best.IsNull() ||
					(x.Name == "agg_min" && v.Compare(best) < 0) ||
					(x.Name == "agg_max" && v.Compare(best) > 0) {
					best = v
				}
			}
			return Lit{Val: best}, nil
		}
		args := make([]Expr, len(x.Args))
		for i, a := range x.Args {
			ra, err := db.rewriteAggs(a, f, rows)
			if err != nil {
				return nil, err
			}
			args[i] = ra
		}
		return Call{Name: x.Name, Args: args}, nil
	case Unary:
		rx, err := db.rewriteAggs(x.X, f, rows)
		if err != nil {
			return nil, err
		}
		return Unary{Op: x.Op, X: rx}, nil
	case Binary:
		l, err := db.rewriteAggs(x.L, f, rows)
		if err != nil {
			return nil, err
		}
		r, err := db.rewriteAggs(x.R, f, rows)
		if err != nil {
			return nil, err
		}
		return Binary{Op: x.Op, L: l, R: r}, nil
	case InList:
		rx, err := db.rewriteAggs(x.X, f, rows)
		if err != nil {
			return nil, err
		}
		set := make([]Expr, len(x.Set))
		for i, sx := range x.Set {
			rs, err := db.rewriteAggs(sx, f, rows)
			if err != nil {
				return nil, err
			}
			set[i] = rs
		}
		return InList{X: rx, Set: set, Negate: x.Negate}, nil
	case IsNull:
		rx, err := db.rewriteAggs(x.X, f, rows)
		if err != nil {
			return nil, err
		}
		return IsNull{X: rx, Negate: x.Negate}, nil
	case Between:
		rx, err := db.rewriteAggs(x.X, f, rows)
		if err != nil {
			return nil, err
		}
		lo, err := db.rewriteAggs(x.Lo, f, rows)
		if err != nil {
			return nil, err
		}
		hi, err := db.rewriteAggs(x.Hi, f, rows)
		if err != nil {
			return nil, err
		}
		return Between{X: rx, Lo: lo, Hi: hi, Negate: x.Negate}, nil
	case Ternary:
		c, err := db.rewriteAggs(x.Cond, f, rows)
		if err != nil {
			return nil, err
		}
		tn, err := db.rewriteAggs(x.Then, f, rows)
		if err != nil {
			return nil, err
		}
		el, err := db.rewriteAggs(x.Else, f, rows)
		if err != nil {
			return nil, err
		}
		return Ternary{Cond: c, Then: tn, Else: el}, nil
	case Case:
		whens := make([]When, len(x.Whens))
		for i, w := range x.Whens {
			c, err := db.rewriteAggs(w.Cond, f, rows)
			if err != nil {
				return nil, err
			}
			v, err := db.rewriteAggs(w.Val, f, rows)
			if err != nil {
				return nil, err
			}
			whens[i] = When{Cond: c, Val: v}
		}
		var els Expr
		if x.Else != nil {
			var err error
			els, err = db.rewriteAggs(x.Else, f, rows)
			if err != nil {
				return nil, err
			}
		}
		return Case{Whens: whens, Else: els}, nil
	default:
		return e, nil
	}
}

// groupOutEnv resolves ORDER BY keys of a grouped query against the output
// columns.
type groupOutEnv struct {
	cols []string
	vals []rel.Value
}

// Lookup implements Env over the grouped output row.
func (e groupOutEnv) Lookup(q, name string) (rel.Value, bool) {
	if q != "" {
		return rel.Null(), false
	}
	for i, c := range e.cols {
		if c == name {
			return e.vals[i], true
		}
	}
	return rel.Null(), false
}

// orderEnv lets ORDER BY reference both source columns and output aliases.
type orderEnv struct {
	frame frameEnv
	cols  []string
	vals  []rel.Value
}

func (e orderEnv) Lookup(q, name string) (rel.Value, bool) {
	if v, ok := e.frame.Lookup(q, name); ok {
		return v, true
	}
	if q == "" {
		for i, c := range e.cols {
			if c == name {
				return e.vals[i], true
			}
		}
	}
	return rel.Null(), false
}

// hasAggregates reports whether any select item contains an aggregate call.
func hasAggregates(items []SelectItem) bool {
	var walk func(e Expr) bool
	walk = func(e Expr) bool {
		switch x := e.(type) {
		case Call:
			if x.Name == "count_star" || x.Name == "agg_min" || x.Name == "agg_max" {
				return true
			}
			for _, a := range x.Args {
				if walk(a) {
					return true
				}
			}
		case Unary:
			return walk(x.X)
		case Binary:
			return walk(x.L) || walk(x.R)
		case Ternary:
			return walk(x.Cond) || walk(x.Then) || walk(x.Else)
		}
		return false
	}
	for _, it := range items {
		if it.Expr != nil && walk(it.Expr) {
			return true
		}
	}
	return false
}

func isCountStar(items []SelectItem) bool {
	if len(items) != 1 || items[0].Star || items[0].Expr == nil {
		return false
	}
	c, ok := items[0].Expr.(Call)
	return ok && c.Name == "count_star"
}

// projection expands the select list into output column names and the
// expressions producing them.
func (db *DB) projection(items []SelectItem, f *frame) ([]string, []Expr, error) {
	var cols []string
	var exprs []Expr
	for _, it := range items {
		if it.Star {
			for i := range f.names {
				name := f.names[i]
				if f.resolve("", name) < 0 {
					// Ambiguous across tables; qualify.
					name = f.aliases[i] + "." + f.names[i]
				}
				cols = append(cols, name)
				exprs = append(exprs, Col{Qualifier: f.aliases[i], Name: f.names[i]})
			}
			continue
		}
		name := it.Alias
		if name == "" {
			if c, ok := it.Expr.(Col); ok {
				name = c.Name
			} else {
				name = it.Expr.String()
			}
		}
		cols = append(cols, name)
		exprs = append(exprs, it.Expr)
	}
	// Disambiguate duplicate output names (SELECT a.m, b.m ...).
	seen := make(map[string]int, len(cols))
	for i, c := range cols {
		n := seen[c]
		seen[c] = n + 1
		if n > 0 {
			cols[i] = fmt.Sprintf("%s_%d", c, n)
		}
	}
	return cols, exprs, nil
}

// filterFrame keeps the rows satisfying every conjunct.
func (db *DB) filterFrame(f *frame, conjuncts []Expr) (*frame, error) {
	kept := f.rows[:0:0]
	for _, row := range f.rows {
		env := frameEnv{f: f, row: row}
		ok := true
		for _, c := range conjuncts {
			t, err := db.eval.True(c, env)
			if err != nil {
				return nil, err
			}
			if !t {
				ok = false
				break
			}
		}
		if ok {
			kept = append(kept, row)
		}
	}
	return &frame{aliases: f.aliases, names: f.names, rows: kept}, nil
}

// schemaFrame builds a rowless frame carrying only a table's column
// schema, for resolution during planning (pushdown, EXPLAIN).
func schemaFrame(t *rel.Table, alias string) *frame {
	if alias == "" {
		alias = t.Name()
	}
	f := &frame{}
	for _, c := range t.Columns() {
		f.aliases = append(f.aliases, alias)
		f.names = append(f.names, c)
	}
	return f
}

// colRefs collects every column reference in an expression.
func colRefs(e Expr, out *[]Col) {
	switch x := e.(type) {
	case Col:
		*out = append(*out, x)
	case Unary:
		colRefs(x.X, out)
	case Binary:
		colRefs(x.L, out)
		colRefs(x.R, out)
	case InList:
		colRefs(x.X, out)
		for _, s := range x.Set {
			colRefs(s, out)
		}
	case IsNull:
		colRefs(x.X, out)
	case Between:
		colRefs(x.X, out)
		colRefs(x.Lo, out)
		colRefs(x.Hi, out)
	case Ternary:
		colRefs(x.Cond, out)
		colRefs(x.Then, out)
		colRefs(x.Else, out)
	case Case:
		for _, w := range x.Whens {
			colRefs(w.Cond, out)
			colRefs(w.Val, out)
		}
		if x.Else != nil {
			colRefs(x.Else, out)
		}
	case Call:
		for _, a := range x.Args {
			colRefs(a, out)
		}
	}
}

// selectSources lists the schema frames of a SELECT's table sources in
// execution order (FROM refs, then JOIN refs).
func (db *DB) selectSources(s *SelectStmt) ([]*frame, error) {
	var out []*frame
	for _, ref := range s.From {
		t, ok := db.tables[ref.Name]
		if !ok {
			return nil, fmt.Errorf("%w: %q", ErrNoTable, ref.Name)
		}
		out = append(out, schemaFrame(t, ref.Alias))
	}
	for _, j := range s.Joins {
		t, ok := db.tables[j.Ref.Name]
		if !ok {
			return nil, fmt.Errorf("%w: %q", ErrNoTable, j.Ref.Name)
		}
		out = append(out, schemaFrame(t, j.Ref.Alias))
	}
	return out, nil
}

// planPushdown splits the WHERE clause into conjuncts that reference
// exactly one table source (pushed: source index -> conjuncts, applied
// while scanning) and the residual conjunction evaluated after the joins.
// Conjuncts with no column references, ambiguous references, or references
// spanning sources stay in the residue.
func (db *DB) planPushdown(s *SelectStmt) (map[int][]Expr, Expr, error) {
	sources, err := db.selectSources(s)
	if err != nil {
		return nil, s.Where, err
	}
	pushed := map[int][]Expr{}
	var residue Expr
	for _, c := range splitAnd(s.Where) {
		var cols []Col
		colRefs(c, &cols)
		target := -1
		ok := len(cols) > 0
		for _, col := range cols {
			si := -1
			for i, src := range sources {
				if src.resolve(col.Qualifier, col.Name) >= 0 {
					if si >= 0 {
						si = -1 // resolvable in two sources: not pushable
						break
					}
					si = i
				}
			}
			if si < 0 || (target >= 0 && si != target) {
				ok = false
				break
			}
			target = si
		}
		if ok && target >= 0 {
			pushed[target] = append(pushed[target], c)
			continue
		}
		if residue == nil {
			residue = c
		} else {
			residue = Binary{Op: "AND", L: residue, R: c}
		}
	}
	return pushed, residue, nil
}

// join combines f with g under the ON condition. When the condition is a
// conjunction of cross-side column equalities a hash join is used; otherwise
// a filtered nested-loop cross product.
type joinPair struct{ li, ri int }

// hashJoinPairs reports whether the ON condition is a conjunction of
// cross-side column equalities, and if so returns the column index pairs —
// the hash-join eligibility test, shared with EXPLAIN.
func hashJoinPairs(f, g *frame, on Expr) ([]joinPair, bool) {
	var pairs []joinPair
	for _, c := range splitAnd(on) {
		b, ok := c.(Binary)
		if !ok || b.Op != "=" {
			return nil, false
		}
		lc, lok := b.L.(Col)
		rc, rok := b.R.(Col)
		if !lok || !rok {
			return nil, false
		}
		li, ri := f.resolve(lc.Qualifier, lc.Name), g.resolve(rc.Qualifier, rc.Name)
		if li < 0 || ri < 0 {
			// Maybe written right-to-left.
			li, ri = f.resolve(rc.Qualifier, rc.Name), g.resolve(lc.Qualifier, lc.Name)
		}
		if li < 0 || ri < 0 {
			return nil, false
		}
		pairs = append(pairs, joinPair{li: li, ri: ri})
	}
	return pairs, len(pairs) > 0
}

func (db *DB) join(f, g *frame, on Expr) (*frame, error) {
	pairs, hashable := hashJoinPairs(f, g, on)
	out := &frame{
		aliases: append(append([]string(nil), f.aliases...), g.aliases...),
		names:   append(append([]string(nil), f.names...), g.names...),
	}
	if hashable {
		db.cur.addHashJoin()
		buckets := make(map[string][]int, len(g.rows))
		for i, row := range g.rows {
			key, ok := joinKey(row, pairs, func(p joinPair) int { return p.ri })
			if !ok {
				continue // NULL keys never match
			}
			buckets[key] = append(buckets[key], i)
		}
		for _, a := range f.rows {
			key, ok := joinKey(a, pairs, func(p joinPair) int { return p.li })
			if !ok {
				continue
			}
			for _, j := range buckets[key] {
				row := make([]rel.Value, 0, len(a)+len(g.rows[j]))
				row = append(row, a...)
				row = append(row, g.rows[j]...)
				out.rows = append(out.rows, row)
			}
		}
		return out, nil
	}
	// Nested loop with ON filter.
	db.cur.addLoopJoin()
	for _, a := range f.rows {
		for _, b := range g.rows {
			row := make([]rel.Value, 0, len(a)+len(b))
			row = append(row, a...)
			row = append(row, b...)
			ok, err := db.eval.True(on, frameEnv{f: out, row: row})
			if err != nil {
				return nil, err
			}
			if ok {
				out.rows = append(out.rows, row)
			}
		}
	}
	return out, nil
}

func joinKey(row []rel.Value, pairs []joinPair, side func(joinPair) int) (string, bool) {
	key := ""
	for _, p := range pairs {
		v := row[side(p)]
		if v.IsNull() {
			return "", false
		}
		key += v.Key() + "\x1f"
	}
	return key, true
}

func splitAnd(e Expr) []Expr {
	if b, ok := e.(Binary); ok && b.Op == "AND" {
		return append(splitAnd(b.L), splitAnd(b.R)...)
	}
	return []Expr{e}
}

func rowKeyOf(vals []rel.Value) string {
	key := ""
	for _, v := range vals {
		key += v.Key() + "\x1f"
	}
	return key
}
