package sqlmini

import (
	"fmt"
	"sort"
	"time"

	"coherdb/internal/obs"
	"coherdb/internal/rel"
)

// frame is the working relation during SELECT execution: a list of columns,
// each tagged with the alias of the table it came from, and the joined rows
// as dictionary-code rows — the same []uint32 layout the columnar store
// holds, so scans, filters and joins never box values.
type frame struct {
	aliases []string
	names   []string
	rows    [][]uint32
	// base is the backing table when the frame is an untransformed whole-
	// table scan — the precondition for probing the table's persistent
	// indexes with frame row positions. Any filter, join or index-reduced
	// scan clears it.
	base *rel.Table
	// memo caches column resolution (including misses and ambiguities):
	// per-row expression evaluation resolves the same handful of names
	// over and over, and the linear scan over wide controller tables
	// dominates filter cost without it. Frames are single-goroutine.
	memo map[[2]string]int
}

func frameOf(t *rel.Table, alias string) *frame {
	f := schemaFrame(t, alias)
	f.base = t
	// Zero-copy scan: the frame shares the table's code-row storage. Frames
	// never mutate rows, and the statement holds the DB lock for its whole
	// execution, so the storage cannot move underneath it.
	f.rows = t.CodeRows()
	return f
}

// pristine reports whether the frame is still the whole backing table, so
// index row numbers and frame row positions coincide.
func (f *frame) pristine() bool {
	return f.base != nil && len(f.rows) == f.base.NumRows()
}

// resolve finds the column position for a (possibly qualified) name.
// It returns -1 when absent or ambiguous.
func (f *frame) resolve(q, name string) int {
	key := [2]string{q, name}
	if i, ok := f.memo[key]; ok {
		return i
	}
	i := f.resolveScan(q, name)
	if f.memo == nil {
		f.memo = make(map[[2]string]int, 8)
	}
	f.memo[key] = i
	return i
}

func (f *frame) resolveScan(q, name string) int {
	found := -1
	for i := range f.names {
		if f.names[i] != name {
			continue
		}
		if q != "" {
			if f.aliases[i] == q {
				return i
			}
			continue
		}
		if found >= 0 {
			return -1 // ambiguous unqualified reference
		}
		found = i
	}
	return found
}

func (f *frame) cross(g *frame) *frame {
	out := &frame{
		aliases: append(append([]string(nil), f.aliases...), g.aliases...),
		names:   append(append([]string(nil), f.names...), g.names...),
	}
	out.rows = make([][]uint32, 0, len(f.rows)*len(g.rows))
	for _, a := range f.rows {
		for _, b := range g.rows {
			row := make([]uint32, 0, len(a)+len(b))
			row = append(row, a...)
			row = append(row, b...)
			out.rows = append(out.rows, row)
		}
	}
	return out
}

// frameEnv evaluates expressions against one code row of a frame, decoding
// through the shared dictionary on lookup — only the interpreted fallback
// paths pay this; compiled predicates read the codes directly.
type frameEnv struct {
	f   *frame
	row []uint32
}

func (e frameEnv) Lookup(q, name string) (rel.Value, bool) {
	i := e.f.resolve(q, name)
	if i < 0 {
		return rel.Null(), false
	}
	return dict.Value(e.row[i]), true
}

// At implements posEnv for plan-bound column references. An out-of-range
// position (a plan from another schema epoch, which branchPlans prevents)
// reports absence so evaluation falls back to name resolution.
func (e frameEnv) At(i int) (rel.Value, bool) {
	if i < 0 || i >= len(e.row) {
		return rel.Null(), false
	}
	return dict.Value(e.row[i]), true
}

func (r *run) execSelect(s *SelectStmt) (*rel.Table, error) {
	plans, err := r.plansFor(s)
	if err != nil {
		return nil, err
	}
	out, err := r.execSelectOne(s, r.planAt(plans, 0, s))
	if err != nil {
		return nil, err
	}
	bi := 1
	for u, all := s.Union, s.UnionAll; u != nil; u, all = u.Union, u.UnionAll {
		// Each branch's own Union chain is cleared before execution to
		// avoid double-processing; we walk the chain here instead.
		branch := *u
		branch.Union = nil
		bt, err := r.execSelectOne(&branch, r.planAt(plans, bi, &branch))
		if err != nil {
			return nil, err
		}
		bi++
		if bt.NumCols() != out.NumCols() {
			return nil, fmt.Errorf("%w: UNION branches have %d and %d columns", rel.ErrSchema, out.NumCols(), bt.NumCols())
		}
		renamed, err := bt.Rename(renameTo(bt.Columns(), out.Columns()))
		if err != nil {
			return nil, err
		}
		detail := "DISTINCT"
		if all {
			detail = "ALL"
		}
		r.azBegin("union", "")
		r.azSet("", detail)
		if all {
			out, err = out.Union(renamed)
		} else {
			out, err = out.UnionDistinct(renamed)
		}
		if err != nil {
			return nil, err
		}
		r.azEnd(out.NumRows())
	}
	return out, nil
}

// planAt returns the i-th cached branch plan; a length mismatch (which
// cannot happen for plans built from the same UNION chain) falls back to
// planning the branch fresh so the WHERE clause is never lost.
func (r *run) planAt(plans []*branchPlan, i int, branch *SelectStmt) *branchPlan {
	if i < len(plans) && plans[i] != nil {
		return plans[i]
	}
	bp, err := r.planBranch(branch)
	if err != nil {
		return &branchPlan{residue: branch.Where}
	}
	return bp
}

func renameTo(from, to []string) map[string]string {
	m := make(map[string]string, len(from))
	for i := range from {
		m[from[i]] = to[i]
	}
	return m
}

func (r *run) execSelectOne(s *SelectStmt, plan *branchPlan) (*rel.Table, error) {
	// FROM clause: build the working frame. Each source is scanned per its
	// cached srcPlan — through a persistent index when the planner found an
	// equality conjunct, with remaining pushed conjuncts filtered in place.
	var f *frame
	if len(s.From) == 0 {
		f = &frame{rows: [][]uint32{{}}} // one empty row for FROM-less SELECT
	}
	si := 0
	for _, ref := range s.From {
		r.azBegin("scan", refAlias(ref))
		g, err := r.scanSource(ref, plan.src(si))
		if err != nil {
			return nil, err
		}
		r.azEnd(len(g.rows))
		si++
		if f == nil {
			f = g
		} else {
			r.azBegin("cross", refAlias(ref))
			r.azSet("", "cross product")
			f = f.cross(g)
			r.azEnd(len(f.rows))
		}
	}
	for _, j := range s.Joins {
		r.azBegin("scan", refAlias(j.Ref))
		g, err := r.scanSource(j.Ref, plan.src(si))
		if err != nil {
			return nil, err
		}
		r.azEnd(len(g.rows))
		si++
		r.azBegin("join", refAlias(j.Ref))
		joined, err := r.join(f, g, j.On)
		if err != nil {
			return nil, err
		}
		r.azEnd(len(joined.rows))
		f = joined
	}
	// WHERE (residue after pushdown).
	if plan != nil && plan.residue != nil {
		conj, progs := plan.residueConjuncts()
		r.azBegin("filter", "")
		if r.azTracks() {
			r.azSet("", andString(conj))
		}
		filtered, err := r.filterFrame(f, conj, progs)
		if err != nil {
			return nil, err
		}
		r.azEnd(len(filtered.rows))
		f = filtered
	}
	// GROUP BY aggregation; aggregates without GROUP BY treat the whole
	// input as one group.
	if len(s.GroupBy) > 0 || (hasAggregates(s.Items) && !isCountStar(s.Items)) {
		if len(s.GroupBy) > 0 {
			r.azBegin("group", "")
			if r.azTracks() {
				r.azSet("", fmt.Sprintf("%d key(s)", len(s.GroupBy)))
			}
		} else {
			r.azBegin("aggregate", "")
		}
		t, err := r.execGrouped(s, f)
		if err != nil {
			return nil, err
		}
		r.azEnd(t.NumRows())
		return t, nil
	}
	// COUNT(*) aggregate.
	if isCountStar(s.Items) {
		r.azBegin("aggregate", "")
		name := "count"
		if s.Items[0].Alias != "" {
			name = s.Items[0].Alias
		}
		t := rel.MustNewTable("result", name)
		t.MustInsert(rel.I(int64(len(f.rows))))
		r.azEnd(1)
		return t, nil
	}
	// Projection list. Direct column references copy their code straight
	// off the row; anything else evaluates through one reused Env and the
	// result is interned. Output codes are carved from a single arena
	// allocation covering every row.
	r.qs.phase(obs.PhaseProject)
	r.azBegin("project", "")
	cols, exprs, err := projection(s.Items, f)
	if err != nil {
		return nil, err
	}
	width := len(exprs)
	colAt := make([]int, width)
	direct := true
	for i, e := range exprs {
		colAt[i] = -1
		if c, ok := e.(Col); ok {
			colAt[i] = f.resolve(c.Qualifier, c.Name)
		}
		if colAt[i] < 0 {
			direct = false
		}
	}
	// Fused projection: when every output is a direct column reference and
	// no reordering or dedup follows, skip the per-row staging entirely —
	// gather each output column from the frame rows in one pass and bulk-
	// append the column vectors to the result. Same codes in the same
	// order as the staged path, so vectorized, scalar, parallel and serial
	// executions all stay byte-identical.
	if direct && !s.Distinct && len(s.OrderBy) == 0 {
		rows := f.rows
		r.azEnd(len(rows))
		if s.Limit >= 0 {
			r.azBegin("limit", "")
			if r.azTracks() {
				r.azSet("", fmt.Sprintf("LIMIT %d", s.Limit))
			}
			if len(rows) > s.Limit {
				rows = rows[:s.Limit]
			}
			r.azEnd(len(rows))
		}
		out, err := rel.NewTable("result", cols...)
		if err != nil {
			return nil, err
		}
		if len(rows) == 0 {
			return out, nil
		}
		n := len(rows)
		flat := make([]uint32, n*width)
		gathered := make([][]uint32, width)
		for k, src := range colAt {
			col := flat[k*n : (k+1)*n]
			for i, row := range rows {
				col[i] = row[src]
			}
			gathered[k] = col
		}
		if err := out.AppendColumns(gathered, n); err != nil {
			return nil, err
		}
		return out, nil
	}
	type outRow struct {
		vals []uint32
		keys []rel.Value
	}
	rows := make([]outRow, 0, len(f.rows))
	arena := make([]uint32, len(f.rows)*width)
	var keyArena []rel.Value
	if len(s.OrderBy) > 0 {
		keyArena = make([]rel.Value, len(f.rows)*len(s.OrderBy))
	}
	env := &frameEnv{f: f}
	for ri, row := range f.rows {
		env.row = row
		vals := arena[ri*width : (ri+1)*width : (ri+1)*width]
		for i, e := range exprs {
			if j := colAt[i]; j >= 0 {
				vals[i] = row[j]
				continue
			}
			v, err := r.ev.Eval(e, env)
			if err != nil {
				return nil, err
			}
			vals[i] = dict.Code(v)
		}
		var keys []rel.Value
		if nk := len(s.OrderBy); nk > 0 {
			keys = keyArena[ri*nk : (ri+1)*nk : (ri+1)*nk]
			oenv := orderEnv{frame: frameEnv{f: f, row: row}, cols: cols, vals: vals}
			for i, k := range s.OrderBy {
				v, err := r.ev.Eval(k.Expr, oenv)
				if err != nil {
					return nil, err
				}
				keys[i] = v
			}
		}
		rows = append(rows, outRow{vals: vals, keys: keys})
	}
	r.azEnd(len(rows))
	if s.Distinct {
		r.azBegin("distinct", "")
		seen := make(map[string]struct{}, len(rows))
		kept := rows[:0]
		for _, row := range rows {
			k := rowKeyOf(row.vals)
			if _, dup := seen[k]; dup {
				continue
			}
			seen[k] = struct{}{}
			kept = append(kept, row)
		}
		rows = kept
		r.azEnd(len(rows))
	}
	if len(s.OrderBy) > 0 {
		r.azBegin("sort", "")
		if r.azTracks() {
			r.azSet("", fmt.Sprintf("%d key(s)", len(s.OrderBy)))
		}
		sort.SliceStable(rows, func(a, b int) bool {
			for i, k := range s.OrderBy {
				c := rows[a].keys[i].Compare(rows[b].keys[i])
				if k.Desc {
					c = -c
				}
				if c != 0 {
					return c < 0
				}
			}
			return false
		})
		r.azEnd(len(rows))
	}
	if s.Limit >= 0 {
		r.azBegin("limit", "")
		if r.azTracks() {
			r.azSet("", fmt.Sprintf("LIMIT %d", s.Limit))
		}
		if len(rows) > s.Limit {
			rows = rows[:s.Limit]
		}
		r.azEnd(len(rows))
	}
	out, err := rel.NewTable("result", cols...)
	if err != nil {
		return nil, err
	}
	for _, row := range rows {
		if err := out.AppendCodeRow(row.vals); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// refAlias is the display alias of a table source: the explicit alias or
// the table name, matching EXPLAIN's target column.
func refAlias(ref TableRef) string {
	if ref.Alias != "" {
		return ref.Alias
	}
	return ref.Name
}

// scanSource materializes one table source per its srcPlan: an index
// lookup on the planned equality conjuncts when present, a whole-table
// scan otherwise, followed by the remaining pushed filters.
func (r *run) scanSource(ref TableRef, sp srcPlan) (*frame, error) {
	t, ok := r.table(ref.Name)
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNoTable, ref.Name)
	}
	r.qs.phase(obs.PhaseScan)
	if len(sp.eqCols) > 0 {
		ix, err := t.IndexOn(sp.eqCols...)
		if err == nil {
			matched := ix.Lookup(sp.eqVals...)
			r.qs.addIndexScan()
			r.qs.addScanned(len(matched))
			r.qs.addPushdown(len(sp.eqCols) + len(sp.filters))
			vec := len(sp.filters) > 0 && r.vecUsable(t, sp)
			if r.azTracks() {
				detail := indexScanDetail(sp)
				if len(sp.filters) > 0 {
					detail += "; filter: " + andString(sp.filters) + evalDetail(vec)
				}
				r.azSet("indexscan", withStorage(detail))
			}
			if vec {
				return r.vecScan(t, ref.Alias, matched, sp.vecs)
			}
			f := schemaFrame(t, ref.Alias)
			crows := t.CodeRows()
			f.rows = make([][]uint32, len(matched))
			for i, ri := range matched {
				f.rows[i] = crows[ri]
			}
			if len(sp.filters) > 0 {
				return r.filterFrame(f, sp.filters, sp.progs)
			}
			return f, nil
		}
		// The index could not be built (it cannot for planner-produced
		// column lists, which are resolved and deduplicated): apply the
		// equality conjuncts as ordinary filters instead. The compiled
		// slots no longer line up with the extended conjunct list, so this
		// fallback is interpreted.
		sp.filters = append(eqExprs(sp), sp.filters...)
		sp.progs = nil
		sp.vecs = nil
	}
	r.qs.addScanned(t.NumRows())
	vec := len(sp.filters) > 0 && r.vecUsable(t, sp)
	if r.azTracks() {
		detail := ""
		if len(sp.filters) > 0 {
			detail = "pushdown: " + andString(sp.filters) + evalDetail(vec)
		}
		r.azSet("scan", withStorage(detail))
	}
	if vec {
		r.qs.addPushdown(len(sp.filters))
		return r.vecScan(t, ref.Alias, nil, sp.vecs)
	}
	f := frameOf(t, ref.Alias)
	if len(sp.filters) > 0 {
		r.qs.addPushdown(len(sp.filters))
		return r.filterFrame(f, sp.filters, sp.progs)
	}
	return f, nil
}

// evalDetail renders the filter-evaluation mode annotation shared by
// EXPLAIN and EXPLAIN ANALYZE scan steps.
func evalDetail(vec bool) string {
	if vec {
		return "; eval=vectorized"
	}
	return "; eval=scalar"
}

// execGrouped evaluates a GROUP BY query: rows are bucketed by the group
// expressions; each bucket yields one output row, with COUNT(*) bound to
// the bucket size for the select list and the HAVING filter.
func (r *run) execGrouped(s *SelectStmt, f *frame) (*rel.Table, error) {
	r.qs.phase(obs.PhaseAggregate)
	type group struct {
		rows [][]uint32
	}
	var order []string
	groups := map[string]*group{}
	// Group keys: 4 bytes per grouping expression — direct column
	// references append their code straight off the row, everything else
	// evaluates through one reused Env and interns its result. Codes are
	// injective over values, so code-byte keys bucket exactly as value
	// keys did; the string allocation happens only the first time a group
	// is seen (the map probe with string(buf) does not allocate).
	gidx := make([]int, len(s.GroupBy))
	for i, ge := range s.GroupBy {
		gidx[i] = -1
		if c, ok := ge.(Col); ok {
			gidx[i] = f.resolve(c.Qualifier, c.Name)
		}
	}
	env := &frameEnv{f: f}
	var buf []byte
	for _, row := range f.rows {
		env.row = row
		buf = buf[:0]
		for i, ge := range s.GroupBy {
			var c uint32
			if j := gidx[i]; j >= 0 {
				c = row[j]
			} else {
				v, err := r.ev.Eval(ge, env)
				if err != nil {
					return nil, err
				}
				c = dict.Code(v)
			}
			buf = rel.AppendCodeKey(buf, c)
		}
		g, ok := groups[string(buf)]
		if !ok {
			key := string(buf)
			g = &group{}
			groups[key] = g
			order = append(order, key)
		}
		g.rows = append(g.rows, row)
	}
	cols, exprs, err := projection(s.Items, f)
	if err != nil {
		return nil, err
	}
	out, err := rel.NewTable("result", cols...)
	if err != nil {
		return nil, err
	}
	for _, key := range order {
		g := groups[key]
		genv := frameEnv{f: f, row: g.rows[0]}
		if s.Having != nil {
			h, err := r.rewriteAggs(s.Having, f, g.rows)
			if err != nil {
				return nil, err
			}
			keep, err := r.ev.True(h, &genv)
			if err != nil {
				return nil, err
			}
			if !keep {
				continue
			}
		}
		vals := make([]rel.Value, len(exprs))
		for i, e := range exprs {
			re, err := r.rewriteAggs(e, f, g.rows)
			if err != nil {
				return nil, err
			}
			v, err := r.ev.Eval(re, &genv)
			if err != nil {
				return nil, err
			}
			vals[i] = v
		}
		if err := out.InsertRow(vals); err != nil {
			return nil, err
		}
	}
	// Close the caller's group/aggregate op at the grouped row count, so
	// the ORDER BY and LIMIT below report as their own plan steps (the
	// caller's azEnd is a no-op once the op is closed here).
	r.azEnd(out.NumRows())
	// ORDER BY over the output columns (aggregates are already
	// materialized per row).
	if len(s.OrderBy) > 0 {
		r.azBegin("sort", "")
		if r.azTracks() {
			r.azSet("", fmt.Sprintf("%d key(s)", len(s.OrderBy)))
		}
		type keyed struct {
			row  []rel.Value
			keys []rel.Value
		}
		rows := make([]keyed, out.NumRows())
		for i := 0; i < out.NumRows(); i++ {
			k := keyed{row: out.RawRow(i), keys: make([]rel.Value, len(s.OrderBy))}
			env := groupOutEnv{cols: cols, vals: out.RawRow(i)}
			for j, key := range s.OrderBy {
				v, err := r.ev.Eval(key.Expr, env)
				if err != nil {
					return nil, err
				}
				k.keys[j] = v
			}
			rows[i] = k
		}
		sort.SliceStable(rows, func(a, b int) bool {
			for j, key := range s.OrderBy {
				c := rows[a].keys[j].Compare(rows[b].keys[j])
				if key.Desc {
					c = -c
				}
				if c != 0 {
					return c < 0
				}
			}
			return false
		})
		sorted, err := rel.NewTable("result", cols...)
		if err != nil {
			return nil, err
		}
		for _, k := range rows {
			if err := sorted.InsertRow(k.row); err != nil {
				return nil, err
			}
		}
		out = sorted
		r.azEnd(out.NumRows())
	}
	if s.Limit >= 0 {
		r.azBegin("limit", "")
		if r.azTracks() {
			r.azSet("", fmt.Sprintf("LIMIT %d", s.Limit))
		}
		if out.NumRows() > s.Limit {
			limited, err := rel.NewTable("result", cols...)
			if err != nil {
				return nil, err
			}
			for i := 0; i < s.Limit; i++ {
				if err := limited.InsertRow(out.RawRow(i)); err != nil {
					return nil, err
				}
			}
			out = limited
		}
		r.azEnd(out.NumRows())
	}
	return out, nil
}

// containsAgg reports whether e contains an aggregate call, so rewriteAggs
// can return aggregate-free subtrees unchanged instead of copying them for
// every group.
func containsAgg(e Expr) bool {
	switch x := e.(type) {
	case Call:
		if x.Name == "count_star" || x.Name == "agg_min" || x.Name == "agg_max" {
			return true
		}
		for _, a := range x.Args {
			if containsAgg(a) {
				return true
			}
		}
	case Unary:
		return containsAgg(x.X)
	case Binary:
		return containsAgg(x.L) || containsAgg(x.R)
	case InList:
		if containsAgg(x.X) {
			return true
		}
		for _, s := range x.Set {
			if containsAgg(s) {
				return true
			}
		}
	case IsNull:
		return containsAgg(x.X)
	case Between:
		return containsAgg(x.X) || containsAgg(x.Lo) || containsAgg(x.Hi)
	case Ternary:
		return containsAgg(x.Cond) || containsAgg(x.Then) || containsAgg(x.Else)
	case Case:
		for _, w := range x.Whens {
			if containsAgg(w.Cond) || containsAgg(w.Val) {
				return true
			}
		}
		if x.Else != nil {
			return containsAgg(x.Else)
		}
	}
	return false
}

// rewriteAggs replaces aggregate calls (count_star, agg_min, agg_max) in
// an expression with literals computed over the group's rows, so the
// remaining expression evaluates against the group's representative row.
// Aggregate-free expressions are returned as-is: rewriting them would
// produce an identical copy per group.
func (r *run) rewriteAggs(e Expr, f *frame, rows [][]uint32) (Expr, error) {
	if !containsAgg(e) {
		return e, nil
	}
	switch x := e.(type) {
	case Call:
		switch x.Name {
		case "count_star":
			return Lit{Val: rel.I(int64(len(rows)))}, nil
		case "agg_min", "agg_max":
			if len(x.Args) != 1 {
				return nil, fmt.Errorf("%w: %s wants 1 argument", ErrType, x.Name)
			}
			best := rel.Null()
			for _, row := range rows {
				v, err := r.ev.Eval(x.Args[0], frameEnv{f: f, row: row})
				if err != nil {
					return nil, err
				}
				if v.IsNull() {
					continue // aggregates skip NULLs
				}
				if best.IsNull() ||
					(x.Name == "agg_min" && v.Compare(best) < 0) ||
					(x.Name == "agg_max" && v.Compare(best) > 0) {
					best = v
				}
			}
			return Lit{Val: best}, nil
		}
		args := make([]Expr, len(x.Args))
		for i, a := range x.Args {
			ra, err := r.rewriteAggs(a, f, rows)
			if err != nil {
				return nil, err
			}
			args[i] = ra
		}
		return Call{Name: x.Name, Args: args}, nil
	case Unary:
		rx, err := r.rewriteAggs(x.X, f, rows)
		if err != nil {
			return nil, err
		}
		return Unary{Op: x.Op, X: rx}, nil
	case Binary:
		l, err := r.rewriteAggs(x.L, f, rows)
		if err != nil {
			return nil, err
		}
		rr, err := r.rewriteAggs(x.R, f, rows)
		if err != nil {
			return nil, err
		}
		return Binary{Op: x.Op, L: l, R: rr}, nil
	case InList:
		rx, err := r.rewriteAggs(x.X, f, rows)
		if err != nil {
			return nil, err
		}
		set := make([]Expr, len(x.Set))
		for i, sx := range x.Set {
			rs, err := r.rewriteAggs(sx, f, rows)
			if err != nil {
				return nil, err
			}
			set[i] = rs
		}
		return InList{X: rx, Set: set, Negate: x.Negate}, nil
	case IsNull:
		rx, err := r.rewriteAggs(x.X, f, rows)
		if err != nil {
			return nil, err
		}
		return IsNull{X: rx, Negate: x.Negate}, nil
	case Between:
		rx, err := r.rewriteAggs(x.X, f, rows)
		if err != nil {
			return nil, err
		}
		lo, err := r.rewriteAggs(x.Lo, f, rows)
		if err != nil {
			return nil, err
		}
		hi, err := r.rewriteAggs(x.Hi, f, rows)
		if err != nil {
			return nil, err
		}
		return Between{X: rx, Lo: lo, Hi: hi, Negate: x.Negate}, nil
	case Ternary:
		c, err := r.rewriteAggs(x.Cond, f, rows)
		if err != nil {
			return nil, err
		}
		tn, err := r.rewriteAggs(x.Then, f, rows)
		if err != nil {
			return nil, err
		}
		el, err := r.rewriteAggs(x.Else, f, rows)
		if err != nil {
			return nil, err
		}
		return Ternary{Cond: c, Then: tn, Else: el}, nil
	case Case:
		whens := make([]When, len(x.Whens))
		for i, w := range x.Whens {
			c, err := r.rewriteAggs(w.Cond, f, rows)
			if err != nil {
				return nil, err
			}
			v, err := r.rewriteAggs(w.Val, f, rows)
			if err != nil {
				return nil, err
			}
			whens[i] = When{Cond: c, Val: v}
		}
		var els Expr
		if x.Else != nil {
			var err error
			els, err = r.rewriteAggs(x.Else, f, rows)
			if err != nil {
				return nil, err
			}
		}
		return Case{Whens: whens, Else: els}, nil
	default:
		return e, nil
	}
}

// groupOutEnv resolves ORDER BY keys of a grouped query against the output
// columns.
type groupOutEnv struct {
	cols []string
	vals []rel.Value
}

// Lookup implements Env over the grouped output row.
func (e groupOutEnv) Lookup(q, name string) (rel.Value, bool) {
	if q != "" {
		return rel.Null(), false
	}
	for i, c := range e.cols {
		if c == name {
			return e.vals[i], true
		}
	}
	return rel.Null(), false
}

// orderEnv lets ORDER BY reference both source columns and output aliases
// (the latter held as projected codes, decoded on lookup).
type orderEnv struct {
	frame frameEnv
	cols  []string
	vals  []uint32
}

func (e orderEnv) Lookup(q, name string) (rel.Value, bool) {
	if v, ok := e.frame.Lookup(q, name); ok {
		return v, true
	}
	if q == "" {
		for i, c := range e.cols {
			if c == name {
				return dict.Value(e.vals[i]), true
			}
		}
	}
	return rel.Null(), false
}

// hasAggregates reports whether any select item contains an aggregate call.
func hasAggregates(items []SelectItem) bool {
	var walk func(e Expr) bool
	walk = func(e Expr) bool {
		switch x := e.(type) {
		case Call:
			if x.Name == "count_star" || x.Name == "agg_min" || x.Name == "agg_max" {
				return true
			}
			for _, a := range x.Args {
				if walk(a) {
					return true
				}
			}
		case Unary:
			return walk(x.X)
		case Binary:
			return walk(x.L) || walk(x.R)
		case Ternary:
			return walk(x.Cond) || walk(x.Then) || walk(x.Else)
		}
		return false
	}
	for _, it := range items {
		if it.Expr != nil && walk(it.Expr) {
			return true
		}
	}
	return false
}

func isCountStar(items []SelectItem) bool {
	if len(items) != 1 || items[0].Star || items[0].Expr == nil {
		return false
	}
	c, ok := items[0].Expr.(Call)
	return ok && c.Name == "count_star"
}

// projection expands the select list into output column names and the
// expressions producing them.
func projection(items []SelectItem, f *frame) ([]string, []Expr, error) {
	var cols []string
	var exprs []Expr
	for _, it := range items {
		if it.Star {
			for i := range f.names {
				name := f.names[i]
				if f.resolve("", name) < 0 {
					// Ambiguous across tables; qualify.
					name = f.aliases[i] + "." + f.names[i]
				}
				cols = append(cols, name)
				exprs = append(exprs, Col{Qualifier: f.aliases[i], Name: f.names[i]})
			}
			continue
		}
		name := it.Alias
		if name == "" {
			if c, ok := it.Expr.(Col); ok {
				name = c.Name
			} else {
				name = it.Expr.String()
			}
		}
		cols = append(cols, name)
		exprs = append(exprs, it.Expr)
	}
	// Disambiguate duplicate output names (SELECT a.m, b.m ...).
	seen := make(map[string]int, len(cols))
	for i, c := range cols {
		n := seen[c]
		seen[c] = n + 1
		if n > 0 {
			cols[i] = fmt.Sprintf("%s_%d", c, n)
		}
	}
	return cols, exprs, nil
}

// filterFrame keeps the rows satisfying every conjunct. progs carries the
// compiled form of each conjunct (a nil slice or nil slot falls back to
// the tree-walking interpreter, preserving its exact error reporting).
// When every conjunct compiled and the input spans at least two morsels,
// the scan runs on the worker pool; kept rows merge in input order, so
// the parallel result is byte-identical to the serial scan's.
func (r *run) filterFrame(f *frame, conjuncts []Expr, progs []CodePred) (*frame, error) {
	r.qs.phase(obs.PhaseFilter)
	compiled := len(progs) == len(conjuncts)
	if compiled {
		for _, p := range progs {
			if p == nil {
				compiled = false
				break
			}
		}
	}
	if compiled {
		if kept, ran, err := r.parallelFilter(f.rows, progs); ran {
			if err != nil {
				return nil, err
			}
			return &frame{aliases: f.aliases, names: f.names, rows: kept, memo: f.memo}, nil
		}
		kept := f.rows[:0:0]
		for _, row := range f.rows {
			keep, err := evalPreds(progs, row)
			if err != nil {
				return nil, err
			}
			if keep {
				kept = append(kept, row)
			}
		}
		return &frame{aliases: f.aliases, names: f.names, rows: kept, memo: f.memo}, nil
	}
	kept := f.rows[:0:0]
	env := &frameEnv{f: f}
	for _, row := range f.rows {
		env.row = row
		ok := true
		for i, c := range conjuncts {
			var t bool
			var err error
			if i < len(progs) && progs[i] != nil {
				t, err = progs[i](row)
			} else {
				t, err = r.ev.True(c, env)
			}
			if err != nil {
				return nil, err
			}
			if !t {
				ok = false
				break
			}
		}
		if ok {
			kept = append(kept, row)
		}
	}
	// Same schema, so the resolution memo carries over.
	return &frame{aliases: f.aliases, names: f.names, rows: kept, memo: f.memo}, nil
}

// schemaFrame builds a rowless frame carrying only a table's column
// schema, for resolution during planning (pushdown, EXPLAIN).
func schemaFrame(t *rel.Table, alias string) *frame {
	if alias == "" {
		alias = t.Name()
	}
	f := &frame{}
	for _, c := range t.Columns() {
		f.aliases = append(f.aliases, alias)
		f.names = append(f.names, c)
	}
	return f
}

// colRefs collects every column reference in an expression.
func colRefs(e Expr, out *[]Col) {
	switch x := e.(type) {
	case Col:
		*out = append(*out, x)
	case boundCol:
		*out = append(*out, x.Col)
	case Unary:
		colRefs(x.X, out)
	case Binary:
		colRefs(x.L, out)
		colRefs(x.R, out)
	case InList:
		colRefs(x.X, out)
		for _, s := range x.Set {
			colRefs(s, out)
		}
	case IsNull:
		colRefs(x.X, out)
	case Between:
		colRefs(x.X, out)
		colRefs(x.Lo, out)
		colRefs(x.Hi, out)
	case Ternary:
		colRefs(x.Cond, out)
		colRefs(x.Then, out)
		colRefs(x.Else, out)
	case Case:
		for _, w := range x.Whens {
			colRefs(w.Cond, out)
			colRefs(w.Val, out)
		}
		if x.Else != nil {
			colRefs(x.Else, out)
		}
	case Call:
		for _, a := range x.Args {
			colRefs(a, out)
		}
	}
}

// selectSources lists the schema frames of a SELECT's table sources in
// execution order (FROM refs, then JOIN refs).
func (r *run) selectSources(s *SelectStmt) ([]*frame, error) {
	var out []*frame
	for _, ref := range s.From {
		t, ok := r.table(ref.Name)
		if !ok {
			return nil, fmt.Errorf("%w: %q", ErrNoTable, ref.Name)
		}
		out = append(out, schemaFrame(t, ref.Alias))
	}
	for _, j := range s.Joins {
		t, ok := r.table(j.Ref.Name)
		if !ok {
			return nil, fmt.Errorf("%w: %q", ErrNoTable, j.Ref.Name)
		}
		out = append(out, schemaFrame(t, j.Ref.Alias))
	}
	return out, nil
}

// join combines f with g under the ON condition. When the condition is a
// conjunction of cross-side column equalities a hash join is used; otherwise
// a filtered nested-loop cross product.
type joinPair struct{ li, ri int }

// hashJoinPairs reports whether the ON condition is a conjunction of
// cross-side column equalities, and if so returns the column index pairs —
// the hash-join eligibility test, shared with EXPLAIN.
func hashJoinPairs(f, g *frame, on Expr) ([]joinPair, bool) {
	var pairs []joinPair
	for _, c := range splitAnd(on) {
		b, ok := c.(Binary)
		if !ok || b.Op != "=" {
			return nil, false
		}
		lc, lok := b.L.(Col)
		rc, rok := b.R.(Col)
		if !lok || !rok {
			return nil, false
		}
		li, ri := f.resolve(lc.Qualifier, lc.Name), g.resolve(rc.Qualifier, rc.Name)
		if li < 0 || ri < 0 {
			// Maybe written right-to-left.
			li, ri = f.resolve(rc.Qualifier, rc.Name), g.resolve(lc.Qualifier, lc.Name)
		}
		if li < 0 || ri < 0 {
			return nil, false
		}
		pairs = append(pairs, joinPair{li: li, ri: ri})
	}
	return pairs, len(pairs) > 0
}

// join output is always f-major: left rows in scan order, each followed by
// its matches. Every strategy below — serial or parallel — preserves that
// order, so results are deterministic regardless of worker count.
func (r *run) join(f, g *frame, on Expr) (*frame, error) {
	r.qs.phase(obs.PhaseJoin)
	pairs, hashable := hashJoinPairs(f, g, on)
	out := &frame{
		aliases: append(append([]string(nil), f.aliases...), g.aliases...),
		names:   append(append([]string(nil), f.names...), g.names...),
	}
	if !hashable {
		// Nested loop with ON filter; candidate rows carve from an arena
		// and rejected candidates return their space.
		r.qs.addLoopJoin()
		if r.azTracks() {
			r.azSet("", "nested-loop: "+on.String())
		}
		var ar codeArena
		env := &frameEnv{f: out}
		for _, a := range f.rows {
			for _, b := range g.rows {
				row := ar.joinRow(a, b)
				env.row = row
				ok, err := r.ev.True(on, env)
				if err != nil {
					return nil, err
				}
				if ok {
					out.rows = append(out.rows, row)
				} else {
					ar.undo(len(row))
				}
			}
		}
		r.azArena(ar.grown)
		return out, nil
	}
	r.qs.addHashJoin()
	// Index nested-loop: when one side is a pristine base-table scan, its
	// persistent index replaces the build phase entirely. Probe the side
	// with fewer rows. IndexOn only fails for duplicated join columns
	// (ON f.a = g.m AND f.b = g.m); the ad-hoc hash below covers that.
	if g.pristine() && (!f.pristine() || len(f.rows) <= len(g.rows)) {
		cols := make([]string, len(pairs))
		for k, p := range pairs {
			cols[k] = g.names[p.ri]
		}
		if ix, err := g.base.IndexOn(cols...); err == nil {
			r.qs.addIndexJoin()
			if r.azTracks() {
				r.azSet("", fmt.Sprintf("index nested-loop via %s(%s)",
					g.aliases[pairs[0].ri], joinCols(cols)))
			}
			var ar codeArena
			codes := make([]uint32, len(pairs))
			for _, a := range f.rows {
				ok := true
				for k, p := range pairs {
					if a[p.li] == rel.NullCode {
						ok = false // NULL keys never match
						break
					}
					codes[k] = a[p.li]
				}
				if !ok {
					continue
				}
				for _, j := range ix.LookupCodes(codes...) {
					out.rows = append(out.rows, ar.joinRow(a, g.rows[j]))
				}
			}
			r.azArena(ar.grown)
			return out, nil
		}
	}
	if f.pristine() {
		cols := make([]string, len(pairs))
		for k, p := range pairs {
			cols[k] = f.names[p.li]
		}
		if ix, err := f.base.IndexOn(cols...); err == nil {
			r.qs.addIndexJoin()
			if r.azTracks() {
				r.azSet("", fmt.Sprintf("index nested-loop via %s(%s)",
					f.aliases[pairs[0].li], joinCols(cols)))
			}
			// Probe with g's rows, staging flat (build, probe) hit pairs;
			// groupHits buckets them per f row so the output stays f-major.
			var hits []matchHit
			codes := make([]uint32, len(pairs))
			for j, b := range g.rows {
				ok := true
				for k, p := range pairs {
					if b[p.ri] == rel.NullCode {
						ok = false
						break
					}
					codes[k] = b[p.ri]
				}
				if !ok {
					continue
				}
				for _, i := range ix.LookupCodes(codes...) {
					hits = append(hits, matchHit{i: int32(i), j: int32(j)})
				}
			}
			emitMatchSet(out, f, g, groupHits(hits, len(f.rows)))
			r.azEmitted(out)
			return out, nil
		}
	}
	// Ad-hoc hash join: partitioned build over the smaller input, morsel-
	// parallel probe over the larger (see exec_parallel.go; both phases
	// degrade to serial loops below the parallel threshold).
	if len(f.rows) <= len(g.rows) {
		if r.azTracks() {
			r.azSet("", fmt.Sprintf("hash, %d key(s), build=left", len(pairs)))
		}
		var t0, t1 time.Time
		if r.azTracks() {
			t0 = time.Now()
		}
		ht := r.buildHashTable(f.rows, pairs, true)
		if r.azTracks() {
			t1 = time.Now()
		}
		hits := r.probeHits(g.rows, pairs, ht)
		emitMatchSet(out, f, g, groupHits(hits, len(f.rows)))
		if r.azTracks() {
			r.azBuildProbe(t1.Sub(t0), time.Since(t1))
			r.azEmitted(out)
		}
		return out, nil
	}
	if r.azTracks() {
		r.azSet("", fmt.Sprintf("hash, %d key(s), build=right", len(pairs)))
	}
	var t0, t1 time.Time
	if r.azTracks() {
		t0 = time.Now()
	}
	ht := r.buildHashTable(g.rows, pairs, false)
	if r.azTracks() {
		t1 = time.Now()
	}
	r.probeEmit(out, f, g, pairs, ht)
	if r.azTracks() {
		r.azBuildProbe(t1.Sub(t0), time.Since(t1))
	}
	return out, nil
}

// joinCols renders a join-column list for analyze details.
func joinCols(cols []string) string {
	out := ""
	for i, c := range cols {
		if i > 0 {
			out += ","
		}
		out += c
	}
	return out
}

// azEmitted charges the open analyze op with the bytes of the joined rows
// emitMatches materialized (4 bytes per code).
func (r *run) azEmitted(out *frame) {
	if r.az == nil || r.az.cur < 0 {
		return
	}
	r.azArena(int64(len(out.rows)) * int64(len(out.names)) * 4)
}

// matchHit is one (build row, probe row) join match. int32 halves the
// staging footprint; row counts here are bounded far below 2^31 by the
// protocol tables.
type matchHit struct{ i, j int32 }

// matchSet is the grouped form of a hit list: for build row i, its probe
// matches are idx[offs[i]:offs[i+1]], in probe order.
type matchSet struct {
	offs []int32
	idx  []int32
}

// groupHits buckets probe-order hits per build row with a counting sort —
// two passes and three exact allocations, replacing the per-build-row
// append churn that used to dominate join allocation. The sort is stable,
// so within each build row the probe order (and thus the emitted row
// order) is exactly the serial nested fill's.
func groupHits(hits []matchHit, nBuild int) matchSet {
	offs := make([]int32, nBuild+1)
	for _, h := range hits {
		offs[h.i+1]++
	}
	for i := 1; i <= nBuild; i++ {
		offs[i] += offs[i-1]
	}
	idx := make([]int32, len(hits))
	cur := make([]int32, nBuild)
	copy(cur, offs[:nBuild])
	for _, h := range hits {
		idx[cur[h.i]] = h.j
		cur[h.i]++
	}
	return matchSet{offs: offs, idx: idx}
}

// emitMatchSet appends f-major joined rows — for each f row in order, its
// matching g rows — carved from one exactly-sized allocation.
func emitMatchSet(out *frame, f, g *frame, ms matchSet) {
	total := len(ms.idx)
	if total == 0 {
		return
	}
	width := len(f.names) + len(g.names)
	flat := make([]uint32, total*width)
	out.rows = make([][]uint32, 0, total)
	k := 0
	for i, a := range f.rows {
		for _, j := range ms.idx[ms.offs[i]:ms.offs[i+1]] {
			row := flat[k : k+width : k+width]
			k += width
			copy(row, a)
			copy(row[len(a):], g.rows[j])
			out.rows = append(out.rows, row)
		}
	}
}

func splitAnd(e Expr) []Expr {
	if b, ok := e.(Binary); ok && b.Op == "AND" {
		return append(splitAnd(b.L), splitAnd(b.R)...)
	}
	return []Expr{e}
}

// rowKeyOf encodes a code row as a fixed-width injective key: 4 bytes per
// column, comparable across frames because every code comes from the one
// shared dictionary.
func rowKeyOf(vals []uint32) string {
	buf := make([]byte, 0, len(vals)*4)
	for _, c := range vals {
		buf = rel.AppendCodeKey(buf, c)
	}
	return string(buf)
}
