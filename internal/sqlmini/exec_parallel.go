package sqlmini

import (
	"coherdb/internal/pool"
	"coherdb/internal/rel"
)

// Morsel-driven parallel execution. Filter scans and hash-join phases that
// have at least two morsels of input run on the DB's worker pool: rows are
// dealt in contiguous batches from one atomic cursor (work stealing), each
// batch produces into its own buffer, and buffers merge in batch order.
// Because batch k always covers rows [k*morsel, (k+1)*morsel), the merged
// output is byte-identical to the serial scan regardless of worker count
// or scheduling — the determinism guarantee the golden equivalence tests
// pin down. Parallel phases evaluate only compiled predicates (CodePred),
// which are safe for concurrent use; the tree-walking interpreter touches
// the frame's resolution memo and therefore always runs serially.
//
// All row traffic here is dictionary codes: join keys are 4 bytes per
// column, partition selection hashes those bytes, and no rel.Value is
// boxed anywhere on the parallel path.

// codeArena carves code rows out of geometrically grown blocks, so
// emitting joined rows costs one allocation per block rather than one per
// row. The zero value is ready to use; arenas are not safe for concurrent
// use (parallel batches each carve from their own).
type codeArena struct {
	block []uint32
	off   int
	// grown counts the bytes of fresh blocks allocated, for EXPLAIN
	// ANALYZE's arena_bytes annotation.
	grown int64
}

const arenaMinBlock = 2048

// next carves an n-code row with capacity clamped to n, so appending to
// the returned slice can never bleed into the next row.
func (a *codeArena) next(n int) []uint32 {
	if n == 0 {
		return nil
	}
	if a.off+n > len(a.block) {
		size := 2 * len(a.block)
		if size < arenaMinBlock {
			size = arenaMinBlock
		}
		if size < n {
			size = n
		}
		a.block = make([]uint32, size)
		a.off = 0
		a.grown += int64(size) * 4
	}
	out := a.block[a.off : a.off+n : a.off+n]
	a.off += n
	return out
}

// undo returns the most recent next(n) carve to the arena, for callers
// that build a candidate row and then discard it.
func (a *codeArena) undo(n int) { a.off -= n }

// joinRow carves one row holding l followed by r.
func (a *codeArena) joinRow(l, r []uint32) []uint32 {
	row := a.next(len(l) + len(r))
	copy(row, l)
	copy(row[len(l):], r)
	return row
}

// evalPreds evaluates compiled conjuncts over one code row with WHERE
// short-circuiting: the first false or erroring conjunct decides.
func evalPreds(progs []CodePred, crow []uint32) (bool, error) {
	for _, p := range progs {
		ok, err := p(crow)
		if err != nil || !ok {
			return false, err
		}
	}
	return true, nil
}

// mergeParts concatenates per-morsel row buffers in batch order — the
// stable merge that keeps parallel output identical to the serial scan.
func mergeParts(parts [][][]uint32) [][]uint32 {
	n := 0
	for _, p := range parts {
		n += len(p)
	}
	out := make([][]uint32, 0, n)
	for _, p := range parts {
		out = append(out, p...)
	}
	return out
}

// parallelFilter runs the compiled filter over morsels of rows on the
// pool. ran reports whether the parallel path was taken; when it is false
// the caller falls back to the serial scan.
func (r *run) parallelFilter(rows [][]uint32, progs []CodePred) (kept [][]uint32, ran bool, err error) {
	p, workers, morsel := r.parallel(len(rows))
	if p == nil {
		return nil, false, nil
	}
	parts := make([][][]uint32, pool.Batches(len(rows), morsel))
	st, err := p.Each(workers, len(rows), morsel, func(batch, lo, hi int) error {
		part := make([][]uint32, 0, hi-lo)
		for _, row := range rows[lo:hi] {
			keep, err := evalPreds(progs, row)
			if err != nil {
				return err
			}
			if keep {
				part = append(part, row)
			}
		}
		parts[batch] = part
		return nil
	})
	r.qs.addParallel(st)
	if err != nil {
		return nil, true, err
	}
	return mergeParts(parts), true, nil
}

// bucket is one hash-table entry: the build-side row numbers sharing a
// join key, in input order. Buckets are pointers so probing and appending
// never re-hash the key string.
type bucket struct {
	rows []int
}

// hashTable is a (possibly partitioned) join hash table: a key's bucket
// lives in the partition selected by the key's hash, so partitions can be
// assembled by independent workers and probed without coordination.
type hashTable struct {
	parts []map[string]*bucket
}

// lookup returns the bucket for the encoded key, or nil. The
// string(key) conversions compile to allocation-free map probes.
func (h *hashTable) lookup(key []byte) *bucket {
	if len(h.parts) == 1 {
		return h.parts[0][string(key)]
	}
	return h.parts[rel.HashBytes(key)%uint64(len(h.parts))][string(key)]
}

// appendRowKey appends the injective join-key encoding of the row's key
// columns (the left or right half of each pair): 4 bytes per code, no
// separators needed because codes are fixed width. ok is false when any
// key column is NULL, which never matches.
func appendRowKey(buf []byte, crow []uint32, pairs []joinPair, left bool) ([]byte, bool) {
	for _, p := range pairs {
		i := p.ri
		if left {
			i = p.li
		}
		c := crow[i]
		if c == rel.NullCode {
			return buf, false
		}
		buf = rel.AppendCodeKey(buf, c)
	}
	return buf, true
}

// buildHashTable builds the join hash table over the build-side rows.
// Large builds run partitioned on the pool: morsels of rows are keyed and
// staged into per-batch partition lists, then one worker per partition
// assembles its map, walking the batches in order so every bucket's row
// list matches a serial build's exactly.
func (r *run) buildHashTable(rows [][]uint32, pairs []joinPair, left bool) *hashTable {
	p, workers, morsel := r.parallel(len(rows))
	if p == nil {
		m := make(map[string]*bucket, len(rows))
		var buf []byte
		for i, row := range rows {
			b, ok := appendRowKey(buf[:0], row, pairs, left)
			buf = b
			if !ok {
				continue
			}
			if bk, have := m[string(buf)]; have {
				bk.rows = append(bk.rows, i)
			} else {
				m[string(buf)] = &bucket{rows: []int{i}}
			}
		}
		return &hashTable{parts: []map[string]*bucket{m}}
	}
	type keyed struct {
		idx int
		key string
	}
	nparts := workers
	staged := make([][][]keyed, pool.Batches(len(rows), morsel))
	st, _ := p.Each(workers, len(rows), morsel, func(batch, lo, hi int) error {
		parts := make([][]keyed, nparts)
		var buf []byte
		for i := lo; i < hi; i++ {
			b, ok := appendRowKey(buf[:0], rows[i], pairs, left)
			buf = b
			if !ok {
				continue
			}
			pi := int(rel.HashBytes(buf) % uint64(nparts))
			parts[pi] = append(parts[pi], keyed{idx: i, key: string(buf)})
		}
		staged[batch] = parts
		return nil
	})
	r.qs.addParallel(st)
	tables := make([]map[string]*bucket, nparts)
	st, _ = p.Each(workers, nparts, 1, func(pi, _, _ int) error {
		m := make(map[string]*bucket)
		for _, parts := range staged {
			for _, kv := range parts[pi] {
				if bk, ok := m[kv.key]; ok {
					bk.rows = append(bk.rows, kv.idx)
				} else {
					m[kv.key] = &bucket{rows: []int{kv.idx}}
				}
			}
		}
		tables[pi] = m
		return nil
	})
	r.qs.addParallel(st)
	return &hashTable{parts: tables}
}

// probeEmit probes the hash table (built over g) with f's rows and emits
// joined rows f-major into out. Large probes run in morsels, each batch
// emitting into its own buffer and arena, merged in batch order.
func (r *run) probeEmit(out *frame, f, g *frame, pairs []joinPair, ht *hashTable) {
	rows := f.rows
	p, workers, morsel := r.parallel(len(rows))
	if p == nil {
		var ar codeArena
		var buf []byte
		for _, a := range rows {
			b, ok := appendRowKey(buf[:0], a, pairs, true)
			buf = b
			if !ok {
				continue
			}
			bk := ht.lookup(buf)
			if bk == nil {
				continue
			}
			for _, j := range bk.rows {
				out.rows = append(out.rows, ar.joinRow(a, g.rows[j]))
			}
		}
		return
	}
	parts := make([][][]uint32, pool.Batches(len(rows), morsel))
	st, _ := p.Each(workers, len(rows), morsel, func(batch, lo, hi int) error {
		var ar codeArena
		var buf []byte
		var part [][]uint32
		for _, a := range rows[lo:hi] {
			b, ok := appendRowKey(buf[:0], a, pairs, true)
			buf = b
			if !ok {
				continue
			}
			bk := ht.lookup(buf)
			if bk == nil {
				continue
			}
			for _, j := range bk.rows {
				part = append(part, ar.joinRow(a, g.rows[j]))
			}
		}
		parts[batch] = part
		return nil
	})
	r.qs.addParallel(st)
	out.rows = mergeParts(parts)
}

// probeHits probes the hash table (built over the f side) with the probe
// rows, returning the flat (build, probe) hit pairs in probe order —
// groupHits then buckets them per build row and emitMatchSet emits them
// f-major. Parallel batches stage their own hit lists and concatenate in
// batch order, which is exactly probe order, so the serial and parallel
// hit sequences are identical.
func (r *run) probeHits(rows [][]uint32, pairs []joinPair, ht *hashTable) []matchHit {
	p, workers, morsel := r.parallel(len(rows))
	if p == nil {
		var hits []matchHit
		var buf []byte
		for j, row := range rows {
			b, ok := appendRowKey(buf[:0], row, pairs, false)
			buf = b
			if !ok {
				continue
			}
			bk := ht.lookup(buf)
			if bk == nil {
				continue
			}
			for _, i := range bk.rows {
				hits = append(hits, matchHit{i: int32(i), j: int32(j)})
			}
		}
		return hits
	}
	staged := make([][]matchHit, pool.Batches(len(rows), morsel))
	st, _ := p.Each(workers, len(rows), morsel, func(batch, lo, hi int) error {
		var buf []byte
		var hits []matchHit
		for j := lo; j < hi; j++ {
			b, ok := appendRowKey(buf[:0], rows[j], pairs, false)
			buf = b
			if !ok {
				continue
			}
			bk := ht.lookup(buf)
			if bk == nil {
				continue
			}
			for _, i := range bk.rows {
				hits = append(hits, matchHit{i: int32(i), j: int32(j)})
			}
		}
		staged[batch] = hits
		return nil
	})
	r.qs.addParallel(st)
	total := 0
	for _, h := range staged {
		total += len(h)
	}
	hits := make([]matchHit, 0, total)
	for _, h := range staged {
		hits = append(hits, h...)
	}
	return hits
}
