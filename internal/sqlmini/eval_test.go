package sqlmini

import (
	"errors"
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"coherdb/internal/rel"
)

func evalIn(t *testing.T, ev *Evaluator, src string, env Env) rel.Value {
	t.Helper()
	e, err := ParseExpr(src)
	if err != nil {
		t.Fatalf("parse %q: %v", src, err)
	}
	v, err := ev.Eval(e, env)
	if err != nil {
		t.Fatalf("eval %q: %v", src, err)
	}
	return v
}

func constraintEval() *Evaluator {
	return &Evaluator{Funcs: map[string]Func{}, NullEq: true}
}

func sqlEval() *Evaluator {
	return &Evaluator{Funcs: map[string]Func{}, NullEq: false}
}

func TestEvalPaperConstraint(t *testing.T) {
	ev := constraintEval()
	env := MapEnv{"inmsg": rel.S("data"), "dirst": rel.S("Busy-d"), "dirpv": rel.S("zero")}
	v := evalIn(t, ev, `inmsg = "data" and dirst = "Busy-d" ? dirpv = "zero" : dirpv = "one"`, env)
	if !v.Bool() {
		t.Fatal("constraint should hold on the Fig. 3 row")
	}
	env["dirpv"] = rel.S("one")
	v = evalIn(t, ev, `inmsg = "data" and dirst = "Busy-d" ? dirpv = "zero" : dirpv = "one"`, env)
	if v.Bool() {
		t.Fatal("constraint should fail when dirpv is one in Busy-d")
	}
}

func TestEvalNullEqDialect(t *testing.T) {
	ev := constraintEval()
	env := MapEnv{"remmsg": rel.Null()}
	if v := evalIn(t, ev, `remmsg = NULL`, env); !v.Bool() {
		t.Fatal("constraint dialect: NULL = NULL must hold")
	}
	if v := evalIn(t, ev, `remmsg <> NULL`, env); v.Bool() {
		t.Fatal("constraint dialect: NULL <> NULL must not hold")
	}
	env["remmsg"] = rel.S("sinv")
	if v := evalIn(t, ev, `remmsg = NULL`, env); v.Bool() {
		t.Fatal("sinv = NULL must not hold")
	}
	if v := evalIn(t, ev, `remmsg < NULL`, env); v.Bool() || v.IsNull() {
		t.Fatal("ordered comparison against NULL is false in constraint dialect")
	}
}

func TestEvalStrictSQLNulls(t *testing.T) {
	ev := sqlEval()
	env := MapEnv{"x": rel.Null()}
	if v := evalIn(t, ev, `x = NULL`, env); !v.IsNull() {
		t.Fatal("ANSI: NULL = NULL is unknown")
	}
	// Kleene: unknown OR true = true; unknown AND false = false.
	if v := evalIn(t, ev, `x = NULL or 1 = 1`, env); !v.Bool() {
		t.Fatal("unknown OR true must be true")
	}
	if v := evalIn(t, ev, `x = NULL and 1 = 2`, env); v.IsNull() || v.Bool() {
		t.Fatal("unknown AND false must be false")
	}
	if v := evalIn(t, ev, `not x = NULL`, env); !v.IsNull() {
		t.Fatal("NOT unknown must stay unknown")
	}
}

func TestEvalComparisonOperators(t *testing.T) {
	ev := constraintEval()
	env := MapEnv{"n": rel.I(5), "s": rel.S("abc")}
	cases := map[string]bool{
		`n = 5`:   true,
		`n <> 5`:  false,
		`n < 6`:   true,
		`n <= 5`:  true,
		`n > 5`:   false,
		`n >= 5`:  true,
		`s = abc`: false, // bare abc is an unknown column -> error caught below
	}
	for src, want := range cases {
		if src == `s = abc` {
			continue
		}
		if v := evalIn(t, ev, src, env); v.Bool() != want {
			t.Errorf("%s = %v, want %v", src, v, want)
		}
	}
	// Unknown column errors.
	e, _ := ParseExpr(`s = abc`)
	if _, err := ev.Eval(e, env); !errors.Is(err, ErrUnknownColumn) {
		t.Fatalf("err = %v, want ErrUnknownColumn", err)
	}
}

func TestEvalCrossKindComparisons(t *testing.T) {
	ev := constraintEval()
	env := MapEnv{"n": rel.I(1), "s": rel.S("1")}
	if v := evalIn(t, ev, `n = s`, env); v.Bool() {
		t.Fatal("int 1 must not equal string '1'")
	}
	if v := evalIn(t, ev, `n < s`, env); v.Bool() {
		t.Fatal("ordered cross-kind comparison must be false")
	}
}

func TestEvalInList(t *testing.T) {
	ev := constraintEval()
	env := MapEnv{"m": rel.S("readex")}
	if v := evalIn(t, ev, `m in ('read', 'readex', 'wb')`, env); !v.Bool() {
		t.Fatal("IN must match")
	}
	if v := evalIn(t, ev, `m not in ('read', 'wb')`, env); !v.Bool() {
		t.Fatal("NOT IN must hold")
	}
	env["m"] = rel.Null()
	if v := evalIn(t, ev, `m in ('read', NULL)`, env); !v.Bool() {
		t.Fatal("constraint dialect: NULL IN (..., NULL) must hold")
	}
}

func TestEvalIsNullAndBetween(t *testing.T) {
	ev := sqlEval()
	env := MapEnv{"x": rel.Null(), "n": rel.I(3)}
	if v := evalIn(t, ev, `x is null`, env); !v.Bool() {
		t.Fatal("IS NULL")
	}
	if v := evalIn(t, ev, `n is not null`, env); !v.Bool() {
		t.Fatal("IS NOT NULL")
	}
	if v := evalIn(t, ev, `n between 1 and 5`, env); !v.Bool() {
		t.Fatal("BETWEEN")
	}
	if v := evalIn(t, ev, `n not between 4 and 5`, env); !v.Bool() {
		t.Fatal("NOT BETWEEN")
	}
}

func TestEvalTernaryUnknownCondTakesElse(t *testing.T) {
	ev := sqlEval()
	env := MapEnv{"x": rel.Null()}
	v := evalIn(t, ev, `x = 1 ? 'then' : 'else'`, env)
	if v.Str() != "else" {
		t.Fatalf("v = %v, want else branch on unknown condition", v)
	}
}

func TestEvalCase(t *testing.T) {
	ev := constraintEval()
	env := MapEnv{"pv": rel.S("gone")}
	v := evalIn(t, ev, `case when pv = zerov then 0 when pv = "gone" then 2 else 1 end`,
		MapEnv{"pv": rel.S("gone"), "zerov": rel.S("zero")})
	if v.Int() != 2 {
		t.Fatalf("case = %v", v)
	}
	v = evalIn(t, ev, `case when pv = "zero" then 0 end`, env)
	if !v.IsNull() {
		t.Fatal("CASE with no match and no ELSE is NULL")
	}
}

func TestEvalCalls(t *testing.T) {
	ev := constraintEval()
	ev.Funcs["isrequest"] = func(args []rel.Value) (rel.Value, error) {
		if len(args) != 1 {
			return rel.Null(), fmt.Errorf("want 1 arg")
		}
		return rel.B(args[0].Str() == "readex" || args[0].Str() == "wb"), nil
	}
	env := MapEnv{"inmsg": rel.S("wb")}
	if v := evalIn(t, ev, `isrequest(inmsg)`, env); !v.Bool() {
		t.Fatal("isrequest(wb) must be true")
	}
	e, _ := ParseExpr(`nosuchfn(inmsg)`)
	if _, err := ev.Eval(e, env); !errors.Is(err, ErrUnknownFunc) {
		t.Fatalf("err = %v", err)
	}
}

func TestColumnsCollection(t *testing.T) {
	e := mustExpr(t, `inmsg = "data" and dirst = "Busy-d" ? dirpv = "zero" : isrequest(locmsg)`)
	got := Columns(e)
	for _, want := range []string{"inmsg", "dirst", "dirpv", "locmsg"} {
		if _, ok := got[want]; !ok {
			t.Errorf("Columns missing %q", want)
		}
	}
	if len(got) != 4 {
		t.Errorf("Columns = %v", got)
	}
}

func TestResolveSymbols(t *testing.T) {
	isCol := func(s string) bool { return s == "inmsg" || s == "dirst" || s == "remmsg" }
	e := mustExpr(t, `inmsg = readex and dirst = SI ? remmsg = sinv : remmsg = NULL`)
	r := ResolveSymbols(e, isCol)
	ev := constraintEval()
	env := MapEnv{"inmsg": rel.S("readex"), "dirst": rel.S("SI"), "remmsg": rel.S("sinv")}
	v, err := ev.Eval(r, env)
	if err != nil {
		t.Fatal(err)
	}
	if !v.Bool() {
		t.Fatal("resolved constraint must hold")
	}
	// Symbols inside every construct resolve.
	e2 := mustExpr(t, `case when inmsg in (readex, wb) then one else two end`)
	r2 := ResolveSymbols(e2, isCol)
	v, err = ev.Eval(r2, MapEnv{"inmsg": rel.S("wb")})
	if err != nil {
		t.Fatal(err)
	}
	if v.Str() != "one" {
		t.Fatalf("v = %v", v)
	}
}

// Property: for random NULL-free environments, the constraint dialect and
// ANSI dialect agree on every comparison.
func TestQuickDialectsAgreeWithoutNulls(t *testing.T) {
	ops := []string{"=", "<>", "<", "<=", ">", ">="}
	f := func(a, b int64, opIdx uint8) bool {
		op := ops[int(opIdx)%len(ops)]
		e := Binary{Op: op, L: Lit{Val: rel.I(a)}, R: Lit{Val: rel.I(b)}}
		c := constraintEval()
		s := sqlEval()
		v1, err1 := c.Eval(e, MapEnv{})
		v2, err2 := s.Eval(e, MapEnv{})
		return err1 == nil && err2 == nil && v1.Equal(v2)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

// Property: NOT is an involution on three-valued logic.
func TestQuickDoubleNegation(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		var v rel.Value
		switch r.Intn(3) {
		case 0:
			v = rel.Null()
		case 1:
			v = rel.B(true)
		default:
			v = rel.B(false)
		}
		ev := sqlEval()
		e := Unary{Op: "NOT", X: Unary{Op: "NOT", X: Lit{Val: v}}}
		got, err := ev.Eval(e, MapEnv{})
		if err != nil {
			return false
		}
		want, err := ev.Eval(Lit{Val: v}, MapEnv{})
		if err != nil {
			return false
		}
		return triOf(got) == triOf(want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// Property: De Morgan holds in Kleene logic: NOT(a AND b) == NOT a OR NOT b.
func TestQuickDeMorgan(t *testing.T) {
	vals := []rel.Value{rel.Null(), rel.B(true), rel.B(false)}
	ev := sqlEval()
	for _, a := range vals {
		for _, b := range vals {
			lhs := Unary{Op: "NOT", X: Binary{Op: "AND", L: Lit{Val: a}, R: Lit{Val: b}}}
			rhs := Binary{Op: "OR", L: Unary{Op: "NOT", X: Lit{Val: a}}, R: Unary{Op: "NOT", X: Lit{Val: b}}}
			v1, err1 := ev.Eval(lhs, MapEnv{})
			v2, err2 := ev.Eval(rhs, MapEnv{})
			if err1 != nil || err2 != nil || triOf(v1) != triOf(v2) {
				t.Fatalf("De Morgan fails for %v, %v: %v vs %v", a, b, v1, v2)
			}
		}
	}
}
