package sqlmini

import (
	"testing"

	"coherdb/internal/rel"
)

func groupDB(t *testing.T) *DB {
	t.Helper()
	db := NewDB()
	if err := db.ExecScript(`
		CREATE TABLE msgs (m, class, vc);
		INSERT INTO msgs VALUES
			('readex', 'request',  'VC0'),
			('read',   'request',  'VC0'),
			('sinv',   'request',  'VC1'),
			('idone',  'response', 'VC2'),
			('data',   'response', 'VC3'),
			('compl',  'response', 'VC3')`); err != nil {
		t.Fatal(err)
	}
	return db
}

func TestGroupByCount(t *testing.T) {
	db := groupDB(t)
	res, err := db.Query(`SELECT class, COUNT(*) AS n FROM msgs GROUP BY class`)
	if err != nil {
		t.Fatal(err)
	}
	if res.NumRows() != 2 {
		t.Fatalf("groups = %d\n%s", res.NumRows(), res)
	}
	for i := 0; i < res.NumRows(); i++ {
		if res.Get(i, "n").Int() != 3 {
			t.Fatalf("group %v count = %v", res.Get(i, "class"), res.Get(i, "n"))
		}
	}
}

func TestGroupByMultipleKeys(t *testing.T) {
	db := groupDB(t)
	res, err := db.Query(`SELECT class, vc, COUNT(*) AS n FROM msgs GROUP BY class, vc`)
	if err != nil {
		t.Fatal(err)
	}
	if res.NumRows() != 4 { // (request,VC0)=2 (request,VC1)=1 (response,VC2)=1 (response,VC3)=2
		t.Fatalf("groups = %d\n%s", res.NumRows(), res)
	}
}

func TestHavingFiltersGroups(t *testing.T) {
	db := groupDB(t)
	res, err := db.Query(`SELECT vc, COUNT(*) AS n FROM msgs GROUP BY vc HAVING COUNT(*) > 1`)
	if err != nil {
		t.Fatal(err)
	}
	if res.NumRows() != 2 { // VC0 and VC3
		t.Fatalf("groups = %d\n%s", res.NumRows(), res)
	}
	for i := 0; i < res.NumRows(); i++ {
		if res.Get(i, "n").Int() != 2 {
			t.Fatalf("bad group survived HAVING:\n%s", res)
		}
	}
}

func TestGroupByWithWhere(t *testing.T) {
	db := groupDB(t)
	res, err := db.Query(`SELECT vc, COUNT(*) AS n FROM msgs WHERE class = 'request' GROUP BY vc`)
	if err != nil {
		t.Fatal(err)
	}
	if res.NumRows() != 2 {
		t.Fatalf("groups = %d\n%s", res.NumRows(), res)
	}
}

func TestGroupByDuplicateDetectionIdiom(t *testing.T) {
	// The determinism-invariant idiom: duplicate key detection.
	db := groupDB(t)
	if _, err := db.Exec(`INSERT INTO msgs VALUES ('readex', 'request', 'VC9')`); err != nil {
		t.Fatal(err)
	}
	res, err := db.Query(`SELECT m, COUNT(*) AS n FROM msgs GROUP BY m HAVING COUNT(*) > 1`)
	if err != nil {
		t.Fatal(err)
	}
	if res.NumRows() != 1 || !res.Get(0, "m").Equal(rel.S("readex")) {
		t.Fatalf("duplicate not isolated:\n%s", res)
	}
	if res.Get(0, "n").Int() != 2 {
		t.Fatalf("count = %v", res.Get(0, "n"))
	}
}

func TestGroupByEmptyInput(t *testing.T) {
	db := groupDB(t)
	res, err := db.Query(`SELECT m, COUNT(*) FROM msgs WHERE m = 'ghost' GROUP BY m`)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Empty() {
		t.Fatalf("rows = %d", res.NumRows())
	}
}

func TestGroupByOrderBy(t *testing.T) {
	db := groupDB(t)
	res, err := db.Query(`SELECT vc, COUNT(*) AS n FROM msgs GROUP BY vc ORDER BY n DESC, vc`)
	if err != nil {
		t.Fatal(err)
	}
	// Counts: VC0=2, VC3=2, VC1=1, VC2=1 -> order VC0, VC3, VC1, VC2.
	want := []string{"VC0", "VC3", "VC1", "VC2"}
	for i, w := range want {
		if res.Get(i, "vc").Str() != w {
			t.Fatalf("row %d = %v, want %s\n%s", i, res.Get(i, "vc"), w, res)
		}
	}
}

func TestGroupByLimit(t *testing.T) {
	db := groupDB(t)
	res, err := db.Query(`SELECT m, COUNT(*) AS n FROM msgs GROUP BY m LIMIT 2`)
	if err != nil {
		t.Fatal(err)
	}
	if res.NumRows() != 2 {
		t.Fatalf("rows = %d", res.NumRows())
	}
}

func TestMinMaxAggregates(t *testing.T) {
	db := groupDB(t)
	res, err := db.Query(`SELECT class, MIN(m) AS lo, MAX(m) AS hi, COUNT(*) AS n FROM msgs GROUP BY class ORDER BY class`)
	if err != nil {
		t.Fatal(err)
	}
	if res.NumRows() != 2 {
		t.Fatalf("rows = %d\n%s", res.NumRows(), res)
	}
	// requests: read, readex, sinv -> min=read, max=sinv
	if res.Get(0, "lo").Str() != "read" || res.Get(0, "hi").Str() != "sinv" {
		t.Fatalf("request min/max wrong:\n%s", res)
	}
	// responses: compl, data, idone -> min=compl, max=idone
	if res.Get(1, "lo").Str() != "compl" || res.Get(1, "hi").Str() != "idone" {
		t.Fatalf("response min/max wrong:\n%s", res)
	}
}

func TestMinMaxWholeTable(t *testing.T) {
	db := groupDB(t)
	res, err := db.Query(`SELECT MIN(m) AS lo, MAX(vc) AS hi FROM msgs`)
	if err != nil {
		t.Fatal(err)
	}
	if res.NumRows() != 1 || res.Get(0, "lo").Str() != "compl" || res.Get(0, "hi").Str() != "VC3" {
		t.Fatalf("whole-table aggregate wrong:\n%s", res)
	}
}

func TestMinMaxSkipsNulls(t *testing.T) {
	db := NewDB()
	if err := db.ExecScript(`CREATE TABLE t (a); INSERT INTO t VALUES (NULL), (3), (NULL), (1)`); err != nil {
		t.Fatal(err)
	}
	res, err := db.Query(`SELECT MIN(a) AS lo, MAX(a) AS hi FROM t`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Get(0, "lo").Int() != 1 || res.Get(0, "hi").Int() != 3 {
		t.Fatalf("NULL handling wrong:\n%s", res)
	}
}

func TestHavingWithMinMax(t *testing.T) {
	db := groupDB(t)
	// VC3 carries {compl, data}: MAX is data.
	res, err := db.Query(`SELECT vc FROM msgs GROUP BY vc HAVING MAX(m) = 'data'`)
	if err != nil {
		t.Fatal(err)
	}
	if res.NumRows() != 1 || res.Get(0, "vc").Str() != "VC3" {
		t.Fatalf("HAVING max wrong:\n%s", res)
	}
}

func TestGroupByErrors(t *testing.T) {
	db := groupDB(t)
	for _, q := range []string{
		`SELECT m FROM msgs GROUP BY`,
		`SELECT m FROM msgs GROUP m`,
		`SELECT m FROM msgs GROUP BY nosuchcol`,
		`SELECT m FROM msgs GROUP BY m HAVING nosuch(m)`,
	} {
		if _, err := db.Query(q); err == nil {
			t.Errorf("%q must fail", q)
		}
	}
}
