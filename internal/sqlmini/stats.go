package sqlmini

import (
	"time"

	"coherdb/internal/obs"
	"coherdb/internal/pool"
)

// QueryStats describes the work one statement did: the paper's invariant
// queries are claimed to be "fast enough to run on every revision", and
// these numbers say where each statement's time went.
type QueryStats struct {
	// Kind is the statement verb: SELECT, EXPLAIN, CREATE, INSERT,
	// DELETE, UPDATE, DROP.
	Kind string
	// Statement is the source text, when the statement came in as text
	// (empty for pre-parsed ExecStmt calls).
	Statement string
	// PlanCache is "hit" when the statement reused a cached parse+plan,
	// "miss" when it was parsed and planned fresh, and "" for pre-parsed
	// ExecStmt calls that bypass the cache.
	PlanCache string
	// RowsScanned counts base-table rows read while building the working
	// frames (and rows examined by DELETE/UPDATE). An index scan counts
	// only the rows its bucket returned.
	RowsScanned int
	// RowsProduced counts result rows (SELECT) or affected rows (DML).
	RowsProduced int
	// HashJoins and LoopJoins count JOIN ... ON clauses by the strategy
	// the executor chose: equality conjunctions hash, everything else
	// falls back to a filtered nested loop. IndexJoins counts the hash
	// joins that probed a persistent base-table index instead of
	// building an ad-hoc hash table.
	HashJoins, LoopJoins, IndexJoins int
	// IndexScans counts table scans answered from a persistent index on
	// pushed-down equality conjuncts.
	IndexScans int
	// PushdownHits counts WHERE conjuncts that were pushed below a join
	// and applied while scanning a single base table.
	PushdownHits int
	// Morsels and Steals describe the statement's parallel phases: row
	// batches dealt to the worker pool, and batches a worker claimed
	// beyond its fair share (skewed work rebalanced by stealing). Both
	// are zero for statements that ran entirely serially.
	Morsels, Steals int
	// VecBatches counts selection-vector batches evaluated column-at-a-
	// time; VecRowsIn/VecRowsOut are the rows entering and surviving the
	// vectorized filter cascades (their ratio is the statement's overall
	// selection density). All zero when the statement ran scalar.
	VecBatches            int
	VecRowsIn, VecRowsOut int
	// WorkerBusy is each pool participant's busy time, one entry per
	// participant per parallel phase (the phase's caller first).
	WorkerBusy []time.Duration
	// Elapsed is the statement's total evaluation time.
	Elapsed time.Duration

	// tok is the statement's query-log handle (nil when no log is
	// installed); the accumulators feed it rows-so-far and phase so the
	// /queries endpoint shows live progress.
	tok *obs.QueryToken
}

// Nil-tolerant accumulators so the executor can record without guarding
// every call site (the stats pointer is nil outside an instrumented
// statement).

func (q *QueryStats) addScanned(n int) {
	if q != nil {
		q.RowsScanned += n
		q.tok.AddRows(int64(n))
	}
}

func (q *QueryStats) addProduced(n int) {
	if q != nil {
		q.RowsProduced += n
	}
}

// phase publishes the statement's current execution phase to the query
// log, when one is attached; a single nil check otherwise.
func (q *QueryStats) phase(p obs.QueryPhase) {
	if q != nil && q.tok != nil {
		q.tok.SetPhase(p)
	}
}

func (q *QueryStats) addHashJoin() {
	if q != nil {
		q.HashJoins++
	}
}

func (q *QueryStats) addLoopJoin() {
	if q != nil {
		q.LoopJoins++
	}
}

func (q *QueryStats) addIndexJoin() {
	if q != nil {
		q.IndexJoins++
	}
}

func (q *QueryStats) addIndexScan() {
	if q != nil {
		q.IndexScans++
	}
}

func (q *QueryStats) addPushdown(n int) {
	if q != nil {
		q.PushdownHits += n
	}
}

func (q *QueryStats) addVec(batches, in, out int) {
	if q != nil {
		q.VecBatches += batches
		q.VecRowsIn += in
		q.VecRowsOut += out
	}
}

func (q *QueryStats) addParallel(st pool.Stats) {
	if q == nil || st.Morsels == 0 {
		return
	}
	q.Morsels += st.Morsels
	q.Steals += st.Steals
	q.WorkerBusy = append(q.WorkerBusy, st.Busy...)
}

// DBStats aggregates QueryStats over the life of a DB.
type DBStats struct {
	// Statements counts every executed statement; Queries counts the
	// SELECTs among them.
	Statements, Queries int64
	// RowsScanned, RowsProduced, HashJoins, LoopJoins, IndexJoins,
	// IndexScans and PushdownHits sum the per-statement numbers.
	RowsScanned, RowsProduced                    int64
	HashJoins, LoopJoins, IndexJoins, IndexScans int64
	PushdownHits                                 int64
	// Morsels and Steals sum the per-statement parallel-phase numbers.
	Morsels, Steals int64
	// VecBatches, VecRowsIn and VecRowsOut sum the per-statement
	// vectorized-filter numbers.
	VecBatches, VecRowsIn, VecRowsOut int64
	// PlanCacheHits and PlanCacheMisses count text statements served
	// from (resp. inserted into) the plan cache.
	PlanCacheHits, PlanCacheMisses int64
	// EvalTime is the total statement evaluation time.
	EvalTime time.Duration
	// LastQuery is the most recent statement's stats.
	LastQuery QueryStats
}

func (s *DBStats) fold(q *QueryStats) {
	s.Statements++
	if q.Kind == "SELECT" {
		s.Queries++
	}
	s.RowsScanned += int64(q.RowsScanned)
	s.RowsProduced += int64(q.RowsProduced)
	s.HashJoins += int64(q.HashJoins)
	s.LoopJoins += int64(q.LoopJoins)
	s.IndexJoins += int64(q.IndexJoins)
	s.IndexScans += int64(q.IndexScans)
	s.PushdownHits += int64(q.PushdownHits)
	s.Morsels += int64(q.Morsels)
	s.Steals += int64(q.Steals)
	s.VecBatches += int64(q.VecBatches)
	s.VecRowsIn += int64(q.VecRowsIn)
	s.VecRowsOut += int64(q.VecRowsOut)
	switch q.PlanCache {
	case "hit":
		s.PlanCacheHits++
	case "miss":
		s.PlanCacheMisses++
	}
	s.EvalTime += q.Elapsed
	s.LastQuery = *q
}

// stmtKind names the statement verb for stats and spans.
func stmtKind(stmt Stmt) string {
	switch stmt.(type) {
	case *SelectStmt:
		return "SELECT"
	case *ExplainStmt:
		return "EXPLAIN"
	case *CreateStmt:
		return "CREATE"
	case *DropStmt:
		return "DROP"
	case *InsertStmt:
		return "INSERT"
	case *DeleteStmt:
		return "DELETE"
	case *UpdateStmt:
		return "UPDATE"
	default:
		return "UNKNOWN"
	}
}
