package sqlmini

import (
	"strings"
	"testing"

	"coherdb/internal/rel"
)

func TestTokenKindStrings(t *testing.T) {
	for _, k := range []TokKind{TokEOF, TokIdent, TokKeyword, TokString, TokNumber, TokSymbol} {
		if k.String() == "" {
			t.Fatalf("kind %d has empty name", k)
		}
	}
	if TokKind(200).String() != "token" {
		t.Fatal("unknown kind rendering")
	}
	if (Token{Kind: TokEOF}).String() != "end of input" {
		t.Fatal("EOF token rendering")
	}
}

func TestPutAndDropTable(t *testing.T) {
	db := NewDB()
	tab := rel.MustNewTable("X", "a")
	tab.MustInsert(rel.S("v"))
	db.PutTable(tab)
	got, ok := db.Table("X")
	if !ok || got.NumRows() != 1 {
		t.Fatal("PutTable lost the table")
	}
	if !db.DropTable("X") {
		t.Fatal("DropTable missed")
	}
	if db.DropTable("X") {
		t.Fatal("double drop reported true")
	}
}

func TestExprStringAllNodes(t *testing.T) {
	exprs := []string{
		`a = 1 ? b : c`,
		`a NOT IN ('x')`,
		`a IS NULL`,
		`a IS NOT NULL`,
		`a NOT BETWEEN 1 AND 2`,
		`NOT a`,
		`CASE WHEN a = 1 THEN 'x' END`,
		`f(a, 'lit', 3)`,
		`q.col = TRUE`,
		`a <= 2 OR a >= 4`,
	}
	for _, src := range exprs {
		e := mustExpr(t, src)
		s := e.String()
		if s == "" {
			t.Fatalf("empty rendering for %q", src)
		}
		// Must reparse.
		if _, err := ParseExpr(s); err != nil {
			t.Fatalf("rendering of %q does not reparse: %q: %v", src, s, err)
		}
	}
}

func TestColumnsOverEveryConstruct(t *testing.T) {
	e := mustExpr(t, `case when a in (b, 1) then c else d end ? e is null : f between g and h`)
	got := Columns(e)
	for _, want := range []string{"a", "b", "c", "d", "e", "f", "g", "h"} {
		if _, ok := got[want]; !ok {
			t.Errorf("missing %q in %v", want, got)
		}
	}
}

func TestResolveSymbolsOverEveryConstruct(t *testing.T) {
	isCol := func(s string) bool { return s == "col" }
	e := mustExpr(t, `case when col in (sym1, sym2) then sym3 else sym4 end ? col is not null : col between lo and hi`)
	r := ResolveSymbols(e, isCol)
	refs := Columns(r)
	if len(refs) != 1 {
		t.Fatalf("unresolved symbols remain: %v", refs)
	}
	// not + call + qualified col pass through.
	e2 := mustExpr(t, `not f(col, sym) and T.q = sym2`)
	r2 := ResolveSymbols(e2, isCol)
	refs2 := Columns(r2)
	if _, ok := refs2["q"]; !ok {
		t.Fatal("qualified column must survive resolution")
	}
	if _, ok := refs2["sym"]; ok {
		t.Fatal("call argument symbol not resolved")
	}
}

func TestLexMinusAfterParen(t *testing.T) {
	toks, err := Lex(`(a) - 1`)
	if err != nil {
		t.Fatal(err)
	}
	// After ')' the '-' is a symbol, not part of a number.
	found := false
	for _, tok := range toks {
		if tok.Kind == TokSymbol && tok.Text == "-" {
			found = true
		}
	}
	if !found {
		t.Fatalf("binary minus mis-lexed: %v", toks)
	}
}

func TestParseFromTableWithExplicitAs(t *testing.T) {
	s, err := ParseStatement(`SELECT x.a FROM t AS x`)
	if err != nil {
		t.Fatal(err)
	}
	if s.(*SelectStmt).From[0].Alias != "x" {
		t.Fatal("AS alias lost")
	}
	if _, err := ParseStatement(`SELECT a FROM t AS`); err == nil {
		t.Fatal("dangling AS must fail")
	}
	if _, err := ParseStatement(`SELECT a FROM t JOIN u AS ON a = b`); err == nil {
		t.Fatal("bad join alias must fail")
	}
}

func TestParseBetweenErrors(t *testing.T) {
	for _, src := range []string{
		`a BETWEEN 1`,
		`a BETWEEN 1 OR 2`,
		`a NOT BETWEEN`,
	} {
		if _, err := ParseExpr(src); err == nil {
			t.Errorf("%q must fail", src)
		}
	}
}

func TestParseCaseErrors(t *testing.T) {
	for _, src := range []string{
		`CASE WHEN a THEN END`,
		`CASE WHEN a = 1 THEN 2`,
		`CASE WHEN THEN 2 END`,
	} {
		if _, err := ParseExpr(src); err == nil {
			t.Errorf("%q must fail", src)
		}
	}
}

func TestOrderByMultipleKeys(t *testing.T) {
	db := NewDB()
	if err := db.ExecScript(`
		CREATE TABLE t (a, b);
		INSERT INTO t VALUES (2, 'x'), (1, 'z'), (1, 'a'), (2, 'a')`); err != nil {
		t.Fatal(err)
	}
	res, err := db.Query(`SELECT a, b FROM t ORDER BY a, b DESC`)
	if err != nil {
		t.Fatal(err)
	}
	want := [][2]string{{"1", "z"}, {"1", "a"}, {"2", "x"}, {"2", "a"}}
	for i, w := range want {
		if res.Get(i, "a").String() != w[0] || res.Get(i, "b").Str() != w[1] {
			t.Fatalf("row %d = %v,%v want %v", i, res.Get(i, "a"), res.Get(i, "b"), w)
		}
	}
}

func TestSelectExpressionItems(t *testing.T) {
	db := NewDB()
	if err := db.ExecScript(`CREATE TABLE t (a); INSERT INTO t VALUES (1), (5)`); err != nil {
		t.Fatal(err)
	}
	res, err := db.Query(`SELECT a BETWEEN 2 AND 9 AS mid, CASE WHEN a = 1 THEN 'one' ELSE 'many' END AS tag FROM t`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Get(0, "mid").Bool() || !res.Get(1, "mid").Bool() {
		t.Fatalf("between projection wrong:\n%s", res)
	}
	if res.Get(0, "tag").Str() != "one" || res.Get(1, "tag").Str() != "many" {
		t.Fatalf("case projection wrong:\n%s", res)
	}
}

func TestUnionThreeBranches(t *testing.T) {
	db := NewDB()
	if err := db.ExecScript(`
		CREATE TABLE t (a);
		INSERT INTO t VALUES (1), (2), (3)`); err != nil {
		t.Fatal(err)
	}
	res, err := db.Query(`SELECT a FROM t WHERE a = 1
		UNION SELECT a FROM t WHERE a = 2
		UNION ALL SELECT a FROM t WHERE a = 2`)
	if err != nil {
		t.Fatal(err)
	}
	if res.NumRows() != 3 {
		t.Fatalf("rows = %d\n%s", res.NumRows(), res)
	}
}

func TestEvalErrorsPropagate(t *testing.T) {
	db := NewDB()
	if err := db.ExecScript(`CREATE TABLE t (a); INSERT INTO t VALUES (1)`); err != nil {
		t.Fatal(err)
	}
	for _, q := range []string{
		`SELECT nosuch(a) FROM t`,
		`SELECT a FROM t WHERE nosuch(a)`,
		`SELECT a FROM t ORDER BY nosuch(a)`,
		`SELECT a FROM t WHERE ghostcol = 1`,
		`UPDATE t SET a = nosuch(a)`,
		`DELETE FROM t WHERE nosuch(a)`,
		`INSERT INTO t VALUES (nosuch(1))`,
	} {
		if _, err := db.Exec(q); err == nil {
			t.Errorf("%q must fail", q)
		}
	}
}

func TestSelectItemStringNames(t *testing.T) {
	db := NewDB()
	if err := db.ExecScript(`CREATE TABLE t (a); INSERT INTO t VALUES (1)`); err != nil {
		t.Fatal(err)
	}
	// An unaliased expression item is named by its rendering.
	res, err := db.Query(`SELECT a = 1 FROM t`)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(res.Columns()[0], "a = 1") {
		t.Fatalf("column name = %q", res.Columns()[0])
	}
}
