package sqlmini

import (
	"sync"

	"coherdb/internal/rel"
)

// Column-at-a-time sweep evaluation: the vectorized counterpart of
// CompileSweep. The constraint solver extends a candidate row by sweeping
// one column across its domain; CompileSweep makes each sweep cheap by
// caching sweep-stable subtrees per row, but the per-value cost is still a
// full closure-tree walk — memo checks, ternary-chain dispatch, one
// virtual call per node per domain value. CompileSweepVec inverts the
// loop: each compiled node evaluates the WHOLE domain per call, so stable
// subtrees are computed once per row and broadcast, a ternary with a
// stable condition descends only the chosen branch, and the sweep-reading
// leaves (=, <>, IN, IS NULL against the swept column) become tight loops
// over the domain's code vector. Subtrees the vectorizer cannot lower —
// ordered comparisons, function calls over the swept column — fall back to
// the scalar closure looped per domain value, with the scalar sweep cache
// still amortizing their stable inner subtrees; compilation therefore
// never declines.
//
// Equivalence: for every (row, domain value) pair, the lane written here
// equals what the scalar CompileSweep program computes on the extended
// row. AND/OR combine lanes with the same Kleene triMin/triMax the scalar
// closures use (per-lane short-circuit values agree: triMin(false, x) is
// false regardless of x), and a ternary's unknown-condition lanes take the
// else branch exactly as Evaluator.Bool does. Only error ORDER can differ
// — the scalar sweep stops at the first failing (value, node) in row-major
// order, the vectorized sweep in node-major order — which is invisible for
// the solver's pure, total constraint vocabulary.

// svFn evaluates one compiled condition node for a whole domain sweep:
// out[i] is the node's truth on crow with the sweep column set to
// domain[i]. crow's sweep position is scratch owned by the evaluation
// (fallback nodes write it); all other positions are read-only.
type svFn func(in *Instance, crow []uint32, domain []uint32, out []tri) error

// SweepProg is a compiled column-at-a-time sweep program. Like Program it
// holds no mutable state; evaluation goes through a per-worker Instance.
type SweepProg struct {
	root     svFn
	triSlots int
	valSlots int
	svSlots  int
	sweep    int
	insts    sync.Pool
}

// Instance returns evaluation state for p — the scalar sweep-cache slots
// its stable and fallback subtrees use, plus the lane buffers of its
// AND/OR/ternary combiners (one extra slot for the root's output) — reused
// from the program's pool when possible so short solves don't pay the
// allocation on every extension step. Return it with Release.
func (p *SweepProg) Instance() *Instance {
	if in, _ := p.insts.Get().(*Instance); in != nil {
		return in
	}
	return &Instance{
		gen:     1,
		triMemo: make([]uint64, p.triSlots),
		tris:    make([]tri, p.triSlots),
		valMemo: make([]uint64, p.valSlots),
		vals:    make([]rel.Value, p.valSlots),
		svBufs:  make([][]tri, p.svSlots+1),
	}
}

// Release puts an instance back into p's pool. The generation stamp on the
// cache slots keeps a later user from reading this user's memo entries —
// NextRow already separates rows within one user the same way.
func (p *SweepProg) Release(in *Instance) {
	in.NextRow()
	p.insts.Put(in)
}

// EvalSweepTrue evaluates the program for every domain value and clears
// keep[i] for the lanes that are not definitely true (WHERE semantics),
// leaving already-false lanes false — the AND-combining shape the solver's
// per-column constraint conjunction wants. It reports whether any lane is
// still true, so callers can stop conjoining early. len(keep) must equal
// len(domain); crow must cover the sweep column.
func (p *SweepProg) EvalSweepTrue(in *Instance, crow []uint32, domain []uint32, keep []bool) (bool, error) {
	out := in.svBuf(p.svSlots, len(domain))
	if err := p.root(in, crow, domain, out); err != nil {
		return false, err
	}
	any := false
	for i, t := range out {
		if t != triTrue {
			keep[i] = false
		} else if keep[i] {
			any = true
		}
	}
	return any, nil
}

// svBuf returns the instance's lane buffer for slot, grown to n lanes.
func (in *Instance) svBuf(slot, n int) []tri {
	b := in.svBufs[slot]
	if cap(b) < n {
		b = make([]tri, n)
		in.svBufs[slot] = b
	}
	return b[:n]
}

// CompileSweepVec lowers e into a column-at-a-time sweep program over the
// column at position sweep. It accepts exactly the expressions CompileSweep
// accepts (unknown columns and functions are the same compile-time errors)
// and computes identical truth lanes; see the equivalence note above.
func (ev *Evaluator) CompileSweepVec(e Expr, colIndex map[string]int, sweep int) (*SweepProg, error) {
	c := &compiler{ev: ev, ix: colIndex, sweep: sweep}
	s := &sweepCompiler{c: c}
	root, err := s.comp(e)
	if err != nil {
		return nil, err
	}
	return &SweepProg{
		root:     root,
		triSlots: c.triSlots,
		valSlots: c.valSlots,
		svSlots:  s.svSlots,
		sweep:    sweep,
	}, nil
}

// sweepCompiler drives sweep vectorization, delegating scalar subtree
// compilation (and its cache-slot bookkeeping) to the shared compiler.
type sweepCompiler struct {
	c       *compiler
	svSlots int
}

// comp compiles e structurally: subtrees that never read the sweep column
// broadcast one scalar evaluation, sweep-reading boolean structure lowers
// to lane combiners, sweep-reading code-space leaves to tight loops, and
// everything else to the scalar-per-value fallback.
func (s *sweepCompiler) comp(e Expr) (svFn, error) {
	reads, err := s.readsSweep(e)
	if err != nil {
		return nil, err
	}
	if !reads {
		return s.broadcast(e)
	}
	switch x := e.(type) {
	case Unary:
		inner, err := s.comp(x.X)
		if err != nil {
			return nil, err
		}
		return func(in *Instance, crow []uint32, domain []uint32, out []tri) error {
			if err := inner(in, crow, domain, out); err != nil {
				return err
			}
			for i, t := range out {
				out[i] = -t // NOT flips true/false, keeps unknown
			}
			return nil
		}, nil
	case Binary:
		switch x.Op {
		case "AND", "OR":
			return s.andOr(x)
		case "=", "<>":
			return s.compare(x)
		}
		// Ordered comparisons need decoded values (codes are not
		// order-preserving); the fallback's scalar closure decodes per lane.
		return s.fallback(e)
	case InList:
		return s.in(x)
	case IsNull:
		return s.isNull(x)
	case Ternary:
		return s.ternary(x)
	default:
		// Between, Case, Call, bare truth-valued sweep column.
		return s.fallback(e)
	}
}

// broadcast compiles a sweep-stable subtree: one scalar evaluation per
// call, copied into every lane. The scalar closure keeps its sweep-cache
// slots, so nested Calls over stable arguments still memoize per row.
func (s *sweepCompiler) broadcast(e Expr) (svFn, error) {
	fn, _, err := s.c.bool(e)
	if err != nil {
		return nil, err
	}
	return func(in *Instance, crow []uint32, domain []uint32, out []tri) error {
		t, err := fn(in, crow)
		if err != nil {
			return err
		}
		for i := range out {
			out[i] = t
		}
		return nil
	}, nil
}

// fallback compiles the subtree as a scalar closure looped per domain
// value through the crow sweep position. The closure's inner sweep-stable
// subtrees hold cache slots, so the loop pays only for what actually
// depends on the swept value — the same cost the scalar sweep pays today.
func (s *sweepCompiler) fallback(e Expr) (svFn, error) {
	fn, _, err := s.c.bool(e)
	if err != nil {
		return nil, err
	}
	sweep := s.c.sweep
	return func(in *Instance, crow []uint32, domain []uint32, out []tri) error {
		for i, d := range domain {
			crow[sweep] = d
			t, err := fn(in, crow)
			if err != nil {
				return err
			}
			out[i] = t
		}
		return nil
	}, nil
}

// andOr lowers AND/OR to lane-wise Kleene min/max with a density
// short-circuit: when the left side already decides every lane (all false
// under AND, all true under OR) the right side is skipped outright, the
// vector analogue of the scalar closures' per-row short-circuit.
func (s *sweepCompiler) andOr(x Binary) (svFn, error) {
	l, err := s.comp(x.L)
	if err != nil {
		return nil, err
	}
	r, err := s.comp(x.R)
	if err != nil {
		return nil, err
	}
	slot := s.svSlots
	s.svSlots++
	isAnd := x.Op == "AND"
	return func(in *Instance, crow []uint32, domain []uint32, out []tri) error {
		if err := l(in, crow, domain, out); err != nil {
			return err
		}
		decided := true
		if isAnd {
			for _, t := range out {
				if t != triFalse {
					decided = false
					break
				}
			}
		} else {
			for _, t := range out {
				if t != triTrue {
					decided = false
					break
				}
			}
		}
		if decided {
			return nil
		}
		rb := in.svBuf(slot, len(out))
		if err := r(in, crow, domain, rb); err != nil {
			return err
		}
		if isAnd {
			for i, t := range rb {
				out[i] = triMin(out[i], t)
			}
		} else {
			for i, t := range rb {
				out[i] = triMax(out[i], t)
			}
		}
		return nil
	}, nil
}

// compare lowers =/<> over code-loadable operands, at least one of which
// is the swept column: the stable side loads once per call, the swept side
// is the domain vector itself. Operands outside code space (calls, cases)
// fall back.
func (s *sweepCompiler) compare(x Binary) (svFn, error) {
	c := s.c
	lc, lp, lok, err := c.code(x.L)
	if err != nil {
		return nil, err
	}
	rc, rp, rok, err := c.code(x.R)
	if err != nil {
		return nil, err
	}
	if !lok || !rok {
		return s.fallback(x)
	}
	nullEq := c.ev.NullEq
	want := x.Op == "="
	lSweep, rSweep := lp == c.sweep, rp == c.sweep
	if !lSweep && !rSweep {
		// readsSweep said the node reads the sweep column, so one operand
		// must be it once both lowered to code loads; defensive fallback.
		return s.fallback(x)
	}
	return func(in *Instance, crow []uint32, domain []uint32, out []tri) error {
		var other uint32
		var err error
		switch {
		case lSweep && rSweep:
			// Same column on both sides: equal codes by construction.
			for i, d := range domain {
				if !nullEq && d == rel.NullCode {
					out[i] = triUnknown
					continue
				}
				out[i] = triBool(want)
			}
			return nil
		case lSweep:
			other, err = rc(in, crow)
		default:
			other, err = lc(in, crow)
		}
		if err != nil {
			return err
		}
		if nullEq {
			// Constraint dialect: NULL is an ordinary code, one integer
			// compare per lane.
			for i, d := range domain {
				out[i] = triBool((d == other) == want)
			}
			return nil
		}
		if other == rel.NullCode {
			for i := range out {
				out[i] = triUnknown
			}
			return nil
		}
		for i, d := range domain {
			if d == rel.NullCode {
				out[i] = triUnknown
				continue
			}
			out[i] = triBool((d == other) == want)
		}
		return nil
	}, nil
}

// in lowers membership of the swept column in a literal set to one hash
// probe per lane against codes interned at compile time — the sweep-vector
// form of the scalar compiler's IN specialization, with identical 3VL
// casework.
func (s *sweepCompiler) in(x InList) (svFn, error) {
	c := s.c
	for _, e := range x.Set {
		if _, ok := e.(Lit); !ok {
			return s.fallback(x)
		}
	}
	idx, _, ok, err := c.colPos(x.X)
	if err != nil {
		return nil, err
	}
	if !ok || idx != c.sweep {
		return s.fallback(x)
	}
	nullEq := c.ev.NullEq
	neg := x.Negate
	codes := make(map[uint32]struct{}, len(x.Set))
	hasNull := false
	for _, e := range x.Set {
		v := e.(Lit).Val
		if v.IsNull() {
			hasNull = true
			if !nullEq {
				continue // NULL elements never match in 3VL; they only taint
			}
		}
		codes[dict.Code(v)] = struct{}{}
	}
	empty := len(x.Set) == 0
	return func(in *Instance, crow []uint32, domain []uint32, out []tri) error {
		for i, cv := range domain {
			var res tri
			switch {
			case nullEq:
				if _, ok := codes[cv]; ok {
					res = triTrue
				} else {
					res = triFalse
				}
			case empty:
				res = triFalse
			case cv == rel.NullCode:
				res = triUnknown // NULL compared to a non-empty set
			default:
				if _, ok := codes[cv]; ok {
					res = triTrue
				} else if hasNull {
					res = triUnknown // no match, but a NULL element taints
				} else {
					res = triFalse
				}
			}
			if neg {
				res = -res
			}
			out[i] = res
		}
		return nil
	}, nil
}

// isNull lowers IS [NOT] NULL of the swept column to a code compare per
// lane; NULL is code 0 in both dialects.
func (s *sweepCompiler) isNull(x IsNull) (svFn, error) {
	idx, _, ok, err := s.c.colPos(x.X)
	if err != nil {
		return nil, err
	}
	if !ok || idx != s.c.sweep {
		return s.fallback(x)
	}
	neg := x.Negate
	return func(in *Instance, crow []uint32, domain []uint32, out []tri) error {
		for i, d := range domain {
			out[i] = triBool((d == rel.NullCode) != neg)
		}
		return nil
	}, nil
}

// ternary lowers cond ? then : else. The protocol constraints are chains
// of these with sweep-stable rule conditions, so the stable-condition case
// — evaluate the condition once, descend only the chosen branch — is the
// one that turns a per-value chain walk into a single dispatch per row.
// Sweep-dependent conditions evaluate all three lane vectors and select,
// with all-true/all-other short-circuits.
func (s *sweepCompiler) ternary(x Ternary) (svFn, error) {
	condReads, err := s.readsSweep(x.Cond)
	if err != nil {
		return nil, err
	}
	if !condReads {
		cond, _, err := s.c.bool(x.Cond)
		if err != nil {
			return nil, err
		}
		then, err := s.comp(x.Then)
		if err != nil {
			return nil, err
		}
		els, err := s.comp(x.Else)
		if err != nil {
			return nil, err
		}
		return func(in *Instance, crow []uint32, domain []uint32, out []tri) error {
			t, err := cond(in, crow)
			if err != nil {
				return err
			}
			// Unknown behaves as false: the else branch (paper's ternary).
			if t == triTrue {
				return then(in, crow, domain, out)
			}
			return els(in, crow, domain, out)
		}, nil
	}
	cond, err := s.comp(x.Cond)
	if err != nil {
		return nil, err
	}
	then, err := s.comp(x.Then)
	if err != nil {
		return nil, err
	}
	els, err := s.comp(x.Else)
	if err != nil {
		return nil, err
	}
	slot := s.svSlots
	s.svSlots += 2
	return func(in *Instance, crow []uint32, domain []uint32, out []tri) error {
		if err := cond(in, crow, domain, out); err != nil {
			return err
		}
		allTrue, noneTrue := true, true
		for _, t := range out {
			if t == triTrue {
				noneTrue = false
			} else {
				allTrue = false
			}
		}
		if allTrue {
			return then(in, crow, domain, out)
		}
		if noneTrue {
			return els(in, crow, domain, out)
		}
		tb := in.svBuf(slot, len(out))
		if err := then(in, crow, domain, tb); err != nil {
			return err
		}
		eb := in.svBuf(slot+1, len(out))
		if err := els(in, crow, domain, eb); err != nil {
			return err
		}
		for i, t := range out {
			if t == triTrue {
				out[i] = tb[i]
			} else {
				out[i] = eb[i]
			}
		}
		return nil
	}, nil
}

// readsSweep reports whether any column reference in e resolves to the
// sweep position. Unknown columns error exactly as scalar compilation
// would; unrecognized node shapes conservatively claim a sweep read so
// comp routes them to the fallback, whose scalar compile diagnoses them.
func (s *sweepCompiler) readsSweep(e Expr) (bool, error) {
	switch x := e.(type) {
	case Lit:
		return false, nil
	case Col, boundCol:
		idx, _, ok, err := s.c.colPos(e)
		if err != nil {
			return false, err
		}
		return ok && idx == s.c.sweep, nil
	case Unary:
		return s.readsSweep(x.X)
	case Binary:
		return s.readsSweepAll(x.L, x.R)
	case InList:
		if r, err := s.readsSweep(x.X); r || err != nil {
			return r, err
		}
		return s.readsSweepAll(x.Set...)
	case IsNull:
		return s.readsSweep(x.X)
	case Between:
		return s.readsSweepAll(x.X, x.Lo, x.Hi)
	case Ternary:
		return s.readsSweepAll(x.Cond, x.Then, x.Else)
	case Case:
		for _, w := range x.Whens {
			if r, err := s.readsSweepAll(w.Cond, w.Val); r || err != nil {
				return r, err
			}
		}
		if x.Else != nil {
			return s.readsSweep(x.Else)
		}
		return false, nil
	case Call:
		return s.readsSweepAll(x.Args...)
	default:
		return true, nil
	}
}

func (s *sweepCompiler) readsSweepAll(es ...Expr) (bool, error) {
	for _, e := range es {
		if r, err := s.readsSweep(e); r || err != nil {
			return r, err
		}
	}
	return false, nil
}
