package sqlmini

import (
	"strings"

	"coherdb/internal/rel"
)

// Expr is a SQL expression node.
type Expr interface {
	// String renders the expression back to dialect syntax.
	String() string
	exprNode()
}

// Lit is a literal value (string, number, TRUE/FALSE, NULL).
type Lit struct {
	Val rel.Value
}

// Col is a column reference, optionally qualified ("D.inmsg").
type Col struct {
	Qualifier string // "" when unqualified
	Name      string
}

// Unary is NOT expr.
type Unary struct {
	Op string // "NOT"
	X  Expr
}

// Binary is a binary operation: comparison, AND, OR.
type Binary struct {
	Op   string // "=", "<>", "<", "<=", ">", ">=", "AND", "OR"
	L, R Expr
}

// InList is "x IN (a, b, c)" or "x NOT IN (...)".
type InList struct {
	X      Expr
	Set    []Expr
	Negate bool
}

// IsNull is "x IS NULL" or "x IS NOT NULL".
type IsNull struct {
	X      Expr
	Negate bool
}

// Between is "x BETWEEN lo AND hi".
type Between struct {
	X, Lo, Hi Expr
	Negate    bool
}

// Ternary is the paper's constraint form "cond ? then : else".
type Ternary struct {
	Cond, Then, Else Expr
}

// Case is "CASE WHEN c THEN v ... [ELSE e] END".
type Case struct {
	Whens []When
	Else  Expr // nil means NULL
}

// When is one WHEN/THEN arm of a Case.
type When struct {
	Cond, Val Expr
}

// Call is a registered function invocation, e.g. isrequest(inmsg).
type Call struct {
	Name string
	Args []Expr
}

func (Lit) exprNode()     {}
func (Col) exprNode()     {}
func (Unary) exprNode()   {}
func (Binary) exprNode()  {}
func (InList) exprNode()  {}
func (IsNull) exprNode()  {}
func (Between) exprNode() {}
func (Ternary) exprNode() {}
func (Case) exprNode()    {}
func (Call) exprNode()    {}

func (e Lit) String() string { return e.Val.Quoted() }

func (e Col) String() string {
	if e.Qualifier != "" {
		return e.Qualifier + "." + e.Name
	}
	return e.Name
}

func (e Unary) String() string { return "(" + e.Op + " " + e.X.String() + ")" }

func (e Binary) String() string {
	return "(" + e.L.String() + " " + e.Op + " " + e.R.String() + ")"
}

func (e InList) String() string {
	var sb strings.Builder
	sb.WriteString("(")
	sb.WriteString(e.X.String())
	if e.Negate {
		sb.WriteString(" NOT")
	}
	sb.WriteString(" IN (")
	for i, s := range e.Set {
		if i > 0 {
			sb.WriteString(", ")
		}
		sb.WriteString(s.String())
	}
	sb.WriteString("))")
	return sb.String()
}

func (e IsNull) String() string {
	if e.Negate {
		return "(" + e.X.String() + " IS NOT NULL)"
	}
	return "(" + e.X.String() + " IS NULL)"
}

func (e Between) String() string {
	not := ""
	if e.Negate {
		not = "NOT "
	}
	return "(" + e.X.String() + " " + not + "BETWEEN " + e.Lo.String() + " AND " + e.Hi.String() + ")"
}

func (e Ternary) String() string {
	return "(" + e.Cond.String() + " ? " + e.Then.String() + " : " + e.Else.String() + ")"
}

func (e Case) String() string {
	var sb strings.Builder
	sb.WriteString("CASE")
	for _, w := range e.Whens {
		sb.WriteString(" WHEN " + w.Cond.String() + " THEN " + w.Val.String())
	}
	if e.Else != nil {
		sb.WriteString(" ELSE " + e.Else.String())
	}
	sb.WriteString(" END")
	return sb.String()
}

func (e Call) String() string {
	var sb strings.Builder
	sb.WriteString(e.Name)
	sb.WriteString("(")
	for i, a := range e.Args {
		if i > 0 {
			sb.WriteString(", ")
		}
		sb.WriteString(a.String())
	}
	sb.WriteString(")")
	return sb.String()
}

// Stmt is a SQL statement.
type Stmt interface{ stmtNode() }

// SelectItem is one element of a select list: an expression with an optional
// alias, or a star.
type SelectItem struct {
	Star  bool
	Expr  Expr
	Alias string
}

// TableRef is one table in a FROM clause, with an optional alias.
type TableRef struct {
	Name  string
	Alias string
}

// JoinClause is "JOIN t [alias] ON expr".
type JoinClause struct {
	Ref TableRef
	On  Expr
}

// OrderKey is one ORDER BY key.
type OrderKey struct {
	Expr Expr
	Desc bool
}

// SelectStmt is a SELECT query, possibly with UNION branches chained via
// Union/UnionAll.
type SelectStmt struct {
	Distinct bool
	Items    []SelectItem
	From     []TableRef
	Joins    []JoinClause
	Where    Expr
	// GroupBy groups rows by the given expressions; COUNT(*) in the
	// select list then counts per group, and Having filters groups.
	GroupBy  []Expr
	Having   Expr
	OrderBy  []OrderKey
	Limit    int // -1 means no limit
	Union    *SelectStmt
	UnionAll bool
}

// ExplainStmt is EXPLAIN SELECT ...: it reports the query plan (scans,
// join strategies, estimated row counts) without executing the query.
// With Analyze set (EXPLAIN ANALYZE SELECT ...) the query is executed
// and the plan is annotated with measured per-operator rows, time,
// morsels and steals instead of estimates.
type ExplainStmt struct {
	Query   *SelectStmt
	Analyze bool
}

// CreateStmt is CREATE TABLE name (cols) or CREATE TABLE name AS SELECT.
type CreateStmt struct {
	Name string
	Cols []string
	As   *SelectStmt
}

// DropStmt is DROP TABLE name.
type DropStmt struct {
	Name     string
	IfExists bool
}

// InsertStmt is INSERT INTO name [(cols)] VALUES (...), (...).
type InsertStmt struct {
	Table string
	Cols  []string
	Rows  [][]Expr
}

// DeleteStmt is DELETE FROM name [WHERE expr].
type DeleteStmt struct {
	Table string
	Where Expr
}

// UpdateStmt is UPDATE name SET col = expr, ... [WHERE expr].
type UpdateStmt struct {
	Table string
	Cols  []string
	Exprs []Expr
	Where Expr
}

func (*SelectStmt) stmtNode()  {}
func (*ExplainStmt) stmtNode() {}
func (*CreateStmt) stmtNode()  {}
func (*DropStmt) stmtNode()    {}
func (*InsertStmt) stmtNode()  {}
func (*DeleteStmt) stmtNode()  {}
func (*UpdateStmt) stmtNode()  {}
