//go:build race

package sqlmini

// raceEnabled reports whether the race detector is compiled in; see
// race_off_test.go for the other half.
const raceEnabled = true
