package sqlmini

import (
	"fmt"
	"strings"
	"time"

	"coherdb/internal/rel"
)

// EXPLAIN ANALYZE support. The executor's operators report into an azRun
// hung off the statement's run context: one azOp per plan step, holding
// measured rows out, wall time, the morsel/steal deltas of the step's
// parallel phases, hash-join build vs probe split and arena growth. The
// off path stays allocation-free: every hook below starts with a single
// r.az nil check and no time.Now call, so plain SELECTs (and therefore
// the <5% nil-tracer overhead bound) are untouched.

// azOp is one executed operator's measurements.
type azOp struct {
	op     string // same vocabulary as EXPLAIN: scan, indexscan, join, ...
	target string
	detail string

	rows    int // rows out
	elapsed time.Duration
	start   time.Time

	// morsels0/steals0 snapshot the statement's parallel counters at op
	// start; the deltas at op end are the operator's own.
	morsels0, steals0 int
	morsels, steals   int

	buildTime, probeTime time.Duration
	arenaBytes           int64

	// vecBatches counts the selection-vector batches the op's vectorized
	// filter evaluated; selIn/selOut are the selection sizes entering and
	// surviving the cascade, rendered as sel_density.
	vecBatches    int
	selIn, selOut int
}

// azRun collects the operator measurements of one EXPLAIN ANALYZE.
type azRun struct {
	ops []azOp
	cur int // index of the open op, -1 when none
}

// azBegin opens an operator measurement. Exactly one op is open at a
// time: operators in execSelectOne run strictly sequentially, and the
// helpers below write only through r.az.cur.
func (r *run) azBegin(op, target string) {
	if r.az == nil {
		return
	}
	r.az.ops = append(r.az.ops, azOp{
		op: op, target: target,
		start:    time.Now(),
		morsels0: r.qs.Morsels, steals0: r.qs.Steals,
	})
	r.az.cur = len(r.az.ops) - 1
}

// azEnd closes the open operator with its output row count.
func (r *run) azEnd(rows int) {
	if r.az == nil || r.az.cur < 0 {
		return
	}
	o := &r.az.ops[r.az.cur]
	o.elapsed = time.Since(o.start)
	o.rows = rows
	o.morsels = r.qs.Morsels - o.morsels0
	o.steals = r.qs.Steals - o.steals0
	r.az.cur = -1
}

// azSet renames the open op and sets its detail; scanSource uses it to
// flip a planned scan to an indexscan, r.join to record the join strategy
// it actually chose.
func (r *run) azSet(op, detail string) {
	if r.az == nil || r.az.cur < 0 {
		return
	}
	o := &r.az.ops[r.az.cur]
	if op != "" {
		o.op = op
	}
	o.detail = detail
}

// azTracks reports whether an analyze run is collecting, for call sites
// that must avoid building detail strings on the off path.
func (r *run) azTracks() bool { return r.az != nil && r.az.cur >= 0 }

// azBuildProbe records the hash-join phase split on the open op.
func (r *run) azBuildProbe(build, probe time.Duration) {
	if r.az == nil || r.az.cur < 0 {
		return
	}
	o := &r.az.ops[r.az.cur]
	o.buildTime, o.probeTime = build, probe
}

// azVec records a vectorized filter cascade on the open op: batches
// evaluated, selection rows in, survivors out.
func (r *run) azVec(batches, in, out int) {
	if r.az == nil || r.az.cur < 0 {
		return
	}
	o := &r.az.ops[r.az.cur]
	o.vecBatches += batches
	o.selIn += in
	o.selOut += out
}

// azArena adds arena block growth (bytes) to the open op.
func (r *run) azArena(n int64) {
	if r.az == nil || r.az.cur < 0 || n <= 0 {
		return
	}
	r.az.ops[r.az.cur].arenaBytes += n
}

// execAnalyze runs the query with operator measurement enabled and
// renders the annotated plan: one row per executed operator with measured
// rows, wall time in microseconds and a detail column carrying the
// operator's strategy plus its parallel/arena numbers.
func (r *run) execAnalyze(s *SelectStmt) (*rel.Table, error) {
	r.az = &azRun{cur: -1}
	defer func() { r.az = nil }()
	if _, err := r.execSelect(s); err != nil {
		return nil, err
	}
	out, err := rel.NewTable("plan", "step", "op", "target", "rows", "time_us", "detail")
	if err != nil {
		return nil, err
	}
	for _, o := range r.az.ops {
		if err := out.InsertRow([]rel.Value{
			rel.I(int64(out.NumRows() + 1)),
			rel.S(o.op),
			rel.S(o.target),
			rel.I(int64(o.rows)),
			rel.I(o.elapsed.Microseconds()),
			rel.S(o.analyzeDetail()),
		}); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// analyzeDetail renders the measured annotations after the op's strategy
// text: morsels/steals when the op had a parallel phase, build/probe when
// it was a hash join, arena growth when joined rows were carved.
func (o *azOp) analyzeDetail() string {
	parts := make([]string, 0, 4)
	if o.detail != "" {
		parts = append(parts, o.detail)
	}
	if o.vecBatches > 0 {
		density := 0.0
		if o.selIn > 0 {
			density = float64(o.selOut) / float64(o.selIn)
		}
		parts = append(parts, fmt.Sprintf("sel_density=%.2f vec_batches=%d", density, o.vecBatches))
	}
	if o.morsels > 0 {
		parts = append(parts, fmt.Sprintf("morsels=%d steals=%d", o.morsels, o.steals))
	}
	if o.buildTime > 0 || o.probeTime > 0 {
		parts = append(parts, fmt.Sprintf("build_us=%d probe_us=%d",
			o.buildTime.Microseconds(), o.probeTime.Microseconds()))
	}
	if o.arenaBytes > 0 {
		parts = append(parts, fmt.Sprintf("arena_bytes=%d", o.arenaBytes))
	}
	return strings.Join(parts, "; ")
}
