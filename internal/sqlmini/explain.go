package sqlmini

import (
	"fmt"
	"strings"

	"coherdb/internal/rel"
)

// EXPLAIN SELECT support: explainSelect renders the plan the executor
// would follow — scans with pushed-down predicates, join strategy (hash
// vs nested-loop), residual filters, grouping, sorting and UNION
// combination — as a relation, without executing the query. Estimated
// cardinalities use coarse textbook rules: a filter keeps a third of its
// input per conjunct, a hash join produces max(left, right) rows, a
// nested-loop join a third of the cross product, grouping a quarter of
// its input.

// estFilter shrinks an estimate by one third per conjunct, never
// estimating below one row for a non-empty input.
func estFilter(est, conjuncts int) int {
	if est == 0 {
		return 0
	}
	for ; conjuncts > 0; conjuncts-- {
		est /= 3
	}
	if est < 1 {
		return 1
	}
	return est
}

// andString renders conjuncts joined with AND.
func andString(cs []Expr) string {
	parts := make([]string, len(cs))
	for i, c := range cs {
		parts[i] = c.String()
	}
	return strings.Join(parts, " AND ")
}

// planRow appends one step to the plan table.
func planRow(out *rel.Table, op, target string, est int, detail string) error {
	return out.InsertRow([]rel.Value{
		rel.I(int64(out.NumRows() + 1)),
		rel.S(op),
		rel.S(target),
		rel.I(int64(est)),
		rel.S(detail),
	})
}

// explainSelect builds the plan table for a SELECT (including its UNION
// chain) without executing it.
func (db *DB) explainSelect(s *SelectStmt) (*rel.Table, error) {
	out, err := rel.NewTable("plan", "step", "op", "target", "est_rows", "detail")
	if err != nil {
		return nil, err
	}
	est, err := db.explainBranch(out, s)
	if err != nil {
		return nil, err
	}
	for u, all := s.Union, s.UnionAll; u != nil; u, all = u.Union, u.UnionAll {
		branch := *u
		branch.Union = nil
		be, err := db.explainBranch(out, &branch)
		if err != nil {
			return nil, err
		}
		est += be
		detail := "DISTINCT"
		if all {
			detail = "ALL"
		}
		if err := planRow(out, "union", "", est, detail); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// explainBranch appends the plan steps for one SELECT branch and returns
// its estimated output cardinality.
func (db *DB) explainBranch(out *rel.Table, s *SelectStmt) (int, error) {
	type source struct {
		alias string
		fr    *frame
		rows  int
		on    Expr // nil for FROM refs (cross product)
	}
	var srcs []source
	for _, ref := range s.From {
		t, ok := db.tables[ref.Name]
		if !ok {
			return 0, fmt.Errorf("%w: %q", ErrNoTable, ref.Name)
		}
		alias := ref.Alias
		if alias == "" {
			alias = ref.Name
		}
		srcs = append(srcs, source{alias: alias, fr: schemaFrame(t, ref.Alias), rows: t.NumRows()})
	}
	for _, j := range s.Joins {
		t, ok := db.tables[j.Ref.Name]
		if !ok {
			return 0, fmt.Errorf("%w: %q", ErrNoTable, j.Ref.Name)
		}
		alias := j.Ref.Alias
		if alias == "" {
			alias = j.Ref.Name
		}
		srcs = append(srcs, source{alias: alias, fr: schemaFrame(t, j.Ref.Alias), rows: t.NumRows(), on: j.On})
	}
	// Same pushdown decision the executor makes.
	where := s.Where
	var pushed map[int][]Expr
	if where != nil && len(srcs) > 1 {
		var err error
		pushed, where, err = db.planPushdown(s)
		if err != nil {
			return 0, err
		}
	}
	est := 1 // FROM-less SELECT produces one row
	var cum *frame
	for i, sc := range srcs {
		e := sc.rows
		detail := ""
		if cs := pushed[i]; len(cs) > 0 {
			detail = "pushdown: " + andString(cs)
			e = estFilter(e, len(cs))
		}
		if err := planRow(out, "scan", sc.alias, e, detail); err != nil {
			return 0, err
		}
		if cum == nil {
			cum, est = sc.fr, e
			continue
		}
		switch pairs, hashable := hashJoinPairs(cum, sc.fr, sc.on); {
		case sc.on == nil:
			est *= e
			if err := planRow(out, "cross", sc.alias, est, "cross product"); err != nil {
				return 0, err
			}
		case hashable:
			est = max(est, e)
			if err := planRow(out, "join", sc.alias, est, fmt.Sprintf("hash, %d key(s)", len(pairs))); err != nil {
				return 0, err
			}
		default:
			est = estFilter(est*e, 1)
			if err := planRow(out, "join", sc.alias, est, "nested-loop: "+sc.on.String()); err != nil {
				return 0, err
			}
		}
		cum = &frame{
			aliases: append(append([]string(nil), cum.aliases...), sc.fr.aliases...),
			names:   append(append([]string(nil), cum.names...), sc.fr.names...),
		}
	}
	if where != nil {
		cs := splitAnd(where)
		est = estFilter(est, len(cs))
		if err := planRow(out, "filter", "", est, andString(cs)); err != nil {
			return 0, err
		}
	}
	switch {
	case len(s.GroupBy) > 0:
		est = max(1, est/4)
		if err := planRow(out, "group", "", est, fmt.Sprintf("%d key(s)", len(s.GroupBy))); err != nil {
			return 0, err
		}
	case hasAggregates(s.Items):
		est = 1
		if err := planRow(out, "aggregate", "", est, ""); err != nil {
			return 0, err
		}
	}
	if s.Distinct {
		if err := planRow(out, "distinct", "", est, ""); err != nil {
			return 0, err
		}
	}
	if len(s.OrderBy) > 0 {
		if err := planRow(out, "sort", "", est, fmt.Sprintf("%d key(s)", len(s.OrderBy))); err != nil {
			return 0, err
		}
	}
	if s.Limit >= 0 {
		est = min(est, s.Limit)
		if err := planRow(out, "limit", "", est, fmt.Sprintf("LIMIT %d", s.Limit)); err != nil {
			return 0, err
		}
	}
	return est, nil
}
