package sqlmini

import (
	"fmt"
	"strings"

	"coherdb/internal/rel"
)

// EXPLAIN SELECT support: explainSelect renders the plan the executor
// would follow — index scans and scans with pushed-down predicates, join
// strategy (index nested-loop vs hash vs nested-loop) with the hash build
// side, residual filters, grouping, sorting and UNION combination — as a
// relation, without executing the query. Estimated cardinalities use
// coarse textbook rules: an index scan keeps rows/distinct-keys, a filter
// keeps a third of its input per conjunct, a hash join produces
// max(left, right) rows, a nested-loop join a third of the cross product,
// grouping a quarter of its input. The hash build side shown here is the
// estimate-based choice; the executor decides from actual row counts and
// can differ when the estimates are off.

// parallelDetail renders the parallel-phase annotation for a plan step
// fed n rows, or "" when the executor's gate (pool present, enough rows
// for two morsels, more than one worker) would keep the phase serial.
func (r *run) parallelDetail(kind string, n int) string {
	p, workers, morsel := r.parallel(n)
	if p == nil {
		return ""
	}
	return fmt.Sprintf("parallel %s (workers=%d, morsel=%d)", kind, workers, morsel)
}

// fullyCompiled reports whether all n conjuncts lowered to compiled
// predicates — the executor's other precondition for a parallel filter
// (the tree-walking interpreter always runs serially).
func fullyCompiled(progs []CodePred, n int) bool {
	if n == 0 || len(progs) != n {
		return false
	}
	for _, p := range progs {
		if p == nil {
			return false
		}
	}
	return true
}

// estFilter shrinks an estimate by one third per conjunct, never
// estimating below one row for a non-empty input.
func estFilter(est, conjuncts int) int {
	if est == 0 {
		return 0
	}
	for ; conjuncts > 0; conjuncts-- {
		est /= 3
	}
	if est < 1 {
		return 1
	}
	return est
}

// estIndexJoin estimates index nested-loop output: the cross product
// shrunk by the indexed side's distinct key count.
func estIndexJoin(l, r, distinct int) int {
	if l == 0 || r == 0 {
		return 0
	}
	return max(1, l*r/max(1, distinct))
}

// andString renders conjuncts joined with AND.
func andString(cs []Expr) string {
	parts := make([]string, len(cs))
	for i, c := range cs {
		parts[i] = c.String()
	}
	return strings.Join(parts, " AND ")
}

// eqExprs reconstructs a srcPlan's index-equality conjuncts as
// expressions, for rendering (and for the executor's no-index fallback).
func eqExprs(sp srcPlan) []Expr {
	out := make([]Expr, len(sp.eqCols))
	for i, c := range sp.eqCols {
		out[i] = Binary{Op: "=", L: Col{Name: c}, R: Lit{Val: sp.eqVals[i]}}
	}
	return out
}

// withStorage appends the storage-engine annotation to a leaf scan step's
// detail: every table access reads dictionary-code column vectors, and the
// plan says so the same way it reports parallelism.
func withStorage(detail string) string {
	const s = "storage=columnar"
	if detail == "" {
		return s
	}
	return detail + "; " + s
}

// indexScanDetail renders "index(col, ...) = (val, ...)".
func indexScanDetail(sp srcPlan) string {
	vals := make([]string, len(sp.eqVals))
	for i, v := range sp.eqVals {
		vals[i] = Lit{Val: v}.String()
	}
	return fmt.Sprintf("index(%s) = (%s)", strings.Join(sp.eqCols, ","), strings.Join(vals, ","))
}

// planRow appends one step to the plan table.
func planRow(out *rel.Table, op, target string, est int, detail string) error {
	return out.InsertRow([]rel.Value{
		rel.I(int64(out.NumRows() + 1)),
		rel.S(op),
		rel.S(target),
		rel.I(int64(est)),
		rel.S(detail),
	})
}

// explainSelect builds the plan table for a SELECT (including its UNION
// chain) without executing it, from the same cached branch plans the
// executor uses.
func (r *run) explainSelect(s *SelectStmt) (*rel.Table, error) {
	out, err := rel.NewTable("plan", "step", "op", "target", "est_rows", "detail")
	if err != nil {
		return nil, err
	}
	plans, err := r.plansFor(s)
	if err != nil {
		return nil, err
	}
	est, err := r.explainBranch(out, s, r.planAt(plans, 0, s))
	if err != nil {
		return nil, err
	}
	bi := 1
	for u, all := s.Union, s.UnionAll; u != nil; u, all = u.Union, u.UnionAll {
		branch := *u
		branch.Union = nil
		be, err := r.explainBranch(out, &branch, r.planAt(plans, bi, &branch))
		if err != nil {
			return nil, err
		}
		bi++
		est += be
		detail := "DISTINCT"
		if all {
			detail = "ALL"
		}
		if err := planRow(out, "union", "", est, detail); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// explainBranch appends the plan steps for one SELECT branch and returns
// its estimated output cardinality.
func (r *run) explainBranch(out *rel.Table, s *SelectStmt, plan *branchPlan) (int, error) {
	type source struct {
		alias string
		fr    *frame
		t     *rel.Table
		rows  int
		on    Expr // nil for FROM refs (cross product)
	}
	var srcs []source
	for _, ref := range s.From {
		t, ok := r.table(ref.Name)
		if !ok {
			return 0, fmt.Errorf("%w: %q", ErrNoTable, ref.Name)
		}
		alias := ref.Alias
		if alias == "" {
			alias = ref.Name
		}
		srcs = append(srcs, source{alias: alias, fr: schemaFrame(t, ref.Alias), t: t, rows: t.NumRows()})
	}
	for _, j := range s.Joins {
		t, ok := r.table(j.Ref.Name)
		if !ok {
			return 0, fmt.Errorf("%w: %q", ErrNoTable, j.Ref.Name)
		}
		alias := j.Ref.Alias
		if alias == "" {
			alias = j.Ref.Name
		}
		srcs = append(srcs, source{alias: alias, fr: schemaFrame(t, j.Ref.Alias), t: t, rows: t.NumRows(), on: j.On})
	}
	est := 1 // FROM-less SELECT produces one row
	var cum *frame
	// cumBase/cumAlias track the left side while it is still one pristine
	// whole-table scan — the executor's precondition for probing the left
	// table's persistent index.
	var cumBase *rel.Table
	var cumAlias string
	for i, sc := range srcs {
		sp := plan.src(i)
		e := sc.rows
		var err error
		switch {
		case len(sp.eqCols) > 0:
			ix, ixErr := sc.t.IndexOn(sp.eqCols...)
			if ixErr != nil {
				// Mirrors the executor's fallback: the equalities run as
				// ordinary pushed filters, interpreted (hence scalar).
				e = estFilter(e, len(sp.eqCols)+len(sp.filters))
				err = planRow(out, "scan", sc.alias, e, withStorage("pushdown: "+andString(append(eqExprs(sp), sp.filters...))+evalDetail(false)))
				break
			}
			if e > 0 {
				e = max(1, e/max(1, ix.Distinct()))
			}
			detail := indexScanDetail(sp)
			if len(sp.filters) > 0 {
				e = estFilter(e, len(sp.filters))
				detail += "; filter: " + andString(sp.filters) + evalDetail(r.vecUsable(sc.t, sp))
			}
			err = planRow(out, "indexscan", sc.alias, e, withStorage(detail))
		case len(sp.filters) > 0:
			detail := "pushdown: " + andString(sp.filters) + evalDetail(r.vecUsable(sc.t, sp))
			if fullyCompiled(sp.progs, len(sp.filters)) {
				if pd := r.parallelDetail("scan", sc.rows); pd != "" {
					detail += "; " + pd
				}
			}
			e = estFilter(e, len(sp.filters))
			err = planRow(out, "scan", sc.alias, e, withStorage(detail))
		default:
			err = planRow(out, "scan", sc.alias, e, withStorage(r.parallelDetail("scan", sc.rows)))
		}
		if err != nil {
			return 0, err
		}
		if cum == nil {
			cum, est = sc.fr, e
			if sp.pristine() {
				cumBase, cumAlias = sc.t, sc.alias
			}
			continue
		}
		pairs, hashable := hashJoinPairs(cum, sc.fr, sc.on)
		switch {
		case sc.on == nil:
			est *= e
			err = planRow(out, "cross", sc.alias, est, "cross product")
		case hashable:
			done := false
			// Same strategy order as run.join, with estimates standing in
			// for actual row counts.
			if sp.pristine() && (cumBase == nil || est <= e) {
				cols := make([]string, len(pairs))
				for k, p := range pairs {
					cols[k] = sc.fr.names[p.ri]
				}
				if ix, ixErr := sc.t.IndexOn(cols...); ixErr == nil {
					est = estIndexJoin(est, e, ix.Distinct())
					err = planRow(out, "join", sc.alias, est,
						fmt.Sprintf("index nested-loop via %s(%s)", sc.alias, strings.Join(cols, ",")))
					done = true
				}
			}
			if !done && cumBase != nil {
				cols := make([]string, len(pairs))
				for k, p := range pairs {
					cols[k] = cum.names[p.li]
				}
				if ix, ixErr := cumBase.IndexOn(cols...); ixErr == nil {
					est = estIndexJoin(est, e, ix.Distinct())
					err = planRow(out, "join", sc.alias, est,
						fmt.Sprintf("index nested-loop via %s(%s)", cumAlias, strings.Join(cols, ",")))
					done = true
				}
			}
			if !done {
				build := "right"
				if est < e {
					build = "left"
				}
				// The executor probes with the larger side's rows.
				detail := fmt.Sprintf("hash, %d key(s), build=%s", len(pairs), build)
				if pd := r.parallelDetail("probe", max(est, e)); pd != "" {
					detail += ", " + pd
				}
				est = max(est, e)
				err = planRow(out, "join", sc.alias, est, detail)
			}
		default:
			est = estFilter(est*e, 1)
			err = planRow(out, "join", sc.alias, est, "nested-loop: "+sc.on.String())
		}
		if err != nil {
			return 0, err
		}
		cumBase = nil
		cum = &frame{
			aliases: append(append([]string(nil), cum.aliases...), sc.fr.aliases...),
			names:   append(append([]string(nil), cum.names...), sc.fr.names...),
		}
	}
	if plan != nil && plan.residue != nil {
		cs, progs := plan.residueConjuncts()
		detail := andString(cs)
		if fullyCompiled(progs, len(cs)) {
			if pd := r.parallelDetail("filter", est); pd != "" {
				detail += "; " + pd
			}
		}
		est = estFilter(est, len(cs))
		if err := planRow(out, "filter", "", est, detail); err != nil {
			return 0, err
		}
	}
	switch {
	case len(s.GroupBy) > 0:
		est = max(1, est/4)
		if err := planRow(out, "group", "", est, fmt.Sprintf("%d key(s)", len(s.GroupBy))); err != nil {
			return 0, err
		}
	case hasAggregates(s.Items):
		est = 1
		if err := planRow(out, "aggregate", "", est, ""); err != nil {
			return 0, err
		}
	}
	if s.Distinct {
		if err := planRow(out, "distinct", "", est, ""); err != nil {
			return 0, err
		}
	}
	if len(s.OrderBy) > 0 {
		if err := planRow(out, "sort", "", est, fmt.Sprintf("%d key(s)", len(s.OrderBy))); err != nil {
			return 0, err
		}
	}
	if s.Limit >= 0 {
		est = min(est, s.Limit)
		if err := planRow(out, "limit", "", est, fmt.Sprintf("LIMIT %d", s.Limit)); err != nil {
			return 0, err
		}
	}
	return est, nil
}
