package sqlmini

import (
	"fmt"
	"reflect"
	"sync"
	"testing"

	"coherdb/internal/obs"
	"coherdb/internal/rel"
)

func TestPlanCacheHitAndMissCounters(t *testing.T) {
	db := newTestDB(t)
	reg := obs.NewRegistry()
	db.SetMetrics(reg)
	base := db.Stats()

	const q = `SELECT * FROM D WHERE dirst = 'SI'`
	for i := 0; i < 3; i++ {
		if _, err := db.Query(q); err != nil {
			t.Fatal(err)
		}
	}
	st := db.Stats()
	if got := st.PlanCacheMisses - base.PlanCacheMisses; got != 1 {
		t.Errorf("plan cache misses = %d, want 1", got)
	}
	if got := st.PlanCacheHits - base.PlanCacheHits; got != 2 {
		t.Errorf("plan cache hits = %d, want 2", got)
	}
	if got := reg.Counter("coherdb_sql_plan_cache_misses_total").Value(); got != 1 {
		t.Errorf("miss counter = %d, want 1", got)
	}
	if got := reg.Counter("coherdb_sql_plan_cache_hits_total").Value(); got != 2 {
		t.Errorf("hit counter = %d, want 2", got)
	}
	if got := reg.Counter("coherdb_sql_index_scans_total").Value(); got != 3 {
		t.Errorf("index scan counter = %d, want 3 (one per execution)", got)
	}
	// Leading/trailing whitespace does not split the cache key.
	if _, err := db.Query("  " + q + "\n"); err != nil {
		t.Fatal(err)
	}
	if got := db.Stats().PlanCacheMisses - base.PlanCacheMisses; got != 1 {
		t.Errorf("after whitespace variant, misses = %d, want 1", got)
	}
}

func TestPlanCacheServesFreshRowsAfterDML(t *testing.T) {
	db := newTestDB(t)
	const q = `SELECT dirpv FROM D WHERE dirst = 'SI'`
	count := func() int {
		t.Helper()
		tab, err := db.Query(q)
		if err != nil {
			t.Fatal(err)
		}
		return tab.NumRows()
	}
	if n := count(); n != 2 {
		t.Fatalf("seed rows = %d, want 2", n)
	}
	if _, err := db.Exec(`INSERT INTO D VALUES ('inv', 'SI', 'two', NULL, 'I')`); err != nil {
		t.Fatal(err)
	}
	if n := count(); n != 3 {
		t.Errorf("after INSERT, rows = %d, want 3 (stale index?)", n)
	}
	if _, err := db.Exec(`DELETE FROM D WHERE dirpv = 'gone'`); err != nil {
		t.Fatal(err)
	}
	if n := count(); n != 2 {
		t.Errorf("after DELETE, rows = %d, want 2 (stale index?)", n)
	}
	if _, err := db.Exec(`UPDATE D SET dirst = 'I' WHERE dirpv = 'one'`); err != nil {
		t.Fatal(err)
	}
	if n := count(); n != 1 {
		t.Errorf("after UPDATE, rows = %d, want 1 (stale index?)", n)
	}
	// The reads above were all plan-cache hits, not replans.
	st := db.Stats()
	if st.PlanCacheHits < 3 {
		t.Errorf("plan cache hits = %d, want >= 3", st.PlanCacheHits)
	}
}

func TestPlanCacheSurvivesDropAndRecreate(t *testing.T) {
	db := newTestDB(t)
	const q = `SELECT m FROM V WHERE s = 'local'`
	if tab, err := db.Query(q); err != nil || tab.NumRows() != 2 {
		t.Fatalf("seed query: %v rows, err %v", tab, err)
	}
	if _, err := db.Exec(`DROP TABLE V`); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Query(q); err == nil {
		t.Fatal("query after DROP must fail")
	}
	if err := db.ExecScript(`
		CREATE TABLE V (m, s, d, v);
		INSERT INTO V VALUES ('gets', 'local', 'home', 'VC0');
	`); err != nil {
		t.Fatal(err)
	}
	tab, err := db.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	if tab.NumRows() != 1 || !tab.Get(0, "m").Equal(rel.S("gets")) {
		t.Errorf("after recreate, rows = %v", tab)
	}
}

func TestPutTableSameSchemaKeepsPlans(t *testing.T) {
	db := newTestDB(t)
	const q = `SELECT m FROM V WHERE s = 'remote'`
	if tab, err := db.Query(q); err != nil || tab.NumRows() != 1 {
		t.Fatalf("seed query: rows %v, err %v", tab, err)
	}
	// Same-shape replacement: cached plan must read the new rows.
	v2 := rel.MustNewTable("V", "m", "s", "d", "v")
	v2.MustInsert(rel.S("a"), rel.S("remote"), rel.S("home"), rel.S("VC1"))
	v2.MustInsert(rel.S("b"), rel.S("remote"), rel.S("home"), rel.S("VC2"))
	db.PutTable(v2)
	if tab, err := db.Query(q); err != nil || tab.NumRows() != 2 {
		t.Fatalf("after same-schema PutTable: rows %v, err %v", tab, err)
	}
	// Different-shape replacement: plans referencing dropped columns fail
	// cleanly rather than reading stale positions.
	v3 := rel.MustNewTable("V", "m", "chan")
	v3.MustInsert(rel.S("a"), rel.S("VC1"))
	db.PutTable(v3)
	if _, err := db.Query(q); err == nil {
		t.Fatal("query naming a dropped column must fail after reshape")
	}
}

func TestPreparedStatement(t *testing.T) {
	db := newTestDB(t)
	base := db.Stats()
	p, err := db.Prepare(`SELECT * FROM D WHERE dirst = 'SI'`)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		tab, err := p.Query()
		if err != nil {
			t.Fatal(err)
		}
		if tab.NumRows() != 2 {
			t.Fatalf("run %d: rows = %d, want 2", i, tab.NumRows())
		}
	}
	empty, err := p.QueryEmpty()
	if err != nil || empty {
		t.Fatalf("QueryEmpty = %v, %v", empty, err)
	}
	// All prepared executions are plan-cache hits; Prepare itself is not an
	// execution.
	st := db.Stats()
	if got := st.PlanCacheHits - base.PlanCacheHits; got != 4 {
		t.Errorf("prepared hits = %d, want 4", got)
	}
	if got := st.PlanCacheMisses - base.PlanCacheMisses; got != 0 {
		t.Errorf("prepared misses = %d, want 0", got)
	}

	if _, err := db.Prepare(`SELECT FROM WHERE`); err == nil {
		t.Fatal("Prepare must fail on a syntax error")
	}
	dml, err := db.Prepare(`INSERT INTO V VALUES ('x', 'local', 'home', 'VC0')`)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := dml.Query(); err == nil {
		t.Fatal("Query on a prepared non-SELECT must fail")
	}
	if res, err := dml.Exec(); err != nil || res.Affected != 1 {
		t.Fatalf("prepared INSERT: %v, %v", res, err)
	}
}

// TestConcurrentQueryAndExec exercises the reader/writer split and the index
// maintenance under -race: many goroutines re-run the same cached indexed
// query while others insert and delete rows.
func TestConcurrentQueryAndExec(t *testing.T) {
	db := newTestDB(t)
	const q = `SELECT d.dirpv FROM D d JOIN V ON d.inmsg = V.m WHERE d.dirst = 'SI'`
	if _, err := db.Query(q); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				if _, err := db.Query(q); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				ins := fmt.Sprintf(`INSERT INTO D VALUES ('readex', 'SI', 'w%d-%d', 'sinv', 'Busy-sd')`, w, i)
				if _, err := db.Exec(ins); err != nil {
					t.Error(err)
					return
				}
				del := fmt.Sprintf(`DELETE FROM D WHERE dirpv = 'w%d-%d'`, w, i)
				if _, err := db.Exec(del); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	// Writers cleaned up after themselves: back to the 2 seed SI rows that
	// join V on readex.
	tab, err := db.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	if tab.NumRows() != 2 {
		t.Errorf("final rows = %d, want 2", tab.NumRows())
	}
}

func TestParseExprCached(t *testing.T) {
	const src = "inmsg = readex and dirst = SI"
	a, err := ParseExprCached(src)
	if err != nil {
		t.Fatal(err)
	}
	b, err := ParseExprCached(src)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Errorf("cached parse differs: %v vs %v", a, b)
	}
	fresh, err := ParseExpr(src)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, fresh) {
		t.Errorf("cached tree %v differs from fresh parse %v", a, fresh)
	}
	if _, err := ParseExprCached("and and"); err == nil {
		t.Fatal("ParseExprCached must propagate parse errors")
	}
	// Errors are not cached as successes.
	if _, err := ParseExprCached("and and"); err == nil {
		t.Fatal("repeated bad parse must still fail")
	}
}
