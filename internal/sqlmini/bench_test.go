package sqlmini

import (
	"fmt"
	"testing"

	"coherdb/internal/rel"
)

func benchDB(b *testing.B, rows int) *DB {
	b.Helper()
	db := NewDB()
	t := rel.MustNewTable("T", "m", "st", "pv", "out")
	msgs := []string{"read", "readex", "wb", "idone", "data"}
	sts := []string{"I", "SI", "MESI"}
	for i := 0; i < rows; i++ {
		t.MustInsert(
			rel.S(msgs[i%len(msgs)]), rel.S(sts[i%len(sts)]),
			rel.I(int64(i%3)), rel.S(fmt.Sprintf("o%d", i%17)),
		)
	}
	db.PutTable(t)
	v := rel.MustNewTable("V", "m", "vc")
	for i, m := range msgs {
		v.MustInsert(rel.S(m), rel.S(fmt.Sprintf("VC%d", i)))
	}
	db.PutTable(v)
	return db
}

func BenchmarkParseStatement(b *testing.B) {
	const q = `SELECT DISTINCT t.m, v.vc AS chan FROM T t JOIN V v ON t.m = v.m
		WHERE t.st <> 'I' AND t.pv IN (1, 2) ORDER BY chan DESC LIMIT 10`
	for i := 0; i < b.N; i++ {
		if _, err := ParseStatement(q); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkParseTernaryConstraint(b *testing.B) {
	const e = `inmsg = "data" and dirst = "Busy-d" ? dirpv = zero :
		inmsg = "idone" and dirst = "Busy-s" ? dirpv = zero : dirpv = one`
	for i := 0; i < b.N; i++ {
		if _, err := ParseExpr(e); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEvalTernary(b *testing.B) {
	e, err := ParseExpr(`m = "data" and st = "MESI" ? pv = 1 : pv = 2`)
	if err != nil {
		b.Fatal(err)
	}
	ev := &Evaluator{Funcs: map[string]Func{}, NullEq: true}
	env := MapEnv{"m": rel.S("data"), "st": rel.S("MESI"), "pv": rel.I(1)}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ev.Eval(e, env); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkQueryWhere(b *testing.B) {
	for _, rows := range []int{100, 1000, 10000} {
		db := benchDB(b, rows)
		b.Run(fmt.Sprintf("rows=%d", rows), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := db.Query(`SELECT m, out FROM T WHERE st = 'MESI' AND m <> 'wb'`); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkQueryHashJoin(b *testing.B) {
	db := benchDB(b, 5000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := db.Query(`SELECT T.m, V.vc FROM T JOIN V ON T.m = V.m`); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkQueryEmptyInvariantIdiom(b *testing.B) {
	db := benchDB(b, 5000)
	db.SetStrictNulls(true)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		empty, err := db.QueryEmpty(`SELECT m FROM T WHERE st = 'MESI' AND NOT pv IN (0, 1, 2)`)
		if err != nil || !empty {
			b.Fatal(err)
		}
	}
}
