package sqlmini

import (
	"errors"
	"sync"

	"coherdb/internal/rel"
)

// errNotVectorizable marks an expression whose shape requires
// row-at-a-time evaluation (it reads two or more columns outside the
// kernel subset). The planner keeps a nil vectorized slot and EXPLAIN
// reports eval=scalar.
var errNotVectorizable = errors.New("sqlmini: expression not vectorizable")

// Vectorized predicate execution: a compiled WHERE conjunct gains an
// EvalVec form that evaluates a whole morsel's column vectors per call
// instead of one code row at a time. The unit of work is a selection
// vector — the strictly increasing row indices still alive — and every
// kernel filters it in place:
//
//   - =, <>, IN and IS NULL over dictionary codes compile to tight
//     compare loops over one column vector (codes are injective, so
//     equality never decodes; NULL is code 0 in both dialects);
//   - AND is a kernel cascade over the shrinking selection (the second
//     conjunct only sees survivors, which is also the short-circuit:
//     an empty selection skips the rest of the chain);
//   - OR runs the left kernel on a copy, the right kernel on the
//     remainder (set-minus), and merges the two sorted survivor lists;
//   - NOT rewrites through Kleene-valid identities (De Morgan, operator
//     flips) so negation never needs a complement set;
//   - any other shape that reads exactly one column — range compares,
//     BETWEEN, CASE, registered calls — falls back to the scalar
//     compiled closure behind a per-code verdict memo: each distinct
//     dictionary code is evaluated once and the vector loop reuses the
//     verdict, which on low-cardinality protocol columns is almost as
//     tight as a native kernel;
//   - expressions reading two or more columns decline (CompileBoundVec
//     errors, the plan keeps a nil slot) and the scan stays scalar,
//     reported by EXPLAIN as eval=scalar.
//
// Selection semantics are WHERE semantics: a row survives iff the
// conjunct is definitely true. Kernels therefore drop unknown outright,
// which is what makes the NOT rewrites (rather than complements) exact.
//
// Evaluation order differs from the scalar path — conjunct-major over a
// morsel instead of row-major — so when several rows would error, which
// error surfaces first can differ. The compiled subset only errors on
// registered Funcs, which this codebase's workloads keep pure and
// total; the golden vectorized-vs-scalar tests pin byte-identical
// results on every successful query.
//
// A VecPred is immutable after compilation and safe for concurrent use:
// all mutable evaluation state (scratch selections, verdict memos) lives
// in pooled vecStates, one checked out per EvalVec call, so the
// steady-state vectorized path allocates nothing (see
// TestVectorizedFilterAllocs).

// memoCap bounds the per-code verdict memo of fallback kernels. Codes
// beyond it (a dictionary past 64k distinct values) evaluate through the
// scalar closure each time instead of growing the memo without bound.
const memoCap = 1 << 16

// vecKernel filters sel in place against the column vectors, returning
// the surviving prefix. sel is strictly increasing; kernels preserve
// that (they only compact forward).
type vecKernel func(st *vecState, cols [][]uint32, sel []uint32) ([]uint32, error)

// vecState is one evaluation's mutable scratch: selection buffers for OR
// nodes, verdict memos for fallback nodes, and a scratch row for their
// scalar closures. States are pooled per VecPred; memos persist across
// calls, which is sound because dictionary codes are append-only and the
// compiled closure's literals, dialect and functions are fixed at
// compile time (function re-registration bumps the schema epoch and
// rebuilds the plan, VecPred included).
type vecState struct {
	bufs  [][]uint32
	memos [][]uint8
	crow  []uint32
}

// buf returns scratch selection buffer slot with room for n entries.
func (st *vecState) buf(slot, n int) []uint32 {
	b := st.bufs[slot]
	if cap(b) < n {
		b = make([]uint32, n)
		st.bufs[slot] = b
	}
	return b[:n]
}

// growMemo widens memo slot to cover code, returning the grown table.
// Entries are 0 (unset), 1 (keep) or 2 (drop).
func (st *vecState) growMemo(slot int, code uint32) []uint8 {
	n := len(st.memos[slot])
	if n == 0 {
		n = 256
	}
	for n <= int(code) {
		n *= 2
	}
	if n > memoCap {
		n = memoCap
	}
	m := make([]uint8, n)
	copy(m, st.memos[slot])
	st.memos[slot] = m
	return m
}

// VecPred is the vectorized form of a compiled WHERE conjunct.
type VecPred struct {
	kern      vecKernel
	bufSlots  int
	memoSlots int
	crowLen   int
	pool      sync.Pool // *vecState
}

// EvalVec filters sel — strictly increasing row indices into the column
// vectors — in place and returns the surviving prefix. It is safe for
// concurrent use; each call checks a vecState out of the pool.
func (p *VecPred) EvalVec(cols [][]uint32, sel []uint32) ([]uint32, error) {
	st, _ := p.pool.Get().(*vecState)
	if st == nil {
		st = &vecState{
			bufs:  make([][]uint32, p.bufSlots),
			memos: make([][]uint8, p.memoSlots),
			crow:  make([]uint32, p.crowLen),
		}
	}
	out, err := p.kern(st, cols, sel)
	p.pool.Put(st)
	return out, err
}

// Width returns the number of column positions the predicate may read —
// the minimum length of the cols slice passed to EvalVec.
func (p *VecPred) Width() int { return p.crowLen }

// CompileBoundVec lowers a plan-bound conjunct into its vectorized form,
// or errNotVectorizable when the expression's shape forces row-at-a-time
// evaluation (it reads two or more columns outside the =/<>/IN/IS
// NULL/AND/OR/NOT kernel subset). Callers keep a nil slot on error and
// the scan falls back to the scalar compiled predicate.
func (ev *Evaluator) CompileBoundVec(e Expr) (*VecPred, error) {
	vc := &vecCompiler{c: &compiler{ev: ev, sweep: -1, bound: true}}
	k, err := vc.comp(e)
	if err != nil {
		return nil, err
	}
	return &VecPred{kern: k, bufSlots: vc.bufSlots, memoSlots: vc.memoSlots, crowLen: vc.crowLen}, nil
}

// compileVecs lowers each bound conjunct through CompileBoundVec,
// leaving nil slots where the compiler declined — the same convention
// compilePreds uses for the scalar closures.
func compileVecs(ev *Evaluator, conjuncts []Expr) []*VecPred {
	if len(conjuncts) == 0 {
		return nil
	}
	out := make([]*VecPred, len(conjuncts))
	for i, c := range conjuncts {
		if p, err := ev.CompileBoundVec(c); err == nil {
			out[i] = p
		}
	}
	return out
}

// fullyVec reports whether all n conjuncts lowered to vectorized
// kernels — the precondition for the column-at-a-time scan path.
func fullyVec(vecs []*VecPred, n int) bool {
	if n == 0 || len(vecs) != n {
		return false
	}
	for _, p := range vecs {
		if p == nil {
			return false
		}
	}
	return true
}

// vecCompiler carries compile-time slot counters; the inner scalar
// compiler lowers fallback subtrees (bound mode, no sweep).
type vecCompiler struct {
	c         *compiler
	bufSlots  int
	memoSlots int
	crowLen   int
}

func (vc *vecCompiler) needCrow(n int) {
	if n > vc.crowLen {
		vc.crowLen = n
	}
}

// vecOperand classifies a code-loadable operand: an interned literal or
// a plan-bound column position.
func vecOperand(e Expr) (code uint32, idx int, isLit, ok bool) {
	switch x := e.(type) {
	case Lit:
		return dict.Code(x.Val), 0, true, true
	case boundCol:
		return 0, x.Idx, false, true
	}
	return 0, 0, false, false
}

// constKernel keeps everything or nothing, for conjuncts decided at
// compile time.
func constKernel(keep bool) vecKernel {
	return func(_ *vecState, _ [][]uint32, sel []uint32) ([]uint32, error) {
		if keep {
			return sel, nil
		}
		return sel[:0], nil
	}
}

func (vc *vecCompiler) comp(e Expr) (vecKernel, error) {
	nullEq := vc.c.ev.NullEq
	switch x := e.(type) {
	case Lit:
		return constKernel(triOf(x.Val) == triTrue), nil
	case Unary:
		if r, ok := negateVec(x.X); ok {
			return vc.comp(r)
		}
		return vc.fallback(e)
	case Binary:
		switch x.Op {
		case "AND":
			l, err := vc.comp(x.L)
			if err != nil {
				return nil, err
			}
			r, err := vc.comp(x.R)
			if err != nil {
				return nil, err
			}
			return func(st *vecState, cols [][]uint32, sel []uint32) ([]uint32, error) {
				s, err := l(st, cols, sel)
				if err != nil || len(s) == 0 {
					return s, err
				}
				return r(st, cols, s)
			}, nil
		case "OR":
			l, err := vc.comp(x.L)
			if err != nil {
				return nil, err
			}
			r, err := vc.comp(x.R)
			if err != nil {
				return nil, err
			}
			slotL, slotR := vc.bufSlots, vc.bufSlots+1
			vc.bufSlots += 2
			return func(st *vecState, cols [][]uint32, sel []uint32) ([]uint32, error) {
				if len(sel) == 0 {
					return sel, nil
				}
				b := st.buf(slotL, len(sel))
				copy(b, sel)
				selL, err := l(st, cols, b)
				if err != nil {
					return nil, err
				}
				if len(selL) == len(sel) {
					return sel, nil // left kept everything; sel is unchanged
				}
				// Remainder = sel minus selL: both sorted, selL ⊆ sel.
				rem := st.buf(slotR, len(sel)-len(selL))
				k, li := 0, 0
				for _, ri := range sel {
					if li < len(selL) && selL[li] == ri {
						li++
						continue
					}
					rem[k] = ri
					k++
				}
				selR, err := r(st, cols, rem[:k])
				if err != nil {
					return nil, err
				}
				// Merge the two sorted, disjoint survivor lists into sel.
				i, j, w := 0, 0, 0
				for i < len(selL) && j < len(selR) {
					if selL[i] < selR[j] {
						sel[w] = selL[i]
						i++
					} else {
						sel[w] = selR[j]
						j++
					}
					w++
				}
				w += copy(sel[w:], selL[i:])
				w += copy(sel[w:], selR[j:])
				return sel[:w], nil
			}, nil
		case "=", "<>":
			lc, li, llit, lok := vecOperand(x.L)
			rc, ri, rlit, rok := vecOperand(x.R)
			if !lok || !rok {
				return vc.fallback(e)
			}
			want := x.Op == "="
			switch {
			case llit && rlit:
				if !nullEq && (lc == rel.NullCode || rc == rel.NullCode) {
					return constKernel(false), nil // unknown is never kept
				}
				return constKernel((lc == rc) == want), nil
			case llit != rlit:
				lit, idx := lc, ri
				if rlit {
					lit, idx = rc, li
				}
				vc.needCrow(idx + 1)
				if !nullEq && lit == rel.NullCode {
					return constKernel(false), nil
				}
				if want {
					// col = lit: a matching code is necessarily non-NULL
					// (lit is), so one compare serves both dialects.
					return func(_ *vecState, cols [][]uint32, sel []uint32) ([]uint32, error) {
						col := cols[idx]
						k := 0
						for _, ri := range sel {
							if col[ri] == lit {
								sel[k] = ri
								k++
							}
						}
						return sel[:k], nil
					}, nil
				}
				if nullEq {
					return func(_ *vecState, cols [][]uint32, sel []uint32) ([]uint32, error) {
						col := cols[idx]
						k := 0
						for _, ri := range sel {
							if col[ri] != lit {
								sel[k] = ri
								k++
							}
						}
						return sel[:k], nil
					}, nil
				}
				// Strict <>: NULL <> lit is unknown, dropped.
				return func(_ *vecState, cols [][]uint32, sel []uint32) ([]uint32, error) {
					col := cols[idx]
					k := 0
					for _, ri := range sel {
						if c := col[ri]; c != lit && c != rel.NullCode {
							sel[k] = ri
							k++
						}
					}
					return sel[:k], nil
				}, nil
			default: // column vs column
				w := li
				if ri > w {
					w = ri
				}
				vc.needCrow(w + 1)
				if nullEq {
					return func(_ *vecState, cols [][]uint32, sel []uint32) ([]uint32, error) {
						a, b := cols[li], cols[ri]
						k := 0
						for _, rx := range sel {
							if (a[rx] == b[rx]) == want {
								sel[k] = rx
								k++
							}
						}
						return sel[:k], nil
					}, nil
				}
				if want {
					return func(_ *vecState, cols [][]uint32, sel []uint32) ([]uint32, error) {
						a, b := cols[li], cols[ri]
						k := 0
						for _, rx := range sel {
							if ca := a[rx]; ca == b[rx] && ca != rel.NullCode {
								sel[k] = rx
								k++
							}
						}
						return sel[:k], nil
					}, nil
				}
				return func(_ *vecState, cols [][]uint32, sel []uint32) ([]uint32, error) {
					a, b := cols[li], cols[ri]
					k := 0
					for _, rx := range sel {
						ca, cb := a[rx], b[rx]
						if ca != cb && ca != rel.NullCode && cb != rel.NullCode {
							sel[k] = rx
							k++
						}
					}
					return sel[:k], nil
				}, nil
			}
		default:
			return vc.fallback(e)
		}
	case InList:
		return vc.inList(x)
	case IsNull:
		bc, ok := x.X.(boundCol)
		if !ok {
			return vc.fallback(e)
		}
		idx, neg := bc.Idx, x.Negate
		vc.needCrow(idx + 1)
		// NULL is code 0 in both dialects; IS NULL never yields unknown.
		return func(_ *vecState, cols [][]uint32, sel []uint32) ([]uint32, error) {
			col := cols[idx]
			k := 0
			for _, ri := range sel {
				if (col[ri] == rel.NullCode) != neg {
					sel[k] = ri
					k++
				}
			}
			return sel[:k], nil
		}, nil
	default:
		return vc.fallback(e)
	}
}

// inList compiles IN over an all-literal set and a column operand to a
// membership loop: small sets scan a dedup'd code array, larger ones
// probe a hash set — both per morsel element, no Value boxing.
func (vc *vecCompiler) inList(x InList) (vecKernel, error) {
	bc, ok := x.X.(boundCol)
	if !ok {
		return vc.fallback(x)
	}
	for _, s := range x.Set {
		if _, lit := s.(Lit); !lit {
			return vc.fallback(x)
		}
	}
	nullEq := vc.c.ev.NullEq
	neg := x.Negate
	idx := bc.Idx
	vc.needCrow(idx + 1)

	var codes []uint32
	hasNull := false
	for _, s := range x.Set {
		v := s.(Lit).Val
		if v.IsNull() {
			hasNull = true
			if !nullEq {
				continue // NULL elements never match in 3VL; they only taint
			}
		}
		c := dict.Code(v)
		dup := false
		for _, have := range codes {
			if have == c {
				dup = true
				break
			}
		}
		if !dup {
			codes = append(codes, c)
		}
	}
	if !nullEq && len(x.Set) == 0 {
		// Strict x IN () is false (NOT IN () true) for every x, NULL
		// included: the empty-set case precedes the NULL-operand case.
		return constKernel(neg), nil
	}
	var member func(c uint32) bool
	if len(codes) <= 8 {
		set := codes
		member = func(c uint32) bool {
			for _, s := range set {
				if s == c {
					return true
				}
			}
			return false
		}
	} else {
		set := make(map[uint32]struct{}, len(codes))
		for _, c := range codes {
			set[c] = struct{}{}
		}
		member = func(c uint32) bool {
			_, ok := set[c]
			return ok
		}
	}
	if nullEq {
		// Constraint dialect: NULL is an ordinary value, membership
		// decides outright.
		return func(_ *vecState, cols [][]uint32, sel []uint32) ([]uint32, error) {
			col := cols[idx]
			k := 0
			for _, ri := range sel {
				if member(col[ri]) != neg {
					sel[k] = ri
					k++
				}
			}
			return sel[:k], nil
		}, nil
	}
	// Strict ANSI: NULL operand is unknown (dropped); a NULL element
	// taints every non-match to unknown (dropped even under NOT IN).
	return func(_ *vecState, cols [][]uint32, sel []uint32) ([]uint32, error) {
		col := cols[idx]
		k := 0
		for _, ri := range sel {
			c := col[ri]
			if c == rel.NullCode {
				continue
			}
			in := member(c)
			if (in && !neg) || (!in && !hasNull && neg) {
				sel[k] = ri
				k++
			}
		}
		return sel[:k], nil
	}, nil
}

// negateVec rewrites NOT e through identities exact in Kleene 3VL, so
// negation reuses the positive kernels instead of needing complement
// sets: NOT flips true/false and keeps unknown, which is precisely what
// operator flips and De Morgan do. Ordered comparisons are NOT safe to
// flip (NOT (a < b) and a >= b disagree on NULL under the constraint
// dialect) and are left to the fallback.
func negateVec(e Expr) (Expr, bool) {
	switch x := e.(type) {
	case Unary: // NOT NOT e
		return x.X, true
	case Binary:
		switch x.Op {
		case "=":
			return Binary{Op: "<>", L: x.L, R: x.R}, true
		case "<>":
			return Binary{Op: "=", L: x.L, R: x.R}, true
		case "AND":
			return Binary{Op: "OR", L: Unary{Op: "NOT", X: x.L}, R: Unary{Op: "NOT", X: x.R}}, true
		case "OR":
			return Binary{Op: "AND", L: Unary{Op: "NOT", X: x.L}, R: Unary{Op: "NOT", X: x.R}}, true
		}
	case InList:
		x.Negate = !x.Negate
		return x, true
	case IsNull:
		x.Negate = !x.Negate
		return x, true
	}
	return nil, false
}

// fallback vectorizes an arbitrary conjunct that reads at most one
// column: the scalar compiled closure runs behind a per-code verdict
// memo, so each distinct dictionary code in the column is evaluated once
// per state lifetime and the morsel loop is a table lookup. Conjuncts
// reading two or more columns decline.
func (vc *vecCompiler) fallback(e Expr) (vecKernel, error) {
	// Distinct bound positions; a bare Col means the planner could not
	// bind it, which the scalar compiler rejects below anyway.
	idx := -1
	multi := false
	walkBound(e, func(b boundCol) {
		if idx < 0 {
			idx = b.Idx
		} else if b.Idx != idx {
			multi = true
		}
	})
	if multi {
		return nil, errNotVectorizable
	}
	fn, _, err := vc.c.bool(e)
	if err != nil {
		return nil, err
	}
	if idx < 0 {
		// No column references: one evaluation decides the whole morsel.
		return func(_ *vecState, _ [][]uint32, sel []uint32) ([]uint32, error) {
			t, err := fn(nil, nil)
			if err != nil {
				return nil, err
			}
			if t == triTrue {
				return sel, nil
			}
			return sel[:0], nil
		}, nil
	}
	slot := vc.memoSlots
	vc.memoSlots++
	vc.needCrow(idx + 1)
	width := idx + 1
	return func(st *vecState, cols [][]uint32, sel []uint32) ([]uint32, error) {
		col := cols[idx]
		m := st.memos[slot]
		crow := st.crow[:width]
		k := 0
		for _, ri := range sel {
			c := col[ri]
			var v uint8
			if int(c) < len(m) {
				v = m[c]
			}
			if v == 0 {
				crow[idx] = c
				t, err := fn(nil, crow)
				if err != nil {
					return nil, err
				}
				v = 2
				if t == triTrue {
					v = 1
				}
				if c < memoCap {
					if int(c) >= len(m) {
						m = st.growMemo(slot, c)
					}
					m[c] = v
				}
			}
			if v == 1 {
				sel[k] = ri
				k++
			}
		}
		return sel[:k], nil
	}, nil
}

// walkBound visits every bound column reference in e.
func walkBound(e Expr, visit func(boundCol)) {
	switch x := e.(type) {
	case boundCol:
		visit(x)
	case Unary:
		walkBound(x.X, visit)
	case Binary:
		walkBound(x.L, visit)
		walkBound(x.R, visit)
	case InList:
		walkBound(x.X, visit)
		for _, s := range x.Set {
			walkBound(s, visit)
		}
	case IsNull:
		walkBound(x.X, visit)
	case Between:
		walkBound(x.X, visit)
		walkBound(x.Lo, visit)
		walkBound(x.Hi, visit)
	case Ternary:
		walkBound(x.Cond, visit)
		walkBound(x.Then, visit)
		walkBound(x.Else, visit)
	case Case:
		for _, w := range x.Whens {
			walkBound(w.Cond, visit)
			walkBound(w.Val, visit)
		}
		if x.Else != nil {
			walkBound(x.Else, visit)
		}
	case Call:
		for _, a := range x.Args {
			walkBound(a, visit)
		}
	}
}
