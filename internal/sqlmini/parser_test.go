package sqlmini

import (
	"strings"
	"testing"
)

func mustExpr(t *testing.T, src string) Expr {
	t.Helper()
	e, err := ParseExpr(src)
	if err != nil {
		t.Fatalf("ParseExpr(%q): %v", src, err)
	}
	return e
}

func TestParsePaperColumnConstraint(t *testing.T) {
	// Verbatim from §3 of the paper.
	e := mustExpr(t, `inmsg = "data" and dirst = "Busy-d" ? dirpv = zero : dirpv = one`)
	tern, ok := e.(Ternary)
	if !ok {
		t.Fatalf("expr = %T, want Ternary", e)
	}
	cond, ok := tern.Cond.(Binary)
	if !ok || cond.Op != "AND" {
		t.Fatalf("cond = %#v", tern.Cond)
	}
	// zero is a bare symbol (resolved to a value later by ResolveSymbols).
	if got := tern.Then.String(); got != "(dirpv = zero)" {
		t.Fatalf("then = %q", got)
	}
}

func TestParseRemmsgConstraint(t *testing.T) {
	// Also verbatim: bare identifiers serve as symbolic values.
	e := mustExpr(t, `inmsg = readex and dirst = SI ? remmsg = sinv : remmsg = NULL`)
	tern := e.(Ternary)
	eq, ok := tern.Else.(Binary)
	if !ok || eq.Op != "=" {
		t.Fatalf("else = %#v", tern.Else)
	}
	if lit, ok := eq.R.(Lit); !ok || !lit.Val.IsNull() {
		t.Fatalf("else RHS = %#v, want NULL literal", eq.R)
	}
}

func TestParseNestedTernary(t *testing.T) {
	e := mustExpr(t, `a = 1 ? x = 1 : a = 2 ? x = 2 : x = 3`)
	outer := e.(Ternary)
	if _, ok := outer.Else.(Ternary); !ok {
		t.Fatalf("ternary not right-associative: %s", e)
	}
}

func TestParsePrecedenceOrAnd(t *testing.T) {
	e := mustExpr(t, `a = 1 or b = 2 and c = 3`)
	b := e.(Binary)
	if b.Op != "OR" {
		t.Fatalf("top op = %s, want OR (AND binds tighter)", b.Op)
	}
	if r := b.R.(Binary); r.Op != "AND" {
		t.Fatalf("right op = %s", r.Op)
	}
}

func TestParseNotBindsTighterThanAnd(t *testing.T) {
	e := mustExpr(t, `not a = 1 and b = 2`)
	b := e.(Binary)
	if b.Op != "AND" {
		t.Fatalf("top = %s", b.Op)
	}
	if _, ok := b.L.(Unary); !ok {
		t.Fatalf("left = %#v, want NOT node", b.L)
	}
}

func TestParseInAndNotIn(t *testing.T) {
	e := mustExpr(t, `inmsg in ('readex', 'read', 'wb')`)
	in := e.(InList)
	if len(in.Set) != 3 || in.Negate {
		t.Fatalf("in = %#v", in)
	}
	e = mustExpr(t, `inmsg not in ('retry')`)
	if in := e.(InList); !in.Negate {
		t.Fatal("NOT IN lost negation")
	}
}

func TestParseIsNull(t *testing.T) {
	if e := mustExpr(t, `remmsg is null`).(IsNull); e.Negate {
		t.Fatal("IS NULL parsed as negated")
	}
	if e := mustExpr(t, `remmsg is not null`).(IsNull); !e.Negate {
		t.Fatal("IS NOT NULL lost negation")
	}
}

func TestParseBetween(t *testing.T) {
	e := mustExpr(t, `n between 1 and 5`).(Between)
	if e.Negate {
		t.Fatal("negated")
	}
	e2 := mustExpr(t, `n not between 1 and 5`).(Between)
	if !e2.Negate {
		t.Fatal("NOT BETWEEN lost negation")
	}
}

func TestParseCase(t *testing.T) {
	e := mustExpr(t, `case when a = 1 then 'x' when a = 2 then 'y' else 'z' end`).(Case)
	if len(e.Whens) != 2 || e.Else == nil {
		t.Fatalf("case = %#v", e)
	}
	if _, err := ParseExpr(`case else 1 end`); err == nil {
		t.Fatal("CASE without WHEN must fail")
	}
}

func TestParseCall(t *testing.T) {
	e := mustExpr(t, `isrequest(inmsg)`).(Call)
	if e.Name != "isrequest" || len(e.Args) != 1 {
		t.Fatalf("call = %#v", e)
	}
	z := mustExpr(t, `nullary()`).(Call)
	if len(z.Args) != 0 {
		t.Fatalf("nullary args = %d", len(z.Args))
	}
}

func TestParseQualifiedColumn(t *testing.T) {
	e := mustExpr(t, `ED.inmsg = 'wb'`).(Binary)
	c := e.L.(Col)
	if c.Qualifier != "ED" || c.Name != "inmsg" {
		t.Fatalf("col = %#v", c)
	}
}

func TestParseSelectFull(t *testing.T) {
	s, err := ParseStatement(`SELECT DISTINCT d.inmsg, v.vc AS chan FROM D d JOIN V v ON d.inmsg = v.m WHERE d.dirst <> 'I' ORDER BY chan DESC LIMIT 10`)
	if err != nil {
		t.Fatal(err)
	}
	sel := s.(*SelectStmt)
	if !sel.Distinct || len(sel.Items) != 2 || len(sel.From) != 1 || len(sel.Joins) != 1 {
		t.Fatalf("select = %+v", sel)
	}
	if sel.Items[1].Alias != "chan" {
		t.Fatalf("alias = %q", sel.Items[1].Alias)
	}
	if sel.From[0].Alias != "d" || sel.Joins[0].Ref.Alias != "v" {
		t.Fatal("aliases lost")
	}
	if len(sel.OrderBy) != 1 || !sel.OrderBy[0].Desc || sel.Limit != 10 {
		t.Fatalf("orderby/limit = %+v %d", sel.OrderBy, sel.Limit)
	}
}

func TestParseSelectStar(t *testing.T) {
	s, err := ParseStatement(`SELECT * FROM D`)
	if err != nil {
		t.Fatal(err)
	}
	if !s.(*SelectStmt).Items[0].Star {
		t.Fatal("star not parsed")
	}
}

func TestParseUnion(t *testing.T) {
	s, err := ParseStatement(`SELECT a FROM t1 UNION ALL SELECT a FROM t2 UNION SELECT a FROM t3`)
	if err != nil {
		t.Fatal(err)
	}
	sel := s.(*SelectStmt)
	if sel.Union == nil || !sel.UnionAll {
		t.Fatal("first UNION ALL missing")
	}
	if sel.Union.Union == nil || sel.Union.UnionAll {
		t.Fatal("second UNION missing or wrongly ALL")
	}
}

func TestParseCreateVariants(t *testing.T) {
	s, err := ParseStatement(`CREATE TABLE V (m, s, d, v)`)
	if err != nil {
		t.Fatal(err)
	}
	if c := s.(*CreateStmt); len(c.Cols) != 4 || c.As != nil {
		t.Fatalf("create = %+v", c)
	}
	// The paper's §5 statement verbatim (modulo the nested-projection
	// shorthand ED.Inputs, which our dialect spells as column lists).
	s, err = ParseStatement(`Create Table Request_remmsg as Select distinct inmsg, remmsg from ED Where isrequest(inmsg)`)
	if err != nil {
		t.Fatal(err)
	}
	if c := s.(*CreateStmt); c.As == nil || c.Name != "Request_remmsg" {
		t.Fatalf("create-as = %+v", c)
	}
	// Typed columns are tolerated and ignored.
	s, err = ParseStatement(`CREATE TABLE t (a int, b text)`)
	if err != nil {
		t.Fatal(err)
	}
	if c := s.(*CreateStmt); len(c.Cols) != 2 {
		t.Fatalf("typed create = %+v", c)
	}
}

func TestParseDrop(t *testing.T) {
	s, err := ParseStatement(`DROP TABLE IF EXISTS old`)
	if err != nil {
		t.Fatal(err)
	}
	if d := s.(*DropStmt); !d.IfExists || d.Name != "old" {
		t.Fatalf("drop = %+v", d)
	}
}

func TestParseInsert(t *testing.T) {
	s, err := ParseStatement(`INSERT INTO V (m, s, d, v) VALUES ('readex', 'local', 'home', 'VC0'), ('sinv', 'home', 'remote', 'VC1')`)
	if err != nil {
		t.Fatal(err)
	}
	ins := s.(*InsertStmt)
	if len(ins.Rows) != 2 || len(ins.Cols) != 4 {
		t.Fatalf("insert = %+v", ins)
	}
}

func TestParseDeleteAndUpdate(t *testing.T) {
	s, err := ParseStatement(`DELETE FROM V WHERE v = 'VC4'`)
	if err != nil {
		t.Fatal(err)
	}
	if d := s.(*DeleteStmt); d.Where == nil {
		t.Fatalf("delete = %+v", d)
	}
	s, err = ParseStatement(`UPDATE V SET v = 'VC2', d = 'home' WHERE m = 'idone'`)
	if err != nil {
		t.Fatal(err)
	}
	if u := s.(*UpdateStmt); len(u.Cols) != 2 || u.Where == nil {
		t.Fatalf("update = %+v", u)
	}
}

func TestParseScript(t *testing.T) {
	stmts, err := ParseScript(`CREATE TABLE t (a); INSERT INTO t VALUES ('x'); SELECT * FROM t;`)
	if err != nil {
		t.Fatal(err)
	}
	if len(stmts) != 3 {
		t.Fatalf("stmts = %d", len(stmts))
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		`SELECT`,
		`SELECT a FROM`,
		`SELECT a FROM t WHERE`,
		`CREATE TABLE`,
		`CREATE TABLE t (`,
		`INSERT INTO t VALUES`,
		`DELETE t`,
		`UPDATE t a = 1`,
		`SELECT a FROM t LIMIT x`,
		`SELECT a FROM t JOIN u`,
		`a = 1 ? b`,
		`a not b`,
		`x is y`,
		`SELECT a b c FROM t`,
	}
	for _, src := range bad {
		if _, err := ParseStatement(src); err == nil {
			t.Errorf("ParseStatement(%q) succeeded, want error", src)
		}
	}
	if _, err := ParseExpr(`a = 1 extra`); err == nil {
		t.Error("trailing tokens after expression must fail")
	}
}

func TestExprStringRoundTrip(t *testing.T) {
	// String() output must reparse to the same string (idempotent render).
	srcs := []string{
		`inmsg = 'data' and dirst = 'Busy-d' ? dirpv = 'zero' : dirpv = 'one'`,
		`a in (1, 2, 3)`,
		`x is not null`,
		`not (a = 1 or b = 2)`,
		`case when a = 1 then 'x' else 'y' end`,
		`isrequest(inmsg)`,
		`n between 1 and 5`,
	}
	for _, src := range srcs {
		e1 := mustExpr(t, src)
		s1 := e1.String()
		e2 := mustExpr(t, s1)
		if s2 := e2.String(); s1 != s2 {
			t.Errorf("render not stable: %q -> %q", s1, s2)
		}
	}
}

func TestParseCountStar(t *testing.T) {
	s, err := ParseStatement(`SELECT COUNT(*) FROM D WHERE dirst = 'I'`)
	if err != nil {
		t.Fatal(err)
	}
	sel := s.(*SelectStmt)
	c, ok := sel.Items[0].Expr.(Call)
	if !ok || c.Name != "count_star" {
		t.Fatalf("items = %+v", sel.Items)
	}
	if !strings.Contains(c.String(), "count_star") {
		t.Fatal("render")
	}
}
