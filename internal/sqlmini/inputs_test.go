package sqlmini

import (
	"reflect"
	"testing"

	"coherdb/internal/delta"
	"coherdb/internal/rel"
)

func TestQueryInputs(t *testing.T) {
	cases := []struct {
		sql  string
		want []delta.Input
	}{
		{
			"SELECT dirst, dirpv FROM D WHERE dirst = 'RU'",
			[]delta.Input{{Table: "D", Cols: []string{"dirpv", "dirst"}}},
		},
		{
			"SELECT * FROM D",
			[]delta.Input{{Table: "D"}},
		},
		{
			"SELECT COUNT(*) FROM M",
			[]delta.Input{{Table: "M"}},
		},
		{
			// Qualified columns resolve through aliases; unqualified ones in
			// a join are charged to both tables.
			"SELECT a.x FROM D a JOIN M b ON a.k = b.k WHERE y = 1",
			[]delta.Input{
				{Table: "D", Cols: []string{"k", "x", "y"}},
				{Table: "M", Cols: []string{"k", "y"}},
			},
		},
		{
			"SELECT st FROM D GROUP BY st HAVING COUNT(*) > 1 ORDER BY st",
			[]delta.Input{{Table: "D", Cols: []string{"st"}}},
		},
		{
			"SELECT st FROM D UNION SELECT st2 FROM M",
			[]delta.Input{
				{Table: "D", Cols: []string{"st"}},
				{Table: "M", Cols: []string{"st2"}},
			},
		},
		{
			"DELETE FROM D WHERE st = 'X'",
			[]delta.Input{{Table: "D", Cols: []string{"st"}}},
		},
		{
			"UPDATE D SET a = b WHERE c = 1",
			[]delta.Input{{Table: "D", Cols: []string{"b", "c"}}},
		},
		{
			"SELECT inmsg FROM C WHERE isrequest(inmsg) AND NOT (othercol IS NULL)",
			[]delta.Input{{Table: "C", Cols: []string{"inmsg", "othercol"}}},
		},
	}
	for _, c := range cases {
		got, err := QueryInputs(c.sql)
		if err != nil {
			t.Fatalf("%s: %v", c.sql, err)
		}
		if !reflect.DeepEqual(got, c.want) {
			t.Errorf("%s:\n got %+v\nwant %+v", c.sql, got, c.want)
		}
	}
}

func TestRevisionCommit(t *testing.T) {
	db := NewDB()
	d := rel.MustNewTable("D", "st", "pv")
	d.MustInsert(rel.S("I"), rel.S("0"))
	d.MustInsert(rel.S("M"), rel.S("1"))
	db.PutTable(d)
	m := rel.MustNewTable("M", "k")
	m.MustInsert(rel.I(1))
	db.PutTable(m)

	rev := db.BeginRevision()
	if s := rev.Peek(); !s.Empty() {
		t.Fatalf("fresh revision not empty: %s", s)
	}

	if _, err := db.Exec("UPDATE D SET pv = '9' WHERE st = 'M'"); err != nil {
		t.Fatal(err)
	}
	s := rev.Commit()
	if !s.Touches("D", "pv") || s.Touches("D", "st") || s.TableTouched("M") {
		t.Fatalf("UPDATE delta wrong: %s", s)
	}

	// Commit re-baselined: the same edit scope keeps working.
	if _, err := db.Exec("INSERT INTO M (k) VALUES (2)"); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Exec("DELETE FROM D WHERE st = 'I'"); err != nil {
		t.Fatal(err)
	}
	s2 := rev.Commit()
	md := s2.Table("M")
	if md == nil || len(md.Added) != 1 || len(md.Removed) != 0 {
		t.Fatalf("INSERT delta wrong: %s", s2)
	}
	dd := s2.Table("D")
	if dd == nil || len(dd.Removed) != 1 || len(dd.Added) != 0 {
		t.Fatalf("DELETE delta wrong: %s", s2)
	}
	// Row-count changes must conservatively fire any column probe.
	if !s2.Touches("M", "nonexistent") {
		t.Fatal("cardinality change must touch every probe")
	}
	if s3 := rev.Commit(); !s3.Empty() {
		t.Fatalf("idle commit not empty: %s", s3)
	}
}

func TestRevisionSeesDirectTableMutation(t *testing.T) {
	db := NewDB()
	d := rel.MustNewTable("D", "a")
	d.MustInsert(rel.I(1))
	db.PutTable(d)
	rev := db.BeginRevision()
	if err := d.Set(0, "a", rel.I(2)); err != nil {
		t.Fatal(err)
	}
	if s := rev.Commit(); !s.Touches("D", "a") {
		t.Fatalf("direct mutation missed: %s", s)
	}
}
