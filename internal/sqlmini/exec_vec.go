package sqlmini

import (
	"sync"

	"coherdb/internal/obs"
	"coherdb/internal/pool"
	"coherdb/internal/rel"
)

// Column-at-a-time scan execution. When every pushed conjunct of a
// source lowered to a VecPred (fullyVec), the scan skips row
// materialization entirely: a pooled selection vector starts as the scan
// domain (all row numbers, or the index lookup's matches), each kernel
// filters it in place over the table's zero-copy column vectors, and
// only the survivors are gathered into frame rows. Above the parallel
// threshold the selection is dealt in morsel batches — each batch
// compacts its own subrange in place, then the kept prefixes concatenate
// in batch order, so the parallel selection is byte-identical to the
// serial one (the same guarantee the row-at-a-time scan makes).
//
// Selection vectors and the per-evaluation kernel scratch are pooled
// (selPool here, VecPred.pool in vectorize.go), so the steady-state
// vectorized filter allocates nothing — see TestVectorizedFilterAllocs.

// selVec is a pooled selection-vector buffer.
type selVec struct{ s []uint32 }

var selPool = sync.Pool{New: func() any { return new(selVec) }}

// getSel checks a buffer with room for n entries out of the pool.
func getSel(n int) *selVec {
	sv := selPool.Get().(*selVec)
	if cap(sv.s) < n {
		sv.s = make([]uint32, n)
	}
	return sv
}

// colsVec is a pooled column-vector directory.
type colsVec struct{ c [][]uint32 }

var colsPool = sync.Pool{New: func() any { return new(colsVec) }}

// vecUsable reports whether the source's pushed filter can run column-at-
// a-time over t: vectorization is on, every conjunct lowered, and every
// kernel's column positions exist in the table (always true for plans
// built against the current epoch; checked so a stale plan degrades to
// the scalar path instead of faulting).
func (r *run) vecUsable(t *rel.Table, sp srcPlan) bool {
	if !r.vec || !fullyVec(sp.vecs, len(sp.filters)) {
		return false
	}
	for _, p := range sp.vecs {
		if p.Width() > t.NumCols() {
			return false
		}
	}
	return true
}

// vecScan runs the fully vectorized pushed filter over t's column
// vectors and returns the frame of surviving rows. matched narrows the
// scan domain to the index lookup's row numbers; nil means the whole
// table.
func (r *run) vecScan(t *rel.Table, alias string, matched []int, vecs []*VecPred) (*frame, error) {
	f := schemaFrame(t, alias)
	n := t.NumRows()
	if matched != nil {
		n = len(matched)
	}
	sv := getSel(n)
	sel := sv.s[:n]
	if matched != nil {
		for i, ri := range matched {
			sel[i] = uint32(ri)
		}
	} else {
		for i := range sel {
			sel[i] = uint32(i)
		}
	}
	sel, err := r.vecFilter(t, sel, vecs)
	if err != nil {
		selPool.Put(sv)
		return nil, err
	}
	crows := t.CodeRows()
	f.rows = make([][]uint32, len(sel))
	for i, ri := range sel {
		f.rows[i] = crows[ri]
	}
	selPool.Put(sv)
	return f, nil
}

// vecFilter cascades the vectorized conjuncts over the selection,
// serially or in morsel batches, returning the surviving prefix of sel.
func (r *run) vecFilter(t *rel.Table, sel []uint32, vecs []*VecPred) ([]uint32, error) {
	r.qs.phase(obs.PhaseFilter)
	n := len(sel)
	ncols := t.NumCols()
	cv := colsPool.Get().(*colsVec)
	if cap(cv.c) < ncols {
		cv.c = make([][]uint32, ncols)
	}
	cols := cv.c[:ncols]
	for j := 0; j < ncols; j++ {
		cols[j] = t.ColCodes(j)
	}
	defer func() {
		for j := range cols {
			cols[j] = nil // do not pin table storage from the pool
		}
		colsPool.Put(cv)
	}()
	p, workers, morsel := r.parallel(n)
	if p == nil {
		var err error
		for _, vp := range vecs {
			sel, err = vp.EvalVec(cols, sel)
			if err != nil {
				return nil, err
			}
			if len(sel) == 0 {
				break
			}
		}
		r.qs.addVec(1, n, len(sel))
		r.azVec(1, n, len(sel))
		return sel, nil
	}
	nb := pool.Batches(n, morsel)
	lens := make([]int, nb)
	st, err := p.Each(workers, n, morsel, func(batch, lo, hi int) error {
		part := sel[lo:hi]
		var err error
		for _, vp := range vecs {
			part, err = vp.EvalVec(cols, part)
			if err != nil {
				return err
			}
			if len(part) == 0 {
				break
			}
		}
		lens[batch] = len(part)
		return nil
	})
	r.qs.addParallel(st)
	if err != nil {
		return nil, err
	}
	// Concatenate the kept prefixes in batch order: batch b's survivors
	// start at b*morsel, and the write cursor can never pass that point,
	// so the in-place compaction is safe.
	w := 0
	for b := 0; b < nb; b++ {
		lo := b * morsel
		w += copy(sel[w:], sel[lo:lo+lens[b]])
	}
	r.qs.addVec(nb, n, w)
	r.azVec(nb, n, w)
	return sel[:w], nil
}
