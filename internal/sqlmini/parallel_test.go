package sqlmini

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"

	"coherdb/internal/pool"
	"coherdb/internal/rel"
)

// bigTestDB builds a DB whose table T (rows rows, 7 groups) and lookup
// table L are large enough to split into several small morsels once
// forceParallel shrinks the morsel size.
func bigTestDB(t *testing.T, rows int) *DB {
	t.Helper()
	db := NewDB()
	tab, err := rel.NewTable("T", "id", "grp", "val", "flag")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < rows; i++ {
		flag := rel.S("on")
		if i%3 == 0 {
			flag = rel.Null()
		}
		err := tab.InsertRow([]rel.Value{
			rel.I(int64(i)),
			rel.S(fmt.Sprintf("g%d", i%7)),
			rel.I(int64(i * i % 101)),
			flag,
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	db.PutTable(tab)
	lk, err := rel.NewTable("L", "grp", "chan")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 7; i++ {
		if err := lk.InsertRow([]rel.Value{rel.S(fmt.Sprintf("g%d", i)), rel.S(fmt.Sprintf("VC%d", i%4))}); err != nil {
			t.Fatal(err)
		}
	}
	db.PutTable(lk)
	return db
}

// forceParallel installs a 4-worker pool and an 8-row morsel so the
// parallel path runs even on a single-CPU machine (the shared pool is
// sized to GOMAXPROCS, which would silently keep everything serial).
func forceParallel(db *DB) {
	db.SetPool(pool.New(4))
	db.SetWorkers(4)
	db.SetMorselSize(8)
}

// parallelQueries exercises every parallel phase: a compiled pushdown
// filter, a hash join probing the big side, a self join big enough to
// parallelize both build and probe, and grouping over a filtered scan.
var parallelQueries = []string{
	`SELECT id, val FROM T WHERE val > 50 AND flag IS NOT NULL`,
	`SELECT T.id, L.chan FROM T JOIN L ON T.grp = L.grp WHERE T.val > 10`,
	`SELECT a.id, b.id FROM T a JOIN T b ON a.grp = b.grp WHERE a.val > 10 AND b.val > 10 AND a.val > b.val`,
	`SELECT grp, COUNT(*) AS n, MAX(val) AS m FROM T WHERE flag IS NOT NULL GROUP BY grp ORDER BY grp`,
}

// TestParallelMatchesSerial pins the determinism guarantee on synthetic
// tables: morsel-parallel execution must produce byte-identical results
// to the serial path, and must actually have taken the parallel path.
func TestParallelMatchesSerial(t *testing.T) {
	db := bigTestDB(t, 200)
	for _, q := range parallelQueries {
		db.SetPool(nil)
		db.SetWorkers(1)
		db.SetMorselSize(0)
		serial, err := db.Query(q)
		if err != nil {
			t.Fatalf("serial %q: %v", q, err)
		}
		forceParallel(db)
		par, err := db.Query(q)
		if err != nil {
			t.Fatalf("parallel %q: %v", q, err)
		}
		if serial.String() != par.String() {
			t.Errorf("parallel result differs for %q:\nserial:\n%s\nparallel:\n%s", q, serial, par)
		}
		if got := db.Stats().LastQuery.Morsels; got == 0 {
			t.Errorf("parallel run of %q reported 0 morsels: parallel path not taken", q)
		}
	}
}

// TestParallelWorkerStats checks the surfaced parallelism numbers: a
// parallel phase reports its participants' busy time, and the DB-level
// aggregates fold the morsel counters.
func TestParallelWorkerStats(t *testing.T) {
	db := bigTestDB(t, 200)
	forceParallel(db)
	if _, err := db.Query(parallelQueries[0]); err != nil {
		t.Fatal(err)
	}
	qs := db.Stats().LastQuery
	if qs.Morsels == 0 || len(qs.WorkerBusy) == 0 {
		t.Fatalf("morsels = %d, worker busy entries = %d, want both > 0", qs.Morsels, len(qs.WorkerBusy))
	}
	if db.Stats().Morsels < int64(qs.Morsels) {
		t.Fatalf("DB aggregate morsels %d < last query's %d", db.Stats().Morsels, qs.Morsels)
	}
}

// TestExplainParallelAnnotations checks that EXPLAIN surfaces the
// executor's parallel gate: eligible scans and hash probes carry the
// workers/morsel annotation, and the same plan under a serial
// configuration does not.
func TestExplainParallelAnnotations(t *testing.T) {
	db := bigTestDB(t, 200)
	forceParallel(db)
	plan, err := db.Query(`EXPLAIN SELECT id FROM T WHERE val > 50`)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(plan.String(), "parallel scan (workers=4, morsel=8)") {
		t.Errorf("EXPLAIN missing parallel scan annotation:\n%s", plan)
	}
	// Filters on both sides rule out the index nested-loop paths, so the
	// plan falls to the ad-hoc hash join with its parallel probe.
	plan, err = db.Query(`EXPLAIN SELECT a.id, b.id FROM T a JOIN T b ON a.grp = b.grp WHERE a.val > 10 AND b.val > 10`)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(plan.String(), "parallel probe (workers=4, morsel=8)") {
		t.Errorf("EXPLAIN missing parallel probe annotation:\n%s", plan)
	}
	db.SetWorkers(1)
	plan, err = db.Query(`EXPLAIN SELECT id FROM T WHERE val > 50`)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(plan.String(), "parallel") {
		t.Errorf("serial EXPLAIN should not advertise parallelism:\n%s", plan)
	}
}

// TestConcurrentParallelSelects hammers one DB from many goroutines while
// the pool is active — the -race gate for the executor's shared state
// (plan cache, pool rendezvous, zero-copy scans). Every result must match
// the precomputed serial answer.
func TestConcurrentParallelSelects(t *testing.T) {
	db := bigTestDB(t, 200)
	want := make([]string, len(parallelQueries))
	db.SetWorkers(1)
	for i, q := range parallelQueries {
		res, err := db.Query(q)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = res.String()
	}
	forceParallel(db)
	var wg sync.WaitGroup
	errc := make(chan error, 64)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for iter := 0; iter < 10; iter++ {
				for i, q := range parallelQueries {
					res, err := db.Query(q)
					if err != nil {
						errc <- fmt.Errorf("%q: %v", q, err)
						return
					}
					if res.String() != want[i] {
						errc <- fmt.Errorf("%q: concurrent result diverged", q)
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Error(err)
	}
}

// TestPlanCacheDialectSlots toggles the NULL dialect between executions
// of one cached statement: each dialect must keep its own compiled plan
// (constraint dialect: "col = NULL" selects the NULL rows; ANSI: the
// comparison is unknown and selects nothing).
func TestPlanCacheDialectSlots(t *testing.T) {
	db := newTestDB(t)
	const q = `SELECT inmsg FROM D WHERE remmsg = NULL`
	count := func() int {
		t.Helper()
		res, err := db.Query(q)
		if err != nil {
			t.Fatal(err)
		}
		return res.NumRows()
	}
	for round := 0; round < 2; round++ {
		db.SetStrictNulls(false)
		if got := count(); got != 4 {
			t.Fatalf("round %d constraint dialect: %d rows, want 4", round, got)
		}
		db.SetStrictNulls(true)
		if got := count(); got != 0 {
			t.Fatalf("round %d ANSI dialect: %d rows, want 0", round, got)
		}
	}
	if pc := db.Stats().LastQuery.PlanCache; pc != "hit" {
		t.Fatalf("final execution plan cache = %q, want hit", pc)
	}
}

// TestCompileBoundUnboundColumn: CompileBound only accepts plan-bound
// expressions; a bare Col must refuse to compile (the caller falls back
// to the interpreter) rather than resolve names per row.
func TestCompileBoundUnboundColumn(t *testing.T) {
	ev := Evaluator{}
	c := &compiler{ev: &ev, sweep: -1, bound: true}
	if _, _, err := c.val(Col{Name: "x"}); !errors.Is(err, errUnboundCol) {
		t.Fatalf("compiling a bare Col: err = %v, want errUnboundCol", err)
	}
	if _, err := ev.CompileBound(Binary{Op: "=", L: Col{Name: "x"}, R: Lit{Val: rel.S("a")}}); !errors.Is(err, errUnboundCol) {
		t.Fatalf("CompileBound with unbound column: err = %v, want errUnboundCol", err)
	}
}

// TestCompileBoundValueConditionals pins the value-position semantics of
// CASE and ternary under compilation: the chosen branch's raw value (not
// its truth value) flows into the enclosing comparison, matching the
// interpreter exactly.
func TestCompileBoundValueConditionals(t *testing.T) {
	// Row layout: [0]=tag, [1]=payload.
	col := func(i int, name string) Expr { return boundCol{Col: Col{Name: name}, Idx: i} }
	caseExpr := Binary{
		Op: "=",
		L: Case{
			Whens: []When{{
				Cond: Binary{Op: "=", L: col(0, "tag"), R: Lit{Val: rel.S("yes")}},
				Val:  col(1, "payload"),
			}},
		},
		R: Lit{Val: rel.S("MESI")},
	}
	ternExpr := Binary{
		Op: "=",
		L: Ternary{
			Cond: Binary{Op: "=", L: col(0, "tag"), R: Lit{Val: rel.S("yes")}},
			Then: col(1, "payload"),
			Else: Lit{Val: rel.S("other")},
		},
		R: Lit{Val: rel.S("MESI")},
	}
	rows := [][]rel.Value{
		{rel.S("yes"), rel.S("MESI")}, // branch taken, payload matches
		{rel.S("yes"), rel.S("SI")},   // branch taken, payload differs
		{rel.S("no"), rel.S("MESI")},  // CASE: no arm -> NULL; ternary: else
		{rel.Null(), rel.S("MESI")},   // unknown condition
	}
	ev := Evaluator{}
	for name, e := range map[string]Expr{"case": caseExpr, "ternary": ternExpr} {
		pred, err := ev.CompileBound(e)
		if err != nil {
			t.Fatalf("%s: CompileBound: %v", name, err)
		}
		ev := Evaluator{}
		for i, row := range rows {
			got, err := pred(row)
			if err != nil {
				t.Fatalf("%s row %d: %v", name, i, err)
			}
			env := MapEnv{"tag": row[0], "payload": row[1]}
			want, err := ev.True(e, env)
			if err != nil {
				t.Fatalf("%s row %d interpreted: %v", name, i, err)
			}
			if got != want {
				t.Errorf("%s row %d: compiled = %v, interpreted = %v", name, i, got, want)
			}
		}
	}
}
