package sqlmini

import (
	"errors"
	"fmt"
	"sync"

	"coherdb/internal/rel"
)

// This file is the constraint-compilation layer: it lowers an expression
// tree once into a tree of position-bound closures, so the constraint
// solver's hot loop evaluates millions of candidate rows without per-row
// name resolution, AST walks or operator-string dispatch. It is the same
// move the query planner made for SELECT branches (plan-time boundCol
// binding), applied to the solver's per-candidate evaluation:
//
//   - column references resolve to row positions at compile time;
//   - registered functions resolve to their Func at compile time;
//   - AND/OR compile to short-circuit Kleene closures;
//   - IN over literal sets compiles to a hash-set membership test;
//   - comparison operators specialize per operator and NULL dialect;
//   - with a sweep column declared, subtrees that do not read it are
//     cached per instance across the sweep (see CompileSweep).
//
// Compiled closures run over dictionary-code rows ([]uint32): equality,
// IN membership and IS NULL specialize to integer compares against codes
// interned at compile time, and only ordered comparisons and function
// calls decode values. The Value-row entry points (Pred, Program.Eval)
// remain as encoding wrappers over the code kernels.
//
// Compiled closures close over immutable compile-time state only; all
// mutable evaluation state lives in per-worker Instances, so one Program
// may be evaluated concurrently from many solver workers.

// dict is the shared dictionary every rel.Table encodes into; compiled
// kernels intern their literals through it at compile time and compare
// codes at evaluation time.
var dict = rel.SharedDict()

// Pred is a compiled boolean constraint over a positional row: it reports
// whether the expression is definitely true (WHERE semantics), exactly as
// Evaluator.True would. The row must be at least long enough to cover
// every column position the compiled expression references; referenced
// positions beyond len(row) return ErrUnknownColumn. A Pred is safe for
// concurrent use.
type Pred func(row []rel.Value) (bool, error)

// CodePred is Pred over a dictionary-code row — the form the executor's
// filter loops evaluate, with no Value boxing on the hot path.
type CodePred func(crow []uint32) (bool, error)

// valFn is a compiled expression node producing a value.
type valFn func(in *Instance, crow []uint32) (rel.Value, error)

// codeFn is a compiled expression node producing a dictionary code; only
// literals and column references compile to one, which is exactly what
// equality, IN and IS NULL need to stay in code space.
type codeFn func(in *Instance, crow []uint32) (uint32, error)

// triFn is a compiled condition node producing three-valued truth.
type triFn func(in *Instance, crow []uint32) (tri, error)

// Program is a compiled boolean expression. Programs hold no mutable
// state; evaluation goes through an Instance, which carries the sweep
// cache for one worker.
type Program struct {
	root     triFn
	triSlots int
	valSlots int

	// insts pools released Instances so short solves (the constraint
	// solver's micro-steps) reuse evaluation state instead of allocating
	// memo slots per worker per step. Mirrors SweepProg's pool.
	insts sync.Pool
}

// Instance is one worker's evaluation state for a Program: the cache
// slots of sweep-stable subtrees plus the generation stamp that
// invalidates them. Instances are not safe for concurrent use; each
// goroutine evaluates through its own.
type Instance struct {
	gen     uint64
	triMemo []uint64 // stamp per tri slot
	tris    []tri
	valMemo []uint64 // stamp per val slot
	vals    []rel.Value
	crow    []uint32 // scratch for the Value-row Eval wrapper
	svBufs  [][]tri  // lane buffers for SweepProg combiners (see sweepvec.go)
}

// Instance returns evaluation state for p, reusing a released one when
// available.
func (p *Program) Instance() *Instance {
	if in, _ := p.insts.Get().(*Instance); in != nil {
		return in
	}
	return &Instance{
		gen:     1,
		triMemo: make([]uint64, p.triSlots),
		tris:    make([]tri, p.triSlots),
		valMemo: make([]uint64, p.valSlots),
		vals:    make([]rel.Value, p.valSlots),
	}
}

// Release puts an instance back into p's pool. The generation stamp on the
// cache slots keeps a later user from reading this user's memo entries —
// NextRow already separates rows within one user the same way.
func (p *Program) Release(in *Instance) {
	in.NextRow()
	p.insts.Put(in)
}

// NextRow invalidates the sweep cache: call it whenever any column other
// than the sweep column may have changed since the last Eval.
func (in *Instance) NextRow() { in.gen++ }

// Eval evaluates the program on a Value row through this instance's cache,
// reporting definite truth (WHERE semantics). It encodes the row and
// defers to EvalCodes; hot paths hold code rows already and skip the
// encoding.
func (p *Program) Eval(in *Instance, row []rel.Value) (bool, error) {
	var crow []uint32
	if in != nil {
		if cap(in.crow) < len(row) {
			in.crow = make([]uint32, len(row))
		}
		crow = in.crow[:len(row)]
	} else {
		crow = make([]uint32, len(row))
	}
	for i, v := range row {
		crow[i] = dict.Code(v)
	}
	return p.EvalCodes(in, crow)
}

// EvalCodes evaluates the program on a dictionary-code row through this
// instance's cache, reporting definite truth (WHERE semantics).
func (p *Program) EvalCodes(in *Instance, crow []uint32) (bool, error) {
	t, err := p.root(in, crow)
	return t == triTrue, err
}

// Compile lowers e into a position-bound closure tree with no sweep
// caching. colIndex maps each referenced column name to its position in
// the rows the predicate will see; the evaluator's Funcs and NullEq
// dialect are captured at compile time. Unknown columns and functions are
// compile-time errors (Evaluator reports them at evaluation time; the
// constraint solver validates constraints at spec-construction time, so
// the shift is invisible there).
//
// Compile(e, ix) agrees with Evaluator.True(e, env) on every row/env pair
// that binds the same values — the golden equivalence property the
// constraint solver relies on.
func (ev *Evaluator) Compile(e Expr, colIndex map[string]int) (Pred, error) {
	p, err := ev.CompileSweep(e, colIndex, -1)
	if err != nil {
		return nil, err
	}
	// No sweep column means no cache slots, so a nil Instance is never
	// dereferenced and the closure stays safe for concurrent use.
	return func(row []rel.Value) (bool, error) {
		return p.Eval(nil, row)
	}, nil
}

// errUnboundCol marks an expression the query planner could not fully
// bind to row positions; CompileBound callers fall back to interpreted
// evaluation, whose name resolution reports the identical unknown-column
// or ambiguity errors the unplanned path always produced.
var errUnboundCol = errors.New("sqlmini: expression not fully plan-bound")

// CompileBound lowers a plan-bound expression — one whose column
// references bindExpr already replaced with boundCol positions — into a
// Pred over the frame's positional rows. Any remaining bare Col (unknown
// or ambiguous at plan time) aborts compilation with errUnboundCol.
func (ev *Evaluator) CompileBound(e Expr) (Pred, error) {
	cp, err := ev.CompileBoundCodes(e)
	if err != nil {
		return nil, err
	}
	return func(row []rel.Value) (bool, error) {
		crow := make([]uint32, len(row))
		for i, v := range row {
			crow[i] = dict.Code(v)
		}
		return cp(crow)
	}, nil
}

// CompileBoundCodes is CompileBound over dictionary-code rows: the form
// the executor's morsel filter loops and hash-join residues evaluate
// directly against frame code rows. It is the query executor's
// counterpart of the constraint solver's Compile: the planner binds once,
// and the per-row filter loop then runs specialized closures instead of
// walking the AST through an Env.
//
// The NULL dialect and function registry are captured at compile time, so
// compiled plans are cached per dialect (see planEntry) and invalidated
// when a function is registered.
func (ev *Evaluator) CompileBoundCodes(e Expr) (CodePred, error) {
	c := &compiler{ev: ev, sweep: -1, bound: true}
	root, _, err := c.bool(e)
	if err != nil {
		return nil, err
	}
	p := &Program{root: root}
	return func(crow []uint32) (bool, error) {
		return p.EvalCodes(nil, crow)
	}, nil
}

// CompileSweep is Compile for sweep evaluation: the caller declares that
// between NextRow calls only the column at position sweep changes, and
// the compiler gives every maximal subtree that does not read that column
// a cache slot, evaluated once per generation. The constraint solver
// sweeps a candidate row's newest column across its domain; with the
// paper's rule-chain constraints this caches every rule condition (input
// columns only) across the whole domain sweep.
//
// Caching assumes registered Funcs are pure: a Func over sweep-stable
// arguments is invoked once per generation, not once per evaluation.
func (ev *Evaluator) CompileSweep(e Expr, colIndex map[string]int, sweep int) (*Program, error) {
	c := &compiler{ev: ev, ix: colIndex, sweep: sweep}
	root, _, err := c.bool(e)
	if err != nil {
		return nil, err
	}
	return &Program{root: root, triSlots: c.triSlots, valSlots: c.valSlots}, nil
}

// compiler carries compile-time state: the column binding, the sweep
// column (-1 when absent), the cache-slot counters, and whether column
// references resolve through pre-bound positions (CompileBound) or the
// name index (Compile/CompileSweep).
type compiler struct {
	ev       *Evaluator
	ix       map[string]int
	sweep    int
	bound    bool
	triSlots int
	valSlots int
}

// cacheTri gives a sweep-stable condition subtree a cache slot. maxPos is
// the highest row position the subtree reads (-1 for none).
func (c *compiler) cacheTri(fn triFn, maxPos int) triFn {
	if c.sweep < 0 || maxPos >= c.sweep {
		return fn
	}
	slot := c.triSlots
	c.triSlots++
	return func(in *Instance, crow []uint32) (tri, error) {
		if in.triMemo[slot] == in.gen {
			return in.tris[slot], nil
		}
		t, err := fn(in, crow)
		if err != nil {
			return t, err
		}
		in.triMemo[slot] = in.gen
		in.tris[slot] = t
		return t, nil
	}
}

// cacheVal is cacheTri for value subtrees.
func (c *compiler) cacheVal(fn valFn, maxPos int) valFn {
	if c.sweep < 0 || maxPos >= c.sweep {
		return fn
	}
	slot := c.valSlots
	c.valSlots++
	return func(in *Instance, crow []uint32) (rel.Value, error) {
		if in.valMemo[slot] == in.gen {
			return in.vals[slot], nil
		}
		v, err := fn(in, crow)
		if err != nil {
			return v, err
		}
		in.valMemo[slot] = in.gen
		in.vals[slot] = v
		return v, nil
	}
}

func maxPos(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// bool compiles e as a condition, returning the closure and the highest
// row position it reads. It mirrors Evaluator.Bool: Bool(e) ==
// triOf(Eval(e)) for every node, so recursing structurally through
// ternaries and cases preserves the interpreted semantics.
func (c *compiler) bool(e Expr) (triFn, int, error) {
	switch x := e.(type) {
	case Lit:
		t := triOf(x.Val)
		return func(*Instance, []uint32) (tri, error) { return t, nil }, -1, nil
	case Unary:
		inner, mp, err := c.bool(x.X)
		if err != nil {
			return nil, 0, err
		}
		return func(in *Instance, crow []uint32) (tri, error) {
			t, err := inner(in, crow)
			return -t, err // NOT flips true/false, keeps unknown
		}, mp, nil
	case Binary:
		switch x.Op {
		case "AND", "OR":
			l, lp, err := c.bool(x.L)
			if err != nil {
				return nil, 0, err
			}
			r, rp, err := c.bool(x.R)
			if err != nil {
				return nil, 0, err
			}
			mp := maxPos(lp, rp)
			if x.Op == "AND" {
				return c.cacheTri(func(in *Instance, crow []uint32) (tri, error) {
					lt, err := l(in, crow)
					if err != nil {
						return triUnknown, err
					}
					if lt == triFalse {
						return triFalse, nil
					}
					rt, err := r(in, crow)
					if err != nil {
						return triUnknown, err
					}
					return triMin(lt, rt), nil
				}, mp), mp, nil
			}
			return c.cacheTri(func(in *Instance, crow []uint32) (tri, error) {
				lt, err := l(in, crow)
				if err != nil {
					return triUnknown, err
				}
				if lt == triTrue {
					return triTrue, nil
				}
				rt, err := r(in, crow)
				if err != nil {
					return triUnknown, err
				}
				return triMax(lt, rt), nil
			}, mp), mp, nil
		default:
			return c.compare(x)
		}
	case InList:
		return c.in(x)
	case IsNull:
		if cf, mp, ok, err := c.code(x.X); err != nil {
			return nil, 0, err
		} else if ok {
			neg := x.Negate
			return c.cacheTri(func(in *Instance, crow []uint32) (tri, error) {
				cv, err := cf(in, crow)
				if err != nil {
					return triUnknown, err
				}
				return triBool((cv == rel.NullCode) != neg), nil
			}, mp), mp, nil
		}
		inner, mp, err := c.val(x.X)
		if err != nil {
			return nil, 0, err
		}
		neg := x.Negate
		return c.cacheTri(func(in *Instance, crow []uint32) (tri, error) {
			v, err := inner(in, crow)
			if err != nil {
				return triUnknown, err
			}
			return triBool(v.IsNull() != neg), nil
		}, mp), mp, nil
	case Between:
		return c.between(x)
	case Ternary:
		cond, cp, err := c.bool(x.Cond)
		if err != nil {
			return nil, 0, err
		}
		then, tp, err := c.bool(x.Then)
		if err != nil {
			return nil, 0, err
		}
		els, ep, err := c.bool(x.Else)
		if err != nil {
			return nil, 0, err
		}
		mp := maxPos(cp, maxPos(tp, ep))
		return c.cacheTri(func(in *Instance, crow []uint32) (tri, error) {
			t, err := cond(in, crow)
			if err != nil {
				return triUnknown, err
			}
			// Unknown behaves as false: the else branch (paper's ternary).
			if t == triTrue {
				return then(in, crow)
			}
			return els(in, crow)
		}, mp), mp, nil
	case Case:
		conds := make([]triFn, len(x.Whens))
		vals := make([]triFn, len(x.Whens))
		mp := -1
		for i, w := range x.Whens {
			fn, p, err := c.bool(w.Cond)
			if err != nil {
				return nil, 0, err
			}
			conds[i], mp = fn, maxPos(mp, p)
			if fn, p, err = c.bool(w.Val); err != nil {
				return nil, 0, err
			}
			vals[i], mp = fn, maxPos(mp, p)
		}
		var els triFn
		if x.Else != nil {
			fn, p, err := c.bool(x.Else)
			if err != nil {
				return nil, 0, err
			}
			els, mp = fn, maxPos(mp, p)
		}
		return c.cacheTri(func(in *Instance, crow []uint32) (tri, error) {
			for i, cond := range conds {
				t, err := cond(in, crow)
				if err != nil {
					return triUnknown, err
				}
				if t == triTrue {
					return vals[i](in, crow)
				}
			}
			if els != nil {
				return els(in, crow)
			}
			return triUnknown, nil // CASE with no match yields NULL
		}, mp), mp, nil
	default:
		// Col, boundCol, Call: evaluate as a value and take its truth.
		v, mp, err := c.val(e)
		if err != nil {
			return nil, 0, err
		}
		return func(in *Instance, crow []uint32) (tri, error) {
			val, err := v(in, crow)
			if err != nil {
				return triUnknown, err
			}
			return triOf(val), nil
		}, mp, nil
	}
}

// colPos resolves a column reference to its row position, honoring the
// bound/unbound compilation mode. ok=false with a nil error means the
// node is not a column reference at all.
func (c *compiler) colPos(e Expr) (idx int, rendered string, ok bool, err error) {
	switch x := e.(type) {
	case Col:
		if c.bound {
			// A bare Col surviving plan-time binding means the planner could
			// not resolve it (unknown or ambiguous); the interpreted path
			// owns that diagnosis.
			return 0, "", false, errUnboundCol
		}
		idx, found := c.ix[x.Name]
		if !found {
			return 0, "", false, fmt.Errorf("%w: %s", ErrUnknownColumn, x.String())
		}
		return idx, x.String(), true, nil
	case boundCol:
		if c.bound {
			return x.Idx, x.Col.String(), true, nil
		}
		// Positions bound against a table during query planning are stale
		// here; rebind by name against the compile-time index.
		idx, found := c.ix[x.Name]
		if !found {
			return 0, "", false, fmt.Errorf("%w: %s", ErrUnknownColumn, x.Col.String())
		}
		return idx, x.Col.String(), true, nil
	}
	return 0, "", false, nil
}

// code compiles e as a dictionary-code producer when possible: literals
// intern at compile time, column references load crow[idx]. ok=false
// means e needs full value evaluation (calls, ternaries, cases).
func (c *compiler) code(e Expr) (codeFn, int, bool, error) {
	if x, isLit := e.(Lit); isLit {
		cc := dict.Code(x.Val)
		return func(*Instance, []uint32) (uint32, error) { return cc, nil }, -1, true, nil
	}
	idx, rendered, ok, err := c.colPos(e)
	if err != nil || !ok {
		return nil, 0, false, err
	}
	return func(_ *Instance, crow []uint32) (uint32, error) {
		if idx >= len(crow) {
			return rel.NullCode, fmt.Errorf("%w: %s (position %d beyond row of %d)", ErrUnknownColumn, rendered, idx, len(crow))
		}
		return crow[idx], nil
	}, idx, true, nil
}

// val compiles e as a value producer, mirroring Evaluator.Eval. Column
// loads decode their code through the shared dictionary.
func (c *compiler) val(e Expr) (valFn, int, error) {
	switch x := e.(type) {
	case Lit:
		v := x.Val
		return func(*Instance, []uint32) (rel.Value, error) { return v, nil }, -1, nil
	case Col, boundCol:
		idx, rendered, ok, err := c.colPos(e)
		if err != nil {
			return nil, 0, err
		}
		if !ok {
			return nil, 0, fmt.Errorf("%w: %v", ErrUnknownColumn, e)
		}
		return func(_ *Instance, crow []uint32) (rel.Value, error) {
			if idx >= len(crow) {
				return rel.Null(), fmt.Errorf("%w: %s (position %d beyond row of %d)", ErrUnknownColumn, rendered, idx, len(crow))
			}
			return dict.Value(crow[idx]), nil
		}, idx, nil
	case Call:
		fn, ok := c.ev.Funcs[x.Name]
		if !ok {
			return nil, 0, fmt.Errorf("%w: %s", ErrUnknownFunc, x.Name)
		}
		args := make([]valFn, len(x.Args))
		mp := -1
		for i, a := range x.Args {
			afn, p, err := c.val(a)
			if err != nil {
				return nil, 0, err
			}
			args[i], mp = afn, maxPos(mp, p)
		}
		return c.cacheVal(func(in *Instance, crow []uint32) (rel.Value, error) {
			vals := make([]rel.Value, len(args))
			for i, a := range args {
				v, err := a(in, crow)
				if err != nil {
					return rel.Null(), err
				}
				vals[i] = v
			}
			return fn(vals)
		}, mp), mp, nil
	case Ternary:
		// As a value, a ternary yields the chosen branch's value (which
		// need not be boolean); only the condition is three-valued.
		cond, cp, err := c.bool(x.Cond)
		if err != nil {
			return nil, 0, err
		}
		then, tp, err := c.val(x.Then)
		if err != nil {
			return nil, 0, err
		}
		els, ep, err := c.val(x.Else)
		if err != nil {
			return nil, 0, err
		}
		mp := maxPos(cp, maxPos(tp, ep))
		return c.cacheVal(func(in *Instance, crow []uint32) (rel.Value, error) {
			t, err := cond(in, crow)
			if err != nil {
				return rel.Null(), err
			}
			// Unknown behaves as false: the else branch (paper's ternary).
			if t == triTrue {
				return then(in, crow)
			}
			return els(in, crow)
		}, mp), mp, nil
	case Case:
		// As a value, CASE yields the first matching WHEN's value; no
		// match and no ELSE yields NULL, exactly as Evaluator.Eval.
		conds := make([]triFn, len(x.Whens))
		vals := make([]valFn, len(x.Whens))
		mp := -1
		for i, w := range x.Whens {
			fn, p, err := c.bool(w.Cond)
			if err != nil {
				return nil, 0, err
			}
			conds[i], mp = fn, maxPos(mp, p)
			vfn, p, err := c.val(w.Val)
			if err != nil {
				return nil, 0, err
			}
			vals[i], mp = vfn, maxPos(mp, p)
		}
		var els valFn
		if x.Else != nil {
			fn, p, err := c.val(x.Else)
			if err != nil {
				return nil, 0, err
			}
			els, mp = fn, maxPos(mp, p)
		}
		return c.cacheVal(func(in *Instance, crow []uint32) (rel.Value, error) {
			for i, cond := range conds {
				t, err := cond(in, crow)
				if err != nil {
					return rel.Null(), err
				}
				if t == triTrue {
					return vals[i](in, crow)
				}
			}
			if els != nil {
				return els(in, crow)
			}
			return rel.Null(), nil
		}, mp), mp, nil
	default:
		// Every other node is a condition; its value is its truth value.
		b, mp, err := c.bool(e)
		if err != nil {
			return nil, 0, err
		}
		return func(in *Instance, crow []uint32) (rel.Value, error) {
			t, err := b(in, crow)
			if err != nil {
				return rel.Null(), err
			}
			return triVal(t), nil
		}, mp, nil
	}
}

// compare specializes a comparison on its operator and the NULL dialect
// at compile time. Equality over code-loadable operands (columns and
// literals) is a pure integer compare: the shared dictionary is injective,
// so equal codes ⇔ equal values, and code 0 is NULL in both dialects.
func (c *compiler) compare(x Binary) (triFn, int, error) {
	nullEq := c.ev.NullEq
	switch x.Op {
	case "=", "<>":
		lc, lp, lok, err := c.code(x.L)
		if err != nil {
			return nil, 0, err
		}
		rc, rp, rok, err := c.code(x.R)
		if err != nil {
			return nil, 0, err
		}
		if lok && rok {
			mp := maxPos(lp, rp)
			want := x.Op == "="
			fn := func(in *Instance, crow []uint32) (tri, error) {
				la, err := lc(in, crow)
				if err != nil {
					return triUnknown, err
				}
				ra, err := rc(in, crow)
				if err != nil {
					return triUnknown, err
				}
				if !nullEq && (la == rel.NullCode || ra == rel.NullCode) {
					return triUnknown, nil
				}
				return triBool((la == ra) == want), nil
			}
			return c.cacheTri(fn, mp), mp, nil
		}
	}
	l, lp, err := c.val(x.L)
	if err != nil {
		return nil, 0, err
	}
	r, rp, err := c.val(x.R)
	if err != nil {
		return nil, 0, err
	}
	mp := maxPos(lp, rp)
	var fn triFn
	switch x.Op {
	case "=", "<>":
		want := x.Op == "="
		fn = func(in *Instance, crow []uint32) (tri, error) {
			lv, err := l(in, crow)
			if err != nil {
				return triUnknown, err
			}
			rv, err := r(in, crow)
			if err != nil {
				return triUnknown, err
			}
			if !nullEq && (lv.IsNull() || rv.IsNull()) {
				return triUnknown, nil
			}
			return triBool(lv.Equal(rv) == want), nil
		}
	case "<", "<=", ">", ">=":
		op := x.Op
		fn = func(in *Instance, crow []uint32) (tri, error) {
			lv, err := l(in, crow)
			if err != nil {
				return triUnknown, err
			}
			rv, err := r(in, crow)
			if err != nil {
				return triUnknown, err
			}
			return compareVals(op, lv, rv, nullEq), nil
		}
	default:
		return nil, 0, fmt.Errorf("sqlmini: cannot compile operator %q", x.Op)
	}
	return c.cacheTri(fn, mp), mp, nil
}

// in compiles membership tests. When every set element is a literal — the
// overwhelmingly common shape after ResolveSymbols turns bare identifiers
// into string literals — the set compiles to a hash set of dictionary
// codes, turning the O(|set|) scan per candidate into one integer-keyed
// lookup with no Value boxing.
func (c *compiler) in(x InList) (triFn, int, error) {
	neg := x.Negate
	nullEq := c.ev.NullEq

	allLit := true
	for _, s := range x.Set {
		if _, ok := s.(Lit); !ok {
			allLit = false
			break
		}
	}
	if allLit {
		codes := make(map[uint32]struct{}, len(x.Set))
		hasNull := false
		for _, s := range x.Set {
			v := s.(Lit).Val
			if v.IsNull() {
				hasNull = true
				if !nullEq {
					continue // NULL elements never match in 3VL; they only taint
				}
			}
			codes[dict.Code(v)] = struct{}{}
		}
		empty := len(x.Set) == 0
		if cf, mp, ok, err := c.code(x.X); err != nil {
			return nil, 0, err
		} else if ok {
			return c.cacheTri(func(in *Instance, crow []uint32) (tri, error) {
				cv, err := cf(in, crow)
				if err != nil {
					return triUnknown, err
				}
				var res tri
				switch {
				case nullEq:
					// Constraint dialect: NULL is an ordinary value, the set
					// lookup decides outright.
					if _, ok := codes[cv]; ok {
						res = triTrue
					} else {
						res = triFalse
					}
				case empty:
					res = triFalse
				case cv == rel.NullCode:
					res = triUnknown // NULL compared to a non-empty set
				default:
					if _, ok := codes[cv]; ok {
						res = triTrue
					} else if hasNull {
						res = triUnknown // no match, but a NULL element taints
					} else {
						res = triFalse
					}
				}
				if neg {
					res = -res
				}
				return res, nil
			}, mp), mp, nil
		}
		// Computed operand (call, case): evaluate the value, then intern-
		// free membership via a read-only dictionary probe.
		inner, mp, err := c.val(x.X)
		if err != nil {
			return nil, 0, err
		}
		return c.cacheTri(func(in *Instance, crow []uint32) (tri, error) {
			v, err := inner(in, crow)
			if err != nil {
				return triUnknown, err
			}
			inSet := false
			if cv, known := dict.LookupCode(v); known {
				_, inSet = codes[cv]
			}
			var res tri
			switch {
			case nullEq:
				res = triBool(inSet)
			case empty:
				res = triFalse
			case v.IsNull():
				res = triUnknown
			case inSet:
				res = triTrue
			case hasNull:
				res = triUnknown
			default:
				res = triFalse
			}
			if neg {
				res = -res
			}
			return res, nil
		}, mp), mp, nil
	}

	// General form: compiled element expressions, scanned with the same
	// short-circuit as the interpreter.
	inner, mp, err := c.val(x.X)
	if err != nil {
		return nil, 0, err
	}
	set := make([]valFn, len(x.Set))
	for i, s := range x.Set {
		fn, p, err := c.val(s)
		if err != nil {
			return nil, 0, err
		}
		set[i], mp = fn, maxPos(mp, p)
	}
	return c.cacheTri(func(in *Instance, crow []uint32) (tri, error) {
		v, err := inner(in, crow)
		if err != nil {
			return triUnknown, err
		}
		res := triFalse
		for _, s := range set {
			sv, err := s(in, crow)
			if err != nil {
				return triUnknown, err
			}
			res = triMax(res, compareVals("=", v, sv, nullEq))
			if res == triTrue {
				break
			}
		}
		if neg {
			res = -res
		}
		return res, nil
	}, mp), mp, nil
}

func (c *compiler) between(x Between) (triFn, int, error) {
	inner, mp, err := c.val(x.X)
	if err != nil {
		return nil, 0, err
	}
	lo, p, err := c.val(x.Lo)
	if err != nil {
		return nil, 0, err
	}
	mp = maxPos(mp, p)
	hi, p, err := c.val(x.Hi)
	if err != nil {
		return nil, 0, err
	}
	mp = maxPos(mp, p)
	neg := x.Negate
	nullEq := c.ev.NullEq
	return c.cacheTri(func(in *Instance, crow []uint32) (tri, error) {
		v, err := inner(in, crow)
		if err != nil {
			return triUnknown, err
		}
		lv, err := lo(in, crow)
		if err != nil {
			return triUnknown, err
		}
		hv, err := hi(in, crow)
		if err != nil {
			return triUnknown, err
		}
		res := triMin(compareVals(">=", v, lv, nullEq), compareVals("<=", v, hv, nullEq))
		if neg {
			res = -res
		}
		return res, nil
	}, mp), mp, nil
}
