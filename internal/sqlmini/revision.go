package sqlmini

import "coherdb/internal/delta"

// Revision is an open edit scope over the database: BeginRevision baselines
// every table (copy-on-write snapshots plus revision counters), the caller
// applies edits — SQL DML through the DB, or direct rel.Table mutations —
// and Commit returns exactly what changed as a *delta.Set, re-baselining so
// the same Revision serves the next round of edits. This is the primitive
// behind the cohergen/cohercheck -incremental loops: edit, Commit, hand the
// delta to check.Suite.RunDelta / deadlock.Analyze, repeat.
//
// The snapshot fast path makes an idle Commit O(tables): unchanged tables
// are recognized by pointer identity and revision number without touching
// their data. Baselining and committing must not race with writers; run
// them from the same goroutine (or under the same exclusion) as the edits.
type Revision struct {
	db *DB
	tr *delta.Tracker
}

// BeginRevision captures the current state of every table and returns the
// open revision scope.
func (db *DB) BeginRevision() *Revision {
	r := &Revision{db: db, tr: delta.NewTracker()}
	r.tr.Capture(db)
	return r
}

// Commit returns the delta from the last baseline (BeginRevision or the
// previous Commit) to the current state, then re-baselines.
func (r *Revision) Commit() *delta.Set {
	return r.tr.DiffAndCapture(r.db)
}

// Peek returns the delta accumulated so far without re-baselining.
func (r *Revision) Peek() *delta.Set {
	return r.tr.Diff(r.db)
}
