package sqlmini

import "coherdb/internal/delta"

// Revision is an open edit scope over a catalog view — the whole DB, or
// one Session's overlay-plus-shared view: BeginRevision baselines every
// table (copy-on-write snapshots plus revision counters), the caller
// applies edits — SQL DML, or direct rel.Table mutations — and Commit
// returns exactly what changed as a *delta.Set, re-baselining so the same
// Revision serves the next round of edits. This is the primitive behind
// the cohergen/cohercheck -incremental loops and the server's per-session
// \recheck: edit, Commit, hand the delta to check.Suite.RunDelta /
// deadlock.Analyze, repeat.
//
// The snapshot fast path makes an idle Commit O(tables): unchanged tables
// are recognized by pointer identity and revision number without touching
// their data. Under MVCC that identity is exactly right: an epoch that
// left a table alone shares its pointer, while a committed DML statement
// published a new one. Baselining and committing must not race with the
// view's own edits; run them from the owning goroutine.
type Revision struct {
	src delta.Catalog
	tr  *delta.Tracker
}

// beginRevision baselines any catalog view (the DB itself, or a Session).
func beginRevision(src delta.Catalog) *Revision {
	r := &Revision{src: src, tr: delta.NewTracker()}
	r.tr.Capture(src)
	return r
}

// BeginRevision captures the current state of every table and returns the
// open revision scope.
func (db *DB) BeginRevision() *Revision {
	return beginRevision(db)
}

// Commit returns the delta from the last baseline (BeginRevision or the
// previous Commit) to the current state, then re-baselines.
func (r *Revision) Commit() *delta.Set {
	return r.tr.DiffAndCapture(r.src)
}

// Peek returns the delta accumulated so far without re-baselining.
func (r *Revision) Peek() *delta.Set {
	return r.tr.Diff(r.src)
}
