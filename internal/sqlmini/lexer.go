package sqlmini

import (
	"fmt"
	"strings"
)

// SyntaxError reports a lexing or parsing failure with its byte offset.
type SyntaxError struct {
	Pos int
	Msg string
}

func (e *SyntaxError) Error() string {
	return fmt.Sprintf("sqlmini: syntax error at offset %d: %s", e.Pos, e.Msg)
}

func errAt(pos int, format string, args ...any) error {
	return &SyntaxError{Pos: pos, Msg: fmt.Sprintf(format, args...)}
}

// Lex tokenizes a SQL string. Comments ("-- ..." to end of line) are
// skipped. Strings use single quotes with ” as the escape. Double-quoted
// identifiers are supported for names with punctuation (e.g. "Busy-sd"
// column values appear as strings, but "Request_remmsg" style names are
// plain identifiers).
func Lex(src string) ([]Token, error) {
	var toks []Token
	i := 0
	n := len(src)
	for i < n {
		c := src[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			i++
		case c == '-' && i+1 < n && src[i+1] == '-':
			for i < n && src[i] != '\n' {
				i++
			}
		case c == '\'':
			start := i
			i++
			var sb strings.Builder
			closed := false
			for i < n {
				if src[i] == '\'' {
					if i+1 < n && src[i+1] == '\'' {
						sb.WriteByte('\'')
						i += 2
						continue
					}
					i++
					closed = true
					break
				}
				sb.WriteByte(src[i])
				i++
			}
			if !closed {
				return nil, errAt(start, "unterminated string literal")
			}
			toks = append(toks, Token{Kind: TokString, Text: sb.String(), Pos: start})
		case c == '"':
			// The paper writes value literals in double quotes
			// (dirst = "Busy-d"); treat them as string literals.
			start := i
			i++
			j := strings.IndexByte(src[i:], '"')
			if j < 0 {
				return nil, errAt(start, "unterminated quoted literal")
			}
			toks = append(toks, Token{Kind: TokString, Text: src[i : i+j], Pos: start})
			i += j + 1
		case isDigit(c) || (c == '-' && i+1 < n && isDigit(src[i+1]) && startsValue(toks)):
			start := i
			if c == '-' {
				i++
			}
			for i < n && isDigit(src[i]) {
				i++
			}
			toks = append(toks, Token{Kind: TokNumber, Text: src[start:i], Pos: start})
		case isIdentStart(c):
			start := i
			for i < n && isIdentPart(src[i]) {
				i++
			}
			word := src[start:i]
			up := strings.ToUpper(word)
			if keywords[up] {
				toks = append(toks, Token{Kind: TokKeyword, Text: up, Pos: start})
			} else {
				toks = append(toks, Token{Kind: TokIdent, Text: word, Pos: start})
			}
		default:
			start := i
			sym, width := lexSymbol(src[i:])
			if width == 0 {
				return nil, errAt(start, "unexpected character %q", string(c))
			}
			i += width
			toks = append(toks, Token{Kind: TokSymbol, Text: sym, Pos: start})
		}
	}
	toks = append(toks, Token{Kind: TokEOF, Pos: n})
	return toks, nil
}

// startsValue reports whether a '-' at the current point begins a negative
// number rather than a binary minus: true at the start of input or after a
// symbol or keyword (e.g. after '(', ',', '=', IN).
func startsValue(toks []Token) bool {
	if len(toks) == 0 {
		return true
	}
	last := toks[len(toks)-1]
	switch last.Kind {
	case TokSymbol:
		return last.Text != ")" // after ')' a '-' would be binary
	case TokKeyword:
		return true
	default:
		return false
	}
}

func lexSymbol(s string) (string, int) {
	two := []string{"!=", "<>", "<=", ">=", "=="}
	for _, t := range two {
		if strings.HasPrefix(s, t) {
			return t, 2
		}
	}
	switch s[0] {
	case '(', ')', ',', '.', '=', '<', '>', '*', '?', ':', ';', '+', '-':
		return s[:1], 1
	}
	return "", 0
}

func isDigit(c byte) bool      { return c >= '0' && c <= '9' }
func isIdentStart(c byte) bool { return c == '_' || isLetter(c) }
func isIdentPart(c byte) bool  { return c == '_' || c == '-' || isLetter(c) || isDigit(c) }
func isLetter(c byte) bool     { return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') }
