package rel

import (
	"sync"
	"testing"
)

func catTable(t *testing.T, name string, cols []string, rows ...[]Value) *Table {
	t.Helper()
	tb, err := NewTable(name, cols...)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if err := tb.InsertRow(r); err != nil {
			t.Fatal(err)
		}
	}
	return tb
}

func TestCatalogDeriveAndEpochs(t *testing.T) {
	var ref CatalogRef
	c0 := ref.Load()
	if c0.Epoch() != 0 || c0.Len() != 0 {
		t.Fatalf("zero ref: epoch=%d len=%d, want 0/0", c0.Epoch(), c0.Len())
	}

	b := c0.Derive()
	b.Put(catTable(t, "cache", []string{"addr", "state"},
		[]Value{S("a0"), S("I")}))
	c1 := b.Build()
	if c1.Epoch() != 1 {
		t.Fatalf("epoch = %d, want 1", c1.Epoch())
	}
	if !ref.CompareAndSwap(c0, c1) {
		t.Fatal("first publish over zero ref failed")
	}
	if got := ref.Load(); got != c1 {
		t.Fatalf("Load = %p, want %p", got, c1)
	}

	// A stale CAS (from c0 again) must fail now.
	b2 := c0.Derive()
	b2.Put(catTable(t, "dir", []string{"addr"}))
	if ref.CompareAndSwap(c0, b2.Build()) {
		t.Fatal("stale CAS succeeded")
	}
	if got := ref.Load(); got != c1 {
		t.Fatal("stale CAS mutated the ref")
	}
}

func TestCatalogSchemaGenAndFingerprint(t *testing.T) {
	c0 := NewCatalog()

	b := c0.Derive()
	b.Put(catTable(t, "cache", []string{"addr", "state"}))
	c1 := b.Build()
	if c1.SchemaGen() == c0.SchemaGen() {
		t.Fatal("creating a table did not advance SchemaGen")
	}
	if c1.Fingerprint() == c0.Fingerprint() {
		t.Fatal("creating a table did not change Fingerprint")
	}

	// Identically-shaped replacement (the DML / pipeline-revision path)
	// keeps SchemaGen and therefore the fingerprint.
	shaped := catTable(t, "cache", []string{"addr", "state"},
		[]Value{S("a1"), S("S")})
	b = c1.Derive()
	b.Put(shaped)
	c2 := b.Build()
	if c2.SchemaGen() != c1.SchemaGen() {
		t.Fatal("same-shape replacement advanced SchemaGen")
	}
	if c2.Fingerprint() != c1.Fingerprint() {
		t.Fatal("same-shape replacement changed Fingerprint")
	}
	if c2.Epoch() != c1.Epoch()+1 {
		t.Fatalf("epoch = %d, want %d", c2.Epoch(), c1.Epoch()+1)
	}

	// DROP + CREATE of an identically-shaped table must land on a new
	// fingerprint: the generation moved, so cached plans cannot survive
	// the DDL boundary even though the shape is byte-identical.
	b = c2.Derive()
	if !b.Drop("cache") {
		t.Fatal("Drop missed an existing table")
	}
	b.Put(catTable(t, "cache", []string{"addr", "state"}))
	c3 := b.Build()
	if c3.Fingerprint() == c2.Fingerprint() {
		t.Fatal("DROP+CREATE same shape kept the fingerprint")
	}

	// Different column list also changes the fingerprint.
	b = c3.Derive()
	b.Put(catTable(t, "cache", []string{"addr", "state", "owner"}))
	c4 := b.Build()
	if c4.Fingerprint() == c3.Fingerprint() {
		t.Fatal("shape change kept the fingerprint")
	}
}

func TestCatalogNamesSortedAndImmutable(t *testing.T) {
	b := NewCatalog().Derive()
	for _, n := range []string{"zeta", "alpha", "mid"} {
		b.Put(catTable(t, n, []string{"x"}))
	}
	c := b.Build()
	names := c.Names()
	want := []string{"alpha", "mid", "zeta"}
	if len(names) != len(want) {
		t.Fatalf("Names = %v", names)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("Names = %v, want %v", names, want)
		}
	}
	// Deriving and dropping must not disturb the base catalog.
	d := c.Derive()
	d.Drop("mid")
	d.Build()
	if _, ok := c.Table("mid"); !ok {
		t.Fatal("Derive leaked a Drop into its base")
	}
}

// TestConcurrentSnapshotReaders is the -race acceptance test for epoch
// pinning at the rel layer: reader goroutines snapshot the published
// table and iterate ColCodes while a writer keeps appending and
// rewriting the source. Each reader asserts it sees exactly the epoch
// it pinned — same row count, same codes — no matter how far the writer
// has moved on.
func TestConcurrentSnapshotReaders(t *testing.T) {
	var ref CatalogRef
	seed := catTable(t, "cache", []string{"addr", "state"})
	for i := 0; i < 64; i++ {
		seed.MustInsert(S("a"), I(int64(i)))
	}
	b := NewCatalog().Derive()
	b.Put(seed.Snapshot())
	if !ref.CompareAndSwap(NewCatalog(), b.Build()) {
		t.Fatal("seed publish failed")
	}

	const (
		readers  = 8
		writerN  = 200
		readIter = 100
	)
	var wg sync.WaitGroup
	stop := make(chan struct{})

	// Writer: derive a working copy off the current epoch, mutate it
	// (alternating appends and rewrites), publish the successor.
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer close(stop)
		for i := 0; i < writerN; i++ {
			cur := ref.Load()
			base, _ := cur.Table("cache")
			work := base.Snapshot()
			if i%3 == 2 {
				work.DeleteWhere(func(r Row) bool {
					v := r.Get("state").Int()
					return v%2 == 1
				})
			} else {
				work.MustInsert(S("a"), I(int64(1000+i)))
				work.MustInsert(S("a"), I(int64(2000+i)))
			}
			nb := cur.Derive()
			nb.Put(work)
			if !ref.CompareAndSwap(cur, nb.Build()) {
				t.Error("single writer lost a CAS")
				return
			}
		}
	}()

	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				cat := ref.Load() // pin one epoch
				tb, ok := cat.Table("cache")
				if !ok {
					t.Error("pinned epoch lost its table")
					return
				}
				pin := tb.Snapshot()
				wantRows := pin.NumRows()
				first := append([]uint32(nil), pin.ColCodes(1)...)
				for k := 0; k < readIter; k++ {
					if pin.NumRows() != wantRows {
						t.Errorf("pinned row count moved: %d -> %d", wantRows, pin.NumRows())
						return
					}
					codes := pin.ColCodes(1)
					for i, c := range codes {
						if c != first[i] {
							t.Errorf("pinned codes changed at row %d", i)
							return
						}
					}
				}
			}
		}()
	}
	wg.Wait()

	final, _ := ref.Load().Table("cache")
	if final.NumRows() == 64 {
		t.Fatal("writer published no visible work")
	}
}

func TestCarryIndexesAppendOnly(t *testing.T) {
	src := catTable(t, "cache", []string{"addr", "state"})
	for i := 0; i < 10; i++ {
		src.MustInsert(S("a"), I(int64(i%3)))
	}
	if _, err := src.IndexOn("state"); err != nil {
		t.Fatal(err)
	}

	// Append-only derivation: index is extended, not rebuilt, and the
	// source's buckets stay frozen.
	work := src.Snapshot()
	work.MustInsert(S("a"), I(1))
	work.CarryIndexes(src)
	ix, err := work.IndexOn("state")
	if err != nil {
		t.Fatal(err)
	}
	if got := len(ix.Lookup(I(1))); got != 4 {
		t.Fatalf("extended index Lookup(1) = %d rows, want 4", got)
	}
	srcIx, _ := src.IndexOn("state")
	if got := len(srcIx.Lookup(I(1))); got != 3 {
		t.Fatalf("source index mutated: Lookup(1) = %d rows, want 3", got)
	}

	// Rewriting derivation: CarryIndexes rebuilds over the same columns.
	work2 := src.Snapshot()
	work2.DeleteWhere(func(r Row) bool {
		v := r.Get("state").Int()
		return v == 1
	})
	work2.CarryIndexes(src)
	ix2, err := work2.IndexOn("state")
	if err != nil {
		t.Fatal(err)
	}
	if got := len(ix2.Lookup(I(1))); got != 0 {
		t.Fatalf("rebuilt index Lookup(1) = %d rows, want 0", got)
	}
	if got := len(ix2.Lookup(I(0))); got != 4 {
		t.Fatalf("rebuilt index Lookup(0) = %d rows, want 4", got)
	}
}
