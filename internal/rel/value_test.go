package rel

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestValueConstructorsAndAccessors(t *testing.T) {
	if !Null().IsNull() || Null().Kind() != KindNull {
		t.Fatal("Null() must be NULL")
	}
	if v := S("readex"); v.Kind() != KindString || v.Str() != "readex" {
		t.Fatalf("S: got %v", v)
	}
	if v := I(-7); v.Kind() != KindInt || v.Int() != -7 {
		t.Fatalf("I: got %v", v)
	}
	if v := B(true); v.Kind() != KindBool || !v.Bool() {
		t.Fatalf("B: got %v", v)
	}
}

func TestValueZeroValueIsNull(t *testing.T) {
	var v Value
	if !v.IsNull() {
		t.Fatal("zero Value must be NULL")
	}
}

func TestValueAccessorsOnWrongKind(t *testing.T) {
	if S("x").Int() != 0 || S("x").Bool() {
		t.Fatal("wrong-kind accessors must return zero values")
	}
	if I(3).Str() != "" || Null().Str() != "" {
		t.Fatal("Str on non-string must be empty")
	}
}

func TestValueTruthy(t *testing.T) {
	cases := []struct {
		v    Value
		want bool
	}{
		{Null(), false},
		{B(true), true},
		{B(false), false},
		{I(0), false},
		{I(1), true},
		{I(-1), true},
		{S(""), false},
		{S("x"), true},
	}
	for _, c := range cases {
		if got := c.v.Truthy(); got != c.want {
			t.Errorf("Truthy(%v) = %v, want %v", c.v, got, c.want)
		}
	}
}

func TestValueEqual(t *testing.T) {
	if !Null().Equal(Null()) {
		t.Fatal("NULL must equal NULL for row identity")
	}
	if S("a").Equal(S("b")) || !S("a").Equal(S("a")) {
		t.Fatal("string equality broken")
	}
	if S("1").Equal(I(1)) {
		t.Fatal("cross-kind values must not be equal")
	}
	if B(false).Equal(Null()) {
		t.Fatal("false must not equal NULL")
	}
}

func TestValueCompareOrdering(t *testing.T) {
	ordered := []Value{Null(), B(false), B(true), I(-5), I(0), I(9), S(""), S("a"), S("b")}
	for i := range ordered {
		for j := range ordered {
			got := ordered[i].Compare(ordered[j])
			switch {
			case i < j && got >= 0:
				t.Errorf("Compare(%v,%v) = %d, want <0", ordered[i], ordered[j], got)
			case i > j && got <= 0:
				t.Errorf("Compare(%v,%v) = %d, want >0", ordered[i], ordered[j], got)
			case i == j && got != 0:
				t.Errorf("Compare(%v,%v) = %d, want 0", ordered[i], ordered[j], got)
			}
		}
	}
}

func TestValueStringRendering(t *testing.T) {
	cases := []struct {
		v    Value
		want string
	}{
		{Null(), "NULL"},
		{S("sinv"), "sinv"},
		{I(42), "42"},
		{B(true), "true"},
		{B(false), "false"},
	}
	for _, c := range cases {
		if got := c.v.String(); got != c.want {
			t.Errorf("String(%#v) = %q, want %q", c.v, got, c.want)
		}
	}
}

func TestValueQuoted(t *testing.T) {
	if got := S("it's").Quoted(); got != "'it''s'" {
		t.Fatalf("Quoted = %q", got)
	}
	if got := I(3).Quoted(); got != "3" {
		t.Fatalf("Quoted int = %q", got)
	}
	if got := Null().Quoted(); got != "NULL" {
		t.Fatalf("Quoted null = %q", got)
	}
}

// randomValue produces an arbitrary Value for property tests.
func randomValue(r *rand.Rand) Value {
	switch r.Intn(4) {
	case 0:
		return Null()
	case 1:
		return I(r.Int63n(2000) - 1000)
	case 2:
		return B(r.Intn(2) == 0)
	default:
		letters := []byte("abcxyz'#\\N")
		n := r.Intn(8)
		b := make([]byte, n)
		for i := range b {
			b[i] = letters[r.Intn(len(letters))]
		}
		return S(string(b))
	}
}

// valueGen adapts randomValue to testing/quick.
type valueGen struct{ V Value }

func (valueGen) Generate(r *rand.Rand, _ int) reflect.Value {
	return reflect.ValueOf(valueGen{V: randomValue(r)})
}

func TestQuickKeyInjective(t *testing.T) {
	// Property: Key is injective — equal keys imply Equal values.
	f := func(a, b valueGen) bool {
		if a.V.Key() == b.V.Key() {
			return a.V.Equal(b.V)
		}
		return !a.V.Equal(b.V)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickCompareAntisymmetric(t *testing.T) {
	f := func(a, b valueGen) bool {
		return a.V.Compare(b.V) == -b.V.Compare(a.V)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickCompareTransitiveOnTriples(t *testing.T) {
	f := func(a, b, c valueGen) bool {
		x, y, z := a.V, b.V, c.V
		if x.Compare(y) <= 0 && y.Compare(z) <= 0 {
			return x.Compare(z) <= 0
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 4000}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickEqualConsistentWithCompare(t *testing.T) {
	f := func(a, b valueGen) bool {
		return a.V.Equal(b.V) == (a.V.Compare(b.V) == 0)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickCSVRoundTrip(t *testing.T) {
	f := func(a valueGen) bool {
		v2, err := decodeValue(encodeValue(a.V))
		return err == nil && v2.Equal(a.V)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 4000}); err != nil {
		t.Fatal(err)
	}
}
