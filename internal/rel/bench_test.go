package rel

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"
)

func benchTable(rows int) *Table {
	rng := rand.New(rand.NewSource(7))
	t := MustNewTable("b", "a", "b", "c", "d")
	vals := []Value{S("x"), S("y"), S("z"), I(1), I(2), Null()}
	for i := 0; i < rows; i++ {
		t.MustInsert(
			vals[rng.Intn(len(vals))], vals[rng.Intn(len(vals))],
			vals[rng.Intn(len(vals))], I(int64(i%64)),
		)
	}
	return t
}

func BenchmarkSelect(b *testing.B) {
	t := benchTable(10000)
	want := S("x")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t.Select(func(r Row) bool { return r.Get("a").Equal(want) })
	}
}

func BenchmarkDistinct(b *testing.B) {
	t := benchTable(10000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t.Distinct()
	}
}

func BenchmarkEquiJoin(b *testing.B) {
	for _, n := range []int{100, 1000, 10000} {
		left := benchTable(n)
		right := MustNewTable("r", "k", "v")
		for i := 0; i < 64; i++ {
			right.MustInsert(I(int64(i)), S(fmt.Sprintf("v%d", i)))
		}
		b.Run(fmt.Sprintf("rows=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := left.EquiJoin(right, []JoinOn{{Left: "d", Right: "k"}}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkCrossFiltered(b *testing.B) {
	left := benchTable(300)
	right := benchTable(300)
	r2, err := right.Rename(map[string]string{"a": "a2", "b": "b2", "c": "c2", "d": "d2"})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := left.CrossFiltered(r2, func(row []Value) bool {
			return row[3].Equal(row[7])
		}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkIndexLookup(b *testing.B) {
	t := benchTable(10000)
	ix, err := BuildIndex(t, "d")
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ix.Lookup(I(int64(i % 64)))
	}
}

func BenchmarkCSVRoundTrip(b *testing.B) {
	t := benchTable(1000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var sb strings.Builder
		if err := t.WriteCSV(&sb); err != nil {
			b.Fatal(err)
		}
		if _, err := ReadCSV("b", strings.NewReader(sb.String())); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDiffByKey(b *testing.B) {
	old := benchTable(5000)
	new := old.Clone()
	for i := 0; i < new.NumRows(); i += 100 {
		_ = new.Set(i, "a", S("changed"))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := DiffByKey(old, new, []string{"d", "b", "c"}); err != nil {
			b.Fatal(err)
		}
	}
}
