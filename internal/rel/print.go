package rel

import (
	"fmt"
	"io"
	"strings"
)

// String renders the table as an aligned ASCII grid, matching the figures in
// the paper (header row, one row per controller transition).
func (t *Table) String() string {
	var sb strings.Builder
	_ = t.Write(&sb)
	return sb.String()
}

// Write renders the table as an aligned ASCII grid to w.
func (t *Table) Write(w io.Writer) error {
	widths := make([]int, len(t.cols))
	for i, c := range t.cols {
		widths[i] = len(c)
	}
	for _, r := range t.rows {
		for i, v := range r {
			if n := len(v.String()); n > widths[i] {
				widths[i] = n
			}
		}
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "-- %s (%d rows) --\n", t.name, len(t.rows))
	for i, c := range t.cols {
		if i > 0 {
			sb.WriteString("  ")
		}
		pad(&sb, c, widths[i])
	}
	sb.WriteByte('\n')
	for i := range widths {
		if i > 0 {
			sb.WriteString("  ")
		}
		sb.WriteString(strings.Repeat("-", widths[i]))
	}
	sb.WriteByte('\n')
	for _, r := range t.rows {
		for i, v := range r {
			if i > 0 {
				sb.WriteString("  ")
			}
			pad(&sb, v.String(), widths[i])
		}
		sb.WriteByte('\n')
	}
	_, err := io.WriteString(w, sb.String())
	return err
}

func pad(sb *strings.Builder, s string, w int) {
	sb.WriteString(s)
	for n := len(s); n < w; n++ {
		sb.WriteByte(' ')
	}
}
