package rel

import (
	"fmt"
	"io"
	"strings"
)

// String renders the table as an aligned ASCII grid, matching the figures in
// the paper (header row, one row per controller transition).
func (t *Table) String() string {
	var sb strings.Builder
	_ = t.Write(&sb)
	return sb.String()
}

// Write renders the table as an aligned ASCII grid to w.
func (t *Table) Write(w io.Writer) error {
	widths := make([]int, len(t.cols))
	for i, c := range t.cols {
		widths[i] = len(c)
	}
	for j, col := range t.data {
		for i := 0; i < t.nrows; i++ {
			if n := len(t.dict.Value(col[i]).String()); n > widths[j] {
				widths[j] = n
			}
		}
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "-- %s (%d rows) --\n", t.name, t.nrows)
	for i, c := range t.cols {
		if i > 0 {
			sb.WriteString("  ")
		}
		pad(&sb, c, widths[i])
	}
	sb.WriteByte('\n')
	for i := range widths {
		if i > 0 {
			sb.WriteString("  ")
		}
		sb.WriteString(strings.Repeat("-", widths[i]))
	}
	sb.WriteByte('\n')
	for i := 0; i < t.nrows; i++ {
		for j, col := range t.data {
			if j > 0 {
				sb.WriteString("  ")
			}
			pad(&sb, t.dict.Value(col[i]).String(), widths[j])
		}
		sb.WriteByte('\n')
	}
	_, err := io.WriteString(w, sb.String())
	return err
}

func pad(sb *strings.Builder, s string, w int) {
	sb.WriteString(s)
	for n := len(s); n < w; n++ {
		sb.WriteByte(' ')
	}
}
