package rel

import (
	"fmt"
	"io"
)

// Diff is the difference between two revisions of a table, as used during
// protocol revisions: rows only in the new revision, rows only in the old
// one, and — when a key is given — rows whose key survived but whose other
// columns changed.
type Diff struct {
	Added   *Table
	Removed *Table
	// Changed pairs old/new rows sharing a key (only with DiffByKey).
	Changed []ChangedRow
}

// ChangedRow is one key collision with differing non-key columns.
type ChangedRow struct {
	Key      []Value
	Old, New []Value
}

// Empty reports whether the revisions are identical.
func (d *Diff) Empty() bool {
	return d.Added.Empty() && d.Removed.Empty() && len(d.Changed) == 0
}

// DiffTables computes the set difference between two revisions with
// identical schemas.
func DiffTables(old, new *Table) (*Diff, error) {
	added, err := new.Difference(old)
	if err != nil {
		return nil, err
	}
	removed, err := old.Difference(new)
	if err != nil {
		return nil, err
	}
	return &Diff{
		Added:   added.SetName(new.Name() + "+"),
		Removed: removed.SetName(old.Name() + "-"),
	}, nil
}

// DiffByKey computes a keyed difference: rows are matched on the key
// columns (for controller tables, the input columns); matched rows with
// differing remaining columns are reported as changed rather than as an
// add/remove pair. Duplicate keys within one revision fall back to
// add/remove reporting.
func DiffByKey(old, new *Table, key []string) (*Diff, error) {
	if err := sameSchema(old, new); err != nil {
		return nil, err
	}
	keyIdx := make([]int, len(key))
	for i, k := range key {
		j := old.ColIndex(k)
		if j < 0 {
			return nil, fmt.Errorf("%w: %q in table %q", ErrUnknownColumn, k, old.Name())
		}
		keyIdx[i] = j
	}
	index := func(t *Table) (map[string]int, map[string]bool) {
		byKey := make(map[string]int, t.NumRows())
		dup := map[string]bool{}
		for i := 0; i < t.NumRows(); i++ {
			k := t.RowKey(i, keyIdx)
			if _, seen := byKey[k]; seen {
				dup[k] = true
			}
			byKey[k] = i
		}
		return byKey, dup
	}
	oldBy, oldDup := index(old)
	newBy, newDup := index(new)
	fullRows := func(t *Table) map[string]struct{} {
		set := make(map[string]struct{}, t.NumRows())
		for i := 0; i < t.NumRows(); i++ {
			set[t.RowKey(i, nil)] = struct{}{}
		}
		return set
	}
	oldFull := fullRows(old)
	newFull := fullRows(new)

	d := &Diff{
		Added:   MustNewTable(new.Name()+"+", new.Columns()...),
		Removed: MustNewTable(old.Name()+"-", old.Columns()...),
	}
	rowsEqual := func(a *Table, i int, b *Table, j int) bool {
		for c := range a.data {
			if a.data[c][i] != b.data[c][j] {
				return false
			}
		}
		return true
	}
	var addIdx, remIdx []int
	for i := 0; i < new.NumRows(); i++ {
		k := new.RowKey(i, keyIdx)
		j, ok := oldBy[k]
		switch {
		case !ok:
			addIdx = append(addIdx, i)
		case oldDup[k] || newDup[k]:
			if _, have := oldFull[new.RowKey(i, nil)]; !have {
				addIdx = append(addIdx, i)
			}
		case !rowsEqual(old, j, new, i):
			keyVals := make([]Value, len(keyIdx))
			for n, kj := range keyIdx {
				keyVals[n] = new.At(i, kj)
			}
			d.Changed = append(d.Changed, ChangedRow{
				Key: keyVals,
				Old: append([]Value(nil), old.RawRow(j)...),
				New: append([]Value(nil), new.RawRow(i)...),
			})
		}
	}
	for i := 0; i < old.NumRows(); i++ {
		k := old.RowKey(i, keyIdx)
		_, ok := newBy[k]
		switch {
		case !ok:
			remIdx = append(remIdx, i)
		case oldDup[k] || newDup[k]:
			if _, have := newFull[old.RowKey(i, nil)]; !have {
				remIdx = append(remIdx, i)
			}
		}
	}
	d.Added.gatherFrom(new, addIdx)
	d.Removed.gatherFrom(old, remIdx)
	return d, nil
}

// Write renders the diff in a unified-ish textual form.
func (d *Diff) Write(w io.Writer) error {
	if d.Empty() {
		_, err := io.WriteString(w, "tables identical\n")
		return err
	}
	if !d.Removed.Empty() {
		fmt.Fprintf(w, "removed (%d rows):\n", d.Removed.NumRows())
		if err := d.Removed.Write(w); err != nil {
			return err
		}
	}
	if !d.Added.Empty() {
		fmt.Fprintf(w, "added (%d rows):\n", d.Added.NumRows())
		if err := d.Added.Write(w); err != nil {
			return err
		}
	}
	for _, c := range d.Changed {
		fmt.Fprintf(w, "changed key %v:\n  old: %v\n  new: %v\n", c.Key, c.Old, c.New)
	}
	return nil
}
