package rel

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// The CSV encoding round-trips values losslessly: NULL is encoded as the
// bare token \N (as in classic database dump formats); integers and booleans
// are tagged so they are not confused with strings that look like numbers.

const csvNull = `\N`

func encodeValue(v Value) string {
	switch v.Kind() {
	case KindNull:
		return csvNull
	case KindInt:
		return "#i" + strconv.FormatInt(v.Int(), 10)
	case KindBool:
		if v.Bool() {
			return "#btrue"
		}
		return "#bfalse"
	default:
		s := v.Str()
		if strings.HasPrefix(s, "#") || s == csvNull {
			return "#s" + s
		}
		return s
	}
}

func decodeValue(s string) (Value, error) {
	switch {
	case s == csvNull:
		return Null(), nil
	case strings.HasPrefix(s, "#i"):
		n, err := strconv.ParseInt(s[2:], 10, 64)
		if err != nil {
			return Null(), fmt.Errorf("rel: bad int literal %q: %w", s, err)
		}
		return I(n), nil
	case s == "#btrue":
		return B(true), nil
	case s == "#bfalse":
		return B(false), nil
	case strings.HasPrefix(s, "#s"):
		return S(s[2:]), nil
	case strings.HasPrefix(s, "#"):
		return Null(), fmt.Errorf("rel: unknown value tag %q", s)
	default:
		return S(s), nil
	}
}

// WriteCSV encodes the table (header line then rows) to w.
func (t *Table) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(t.cols); err != nil {
		return err
	}
	rec := make([]string, len(t.cols))
	for i := 0; i < t.nrows; i++ {
		for j, col := range t.data {
			rec[j] = encodeValue(t.dict.Value(col[i]))
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV decodes a table previously written by WriteCSV.
func ReadCSV(name string, r io.Reader) (*Table, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = -1
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("rel: reading CSV header: %w", err)
	}
	t, err := NewTable(name, header...)
	if err != nil {
		return nil, err
	}
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			return t, nil
		}
		if err != nil {
			return nil, fmt.Errorf("rel: reading CSV row: %w", err)
		}
		if len(rec) != len(header) {
			return nil, fmt.Errorf("%w: CSV row has %d fields, want %d", ErrArity, len(rec), len(header))
		}
		for j, s := range rec {
			v, err := decodeValue(s)
			if err != nil {
				return nil, err
			}
			t.data[j] = append(t.data[j], t.dict.Code(v))
		}
		t.nrows++
	}
}
