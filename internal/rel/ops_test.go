package rel

import (
	"errors"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func pair(name string, rows ...[2]string) *Table {
	t := MustNewTable(name, "a", "b")
	for _, r := range rows {
		t.MustInsert(S(r[0]), S(r[1]))
	}
	return t
}

func TestSelect(t *testing.T) {
	d := mkD(t)
	readex := d.Select(func(r Row) bool { return r.Get("inmsg").Equal(S("readex")) })
	if readex.NumRows() != 2 {
		t.Fatalf("rows = %d, want 2", readex.NumRows())
	}
	if d.NumRows() != 3 {
		t.Fatal("Select mutated receiver")
	}
}

func TestProject(t *testing.T) {
	d := mkD(t)
	p, err := d.Project("dirst", "inmsg")
	if err != nil {
		t.Fatal(err)
	}
	if got := p.Columns(); !reflect.DeepEqual(got, []string{"dirst", "inmsg"}) {
		t.Fatalf("columns = %v", got)
	}
	if !p.Get(0, "dirst").Equal(S("I")) || !p.Get(0, "inmsg").Equal(S("readex")) {
		t.Fatal("projection reordered values incorrectly")
	}
	if _, err := d.Project("ghost"); !errors.Is(err, ErrUnknownColumn) {
		t.Fatalf("err = %v", err)
	}
}

func TestDistinct(t *testing.T) {
	d := pair("t", [2]string{"x", "y"}, [2]string{"x", "y"}, [2]string{"x", "z"})
	u := d.Distinct()
	if u.NumRows() != 2 {
		t.Fatalf("rows = %d, want 2", u.NumRows())
	}
	// NULL rows must also deduplicate.
	n := MustNewTable("n", "a")
	n.MustInsert(Null())
	n.MustInsert(Null())
	if n.Distinct().NumRows() != 1 {
		t.Fatal("NULL rows must collapse under Distinct")
	}
}

func TestUnionAndUnionDistinct(t *testing.T) {
	a := pair("a", [2]string{"1", "2"})
	b := pair("b", [2]string{"1", "2"}, [2]string{"3", "4"})
	u, err := a.Union(b)
	if err != nil || u.NumRows() != 3 {
		t.Fatalf("union: %v rows=%d", err, u.NumRows())
	}
	ud, err := a.UnionDistinct(b)
	if err != nil || ud.NumRows() != 2 {
		t.Fatalf("union distinct: %v rows=%d", err, ud.NumRows())
	}
	bad := MustNewTable("bad", "x")
	if _, err := a.Union(bad); !errors.Is(err, ErrSchema) {
		t.Fatalf("schema err = %v", err)
	}
}

func TestDifferenceAndIntersect(t *testing.T) {
	a := pair("a", [2]string{"1", "2"}, [2]string{"3", "4"}, [2]string{"5", "6"})
	b := pair("b", [2]string{"3", "4"})
	d, err := a.Difference(b)
	if err != nil || d.NumRows() != 2 {
		t.Fatalf("difference: %v rows=%d", err, d.NumRows())
	}
	i, err := a.Intersect(b)
	if err != nil || i.NumRows() != 1 {
		t.Fatalf("intersect: %v rows=%d", err, i.NumRows())
	}
	if !i.Get(0, "a").Equal(S("3")) {
		t.Fatal("wrong intersection row")
	}
}

func TestCross(t *testing.T) {
	a := MustNewTable("a", "x")
	a.MustInsert(S("1"))
	a.MustInsert(S("2"))
	b := MustNewTable("b", "y")
	b.MustInsert(S("p"))
	b.MustInsert(S("q"))
	b.MustInsert(S("r"))
	c, err := a.Cross(b)
	if err != nil {
		t.Fatal(err)
	}
	if c.NumRows() != 6 || c.NumCols() != 2 {
		t.Fatalf("cross = %dx%d", c.NumRows(), c.NumCols())
	}
	// Column collision must error.
	b2 := MustNewTable("b2", "x")
	if _, err := a.Cross(b2); !errors.Is(err, ErrDupColumn) {
		t.Fatalf("collision err = %v", err)
	}
}

func TestCrossFiltered(t *testing.T) {
	a := MustNewTable("a", "x")
	for _, s := range []string{"1", "2", "3"} {
		a.MustInsert(S(s))
	}
	b := MustNewTable("b", "y")
	for _, s := range []string{"1", "2", "3"} {
		b.MustInsert(S(s))
	}
	diag, err := a.CrossFiltered(b, func(row []Value) bool { return row[0].Equal(row[1]) })
	if err != nil {
		t.Fatal(err)
	}
	if diag.NumRows() != 3 {
		t.Fatalf("rows = %d, want 3", diag.NumRows())
	}
	for i := 0; i < diag.NumRows(); i++ {
		if !diag.Get(i, "x").Equal(diag.Get(i, "y")) {
			t.Fatal("filter not applied")
		}
	}
}

func TestEquiJoin(t *testing.T) {
	v := MustNewTable("V", "m", "vc")
	v.MustInsert(S("readex"), S("VC0"))
	v.MustInsert(S("sinv"), S("VC1"))
	v.MustInsert(Null(), S("VCX")) // NULL keys never join
	d := MustNewTable("D", "inmsg", "dirst")
	d.MustInsert(S("readex"), S("SI"))
	d.MustInsert(S("wb"), S("I"))
	d.MustInsert(Null(), S("I"))
	j, err := d.EquiJoin(v, []JoinOn{{Left: "inmsg", Right: "m"}})
	if err != nil {
		t.Fatal(err)
	}
	if j.NumRows() != 1 {
		t.Fatalf("join rows = %d, want 1 (NULLs must not match)", j.NumRows())
	}
	if !j.Get(0, "vc").Equal(S("VC0")) {
		t.Fatal("wrong join result")
	}
	if _, err := d.EquiJoin(v, []JoinOn{{Left: "ghost", Right: "m"}}); !errors.Is(err, ErrUnknownColumn) {
		t.Fatalf("err = %v", err)
	}
	if _, err := d.EquiJoin(v, []JoinOn{{Left: "inmsg", Right: "ghost"}}); !errors.Is(err, ErrUnknownColumn) {
		t.Fatalf("err = %v", err)
	}
}

func TestEquiJoinEmptyOnIsCross(t *testing.T) {
	a := MustNewTable("a", "x")
	a.MustInsert(S("1"))
	b := MustNewTable("b", "y")
	b.MustInsert(S("2"))
	j, err := a.EquiJoin(b, nil)
	if err != nil || j.NumRows() != 1 {
		t.Fatalf("join-as-cross: %v rows=%d", err, j.NumRows())
	}
}

func TestRenameAndPrefix(t *testing.T) {
	d := mkD(t)
	r, err := d.Rename(map[string]string{"inmsg": "m"})
	if err != nil {
		t.Fatal(err)
	}
	if !r.HasColumn("m") || r.HasColumn("inmsg") {
		t.Fatal("Rename failed")
	}
	p := d.Prefix("in_")
	if !p.HasColumn("in_dirst") {
		t.Fatal("Prefix failed")
	}
	// Rename into collision must error.
	if _, err := d.Rename(map[string]string{"inmsg": "dirst"}); !errors.Is(err, ErrDupColumn) {
		t.Fatalf("err = %v", err)
	}
}

func TestContainsAllAndEqualRows(t *testing.T) {
	a := pair("a", [2]string{"1", "2"}, [2]string{"3", "4"})
	b := pair("b", [2]string{"3", "4"})
	ok, err := a.ContainsAll(b)
	if err != nil || !ok {
		t.Fatalf("ContainsAll: %v %v", ok, err)
	}
	ok, err = b.ContainsAll(a)
	if err != nil || ok {
		t.Fatalf("reverse ContainsAll: %v %v", ok, err)
	}
	eq, err := a.EqualRows(b)
	if err != nil || eq {
		t.Fatalf("EqualRows: %v %v", eq, err)
	}
	// Duplicates collapse: {x,x} equals {x} as sets.
	c := pair("c", [2]string{"1", "2"}, [2]string{"1", "2"})
	d := pair("d", [2]string{"1", "2"})
	eq, err = c.EqualRows(d)
	if err != nil || !eq {
		t.Fatalf("set-equality with duplicates: %v %v", eq, err)
	}
}

func TestIndexLookup(t *testing.T) {
	d := mkD(t)
	ix, err := BuildIndex(d, "inmsg")
	if err != nil {
		t.Fatal(err)
	}
	if got := ix.Lookup(S("readex")); len(got) != 2 {
		t.Fatalf("Lookup rows = %v", got)
	}
	if got := ix.LookupRows(S("data")); len(got) != 1 || !got[0].Get("dirst").Equal(S("Busy-d")) {
		t.Fatalf("LookupRows = %v", got)
	}
	if got := ix.Lookup(S("ghostmsg")); got != nil {
		t.Fatalf("missing key lookup = %v", got)
	}
	if got := ix.Lookup(S("a"), S("b")); got != nil {
		t.Fatal("wrong arity lookup must return nil")
	}
	if ix.Distinct() != 2 {
		t.Fatalf("Distinct = %d", ix.Distinct())
	}
	if _, err := BuildIndex(d, "ghost"); !errors.Is(err, ErrUnknownColumn) {
		t.Fatalf("err = %v", err)
	}
	if got := ix.Columns(); len(got) != 1 || got[0] != "inmsg" {
		t.Fatalf("Columns = %v", got)
	}
}

// tableGen generates small random tables with 2 columns for property tests.
type tableGen struct{ T *Table }

func (tableGen) Generate(r *rand.Rand, _ int) reflect.Value {
	t := MustNewTable("g", "a", "b")
	n := r.Intn(12)
	for i := 0; i < n; i++ {
		t.MustInsert(randomValue(r), randomValue(r))
	}
	return reflect.ValueOf(tableGen{T: t})
}

func TestQuickDistinctIdempotent(t *testing.T) {
	f := func(g tableGen) bool {
		d1 := g.T.Distinct()
		d2 := d1.Distinct()
		eq, err := d1.EqualRows(d2)
		return err == nil && eq && d1.NumRows() == d2.NumRows()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickUnionDistinctCommutative(t *testing.T) {
	f := func(a, b tableGen) bool {
		ab, err1 := a.T.UnionDistinct(b.T)
		ba, err2 := b.T.UnionDistinct(a.T)
		if err1 != nil || err2 != nil {
			return false
		}
		eq, err := ab.EqualRows(ba)
		return err == nil && eq
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickDifferenceDisjointFromSubtrahend(t *testing.T) {
	f := func(a, b tableGen) bool {
		d, err := a.T.Difference(b.T)
		if err != nil {
			return false
		}
		i, err := d.Intersect(b.T)
		return err == nil && i.Empty()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickIntersectSubsetOfBoth(t *testing.T) {
	f := func(a, b tableGen) bool {
		i, err := a.T.Intersect(b.T)
		if err != nil {
			return false
		}
		inA, err1 := a.T.ContainsAll(i)
		inB, err2 := b.T.ContainsAll(i)
		return err1 == nil && err2 == nil && inA && inB
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickCrossCardinality(t *testing.T) {
	f := func(a tableGen) bool {
		b := MustNewTable("c", "c1", "c2")
		b.MustInsert(S("p"), S("q"))
		b.MustInsert(S("r"), S("s"))
		c, err := a.T.Cross(b)
		return err == nil && c.NumRows() == a.T.NumRows()*2
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickCSVTableRoundTrip(t *testing.T) {
	f := func(g tableGen) bool {
		var sb stringsBuilder
		if err := g.T.WriteCSV(&sb); err != nil {
			return false
		}
		got, err := ReadCSV("g", sb.Reader())
		if err != nil {
			return false
		}
		// Multiset equality: same length and same set with same counts.
		if got.NumRows() != g.T.NumRows() {
			return false
		}
		eq, err := got.EqualRows(g.T)
		return err == nil && eq
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
