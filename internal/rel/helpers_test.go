package rel

import (
	"io"
	"strings"
)

// stringsBuilder is a strings.Builder that can hand back a reader over what
// was written, for round-trip tests.
type stringsBuilder struct {
	strings.Builder
}

func (b *stringsBuilder) Reader() io.Reader {
	return strings.NewReader(b.Builder.String())
}
