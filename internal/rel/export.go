package rel

// ExportCodeColumns exposes the table's column-major code vectors for
// bulk export — the hook `internal/segment` packs from. The returned
// slices are zero-copy views capped to the live row count: valid until
// the next table mutation, and must not be modified. The second result
// is the row count.
func (t *Table) ExportCodeColumns() ([][]uint32, int) {
	cols := make([][]uint32, len(t.data))
	for j := range t.data {
		cols[j] = t.data[j][:t.nrows]
	}
	return cols, t.nrows
}
