package rel

import (
	"errors"
	"strings"
	"testing"
)

func TestBuildIndexErrorsNameColumnAndTable(t *testing.T) {
	d := mkD(t)
	_, err := BuildIndex(d)
	if err == nil || !strings.Contains(err.Error(), `"D"`) {
		t.Fatalf("empty column list: err = %v, want mention of table D", err)
	}
	_, err = BuildIndex(d, "inmsg", "dirst", "inmsg")
	if !errors.Is(err, ErrDupColumn) {
		t.Fatalf("duplicate column: err = %v, want ErrDupColumn", err)
	}
	if !strings.Contains(err.Error(), `"inmsg"`) || !strings.Contains(err.Error(), `"D"`) {
		t.Fatalf("duplicate column error %q must name the column and the table", err)
	}
	_, err = BuildIndex(d, "inmsg", "ghost")
	if !errors.Is(err, ErrUnknownColumn) {
		t.Fatalf("missing column: err = %v, want ErrUnknownColumn", err)
	}
	if !strings.Contains(err.Error(), `"ghost"`) || !strings.Contains(err.Error(), `"D"`) {
		t.Fatalf("missing column error %q must name the column and the table", err)
	}
}

func TestIndexLookupRowsBoundsAndArity(t *testing.T) {
	d := mkD(t)
	ix, err := BuildIndex(d, "inmsg", "dirst")
	if err != nil {
		t.Fatal(err)
	}
	// Wrong arity never panics and never matches.
	if got := ix.LookupRows(S("readex")); len(got) != 0 {
		t.Fatalf("under-arity LookupRows = %v, want empty", got)
	}
	if got := ix.LookupRows(S("readex"), S("I"), S("extra")); len(got) != 0 {
		t.Fatalf("over-arity LookupRows = %v, want empty", got)
	}
	if got := ix.LookupRows(); len(got) != 0 {
		t.Fatalf("zero-arity LookupRows = %v, want empty", got)
	}
	// Exact arity resolves to live Row accessors over the right rows.
	got := ix.LookupRows(S("readex"), S("SI"))
	if len(got) != 1 || !got[0].Get("remmsg").Equal(S("sinv")) {
		t.Fatalf("LookupRows(readex, SI) = %v", got)
	}
	if got := ix.LookupRows(S("readex"), S("nope")); len(got) != 0 {
		t.Fatalf("missing key LookupRows = %v, want empty", got)
	}
}

func TestIndexOnCachesAndMaintainsInserts(t *testing.T) {
	d := mkD(t)
	ix, err := d.IndexOn("inmsg")
	if err != nil {
		t.Fatal(err)
	}
	again, err := d.IndexOn("inmsg")
	if err != nil {
		t.Fatal(err)
	}
	if ix != again {
		t.Fatal("IndexOn must return the cached index on the second call")
	}
	if got := ix.Lookup(S("readex")); len(got) != 2 {
		t.Fatalf("Lookup(readex) = %v rows, want 2", got)
	}
	// Inserts are folded into the live index.
	d.MustInsert(S("readex"), S("MESI"), S("two"), S("minv"), S("I"))
	if got := ix.Lookup(S("readex")); len(got) != 3 {
		t.Fatalf("after insert, Lookup(readex) = %v rows, want 3", got)
	}
	if err := d.InsertRow([]Value{S("wb"), S("MESI"), S("two"), Null(), S("I")}); err != nil {
		t.Fatal(err)
	}
	if got := ix.Lookup(S("wb")); len(got) != 1 {
		t.Fatalf("after InsertRow, Lookup(wb) = %v rows, want 1", got)
	}
}

func TestIndexOnInvalidatedByMutation(t *testing.T) {
	mutations := []struct {
		name string
		do   func(t *testing.T, d *Table)
	}{
		{"Set", func(t *testing.T, d *Table) {
			if err := d.Set(0, "inmsg", S("data")); err != nil {
				t.Fatal(err)
			}
		}},
		{"DeleteWhere", func(t *testing.T, d *Table) {
			if n := d.DeleteWhere(func(r Row) bool { return r.Get("inmsg").Equal(S("readex")) }); n != 2 {
				t.Fatalf("DeleteWhere removed %d rows, want 2", n)
			}
		}},
		{"SortBy", func(t *testing.T, d *Table) {
			if err := d.SortBy("dirst"); err != nil {
				t.Fatal(err)
			}
		}},
		{"SortAll", func(t *testing.T, d *Table) { d.SortAll() }},
	}
	for _, m := range mutations {
		t.Run(m.name, func(t *testing.T) {
			d := mkD(t)
			stale, err := d.IndexOn("inmsg")
			if err != nil {
				t.Fatal(err)
			}
			m.do(t, d)
			fresh, err := d.IndexOn("inmsg")
			if err != nil {
				t.Fatal(err)
			}
			if fresh == stale {
				t.Fatalf("%s must drop the cached index", m.name)
			}
			// The rebuilt index agrees with a scan for every current row.
			for i := 0; i < d.NumRows(); i++ {
				v := d.Get(i, "inmsg")
				found := false
				for _, ri := range fresh.Lookup(v) {
					if ri == i {
						found = true
					}
				}
				if !found {
					t.Fatalf("row %d (%s) missing from rebuilt index", i, v)
				}
			}
		})
	}
}

func TestIndexOnErrorNotCached(t *testing.T) {
	d := mkD(t)
	if _, err := d.IndexOn("ghost"); !errors.Is(err, ErrUnknownColumn) {
		t.Fatalf("err = %v, want ErrUnknownColumn", err)
	}
	if _, err := d.IndexOn("inmsg", "inmsg"); !errors.Is(err, ErrDupColumn) {
		t.Fatalf("err = %v, want ErrDupColumn", err)
	}
	if _, err := d.IndexOn("inmsg"); err != nil {
		t.Fatalf("valid IndexOn after failures: %v", err)
	}
}
