package rel

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
)

// Common errors returned by table operations.
var (
	ErrArity         = errors.New("rel: value count does not match column count")
	ErrUnknownColumn = errors.New("rel: unknown column")
	ErrDupColumn     = errors.New("rel: duplicate column")
	ErrSchema        = errors.New("rel: incompatible schemas")
)

// Table is an in-memory relation: an ordered list of named columns and a
// multiset of rows. Operations that produce new relations never mutate their
// receivers, matching relational-algebra semantics; Insert and Delete mutate
// in place.
type Table struct {
	name string
	cols []string
	pos  map[string]int
	rows [][]Value

	// idxMu serializes lazy index construction by concurrent readers.
	// Mutators do not take it: a table must not be mutated concurrently
	// with reads (sqlmini.DB enforces this with its reader/writer lock),
	// and that same exclusion covers the index cache.
	idxMu   sync.Mutex
	indexes map[string]*Index
}

// NewTable creates an empty table with the given column names.
// Column names are case-sensitive and must be unique.
func NewTable(name string, cols ...string) (*Table, error) {
	t := &Table{name: name, cols: append([]string(nil), cols...), pos: make(map[string]int, len(cols))}
	for i, c := range cols {
		if _, dup := t.pos[c]; dup {
			return nil, fmt.Errorf("%w: %q in table %q", ErrDupColumn, c, name)
		}
		t.pos[c] = i
	}
	return t, nil
}

// MustNewTable is NewTable that panics on error; for statically known schemas.
func MustNewTable(name string, cols ...string) *Table {
	t, err := NewTable(name, cols...)
	if err != nil {
		panic(err)
	}
	return t
}

// Name returns the table name.
func (t *Table) Name() string { return t.name }

// SetName renames the table in place and returns it for chaining.
func (t *Table) SetName(name string) *Table {
	t.name = name
	return t
}

// Columns returns a copy of the column name list.
func (t *Table) Columns() []string { return append([]string(nil), t.cols...) }

// NumCols returns the number of columns.
func (t *Table) NumCols() int { return len(t.cols) }

// NumRows returns the number of rows.
func (t *Table) NumRows() int { return len(t.rows) }

// Empty reports whether the table has no rows.
func (t *Table) Empty() bool { return len(t.rows) == 0 }

// ColIndex returns the position of column name, or -1 if absent.
func (t *Table) ColIndex(name string) int {
	if i, ok := t.pos[name]; ok {
		return i
	}
	return -1
}

// HasColumn reports whether the table has a column with the given name.
func (t *Table) HasColumn(name string) bool { return t.ColIndex(name) >= 0 }

// Insert appends a row. The number of values must equal the column count.
func (t *Table) Insert(vals ...Value) error {
	if len(vals) != len(t.cols) {
		return fmt.Errorf("%w: got %d, want %d in table %q", ErrArity, len(vals), len(t.cols), t.name)
	}
	t.rows = append(t.rows, append([]Value(nil), vals...))
	t.maintainInsert()
	return nil
}

// MustInsert is Insert that panics on arity mismatch.
func (t *Table) MustInsert(vals ...Value) {
	if err := t.Insert(vals...); err != nil {
		panic(err)
	}
}

// InsertRow appends an already-built row slice without copying. The caller
// must not retain the slice. Used on hot paths (cross products, joins).
func (t *Table) InsertRow(row []Value) error {
	if len(row) != len(t.cols) {
		return fmt.Errorf("%w: got %d, want %d in table %q", ErrArity, len(row), len(t.cols), t.name)
	}
	t.rows = append(t.rows, row)
	t.maintainInsert()
	return nil
}

// Row returns an accessor for row i. It panics if i is out of range.
func (t *Table) Row(i int) Row { return Row{t: t, vals: t.rows[i]} }

// RawRow returns the underlying value slice of row i; callers must not
// modify it.
func (t *Table) RawRow(i int) []Value { return t.rows[i] }

// RawRows returns the table's row storage without copying; callers must
// treat the slice and every row in it as read-only, and must not retain
// it across mutations. Whole-table scans share it so a SELECT over a
// large controller table costs no per-row copying.
func (t *Table) RawRows() [][]Value { return t.rows }

// Get returns the value at row i, column name. It returns NULL for an
// unknown column, mirroring SQL's treatment of missing attributes in the
// paper's sparse controller tables.
func (t *Table) Get(i int, name string) Value {
	j := t.ColIndex(name)
	if j < 0 {
		return Null()
	}
	return t.rows[i][j]
}

// Set assigns the value at row i, column name.
func (t *Table) Set(i int, name string, v Value) error {
	j := t.ColIndex(name)
	if j < 0 {
		return fmt.Errorf("%w: %q in table %q", ErrUnknownColumn, name, t.name)
	}
	t.rows[i][j] = v
	t.invalidateIndexes()
	return nil
}

// DeleteWhere removes all rows for which pred returns true and returns the
// number removed.
func (t *Table) DeleteWhere(pred func(Row) bool) int {
	kept := t.rows[:0]
	removed := 0
	for _, r := range t.rows {
		if pred(Row{t: t, vals: r}) {
			removed++
		} else {
			kept = append(kept, r)
		}
	}
	t.rows = kept
	if removed > 0 {
		t.invalidateIndexes()
	}
	return removed
}

// Clone returns a deep copy of the table.
func (t *Table) Clone() *Table {
	c := MustNewTable(t.name, t.cols...)
	c.rows = make([][]Value, len(t.rows))
	for i, r := range t.rows {
		c.rows[i] = append([]Value(nil), r...)
	}
	return c
}

// RowKey returns an injective string encoding of row i over the given column
// positions (all columns if cols is nil), for hashing.
func (t *Table) RowKey(i int, cols []int) string {
	var sb strings.Builder
	r := t.rows[i]
	if cols == nil {
		for _, v := range r {
			sb.WriteString(v.Key())
			sb.WriteByte(0x1f)
		}
		return sb.String()
	}
	for _, j := range cols {
		sb.WriteString(r[j].Key())
		sb.WriteByte(0x1f)
	}
	return sb.String()
}

// SortBy sorts rows in place by the given columns ascending. Unknown columns
// are an error.
func (t *Table) SortBy(cols ...string) error {
	idx := make([]int, len(cols))
	for k, c := range cols {
		j := t.ColIndex(c)
		if j < 0 {
			return fmt.Errorf("%w: %q in table %q", ErrUnknownColumn, c, t.name)
		}
		idx[k] = j
	}
	t.invalidateIndexes()
	sort.SliceStable(t.rows, func(a, b int) bool {
		ra, rb := t.rows[a], t.rows[b]
		for _, j := range idx {
			if c := ra[j].Compare(rb[j]); c != 0 {
				return c < 0
			}
		}
		return false
	})
	return nil
}

// SortAll sorts rows in place by every column left to right, giving a
// canonical order used by EqualRows.
func (t *Table) SortAll() {
	t.invalidateIndexes()
	sort.SliceStable(t.rows, func(a, b int) bool {
		ra, rb := t.rows[a], t.rows[b]
		for j := range ra {
			if c := ra[j].Compare(rb[j]); c != 0 {
				return c < 0
			}
		}
		return false
	})
}

// IndexOn returns a persistent hash index over the given columns, building
// it on first use and caching it on the table. Cached indexes are
// maintained incrementally on Insert/InsertRow and dropped wholesale on
// Set, DeleteWhere, SortBy and SortAll, so a lookup never serves stale
// rows. Tables produced by Rename or Prefix share their source's row
// storage but not its index cache; such views must not be mutated.
// Concurrent IndexOn calls are safe; mutation requires the same external
// exclusion the table already demands.
func (t *Table) IndexOn(cols ...string) (*Index, error) {
	key := strings.Join(cols, "\x1f")
	t.idxMu.Lock()
	defer t.idxMu.Unlock()
	if ix, ok := t.indexes[key]; ok {
		return ix, nil
	}
	ix, err := BuildIndex(t, cols...)
	if err != nil {
		return nil, err
	}
	if t.indexes == nil {
		t.indexes = make(map[string]*Index)
	}
	t.indexes[key] = ix
	return ix, nil
}

// maintainInsert appends the just-inserted last row to every cached index.
func (t *Table) maintainInsert() {
	if t.indexes == nil {
		return
	}
	i := len(t.rows) - 1
	for _, ix := range t.indexes {
		ix.add(i)
	}
}

// invalidateIndexes drops the cached indexes after a mutation that moves
// or rewrites rows; they rebuild lazily on the next IndexOn.
func (t *Table) invalidateIndexes() {
	if t.indexes != nil {
		t.indexes = nil
	}
}

// Row is a lightweight accessor for one row of a table.
type Row struct {
	t    *Table
	vals []Value
}

// Get returns the value in the named column, or NULL if the column is absent.
func (r Row) Get(name string) Value {
	j := r.t.ColIndex(name)
	if j < 0 {
		return Null()
	}
	return r.vals[j]
}

// Values returns the underlying value slice; callers must not modify it.
func (r Row) Values() []Value { return r.vals }

// Table returns the row's parent table.
func (r Row) Table() *Table { return r.t }
