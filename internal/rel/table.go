package rel

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Common errors returned by table operations.
var (
	ErrArity         = errors.New("rel: value count does not match column count")
	ErrUnknownColumn = errors.New("rel: unknown column")
	ErrDupColumn     = errors.New("rel: duplicate column")
	ErrSchema        = errors.New("rel: incompatible schemas")
)

// Table is an in-memory relation: an ordered list of named columns and a
// multiset of rows. Operations that produce new relations never mutate their
// receivers, matching relational-algebra semantics; Insert and Delete mutate
// in place.
//
// Storage is columnar and dictionary-encoded: each column is a dense
// []uint32 vector of codes into the shared dictionary (SharedDict), so a
// cell costs 4 bytes instead of a 40-byte Value, a column scan is a
// contiguous integer sweep, and equality is a single compare. The
// historical row-oriented API (Row, RawRow, RawRows, Insert of Values)
// remains as a façade: Value rows are materialized on demand and cached
// until the next mutation. Hot consumers use the code-level API instead:
// ColCodes, CodeRows, AppendCodeRow/AppendCodes, CodeAt/At.
type Table struct {
	name string
	cols []string
	pos  map[string]int
	dict *Dict

	// data holds one code vector per column; nrows is the row count (kept
	// separately so zero-column tables can still hold rows, which the
	// constraint solver's empty-spec path relies on).
	data  [][]uint32
	nrows int

	// rev counts mutations. Every mutating path funnels through exactly one
	// of the two bookkeeping points (appended / rewritten), which bump it
	// atomically with the cache/index invalidation they already perform —
	// so a revision number plus a pointer identity check is a sound
	// "nothing changed" test for the delta layer.
	rev uint64

	// shared marks the column vectors as aliased by a Snapshot (in either
	// direction); the next mutation copies them first (copy-on-write), so
	// snapshots stay immutable at O(cols) capture cost. It is atomic so
	// concurrent readers may Snapshot the same published (immutable)
	// table — every session's revision tracker does — without racing;
	// mutators still require external exclusion.
	shared atomic.Bool

	// rewriteGen counts mutations that rewrite, remove, or reorder
	// existing rows (appends leave it alone). A snapshot carries its
	// source's value, so "same rewriteGen, no fewer rows" proves a
	// derived table is an append-only extension — the precondition for
	// extending persistent indexes incrementally at epoch-publish time
	// instead of rebuilding them.
	rewriteGen uint64

	// idxMu serializes lazy index construction by concurrent readers.
	// Mutators do not take it: a table must not be mutated concurrently
	// with reads (sqlmini.DB enforces this with its reader/writer lock),
	// and that same exclusion covers the index cache.
	idxMu   sync.Mutex
	indexes map[string]*Index

	// rowMu guards the lazily materialized row-major views (concurrent
	// readers may both trigger materialization). Mutators drop them.
	rowMu    sync.Mutex
	valRows  [][]Value
	codeRows [][]uint32
}

// NewTable creates an empty table with the given column names.
// Column names are case-sensitive and must be unique.
func NewTable(name string, cols ...string) (*Table, error) {
	t := &Table{
		name: name,
		cols: append([]string(nil), cols...),
		pos:  make(map[string]int, len(cols)),
		dict: shared,
		data: make([][]uint32, len(cols)),
	}
	for i, c := range cols {
		if _, dup := t.pos[c]; dup {
			return nil, fmt.Errorf("%w: %q in table %q", ErrDupColumn, c, name)
		}
		t.pos[c] = i
	}
	return t, nil
}

// MustNewTable is NewTable that panics on error; for statically known schemas.
func MustNewTable(name string, cols ...string) *Table {
	t, err := NewTable(name, cols...)
	if err != nil {
		panic(err)
	}
	return t
}

// Name returns the table name.
func (t *Table) Name() string { return t.name }

// SetName renames the table in place and returns it for chaining.
func (t *Table) SetName(name string) *Table {
	t.name = name
	return t
}

// Columns returns a copy of the column name list.
func (t *Table) Columns() []string { return append([]string(nil), t.cols...) }

// ColumnsRef returns the column name list without copying; callers must
// treat it as read-only. Hot paths (schema probing, projection planning)
// use it to avoid the defensive copy Columns makes.
func (t *Table) ColumnsRef() []string { return t.cols }

// NumCols returns the number of columns.
func (t *Table) NumCols() int { return len(t.cols) }

// NumRows returns the number of rows.
func (t *Table) NumRows() int { return t.nrows }

// Empty reports whether the table has no rows.
func (t *Table) Empty() bool { return t.nrows == 0 }

// ColIndex returns the position of column name, or -1 if absent.
func (t *Table) ColIndex(name string) int {
	if i, ok := t.pos[name]; ok {
		return i
	}
	return -1
}

// HasColumn reports whether the table has a column with the given name.
func (t *Table) HasColumn(name string) bool { return t.ColIndex(name) >= 0 }

// Dict returns the dictionary this table's codes index into (the shared
// process-wide dictionary, so codes are comparable across tables).
func (t *Table) Dict() *Dict { return t.dict }

// ColCodes returns column j's code vector without copying; callers must
// treat it as read-only and must not retain it across mutations. This is
// the zero-copy column view the vectorized layers scan.
func (t *Table) ColCodes(j int) []uint32 { return t.data[j][:t.nrows] }

// CodeAt returns the dictionary code at row i, column j.
func (t *Table) CodeAt(i, j int) uint32 { return t.data[j][i] }

// At returns the value at row i, column j (positional Get).
func (t *Table) At(i, j int) Value { return t.dict.Value(t.data[j][i]) }

// Revision returns the table's mutation counter. It starts at zero and is
// bumped exactly once by every mutating operation (Insert, Set, DeleteWhere,
// sorts, bulk appends), so "same *Table pointer, same revision" proves the
// contents are unchanged — the O(1) fast path delta tracking relies on.
func (t *Table) Revision() uint64 { return t.rev }

// Snapshot returns an immutable O(cols) copy of the table: the column
// vectors are shared, and both tables are marked copy-on-write so the
// first subsequent mutation of either side copies the codes before
// writing. Snapshots carry the source's revision number and no index or
// row caches.
func (t *Table) Snapshot() *Table {
	s := &Table{
		name:       t.name,
		cols:       t.cols,
		pos:        t.pos,
		dict:       t.dict,
		data:       append([][]uint32(nil), t.data...),
		nrows:      t.nrows,
		rev:        t.rev,
		rewriteGen: t.rewriteGen,
	}
	s.shared.Store(true)
	t.shared.Store(true)
	return s
}

// ensureOwned copies the column vectors if a Snapshot aliases them, so
// in-place writes and appends cannot leak into the snapshot's view. Every
// mutator calls it before touching data.
func (t *Table) ensureOwned() {
	if !t.shared.Load() {
		return
	}
	for j, col := range t.data {
		t.data[j] = append(make([]uint32, 0, t.nrows), col[:t.nrows]...)
	}
	t.shared.Store(false)
}

// appended is the single bookkeeping point for mutations that only add
// rows (from index base): bump the revision, drop row-major caches, and
// maintain cached indexes incrementally for the new rows.
func (t *Table) appended(base int) {
	t.rev++
	t.dropRowCaches()
	if t.indexes != nil {
		for i := base; i < t.nrows; i++ {
			for _, ix := range t.indexes {
				ix.add(i)
			}
		}
	}
}

// rewritten is the single bookkeeping point for mutations that rewrite,
// remove, or reorder existing rows: bump the revision, drop row-major
// caches, and invalidate cached indexes wholesale.
func (t *Table) rewritten() {
	t.rev++
	t.rewriteGen++
	t.dropRowCaches()
	t.invalidateIndexes()
}

// Insert appends a row. The number of values must equal the column count.
func (t *Table) Insert(vals ...Value) error {
	if len(vals) != len(t.cols) {
		return fmt.Errorf("%w: got %d, want %d in table %q", ErrArity, len(vals), len(t.cols), t.name)
	}
	t.ensureOwned()
	for j, v := range vals {
		t.data[j] = append(t.data[j], t.dict.Code(v))
	}
	t.nrows++
	t.appended(t.nrows - 1)
	return nil
}

// MustInsert is Insert that panics on arity mismatch.
func (t *Table) MustInsert(vals ...Value) {
	if err := t.Insert(vals...); err != nil {
		panic(err)
	}
}

// InsertRow appends an already-built row slice. The values are encoded into
// the column vectors; the caller keeps ownership of the slice.
func (t *Table) InsertRow(row []Value) error {
	if len(row) != len(t.cols) {
		return fmt.Errorf("%w: got %d, want %d in table %q", ErrArity, len(row), len(t.cols), t.name)
	}
	t.ensureOwned()
	for j, v := range row {
		t.data[j] = append(t.data[j], t.dict.Code(v))
	}
	t.nrows++
	t.appended(t.nrows - 1)
	return nil
}

// AppendCodeRow appends one row of dictionary codes. The codes are copied
// into the column vectors; the caller keeps ownership of the slice. This is
// the hot-path insert: no Value boxing, no dictionary lookups.
func (t *Table) AppendCodeRow(codes []uint32) error {
	if len(codes) != len(t.cols) {
		return fmt.Errorf("%w: got %d, want %d in table %q", ErrArity, len(codes), len(t.cols), t.name)
	}
	t.ensureOwned()
	for j, c := range codes {
		t.data[j] = append(t.data[j], c)
	}
	t.nrows++
	t.appended(t.nrows - 1)
	return nil
}

// AppendCodes bulk-appends row-major code rows, scattering them into the
// column vectors in one pass per column.
func (t *Table) AppendCodes(rows [][]uint32) error {
	for _, r := range rows {
		if len(r) != len(t.cols) {
			return fmt.Errorf("%w: got %d, want %d in table %q", ErrArity, len(r), len(t.cols), t.name)
		}
	}
	if len(rows) == 0 {
		return nil
	}
	t.ensureOwned()
	for j := range t.data {
		col := t.data[j]
		if n := len(col) + len(rows); cap(col) < n {
			grown := make([]uint32, len(col), n)
			copy(grown, col)
			col = grown
		}
		for _, r := range rows {
			col = append(col, r[j])
		}
		t.data[j] = col
	}
	base := t.nrows
	t.nrows += len(rows)
	t.appended(base)
	return nil
}

// AppendColumns bulk-appends n rows given column-major: cols[j] holds
// column j's codes for the new rows. The column-at-a-time result builder
// uses this — each output column lands with one copy, no per-row
// scatter.
func (t *Table) AppendColumns(cols [][]uint32, n int) error {
	if len(cols) != len(t.cols) {
		return fmt.Errorf("%w: got %d columns, want %d in table %q", ErrArity, len(cols), len(t.cols), t.name)
	}
	for j, c := range cols {
		if len(c) != n {
			return fmt.Errorf("%w: column %d has %d rows, want %d in table %q", ErrArity, j, len(c), n, t.name)
		}
	}
	if n == 0 {
		return nil
	}
	t.ensureOwned()
	for j := range t.data {
		t.data[j] = append(t.data[j], cols[j]...)
	}
	base := t.nrows
	t.nrows += n
	t.appended(base)
	return nil
}

// Row returns an accessor for row i. It panics if i is out of range.
func (t *Table) Row(i int) Row {
	if i < 0 || i >= t.nrows {
		panic(fmt.Sprintf("rel: row %d out of range in table %q (%d rows)", i, t.name, t.nrows))
	}
	return Row{t: t, i: i}
}

// RawRow returns row i materialized as a value slice; callers must not
// modify it. The materialized rows are cached until the next mutation.
func (t *Table) RawRow(i int) []Value { return t.materializeValues()[i] }

// RawRows returns all rows materialized as value slices; callers must
// treat the slice and every row in it as read-only, and must not retain
// it across mutations. This is the compatibility façade over the columnar
// storage — hot paths scan CodeRows or ColCodes instead.
func (t *Table) RawRows() [][]Value { return t.materializeValues() }

// CodeRows returns a row-major view of the code storage: one []uint32 per
// row, cached until the next mutation. Callers must treat it as read-only.
// It bridges row-at-a-time consumers (the SQL executor's frames) to the
// columnar layout at 4 bytes per cell.
func (t *Table) CodeRows() [][]uint32 { return t.materializeCodes() }

func (t *Table) materializeValues() [][]Value {
	t.rowMu.Lock()
	defer t.rowMu.Unlock()
	if t.valRows != nil {
		return t.valRows
	}
	w := len(t.cols)
	rows := make([][]Value, t.nrows)
	arena := make([]Value, t.nrows*w)
	for i := range rows {
		rows[i] = arena[i*w : (i+1)*w : (i+1)*w]
	}
	for j, col := range t.data {
		for i := 0; i < t.nrows; i++ {
			arena[i*w+j] = t.dict.Value(col[i])
		}
	}
	t.valRows = rows
	return rows
}

func (t *Table) materializeCodes() [][]uint32 {
	t.rowMu.Lock()
	defer t.rowMu.Unlock()
	if t.codeRows != nil {
		return t.codeRows
	}
	w := len(t.cols)
	rows := make([][]uint32, t.nrows)
	arena := make([]uint32, t.nrows*w)
	for i := range rows {
		rows[i] = arena[i*w : (i+1)*w : (i+1)*w]
	}
	for j, col := range t.data {
		for i := 0; i < t.nrows; i++ {
			arena[i*w+j] = col[i]
		}
	}
	t.codeRows = rows
	return rows
}

// dropRowCaches discards the materialized row-major views after a mutation.
func (t *Table) dropRowCaches() {
	if t.valRows != nil || t.codeRows != nil {
		t.rowMu.Lock()
		t.valRows, t.codeRows = nil, nil
		t.rowMu.Unlock()
	}
}

// Get returns the value at row i, column name. It returns NULL for an
// unknown column, mirroring SQL's treatment of missing attributes in the
// paper's sparse controller tables.
func (t *Table) Get(i int, name string) Value {
	j := t.ColIndex(name)
	if j < 0 {
		return Null()
	}
	return t.dict.Value(t.data[j][i])
}

// Set assigns the value at row i, column name.
func (t *Table) Set(i int, name string, v Value) error {
	j := t.ColIndex(name)
	if j < 0 {
		return fmt.Errorf("%w: %q in table %q", ErrUnknownColumn, name, t.name)
	}
	t.ensureOwned()
	t.data[j][i] = t.dict.Code(v)
	t.rewritten()
	return nil
}

// ReplaceInCol substitutes every occurrence of from with to in the named
// column and returns the number of cells rewritten. It is a single sweep
// over one code vector — the columnar replacement for mutating rows in
// place (hwmap's NULL-sentinel materialization uses it). An unknown column
// rewrites nothing.
func (t *Table) ReplaceInCol(name string, from, to Value) int {
	j := t.ColIndex(name)
	if j < 0 {
		return 0
	}
	fc, ok := t.dict.LookupCode(from)
	if !ok {
		return 0
	}
	t.ensureOwned()
	col := t.data[j][:t.nrows]
	n := 0
	var tc uint32
	for i, c := range col {
		if c == fc {
			if n == 0 {
				tc = t.dict.Code(to)
			}
			col[i] = tc
			n++
		}
	}
	if n > 0 {
		t.rewritten()
	}
	return n
}

// DeleteWhere removes all rows for which pred returns true and returns the
// number removed.
func (t *Table) DeleteWhere(pred func(Row) bool) int {
	kept := make([]int, 0, t.nrows)
	for i := 0; i < t.nrows; i++ {
		if !pred(Row{t: t, i: i}) {
			kept = append(kept, i)
		}
	}
	removed := t.nrows - len(kept)
	if removed == 0 {
		return 0
	}
	t.ensureOwned()
	for j, col := range t.data {
		for k, i := range kept {
			col[k] = col[i]
		}
		t.data[j] = col[:len(kept)]
	}
	t.nrows = len(kept)
	t.rewritten()
	return removed
}

// Clone returns a deep copy of the table. Copying code vectors is cheap —
// 4 bytes per cell — so clones no longer dominate allocation profiles.
func (t *Table) Clone() *Table {
	c := MustNewTable(t.name, t.cols...)
	for j, col := range t.data {
		c.data[j] = append([]uint32(nil), col[:t.nrows]...)
	}
	c.nrows = t.nrows
	return c
}

// RowKey returns an injective string encoding of row i over the given column
// positions (all columns if cols is nil), for hashing. Under the shared
// dictionary the key is the fixed-width code sequence: four bytes per
// column, no separators, comparable across tables.
func (t *Table) RowKey(i int, cols []int) string {
	if cols == nil {
		b := make([]byte, 0, 4*len(t.data))
		for _, col := range t.data {
			b = appendCodeKey(b, col[i])
		}
		return string(b)
	}
	b := make([]byte, 0, 4*len(cols))
	for _, j := range cols {
		b = appendCodeKey(b, t.data[j][i])
	}
	return string(b)
}

// appendRowCodes appends row i's codes over the given column positions
// (all columns if cols is nil) to dst.
func (t *Table) appendRowCodes(dst []uint32, i int, cols []int) []uint32 {
	if cols == nil {
		for _, col := range t.data {
			dst = append(dst, col[i])
		}
		return dst
	}
	for _, j := range cols {
		dst = append(dst, t.data[j][i])
	}
	return dst
}

// SortBy sorts rows in place by the given columns ascending. Unknown columns
// are an error.
func (t *Table) SortBy(cols ...string) error {
	idx := make([]int, len(cols))
	for k, c := range cols {
		j := t.ColIndex(c)
		if j < 0 {
			return fmt.Errorf("%w: %q in table %q", ErrUnknownColumn, c, t.name)
		}
		idx[k] = j
	}
	t.sortByIdx(idx)
	return nil
}

// SortAll sorts rows in place by every column left to right, giving a
// canonical order used by EqualRows.
func (t *Table) SortAll() {
	idx := make([]int, len(t.cols))
	for j := range idx {
		idx[j] = j
	}
	t.sortByIdx(idx)
}

// sortByIdx stable-sorts the rows by the given column positions via a
// permutation, then gathers each column vector once.
func (t *Table) sortByIdx(idx []int) {
	t.rewritten()
	perm := make([]int, t.nrows)
	for i := range perm {
		perm[i] = i
	}
	sort.SliceStable(perm, func(a, b int) bool {
		ra, rb := perm[a], perm[b]
		for _, j := range idx {
			ca, cb := t.data[j][ra], t.data[j][rb]
			if ca == cb {
				continue
			}
			if c := t.dict.Value(ca).Compare(t.dict.Value(cb)); c != 0 {
				return c < 0
			}
		}
		return false
	})
	for j, col := range t.data {
		sorted := make([]uint32, t.nrows)
		for k, i := range perm {
			sorted[k] = col[i]
		}
		t.data[j] = sorted
	}
	// The gather above replaced every vector with a fresh allocation, so
	// any snapshot aliasing is gone regardless of how we entered.
	t.shared.Store(false)
}

// IndexOn returns a persistent hash index over the given columns, building
// it on first use and caching it on the table. Cached indexes are
// maintained incrementally on Insert/InsertRow and dropped wholesale on
// Set, DeleteWhere, SortBy and SortAll, so a lookup never serves stale
// rows. Tables produced by Rename or Prefix share their source's column
// storage but not its index cache; such views must not be mutated.
// Concurrent IndexOn calls are safe; mutation requires the same external
// exclusion the table already demands.
func (t *Table) IndexOn(cols ...string) (*Index, error) {
	key := strings.Join(cols, "\x1f")
	t.idxMu.Lock()
	defer t.idxMu.Unlock()
	if ix, ok := t.indexes[key]; ok {
		return ix, nil
	}
	ix, err := BuildIndex(t, cols...)
	if err != nil {
		return nil, err
	}
	if t.indexes == nil {
		t.indexes = make(map[string]*Index)
	}
	t.indexes[key] = ix
	return ix, nil
}

// invalidateIndexes drops the cached indexes after a mutation that moves
// or rewrites rows; they rebuild lazily on the next IndexOn.
func (t *Table) invalidateIndexes() {
	if t.indexes != nil {
		t.indexes = nil
	}
}

// CarryIndexes seeds t's persistent-index cache from old's at
// epoch-publish time. t must be a copy-on-write derivation of old (the
// writer's working copy about to replace old in the next catalog epoch);
// append-only derivations extend each index incrementally over just the
// new rows, anything else rebuilds over the same column sets. Either way
// the published table starts its epoch with warm indexes, so readers of
// the new epoch never pay a lazy rebuild and index maintenance lives at
// the single writer's publish point rather than inside every mutation.
func (t *Table) CarryIndexes(old *Table) {
	if old == nil || old == t || !SameSchema(old, t) {
		return
	}
	old.idxMu.Lock()
	src := make([]*Index, 0, len(old.indexes))
	for _, ix := range old.indexes {
		src = append(src, ix)
	}
	old.idxMu.Unlock()
	if len(src) == 0 {
		return
	}
	appendOnly := t.rewriteGen == old.rewriteGen && t.nrows >= old.nrows
	t.idxMu.Lock()
	defer t.idxMu.Unlock()
	if t.indexes == nil {
		t.indexes = make(map[string]*Index, len(src))
	}
	for _, ix := range src {
		key := strings.Join(ix.cols, "\x1f")
		if _, have := t.indexes[key]; have {
			continue
		}
		if appendOnly {
			t.indexes[key] = ix.extendTo(t, old.nrows)
			continue
		}
		if nix, err := BuildIndex(t, ix.cols...); err == nil {
			t.indexes[key] = nix
		}
	}
}

// Row is a lightweight accessor for one row of a table.
type Row struct {
	t *Table
	i int
}

// Get returns the value in the named column, or NULL if the column is absent.
func (r Row) Get(name string) Value {
	j := r.t.ColIndex(name)
	if j < 0 {
		return Null()
	}
	return r.t.dict.Value(r.t.data[j][r.i])
}

// Values returns the row's values; callers must not modify the slice.
func (r Row) Values() []Value { return r.t.RawRow(r.i) }

// Table returns the row's parent table.
func (r Row) Table() *Table { return r.t }
