package rel

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"
)

// randValue draws a value across every kind, biased toward the collisions
// that matter: NULL, the empty string and zero share nothing but look alike
// under Str().
func randValue(rng *rand.Rand) Value {
	switch rng.Intn(6) {
	case 0:
		return Null()
	case 1:
		return S("")
	case 2:
		return S(fmt.Sprintf("sym%d", rng.Intn(40)))
	case 3:
		return I(int64(rng.Intn(40) - 20))
	case 4:
		return B(rng.Intn(2) == 0)
	default:
		return S(fmt.Sprintf("m_%c", 'a'+rng.Intn(26)))
	}
}

func TestDictNullIsCodeZero(t *testing.T) {
	d := NewDict()
	if d.Len() != 1 {
		t.Fatalf("fresh dict Len = %d, want 1 (NULL pre-interned)", d.Len())
	}
	if c := d.Code(Null()); c != NullCode {
		t.Fatalf("Code(NULL) = %d, want %d", c, NullCode)
	}
	if v := d.Value(NullCode); !v.IsNull() {
		t.Fatalf("Value(NullCode) = %v, want NULL", v)
	}
	// A zeroed code vector must therefore be a valid all-NULL column.
	var zeroed [8]uint32
	for _, c := range zeroed {
		if !d.Value(c).IsNull() {
			t.Fatal("zeroed code did not decode to NULL")
		}
	}
}

// TestDictRoundTripProperty is the encode→decode property over a large
// random value stream: Value(Code(v)).Equal(v) always, codes are stable on
// re-interning, and code equality coincides exactly with Value.Equal — the
// injectivity the whole columnar stack leans on. It crosses several chunk
// boundaries so the chunked decode side is exercised, not just chunk 0.
func TestDictRoundTripProperty(t *testing.T) {
	d := NewDict()
	rng := rand.New(rand.NewSource(42))
	seen := map[uint32]Value{}
	// Distinct ints alone push the dictionary past 2 chunks (2^12 each).
	for i := 0; i < 3*dictChunkSize; i++ {
		var v Value
		if i%2 == 0 {
			v = I(int64(i)) // fresh: grows the dict across chunks
		} else {
			v = randValue(rng) // mostly repeats: exercises stability
		}
		c := d.Code(v)
		if got := d.Value(c); !got.Equal(v) {
			t.Fatalf("round trip: Value(Code(%v)) = %v", v, got)
		}
		if c2 := d.Code(v); c2 != c {
			t.Fatalf("re-interning %v moved its code %d -> %d", v, c, c2)
		}
		if prev, dup := seen[c]; dup {
			if !prev.Equal(v) {
				t.Fatalf("code %d maps to both %v and %v", c, prev, v)
			}
		} else {
			seen[c] = v
		}
	}
	if d.Len() != len(seen) {
		t.Fatalf("Len = %d, distinct codes handed out = %d", d.Len(), len(seen))
	}
}

// FuzzDictRoundTrip fuzzes one (kind, payload) pair per input against a
// fresh dictionary interleaved with decoys: round trip holds and the code
// equals a decoy's code exactly when the values are Equal.
func FuzzDictRoundTrip(f *testing.F) {
	f.Add(uint8(0), "", int64(0), false)
	f.Add(uint8(1), "GetS", int64(7), true)
	f.Add(uint8(2), "", int64(-1), false)
	f.Add(uint8(3), "x", int64(1), true)
	f.Fuzz(func(t *testing.T, kind uint8, s string, i int64, b bool) {
		var v Value
		switch kind % 4 {
		case 0:
			v = Null()
		case 1:
			v = S(s)
		case 2:
			v = I(i)
		case 3:
			v = B(b)
		}
		d := NewDict()
		decoys := []Value{Null(), S(""), S(s), I(0), I(i), B(b), B(!b)}
		for _, dv := range decoys {
			d.Code(dv)
		}
		c := d.Code(v)
		if got := d.Value(c); !got.Equal(v) {
			t.Fatalf("round trip: Value(Code(%v)) = %v", v, got)
		}
		for _, dv := range decoys {
			if (d.Code(dv) == c) != dv.Equal(v) {
				t.Fatalf("code equality of %v and %v disagrees with Equal", dv, v)
			}
		}
	})
}

// TestDictNullBothDialects pins the division of labour behind NULL: the
// dictionary gives NULL one code like any value (NULL == NULL at the
// storage layer, which DISTINCT, UNION and row identity need in both
// dialects), and the three-valued ANSI treatment is the kernels' job —
// they special-case NullCode before comparing codes, the storage never
// changes shape with the dialect.
func TestDictNullBothDialects(t *testing.T) {
	d := NewDict()
	a, b := d.Code(Null()), d.Code(Null())
	if a != b || a != NullCode {
		t.Fatalf("NULL interned as %d and %d, want both %d", a, b, NullCode)
	}
	// Code equality must agree with Value.Equal for NULL (paper dialect's
	// NULL = NULL is literally this integer compare).
	if (a == b) != Null().Equal(Null()) {
		t.Fatal("code equality disagrees with Equal for NULL")
	}
	// The ANSI dialect's NULL <> NULL is not the dictionary's concern: the
	// kernel detects NullCode. The storage guarantee it relies on is that
	// no other value ever receives code 0.
	for _, v := range []Value{S(""), S("NULL"), I(0), B(false)} {
		if c := d.Code(v); c == NullCode {
			t.Fatalf("%v received NullCode", v)
		}
	}
}

// TestDictCodeVsStringEquivalence checks code comparison against the
// string comparison it replaced: wherever two values are Equal their codes
// match, and wherever Str() collides across kinds (NULL vs "", 1 vs "1",
// true vs "true") the codes still distinguish them — code compare is
// strictly more faithful than the Str() compare the TCAM matchers used
// row-side before the columnar refactor.
func TestDictCodeVsStringEquivalence(t *testing.T) {
	d := NewDict()
	vals := []Value{
		Null(), S(""), S("NULL"),
		I(1), S("1"), B(true), S("true"),
		I(0), B(false), S("false"), S("GetS"), I(-3),
	}
	codes := make([]uint32, len(vals))
	for i, v := range vals {
		codes[i] = d.Code(v)
	}
	for i, a := range vals {
		for j, b := range vals {
			if eq := codes[i] == codes[j]; eq != a.Equal(b) {
				t.Errorf("codes(%v,%v): equal=%v, Equal=%v", a, b, eq, a.Equal(b))
			}
			if a.Str() == b.Str() && !a.Equal(b) && codes[i] == codes[j] {
				t.Errorf("Str collision %v vs %v leaked into codes", a, b)
			}
		}
	}
}

// TestDictLookupCodeIsReadOnly checks the probe contract: a miss reports
// false without interning (index probes and IN-set probes depend on a miss
// meaning "no stored cell can match"), and a hit returns the stable code.
func TestDictLookupCodeIsReadOnly(t *testing.T) {
	d := NewDict()
	before := d.Len()
	if _, ok := d.LookupCode(S("never-stored")); ok {
		t.Fatal("LookupCode hit on a value never interned")
	}
	if d.Len() != before {
		t.Fatal("LookupCode mutated the dictionary")
	}
	c := d.Code(S("stored"))
	got, ok := d.LookupCode(S("stored"))
	if !ok || got != c {
		t.Fatalf("LookupCode(stored) = %d,%v; want %d,true", got, ok, c)
	}
}

// TestDictConcurrentReadSafety hammers the lock-free decode path: writers
// intern fresh values (forcing chunk-table republication) while readers
// decode every code they have synchronized on and probe LookupCode. Run
// under -race this checks the publication protocol, not just liveness.
func TestDictConcurrentReadSafety(t *testing.T) {
	d := NewDict()
	const writers, readers, perWriter = 4, 4, 3000
	var wg sync.WaitGroup
	codesCh := make(chan []uint32, writers)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			codes := make([]uint32, 0, perWriter)
			for i := 0; i < perWriter; i++ {
				v := S(fmt.Sprintf("w%d_%d", w, i))
				c := d.Code(v)
				if got := d.Value(c); !got.Equal(v) {
					t.Errorf("writer %d: Value(Code(%v)) = %v", w, v, got)
					return
				}
				codes = append(codes, c)
			}
			codesCh <- codes
		}(w)
	}
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(r)))
			for i := 0; i < perWriter; i++ {
				// Decode only codes we synchronized on ourselves.
				v := I(int64(rng.Intn(64)))
				c := d.Code(v)
				if got := d.Value(c); !got.Equal(v) {
					t.Errorf("reader %d: Value(Code(%v)) = %v", r, v, got)
					return
				}
				d.LookupCode(S(fmt.Sprintf("w0_%d", i)))
			}
		}(r)
	}
	wg.Wait()
	close(codesCh)
	// Every writer's codes decode to its values after the dust settles.
	w := 0
	for codes := range codesCh {
		for _, c := range codes {
			if d.Value(c).IsNull() {
				t.Fatalf("writer batch %d: code %d decoded to NULL", w, c)
			}
		}
		w++
	}
}

// TestZeroCopyAccessorsDoNotAllocate audits the accessors the hot paths
// switched to: ColumnsRef, ColCodes, CodeAt, At and RowKey-free probing
// must not allocate per call, unlike the defensive-copy Columns they
// replaced.
func TestZeroCopyAccessorsDoNotAllocate(t *testing.T) {
	tab := MustNewTable("z", "a", "b")
	for i := 0; i < 64; i++ {
		tab.MustInsert(I(int64(i%8)), S(fmt.Sprintf("v%d", i%4)))
	}
	check := func(name string, want float64, fn func()) {
		t.Helper()
		if got := testing.AllocsPerRun(100, fn); got > want {
			t.Errorf("%s allocates %.1f per call, want <= %.0f", name, got, want)
		}
	}
	var (
		cols  []string
		codes []uint32
		code  uint32
		val   Value
	)
	check("ColumnsRef", 0, func() { cols = tab.ColumnsRef() })
	check("ColCodes", 0, func() { codes = tab.ColCodes(0) })
	check("CodeAt", 0, func() { code = tab.CodeAt(3, 1) })
	check("At", 0, func() { val = tab.At(3, 1) })
	check("Dict.Value", 0, func() { val = tab.Dict().Value(tab.CodeAt(0, 0)) })
	// The defensive copy is still one allocation — the reason hot callers
	// moved off it.
	check("Columns (copying)", 1, func() { cols = tab.Columns() })
	_, _, _, _ = cols, codes, code, val
}

// BenchmarkColCodesScan measures a full-column equality sweep through the
// zero-copy code vector; the B/op column is the audit that scans stay
// allocation-free.
func BenchmarkColCodesScan(b *testing.B) {
	tab := benchTable(10000)
	want := tab.Dict().Code(S("x"))
	b.ReportAllocs()
	b.ResetTimer()
	n := 0
	for i := 0; i < b.N; i++ {
		col := tab.ColCodes(0)
		for _, c := range col {
			if c == want {
				n++
			}
		}
	}
	_ = n
}
