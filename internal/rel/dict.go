package rel

import (
	"sync"
	"sync/atomic"
)

// Dict is an append-only dictionary interning Values as dense uint32 codes.
// It is the heart of the columnar storage layout: every table cell is a
// 4-byte code into a dictionary, so value equality anywhere in the stack —
// scans, hash joins, the constraint solver's projection memo, DISTINCT —
// is a single integer compare instead of a dynamic-typed Value compare or
// a string hash.
//
// Code 0 is always NULL (NullCode), so a zeroed code vector is a valid
// all-NULL column, mirroring how the zero Value is NULL.
//
// Encoding (Code) takes a lock and is meant for load time: building tables,
// compiling literals into kernels, binding query parameters. Decoding
// (Value) is lock-free and safe from any number of goroutines concurrently
// with interning, which is what the hot paths do — the solver's workers and
// the morsel executor only ever decode.
type Dict struct {
	mu    sync.RWMutex
	codes map[Value]uint32

	// Decode side: values live in fixed-size chunks that never move once
	// allocated; only the chunk table is republished (atomically) when it
	// grows. A reader holding a code c obtained through any synchronized
	// channel (its own Code call, a table built before the reader started)
	// is guaranteed chunk slot c was written before publication.
	chunks atomic.Pointer[[]*dictChunk]
	n      atomic.Uint32
	// bytes approximates the dictionary's resident size: per-entry fixed
	// cost (decode slot + map entry) plus interned string payload.
	bytes atomic.Int64
}

// dictEntryBytes is the approximate fixed cost of one interned value: the
// Value in its decode chunk slot plus the codes-map entry (key Value,
// uint32 code, bucket overhead).
const dictEntryBytes = 96

const (
	dictChunkBits = 12
	dictChunkSize = 1 << dictChunkBits
	dictChunkMask = dictChunkSize - 1
)

type dictChunk [dictChunkSize]Value

// NullCode is the dictionary code of SQL NULL in every Dict.
const NullCode uint32 = 0

// NewDict returns an empty dictionary with NULL pre-interned as code 0.
func NewDict() *Dict {
	d := &Dict{codes: make(map[Value]uint32, 64)}
	chunks := []*dictChunk{new(dictChunk)}
	d.chunks.Store(&chunks)
	d.codes[Value{}] = NullCode
	d.n.Store(1)
	return d
}

// shared is the process-wide dictionary used by every Table. A single
// dictionary makes codes comparable across tables — joins, Difference,
// ContainsAll and the solver all exploit this — and keeps the per-value
// interning cost a one-time event per distinct symbol. Protocol tables
// draw from a few hundred symbolic strings, so the shared dictionary
// stays tiny.
var shared = NewDict()

// SharedDict returns the process-wide dictionary all tables encode into.
func SharedDict() *Dict { return shared }

// Code interns v and returns its code, assigning the next free code on
// first sight. Safe for concurrent use.
func (d *Dict) Code(v Value) uint32 {
	d.mu.RLock()
	c, ok := d.codes[v]
	d.mu.RUnlock()
	if ok {
		return c
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if c, ok := d.codes[v]; ok {
		return c
	}
	n := d.n.Load()
	chunks := *d.chunks.Load()
	ci := int(n >> dictChunkBits)
	if ci == len(chunks) {
		grown := make([]*dictChunk, len(chunks)+1)
		copy(grown, chunks)
		grown[ci] = new(dictChunk)
		d.chunks.Store(&grown)
		chunks = grown
	}
	chunks[ci][n&dictChunkMask] = v
	d.codes[v] = n
	d.bytes.Add(int64(dictEntryBytes + 2*len(v.s)))
	d.n.Store(n + 1)
	return n
}

// LookupCode returns the code of v if it has been interned. A miss means no
// stored cell anywhere can equal v, which callers (index probes, IN sets)
// use as an immediate "no match" without mutating the dictionary.
func (d *Dict) LookupCode(v Value) (uint32, bool) {
	d.mu.RLock()
	c, ok := d.codes[v]
	d.mu.RUnlock()
	return c, ok
}

// Value decodes c. It is lock-free; see the type comment for the memory
// model. Decoding a code never handed out by Code is undefined.
func (d *Dict) Value(c uint32) Value {
	chunks := *d.chunks.Load()
	return chunks[c>>dictChunkBits][c&dictChunkMask]
}

// Len returns the number of interned values (including NULL).
func (d *Dict) Len() int { return int(d.n.Load()) }

// Bytes approximates the dictionary's resident size in bytes: a fixed
// per-entry cost plus the interned string payloads (the key copy in the
// codes map doubles each string). Lock-free and monotone, suitable for a
// metrics gauge.
func (d *Dict) Bytes() int64 { return d.bytes.Load() }

// appendCodeKey appends the fixed-width little-endian encoding of c to dst.
// Four bytes per code gives injective composite keys (under one dictionary)
// with no separators — the encoding used by RowKey, indexes and hash joins.
func appendCodeKey(dst []byte, c uint32) []byte {
	return append(dst, byte(c), byte(c>>8), byte(c>>16), byte(c>>24))
}

// AppendCodeKey appends the canonical fixed-width key encoding of code c to
// dst, for building composite hash keys outside this package.
func AppendCodeKey(dst []byte, c uint32) []byte { return appendCodeKey(dst, c) }

// HashBytes is the canonical 64-bit FNV-1a used for hash keys throughout
// the stack (join build, group interner); having one definition keeps the
// byte-key layout and its hash from drifting apart across packages.
func HashBytes(b []byte) uint64 {
	const offset64, prime64 = 14695981039346656037, 1099511628211
	h := uint64(offset64)
	for _, c := range b {
		h ^= uint64(c)
		h *= prime64
	}
	return h
}
