package rel

// TableDelta describes how a table changed between two revisions as sets of
// dictionary-code rows: rows present only in the new revision (Added), rows
// present only in the old one (Removed), and a per-column touched mask. It
// is the unit the incremental re-checking layer consumes — a consumer whose
// bound columns are all untouched can keep its previous answer, because its
// projection of the table is row-for-row identical.
//
// Deltas are computed against Snapshot copies. Copy-on-write keeps untouched
// columns aliased to the snapshot's vectors, so an unchanged column is
// detected by one pointer compare and an unchanged table costs O(cols);
// only columns that were actually written are scanned. Codes index the
// process-wide shared dictionary, so rows compare as fixed-width uint32
// tuples with no value decoding.
type TableDelta struct {
	Table string   // table name (the new revision's)
	Cols  []string // column names; read-only, aliases the table's schema

	// ColTouched[j] reports whether column j's code vector differs between
	// the revisions. A pure row insert or delete touches every column (all
	// vectors change length, and every projection gains or loses a tuple).
	ColTouched []bool

	// Added and Removed hold full-width code rows in the respective
	// revision's column order. For in-place cell edits the same row index
	// contributes one Removed (old) and one Added (new) row.
	Added   [][]uint32
	Removed [][]uint32

	// SchemaChanged reports that the column lists differ; every column is
	// then touched and Added/Removed hold both revisions' full row sets.
	SchemaChanged bool

	OldRows, NewRows int
}

// Empty reports whether the two revisions are identical.
func (d *TableDelta) Empty() bool {
	if d == nil {
		return true
	}
	return !d.SchemaChanged && len(d.Added) == 0 && len(d.Removed) == 0
}

// Rows returns the delta's size: |Added| + |Removed|.
func (d *TableDelta) Rows() int {
	if d == nil {
		return 0
	}
	return len(d.Added) + len(d.Removed)
}

// Touches reports whether a consumer reading the named columns could see a
// different table. It is true whenever the schema or the row count changed
// — any projection's multiset changes size with the table, so cardinality-
// sensitive consumers (joins, COUNT(*)) must re-run even if none of their
// named columns exist here. With the row count unchanged, it is true only
// when one of the named columns was rewritten: rows are then positionally
// identical on every untouched column, so the consumer's projection is
// unchanged row-for-row. Columns the table does not have read as constant
// NULL in both revisions and never fire on their own.
func (d *TableDelta) Touches(cols ...string) bool {
	if d == nil {
		return false
	}
	if d.SchemaChanged || d.OldRows != d.NewRows {
		return true
	}
	for _, c := range cols {
		for j, name := range d.Cols {
			if name == c && d.ColTouched[j] {
				return true
			}
		}
	}
	return false
}

// TouchesAny reports whether the delta changes anything at all.
func (d *TableDelta) TouchesAny() bool { return !d.Empty() }

// fullDelta marks every column touched and both row sets as the delta —
// the schema-change / unknown-history fallback.
func fullDelta(old, new *Table) *TableDelta {
	d := &TableDelta{
		Table:         new.name,
		Cols:          new.cols,
		ColTouched:    make([]bool, len(new.cols)),
		SchemaChanged: true,
		OldRows:       old.nrows,
		NewRows:       new.nrows,
	}
	for j := range d.ColTouched {
		d.ColTouched[j] = true
	}
	d.Removed = copyCodeRows(old)
	d.Added = copyCodeRows(new)
	return d
}

func copyCodeRows(t *Table) [][]uint32 {
	if t.nrows == 0 {
		return nil
	}
	w := len(t.cols)
	arena := make([]uint32, t.nrows*w)
	rows := make([][]uint32, t.nrows)
	for j, col := range t.data {
		for i := 0; i < t.nrows; i++ {
			arena[i*w+j] = col[i]
		}
	}
	for i := range rows {
		rows[i] = arena[i*w : (i+1)*w : (i+1)*w]
	}
	return rows
}

// sharedVec reports whether a and b are the same backing storage over n
// rows — the copy-on-write aliasing fast path.
func sharedVec(a, b []uint32, n int) bool {
	if n == 0 {
		return true
	}
	if len(a) < n || len(b) < n {
		return false
	}
	return &a[0] == &b[0]
}

// DiffCodes computes the delta from old to new. old is typically a
// Snapshot of new taken before a batch of edits. Costs: O(cols) when the
// tables alias each other's storage (no mutation since the snapshot),
// O(rows × changed-cols) for in-place edits, O(rows × cols) when rows were
// added or removed. The existing value-level Diff/DiffTables API (CSV
// revision diffing) is unrelated and unchanged.
func DiffCodes(old, new *Table) *TableDelta {
	if err := sameSchema(old, new); err != nil {
		return fullDelta(old, new)
	}
	d := &TableDelta{
		Table:      new.name,
		Cols:       new.cols,
		ColTouched: make([]bool, len(new.cols)),
		OldRows:    old.nrows,
		NewRows:    new.nrows,
	}
	if old == new {
		return d
	}
	if old.nrows != new.nrows {
		// Row counts differ: every column vector changed, and every
		// projection's multiset changed with it. Diff the full rows as a
		// multiset keyed by their fixed-width code encoding.
		for j := range d.ColTouched {
			d.ColTouched[j] = true
		}
		d.Added, d.Removed = multisetDiff(old, new)
		return d
	}
	// Equal row counts: find the touched columns (pointer-equal vectors are
	// untouched without a scan), then emit the rows where any touched
	// column differs — the positional in-place-edit fast path.
	touched := false
	for j := range new.data {
		if sharedVec(old.data[j], new.data[j], new.nrows) {
			continue
		}
		oc, nc := old.data[j][:new.nrows], new.data[j][:new.nrows]
		for i := range nc {
			if oc[i] != nc[i] {
				d.ColTouched[j] = true
				touched = true
				break
			}
		}
	}
	if !touched {
		return d
	}
	w := len(new.cols)
	for i := 0; i < new.nrows; i++ {
		diff := false
		for j, hit := range d.ColTouched {
			if hit && old.data[j][i] != new.data[j][i] {
				diff = true
				break
			}
		}
		if !diff {
			continue
		}
		or := make([]uint32, w)
		nr := make([]uint32, w)
		for j := 0; j < w; j++ {
			or[j] = old.data[j][i]
			nr[j] = new.data[j][i]
		}
		d.Removed = append(d.Removed, or)
		d.Added = append(d.Added, nr)
	}
	return d
}

// multisetDiff returns the rows of new not matched in old (added) and the
// rows of old not matched in new (removed), comparing full code rows as a
// multiset.
func multisetDiff(old, new *Table) (added, removed [][]uint32) {
	counts := make(map[string]int, old.nrows)
	for i := 0; i < old.nrows; i++ {
		counts[old.RowKey(i, nil)]++
	}
	w := len(new.cols)
	for i := 0; i < new.nrows; i++ {
		k := new.RowKey(i, nil)
		if counts[k] > 0 {
			counts[k]--
			continue
		}
		r := make([]uint32, w)
		for j := 0; j < w; j++ {
			r[j] = new.data[j][i]
		}
		added = append(added, r)
	}
	// Whatever counts remain positive are rows only the old revision had;
	// rescan old to emit them in row order.
	for i := 0; i < old.nrows; i++ {
		k := old.RowKey(i, nil)
		if counts[k] > 0 {
			counts[k]--
			r := make([]uint32, w)
			for j := 0; j < w; j++ {
				r[j] = old.data[j][i]
			}
			removed = append(removed, r)
		}
	}
	return added, removed
}
