package rel

import (
	"errors"
	"strings"
	"testing"
)

func revTable(rows ...[3]string) *Table {
	t := MustNewTable("rev", "inmsg", "dirst", "out")
	for _, r := range rows {
		t.MustInsert(S(r[0]), S(r[1]), S(r[2]))
	}
	return t
}

func TestDiffTablesSetDifference(t *testing.T) {
	old := revTable([3]string{"readex", "I", "mread"}, [3]string{"readex", "SI", "sinv"})
	new := revTable([3]string{"readex", "I", "mread"}, [3]string{"wb", "MESI", "fwd"})
	d, err := DiffTables(old, new)
	if err != nil {
		t.Fatal(err)
	}
	if d.Added.NumRows() != 1 || !d.Added.Get(0, "inmsg").Equal(S("wb")) {
		t.Fatalf("added:\n%s", d.Added)
	}
	if d.Removed.NumRows() != 1 || !d.Removed.Get(0, "dirst").Equal(S("SI")) {
		t.Fatalf("removed:\n%s", d.Removed)
	}
	if d.Empty() {
		t.Fatal("diff should not be empty")
	}
}

func TestDiffTablesIdentical(t *testing.T) {
	a := revTable([3]string{"readex", "I", "mread"})
	d, err := DiffTables(a, a.Clone())
	if err != nil {
		t.Fatal(err)
	}
	if !d.Empty() {
		t.Fatal("identical tables must diff empty")
	}
	var sb strings.Builder
	if err := d.Write(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "identical") {
		t.Fatal("render wrong")
	}
}

func TestDiffByKeyReportsChanges(t *testing.T) {
	old := revTable(
		[3]string{"readex", "I", "mread"},
		[3]string{"readex", "SI", "sinv"},
		[3]string{"wb", "MESI", "fwd"},
	)
	new := revTable(
		[3]string{"readex", "I", "mread"},
		[3]string{"readex", "SI", "sflush"}, // output revised
		[3]string{"flush", "SI", "sinv"},    // new case
	)
	d, err := DiffByKey(old, new, []string{"inmsg", "dirst"})
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Changed) != 1 {
		t.Fatalf("changed = %d", len(d.Changed))
	}
	c := d.Changed[0]
	if !c.Key[0].Equal(S("readex")) || !c.Key[1].Equal(S("SI")) {
		t.Fatalf("changed key = %v", c.Key)
	}
	if !c.Old[2].Equal(S("sinv")) || !c.New[2].Equal(S("sflush")) {
		t.Fatalf("changed values: %v -> %v", c.Old, c.New)
	}
	if d.Added.NumRows() != 1 || !d.Added.Get(0, "inmsg").Equal(S("flush")) {
		t.Fatalf("added:\n%s", d.Added)
	}
	if d.Removed.NumRows() != 1 || !d.Removed.Get(0, "inmsg").Equal(S("wb")) {
		t.Fatalf("removed:\n%s", d.Removed)
	}
	var sb strings.Builder
	if err := d.Write(&sb); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"removed", "added", "changed key"} {
		if !strings.Contains(sb.String(), want) {
			t.Errorf("render missing %q", want)
		}
	}
}

func TestDiffByKeyDuplicateKeysFallBack(t *testing.T) {
	old := revTable(
		[3]string{"readex", "SI", "a"},
		[3]string{"readex", "SI", "b"},
	)
	new := revTable(
		[3]string{"readex", "SI", "a"},
		[3]string{"readex", "SI", "c"},
	)
	d, err := DiffByKey(old, new, []string{"inmsg", "dirst"})
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Changed) != 0 {
		t.Fatalf("duplicate keys must not produce Changed entries: %v", d.Changed)
	}
	if d.Added.NumRows() != 1 || d.Removed.NumRows() != 1 {
		t.Fatalf("added=%d removed=%d, want 1/1", d.Added.NumRows(), d.Removed.NumRows())
	}
}

func TestDiffErrors(t *testing.T) {
	a := revTable()
	b := MustNewTable("other", "x")
	if _, err := DiffTables(a, b); !errors.Is(err, ErrSchema) {
		t.Fatalf("err = %v", err)
	}
	if _, err := DiffByKey(a, b, []string{"x"}); !errors.Is(err, ErrSchema) {
		t.Fatalf("err = %v", err)
	}
	if _, err := DiffByKey(a, a.Clone(), []string{"ghost"}); !errors.Is(err, ErrUnknownColumn) {
		t.Fatalf("err = %v", err)
	}
}
