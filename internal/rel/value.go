// Package rel implements an in-memory relational storage and algebra layer.
//
// It is the bottom substrate of the coherdb reproduction: a small,
// dependency-free relational engine with SQL-style NULL semantics, hash
// indexes and the classical operators (selection, projection, cross product,
// natural and equi-joins, union, difference, distinct). The SQL dialect in
// package sqlmini and the constraint solver in package constraint are built
// on top of it.
//
// Values are dynamically typed, like SQLite: a column may hold strings,
// integers, booleans or NULL. In the coherence-protocol tables of the paper
// all domains are symbolic strings plus NULL, where NULL denotes "dontcare"
// for input columns and "noop" for output columns.
package rel

import (
	"fmt"
	"strconv"
)

// Kind enumerates the dynamic types a Value can hold.
type Kind uint8

// The supported value kinds.
const (
	KindNull Kind = iota
	KindString
	KindInt
	KindBool
)

// String returns a human-readable name for the kind.
func (k Kind) String() string {
	switch k {
	case KindNull:
		return "null"
	case KindString:
		return "string"
	case KindInt:
		return "int"
	case KindBool:
		return "bool"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// Value is a single dynamically typed relational value. The zero Value is
// NULL, so freshly allocated rows are valid.
type Value struct {
	kind Kind
	s    string
	i    int64
	b    bool
}

// Null returns the SQL NULL value.
func Null() Value { return Value{} }

// S returns a string value.
func S(s string) Value { return Value{kind: KindString, s: s} }

// I returns an integer value.
func I(i int64) Value { return Value{kind: KindInt, i: i} }

// B returns a boolean value.
func B(b bool) Value { return Value{kind: KindBool, b: b} }

// Kind reports the dynamic type of v.
func (v Value) Kind() Kind { return v.kind }

// IsNull reports whether v is NULL.
func (v Value) IsNull() bool { return v.kind == KindNull }

// Str returns the string payload. It returns "" for non-string values.
func (v Value) Str() string {
	if v.kind == KindString {
		return v.s
	}
	return ""
}

// Int returns the integer payload. It returns 0 for non-integer values.
func (v Value) Int() int64 {
	if v.kind == KindInt {
		return v.i
	}
	return 0
}

// Bool returns the boolean payload. It returns false for non-boolean values.
func (v Value) Bool() bool {
	if v.kind == KindBool {
		return v.b
	}
	return false
}

// Truthy reports whether v counts as true in a WHERE clause: non-NULL and
// either boolean true, a nonzero integer, or a nonempty string.
func (v Value) Truthy() bool {
	switch v.kind {
	case KindBool:
		return v.b
	case KindInt:
		return v.i != 0
	case KindString:
		return v.s != ""
	default:
		return false
	}
}

// Equal reports strict equality: same kind and same payload. NULL equals
// NULL under this definition (needed for row identity, DISTINCT, UNION);
// three-valued SQL comparison semantics live in the expression evaluator.
func (v Value) Equal(o Value) bool {
	if v.kind != o.kind {
		return false
	}
	switch v.kind {
	case KindNull:
		return true
	case KindString:
		return v.s == o.s
	case KindInt:
		return v.i == o.i
	case KindBool:
		return v.b == o.b
	}
	return false
}

// Compare orders values for ORDER BY and sorting: NULL < bool < int < string,
// with natural ordering inside each kind. It returns -1, 0 or +1.
func (v Value) Compare(o Value) int {
	if v.kind != o.kind {
		return int(kindRank(v.kind)) - int(kindRank(o.kind))
	}
	switch v.kind {
	case KindNull:
		return 0
	case KindBool:
		return boolCmp(v.b, o.b)
	case KindInt:
		switch {
		case v.i < o.i:
			return -1
		case v.i > o.i:
			return 1
		}
		return 0
	case KindString:
		switch {
		case v.s < o.s:
			return -1
		case v.s > o.s:
			return 1
		}
		return 0
	}
	return 0
}

func kindRank(k Kind) uint8 {
	switch k {
	case KindNull:
		return 0
	case KindBool:
		return 1
	case KindInt:
		return 2
	case KindString:
		return 3
	}
	return 4
}

func boolCmp(a, b bool) int {
	switch {
	case a == b:
		return 0
	case !a:
		return -1
	default:
		return 1
	}
}

// Key returns an injective string encoding of v, usable as a map key for
// hashing rows. Distinct values always produce distinct keys.
func (v Value) Key() string {
	switch v.kind {
	case KindNull:
		return "n"
	case KindString:
		return "s" + v.s
	case KindInt:
		return "i" + strconv.FormatInt(v.i, 10)
	case KindBool:
		if v.b {
			return "b1"
		}
		return "b0"
	}
	return "?"
}

// AppendKey appends the Key encoding of v to dst and returns it, letting
// hot paths (the solver's projection memo, row hashing) build composite
// keys without one allocation per value.
func (v Value) AppendKey(dst []byte) []byte {
	switch v.kind {
	case KindNull:
		return append(dst, 'n')
	case KindString:
		return append(append(dst, 's'), v.s...)
	case KindInt:
		return strconv.AppendInt(append(dst, 'i'), v.i, 10)
	case KindBool:
		if v.b {
			return append(dst, 'b', '1')
		}
		return append(dst, 'b', '0')
	}
	return append(dst, '?')
}

// Hash returns the canonical 64-bit hash of v: FNV-1a over the same
// injective encoding Key produces, without allocating. Every hash
// structure keyed on single values (join builds, indexes, interners)
// derives from this one definition so equality and hashing cannot drift.
func (v Value) Hash() uint64 {
	const offset64, prime64 = 14695981039346656037, 1099511628211
	h := uint64(offset64)
	step := func(c byte) {
		h ^= uint64(c)
		h *= prime64
	}
	switch v.kind {
	case KindNull:
		step('n')
	case KindString:
		step('s')
		for i := 0; i < len(v.s); i++ {
			step(v.s[i])
		}
	case KindInt:
		step('i')
		u := uint64(v.i)
		for s := 0; s < 64; s += 8 {
			step(byte(u >> s))
		}
	case KindBool:
		step('b')
		if v.b {
			step('1')
		} else {
			step('0')
		}
	}
	return h
}

// String renders the value for display: NULL prints as "NULL", strings print
// bare, integers and booleans in their natural form.
func (v Value) String() string {
	switch v.kind {
	case KindNull:
		return "NULL"
	case KindString:
		return v.s
	case KindInt:
		return strconv.FormatInt(v.i, 10)
	case KindBool:
		if v.b {
			return "true"
		}
		return "false"
	}
	return "?"
}

// Quoted renders the value as a SQL literal: strings are single-quoted with
// embedded quotes doubled, other kinds as in String.
func (v Value) Quoted() string {
	if v.kind != KindString {
		return v.String()
	}
	out := make([]byte, 0, len(v.s)+2)
	out = append(out, '\'')
	for i := 0; i < len(v.s); i++ {
		if v.s[i] == '\'' {
			out = append(out, '\'', '\'')
		} else {
			out = append(out, v.s[i])
		}
	}
	out = append(out, '\'')
	return string(out)
}
