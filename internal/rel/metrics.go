package rel

import (
	"sort"
	"sync"

	"coherdb/internal/obs"
)

// Dictionaries other than the process-wide shared one (e.g. the model
// checker's state-codec dictionary) register here so /metrics can
// attribute resident bytes per dictionary instead of one opaque
// number. TrackDict with a nil dict removes the label.
var (
	dictTrackMu  sync.Mutex
	trackedDicts = map[string]*Dict{}
)

// TrackDict registers d under label for metrics publication alongside
// the shared dictionary. Passing nil removes the label.
func TrackDict(label string, d *Dict) {
	dictTrackMu.Lock()
	if d == nil {
		delete(trackedDicts, label)
	} else {
		trackedDicts[label] = d
	}
	dictTrackMu.Unlock()
}

// PublishDictMetrics registers the dictionary gauges on reg and
// returns a refresh function that re-samples them; call it from a
// scrape hook so /metrics always reports current values. The gauges
// are labeled by dictionary — the process-wide shared dictionary
// reports as dict="shared", TrackDict'd dictionaries under their own
// labels:
//
//	coherdb_dict_size{dict=...}   — interned values (including NULL)
//	coherdb_dict_bytes{dict=...}  — approximate resident bytes (see Dict.Bytes)
func PublishDictMetrics(reg *obs.Registry) func() {
	if reg == nil {
		return func() {}
	}
	reg.Help("coherdb_dict_size", "Values interned per dictionary (including NULL).")
	reg.Help("coherdb_dict_bytes", "Approximate resident bytes per dictionary.")
	sample := func(label string, d *Dict) {
		lb := obs.L("dict", label)
		reg.Gauge("coherdb_dict_size", lb).Set(int64(d.Len()))
		reg.Gauge("coherdb_dict_bytes", lb).Set(d.Bytes())
	}
	refresh := func() {
		sample("shared", SharedDict())
		dictTrackMu.Lock()
		labels := make([]string, 0, len(trackedDicts))
		for l := range trackedDicts {
			labels = append(labels, l)
		}
		sort.Strings(labels)
		for _, l := range labels {
			sample(l, trackedDicts[l])
		}
		dictTrackMu.Unlock()
	}
	refresh()
	return refresh
}
