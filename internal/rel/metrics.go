package rel

import "coherdb/internal/obs"

// PublishDictMetrics registers the shared-dictionary gauges on reg and
// returns a refresh function that re-samples them; call it from a scrape
// hook so /metrics always reports current values. The gauges:
//
//	coherdb_dict_size   — interned values (including NULL)
//	coherdb_dict_bytes  — approximate resident bytes (see Dict.Bytes)
func PublishDictMetrics(reg *obs.Registry) func() {
	if reg == nil {
		return func() {}
	}
	reg.Help("coherdb_dict_size", "Values interned in the shared dictionary (including NULL).")
	size := reg.Gauge("coherdb_dict_size")
	reg.Help("coherdb_dict_bytes", "Approximate resident bytes of the shared dictionary.")
	bytes := reg.Gauge("coherdb_dict_bytes")
	refresh := func() {
		d := SharedDict()
		size.Set(int64(d.Len()))
		bytes.Set(d.Bytes())
	}
	refresh()
	return refresh
}
