package rel

import (
	"testing"
)

func deltaTable(t *testing.T, name string) *Table {
	t.Helper()
	tab := MustNewTable(name, "a", "b", "c")
	tab.MustInsert(S("x"), I(1), S("p"))
	tab.MustInsert(S("y"), I(2), S("q"))
	tab.MustInsert(S("z"), I(3), S("r"))
	return tab
}

// Every mutating path must bump the revision exactly once.
func TestRevisionBumpsOnEveryMutation(t *testing.T) {
	tab := deltaTable(t, "rev")
	rev := tab.Revision()
	step := func(what string) {
		t.Helper()
		if got := tab.Revision(); got != rev+1 {
			t.Fatalf("%s: revision = %d, want %d", what, got, rev+1)
		}
		rev = tab.Revision()
	}

	tab.MustInsert(S("w"), I(4), S("s"))
	step("Insert")
	if err := tab.InsertRow([]Value{S("v"), I(5), S("t")}); err != nil {
		t.Fatal(err)
	}
	step("InsertRow")
	if err := tab.AppendCodeRow([]uint32{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	step("AppendCodeRow")
	if err := tab.AppendCodes([][]uint32{{1, 2, 3}, {4, 5, 6}}); err != nil {
		t.Fatal(err)
	}
	step("AppendCodes")
	if err := tab.AppendColumns([][]uint32{{7}, {8}, {9}}, 1); err != nil {
		t.Fatal(err)
	}
	step("AppendColumns")
	if err := tab.Set(0, "a", S("edited")); err != nil {
		t.Fatal(err)
	}
	step("Set")
	if n := tab.ReplaceInCol("a", S("edited"), S("again")); n != 1 {
		t.Fatalf("ReplaceInCol rewrote %d cells, want 1", n)
	}
	step("ReplaceInCol")
	if n := tab.DeleteWhere(func(r Row) bool { return r.Get("a").Equal(S("again")) }); n != 1 {
		t.Fatalf("DeleteWhere removed %d, want 1", n)
	}
	step("DeleteWhere")
	tab.SortAll()
	step("SortAll")
	if err := tab.SortBy("b"); err != nil {
		t.Fatal(err)
	}
	step("SortBy")

	// Reads and no-op mutations must not bump.
	_ = tab.RawRows()
	_ = tab.CodeRows()
	if n := tab.ReplaceInCol("a", S("absent"), S("x")); n != 0 {
		t.Fatalf("ReplaceInCol of absent value rewrote %d", n)
	}
	if n := tab.DeleteWhere(func(Row) bool { return false }); n != 0 {
		t.Fatalf("no-op DeleteWhere removed %d", n)
	}
	if got := tab.Revision(); got != rev {
		t.Fatalf("reads/no-ops bumped revision to %d, want %d", got, rev)
	}
}

// A snapshot must stay frozen while the source mutates, and vice versa.
func TestSnapshotCopyOnWrite(t *testing.T) {
	tab := deltaTable(t, "cow")
	snap := tab.Snapshot()
	if snap.NumRows() != 3 || snap.Revision() != tab.Revision() {
		t.Fatalf("snapshot shape: rows=%d rev=%d", snap.NumRows(), snap.Revision())
	}

	// Mutate the source: in-place edit, append, delete.
	if err := tab.Set(1, "b", I(99)); err != nil {
		t.Fatal(err)
	}
	tab.MustInsert(S("new"), I(7), S("u"))
	if !snap.At(1, 1).Equal(I(2)) {
		t.Fatalf("snapshot saw source edit: %v", snap.At(1, 1))
	}
	if snap.NumRows() != 3 {
		t.Fatalf("snapshot saw source append: %d rows", snap.NumRows())
	}

	// Mutate the snapshot of a fresh pair: source must stay frozen.
	tab2 := deltaTable(t, "cow2")
	snap2 := tab2.Snapshot()
	if err := snap2.Set(0, "a", S("mutated")); err != nil {
		t.Fatal(err)
	}
	if !tab2.At(0, 0).Equal(S("x")) {
		t.Fatalf("source saw snapshot edit: %v", tab2.At(0, 0))
	}
}

func TestDiffCodesIdentical(t *testing.T) {
	tab := deltaTable(t, "same")
	snap := tab.Snapshot()
	d := DiffCodes(snap, tab)
	if !d.Empty() || d.Rows() != 0 || d.TouchesAny() {
		t.Fatalf("diff of unchanged table not empty: %+v", d)
	}
	for j, hit := range d.ColTouched {
		if hit {
			t.Fatalf("column %d touched in unchanged table", j)
		}
	}
}

func TestDiffCodesCellEdit(t *testing.T) {
	tab := deltaTable(t, "edit")
	snap := tab.Snapshot()
	if err := tab.Set(1, "b", I(42)); err != nil {
		t.Fatal(err)
	}
	d := DiffCodes(snap, tab)
	if d.Empty() || d.SchemaChanged {
		t.Fatalf("cell edit produced %+v", d)
	}
	if !d.Touches("b") || d.Touches("a") || d.Touches("c") {
		t.Fatalf("touched mask wrong: %v", d.ColTouched)
	}
	if len(d.Added) != 1 || len(d.Removed) != 1 {
		t.Fatalf("added=%d removed=%d, want 1/1", len(d.Added), len(d.Removed))
	}
	dict := tab.Dict()
	if !dict.Value(d.Added[0][1]).Equal(I(42)) || !dict.Value(d.Removed[0][1]).Equal(I(2)) {
		t.Fatalf("delta rows wrong: added=%v removed=%v", d.Added, d.Removed)
	}
}

func TestDiffCodesInsertDelete(t *testing.T) {
	tab := deltaTable(t, "insdel")
	snap := tab.Snapshot()
	tab.MustInsert(S("w"), I(4), S("s"))
	d := DiffCodes(snap, tab)
	if len(d.Added) != 1 || len(d.Removed) != 0 {
		t.Fatalf("insert: added=%d removed=%d", len(d.Added), len(d.Removed))
	}
	if !d.Touches("a") || !d.Touches("b") || !d.Touches("c") {
		t.Fatalf("insert must touch every column: %v", d.ColTouched)
	}

	snap2 := tab.Snapshot()
	tab.DeleteWhere(func(r Row) bool { return r.Get("a").Equal(S("y")) })
	d2 := DiffCodes(snap2, tab)
	if len(d2.Added) != 0 || len(d2.Removed) != 1 {
		t.Fatalf("delete: added=%d removed=%d", len(d2.Added), len(d2.Removed))
	}
	if !tab.Dict().Value(d2.Removed[0][0]).Equal(S("y")) {
		t.Fatalf("removed wrong row: %v", d2.Removed)
	}
}

func TestDiffCodesSchemaChange(t *testing.T) {
	a := MustNewTable("s", "x", "y")
	a.MustInsert(I(1), I(2))
	b := MustNewTable("s", "x", "z")
	b.MustInsert(I(1), I(3))
	d := DiffCodes(a, b)
	if !d.SchemaChanged || !d.Touches("z") || !d.Touches("anything") {
		t.Fatalf("schema change not conservative: %+v", d)
	}
	if len(d.Added) != 1 || len(d.Removed) != 1 {
		t.Fatalf("schema change rows: added=%d removed=%d", len(d.Added), len(d.Removed))
	}
}

// The sort gather replaces every vector, so diffing across a no-op sort
// (already-sorted input) still reports no added/removed rows.
func TestDiffCodesAcrossSort(t *testing.T) {
	tab := deltaTable(t, "sorted")
	tab.SortAll()
	snap := tab.Snapshot()
	tab.SortAll()
	d := DiffCodes(snap, tab)
	if !d.Empty() {
		t.Fatalf("no-op sort produced delta: %+v", d)
	}
}

// Index maintenance must survive the unified bookkeeping funnel: appends
// keep cached indexes live, rewrites drop them.
func TestIndexMaintenanceThroughFunnel(t *testing.T) {
	tab := deltaTable(t, "idxfunnel")
	ix, err := tab.IndexOn("a")
	if err != nil {
		t.Fatal(err)
	}
	tab.MustInsert(S("w"), I(4), S("s"))
	if rows := ix.Lookup(S("w")); len(rows) != 1 || rows[0] != 3 {
		t.Fatalf("index not maintained across Insert: %v", rows)
	}
	if err := tab.AppendCodeRow([]uint32{tab.Dict().Code(S("w")), 0, 0}); err != nil {
		t.Fatal(err)
	}
	if rows := ix.Lookup(S("w")); len(rows) != 2 {
		t.Fatalf("index not maintained across AppendCodeRow: %v", rows)
	}
	if err := tab.Set(0, "a", S("q")); err != nil {
		t.Fatal(err)
	}
	ix2, err := tab.IndexOn("a")
	if err != nil {
		t.Fatal(err)
	}
	if ix2 == ix {
		t.Fatal("rewrite did not invalidate cached index")
	}
	if rows := ix2.Lookup(S("q")); len(rows) != 1 || rows[0] != 0 {
		t.Fatalf("rebuilt index wrong: %v", rows)
	}
}
