package rel

import (
	"errors"
	"strings"
	"testing"
)

func mkD(t *testing.T) *Table {
	t.Helper()
	d := MustNewTable("D", "inmsg", "dirst", "dirpv", "remmsg", "nxtdirst")
	d.MustInsert(S("readex"), S("I"), S("zero"), Null(), S("Busy-d"))
	d.MustInsert(S("readex"), S("SI"), S("one"), S("sinv"), S("Busy-sd"))
	d.MustInsert(S("data"), S("Busy-d"), S("zero"), Null(), S("MESI"))
	return d
}

func TestNewTableRejectsDuplicateColumns(t *testing.T) {
	_, err := NewTable("bad", "a", "b", "a")
	if !errors.Is(err, ErrDupColumn) {
		t.Fatalf("err = %v, want ErrDupColumn", err)
	}
}

func TestMustNewTablePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	MustNewTable("bad", "a", "a")
}

func TestInsertArity(t *testing.T) {
	d := MustNewTable("t", "a", "b")
	if err := d.Insert(S("x")); !errors.Is(err, ErrArity) {
		t.Fatalf("err = %v, want ErrArity", err)
	}
	if err := d.Insert(S("x"), S("y")); err != nil {
		t.Fatal(err)
	}
	if d.NumRows() != 1 {
		t.Fatalf("rows = %d", d.NumRows())
	}
}

func TestGetSetAndColIndex(t *testing.T) {
	d := mkD(t)
	if d.ColIndex("dirst") != 1 || d.ColIndex("nope") != -1 {
		t.Fatal("ColIndex wrong")
	}
	if !d.HasColumn("dirpv") || d.HasColumn("ghost") {
		t.Fatal("HasColumn wrong")
	}
	if got := d.Get(1, "remmsg"); !got.Equal(S("sinv")) {
		t.Fatalf("Get = %v", got)
	}
	if got := d.Get(0, "ghost"); !got.IsNull() {
		t.Fatalf("Get unknown column = %v, want NULL", got)
	}
	if err := d.Set(0, "remmsg", S("sread")); err != nil {
		t.Fatal(err)
	}
	if got := d.Get(0, "remmsg"); !got.Equal(S("sread")) {
		t.Fatalf("after Set, Get = %v", got)
	}
	if err := d.Set(0, "ghost", Null()); !errors.Is(err, ErrUnknownColumn) {
		t.Fatalf("Set unknown column err = %v", err)
	}
}

func TestRowAccessor(t *testing.T) {
	d := mkD(t)
	r := d.Row(1)
	if !r.Get("inmsg").Equal(S("readex")) || !r.Get("missing").IsNull() {
		t.Fatal("Row.Get wrong")
	}
	if r.Table() != d {
		t.Fatal("Row.Table wrong")
	}
	if len(r.Values()) != d.NumCols() {
		t.Fatal("Row.Values wrong length")
	}
}

func TestDeleteWhere(t *testing.T) {
	d := mkD(t)
	n := d.DeleteWhere(func(r Row) bool { return r.Get("inmsg").Equal(S("readex")) })
	if n != 2 || d.NumRows() != 1 {
		t.Fatalf("removed %d, left %d", n, d.NumRows())
	}
	if !d.Get(0, "inmsg").Equal(S("data")) {
		t.Fatal("wrong row survived")
	}
}

func TestCloneIsDeep(t *testing.T) {
	d := mkD(t)
	c := d.Clone()
	if err := c.Set(0, "dirst", S("MESI")); err != nil {
		t.Fatal(err)
	}
	if d.Get(0, "dirst").Equal(S("MESI")) {
		t.Fatal("Clone shares row storage")
	}
	if eq, err := d.EqualRows(d.Clone()); err != nil || !eq {
		t.Fatalf("clone not equal: %v %v", eq, err)
	}
}

func TestSortByAndSortAll(t *testing.T) {
	d := mkD(t)
	if err := d.SortBy("inmsg", "dirst"); err != nil {
		t.Fatal(err)
	}
	if !d.Get(0, "inmsg").Equal(S("data")) {
		t.Fatal("SortBy order wrong")
	}
	if err := d.SortBy("ghost"); !errors.Is(err, ErrUnknownColumn) {
		t.Fatalf("SortBy unknown err = %v", err)
	}
	d.SortAll()
	for i := 1; i < d.NumRows(); i++ {
		prev, cur := d.RawRow(i-1), d.RawRow(i)
		cmp := 0
		for j := range prev {
			if cmp = prev[j].Compare(cur[j]); cmp != 0 {
				break
			}
		}
		if cmp > 0 {
			t.Fatal("SortAll not sorted")
		}
	}
}

func TestSetNameAndColumnsCopy(t *testing.T) {
	d := mkD(t)
	d.SetName("D2")
	if d.Name() != "D2" {
		t.Fatal("SetName")
	}
	cols := d.Columns()
	cols[0] = "hacked"
	if d.Columns()[0] == "hacked" {
		t.Fatal("Columns must return a copy")
	}
}

func TestStringRendering(t *testing.T) {
	d := mkD(t)
	s := d.String()
	for _, want := range []string{"inmsg", "readex", "Busy-sd", "NULL", "(3 rows)"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() missing %q:\n%s", want, s)
		}
	}
}

func TestCSVRoundTripTable(t *testing.T) {
	d := mkD(t)
	var sb strings.Builder
	if err := d.WriteCSV(&sb); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV("D", strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	eq, err := got.EqualRows(d)
	if err != nil || !eq {
		t.Fatalf("round trip lost rows: eq=%v err=%v\n%s", eq, err, sb.String())
	}
}

func TestReadCSVErrors(t *testing.T) {
	if _, err := ReadCSV("x", strings.NewReader("")); err == nil {
		t.Fatal("empty CSV must error")
	}
	if _, err := ReadCSV("x", strings.NewReader("a,b\n1\n")); err == nil {
		t.Fatal("short row must error")
	}
	if _, err := ReadCSV("x", strings.NewReader("a\n#zbad\n")); err == nil {
		t.Fatal("unknown tag must error")
	}
}
