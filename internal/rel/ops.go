package rel

import (
	"fmt"
)

// Select returns a new table containing the rows for which pred is true.
func (t *Table) Select(pred func(Row) bool) *Table {
	out := MustNewTable(t.name, t.cols...)
	kept := make([]int, 0, t.nrows)
	for i := 0; i < t.nrows; i++ {
		if pred(Row{t: t, i: i}) {
			kept = append(kept, i)
		}
	}
	out.gatherFrom(t, kept)
	return out
}

// Project returns a new table with only the given columns, in the given
// order. Duplicate rows are retained (use Distinct for set semantics).
// Projection is a column-vector copy — no per-row work at all.
func (t *Table) Project(cols ...string) (*Table, error) {
	idx := make([]int, len(cols))
	for k, c := range cols {
		j := t.ColIndex(c)
		if j < 0 {
			return nil, fmt.Errorf("%w: %q in table %q", ErrUnknownColumn, c, t.name)
		}
		idx[k] = j
	}
	out, err := NewTable(t.name, cols...)
	if err != nil {
		return nil, err
	}
	for k, j := range idx {
		out.data[k] = append([]uint32(nil), t.data[j][:t.nrows]...)
	}
	out.nrows = t.nrows
	return out, nil
}

// Distinct returns a new table with duplicate rows removed, preserving the
// first occurrence order.
func (t *Table) Distinct() *Table {
	out := MustNewTable(t.name, t.cols...)
	seen := make(map[string]struct{}, t.nrows)
	kept := make([]int, 0, t.nrows)
	var kb []byte
	for i := 0; i < t.nrows; i++ {
		kb = kb[:0]
		for _, col := range t.data {
			kb = appendCodeKey(kb, col[i])
		}
		if _, dup := seen[string(kb)]; dup {
			continue
		}
		seen[string(kb)] = struct{}{}
		kept = append(kept, i)
	}
	out.gatherFrom(t, kept)
	return out
}

// Union returns the multiset union of t and o (UNION ALL). Schemas must have
// identical column lists.
func (t *Table) Union(o *Table) (*Table, error) {
	if err := sameSchema(t, o); err != nil {
		return nil, err
	}
	out := MustNewTable(t.name, t.cols...)
	for j := range out.data {
		col := make([]uint32, 0, t.nrows+o.nrows)
		col = append(col, t.data[j][:t.nrows]...)
		col = append(col, o.data[j][:o.nrows]...)
		out.data[j] = col
	}
	out.nrows = t.nrows + o.nrows
	return out, nil
}

// UnionDistinct returns the set union of t and o (SQL UNION).
func (t *Table) UnionDistinct(o *Table) (*Table, error) {
	u, err := t.Union(o)
	if err != nil {
		return nil, err
	}
	return u.Distinct(), nil
}

// Difference returns the rows of t that do not occur in o (set semantics).
func (t *Table) Difference(o *Table) (*Table, error) {
	if err := sameSchema(t, o); err != nil {
		return nil, err
	}
	drop := o.fullRowKeySet()
	out := MustNewTable(t.name, t.cols...)
	kept := make([]int, 0, t.nrows)
	for i := 0; i < t.nrows; i++ {
		if _, gone := drop[t.RowKey(i, nil)]; !gone {
			kept = append(kept, i)
		}
	}
	out.gatherFrom(t, kept)
	return out, nil
}

// Intersect returns the rows of t that also occur in o (set semantics).
func (t *Table) Intersect(o *Table) (*Table, error) {
	if err := sameSchema(t, o); err != nil {
		return nil, err
	}
	keep := o.fullRowKeySet()
	out := MustNewTable(t.name, t.cols...)
	kept := make([]int, 0, t.nrows)
	for i := 0; i < t.nrows; i++ {
		if _, ok := keep[t.RowKey(i, nil)]; ok {
			kept = append(kept, i)
		}
	}
	out.gatherFrom(t, kept)
	return out, nil
}

// fullRowKeySet returns the set of whole-row keys. Codes come from the
// shared dictionary, so the keys are comparable across tables.
func (t *Table) fullRowKeySet() map[string]struct{} {
	set := make(map[string]struct{}, t.nrows)
	var kb []byte
	for i := 0; i < t.nrows; i++ {
		kb = kb[:0]
		for _, col := range t.data {
			kb = appendCodeKey(kb, col[i])
		}
		set[string(kb)] = struct{}{}
	}
	return set
}

// gatherFrom fills out with src's rows at the given indexes, using one
// gather pass per column vector.
func (out *Table) gatherFrom(src *Table, rows []int) {
	for j, col := range src.data {
		g := make([]uint32, len(rows))
		for k, i := range rows {
			g[k] = col[i]
		}
		out.data[j] = g
	}
	out.nrows = len(rows)
}

// Cross returns the cross product of t and o. Column names must not collide;
// use Rename first if they do. This is the operation the paper's constraint
// solver prunes: controller tables are cross products of column tables with
// non-satisfying rows removed.
func (t *Table) Cross(o *Table) (*Table, error) {
	cols := make([]string, 0, len(t.cols)+len(o.cols))
	cols = append(cols, t.cols...)
	cols = append(cols, o.cols...)
	out, err := NewTable(t.name+"_x_"+o.name, cols...)
	if err != nil {
		return nil, err
	}
	n := t.nrows * o.nrows
	for j, col := range t.data {
		g := make([]uint32, 0, n)
		for i := 0; i < t.nrows; i++ {
			c := col[i]
			for b := 0; b < o.nrows; b++ {
				g = append(g, c)
			}
		}
		out.data[j] = g
	}
	for j, col := range o.data {
		g := make([]uint32, 0, n)
		for i := 0; i < t.nrows; i++ {
			g = append(g, col[:o.nrows]...)
		}
		out.data[len(t.cols)+j] = g
	}
	out.nrows = n
	return out, nil
}

// CrossFiltered computes the cross product of t and o, keeping only rows for
// which keep returns true. keep receives the concatenated row. This fuses
// product and selection so pruning happens before materialization — the core
// of incremental table generation.
func (t *Table) CrossFiltered(o *Table, keep func(row []Value) bool) (*Table, error) {
	cols := make([]string, 0, len(t.cols)+len(o.cols))
	cols = append(cols, t.cols...)
	cols = append(cols, o.cols...)
	out, err := NewTable(t.name+"_x_"+o.name, cols...)
	if err != nil {
		return nil, err
	}
	buf := make([]Value, len(cols))
	crow := make([]uint32, len(cols))
	for a := 0; a < t.nrows; a++ {
		for j, col := range t.data {
			crow[j] = col[a]
			buf[j] = t.dict.Value(col[a])
		}
		for b := 0; b < o.nrows; b++ {
			for j, col := range o.data {
				crow[len(t.cols)+j] = col[b]
				buf[len(t.cols)+j] = o.dict.Value(col[b])
			}
			if keep(buf) {
				if err := out.AppendCodeRow(crow); err != nil {
					return nil, err
				}
			}
		}
	}
	return out, nil
}

// JoinOn is a condition for EquiJoin: left column name equals right column
// name.
type JoinOn struct {
	Left, Right string
}

// EquiJoin returns the inner equi-join of t and o on the given column pairs,
// using a hash join on the right table. NULL keys never match (SQL
// semantics). Column names must not collide across the two tables. Keys are
// dictionary codes — four bytes per join column — and the probe compares
// integers, never strings.
func (t *Table) EquiJoin(o *Table, on []JoinOn) (*Table, error) {
	if len(on) == 0 {
		return t.Cross(o)
	}
	lidx := make([]int, len(on))
	ridx := make([]int, len(on))
	for k, c := range on {
		li := t.ColIndex(c.Left)
		if li < 0 {
			return nil, fmt.Errorf("%w: %q in table %q", ErrUnknownColumn, c.Left, t.name)
		}
		ri := o.ColIndex(c.Right)
		if ri < 0 {
			return nil, fmt.Errorf("%w: %q in table %q", ErrUnknownColumn, c.Right, o.name)
		}
		lidx[k], ridx[k] = li, ri
	}
	cols := make([]string, 0, len(t.cols)+len(o.cols))
	cols = append(cols, t.cols...)
	cols = append(cols, o.cols...)
	out, err := NewTable(t.name+"_j_"+o.name, cols...)
	if err != nil {
		return nil, err
	}
	// Build hash on the right side.
	buckets := make(map[string][]int, o.nrows)
	var kb []byte
	for i := 0; i < o.nrows; i++ {
		if rowHasNullCode(o, i, ridx) {
			continue
		}
		kb = kb[:0]
		for _, j := range ridx {
			kb = appendCodeKey(kb, o.data[j][i])
		}
		buckets[string(kb)] = append(buckets[string(kb)], i)
	}
	var lrows, rrows []int
	for i := 0; i < t.nrows; i++ {
		if rowHasNullCode(t, i, lidx) {
			continue
		}
		kb = kb[:0]
		for _, j := range lidx {
			kb = appendCodeKey(kb, t.data[j][i])
		}
		for _, j := range buckets[string(kb)] {
			lrows = append(lrows, i)
			rrows = append(rrows, j)
		}
	}
	for j, col := range t.data {
		g := make([]uint32, len(lrows))
		for k, i := range lrows {
			g[k] = col[i]
		}
		out.data[j] = g
	}
	for j, col := range o.data {
		g := make([]uint32, len(rrows))
		for k, i := range rrows {
			g[k] = col[i]
		}
		out.data[len(t.cols)+j] = g
	}
	out.nrows = len(lrows)
	return out, nil
}

func rowHasNullCode(t *Table, i int, idx []int) bool {
	for _, j := range idx {
		if t.data[j][i] == NullCode {
			return true
		}
	}
	return false
}

// Rename returns a copy of t with columns renamed according to mapping
// old→new. Unmapped columns keep their names. The copy shares t's column
// vectors; such views must not be mutated.
func (t *Table) Rename(mapping map[string]string) (*Table, error) {
	cols := make([]string, len(t.cols))
	for i, c := range t.cols {
		if n, ok := mapping[c]; ok {
			cols[i] = n
		} else {
			cols[i] = c
		}
	}
	out, err := NewTable(t.name, cols...)
	if err != nil {
		return nil, err
	}
	copy(out.data, t.data)
	out.nrows = t.nrows
	return out, nil
}

// Prefix returns a copy of t with every column name prefixed by p, a common
// pre-step before Cross/EquiJoin to avoid collisions. The copy shares t's
// column vectors; such views must not be mutated.
func (t *Table) Prefix(p string) *Table {
	cols := make([]string, len(t.cols))
	for i, c := range t.cols {
		cols[i] = p + c
	}
	out := MustNewTable(t.name, cols...)
	copy(out.data, t.data)
	out.nrows = t.nrows
	return out
}

// ContainsAll reports whether every row of o occurs in t (set semantics over
// the shared column order; schemas must match). This implements the paper's
// reconstruction check: the table rebuilt from implementation tables must
// contain the original debugged table.
func (t *Table) ContainsAll(o *Table) (bool, error) {
	if err := sameSchema(t, o); err != nil {
		return false, err
	}
	have := t.fullRowKeySet()
	for i := 0; i < o.nrows; i++ {
		if _, ok := have[o.RowKey(i, nil)]; !ok {
			return false, nil
		}
	}
	return true, nil
}

// EqualRows reports whether t and o hold exactly the same set of rows
// (duplicates collapsed), regardless of row order.
func (t *Table) EqualRows(o *Table) (bool, error) {
	ab, err := t.ContainsAll(o)
	if err != nil || !ab {
		return ab, err
	}
	return o.ContainsAll(t)
}

func sameSchema(a, b *Table) error {
	if len(a.cols) != len(b.cols) {
		return fmt.Errorf("%w: %q has %d columns, %q has %d", ErrSchema, a.name, len(a.cols), b.name, len(b.cols))
	}
	for i := range a.cols {
		if a.cols[i] != b.cols[i] {
			return fmt.Errorf("%w: column %d is %q in %q but %q in %q", ErrSchema, i, a.cols[i], a.name, b.cols[i], b.name)
		}
	}
	return nil
}
