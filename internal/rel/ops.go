package rel

import (
	"fmt"
)

// Select returns a new table containing the rows for which pred is true.
func (t *Table) Select(pred func(Row) bool) *Table {
	out := MustNewTable(t.name, t.cols...)
	for _, r := range t.rows {
		if pred(Row{t: t, vals: r}) {
			out.rows = append(out.rows, r)
		}
	}
	return out
}

// Project returns a new table with only the given columns, in the given
// order. Duplicate rows are retained (use Distinct for set semantics).
func (t *Table) Project(cols ...string) (*Table, error) {
	idx := make([]int, len(cols))
	for k, c := range cols {
		j := t.ColIndex(c)
		if j < 0 {
			return nil, fmt.Errorf("%w: %q in table %q", ErrUnknownColumn, c, t.name)
		}
		idx[k] = j
	}
	out, err := NewTable(t.name, cols...)
	if err != nil {
		return nil, err
	}
	out.rows = make([][]Value, len(t.rows))
	for i, r := range t.rows {
		nr := make([]Value, len(idx))
		for k, j := range idx {
			nr[k] = r[j]
		}
		out.rows[i] = nr
	}
	return out, nil
}

// Distinct returns a new table with duplicate rows removed, preserving the
// first occurrence order.
func (t *Table) Distinct() *Table {
	out := MustNewTable(t.name, t.cols...)
	seen := make(map[string]struct{}, len(t.rows))
	for i, r := range t.rows {
		k := t.RowKey(i, nil)
		if _, dup := seen[k]; dup {
			continue
		}
		seen[k] = struct{}{}
		out.rows = append(out.rows, r)
	}
	return out
}

// Union returns the multiset union of t and o (UNION ALL). Schemas must have
// identical column lists.
func (t *Table) Union(o *Table) (*Table, error) {
	if err := sameSchema(t, o); err != nil {
		return nil, err
	}
	out := MustNewTable(t.name, t.cols...)
	out.rows = make([][]Value, 0, len(t.rows)+len(o.rows))
	out.rows = append(out.rows, t.rows...)
	out.rows = append(out.rows, o.rows...)
	return out, nil
}

// UnionDistinct returns the set union of t and o (SQL UNION).
func (t *Table) UnionDistinct(o *Table) (*Table, error) {
	u, err := t.Union(o)
	if err != nil {
		return nil, err
	}
	return u.Distinct(), nil
}

// Difference returns the rows of t that do not occur in o (set semantics).
func (t *Table) Difference(o *Table) (*Table, error) {
	if err := sameSchema(t, o); err != nil {
		return nil, err
	}
	drop := make(map[string]struct{}, len(o.rows))
	for i := range o.rows {
		drop[o.RowKey(i, nil)] = struct{}{}
	}
	out := MustNewTable(t.name, t.cols...)
	for i, r := range t.rows {
		if _, gone := drop[t.RowKey(i, nil)]; !gone {
			out.rows = append(out.rows, r)
		}
	}
	return out, nil
}

// Intersect returns the rows of t that also occur in o (set semantics).
func (t *Table) Intersect(o *Table) (*Table, error) {
	if err := sameSchema(t, o); err != nil {
		return nil, err
	}
	keep := make(map[string]struct{}, len(o.rows))
	for i := range o.rows {
		keep[o.RowKey(i, nil)] = struct{}{}
	}
	out := MustNewTable(t.name, t.cols...)
	for i, r := range t.rows {
		if _, ok := keep[t.RowKey(i, nil)]; ok {
			out.rows = append(out.rows, r)
		}
	}
	return out, nil
}

// Cross returns the cross product of t and o. Column names must not collide;
// use Rename first if they do. This is the operation the paper's constraint
// solver prunes: controller tables are cross products of column tables with
// non-satisfying rows removed.
func (t *Table) Cross(o *Table) (*Table, error) {
	cols := make([]string, 0, len(t.cols)+len(o.cols))
	cols = append(cols, t.cols...)
	cols = append(cols, o.cols...)
	out, err := NewTable(t.name+"_x_"+o.name, cols...)
	if err != nil {
		return nil, err
	}
	out.rows = make([][]Value, 0, len(t.rows)*len(o.rows))
	for _, a := range t.rows {
		for _, b := range o.rows {
			nr := make([]Value, 0, len(cols))
			nr = append(nr, a...)
			nr = append(nr, b...)
			out.rows = append(out.rows, nr)
		}
	}
	return out, nil
}

// CrossFiltered computes the cross product of t and o, keeping only rows for
// which keep returns true. keep receives the concatenated row. This fuses
// product and selection so pruning happens before materialization — the core
// of incremental table generation.
func (t *Table) CrossFiltered(o *Table, keep func(row []Value) bool) (*Table, error) {
	cols := make([]string, 0, len(t.cols)+len(o.cols))
	cols = append(cols, t.cols...)
	cols = append(cols, o.cols...)
	out, err := NewTable(t.name+"_x_"+o.name, cols...)
	if err != nil {
		return nil, err
	}
	buf := make([]Value, len(cols))
	for _, a := range t.rows {
		copy(buf, a)
		for _, b := range o.rows {
			copy(buf[len(a):], b)
			if keep(buf) {
				out.rows = append(out.rows, append([]Value(nil), buf...))
			}
		}
	}
	return out, nil
}

// JoinOn is a condition for EquiJoin: left column name equals right column
// name.
type JoinOn struct {
	Left, Right string
}

// EquiJoin returns the inner equi-join of t and o on the given column pairs,
// using a hash join on the right table. NULL keys never match (SQL
// semantics). Column names must not collide across the two tables.
func (t *Table) EquiJoin(o *Table, on []JoinOn) (*Table, error) {
	if len(on) == 0 {
		return t.Cross(o)
	}
	lidx := make([]int, len(on))
	ridx := make([]int, len(on))
	for k, c := range on {
		li := t.ColIndex(c.Left)
		if li < 0 {
			return nil, fmt.Errorf("%w: %q in table %q", ErrUnknownColumn, c.Left, t.name)
		}
		ri := o.ColIndex(c.Right)
		if ri < 0 {
			return nil, fmt.Errorf("%w: %q in table %q", ErrUnknownColumn, c.Right, o.name)
		}
		lidx[k], ridx[k] = li, ri
	}
	cols := make([]string, 0, len(t.cols)+len(o.cols))
	cols = append(cols, t.cols...)
	cols = append(cols, o.cols...)
	out, err := NewTable(t.name+"_j_"+o.name, cols...)
	if err != nil {
		return nil, err
	}
	// Build hash on the right side.
	buckets := make(map[string][]int, len(o.rows))
	for i := range o.rows {
		if rowHasNullAt(o.rows[i], ridx) {
			continue
		}
		k := o.RowKey(i, ridx)
		buckets[k] = append(buckets[k], i)
	}
	for i := range t.rows {
		if rowHasNullAt(t.rows[i], lidx) {
			continue
		}
		k := t.RowKey(i, lidx)
		for _, j := range buckets[k] {
			nr := make([]Value, 0, len(cols))
			nr = append(nr, t.rows[i]...)
			nr = append(nr, o.rows[j]...)
			out.rows = append(out.rows, nr)
		}
	}
	return out, nil
}

func rowHasNullAt(row []Value, idx []int) bool {
	for _, j := range idx {
		if row[j].IsNull() {
			return true
		}
	}
	return false
}

// Rename returns a copy of t with columns renamed according to mapping
// old→new. Unmapped columns keep their names.
func (t *Table) Rename(mapping map[string]string) (*Table, error) {
	cols := make([]string, len(t.cols))
	for i, c := range t.cols {
		if n, ok := mapping[c]; ok {
			cols[i] = n
		} else {
			cols[i] = c
		}
	}
	out, err := NewTable(t.name, cols...)
	if err != nil {
		return nil, err
	}
	out.rows = t.rows
	return out, nil
}

// Prefix returns a copy of t with every column name prefixed by p, a common
// pre-step before Cross/EquiJoin to avoid collisions.
func (t *Table) Prefix(p string) *Table {
	cols := make([]string, len(t.cols))
	for i, c := range t.cols {
		cols[i] = p + c
	}
	out := MustNewTable(t.name, cols...)
	out.rows = t.rows
	return out
}

// ContainsAll reports whether every row of o occurs in t (set semantics over
// the shared column order; schemas must match). This implements the paper's
// reconstruction check: the table rebuilt from implementation tables must
// contain the original debugged table.
func (t *Table) ContainsAll(o *Table) (bool, error) {
	if err := sameSchema(t, o); err != nil {
		return false, err
	}
	have := make(map[string]struct{}, len(t.rows))
	for i := range t.rows {
		have[t.RowKey(i, nil)] = struct{}{}
	}
	for i := range o.rows {
		if _, ok := have[o.RowKey(i, nil)]; !ok {
			return false, nil
		}
	}
	return true, nil
}

// EqualRows reports whether t and o hold exactly the same set of rows
// (duplicates collapsed), regardless of row order.
func (t *Table) EqualRows(o *Table) (bool, error) {
	ab, err := t.ContainsAll(o)
	if err != nil || !ab {
		return ab, err
	}
	return o.ContainsAll(t)
}

func sameSchema(a, b *Table) error {
	if len(a.cols) != len(b.cols) {
		return fmt.Errorf("%w: %q has %d columns, %q has %d", ErrSchema, a.name, len(a.cols), b.name, len(b.cols))
	}
	for i := range a.cols {
		if a.cols[i] != b.cols[i] {
			return fmt.Errorf("%w: column %d is %q in %q but %q in %q", ErrSchema, i, a.cols[i], a.name, b.cols[i], b.name)
		}
	}
	return nil
}
