package rel

import "fmt"

// Index is a hash index over one or more columns of a table, mapping each
// distinct key to the row numbers holding it. An index obtained from
// BuildIndex is a snapshot over the rows present at construction time; an
// index obtained from Table.IndexOn is persistent — the table maintains it
// across inserts and drops it on any other mutation. The deadlock analyzer
// and the sqlmini executor both rely on indexes to make equality lookups
// and pairwise composition near-linear. Keys are fixed-width dictionary
// code sequences (4 bytes per column), so building and probing hash
// integers rather than value strings.
type Index struct {
	t       *Table
	cols    []string
	colIdx  []int
	buckets map[string][]int
}

// BuildIndex constructs a hash index over the given columns. The column
// list must be non-empty and free of duplicates; errors name the offending
// column and table.
func BuildIndex(t *Table, cols ...string) (*Index, error) {
	if len(cols) == 0 {
		return nil, fmt.Errorf("rel: index on table %q needs at least one column", t.name)
	}
	idx := make([]int, len(cols))
	seen := make(map[string]struct{}, len(cols))
	for k, c := range cols {
		if _, dup := seen[c]; dup {
			return nil, fmt.Errorf("%w: %q indexed twice in table %q", ErrDupColumn, c, t.name)
		}
		seen[c] = struct{}{}
		j := t.ColIndex(c)
		if j < 0 {
			return nil, fmt.Errorf("%w: %q in table %q", ErrUnknownColumn, c, t.name)
		}
		idx[k] = j
	}
	ix := &Index{t: t, cols: append([]string(nil), cols...), colIdx: idx, buckets: make(map[string][]int)}
	kb := make([]byte, 0, 4*len(idx))
	for i := 0; i < t.nrows; i++ {
		kb = kb[:0]
		for _, j := range idx {
			kb = appendCodeKey(kb, t.data[j][i])
		}
		ix.buckets[string(kb)] = append(ix.buckets[string(kb)], i)
	}
	return ix, nil
}

// Columns returns the indexed column names.
func (ix *Index) Columns() []string { return append([]string(nil), ix.cols...) }

// Lookup returns the row numbers whose indexed columns equal vals, in
// insertion order. The number of values must match the indexed column count.
// A probe value absent from the dictionary cannot occur in any cell, so it
// short-circuits to no match without interning.
func (ix *Index) Lookup(vals ...Value) []int {
	if len(vals) != len(ix.colIdx) {
		return nil
	}
	kb := make([]byte, 0, 4*len(vals))
	for _, v := range vals {
		c, ok := ix.t.dict.LookupCode(v)
		if !ok {
			return nil
		}
		kb = appendCodeKey(kb, c)
	}
	return ix.buckets[string(kb)]
}

// LookupCodes is Lookup with the probe already dictionary-encoded; the
// executor's index nested-loop join probes with frame codes directly.
func (ix *Index) LookupCodes(codes ...uint32) []int {
	if len(codes) != len(ix.colIdx) {
		return nil
	}
	kb := make([]byte, 0, 4*len(codes))
	for _, c := range codes {
		kb = appendCodeKey(kb, c)
	}
	return ix.buckets[string(kb)]
}

// LookupRows returns Row accessors rather than indexes.
func (ix *Index) LookupRows(vals ...Value) []Row {
	rows := ix.Lookup(vals...)
	out := make([]Row, len(rows))
	for i, r := range rows {
		out[i] = ix.t.Row(r)
	}
	return out
}

// Distinct returns the number of distinct keys in the index — the
// cardinality estimate the query planner divides row counts by.
func (ix *Index) Distinct() int { return len(ix.buckets) }

// add appends row i (already present in the table) to the index, for
// incremental maintenance of Table.IndexOn caches on insert.
func (ix *Index) add(i int) {
	k := ix.t.RowKey(i, ix.colIdx)
	ix.buckets[k] = append(ix.buckets[k], i)
}

// extendTo clones the index for a derived table t whose first n rows are
// identical to the source's, then appends rows n..t.NumRows — the
// append-only fast path of Table.CarryIndexes. The column metadata is
// shared (immutable); the buckets are deep-copied so the source epoch's
// index stays frozen.
func (ix *Index) extendTo(t *Table, n int) *Index {
	nix := &Index{
		t:       t,
		cols:    ix.cols,
		colIdx:  ix.colIdx,
		buckets: make(map[string][]int, len(ix.buckets)),
	}
	for k, rows := range ix.buckets {
		nix.buckets[k] = append([]int(nil), rows...)
	}
	for i := n; i < t.nrows; i++ {
		nix.add(i)
	}
	return nix
}
