package rel

import "fmt"

// Index is a hash index over one or more columns of a table, mapping each
// distinct key to the row numbers holding it. An index is a snapshot: it is
// built over the rows present at construction time and is not maintained
// under mutation. The deadlock analyzer builds indexes over dependency-table
// assignment columns to make pairwise composition near-linear.
type Index struct {
	t       *Table
	cols    []string
	colIdx  []int
	buckets map[string][]int
}

// BuildIndex constructs a hash index over the given columns.
func BuildIndex(t *Table, cols ...string) (*Index, error) {
	idx := make([]int, len(cols))
	for k, c := range cols {
		j := t.ColIndex(c)
		if j < 0 {
			return nil, fmt.Errorf("%w: %q in table %q", ErrUnknownColumn, c, t.name)
		}
		idx[k] = j
	}
	ix := &Index{t: t, cols: append([]string(nil), cols...), colIdx: idx, buckets: make(map[string][]int)}
	for i := range t.rows {
		k := t.RowKey(i, idx)
		ix.buckets[k] = append(ix.buckets[k], i)
	}
	return ix, nil
}

// Columns returns the indexed column names.
func (ix *Index) Columns() []string { return append([]string(nil), ix.cols...) }

// Lookup returns the row numbers whose indexed columns equal vals, in
// insertion order. The number of values must match the indexed column count.
func (ix *Index) Lookup(vals ...Value) []int {
	if len(vals) != len(ix.colIdx) {
		return nil
	}
	return ix.buckets[keyOf(vals)]
}

// LookupRows returns Row accessors rather than indexes.
func (ix *Index) LookupRows(vals ...Value) []Row {
	rows := ix.Lookup(vals...)
	out := make([]Row, len(rows))
	for i, r := range rows {
		out[i] = ix.t.Row(r)
	}
	return out
}

// Distinct returns the number of distinct keys in the index.
func (ix *Index) Distinct() int { return len(ix.buckets) }

func keyOf(vals []Value) string {
	n := 0
	for _, v := range vals {
		n += len(v.Key()) + 1
	}
	b := make([]byte, 0, n)
	for _, v := range vals {
		b = append(b, v.Key()...)
		b = append(b, 0x1f)
	}
	return string(b)
}
