package rel

import (
	"sort"
	"sync/atomic"
)

// Catalog is an immutable, epoch-versioned set of named tables — one
// published version of the "central database" of the paper. A catalog is
// never mutated after Build: writers derive a CatalogBuilder from the
// current epoch, install copy-on-write table snapshots into it, and
// publish the built successor atomically through a CatalogRef. Readers
// load (pin) one catalog pointer for the duration of a statement and see
// a torn-free view no matter how many epochs writers publish meanwhile —
// the MVCC snapshot-isolation primitive under sqlmini's concurrent
// sessions and the coherdb server mode.
type Catalog struct {
	epoch     uint64
	schemaGen uint64
	tables    map[string]*Table
	names     []string // sorted; shared, read-only
	fp        uint64
}

// emptyCatalog is the epoch-0 root every CatalogRef starts from.
var emptyCatalog = func() *Catalog {
	c := &Catalog{tables: map[string]*Table{}}
	c.fp = c.fingerprint()
	return c
}()

// NewCatalog returns the empty epoch-0 catalog.
func NewCatalog() *Catalog { return emptyCatalog }

// Epoch returns the catalog's version number: 0 for the empty root, and
// one more than its base for every catalog built through Derive.
func (c *Catalog) Epoch() uint64 { return c.epoch }

// SchemaGen counts catalog shape changes along the epoch chain — a table
// created or dropped, or replaced with a different column list. Data-only
// epochs (DML, identically-shaped replacement) do not advance it; plan
// validity depends only on schemas, so cached plans key on this, not on
// the epoch.
func (c *Catalog) SchemaGen() uint64 { return c.schemaGen }

// Fingerprint identifies the catalog's schema shape for plan-cache
// keying: it folds the schema generation with every table's name and
// column list. Dropping and re-creating an identically-shaped table
// yields a different fingerprint (the generation moved), so a cached
// plan can never be served across a DDL boundary.
func (c *Catalog) Fingerprint() uint64 { return c.fp }

// Table returns the named table of this epoch. The returned table is a
// published snapshot: treat it as immutable.
func (c *Catalog) Table(name string) (*Table, bool) {
	t, ok := c.tables[name]
	return t, ok
}

// Names returns the sorted table names. The slice is shared: read-only.
func (c *Catalog) Names() []string { return c.names }

// Len returns the number of tables.
func (c *Catalog) Len() int { return len(c.tables) }

// fingerprint hashes the schema generation plus every (name, columns)
// pair, in sorted name order, with the shared FNV-1a helper.
func (c *Catalog) fingerprint() uint64 {
	var buf []byte
	for i := 0; i < 8; i++ {
		buf = append(buf, byte(c.schemaGen>>(8*i)))
	}
	for _, n := range c.names {
		buf = append(buf, n...)
		buf = append(buf, 0x1f)
		for _, col := range c.tables[n].ColumnsRef() {
			buf = append(buf, col...)
			buf = append(buf, 0x1e)
		}
	}
	return HashBytes(buf)
}

// Derive starts building the next epoch off this catalog.
func (c *Catalog) Derive() *CatalogBuilder {
	b := &CatalogBuilder{
		base:      c,
		tables:    make(map[string]*Table, len(c.tables)+1),
		schemaGen: c.schemaGen,
	}
	for n, t := range c.tables {
		b.tables[n] = t
	}
	return b
}

// SameSchema reports whether two tables have the same column list in the
// same order.
func SameSchema(a, b *Table) bool {
	if a.NumCols() != b.NumCols() {
		return false
	}
	for i, col := range a.ColumnsRef() {
		if b.ColIndex(col) != i {
			return false
		}
	}
	return true
}

// CatalogBuilder accumulates one epoch's worth of changes. It is not safe
// for concurrent use; writers serialize externally (sqlmini.DB's writer
// lock) and publish the Build result through a CatalogRef.
type CatalogBuilder struct {
	base      *Catalog
	tables    map[string]*Table
	schemaGen uint64
}

// Put installs (or replaces) a table under its own name. The schema
// generation advances only when the name is new or the column list
// changed; replacing a table with an identically-shaped revision — the
// pipeline does this on every protocol revision, and every DML statement
// does it per epoch — keeps every cached plan.
func (b *CatalogBuilder) Put(t *Table) {
	if old, ok := b.tables[t.Name()]; !ok || !SameSchema(old, t) {
		b.schemaGen++
	}
	b.tables[t.Name()] = t
}

// Drop removes the named table, reporting whether it existed.
func (b *CatalogBuilder) Drop(name string) bool {
	if _, ok := b.tables[name]; !ok {
		return false
	}
	delete(b.tables, name)
	b.schemaGen++
	return true
}

// BumpSchema forces a schema-generation advance without a table change —
// for catalog-adjacent invalidations that cached plans specialize on,
// such as (re)binding a SQL-callable function.
func (b *CatalogBuilder) BumpSchema() { b.schemaGen++ }

// Table returns the named table as the builder currently sees it.
func (b *CatalogBuilder) Table(name string) (*Table, bool) {
	t, ok := b.tables[name]
	return t, ok
}

// Build freezes the builder into the successor catalog: epoch base+1,
// sorted names, and a fresh schema fingerprint.
func (b *CatalogBuilder) Build() *Catalog {
	c := &Catalog{
		epoch:     b.base.epoch + 1,
		schemaGen: b.schemaGen,
		tables:    b.tables,
		names:     make([]string, 0, len(b.tables)),
	}
	for n := range b.tables {
		c.names = append(c.names, n)
	}
	sort.Strings(c.names)
	c.fp = c.fingerprint()
	b.tables = nil // the builder is spent; the catalog owns the map
	return c
}

// CatalogRef is the atomically published current catalog: readers Load
// (pin) an epoch wait-free, writers CompareAndSwap their built successor
// in. The zero value points at the empty epoch-0 catalog.
type CatalogRef struct {
	p atomic.Pointer[Catalog]
}

// Load returns the current catalog; never nil.
func (r *CatalogRef) Load() *Catalog {
	if c := r.p.Load(); c != nil {
		return c
	}
	return emptyCatalog
}

// Store publishes c unconditionally.
func (r *CatalogRef) Store(c *Catalog) { r.p.Store(c) }

// CompareAndSwap publishes next iff the current catalog is still old —
// the writer's epoch handshake. Writers that lost the race re-derive
// from the new current epoch and retry.
func (r *CatalogRef) CompareAndSwap(old, next *Catalog) bool {
	if r.p.CompareAndSwap(old, next) {
		return true
	}
	// The zero ref aliases emptyCatalog through Load; treat a first
	// publish over a nil pointer as swapping from the empty root.
	if old == emptyCatalog {
		return r.p.CompareAndSwap(nil, next)
	}
	return false
}
