package server

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"testing"
	"time"
)

// BenchmarkServerQPS measures server throughput under the workload the
// MVCC refactor targets: many concurrent reader sessions running
// invariant-style point queries over the line protocol while one
// writer session continuously publishes epochs with shared-table DML.
// ns/op is per-statement latency across all clients (1e9/ns-op = QPS);
// the p99-ns metric is the 99th-percentile statement latency, the
// number that regresses first if readers start waiting on the writer.
func BenchmarkServerQPS(b *testing.B) {
	db := newTestDB(b, 2)
	srv := New(Config{DB: db, Suite: testSuite()})
	if err := srv.Serve("127.0.0.1:0"); err != nil {
		b.Fatalf("serve: %v", err)
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = srv.Shutdown(ctx)
	}()

	// Background writer: publish epochs as fast as the write path allows,
	// trimming periodically so COW copies stay bounded.
	stop := make(chan struct{})
	var wwg sync.WaitGroup
	wwg.Add(1)
	go func() {
		defer wwg.Done()
		wc := dialClient(b, srv.Addr())
		defer wc.close()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			wc.cmd(b, fmt.Sprintf(`INSERT INTO w1 VALUES ('b%d', '1')`, i))
			if i%64 == 63 {
				wc.cmd(b, `DELETE FROM w1 WHERE v = '1'`)
			}
		}
	}()

	queries := []string{
		`SELECT k FROM D WHERE v = 'BAD'`,
		`SELECT k FROM D WHERE v = 'OVER'`,
		`SELECT v FROM D WHERE k = 'a'`,
	}
	var mu sync.Mutex
	var lat []time.Duration
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		c := dialClient(b, srv.Addr())
		defer c.close()
		local := make([]time.Duration, 0, 1024)
		i := 0
		for pb.Next() {
			start := time.Now()
			c.cmd(b, queries[i%len(queries)])
			local = append(local, time.Since(start))
			i++
		}
		mu.Lock()
		lat = append(lat, local...)
		mu.Unlock()
	})
	b.StopTimer()
	close(stop)
	wwg.Wait()

	if len(lat) > 0 {
		sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
		p99 := lat[len(lat)*99/100]
		b.ReportMetric(float64(p99.Nanoseconds()), "p99-ns")
	}
}
