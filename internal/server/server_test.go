package server

import (
	"bufio"
	"context"
	"fmt"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"coherdb/internal/check"
	"coherdb/internal/obs"
	"coherdb/internal/rel"
	"coherdb/internal/sqlmini"
)

// newTestDB builds a DB with a shared table D plus per-session scratch
// tables w1..wN.
func newTestDB(t testing.TB, nshared int) *sqlmini.DB {
	t.Helper()
	db := sqlmini.NewDB()
	script := `CREATE TABLE D (k, v); INSERT INTO D VALUES ('a', 'OK'), ('b', 'OK'), ('c', 'OK');`
	for i := 1; i <= nshared; i++ {
		script += fmt.Sprintf("CREATE TABLE w%d (k, v); INSERT INTO w%d VALUES ('seed', '0');", i, i)
	}
	if err := db.ExecScript(script); err != nil {
		t.Fatalf("seed: %v", err)
	}
	return db
}

// testSuite is a two-invariant suite over D, both analyzable so the
// incremental path can skip them when a delta leaves D untouched.
func testSuite() *check.Suite {
	return check.SuiteFrom([]check.Invariant{
		{Name: "no-bad", Desc: "no BAD rows", Ref: "test", SQL: "SELECT k FROM D WHERE v = 'BAD'"},
		{Name: "no-over", Desc: "no OVER rows", Ref: "test", SQL: "SELECT k FROM D WHERE v = 'OVER'"},
	})
}

// startServer runs a line-protocol server over db on a loopback port.
func startServer(t testing.TB, db *sqlmini.DB, cfg Config) *Server {
	t.Helper()
	cfg.DB = db
	if cfg.Suite == nil {
		cfg.Suite = testSuite()
	}
	srv := New(cfg)
	if err := srv.Serve("127.0.0.1:0"); err != nil {
		t.Fatalf("serve: %v", err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = srv.Shutdown(ctx)
	})
	return srv
}

// client is a line-protocol test client.
type client struct {
	conn net.Conn
	r    *bufio.Reader
}

// dialClient connects and consumes the greeting (which carries the
// nondeterministic session id, so it is not part of transcripts).
func dialClient(t testing.TB, addr string) *client {
	t.Helper()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	c := &client{conn: conn, r: bufio.NewReader(conn)}
	greet := c.response(t)
	if !strings.HasPrefix(greet, "ok coherdb session ") {
		conn.Close()
		t.Fatalf("greeting = %q", greet)
	}
	return c
}

// response reads one "."-terminated response.
func (c *client) response(t testing.TB) string {
	t.Helper()
	var sb strings.Builder
	for {
		line, err := c.r.ReadString('\n')
		if err != nil {
			t.Fatalf("read: %v (got %q)", err, sb.String())
		}
		if line == ".\n" {
			return sb.String()
		}
		sb.WriteString(line)
	}
}

// cmd sends one command and returns its response body.
func (c *client) cmd(t testing.TB, line string) string {
	t.Helper()
	if _, err := fmt.Fprintf(c.conn, "%s\n", line); err != nil {
		t.Fatalf("write: %v", err)
	}
	return c.response(t)
}

func (c *client) close() { c.conn.Close() }

// sessionScript is the mixed SELECT + DML + incremental-recheck workload
// session i runs: shadow the shared D, dirty it, watch the invariant
// fail, repair it, then touch only the session's own shared table and
// watch the suite skip. Every response is deterministic for a session
// in isolation, which is what TestServerDeterministicVerdicts leans on.
func sessionScript(i int) []string {
	w := fmt.Sprintf("w%d", i)
	return []string{
		`CREATE TABLE D AS SELECT * FROM D`,
		`\begin`,
		fmt.Sprintf(`INSERT INTO %s VALUES ('s%d', '1')`, w, i),
		fmt.Sprintf(`INSERT INTO D VALUES ('x%d', 'BAD')`, i),
		`\recheck`,
		`SELECT k FROM D WHERE v = 'BAD'`,
		`DELETE FROM D WHERE v = 'BAD'`,
		`\recheck`,
		fmt.Sprintf(`SELECT v FROM %s WHERE k = 's%d'`, w, i),
		fmt.Sprintf(`UPDATE %s SET v = '2' WHERE k = 's%d'`, w, i),
		fmt.Sprintf(`SELECT v FROM %s WHERE k = 's%d'`, w, i),
		`\recheck`,
	}
}

// runScript plays a script over one connection, concatenating the
// responses into a transcript.
func runScript(t testing.TB, addr string, script []string) string {
	c := dialClient(t, addr)
	defer c.close()
	var sb strings.Builder
	for _, line := range script {
		sb.WriteString(c.cmd(t, line))
		sb.WriteString(".\n")
	}
	c.cmd(t, `\quit`)
	return sb.String()
}

// TestServerDeterministicVerdicts is the acceptance check for the MVCC
// refactor: 8 concurrent sessions running mixed SELECT + DML +
// incremental re-checks produce transcripts byte-identical to the same
// scripts run serially, one session at a time, against an identically
// seeded database. Sessions only overlap on read access to shared state
// (each shadows D and owns its w<i>), so any cross-session bleed —
// a torn epoch, a leaked overlay, a recheck that saw another session's
// edits — shows up as a transcript diff.
func TestServerDeterministicVerdicts(t *testing.T) {
	const sessions = 8

	// Serial reference: fresh identically-seeded DB, one session at a time.
	serialSrv := startServer(t, newTestDB(t, sessions), Config{})
	serial := make([]string, sessions)
	for i := 0; i < sessions; i++ {
		serial[i] = runScript(t, serialSrv.Addr(), sessionScript(i+1))
	}

	// Concurrent run: all sessions at once against one server.
	srv := startServer(t, newTestDB(t, sessions), Config{})
	got := make([]string, sessions)
	var wg sync.WaitGroup
	for i := 0; i < sessions; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			got[i] = runScript(t, srv.Addr(), sessionScript(i+1))
		}(i)
	}
	wg.Wait()

	for i := 0; i < sessions; i++ {
		if got[i] != serial[i] {
			t.Errorf("session %d transcript diverged from serial run:\nconcurrent:\n%s\nserial:\n%s", i+1, got[i], serial[i])
		}
	}

	// Sanity: the transcripts actually exercised the incremental path.
	if !strings.Contains(serial[0], "VIOLATED no-bad: 1 rows") {
		t.Fatalf("expected a violation in the transcript:\n%s", serial[0])
	}
	if !strings.Contains(serial[0], "recheck: 0 rechecked, 2 skipped") {
		t.Fatalf("expected a fully skipped recheck in the transcript:\n%s", serial[0])
	}
}

// TestReadersDoNotBlockOnWriter proves reads never wait on the writer,
// without timing heuristics: a writer session is parked *inside* an
// INSERT (a registered UDF blocks while the single-writer lock is
// held), and a reader session must still complete a SELECT and observe
// the pre-writer epoch. Under the old RWMutex engine the SELECT would
// deadlock here, not merely slow down.
func TestReadersDoNotBlockOnWriter(t *testing.T) {
	db := newTestDB(t, 1)
	entered := make(chan struct{})
	release := make(chan struct{})
	var once sync.Once
	db.Register("gate", func(args []rel.Value) (rel.Value, error) {
		once.Do(func() { close(entered) })
		<-release
		return args[0], nil
	})
	srv := startServer(t, db, Config{})

	writer := dialClient(t, srv.Addr())
	defer writer.close()
	writerDone := make(chan string, 1)
	go func() {
		writerDone <- writer.cmd(t, `INSERT INTO w1 VALUES (gate('k'), '9')`)
	}()
	<-entered // writer now holds the write path, mid-statement
	epochBefore := db.Epoch()

	reader := dialClient(t, srv.Addr())
	defer reader.close()
	got := reader.cmd(t, `SELECT v FROM D WHERE k = 'a'`)
	if !strings.Contains(got, "OK") {
		t.Fatalf("reader result = %q", got)
	}
	if e := db.Epoch(); e != epochBefore {
		t.Fatalf("epoch advanced (%d -> %d) while writer was parked", epochBefore, e)
	}

	close(release)
	if res := <-writerDone; !strings.Contains(res, "ok (1 rows affected)") {
		t.Fatalf("writer result = %q", res)
	}
	if e := db.Epoch(); e <= epochBefore {
		t.Fatalf("writer publish did not advance the epoch (still %d)", e)
	}
}

// TestAdmissionBackpressure pins the two admission bounds: MaxSessions
// concurrent sessions, MaxWaiters queued, everyone else turned away
// with a busy error rather than queued without bound.
func TestAdmissionBackpressure(t *testing.T) {
	reg := obs.NewRegistry()
	srv := startServer(t, newTestDB(t, 1), Config{MaxSessions: 2, MaxWaiters: 1, Metrics: reg})

	c1 := dialClient(t, srv.Addr())
	defer c1.close()
	c2 := dialClient(t, srv.Addr())
	defer c2.close()

	// Third connection queues; wait until the server counts it.
	queued, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer queued.Close()
	deadline := time.Now().Add(5 * time.Second)
	for reg.Gauge("coherdb_server_queue_depth").Value() < 1 {
		if time.Now().After(deadline) {
			t.Fatal("third connection never queued")
		}
		time.Sleep(time.Millisecond)
	}

	// Fourth connection overflows the queue and is rejected immediately.
	busy, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer busy.Close()
	bc := &client{conn: busy, r: bufio.NewReader(busy)}
	if got := bc.response(t); !strings.Contains(got, "too many sessions") {
		t.Fatalf("overflow connection got %q, want busy error", got)
	}
	if reg.Counter("coherdb_server_rejected_total").Value() < 1 {
		t.Fatal("rejected counter not bumped")
	}

	// Freeing a slot admits the queued connection.
	c1.cmd(t, `\quit`)
	c1.close()
	qc := &client{conn: queued, r: bufio.NewReader(queued)}
	if got := qc.response(t); !strings.HasPrefix(got, "ok coherdb session ") {
		t.Fatalf("queued connection got %q, want greeting", got)
	}
}

// TestShutdownDrains checks the graceful half of Shutdown: an in-flight
// statement runs to completion (and its client hears a goodbye), while
// new connections are refused the moment draining starts.
func TestShutdownDrains(t *testing.T) {
	db := newTestDB(t, 1)
	entered := make(chan struct{})
	release := make(chan struct{})
	var once sync.Once
	db.Register("gate", func(args []rel.Value) (rel.Value, error) {
		once.Do(func() { close(entered) })
		<-release
		return args[0], nil
	})
	srv := startServer(t, db, Config{})

	c := dialClient(t, srv.Addr())
	defer c.close()
	type resp struct{ body, bye string }
	inflight := make(chan resp, 1)
	go func() {
		body := c.cmd(t, `SELECT k FROM D WHERE v = gate('OK')`)
		inflight <- resp{body, c.response(t)}
	}()
	<-entered

	done := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		done <- srv.Shutdown(ctx)
	}()

	// Shutdown must wait for the parked statement.
	select {
	case err := <-done:
		t.Fatalf("Shutdown returned %v with a statement in flight", err)
	case <-time.After(50 * time.Millisecond):
	}

	// New connections are refused while draining (listener is closed, or
	// the connection is answered with a draining error and closed).
	if conn, err := net.Dial("tcp", srv.Addr()); err == nil {
		rc := &client{conn: conn, r: bufio.NewReader(conn)}
		line, rerr := rc.r.ReadString('\n')
		if rerr == nil && !strings.Contains(line, "draining") {
			t.Fatalf("connection during drain got %q", line)
		}
		conn.Close()
	}

	close(release)
	r := <-inflight
	if !strings.Contains(r.body, "a") || !strings.Contains(r.body, "c") {
		t.Fatalf("in-flight statement result truncated: %q", r.body)
	}
	if !strings.Contains(r.bye, "bye draining") {
		t.Fatalf("drained client got %q, want goodbye", r.bye)
	}
	if err := <-done; err != nil {
		t.Fatalf("Shutdown = %v after drain", err)
	}
}

// TestSharedWritesVisibleAcrossSessions checks the other half of the
// MVCC contract: shared-table DML published by one session becomes
// visible to later statements of another session (each statement pins
// the *current* epoch, not the session's first).
func TestSharedWritesVisibleAcrossSessions(t *testing.T) {
	srv := startServer(t, newTestDB(t, 1), Config{})
	a := dialClient(t, srv.Addr())
	defer a.close()
	b := dialClient(t, srv.Addr())
	defer b.close()

	if got := a.cmd(t, `INSERT INTO w1 VALUES ('pub', '7')`); !strings.Contains(got, "ok (1 rows affected)") {
		t.Fatalf("insert: %q", got)
	}
	if got := b.cmd(t, `SELECT v FROM w1 WHERE k = 'pub'`); !strings.Contains(got, "7") {
		t.Fatalf("session b does not see published write: %q", got)
	}
	// But a shadow stays private: b shadows w1, a keeps seeing shared w1.
	if got := b.cmd(t, `CREATE TABLE w1 AS SELECT * FROM w1`); strings.Contains(got, "error") {
		t.Fatalf("shadow: %q", got)
	}
	if got := b.cmd(t, `DELETE FROM w1`); !strings.Contains(got, "rows affected") {
		t.Fatalf("shadow delete: %q", got)
	}
	if got := a.cmd(t, `SELECT v FROM w1 WHERE k = 'pub'`); !strings.Contains(got, "7") {
		t.Fatalf("session a lost shared rows to b's shadow: %q", got)
	}
}
