// Package server is coherdb's multi-session query server: a line
// protocol and an HTTP/JSON endpoint over one shared *sqlmini.DB. Each
// client gets its own sqlmini.Session, so concurrent clients read
// consistent MVCC epoch snapshots without blocking the single writer,
// shadow shared tables with session-local copies, and run per-session
// incremental invariant re-checks (\recheck) over delta Revision
// brackets — the paper's every-revision workflow, served.
//
// Admission is bounded twice: at most MaxSessions sessions run
// concurrently, and at most MaxWaiters connections queue for a slot;
// beyond that clients are turned away with a busy error (backpressure
// instead of unbounded queueing). Shutdown drains: the listeners stop,
// in-flight commands finish, idle connections are told "bye draining",
// and only after the context deadline are stragglers cut.
package server

import (
	"context"
	"errors"
	"fmt"
	"net"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"coherdb/internal/check"
	"coherdb/internal/obs"
	"coherdb/internal/sqlmini"
)

// Config wires a Server to a database and its observability plane.
type Config struct {
	// DB is the shared database every session runs over. Required.
	DB *sqlmini.DB
	// Suite, when set, backs the \recheck meta-command (and the HTTP
	// recheck op) with per-session incremental invariant checking.
	Suite *check.Suite
	// MaxSessions bounds concurrently admitted sessions (line-protocol
	// connections plus named HTTP sessions). Default 64.
	MaxSessions int
	// MaxWaiters bounds connections queued for a session slot before
	// the server answers "busy" instead. Default 16.
	MaxWaiters int
	// Workers bounds suite parallelism per \recheck; 0 uses the shared
	// pool's full size.
	Workers int
	// Tracer receives check.suite spans from rechecks; sql.stmt spans
	// flow through the DB's own tracer.
	Tracer obs.Tracer
	// Metrics, when set, accumulates coherdb_server_* gauges/counters.
	Metrics *obs.Registry
}

// Server runs the line protocol and HTTP listeners.
type Server struct {
	cfg Config

	ln      net.Listener
	httpLn  net.Listener
	httpSrv *http.Server

	sem     chan struct{}
	waiters atomic.Int64

	draining  chan struct{}
	drainOnce sync.Once
	wg        sync.WaitGroup

	connMu sync.Mutex
	conns  map[net.Conn]struct{}

	hsMu      sync.Mutex
	hsessions map[uint64]*httpSession
}

// ErrBusy is returned to clients rejected by admission control.
var ErrBusy = errors.New("server: too many sessions, try again later")

// ErrDraining is returned to clients arriving during shutdown.
var ErrDraining = errors.New("server: draining")

// New builds a server over cfg. Call Serve and/or ServeHTTP to listen.
func New(cfg Config) *Server {
	if cfg.MaxSessions <= 0 {
		cfg.MaxSessions = 64
	}
	if cfg.MaxWaiters <= 0 {
		cfg.MaxWaiters = 16
	}
	s := &Server{
		cfg:       cfg,
		sem:       make(chan struct{}, cfg.MaxSessions),
		draining:  make(chan struct{}),
		conns:     make(map[net.Conn]struct{}),
		hsessions: make(map[uint64]*httpSession),
	}
	if m := cfg.Metrics; m != nil {
		m.Help("coherdb_server_sessions_active", "Sessions currently admitted.")
		m.Gauge("coherdb_server_sessions_active").Set(0)
		m.Help("coherdb_server_queue_depth", "Connections waiting for a session slot.")
		m.Gauge("coherdb_server_queue_depth").Set(0)
		m.Help("coherdb_server_sessions_total", "Sessions admitted since start.")
		m.Help("coherdb_server_rejected_total", "Connections rejected by admission control (busy or draining).")
		m.Help("coherdb_server_statements_total", "Statements executed across all server sessions.")
		m.Help("coherdb_server_rechecks_total", "Incremental invariant re-checks served.")
	}
	return s
}

// Serve binds addr (e.g. ":7433" or "127.0.0.1:0") for the line
// protocol and accepts in a background goroutine until Shutdown.
func (s *Server) Serve(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	s.ln = ln
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		for {
			conn, err := ln.Accept()
			if err != nil {
				return // listener closed (Shutdown) or fatal
			}
			s.wg.Add(1)
			go s.handleConn(conn)
		}
	}()
	return nil
}

// Addr returns the line-protocol listener's bound address.
func (s *Server) Addr() string {
	if s.ln == nil {
		return ""
	}
	return s.ln.Addr().String()
}

// drainingNow reports whether Shutdown has begun.
func (s *Server) drainingNow() bool {
	select {
	case <-s.draining:
		return true
	default:
		return false
	}
}

// admit claims a session slot, queueing up to MaxWaiters deep. It
// returns ErrBusy past the queue bound and ErrDraining during
// shutdown; on nil the caller must release().
func (s *Server) admit() error {
	if s.drainingNow() {
		s.reject()
		return ErrDraining
	}
	select {
	case s.sem <- struct{}{}:
		s.admitted()
		return nil
	default:
	}
	if d := s.waiters.Add(1); d > int64(s.cfg.MaxWaiters) {
		s.waiters.Add(-1)
		s.reject()
		return ErrBusy
	}
	s.gauge("coherdb_server_queue_depth", s.waiters.Load())
	defer func() {
		s.gauge("coherdb_server_queue_depth", s.waiters.Add(-1))
	}()
	select {
	case s.sem <- struct{}{}:
		s.admitted()
		return nil
	case <-s.draining:
		s.reject()
		return ErrDraining
	}
}

// release returns a session slot claimed by admit.
func (s *Server) release() {
	<-s.sem
	s.gauge("coherdb_server_sessions_active", int64(len(s.sem)))
}

func (s *Server) admitted() {
	s.gauge("coherdb_server_sessions_active", int64(len(s.sem)))
	s.count("coherdb_server_sessions_total", 1)
}

func (s *Server) reject() { s.count("coherdb_server_rejected_total", 1) }

func (s *Server) gauge(name string, v int64) {
	if s.cfg.Metrics != nil {
		s.cfg.Metrics.Gauge(name).Set(v)
	}
}

func (s *Server) count(name string, n int64) {
	if s.cfg.Metrics != nil {
		s.cfg.Metrics.Counter(name).Add(n)
	}
}

// track registers a live connection so Shutdown can wake and, past the
// deadline, cut it.
func (s *Server) track(c net.Conn) {
	s.connMu.Lock()
	s.conns[c] = struct{}{}
	s.connMu.Unlock()
}

func (s *Server) untrack(c net.Conn) {
	s.connMu.Lock()
	delete(s.conns, c)
	s.connMu.Unlock()
}

// Shutdown drains the server: listeners close, queued connections are
// refused, idle line-protocol connections are woken to say goodbye, and
// in-flight commands run to completion. Past ctx's deadline remaining
// connections are force-closed and ctx.Err() is returned.
func (s *Server) Shutdown(ctx context.Context) error {
	s.drainOnce.Do(func() { close(s.draining) })
	if s.ln != nil {
		_ = s.ln.Close()
	}
	// Wake connections blocked in Read so their loops observe the drain.
	s.connMu.Lock()
	for c := range s.conns {
		_ = c.SetReadDeadline(time.Now())
	}
	s.connMu.Unlock()

	var httpErr error
	if s.httpSrv != nil {
		httpErr = s.httpSrv.Shutdown(ctx)
	}
	s.closeHTTPSessions()

	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return httpErr
	case <-ctx.Done():
		s.connMu.Lock()
		for c := range s.conns {
			_ = c.Close()
		}
		s.connMu.Unlock()
		<-done
		return ctx.Err()
	}
}

// sessionState is one client's protocol state: its sqlmini session plus
// the open revision bracket and previous results the incremental
// re-check loop carries between \recheck commands.
type sessionState struct {
	sess *sqlmini.Session
	rev  *sqlmini.Revision
	prev []check.Result
}

// recheckOpts builds the suite options for one \recheck.
func (s *Server) recheckOpts() check.Options {
	return check.Options{Workers: s.cfg.Workers, Tracer: s.cfg.Tracer, Metrics: s.cfg.Metrics}
}

// runRecheck commits the session's revision bracket and re-checks only
// the invariants the delta touched. Output is deliberately free of
// timings and delta contents: concurrent sessions see other sessions'
// epochs in their deltas, and printing only (rechecked, skipped,
// verdict) counts keeps a session's transcript byte-identical to the
// same script run serially.
func (s *Server) runRecheck(st *sessionState) (string, error) {
	if s.cfg.Suite == nil {
		return "", errors.New("server: no invariant suite configured")
	}
	if st.rev == nil {
		st.rev = st.sess.BeginRevision()
		st.prev = nil
	}
	d := st.rev.Commit()
	results := s.cfg.Suite.RunDelta(st.sess, st.prev, d, s.recheckOpts())
	st.prev = results
	s.count("coherdb_server_rechecks_total", 1)

	rechecked, skipped := 0, 0
	for _, r := range results {
		if r.Skipped {
			skipped++
		} else {
			rechecked++
		}
	}
	sum := check.Summarize(results)
	out := fmt.Sprintf("recheck: %d rechecked, %d skipped; %d passed, %d failed, %d errors\n",
		rechecked, skipped, sum.Passed, sum.Failed, sum.Errors)
	for _, r := range results {
		if r.Err != nil {
			out += fmt.Sprintf("ERROR %s: %v\n", r.Invariant.Name, r.Err)
			continue
		}
		if !r.Passed() {
			out += fmt.Sprintf("VIOLATED %s: %d rows\n", r.Invariant.Name, r.Violations.NumRows())
		}
	}
	return out, nil
}
