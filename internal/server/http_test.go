package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"testing"
	"time"
)

// startHTTP runs the JSON API over db on a loopback port.
func startHTTP(t testing.TB, cfg Config) *Server {
	t.Helper()
	if cfg.DB == nil {
		cfg.DB = newTestDB(t, 2)
	}
	if cfg.Suite == nil {
		cfg.Suite = testSuite()
	}
	srv := New(cfg)
	if err := srv.ServeHTTP("127.0.0.1:0"); err != nil {
		t.Fatalf("serve http: %v", err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = srv.Shutdown(ctx)
	})
	return srv
}

func post(t testing.TB, url string, body any, out any) int {
	t.Helper()
	raw, _ := json.Marshal(body)
	resp, err := http.Post(url, "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("decode %s: %v", url, err)
		}
	}
	return resp.StatusCode
}

func TestHTTPQueryAndSession(t *testing.T) {
	srv := startHTTP(t, Config{})
	base := "http://" + srv.HTTPAddr()

	// One-shot query against the shared catalog.
	var q queryResponse
	if code := post(t, base+"/v1/query", queryRequest{SQL: `SELECT v FROM D WHERE k = 'a'`}, &q); code != 200 {
		t.Fatalf("one-shot query: status %d", code)
	}
	if len(q.Rows) != 1 || q.Rows[0][0] != "OK" {
		t.Fatalf("one-shot rows = %v", q.Rows)
	}

	// Named session: shadow D, dirty it, recheck sees the violation;
	// the shared catalog stays clean.
	var sess struct {
		Session uint64 `json:"session"`
	}
	if code := post(t, base+"/v1/session", struct{}{}, &sess); code != 200 || sess.Session == 0 {
		t.Fatalf("session create: status %d, id %d", code, sess.Session)
	}
	for _, sql := range []string{
		`CREATE TABLE D AS SELECT * FROM D`,
		`INSERT INTO D VALUES ('x', 'BAD')`,
	} {
		if code := post(t, base+"/v1/query", queryRequest{SQL: sql, Session: sess.Session}, nil); code != 200 {
			t.Fatalf("%s: status %d", sql, code)
		}
	}
	var rc struct {
		Report string `json:"report"`
	}
	if code := post(t, base+"/v1/recheck", queryRequest{Session: sess.Session}, &rc); code != 200 {
		t.Fatalf("recheck: status %d", code)
	}
	if !strings.Contains(rc.Report, "VIOLATED no-bad: 1 rows") {
		t.Fatalf("recheck report = %q", rc.Report)
	}
	var shared queryResponse
	post(t, base+"/v1/query", queryRequest{SQL: `SELECT k FROM D WHERE v = 'BAD'`}, &shared)
	if len(shared.Rows) != 0 {
		t.Fatalf("session overlay leaked into shared catalog: %v", shared.Rows)
	}

	// Closing the session frees it; further use is a 404.
	req, _ := http.NewRequest(http.MethodDelete, fmt.Sprintf("%s/v1/session?id=%d", base, sess.Session), nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("DELETE session: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("DELETE session: status %d", resp.StatusCode)
	}
	if code := post(t, base+"/v1/recheck", queryRequest{Session: sess.Session}, nil); code != http.StatusNotFound {
		t.Fatalf("recheck on closed session: status %d, want 404", code)
	}

	// Bad SQL surfaces as a 400 with a JSON error.
	var e struct {
		Error string `json:"error"`
	}
	if code := post(t, base+"/v1/query", queryRequest{SQL: `SELEKT`}, &e); code != http.StatusBadRequest || e.Error == "" {
		t.Fatalf("bad SQL: status %d, error %q", code, e.Error)
	}
}

func TestHTTPSessionAdmission(t *testing.T) {
	srv := startHTTP(t, Config{DB: newTestDB(t, 1), MaxSessions: 1, MaxWaiters: 1})
	base := "http://" + srv.HTTPAddr()

	var first struct {
		Session uint64 `json:"session"`
	}
	if code := post(t, base+"/v1/session", struct{}{}, &first); code != 200 {
		t.Fatalf("first session: status %d", code)
	}

	// The slot is taken and one waiter is allowed; saturate it from a
	// goroutine, then the next request must be rejected with 503.
	waiterDone := make(chan int, 1)
	go func() {
		var w struct {
			Session uint64 `json:"session"`
		}
		raw, _ := json.Marshal(struct{}{})
		resp, err := http.Post(base+"/v1/session", "application/json", bytes.NewReader(raw))
		if err != nil {
			waiterDone <- 0
			return
		}
		defer resp.Body.Close()
		_ = json.NewDecoder(resp.Body).Decode(&w)
		waiterDone <- resp.StatusCode
	}()
	// Wait for the waiter to be queued before overflowing.
	deadline := time.Now().Add(5 * time.Second)
	for srv.waiters.Load() < 1 {
		if time.Now().After(deadline) {
			t.Fatal("waiter never queued")
		}
		time.Sleep(time.Millisecond)
	}
	if code := post(t, base+"/v1/session", struct{}{}, nil); code != http.StatusServiceUnavailable {
		t.Fatalf("overflow session: status %d, want 503", code)
	}

	// Freeing the slot admits the waiter.
	req, _ := http.NewRequest(http.MethodDelete, fmt.Sprintf("%s/v1/session?id=%d", base, first.Session), nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("DELETE session: %v", err)
	}
	resp.Body.Close()
	if code := <-waiterDone; code != 200 {
		t.Fatalf("queued session: status %d, want 200", code)
	}
}
