package server

import (
	"bufio"
	"fmt"
	"net"
	"strings"
)

// The line protocol: one command per line, one response per command,
// every response terminated by a lone "." sentinel line. Commands are
// SQL statements (SELECT/INSERT/DELETE/UPDATE/CREATE/DROP) or
// backslash meta-commands:
//
//	\begin    open (or re-open) the session's delta revision bracket
//	\recheck  commit the bracket and incrementally re-check invariants
//	\epoch    print the currently published catalog epoch
//	\quit     close the session
//
// The first response on a connection is the greeting ("ok coherdb"), or
// "error: ..." if admission control turned the connection away.

// maxLineLen bounds one protocol line (1 MiB), matching bufio defaults
// scaled up for wide INSERTs.
const maxLineLen = 1 << 20

// handleConn owns one line-protocol connection end to end.
func (s *Server) handleConn(conn net.Conn) {
	defer s.wg.Done()
	defer conn.Close()
	s.track(conn)
	defer s.untrack(conn)

	w := bufio.NewWriter(conn)
	if err := s.admit(); err != nil {
		fmt.Fprintf(w, "error: %v\n.\n", err)
		_ = w.Flush()
		return
	}
	defer s.release()

	sess := s.cfg.DB.NewSession()
	defer sess.Close()
	st := &sessionState{sess: sess}

	fmt.Fprintf(w, "ok coherdb session %d\n.\n", sess.ID())
	if err := w.Flush(); err != nil {
		return
	}

	sc := bufio.NewScanner(conn)
	sc.Buffer(make([]byte, 0, 4096), maxLineLen)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "--") {
			continue
		}
		if line == `\quit` {
			fmt.Fprint(w, "bye\n.\n")
			_ = w.Flush()
			return
		}
		s.runCommand(w, st, line)
		fmt.Fprint(w, ".\n")
		if err := w.Flush(); err != nil {
			return
		}
		if s.drainingNow() {
			fmt.Fprint(w, "bye draining\n.\n")
			_ = w.Flush()
			return
		}
	}
	// Read failed: client went away, or Shutdown woke us via a read
	// deadline. Say goodbye on the drain path; otherwise just close.
	if s.drainingNow() {
		fmt.Fprint(w, "bye draining\n.\n")
		_ = w.Flush()
	}
}

// runCommand executes one protocol line and writes its response body
// (the caller appends the "." sentinel).
func (s *Server) runCommand(w *bufio.Writer, st *sessionState, line string) {
	switch {
	case line == `\begin`:
		st.rev = st.sess.BeginRevision()
		st.prev = nil
		fmt.Fprint(w, "ok begin\n")
	case line == `\recheck`:
		out, err := s.runRecheck(st)
		if err != nil {
			fmt.Fprintf(w, "error: %v\n", err)
			return
		}
		fmt.Fprint(w, out)
	case line == `\epoch`:
		fmt.Fprintf(w, "epoch %d\n", s.cfg.DB.Epoch())
	case strings.HasPrefix(line, `\`):
		fmt.Fprintf(w, "error: unknown command %s\n", line)
	default:
		res, err := st.sess.Exec(line)
		if err != nil {
			fmt.Fprintf(w, "error: %v\n", err)
			return
		}
		s.count("coherdb_server_statements_total", 1)
		if res.Table != nil {
			_ = res.Table.Write(w)
			return
		}
		fmt.Fprintf(w, "ok (%d rows affected)\n", res.Affected)
	}
}
