package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"strconv"
	"sync"
	"time"

	"coherdb/internal/sqlmini"
)

// errMethod rejects non-POST/DELETE verbs on the /v1 endpoints.
var errMethod = errors.New("server: method not allowed")

// errNoSession reports an unknown HTTP session id.
func errNoSession(id uint64) error { return fmt.Errorf("server: no such session %d", id) }

// The HTTP/JSON plane mirrors the line protocol:
//
//	POST   /v1/session          admit a named session → {"session": id}
//	DELETE /v1/session?id=N     close it, freeing the slot
//	POST   /v1/query            {"sql": "...", "session": N?} → result
//	POST   /v1/recheck          {"session": N} → incremental re-check
//
// A query without a session runs one-shot against the shared DB (its
// own pinned epoch, no overlay); with one, it runs inside that
// session's overlay view, serialized per session.

// httpSession is one named HTTP session; mu serializes its commands
// (HTTP clients may pipeline requests on many connections).
type httpSession struct {
	id uint64
	mu sync.Mutex
	st *sessionState
}

// queryRequest is the /v1/query and /v1/recheck body.
type queryRequest struct {
	SQL     string `json:"sql"`
	Session uint64 `json:"session,omitempty"`
}

// queryResponse is the /v1/query result wire form.
type queryResponse struct {
	Columns  []string   `json:"columns,omitempty"`
	Rows     [][]string `json:"rows,omitempty"`
	Affected int        `json:"affected"`
	Epoch    uint64     `json:"epoch"`
}

// ServeHTTP binds addr for the JSON API and serves in a background
// goroutine until Shutdown.
func (s *Server) ServeHTTP(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	s.httpLn = ln
	s.httpSrv = &http.Server{Handler: s.Handler(), ReadHeaderTimeout: 5 * time.Second}
	go func() { _ = s.httpSrv.Serve(ln) }()
	return nil
}

// HTTPAddr returns the JSON API listener's bound address.
func (s *Server) HTTPAddr() string {
	if s.httpLn == nil {
		return ""
	}
	return s.httpLn.Addr().String()
}

// Handler builds the /v1 mux (exported so embedders can mount it on an
// existing diagnostics server).
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/session", s.handleSession)
	mux.HandleFunc("/v1/query", s.handleQuery)
	mux.HandleFunc("/v1/recheck", s.handleRecheck)
	return mux
}

func httpError(w http.ResponseWriter, code int, err error) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(struct {
		Error string `json:"error"`
	}{err.Error()})
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	_ = json.NewEncoder(w).Encode(v)
}

func (s *Server) handleSession(w http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodPost:
		if err := s.admit(); err != nil {
			code := http.StatusServiceUnavailable
			httpError(w, code, err)
			return
		}
		hs := &httpSession{st: &sessionState{sess: s.cfg.DB.NewSession()}}
		hs.id = hs.st.sess.ID()
		s.hsMu.Lock()
		s.hsessions[hs.id] = hs
		s.hsMu.Unlock()
		writeJSON(w, struct {
			Session uint64 `json:"session"`
		}{hs.id})
	case http.MethodDelete:
		id, _ := strconv.ParseUint(r.URL.Query().Get("id"), 10, 64)
		s.hsMu.Lock()
		hs, ok := s.hsessions[id]
		delete(s.hsessions, id)
		s.hsMu.Unlock()
		if !ok {
			httpError(w, http.StatusNotFound, errNoSession(id))
			return
		}
		hs.mu.Lock()
		hs.st.sess.Close()
		hs.mu.Unlock()
		s.release()
		writeJSON(w, struct {
			Closed uint64 `json:"closed"`
		}{id})
	default:
		httpError(w, http.StatusMethodNotAllowed, errMethod)
	}
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	req, ok := decodeRequest(w, r)
	if !ok {
		return
	}
	var (
		out *sqlmini.Result
		err error
	)
	if req.Session == 0 {
		out, err = s.cfg.DB.Exec(req.SQL)
	} else {
		var hs *httpSession
		hs, err = s.httpSessionByID(req.Session)
		if err != nil {
			httpError(w, http.StatusNotFound, err)
			return
		}
		hs.mu.Lock()
		out, err = hs.st.sess.Exec(req.SQL)
		hs.mu.Unlock()
	}
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	res, aff := out.Table, out.Affected
	s.count("coherdb_server_statements_total", 1)
	resp := queryResponse{Affected: aff, Epoch: s.cfg.DB.Epoch()}
	if res != nil {
		resp.Columns = res.Columns()
		resp.Rows = make([][]string, res.NumRows())
		for i := 0; i < res.NumRows(); i++ {
			row := make([]string, len(resp.Columns))
			for j, c := range resp.Columns {
				row[j] = res.Get(i, c).String()
			}
			resp.Rows[i] = row
		}
		resp.Affected = res.NumRows()
	}
	writeJSON(w, resp)
}

func (s *Server) handleRecheck(w http.ResponseWriter, r *http.Request) {
	req, ok := decodeRequest(w, r)
	if !ok {
		return
	}
	hs, err := s.httpSessionByID(req.Session)
	if err != nil {
		httpError(w, http.StatusNotFound, err)
		return
	}
	hs.mu.Lock()
	out, rerr := s.runRecheck(hs.st)
	hs.mu.Unlock()
	if rerr != nil {
		httpError(w, http.StatusBadRequest, rerr)
		return
	}
	writeJSON(w, struct {
		Report string `json:"report"`
	}{out})
}

func decodeRequest(w http.ResponseWriter, r *http.Request) (queryRequest, bool) {
	var req queryRequest
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, errMethod)
		return req, false
	}
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, err)
		return req, false
	}
	return req, true
}

func (s *Server) httpSessionByID(id uint64) (*httpSession, error) {
	s.hsMu.Lock()
	hs, ok := s.hsessions[id]
	s.hsMu.Unlock()
	if !ok {
		return nil, errNoSession(id)
	}
	return hs, nil
}

// closeHTTPSessions closes named HTTP sessions during Shutdown,
// waiting for each session's in-flight command.
func (s *Server) closeHTTPSessions() {
	s.hsMu.Lock()
	all := make([]*httpSession, 0, len(s.hsessions))
	for id, hs := range s.hsessions {
		all = append(all, hs)
		delete(s.hsessions, id)
	}
	s.hsMu.Unlock()
	for _, hs := range all {
		hs.mu.Lock()
		hs.st.sess.Close()
		hs.mu.Unlock()
		s.release()
	}
}
