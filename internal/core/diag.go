package core

import (
	"context"
	"fmt"
	"io"
	"os"

	"coherdb/internal/obs"
	"coherdb/internal/obs/obshttp"
	"coherdb/internal/pool"
	"coherdb/internal/rel"
	"coherdb/internal/segment"
)

// DiagConfig selects the observability surfaces a command turns on; every
// cmd exposes these as the -trace, -metrics, -listen and -trace-out flags.
type DiagConfig struct {
	// Trace dumps finished spans as JSON lines to stderr at Close.
	Trace bool
	// Metrics writes Prometheus-style metrics to stdout at Close.
	Metrics bool
	// Listen, when non-empty, serves the live diagnostics plane (metrics,
	// healthz, pprof, traces, queries) on this address for the process's
	// lifetime.
	Listen string
	// TraceOut, when non-empty, writes the span tree as a Chrome
	// trace_event JSON file (loadable in Perfetto) at Close.
	TraceOut string
}

// enabled reports whether any surface is on; StartDiag returns a no-op
// Diag otherwise, so commands can wire it unconditionally.
func (c DiagConfig) enabled() bool {
	return c.Trace || c.Metrics || c.Listen != "" || c.TraceOut != ""
}

// Diag bundles a command's observability state: one span collector, one
// metrics registry and one query log feed every enabled surface, so the
// exported trace, the /metrics page and the stderr dump all agree.
type Diag struct {
	// Collector receives finished spans; nil when no tracing surface is on.
	Collector *obs.Collector
	// Tracer is the Collector as a Tracer (nil interface when off), ready
	// to pass to Pipeline.Observe and friends.
	Tracer obs.Tracer
	// Registry receives metrics; nil when no metrics surface is on.
	Registry *obs.Registry
	// QueryLog tracks in-flight and slow statements for /queries; nil
	// unless a server is listening.
	QueryLog *obs.QueryLog

	cfg     DiagConfig
	server  *obshttp.Server
	refresh []func()
}

// StartDiag builds the command's observability state and, under
// cfg.Listen, starts the diagnostics server. The returned Diag is never
// nil; Close flushes every enabled surface.
func StartDiag(cfg DiagConfig) (*Diag, error) {
	d := &Diag{cfg: cfg}
	if !cfg.enabled() {
		return d, nil
	}
	if cfg.Trace || cfg.TraceOut != "" || cfg.Listen != "" {
		d.Collector = obs.NewCollector(0)
		d.Tracer = d.Collector
	}
	if cfg.Metrics || cfg.Listen != "" {
		d.Registry = obs.Default
		d.refresh = append(d.refresh, rel.PublishDictMetrics(d.Registry))
		d.refresh = append(d.refresh, segment.PublishMetrics(d.Registry))
	}
	// The shared worker pool reports into the same collector and registry:
	// its per-worker lane spans are what give the exported trace one
	// timeline per worker.
	pool.Shared().SetTracer(d.Tracer)
	pool.Shared().SetMetrics(d.Registry)
	if cfg.Listen != "" {
		d.QueryLog = obs.NewQueryLog(0, 0)
		srv, err := obshttp.Serve(cfg.Listen, obshttp.Options{
			Registry:  d.Registry,
			Collector: d.Collector,
			QueryLog:  d.QueryLog,
			OnScrape:  d.refresh,
		})
		if err != nil {
			return nil, fmt.Errorf("diagnostics server: %w", err)
		}
		d.server = srv
		fmt.Fprintf(os.Stderr, "diagnostics on http://%s/ (metrics, healthz, debug/pprof, traces, queries)\n", srv.Addr())
	}
	return d, nil
}

// Attach wires the pipeline (and its database) to the diagnostics state.
func (d *Diag) Attach(p *Pipeline) {
	p.Observe(d.Tracer, d.Registry)
	p.DB.SetQueryLog(d.QueryLog)
}

// Shutdown gracefully drains the diagnostics server, if one is running:
// new connections are refused, in-flight scrapes finish, bounded by ctx.
// The SIGINT/SIGTERM paths call this before Close so a final /metrics
// pull is never cut mid-body; Close's server.Close afterwards is a no-op.
func (d *Diag) Shutdown(ctx context.Context) error {
	if d.server == nil {
		return nil
	}
	return d.server.Shutdown(ctx)
}

// Close flushes every enabled surface: the JSONL span dump to stderr
// (-trace), the Chrome trace file (-trace-out), the metrics text to stdout
// (-metrics), then stops the server. Safe to call on a no-op Diag.
func (d *Diag) Close() {
	d.CloseTo(os.Stdout, os.Stderr)
}

// CloseTo is Close with explicit metrics and trace destinations, for
// tests.
func (d *Diag) CloseTo(metricsW, traceW io.Writer) {
	if d.Collector != nil && d.cfg.Trace {
		_ = d.Collector.WriteJSONL(traceW)
	}
	if d.Collector != nil && d.cfg.TraceOut != "" {
		if err := obs.WriteChromeTraceFile(d.cfg.TraceOut, d.Collector.Spans()); err != nil {
			fmt.Fprintln(os.Stderr, "trace-out:", err)
		}
	}
	if d.Registry != nil && d.cfg.Metrics {
		for _, f := range d.refresh {
			f()
		}
		_ = d.Registry.WriteMetrics(metricsW)
	}
	if d.server != nil {
		_ = d.server.Close()
	}
	pool.Shared().SetTracer(nil)
	pool.Shared().SetMetrics(nil)
}
