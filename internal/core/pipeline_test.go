package core

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"coherdb/internal/protocol"
	"coherdb/internal/rel"
)

// The full pipeline is expensive; run it once and share.
var (
	runOnce sync.Once
	runVal  *Pipeline
	runErr  error
)

func fullRun(t testing.TB) *Pipeline {
	t.Helper()
	runOnce.Do(func() {
		runVal, runErr = Run(Options{})
	})
	if runErr != nil {
		t.Fatal(runErr)
	}
	return runVal
}

func TestFullPipeline(t *testing.T) {
	p := fullRun(t)
	r := p.Report
	if len(r.GenStats) != 8 {
		t.Fatalf("generated %d tables, want 8", len(r.GenStats))
	}
	if r.InvariantSummary.Failed != 0 || r.InvariantSummary.Passed < 45 {
		t.Fatalf("invariants: %s", r.InvariantSummary)
	}
	if len(r.AssignmentOrder) != 3 {
		t.Fatalf("assignments analyzed: %v", r.AssignmentOrder)
	}
	if !r.Deadlock[protocol.AssignInitial].Deadlocked() {
		t.Fatal("initial assignment should deadlock")
	}
	if !r.Deadlock[protocol.AssignVC4].Deadlocked() {
		t.Fatal("vc4 assignment should deadlock")
	}
	if r.Deadlock[protocol.AssignFixed].Deadlocked() {
		t.Fatal("fixed assignment should be clean")
	}
	if r.Mapping == nil || len(r.Mapping.Tables) != 9 {
		t.Fatal("mapping incomplete")
	}
	for _, phase := range []string{"generate", "invariants", "deadlock", "mapping"} {
		if r.Elapsed[phase] <= 0 {
			t.Fatalf("phase %s not timed", phase)
		}
	}
}

func TestControllerTablesOrder(t *testing.T) {
	p := fullRun(t)
	tables, err := p.ControllerTables()
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != 8 || tables[0].Name() != protocol.DirectoryTable {
		t.Fatalf("tables = %d, first = %s", len(tables), tables[0].Name())
	}
}

func TestSummarize(t *testing.T) {
	p := fullRun(t)
	var sb strings.Builder
	p.Summarize(&sb)
	out := sb.String()
	for _, want := range []string{"table generation", "invariants", "deadlock analysis", "hardware mapping", "cycle:"} {
		if !strings.Contains(out, want) {
			t.Errorf("summary missing %q", want)
		}
	}
}

func TestWriteTables(t *testing.T) {
	p := fullRun(t)
	dir := t.TempDir()
	if err := p.WriteTables(dir); err != nil {
		t.Fatal(err)
	}
	// D must round-trip through its CSV dump.
	f, err := os.Open(filepath.Join(dir, "D.csv"))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	got, err := rel.ReadCSV("D", f)
	if err != nil {
		t.Fatal(err)
	}
	d := p.DB.MustTable("D")
	eq, err := got.EqualRows(d)
	if err != nil || !eq {
		t.Fatalf("CSV round trip: eq=%v err=%v", eq, err)
	}
}

func TestPhaseErrors(t *testing.T) {
	p := New()
	if err := p.CheckDeadlocks(nil, 0); err == nil {
		t.Fatal("deadlock phase before generation must error")
	}
	if p.Report.Elapsed["deadlock"] <= 0 {
		t.Fatal("failed phase must still record its elapsed time")
	}
	if err := p.MapToHardware(); err == nil {
		t.Fatal("mapping before generation must error")
	}
	if _, err := p.ControllerTables(); err == nil {
		t.Fatal("tables before generation must error")
	}
}

func TestInvariantFailureSurfaces(t *testing.T) {
	// Corrupt D after generation: the pipeline invariant phase must fail.
	p := New()
	if err := p.Generate(); err != nil {
		t.Fatal(err)
	}
	d := p.DB.MustTable("D")
	bad := d.Clone()
	for i := 0; i < bad.NumRows(); i++ {
		if bad.Get(i, "locmsg").Str() == "retry" {
			if err := bad.Set(i, "locmsg", rel.Null()); err != nil {
				t.Fatal(err)
			}
			break
		}
	}
	p.DB.PutTable(bad)
	err := p.CheckInvariants(0)
	if !errors.Is(err, ErrInvariantsFailed) {
		t.Fatalf("err = %v, want ErrInvariantsFailed", err)
	}
}

func TestRunStopsAtFailingPhase(t *testing.T) {
	// A run restricted to the deadlocky assignment must fail with
	// ErrStillDeadlocked.
	_, err := Run(Options{
		SkipInvariants: true,
		SkipMapping:    true,
		Assignments:    []string{protocol.AssignVC4},
	})
	if !errors.Is(err, ErrStillDeadlocked) {
		t.Fatalf("err = %v, want ErrStillDeadlocked", err)
	}
}
