// Package core assembles the paper's methodology into one pipeline — the
// "push-button manner" of §1: from a database input of table schemas, SQL
// column constraints and static checks, it (1) generates the eight
// controller tables with the incremental constraint solver, (2) statically
// checks the ~50 protocol invariants and the virtual-channel deadlock
// freedom of a sequence of channel assignments, and (3) maps the debugged
// directory table onto the nine hardware implementation tables, verifying
// the mapping by reconstruction. The output is a database of debugged
// tables plus a report of everything that was established.
package core

import (
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"time"

	"coherdb/internal/check"
	"coherdb/internal/constraint"
	"coherdb/internal/deadlock"
	"coherdb/internal/hwmap"
	"coherdb/internal/obs"
	"coherdb/internal/protocol"
	"coherdb/internal/rel"
	"coherdb/internal/sqlmini"
)

// Errors reported by the pipeline.
var (
	ErrInvariantsFailed = errors.New("core: protocol invariants violated")
	ErrStillDeadlocked  = errors.New("core: final channel assignment still has cycles")
)

// Options configures a pipeline run.
type Options struct {
	// Assignments names the §4.2 channel-assignment sequence to analyze;
	// nil means the full initial4 -> vc4 -> fixed story. The last entry
	// is the assignment that must be deadlock free.
	Assignments []string
	// SkipDeadlock, SkipInvariants and SkipMapping trim phases.
	SkipDeadlock   bool
	SkipInvariants bool
	SkipMapping    bool
	// Workers bounds parallelism in the phases that support it.
	Workers int
	// Tracer, when set, receives pipeline phase spans plus the spans of
	// every instrumented layer below (SQL statements, solver, checks,
	// deadlock analyses).
	Tracer obs.Tracer
	// Metrics, when set, accumulates the coherdb_* instrument families of
	// every phase, renderable with obs.Registry.WriteMetrics.
	Metrics *obs.Registry
}

// Report aggregates the pipeline outcome.
type Report struct {
	// GenStats holds per-controller solver statistics.
	GenStats map[string]constraint.Stats
	// Invariants holds the static check results, in suite order.
	Invariants []check.Result
	// InvariantSummary aggregates them.
	InvariantSummary check.Summary
	// Deadlock maps assignment name to its analysis report.
	Deadlock map[string]*deadlock.Report
	// AssignmentOrder is the sequence analyzed.
	AssignmentOrder []string
	// Mapping is the §5 hardware mapping of D.
	Mapping *hwmap.Mapping
	// ImplChecks holds the §5 implementation-table check results.
	ImplChecks []check.Result
	// Elapsed breaks down phase times.
	Elapsed map[string]time.Duration
}

// Pipeline owns the protocol database across phases.
type Pipeline struct {
	DB     *sqlmini.DB
	Report *Report
	// Workers bounds parallelism in the phases that support it.
	Workers int
	// Tracer and Metrics observe every phase; install them with Observe
	// so the database's statement tracer is wired too.
	Tracer  obs.Tracer
	Metrics *obs.Registry

	// partitioner caches the §5 hardware mapping across MapToHardware
	// calls, keyed on D's pointer and revision.
	partitioner hwmap.Partitioner
}

// New creates a pipeline with an empty database.
func New() *Pipeline {
	return &Pipeline{
		DB: sqlmini.NewDB(),
		Report: &Report{
			GenStats: map[string]constraint.Stats{},
			Deadlock: map[string]*deadlock.Report{},
			Elapsed:  map[string]time.Duration{},
		},
	}
}

// SetWorkers bounds parallelism across the pipeline: phase-level fan-out
// (solver goals, invariant queries, composition jobs) and the database's
// within-query morsel parallelism share the same bound. 0 means the
// shared pool's full size.
func (p *Pipeline) SetWorkers(n int) {
	p.Workers = n
	p.DB.SetWorkers(n)
}

// Observe installs a tracer and metrics registry on the pipeline and on
// its database's statement executor, which then also exports the
// coherdb_sql_* counters (statements, plan-cache hits, index usage).
// Either may be nil.
func (p *Pipeline) Observe(t obs.Tracer, m *obs.Registry) {
	p.Tracer, p.Metrics = t, m
	p.DB.SetTracer(t)
	p.DB.SetMetrics(m)
}

// phase starts timing a pipeline phase. The returned func must be
// deferred: it records the phase's Elapsed even when the phase fails,
// finishes the phase span, and observes the phase-duration histogram.
func (p *Pipeline) phase(name string) func() {
	start := time.Now()
	span := obs.StartSpan(p.Tracer, "pipeline."+name)
	return func() {
		d := time.Since(start)
		p.Report.Elapsed[name] = d
		span.Finish()
		if p.Metrics != nil {
			p.Metrics.Help("coherdb_phase_duration_seconds", "Wall time of each pipeline phase.")
			p.Metrics.Histogram("coherdb_phase_duration_seconds", nil, obs.L("phase", name)).ObserveDuration(d)
		}
	}
}

// Run executes the full methodology and returns the report. The pipeline
// fails (with a partial report) if an invariant is violated, the final
// assignment still has cycles, or the mapping cannot be verified.
func Run(opts Options) (*Pipeline, error) {
	p := New()
	p.SetWorkers(opts.Workers)
	p.Observe(opts.Tracer, opts.Metrics)
	if err := p.Generate(); err != nil {
		return p, err
	}
	if !opts.SkipInvariants {
		if err := p.CheckInvariants(opts.Workers); err != nil {
			return p, err
		}
	}
	if !opts.SkipDeadlock {
		if err := p.CheckDeadlocks(opts.Assignments, opts.Workers); err != nil {
			return p, err
		}
	}
	if !opts.SkipMapping {
		if err := p.MapToHardware(); err != nil {
			return p, err
		}
	}
	return p, nil
}

// Generate builds all eight controller tables into the database.
func (p *Pipeline) Generate() error {
	defer p.phase("generate")()
	stats, err := protocol.GenerateAllOpts(p.DB, constraint.Options{
		Workers: p.Workers,
		Tracer:  p.Tracer,
		Metrics: p.Metrics,
	})
	if err != nil {
		return err
	}
	p.Report.GenStats = stats
	return nil
}

// CheckInvariants runs the ~50-invariant static suite.
func (p *Pipeline) CheckInvariants(workers int) error {
	defer p.phase("invariants")()
	results := check.ProtocolSuite().Run(p.DB, check.Options{Workers: workers, Tracer: p.Tracer, Metrics: p.Metrics})
	p.Report.Invariants = results
	p.Report.InvariantSummary = check.Summarize(results)
	if p.Report.InvariantSummary.Failed > 0 || p.Report.InvariantSummary.Errors > 0 {
		return fmt.Errorf("%w: %s", ErrInvariantsFailed, p.Report.InvariantSummary)
	}
	return nil
}

// CheckDeadlocks analyzes the channel-assignment sequence; the last
// assignment must be cycle free. workers bounds composition parallelism
// (0 means the analyzer's default).
func (p *Pipeline) CheckDeadlocks(order []string, workers int) error {
	defer p.phase("deadlock")()
	if len(order) == 0 {
		order = protocol.AssignmentNames()
	}
	p.Report.AssignmentOrder = order
	tables, err := p.ControllerTables()
	if err != nil {
		return err
	}
	assignments := map[string]*rel.Table{}
	for _, name := range order {
		v, err := protocol.BuildAssignment(name)
		if err != nil {
			return err
		}
		assignments[name] = v
	}
	dopts := deadlock.DefaultOptions()
	dopts.Workers = workers
	dopts.Tracer = p.Tracer
	dopts.Metrics = p.Metrics
	reports, err := deadlock.AnalyzeStory(tables, assignments, order, dopts)
	if err != nil {
		return err
	}
	p.Report.Deadlock = reports
	final := reports[order[len(order)-1]]
	if final.Deadlocked() {
		return fmt.Errorf("%w: %v", ErrStillDeadlocked, final.Cycles)
	}
	return nil
}

// MapToHardware builds ED, partitions it into the nine implementation
// tables and verifies the reconstruction.
func (p *Pipeline) MapToHardware() error {
	defer p.phase("mapping")()
	d, ok := p.DB.Table(protocol.DirectoryTable)
	if !ok {
		return fmt.Errorf("core: table D not generated yet")
	}
	m, reused, err := p.partitioner.PartitionIncremental(p.DB, d)
	if err != nil {
		return err
	}
	if reused && p.Report.Mapping == m && p.Report.ImplChecks != nil {
		// D has not moved since the last mapping: ED, the nine
		// implementation tables, and their checks are all still valid.
		return nil
	}
	if _, err := m.Verify(); err != nil {
		return err
	}
	if err := m.VerifyEquivalence(); err != nil {
		return err
	}
	p.Report.Mapping = m
	// The implementation-detail rows must satisfy the Fig. 5 queue and
	// feedback discipline.
	p.Report.ImplChecks = check.ImplementationSuite().Run(p.DB, check.Options{Workers: p.Workers, Tracer: p.Tracer, Metrics: p.Metrics})
	if sum := check.Summarize(p.Report.ImplChecks); sum.Failed > 0 || sum.Errors > 0 {
		return fmt.Errorf("%w: implementation tables: %s", ErrInvariantsFailed, sum)
	}
	return nil
}

// ControllerTables returns the eight generated controller tables in
// builder order.
func (p *Pipeline) ControllerTables() ([]*rel.Table, error) {
	var out []*rel.Table
	for _, sb := range protocol.SpecBuilders() {
		t, ok := p.DB.Table(sb.Name)
		if !ok {
			return nil, fmt.Errorf("core: table %s not generated yet", sb.Name)
		}
		out = append(out, t)
	}
	return out, nil
}

// WriteTables dumps every table in the database as CSV files under dir.
func (p *Pipeline) WriteTables(dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	for _, name := range p.DB.Names() {
		t := p.DB.MustTable(name)
		f, err := os.Create(filepath.Join(dir, name+".csv"))
		if err != nil {
			return err
		}
		if err := t.WriteCSV(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
	}
	return nil
}

// Summarize writes a human-readable account of the report.
func (p *Pipeline) Summarize(w io.Writer) {
	r := p.Report
	fmt.Fprintf(w, "== table generation ==\n")
	names := make([]string, 0, len(r.GenStats))
	for n := range r.GenStats {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		st := r.GenStats[n]
		t, _ := p.DB.Table(n)
		cols := 0
		if t != nil {
			cols = t.NumCols()
		}
		fmt.Fprintf(w, "  %-4s %4d rows x %2d cols (%d candidates tested, %d memo hits, compiled in %v)\n",
			n, st.Rows, cols, st.Candidates, st.MemoHits, st.CompileTime.Round(time.Microsecond))
	}
	if len(r.Invariants) > 0 {
		fmt.Fprintf(w, "== invariants ==\n  %s\n", r.InvariantSummary)
		for _, res := range r.Invariants {
			if !res.Passed() {
				fmt.Fprintf(w, "  VIOLATED %s (%s)\n", res.Invariant.Name, res.Invariant.Ref)
			}
		}
	}
	for _, name := range r.AssignmentOrder {
		rep := r.Deadlock[name]
		if rep == nil {
			continue
		}
		fmt.Fprintf(w, "== deadlock analysis: %s ==\n", name)
		fmt.Fprintf(w, "  %d dependency rows, %d channels, %d edges, %d cycle(s)\n",
			rep.Stats.ProtocolRows, len(rep.Graph.Nodes()), len(rep.Graph.Edges()), len(rep.Cycles))
		for _, c := range rep.Cycles {
			fmt.Fprintf(w, "  cycle: %s\n", c)
		}
	}
	if r.Mapping != nil {
		fmt.Fprintf(w, "== hardware mapping ==\n  ED: %d rows; %d implementation tables; reconstruction and equivalence verified\n",
			r.Mapping.Extended.NumRows(), len(r.Mapping.Tables))
		if len(r.ImplChecks) > 0 {
			fmt.Fprintf(w, "  implementation checks: %s\n", check.Summarize(r.ImplChecks))
		}
	}
	if len(r.Elapsed) > 0 {
		fmt.Fprintf(w, "== phase costs ==\n")
		var total time.Duration
		for _, d := range r.Elapsed {
			total += d
		}
		for _, name := range phaseOrder(r.Elapsed) {
			d := r.Elapsed[name]
			pct := 0.0
			if total > 0 {
				pct = 100 * float64(d) / float64(total)
			}
			fmt.Fprintf(w, "  %-12s %10.1fms %5.1f%%\n", name, float64(d.Microseconds())/1000, pct)
		}
		fmt.Fprintf(w, "  %-12s %10.1fms\n", "total", float64(total.Microseconds())/1000)
	}
}

// phaseOrder lists the recorded phases in pipeline order, then any
// unknown ones alphabetically.
func phaseOrder(elapsed map[string]time.Duration) []string {
	known := []string{"generate", "invariants", "deadlock", "mapping"}
	var out []string
	seen := map[string]bool{}
	for _, n := range known {
		if _, ok := elapsed[n]; ok {
			out = append(out, n)
			seen[n] = true
		}
	}
	var rest []string
	for n := range elapsed {
		if !seen[n] {
			rest = append(rest, n)
		}
	}
	sort.Strings(rest)
	return append(out, rest...)
}
