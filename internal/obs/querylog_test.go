package obs

import (
	"bytes"
	"encoding/json"
	"errors"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestNilQueryLogIsInert(t *testing.T) {
	var q *QueryLog
	tok := q.Start("SELECT", "SELECT 1")
	if tok != nil {
		t.Fatal("nil log must hand out nil tokens")
	}
	// All token methods must no-op on nil.
	tok.AddRows(5)
	tok.SetPhase(PhaseScan)
	tok.Finish(nil)
	inflight, slow := q.Snapshot()
	if inflight != nil || slow != nil {
		t.Fatal("nil log snapshot must be empty")
	}
	if err := q.WriteJSON(&bytes.Buffer{}); err != nil {
		t.Fatal(err)
	}
}

func TestQueryLogInFlightAndSlow(t *testing.T) {
	q := NewQueryLog(4, time.Nanosecond) // everything is "slow"
	tok := q.Start("SELECT", "SELECT * FROM D")
	tok.SetPhase(PhaseJoin)
	tok.AddRows(42)

	inflight, slow := q.Snapshot()
	if len(inflight) != 1 || len(slow) != 0 {
		t.Fatalf("inflight=%d slow=%d, want 1/0", len(inflight), len(slow))
	}
	r := inflight[0]
	if r.Kind != "SELECT" || r.Statement != "SELECT * FROM D" || r.Phase != "join" || r.Rows != 42 || r.Done {
		t.Fatalf("in-flight record = %+v", r)
	}

	time.Sleep(time.Microsecond)
	tok.Finish(nil)
	inflight, slow = q.Snapshot()
	if len(inflight) != 0 || len(slow) != 1 {
		t.Fatalf("after finish: inflight=%d slow=%d, want 0/1", len(inflight), len(slow))
	}
	if !slow[0].Done || slow[0].Phase != "done" || slow[0].ElapsedUS < 0 {
		t.Fatalf("slow record = %+v", slow[0])
	}
}

func TestQueryLogFastQueriesNotRetained(t *testing.T) {
	q := NewQueryLog(4, time.Hour)
	q.Start("SELECT", "fast").Finish(nil)
	if _, slow := q.Snapshot(); len(slow) != 0 {
		t.Fatalf("fast query retained: %+v", slow)
	}
	// Failed statements are retained regardless of speed.
	q.Start("SELECT", "bad").Finish(errors.New("boom"))
	_, slow := q.Snapshot()
	if len(slow) != 1 || slow[0].Err != "boom" {
		t.Fatalf("failed query not retained: %+v", slow)
	}
}

func TestQueryLogRingOverflow(t *testing.T) {
	q := NewQueryLog(2, time.Nanosecond)
	for _, stmt := range []string{"q1", "q2", "q3"} {
		tok := q.Start("SELECT", stmt)
		time.Sleep(time.Microsecond)
		tok.Finish(nil)
	}
	_, slow := q.Snapshot()
	if len(slow) != 2 || slow[0].Statement != "q2" || slow[1].Statement != "q3" {
		t.Fatalf("ring = %+v, want oldest dropped", slow)
	}
}

func TestQueryLogTruncatesStatement(t *testing.T) {
	q := NewQueryLog(4, time.Nanosecond)
	long := strings.Repeat("x", 2*maxStatementLen)
	tok := q.Start("SELECT", long)
	inflight, _ := q.Snapshot()
	if n := len(inflight[0].Statement); n != maxStatementLen+3 {
		t.Fatalf("statement length = %d, want %d", n, maxStatementLen+3)
	}
	tok.Finish(nil)
}

func TestQueryLogWriteJSON(t *testing.T) {
	q := NewQueryLog(4, time.Nanosecond)
	q.Start("SELECT", "live one")
	tok := q.Start("INSERT", "done one")
	time.Sleep(time.Microsecond)
	tok.Finish(nil)

	var buf bytes.Buffer
	if err := q.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var out struct {
		InFlight []QueryRecord `json:"in_flight"`
		Slow     []QueryRecord `json:"slow"`
	}
	if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, buf.String())
	}
	if len(out.InFlight) != 1 || out.InFlight[0].Statement != "live one" {
		t.Fatalf("in_flight = %+v", out.InFlight)
	}
	if len(out.Slow) != 1 || out.Slow[0].Statement != "done one" {
		t.Fatalf("slow = %+v", out.Slow)
	}
}

func TestQueryLogConcurrent(t *testing.T) {
	q := NewQueryLog(16, time.Nanosecond)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				tok := q.Start("SELECT", "concurrent")
				tok.SetPhase(PhaseScan)
				tok.AddRows(1)
				tok.Finish(nil)
			}
		}()
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 50; i++ {
			q.Snapshot()
		}
	}()
	wg.Wait()
	<-done
	if inflight, _ := q.Snapshot(); len(inflight) != 0 {
		t.Fatalf("%d statements still in flight", len(inflight))
	}
}
