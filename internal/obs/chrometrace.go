package obs

import (
	"encoding/json"
	"io"
	"os"
	"sort"
)

// traceEvent is one entry in the Chrome trace_event JSON format, the
// interchange format Perfetto and chrome://tracing load. "X" events are
// complete slices (ts + dur); "M" events carry process/thread metadata.
type traceEvent struct {
	Name string            `json:"name"`
	Cat  string            `json:"cat,omitempty"`
	Ph   string            `json:"ph"`
	TS   int64             `json:"ts"`            // microseconds
	Dur  int64             `json:"dur,omitempty"` // microseconds
	PID  int               `json:"pid"`
	TID  int               `json:"tid"`
	Args map[string]string `json:"args,omitempty"`
}

// laneAttr is the span attribute that assigns a span (and its descendants)
// to a named timeline lane; internal/pool tags per-worker spans with it so
// parallel morsel execution renders as one track per worker.
const laneAttr = "lane"

const mainLane = "main"

// WriteChromeTrace converts finished spans into Chrome trace_event JSON
// ({"traceEvents": [...]}) loadable in Perfetto or chrome://tracing.
//
// Each span becomes a complete ("X") slice. Slices are grouped into
// threads (tid) by lane: a span with a "lane" attribute opens (or joins)
// the lane of that name, a span without one inherits the nearest
// ancestor's lane, and spans with no laned ancestor land on the "main"
// lane. A thread_name metadata event names every lane.
func WriteChromeTrace(w io.Writer, spans []Span) error {
	byID := make(map[uint64]*Span, len(spans))
	for i := range spans {
		byID[spans[i].ID] = &spans[i]
	}

	laneOf := func(s *Span) string {
		// Walk ancestors (including self) for the nearest lane tag.
		for cur := s; cur != nil; {
			for _, a := range cur.Attrs {
				if a.Key == laneAttr {
					return a.Value
				}
			}
			if cur.ParentID == 0 {
				break
			}
			cur = byID[cur.ParentID]
		}
		return mainLane
	}

	tids := map[string]int{mainLane: 0}
	laneNames := []string{mainLane}
	events := make([]traceEvent, 0, len(spans)+1)
	for i := range spans {
		s := &spans[i]
		lane := laneOf(s)
		tid, ok := tids[lane]
		if !ok {
			tid = len(tids)
			tids[lane] = tid
			laneNames = append(laneNames, lane)
		}
		var args map[string]string
		if len(s.Attrs) > 0 {
			args = make(map[string]string, len(s.Attrs))
			for _, a := range s.Attrs {
				args[a.Key] = a.Value
			}
		}
		dur := int64(0)
		if !s.End.IsZero() {
			dur = s.End.Sub(s.Start).Microseconds()
		}
		events = append(events, traceEvent{
			Name: s.Name,
			Cat:  "span",
			Ph:   "X",
			TS:   s.Start.UnixMicro(),
			Dur:  dur,
			PID:  1,
			TID:  tid,
			Args: args,
		})
	}
	sort.SliceStable(events, func(i, j int) bool { return events[i].TS < events[j].TS })

	meta := make([]traceEvent, 0, len(laneNames))
	for _, lane := range laneNames {
		meta = append(meta, traceEvent{
			Name: "thread_name",
			Ph:   "M",
			PID:  1,
			TID:  tids[lane],
			Args: map[string]string{"name": lane},
		})
	}

	enc := json.NewEncoder(w)
	return enc.Encode(struct {
		TraceEvents []traceEvent `json:"traceEvents"`
	}{append(meta, events...)})
}

// WriteChromeTraceFile writes the spans as a Chrome trace JSON file.
func WriteChromeTraceFile(path string, spans []Span) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := WriteChromeTrace(f, spans); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
