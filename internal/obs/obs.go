// Package obs is the zero-dependency observability layer of the
// reproduction: structured tracing spans with a ring-buffered in-memory
// collector and JSON-lines export, plus Prometheus-style counters, gauges
// and histograms with a text exposition (metrics.go).
//
// The paper's central claim is quantitative — incremental constraint
// solving beats monolithic generation, and the invariant queries are "fast
// enough to run on every revision" — so every layer of the pipeline
// (sqlmini statements, the constraint solver, the check suite, the
// deadlock analyzer, the simulator) reports into this package when a
// Tracer or *Registry is supplied, and stays zero-cost when it is not: a
// nil Tracer produces nil *Span handles whose methods no-op.
package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sync"
	"time"
)

// Attr is one structured key/value attribute attached to a span.
type Attr struct {
	Key   string `json:"key"`
	Value string `json:"value"`
}

// String builds a string attribute.
func String(k, v string) Attr { return Attr{Key: k, Value: v} }

// Int builds an integer attribute.
func Int(k string, v int) Attr { return Attr{Key: k, Value: fmt.Sprintf("%d", v)} }

// Int64 builds a 64-bit integer attribute.
func Int64(k string, v int64) Attr { return Attr{Key: k, Value: fmt.Sprintf("%d", v)} }

// Uint64 builds an unsigned integer attribute.
func Uint64(k string, v uint64) Attr { return Attr{Key: k, Value: fmt.Sprintf("%d", v)} }

// Duration builds a duration attribute (formatted, e.g. "1.5ms").
func Duration(k string, d time.Duration) Attr { return Attr{Key: k, Value: d.String()} }

// Tracer starts spans. Implementations must be safe for concurrent use.
// Callers should hold tracers as possibly-nil interface values and start
// spans through the package-level StartSpan, which tolerates nil.
type Tracer interface {
	StartSpan(name string, attrs ...Attr) *Span
}

// StartSpan starts a span on t, tolerating a nil tracer: the returned
// *Span is nil and all its methods no-op, so instrumented code needs no
// nil checks of its own.
func StartSpan(t Tracer, name string, attrs ...Attr) *Span {
	if t == nil {
		return nil
	}
	return t.StartSpan(name, attrs...)
}

// sink is where finished spans go; the Collector implements it.
type sink interface {
	newSpan(name string, parent uint64, attrs []Attr) *Span
	finish(*Span)
}

// Span is one timed operation. A nil *Span is valid and inert.
type Span struct {
	ID       uint64 `json:"id"`
	ParentID uint64 `json:"parent_id,omitempty"`
	Name     string `json:"name"`
	Start    time.Time
	End      time.Time
	Attrs    []Attr `json:"attrs,omitempty"`

	sink sink
}

// Child starts a nested span under s.
func (s *Span) Child(name string, attrs ...Attr) *Span {
	if s == nil || s.sink == nil {
		return nil
	}
	return s.sink.newSpan(name, s.ID, attrs)
}

// SetAttr appends attributes to the span; typically results recorded just
// before Finish.
func (s *Span) SetAttr(attrs ...Attr) {
	if s == nil {
		return
	}
	s.Attrs = append(s.Attrs, attrs...)
}

// Finish stamps the end time and hands the span to its collector. Safe on
// a nil span; finishing twice records the span twice.
func (s *Span) Finish() {
	if s == nil || s.sink == nil {
		return
	}
	s.End = time.Now()
	s.sink.finish(s)
}

// Elapsed is the span duration (zero until finished, zero on nil).
func (s *Span) Elapsed() time.Duration {
	if s == nil || s.End.IsZero() {
		return 0
	}
	return s.End.Sub(s.Start)
}

// spanJSON is the JSON-lines wire form of a finished span.
type spanJSON struct {
	ID       uint64 `json:"id"`
	ParentID uint64 `json:"parent_id,omitempty"`
	Name     string `json:"name"`
	StartUS  int64  `json:"start_us"`
	Dur      string `json:"dur"`
	Attrs    []Attr `json:"attrs,omitempty"`
}

// Collector is a Tracer that keeps the most recent finished spans in a
// fixed-capacity ring buffer. It is safe for concurrent use.
type Collector struct {
	mu      sync.Mutex
	cap     int
	buf     []Span // ring: buf[(head+i)%cap] for i < n
	head    int
	n       int
	nextID  uint64
	dropped uint64
}

// DefaultCapacity is the collector ring size when NewCollector is given a
// non-positive capacity.
const DefaultCapacity = 4096

// NewCollector builds a collector retaining at most capacity finished
// spans (the oldest are dropped on overflow).
func NewCollector(capacity int) *Collector {
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	return &Collector{cap: capacity, buf: make([]Span, capacity)}
}

// StartSpan implements Tracer.
func (c *Collector) StartSpan(name string, attrs ...Attr) *Span {
	return c.newSpan(name, 0, attrs)
}

func (c *Collector) newSpan(name string, parent uint64, attrs []Attr) *Span {
	c.mu.Lock()
	c.nextID++
	id := c.nextID
	c.mu.Unlock()
	return &Span{
		ID:       id,
		ParentID: parent,
		Name:     name,
		Start:    time.Now(),
		Attrs:    attrs,
		sink:     c,
	}
}

func (c *Collector) finish(s *Span) {
	rec := *s
	rec.sink = nil
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.n < c.cap {
		c.buf[(c.head+c.n)%c.cap] = rec
		c.n++
		return
	}
	// Overwrite the oldest.
	c.buf[c.head] = rec
	c.head = (c.head + 1) % c.cap
	c.dropped++
}

// Len returns the number of retained spans.
func (c *Collector) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.n
}

// Dropped returns how many finished spans were evicted by ring overflow.
func (c *Collector) Dropped() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.dropped
}

// Spans returns the retained spans, oldest first.
func (c *Collector) Spans() []Span {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]Span, c.n)
	for i := 0; i < c.n; i++ {
		out[i] = c.buf[(c.head+i)%c.cap]
	}
	return out
}

// Reset discards all retained spans (span IDs keep increasing).
func (c *Collector) Reset() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.head, c.n, c.dropped = 0, 0, 0
}

// WriteJSONL writes the retained spans as JSON lines, oldest first: one
// object per line with id, parent_id, name, start_us (unix microseconds),
// dur and attrs.
func (c *Collector) WriteJSONL(w io.Writer) error {
	enc := json.NewEncoder(w)
	for _, s := range c.Spans() {
		rec := spanJSON{
			ID:       s.ID,
			ParentID: s.ParentID,
			Name:     s.Name,
			StartUS:  s.Start.UnixMicro(),
			Dur:      s.End.Sub(s.Start).String(),
			Attrs:    s.Attrs,
		}
		if err := enc.Encode(rec); err != nil {
			return err
		}
	}
	return nil
}
