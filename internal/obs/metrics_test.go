package obs

import (
	"bytes"
	"fmt"
	"io"
	"math"
	"strings"
	"sync"
	"testing"
)

func TestEscapeLabel(t *testing.T) {
	for _, tc := range []struct{ in, want string }{
		{"plain", "plain"},
		{"", ""},
		{`back\slash`, `back\\slash`},
		{"new\nline", `new\nline`},
		{`has "quotes"`, `has \"quotes\"`},
		{"\\\n\"", `\\\n\"`},
		{`\n`, `\\n`}, // literal backslash-n must not collapse into newline
		{"SELECT \"x\"\nFROM t\\u", `SELECT \"x\"\nFROM t\\u`},
	} {
		if got := escapeLabel(tc.in); got != tc.want {
			t.Errorf("escapeLabel(%q) = %q, want %q", tc.in, got, tc.want)
		}
	}
}

func TestEscapeHelp(t *testing.T) {
	for _, tc := range []struct{ in, want string }{
		{"plain help text", "plain help text"},
		{"multi\nline", `multi\nline`},
		{`back\slash`, `back\\slash`},
		// HELP text does NOT escape quotes (only label values do).
		{`keeps "quotes"`, `keeps "quotes"`},
	} {
		if got := escapeHelp(tc.in); got != tc.want {
			t.Errorf("escapeHelp(%q) = %q, want %q", tc.in, got, tc.want)
		}
	}
}

func TestHelpEscapedInExposition(t *testing.T) {
	r := NewRegistry()
	r.Help("x_total", "line one\nline two \\ done")
	r.Counter("x_total").Inc()
	var buf bytes.Buffer
	if err := r.WriteMetrics(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `# HELP x_total line one\nline two \\ done`) {
		t.Errorf("HELP not escaped:\n%s", buf.String())
	}
	if strings.Contains(buf.String(), "line one\nline two") {
		t.Errorf("raw newline leaked into HELP line:\n%s", buf.String())
	}
}

func TestFormatFloatSpecials(t *testing.T) {
	for _, tc := range []struct {
		in   float64
		want string
	}{
		{1.5, "1.5"},
		{0, "0"},
		{math.Inf(1), "+Inf"},
		{math.Inf(-1), "-Inf"},
		{math.NaN(), "NaN"},
	} {
		if got := formatFloat(tc.in); got != tc.want {
			t.Errorf("formatFloat(%v) = %q, want %q", tc.in, got, tc.want)
		}
	}
}

// TestHistogramConcurrentObserve hammers one histogram from many
// goroutines and requires the lock-free implementation to lose nothing:
// the total count, per-bucket counts and sum must all match a serial
// reference, and the rendered exposition must be byte-identical.
func TestHistogramConcurrentObserve(t *testing.T) {
	bounds := []float64{0.001, 0.01, 0.1, 1}
	values := []float64{0.0005, 0.005, 0.05, 0.5, 5}

	render := func(r *Registry) string {
		var buf bytes.Buffer
		if err := r.WriteMetrics(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}

	serial := NewRegistry()
	hs := serial.Histogram("lat_seconds", bounds)
	const goroutines, rounds = 8, 1000
	for g := 0; g < goroutines; g++ {
		for i := 0; i < rounds; i++ {
			hs.Observe(values[i%len(values)])
		}
	}

	conc := NewRegistry()
	hc := conc.Histogram("lat_seconds", bounds)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				hc.Observe(values[i%len(values)])
			}
		}()
	}
	wg.Wait()

	if hc.Count() != hs.Count() {
		t.Fatalf("count = %d, want %d", hc.Count(), hs.Count())
	}
	if math.Abs(hc.Sum()-hs.Sum()) > 1e-9*hs.Sum() {
		t.Fatalf("sum = %v, want %v", hc.Sum(), hs.Sum())
	}
	if got, want := render(conc), render(serial); got != want {
		t.Errorf("concurrent exposition differs from serial:\n%s\nwant:\n%s", got, want)
	}
}

// TestRegistryConcurrentRegistration races instrument registration (new
// names and label sets), observation and WriteMetrics; run under -race
// this is the memory-safety check for the whole metrics plane.
func TestRegistryConcurrentRegistration(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				r.Help(fmt.Sprintf("fam_%d_total", i%10), "racing help")
				r.Counter(fmt.Sprintf("fam_%d_total", i%10), L("g", fmt.Sprint(g))).Inc()
				r.Gauge(fmt.Sprintf("depth_%d", i%5)).Set(int64(i))
				r.Histogram("lat_seconds", nil, L("g", fmt.Sprint(g))).Observe(float64(i) / 100)
				if i%50 == 0 {
					if err := r.WriteMetrics(io.Discard); err != nil {
						t.Error(err)
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	for g := 0; g < 8; g++ {
		for i := 0; i < 10; i++ {
			if got := r.Counter(fmt.Sprintf("fam_%d_total", i), L("g", fmt.Sprint(g))).Value(); got != 20 {
				t.Fatalf("fam_%d_total{g=%d} = %d, want 20", i, g, got)
			}
		}
	}
}
