package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestNilTracerIsInert(t *testing.T) {
	sp := StartSpan(nil, "anything", String("k", "v"))
	if sp != nil {
		t.Fatalf("StartSpan(nil, ...) = %v, want nil", sp)
	}
	// All methods must be safe on the nil span.
	sp.SetAttr(Int("n", 1))
	child := sp.Child("child")
	if child != nil {
		t.Fatalf("nil span Child = %v, want nil", child)
	}
	sp.Finish()
	if sp.Elapsed() != 0 {
		t.Fatalf("nil span Elapsed = %v, want 0", sp.Elapsed())
	}
}

func TestSpanNesting(t *testing.T) {
	c := NewCollector(16)
	root := c.StartSpan("root", String("phase", "outer"))
	inner := root.Child("inner")
	leaf := inner.Child("leaf", Int("depth", 2))
	leaf.Finish()
	inner.Finish()
	root.SetAttr(Duration("took", 5*time.Millisecond))
	root.Finish()

	spans := c.Spans()
	if len(spans) != 3 {
		t.Fatalf("got %d spans, want 3", len(spans))
	}
	// Finished innermost-first.
	byName := map[string]Span{}
	for _, s := range spans {
		byName[s.Name] = s
	}
	r, i, l := byName["root"], byName["inner"], byName["leaf"]
	if r.ParentID != 0 {
		t.Errorf("root parent = %d, want 0", r.ParentID)
	}
	if i.ParentID != r.ID {
		t.Errorf("inner parent = %d, want root id %d", i.ParentID, r.ID)
	}
	if l.ParentID != i.ID {
		t.Errorf("leaf parent = %d, want inner id %d", l.ParentID, i.ID)
	}
	if len(r.Attrs) != 2 {
		t.Errorf("root attrs = %v, want phase + took", r.Attrs)
	}
	if spans[0].Name != "leaf" || spans[2].Name != "root" {
		t.Errorf("span order = %q, %q, %q; want leaf, inner, root",
			spans[0].Name, spans[1].Name, spans[2].Name)
	}
}

func TestCollectorRingOverflow(t *testing.T) {
	c := NewCollector(4)
	for i := 0; i < 10; i++ {
		c.StartSpan("s", Int("i", i)).Finish()
	}
	if c.Len() != 4 {
		t.Fatalf("Len = %d, want 4", c.Len())
	}
	if c.Dropped() != 6 {
		t.Fatalf("Dropped = %d, want 6", c.Dropped())
	}
	spans := c.Spans()
	// The four youngest survive, oldest first: i = 6, 7, 8, 9.
	for k, want := range []string{"6", "7", "8", "9"} {
		if got := spans[k].Attrs[0].Value; got != want {
			t.Errorf("span %d attr i = %s, want %s", k, got, want)
		}
	}
	c.Reset()
	if c.Len() != 0 || c.Dropped() != 0 {
		t.Fatalf("after Reset: Len=%d Dropped=%d, want 0, 0", c.Len(), c.Dropped())
	}
}

func TestCollectorConcurrent(t *testing.T) {
	c := NewCollector(64)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				s := c.StartSpan("work")
				s.Child("sub").Finish()
				s.Finish()
			}
		}()
	}
	wg.Wait()
	if c.Len() != 64 {
		t.Fatalf("Len = %d, want full ring 64", c.Len())
	}
	if got := c.Dropped() + 64; got != 1600 {
		t.Fatalf("retained+dropped = %d, want 1600", got)
	}
}

func TestWriteJSONL(t *testing.T) {
	c := NewCollector(8)
	s := c.StartSpan("query", String("sql", `SELECT "x"`))
	s.Child("join").Finish()
	s.Finish()
	var buf bytes.Buffer
	if err := c.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("got %d lines, want 2:\n%s", len(lines), buf.String())
	}
	for _, line := range lines {
		var rec map[string]any
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("line %q is not JSON: %v", line, err)
		}
		if rec["name"] == "" {
			t.Errorf("line %q lacks a name", line)
		}
	}
}

func TestCountersConcurrent(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				r.Counter("hits_total", L("worker", "all")).Inc()
				r.Gauge("depth").Set(int64(i))
				r.Histogram("latency_seconds", nil).Observe(0.001)
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("hits_total", L("worker", "all")).Value(); got != 8000 {
		t.Fatalf("counter = %d, want 8000", got)
	}
	if got := r.Histogram("latency_seconds", nil).Count(); got != 8000 {
		t.Fatalf("histogram count = %d, want 8000", got)
	}
}

func TestCounterIgnoresNegative(t *testing.T) {
	var c Counter
	c.Add(5)
	c.Add(-3)
	if c.Value() != 5 {
		t.Fatalf("counter = %d, want 5", c.Value())
	}
}

func TestWriteMetricsExposition(t *testing.T) {
	r := NewRegistry()
	r.Help("coherdb_invariant_duration_seconds", "per-invariant query time")
	r.Counter("coherdb_invariant_violations_total", L("invariant", "dir-pv-consistent")).Add(2)
	r.Counter("coherdb_invariant_violations_total", L("invariant", "alloc-from-free")).Inc()
	r.Gauge("coherdb_vcg_nodes", L("assignment", "vc4")).Set(5)
	h := r.Histogram("coherdb_invariant_duration_seconds", []float64{0.001, 0.01})
	h.Observe(0.0005)
	h.Observe(0.5)
	var buf bytes.Buffer
	if err := r.WriteMetrics(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# HELP coherdb_invariant_duration_seconds per-invariant query time",
		"# TYPE coherdb_invariant_duration_seconds histogram",
		`coherdb_invariant_duration_seconds_bucket{le="0.001"} 1`,
		`coherdb_invariant_duration_seconds_bucket{le="+Inf"} 2`,
		"coherdb_invariant_duration_seconds_count 2",
		"# TYPE coherdb_invariant_violations_total counter",
		`coherdb_invariant_violations_total{invariant="alloc-from-free"} 1`,
		`coherdb_invariant_violations_total{invariant="dir-pv-consistent"} 2`,
		"# TYPE coherdb_vcg_nodes gauge",
		`coherdb_vcg_nodes{assignment="vc4"} 5`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
	// Families must appear sorted: duration before violations before vcg.
	di := strings.Index(out, "coherdb_invariant_duration_seconds")
	vi := strings.Index(out, "coherdb_invariant_violations_total")
	gi := strings.Index(out, "coherdb_vcg_nodes")
	if !(di < vi && vi < gi) {
		t.Errorf("families not sorted: positions %d, %d, %d\n%s", di, vi, gi, out)
	}
}

func TestLabelEscaping(t *testing.T) {
	r := NewRegistry()
	r.Counter("q_total", L("sql", "SELECT \"x\"\nFROM t")).Inc()
	var buf bytes.Buffer
	if err := r.WriteMetrics(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `q_total{sql="SELECT \"x\"\nFROM t"} 1`) {
		t.Errorf("bad escaping:\n%s", buf.String())
	}
}
