package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Label is one metric label pair.
type Label struct {
	Key, Value string
}

// L is shorthand for building a Label.
func L(k, v string) Label { return Label{Key: k, Value: v} }

// Counter is a monotonically increasing integer metric. Safe for
// concurrent use.
type Counter struct {
	n atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.n.Add(1) }

// Add adds n (negative deltas are ignored: counters only go up).
func (c *Counter) Add(n int64) {
	if n > 0 {
		c.n.Add(n)
	}
}

// Value returns the current count.
func (c *Counter) Value() int64 { return c.n.Load() }

// Gauge is a settable integer metric (sizes, occupancies). Safe for
// concurrent use.
type Gauge struct {
	n atomic.Int64
}

// Set stores v.
func (g *Gauge) Set(v int64) { g.n.Store(v) }

// Add adds delta (may be negative).
func (g *Gauge) Add(delta int64) { g.n.Add(delta) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.n.Load() }

// DurationBuckets are the default histogram bucket upper bounds for
// durations in seconds, spanning 10µs to 10s.
var DurationBuckets = []float64{
	0.00001, 0.000025, 0.00005, 0.0001, 0.00025, 0.0005,
	0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// Histogram is a fixed-bucket distribution metric. Observe is lock-free
// (atomic bucket counters), so per-morsel duration samples from the
// parallel executor never serialize on a mutex. Safe for concurrent use.
//
// Under concurrent observation a reader may see a sample reflected in a
// bucket before it is reflected in count/sum (or vice versa); the text
// exposition tolerates that, and the series converge once observers
// quiesce.
type Histogram struct {
	bounds  []float64       // sorted upper bounds, immutable after creation
	counts  []atomic.Uint64 // len(bounds)+1; last is the +Inf bucket
	count   atomic.Uint64
	sumBits atomic.Uint64 // math.Float64bits of the running sum
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		upd := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, upd) {
			return
		}
	}
}

// ObserveDuration records a duration sample in seconds.
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(d.Seconds()) }

// Count returns the number of samples.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of all samples.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

// snapshot copies the bucket counters for rendering.
func (h *Histogram) snapshot() (counts []uint64, count uint64, sum float64) {
	counts = make([]uint64, len(h.counts))
	for i := range h.counts {
		counts[i] = h.counts[i].Load()
	}
	return counts, h.count.Load(), h.Sum()
}

// metricKind tags what a registry entry is.
type metricKind uint8

const (
	kindCounter metricKind = iota
	kindGauge
	kindHistogram
)

// metric is one registered instrument.
type metric struct {
	name   string
	kind   metricKind
	labels []Label
	c      *Counter
	g      *Gauge
	h      *Histogram
}

// Registry holds named instruments and renders them in the Prometheus
// text exposition format. Instruments are created on first use and
// returned on subsequent calls with the same name and labels. Safe for
// concurrent use.
type Registry struct {
	mu      sync.Mutex
	metrics map[string]*metric // keyed by name + rendered labels
	help    map[string]string  // metric family name -> help text
}

// NewRegistry builds an empty registry.
func NewRegistry() *Registry {
	return &Registry{metrics: make(map[string]*metric), help: make(map[string]string)}
}

// Default is the process-wide registry used by the package-level helpers
// and the CLI -metrics flags.
var Default = NewRegistry()

// Help sets the HELP text for a metric family.
func (r *Registry) Help(name, help string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.help[name] = help
}

func labelKey(name string, labels []Label) string {
	if len(labels) == 0 {
		return name
	}
	ls := append([]Label(nil), labels...)
	sort.Slice(ls, func(i, j int) bool { return ls[i].Key < ls[j].Key })
	var sb strings.Builder
	sb.WriteString(name)
	sb.WriteByte('{')
	for i, l := range ls {
		if i > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString(l.Key)
		sb.WriteString(`="`)
		sb.WriteString(escapeLabel(l.Value))
		sb.WriteString(`"`)
	}
	sb.WriteByte('}')
	return sb.String()
}

// escapeLabel escapes a label value for the text exposition format:
// inside double quotes, backslash, double quote and line feed must be
// rendered as \\, \" and \n. Backslashes are escaped first so the
// backslashes introduced for quotes and newlines are not re-escaped.
func escapeLabel(v string) string {
	if !strings.ContainsAny(v, "\\\n\"") {
		return v
	}
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	return strings.ReplaceAll(v, `"`, `\"`)
}

// escapeHelp escapes HELP text: only backslash and line feed, per the
// exposition format (quotes are legal in help text).
func escapeHelp(v string) string {
	if !strings.ContainsAny(v, "\\\n") {
		return v
	}
	v = strings.ReplaceAll(v, `\`, `\\`)
	return strings.ReplaceAll(v, "\n", `\n`)
}

func (r *Registry) get(name string, kind metricKind, labels []Label) *metric {
	key := labelKey(name, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	m, ok := r.metrics[key]
	if !ok {
		m = &metric{name: name, kind: kind, labels: append([]Label(nil), labels...)}
		r.metrics[key] = m
	}
	if m.kind != kind {
		panic(fmt.Sprintf("obs: metric %q re-registered with a different kind", key))
	}
	return m
}

// Counter returns (creating on first use) the counter with the given name
// and labels.
func (r *Registry) Counter(name string, labels ...Label) *Counter {
	m := r.get(name, kindCounter, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	if m.c == nil {
		m.c = &Counter{}
	}
	return m.c
}

// Gauge returns (creating on first use) the gauge with the given name and
// labels.
func (r *Registry) Gauge(name string, labels ...Label) *Gauge {
	m := r.get(name, kindGauge, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	if m.g == nil {
		m.g = &Gauge{}
	}
	return m.g
}

// Histogram returns (creating on first use) the histogram with the given
// name, bucket upper bounds and labels. A nil bounds slice means
// DurationBuckets. Bounds are fixed at first creation.
func (r *Registry) Histogram(name string, bounds []float64, labels ...Label) *Histogram {
	m := r.get(name, kindHistogram, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	if m.h == nil {
		if bounds == nil {
			bounds = DurationBuckets
		}
		bs := append([]float64(nil), bounds...)
		sort.Float64s(bs)
		m.h = &Histogram{bounds: bs, counts: make([]atomic.Uint64, len(bs)+1)}
	}
	return m.h
}

// WriteMetrics renders every instrument in the Prometheus text exposition
// format, sorted by metric family and label set: # HELP / # TYPE headers
// followed by one sample line per series (histograms expand into
// _bucket/_sum/_count).
func (r *Registry) WriteMetrics(w io.Writer) error {
	r.mu.Lock()
	families := map[string][]*metric{}
	kinds := map[string]metricKind{}
	for _, m := range r.metrics {
		families[m.name] = append(families[m.name], m)
		kinds[m.name] = m.kind
	}
	help := make(map[string]string, len(r.help))
	for k, v := range r.help {
		help[k] = v
	}
	r.mu.Unlock()

	names := make([]string, 0, len(families))
	for n := range families {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, name := range names {
		ms := families[name]
		sort.Slice(ms, func(i, j int) bool {
			return labelKey(ms[i].name, ms[i].labels) < labelKey(ms[j].name, ms[j].labels)
		})
		if h := help[name]; h != "" {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", name, escapeHelp(h)); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", name, kindName(kinds[name])); err != nil {
			return err
		}
		for _, m := range ms {
			if err := writeMetric(w, m); err != nil {
				return err
			}
		}
	}
	return nil
}

func kindName(k metricKind) string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	default:
		return "histogram"
	}
}

// series renders name plus the label set (with extra labels appended) as
// a sample series name.
func series(name string, labels []Label, extra ...Label) string {
	return labelKey(name, append(append([]Label(nil), labels...), extra...))
}

func writeMetric(w io.Writer, m *metric) error {
	switch m.kind {
	case kindCounter:
		var v int64
		if m.c != nil {
			v = m.c.Value()
		}
		_, err := fmt.Fprintf(w, "%s %d\n", series(m.name, m.labels), v)
		return err
	case kindGauge:
		var v int64
		if m.g != nil {
			v = m.g.Value()
		}
		_, err := fmt.Fprintf(w, "%s %d\n", series(m.name, m.labels), v)
		return err
	default:
		h := m.h
		if h == nil {
			return nil
		}
		counts, count, sum := h.snapshot()
		var cum uint64
		for i, b := range h.bounds {
			cum += counts[i]
			le := strconv.FormatFloat(b, 'g', -1, 64)
			if _, err := fmt.Fprintf(w, "%s %d\n", series(m.name+"_bucket", m.labels, L("le", le)), cum); err != nil {
				return err
			}
		}
		cum += counts[len(h.bounds)]
		if _, err := fmt.Fprintf(w, "%s %d\n", series(m.name+"_bucket", m.labels, L("le", "+Inf")), cum); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s %s\n", series(m.name+"_sum", m.labels), formatFloat(sum)); err != nil {
			return err
		}
		_, err := fmt.Fprintf(w, "%s %d\n", series(m.name+"_count", m.labels), count)
		return err
	}
}

// formatFloat renders a sample value; the exposition format spells the
// IEEE specials as +Inf, -Inf and NaN (they were previously flattened to
// "0", which silently corrupted overflowed sums).
func formatFloat(f float64) string {
	switch {
	case math.IsInf(f, 1):
		return "+Inf"
	case math.IsInf(f, -1):
		return "-Inf"
	case math.IsNaN(f):
		return "NaN"
	}
	return strconv.FormatFloat(f, 'g', -1, 64)
}

// WriteMetrics renders the Default registry.
func WriteMetrics(w io.Writer) error { return Default.WriteMetrics(w) }
