package obs

import (
	"bytes"
	"encoding/json"
	"testing"
	"time"
)

// chromeTraceDoc mirrors the trace_event container for decoding in tests.
type chromeTraceDoc struct {
	TraceEvents []struct {
		Name string            `json:"name"`
		Ph   string            `json:"ph"`
		TS   int64             `json:"ts"`
		Dur  int64             `json:"dur"`
		PID  int               `json:"pid"`
		TID  int               `json:"tid"`
		Args map[string]string `json:"args"`
	} `json:"traceEvents"`
}

// syntheticSpans builds the span tree a parallel query produces:
//
//	sql.stmt (main)
//	└── pool.parallel (main)
//	    ├── pool.worker lane=worker-1
//	    │   └── pool.each          (inherits worker-1 via ancestor walk)
//	    └── pool.worker lane=worker-2
func syntheticSpans() []Span {
	t0 := time.UnixMicro(1_000_000)
	at := func(us, durUS int64) (time.Time, time.Time) {
		return t0.Add(time.Duration(us) * time.Microsecond),
			t0.Add(time.Duration(us+durUS) * time.Microsecond)
	}
	s1, e1 := at(0, 500)
	s2, e2 := at(10, 480)
	s3, e3 := at(20, 200)
	s4, e4 := at(30, 100)
	s5, e5 := at(20, 210)
	return []Span{
		{ID: 1, Name: "sql.stmt", Start: s1, End: e1, Attrs: []Attr{String("sql", "SELECT 1")}},
		{ID: 2, ParentID: 1, Name: "pool.parallel", Start: s2, End: e2},
		{ID: 3, ParentID: 2, Name: "pool.worker", Start: s3, End: e3, Attrs: []Attr{String("lane", "worker-1")}},
		{ID: 4, ParentID: 3, Name: "pool.each", Start: s4, End: e4},
		{ID: 5, ParentID: 2, Name: "pool.worker", Start: s5, End: e5, Attrs: []Attr{String("lane", "worker-2")}},
	}
}

func TestWriteChromeTraceLanes(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, syntheticSpans()); err != nil {
		t.Fatal(err)
	}
	var doc chromeTraceDoc
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("not valid JSON: %v\n%s", err, buf.String())
	}

	lanes := map[string]int{} // lane name -> tid, from metadata events
	slices := map[string]int{}
	for _, ev := range doc.TraceEvents {
		switch ev.Ph {
		case "M":
			if ev.Name != "thread_name" {
				t.Errorf("unexpected metadata event %q", ev.Name)
			}
			lanes[ev.Args["name"]] = ev.TID
		case "X":
			slices[ev.Name] = ev.TID
			if ev.PID != 1 {
				t.Errorf("slice %q pid = %d, want 1", ev.Name, ev.PID)
			}
			if ev.Dur <= 0 {
				t.Errorf("slice %q dur = %d, want > 0", ev.Name, ev.Dur)
			}
		default:
			t.Errorf("unexpected event phase %q", ev.Ph)
		}
	}

	for _, lane := range []string{"main", "worker-1", "worker-2"} {
		if _, ok := lanes[lane]; !ok {
			t.Fatalf("missing thread_name metadata for lane %q (have %v)", lane, lanes)
		}
	}
	if lanes["main"] != 0 {
		t.Errorf("main lane tid = %d, want 0", lanes["main"])
	}
	// Root spans with no lane tag land on main; workers get their own lane;
	// pool.each inherits worker-1 from its ancestor.
	if slices["sql.stmt"] != lanes["main"] || slices["pool.parallel"] != lanes["main"] {
		t.Errorf("untagged spans not on main lane: %v vs lanes %v", slices, lanes)
	}
	if slices["pool.each"] != lanes["worker-1"] {
		t.Errorf("pool.each tid = %d, want worker-1 tid %d", slices["pool.each"], lanes["worker-1"])
	}
	if slices["pool.worker"] != lanes["worker-2"] && slices["pool.worker"] != lanes["worker-1"] {
		t.Errorf("pool.worker tid = %d, not a worker lane %v", slices["pool.worker"], lanes)
	}
}

func TestWriteChromeTraceSliceOrderingAndArgs(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, syntheticSpans()); err != nil {
		t.Fatal(err)
	}
	var doc chromeTraceDoc
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	lastTS := int64(-1)
	sawSQL := false
	for _, ev := range doc.TraceEvents {
		if ev.Ph != "X" {
			continue
		}
		if ev.TS < lastTS {
			t.Fatalf("slices not sorted by ts: %d after %d", ev.TS, lastTS)
		}
		lastTS = ev.TS
		if ev.Name == "sql.stmt" && ev.Args["sql"] == "SELECT 1" {
			sawSQL = true
		}
	}
	if !sawSQL {
		t.Error("span attrs not carried into slice args")
	}
}

func TestWriteChromeTraceEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, nil); err != nil {
		t.Fatal(err)
	}
	var doc chromeTraceDoc
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("empty trace not valid JSON: %v\n%s", err, buf.String())
	}
	// Still announces the main lane so the file loads cleanly.
	if len(doc.TraceEvents) != 1 || doc.TraceEvents[0].Ph != "M" {
		t.Fatalf("events = %+v, want just the main thread_name metadata", doc.TraceEvents)
	}
}

func TestCollectorRoundTripsThroughChromeTrace(t *testing.T) {
	c := NewCollector(64)
	root := c.StartSpan("sql.stmt")
	child := root.Child("pool.worker", String("lane", "worker-1"))
	child.Finish()
	root.Finish()

	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, c.Spans()); err != nil {
		t.Fatal(err)
	}
	var doc chromeTraceDoc
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	names := map[string]bool{}
	for _, ev := range doc.TraceEvents {
		if ev.Ph == "X" {
			names[ev.Name] = true
		}
	}
	if !names["sql.stmt"] || !names["pool.worker"] {
		t.Fatalf("live collector spans missing from trace: %v", names)
	}
}
