package obs

import (
	"encoding/json"
	"io"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// QueryPhase is the coarse execution phase an in-flight statement is in.
// Phases are a small closed enum so operators can publish progress with a
// single atomic store and no allocation.
type QueryPhase int32

const (
	PhaseQueued QueryPhase = iota
	PhaseParse
	PhasePlan
	PhaseScan
	PhaseJoin
	PhaseFilter
	PhaseAggregate
	PhaseProject
	PhaseDone
)

var phaseNames = [...]string{
	"queued", "parse", "plan", "scan", "join", "filter", "aggregate", "project", "done",
}

// String returns the phase name used in /queries JSON.
func (p QueryPhase) String() string {
	if p < 0 || int(p) >= len(phaseNames) {
		return "unknown"
	}
	return phaseNames[p]
}

// maxStatementLen bounds the statement text retained per query so the log
// cannot pin arbitrarily large SQL strings.
const maxStatementLen = 512

// QueryRecord is the JSON form of one logged statement, either still in
// flight or finished and retained in the slow-query ring.
type QueryRecord struct {
	ID        uint64 `json:"id"`
	Kind      string `json:"kind"`
	Statement string `json:"statement"`
	Phase     string `json:"phase"`
	StartUS   int64  `json:"start_us"`
	ElapsedUS int64  `json:"elapsed_us"`
	Rows      int64  `json:"rows"`
	Done      bool   `json:"done"`
	Err       string `json:"error,omitempty"`
	// Session attributes the statement to a server session; 0 means it
	// ran outside any session (CLI, embedder).
	Session uint64 `json:"session,omitempty"`
}

// QueryToken is the handle an executor holds for one in-flight statement.
// A nil token is valid and all its methods no-op, mirroring the nil *Span
// contract, so the instrumented path needs no log-enabled checks.
type QueryToken struct {
	id      uint64
	log     *QueryLog
	kind    string
	stmt    string
	session uint64
	start   time.Time
	rows    atomic.Int64
	phase   atomic.Int32
}

// AddRows bumps the rows-so-far counter (scanned or produced).
func (t *QueryToken) AddRows(n int64) {
	if t == nil || n <= 0 {
		return
	}
	t.rows.Add(n)
}

// SetPhase publishes the current execution phase.
func (t *QueryToken) SetPhase(p QueryPhase) {
	if t == nil {
		return
	}
	t.phase.Store(int32(p))
}

// Finish removes the statement from the in-flight set and, if it ran
// longer than the log's slow threshold (or failed), retains it in the
// slow-query ring.
func (t *QueryToken) Finish(err error) {
	if t == nil {
		return
	}
	t.log.finish(t, err)
}

func (t *QueryToken) record(now time.Time) QueryRecord {
	return QueryRecord{
		ID:        t.id,
		Kind:      t.kind,
		Statement: t.stmt,
		Phase:     QueryPhase(t.phase.Load()).String(),
		StartUS:   t.start.UnixMicro(),
		ElapsedUS: now.Sub(t.start).Microseconds(),
		Rows:      t.rows.Load(),
		Session:   t.session,
	}
}

// QueryLog tracks in-flight statements and retains recently finished slow
// (or failed) ones in a fixed-capacity ring. It backs the diagnostics
// server's /queries endpoint. Safe for concurrent use; a nil *QueryLog is
// valid and hands out nil tokens.
type QueryLog struct {
	slowAfter time.Duration

	mu       sync.Mutex
	nextID   uint64
	inflight map[uint64]*QueryToken
	buf      []QueryRecord // ring of finished slow queries
	head, n  int
}

// DefaultSlowThreshold marks statements slower than this for retention
// when NewQueryLog is given a non-positive threshold.
const DefaultSlowThreshold = 10 * time.Millisecond

// NewQueryLog builds a log retaining at most capacity finished slow
// queries (default 128) with the given slow threshold.
func NewQueryLog(capacity int, slowAfter time.Duration) *QueryLog {
	if capacity <= 0 {
		capacity = 128
	}
	if slowAfter <= 0 {
		slowAfter = DefaultSlowThreshold
	}
	return &QueryLog{
		slowAfter: slowAfter,
		inflight:  make(map[uint64]*QueryToken),
		buf:       make([]QueryRecord, capacity),
	}
}

// Start registers a statement as in flight and returns its token. A nil
// log returns a nil token.
func (q *QueryLog) Start(kind, statement string) *QueryToken {
	return q.StartSession(kind, statement, 0)
}

// StartSession is Start with a session attribution for multi-session
// servers; session 0 means unattributed.
func (q *QueryLog) StartSession(kind, statement string, session uint64) *QueryToken {
	if q == nil {
		return nil
	}
	if len(statement) > maxStatementLen {
		statement = statement[:maxStatementLen] + "..."
	}
	t := &QueryToken{log: q, kind: kind, stmt: statement, session: session, start: time.Now()}
	q.mu.Lock()
	q.nextID++
	t.id = q.nextID
	q.inflight[t.id] = t
	q.mu.Unlock()
	return t
}

func (q *QueryLog) finish(t *QueryToken, err error) {
	now := time.Now()
	elapsed := now.Sub(t.start)
	t.phase.Store(int32(PhaseDone))
	q.mu.Lock()
	defer q.mu.Unlock()
	delete(q.inflight, t.id)
	if err == nil && elapsed < q.slowAfter {
		return
	}
	rec := t.record(now)
	rec.Done = true
	if err != nil {
		rec.Err = err.Error()
	}
	if q.n < len(q.buf) {
		q.buf[(q.head+q.n)%len(q.buf)] = rec
		q.n++
		return
	}
	q.buf[q.head] = rec
	q.head = (q.head + 1) % len(q.buf)
}

// Snapshot returns the in-flight statements (oldest first) and the
// retained slow queries (oldest first).
func (q *QueryLog) Snapshot() (inflight, slow []QueryRecord) {
	if q == nil {
		return nil, nil
	}
	now := time.Now()
	q.mu.Lock()
	defer q.mu.Unlock()
	inflight = make([]QueryRecord, 0, len(q.inflight))
	for _, t := range q.inflight {
		inflight = append(inflight, t.record(now))
	}
	sort.Slice(inflight, func(i, j int) bool { return inflight[i].ID < inflight[j].ID })
	slow = make([]QueryRecord, q.n)
	for i := 0; i < q.n; i++ {
		slow[i] = q.buf[(q.head+i)%len(q.buf)]
	}
	return inflight, slow
}

// WriteJSON renders {"in_flight": [...], "slow": [...]} for /queries.
func (q *QueryLog) WriteJSON(w io.Writer) error {
	inflight, slow := q.Snapshot()
	if inflight == nil {
		inflight = []QueryRecord{}
	}
	if slow == nil {
		slow = []QueryRecord{}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(struct {
		InFlight []QueryRecord `json:"in_flight"`
		Slow     []QueryRecord `json:"slow"`
	}{inflight, slow})
}
