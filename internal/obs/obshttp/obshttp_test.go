package obshttp

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"coherdb/internal/obs"
)

func populatedOptions(t *testing.T) (Options, *bool) {
	t.Helper()
	reg := obs.NewRegistry()
	reg.Help("coherdb_test_total", "test counter")
	reg.Counter("coherdb_test_total").Add(7)

	col := obs.NewCollector(16)
	sp := col.StartSpan("sql.stmt", obs.String("sql", "SELECT 1"))
	sp.Finish()

	ql := obs.NewQueryLog(4, time.Nanosecond)
	tok := ql.Start("SELECT", "SELECT * FROM D")
	time.Sleep(time.Microsecond)
	tok.Finish(nil)
	ql.Start("SELECT", "still running")

	scraped := false
	return Options{
		Registry:  reg,
		Collector: col,
		QueryLog:  ql,
		OnScrape:  []func(){func() { scraped = true }},
	}, &scraped
}

func get(t *testing.T, h http.Handler, path string) (*http.Response, string) {
	t.Helper()
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", path, nil))
	res := rec.Result()
	body, err := io.ReadAll(res.Body)
	if err != nil {
		t.Fatal(err)
	}
	return res, string(body)
}

func TestHandlerEndpoints(t *testing.T) {
	opts, scraped := populatedOptions(t)
	h := Handler(opts)

	res, body := get(t, h, "/healthz")
	if res.StatusCode != 200 || strings.TrimSpace(body) != "ok" {
		t.Fatalf("/healthz = %d %q", res.StatusCode, body)
	}

	res, body = get(t, h, "/metrics")
	if res.StatusCode != 200 {
		t.Fatalf("/metrics status = %d", res.StatusCode)
	}
	if !strings.Contains(res.Header.Get("Content-Type"), "version=0.0.4") {
		t.Errorf("/metrics content type = %q", res.Header.Get("Content-Type"))
	}
	if !strings.Contains(body, "coherdb_test_total 7") {
		t.Errorf("/metrics missing counter:\n%s", body)
	}
	if !*scraped {
		t.Error("OnScrape callback did not run before /metrics render")
	}

	res, body = get(t, h, "/traces")
	if res.StatusCode != 200 {
		t.Fatalf("/traces status = %d", res.StatusCode)
	}
	var traces struct {
		Spans []struct {
			Name string `json:"name"`
		} `json:"spans"`
		Dropped uint64 `json:"dropped"`
	}
	if err := json.Unmarshal([]byte(body), &traces); err != nil {
		t.Fatalf("/traces not JSON: %v\n%s", err, body)
	}
	if len(traces.Spans) != 1 || traces.Spans[0].Name != "sql.stmt" {
		t.Errorf("/traces spans = %+v", traces.Spans)
	}

	res, body = get(t, h, "/queries")
	if res.StatusCode != 200 {
		t.Fatalf("/queries status = %d", res.StatusCode)
	}
	var queries struct {
		InFlight []json.RawMessage `json:"in_flight"`
		Slow     []json.RawMessage `json:"slow"`
	}
	if err := json.Unmarshal([]byte(body), &queries); err != nil {
		t.Fatalf("/queries not JSON: %v\n%s", err, body)
	}
	if len(queries.InFlight) != 1 || len(queries.Slow) != 1 {
		t.Errorf("/queries in_flight=%d slow=%d, want 1/1", len(queries.InFlight), len(queries.Slow))
	}

	res, body = get(t, h, "/debug/pprof/")
	if res.StatusCode != 200 || !strings.Contains(body, "goroutine") {
		t.Errorf("/debug/pprof/ = %d", res.StatusCode)
	}
	res, _ = get(t, h, "/debug/pprof/cmdline")
	if res.StatusCode != 200 {
		t.Errorf("/debug/pprof/cmdline status = %d", res.StatusCode)
	}
}

// TestHandlerNilOptions verifies every endpoint stays well-formed when the
// process runs without a registry, collector or query log wired in.
func TestHandlerNilOptions(t *testing.T) {
	h := Handler(Options{})

	res, _ := get(t, h, "/metrics")
	if res.StatusCode != 200 {
		t.Errorf("/metrics status = %d", res.StatusCode)
	}

	res, body := get(t, h, "/traces")
	if res.StatusCode != 200 {
		t.Fatalf("/traces status = %d", res.StatusCode)
	}
	var traces struct {
		Spans []json.RawMessage `json:"spans"`
	}
	if err := json.Unmarshal([]byte(body), &traces); err != nil {
		t.Fatalf("/traces not JSON: %v\n%s", err, body)
	}

	res, body = get(t, h, "/queries")
	if res.StatusCode != 200 {
		t.Fatalf("/queries status = %d", res.StatusCode)
	}
	if err := json.Unmarshal([]byte(body), &struct{}{}); err != nil {
		t.Fatalf("/queries not JSON with nil log: %v\n%s", err, body)
	}
}

func TestServeAndClose(t *testing.T) {
	opts, _ := populatedOptions(t)
	srv, err := Serve("127.0.0.1:0", opts)
	if err != nil {
		t.Fatal(err)
	}
	res, err := http.Get("http://" + srv.Addr() + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	res.Body.Close()
	if res.StatusCode != 200 {
		t.Fatalf("/healthz over TCP = %d", res.StatusCode)
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := http.Get("http://" + srv.Addr() + "/healthz"); err == nil {
		t.Error("server still reachable after Close")
	}
}

// TestShutdownDrainsInFlight pins the graceful-shutdown contract: a
// request already executing when Shutdown is called runs to completion
// and gets its full response, while new connections are refused.
func TestShutdownDrainsInFlight(t *testing.T) {
	entered := make(chan struct{})
	release := make(chan struct{})
	var once sync.Once
	opts := Options{
		Registry: obs.NewRegistry(),
		// The scrape hook doubles as a block point: the in-flight
		// /metrics request parks here until the test releases it.
		OnScrape: []func(){func() {
			once.Do(func() { close(entered) })
			<-release
		}},
	}
	srv, err := Serve("127.0.0.1:0", opts)
	if err != nil {
		t.Fatal(err)
	}

	type result struct {
		code int
		err  error
	}
	done := make(chan result, 1)
	go func() {
		res, err := http.Get("http://" + srv.Addr() + "/metrics")
		if err != nil {
			done <- result{0, err}
			return
		}
		_, _ = io.Copy(io.Discard, res.Body)
		res.Body.Close()
		done <- result{res.StatusCode, nil}
	}()
	<-entered

	shut := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		shut <- srv.Shutdown(ctx)
	}()
	select {
	case err := <-shut:
		t.Fatalf("Shutdown returned (%v) with a request still in flight", err)
	case <-time.After(50 * time.Millisecond):
	}
	if _, err := http.Get("http://" + srv.Addr() + "/healthz"); err == nil {
		t.Error("new connection accepted during drain")
	}

	close(release)
	r := <-done
	if r.err != nil || r.code != 200 {
		t.Fatalf("in-flight request after Shutdown: code=%d err=%v", r.code, r.err)
	}
	if err := <-shut; err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
}
