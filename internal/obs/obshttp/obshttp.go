// Package obshttp serves the live diagnostics plane over HTTP: Prometheus
// metrics, health, pprof profiles, recent trace spans and the query log.
// It is opt-in (the cmds only start it under -listen) and is the
// groundwork for the ROADMAP's "coherdb server mode": the same mux will
// later carry query endpoints.
package obshttp

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"time"

	"coherdb/internal/obs"
)

// Options wires the diagnostics handler to a process's observability
// state. Any field may be nil; the corresponding endpoint then reports an
// empty (but well-formed) payload.
type Options struct {
	// Registry backs /metrics (Prometheus text exposition).
	Registry *obs.Registry
	// Collector backs /traces (recent finished spans as JSON).
	Collector *obs.Collector
	// QueryLog backs /queries (in-flight + slow statements).
	QueryLog *obs.QueryLog
	// OnScrape callbacks run before each /metrics render, letting callers
	// refresh pull-style gauges (dictionary size, pool occupancy).
	OnScrape []func()
}

// Handler builds the diagnostics mux:
//
//	/metrics       Prometheus text exposition
//	/healthz       "ok"
//	/debug/pprof/  net/http/pprof index, profiles, cmdline, symbol, trace
//	/traces        recent spans from the Collector ring as JSON
//	/queries       in-flight + slow-query log as JSON
func Handler(o Options) http.Handler {
	mux := http.NewServeMux()

	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		for _, f := range o.OnScrape {
			f()
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if o.Registry != nil {
			_ = o.Registry.WriteMetrics(w)
		}
	})

	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})

	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)

	mux.HandleFunc("/traces", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		var spans []obs.Span
		var dropped uint64
		if o.Collector != nil {
			spans = o.Collector.Spans()
			dropped = o.Collector.Dropped()
		}
		out := make([]spanJSON, len(spans))
		for i, s := range spans {
			out[i] = spanJSON{
				ID:       s.ID,
				ParentID: s.ParentID,
				Name:     s.Name,
				StartUS:  s.Start.UnixMicro(),
				DurUS:    s.End.Sub(s.Start).Microseconds(),
				Attrs:    s.Attrs,
			}
		}
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(struct {
			Spans   []spanJSON `json:"spans"`
			Dropped uint64     `json:"dropped"`
		}{out, dropped})
	})

	mux.HandleFunc("/queries", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		_ = o.QueryLog.WriteJSON(w)
	})

	return mux
}

// spanJSON is the /traces wire form of one finished span.
type spanJSON struct {
	ID       uint64     `json:"id"`
	ParentID uint64     `json:"parent_id,omitempty"`
	Name     string     `json:"name"`
	StartUS  int64      `json:"start_us"`
	DurUS    int64      `json:"dur_us"`
	Attrs    []obs.Attr `json:"attrs,omitempty"`
}

// Server is a running diagnostics listener.
type Server struct {
	ln  net.Listener
	srv *http.Server
}

// Serve binds addr (e.g. ":8080" or "127.0.0.1:0") and serves the
// diagnostics handler in a background goroutine until Close.
func Serve(addr string, o Options) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	srv := &http.Server{Handler: Handler(o), ReadHeaderTimeout: 5 * time.Second}
	go func() { _ = srv.Serve(ln) }()
	return &Server{ln: ln, srv: srv}, nil
}

// Addr returns the bound address (useful with ":0").
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close stops the listener immediately, dropping in-flight requests.
func (s *Server) Close() error { return s.srv.Close() }

// Shutdown stops accepting new connections and waits for in-flight
// requests to complete, up to the context's deadline — the graceful half
// of the SIGINT/SIGTERM path the cmds (and the coherdb query server)
// drain through. It returns ctx.Err() if the deadline passed with
// requests still running.
func (s *Server) Shutdown(ctx context.Context) error { return s.srv.Shutdown(ctx) }
