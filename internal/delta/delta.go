// Package delta tracks what changed between protocol revisions and which
// downstream consumers that forces to re-run. It is the engine's version of
// the paper's incremental-≪-monolithic argument (§3): a protocol edit
// touches a handful of rows, so re-verification should cost O(delta), not
// O(protocol).
//
// The package has three pieces:
//
//   - Set: the per-table rel.TableDelta collection for one revision step,
//     answering "did table T change?" and "did columns C of T change?".
//   - Graph: a dependency graph from source tables (and the columns a
//     consumer actually reads, extracted from planner column bindings or
//     constraint.Spec inputs) to named consumer nodes — invariants, solver
//     specs, deadlock analyses, hwmap reconstructions. Dirty(set) names the
//     nodes whose inputs intersect the delta.
//   - Tracker: captures copy-on-write snapshots plus revision counters of a
//     catalog's tables and diffs them against the live state. Unchanged
//     tables are detected by pointer identity plus revision number in O(1);
//     only mutated tables pay for a real diff.
//
// delta deliberately imports only rel (and obs for its counters):
// sqlmini, check, deadlock, and hwmap all import delta, and sqlmini's
// BeginRevision/Commit wraps a Tracker around its own catalog.
package delta

import (
	"fmt"
	"sort"
	"strings"

	"coherdb/internal/rel"
)

// Set is the collection of table deltas produced by one revision step.
// Tables with no entry are untouched. The zero value is unusable; use
// NewSet or Tracker.Diff.
type Set struct {
	byTable map[string]*rel.TableDelta
	order   []string // insertion order for deterministic iteration
}

// NewSet returns an empty delta set.
func NewSet() *Set {
	return &Set{byTable: make(map[string]*rel.TableDelta)}
}

// Add records a table's delta. Empty deltas are dropped so that
// TableTouched stays an exact "something changed" test.
func (s *Set) Add(d *rel.TableDelta) {
	if d.Empty() {
		return
	}
	if _, dup := s.byTable[d.Table]; !dup {
		s.order = append(s.order, d.Table)
	}
	s.byTable[d.Table] = d
}

// Empty reports whether no table changed. A nil Set means "no delta
// information" and reports non-empty, so consumers without history fall
// back to a full re-check rather than wrongly skipping everything.
func (s *Set) Empty() bool { return s != nil && len(s.byTable) == 0 }

// Table returns the named table's delta, or nil if it is untouched.
func (s *Set) Table(name string) *rel.TableDelta {
	if s == nil {
		return nil
	}
	return s.byTable[name]
}

// TableTouched reports whether the named table changed at all. A nil Set
// conservatively reports true.
func (s *Set) TableTouched(name string) bool {
	if s == nil {
		return true
	}
	_, ok := s.byTable[name]
	return ok
}

// Touches reports whether any of the named columns of the table changed.
// A nil Set conservatively reports true; an untouched table reports false
// regardless of columns; nil cols means "any column".
func (s *Set) Touches(table string, cols ...string) bool {
	if s == nil {
		return true
	}
	d, ok := s.byTable[table]
	if !ok {
		return false
	}
	if len(cols) == 0 {
		return true
	}
	return d.Touches(cols...)
}

// Tables returns the touched table names in first-touched order.
func (s *Set) Tables() []string {
	if s == nil {
		return nil
	}
	return s.order
}

// Rows returns the total delta size across tables: Σ |Added| + |Removed|.
func (s *Set) Rows() int {
	if s == nil {
		return 0
	}
	n := 0
	for _, d := range s.byTable {
		n += d.Rows()
	}
	return n
}

// String renders the set compactly for edit-loop diagnostics, e.g.
// "D{dirpv +1/-1} M{* +2/-0}" ("*" marks a schema change).
func (s *Set) String() string {
	if s == nil {
		return "<no delta>"
	}
	if len(s.byTable) == 0 {
		return "<empty>"
	}
	var b strings.Builder
	for i, name := range s.order {
		d := s.byTable[name]
		if i > 0 {
			b.WriteByte(' ')
		}
		b.WriteString(name)
		b.WriteByte('{')
		if d.SchemaChanged {
			b.WriteByte('*')
		} else {
			touched := make([]string, 0, len(d.Cols))
			for j, hit := range d.ColTouched {
				if hit {
					touched = append(touched, d.Cols[j])
				}
			}
			b.WriteString(strings.Join(touched, ","))
		}
		fmt.Fprintf(&b, " +%d/-%d}", len(d.Added), len(d.Removed))
	}
	return b.String()
}

// Input names one dependency of a consumer node: a table and the columns
// the node reads from it. Nil Cols means the node depends on the whole
// table (any change re-runs it).
type Input struct {
	Table string
	Cols  []string
}

// Graph maps named consumer nodes — invariants, constraint specs, deadlock
// analyses, hwmap reconstructions — to the table columns they read. It is
// built once (from planner column bindings and spec inputs) and queried per
// revision. Not safe for concurrent mutation.
type Graph struct {
	inputs map[string][]Input
	order  []string
}

// NewGraph returns an empty dependency graph.
func NewGraph() *Graph {
	return &Graph{inputs: make(map[string][]Input)}
}

// Add registers (or extends) a node's inputs.
func (g *Graph) Add(node string, inputs ...Input) {
	if _, ok := g.inputs[node]; !ok {
		g.order = append(g.order, node)
	}
	g.inputs[node] = append(g.inputs[node], inputs...)
}

// Inputs returns a node's registered inputs (nil for unknown nodes).
func (g *Graph) Inputs(node string) []Input { return g.inputs[node] }

// Nodes returns the node names in registration order.
func (g *Graph) Nodes() []string { return g.order }

// Dirty returns the set of nodes whose inputs intersect the delta. With a
// nil Set every node is dirty (no history ⇒ full re-run).
func (g *Graph) Dirty(s *Set) map[string]bool {
	dirty := make(map[string]bool)
	for node, ins := range g.inputs {
		if DirtyInputs(s, ins) {
			dirty[node] = true
		}
	}
	return dirty
}

// DirtyList is Dirty in registration order.
func (g *Graph) DirtyList(s *Set) []string {
	var out []string
	for _, node := range g.order {
		if DirtyInputs(s, g.inputs[node]) {
			out = append(out, node)
		}
	}
	return out
}

// DirtyInputs reports whether any input intersects the delta — the shared
// predicate for graph nodes and for consumers that keep their own input
// lists (check.Suite, deadlock.Analyze).
func DirtyInputs(s *Set, inputs []Input) bool {
	if s == nil {
		return true
	}
	for _, in := range inputs {
		if s.Touches(in.Table, in.Cols...) {
			return true
		}
	}
	return false
}

// SortedTables returns the touched tables sorted by name (for stable
// rendering in reports).
func (s *Set) SortedTables() []string {
	out := append([]string(nil), s.Tables()...)
	sort.Strings(out)
	return out
}
