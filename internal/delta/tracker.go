package delta

import "coherdb/internal/rel"

// Catalog is the table source a Tracker watches. *sqlmini.DB satisfies it;
// so does any map-backed test double.
type Catalog interface {
	// Names returns the catalog's table names.
	Names() []string
	// Table returns the named table and whether it exists.
	Table(name string) (*rel.Table, bool)
}

// Tracker captures a baseline of a catalog — copy-on-write snapshots plus
// (pointer, revision) pairs — and diffs the live catalog against it.
// Capture costs O(tables × cols); Diff costs O(1) per unchanged table
// (pointer identity + revision compare, no data access) and a real
// rel.DiffCodes only for tables that mutated, were replaced, created, or
// dropped.
//
// A Tracker must not race with writers: capture and diff inside whatever
// exclusion the catalog's mutations already require (sqlmini.DB's revision
// API handles this for its own catalog).
type Tracker struct {
	snaps map[string]*rel.Table // frozen snapshot at capture
	live  map[string]*rel.Table // live pointer at capture
	revs  map[string]uint64     // live revision at capture
}

// NewTracker returns a tracker with no baseline; Diff before the first
// Capture returns a full delta for every table.
func NewTracker() *Tracker {
	return &Tracker{
		snaps: make(map[string]*rel.Table),
		live:  make(map[string]*rel.Table),
		revs:  make(map[string]uint64),
	}
}

// Capture (re-)baselines the tracker against the catalog's current state.
func (tr *Tracker) Capture(c Catalog) {
	clear(tr.snaps)
	clear(tr.live)
	clear(tr.revs)
	for _, name := range c.Names() {
		t, ok := c.Table(name)
		if !ok {
			continue
		}
		tr.snaps[name] = t.Snapshot()
		tr.live[name] = t
		tr.revs[name] = t.Revision()
	}
}

// Diff returns the delta from the captured baseline to the catalog's
// current state. It does not move the baseline; call Capture (or
// DiffAndCapture) to advance it.
func (tr *Tracker) Diff(c Catalog) *Set {
	s := NewSet()
	seen := make(map[string]bool, len(tr.snaps))
	for _, name := range c.Names() {
		cur, ok := c.Table(name)
		if !ok {
			continue
		}
		seen[name] = true
		snap, had := tr.snaps[name]
		if !had {
			// Created since capture: everything is added.
			s.Add(rel.DiffCodes(emptyLike(cur), cur))
			continue
		}
		if tr.live[name] == cur && tr.revs[name] == cur.Revision() {
			continue // same object, same revision: provably unchanged
		}
		s.Add(rel.DiffCodes(snap, cur))
	}
	for name, snap := range tr.snaps {
		if !seen[name] {
			// Dropped since capture: everything is removed.
			s.Add(rel.DiffCodes(snap, emptyLike(snap)))
		}
	}
	return s
}

// DiffAndCapture diffs, then re-baselines, in one pass — the edit-loop
// primitive: each call returns what the edits since the previous call
// changed.
func (tr *Tracker) DiffAndCapture(c Catalog) *Set {
	s := tr.Diff(c)
	tr.Capture(c)
	return s
}

// emptyLike returns a rowless table with t's schema, for diffing created
// and dropped tables.
func emptyLike(t *rel.Table) *rel.Table {
	return rel.MustNewTable(t.Name(), t.ColumnsRef()...)
}
