package delta

import (
	"testing"

	"coherdb/internal/rel"
)

// mapCatalog is a test double for sqlmini.DB's catalog surface.
type mapCatalog map[string]*rel.Table

func (c mapCatalog) Names() []string {
	out := make([]string, 0, len(c))
	for n := range c {
		out = append(out, n)
	}
	return out
}

func (c mapCatalog) Table(name string) (*rel.Table, bool) {
	t, ok := c[name]
	return t, ok
}

func twoColTable(name string) *rel.Table {
	t := rel.MustNewTable(name, "st", "pv")
	t.MustInsert(rel.S("I"), rel.S("0"))
	t.MustInsert(rel.S("M"), rel.S("1"))
	return t
}

func TestTrackerDiffFastPathAndEdit(t *testing.T) {
	cat := mapCatalog{"D": twoColTable("D"), "M": twoColTable("M")}
	tr := NewTracker()
	tr.Capture(cat)

	if s := tr.Diff(cat); !s.Empty() {
		t.Fatalf("no-edit diff not empty: %s", s)
	}

	if err := cat["D"].Set(0, "pv", rel.S("7")); err != nil {
		t.Fatal(err)
	}
	s := tr.Diff(cat)
	if s.Empty() || !s.TableTouched("D") || s.TableTouched("M") {
		t.Fatalf("edit diff wrong: %s", s)
	}
	if !s.Touches("D", "pv") || s.Touches("D", "st") {
		t.Fatalf("column attribution wrong: %s", s)
	}
	if s.Rows() != 2 { // one removed old row, one added new row
		t.Fatalf("rows = %d, want 2", s.Rows())
	}

	// Diff does not advance the baseline; DiffAndCapture does.
	if s2 := tr.Diff(cat); s2.Empty() {
		t.Fatal("baseline moved without Capture")
	}
	tr.Capture(cat)
	if s3 := tr.Diff(cat); !s3.Empty() {
		t.Fatalf("diff after recapture not empty: %s", s3)
	}
}

func TestTrackerCreateDropReplace(t *testing.T) {
	cat := mapCatalog{"D": twoColTable("D")}
	tr := NewTracker()
	tr.Capture(cat)

	cat["N"] = twoColTable("N")
	delete(cat, "D")
	s := tr.Diff(cat)
	nd := s.Table("N")
	if nd == nil || len(nd.Added) != 2 || len(nd.Removed) != 0 {
		t.Fatalf("created table delta wrong: %s", s)
	}
	dd := s.Table("D")
	if dd == nil || len(dd.Removed) != 2 || len(dd.Added) != 0 {
		t.Fatalf("dropped table delta wrong: %s", s)
	}

	// Replacing a table object with identical contents must still be
	// detected as untouched (real diff, empty result).
	tr.Capture(cat)
	cat["N"] = cat["N"].Clone()
	if s := tr.Diff(cat); !s.Empty() {
		t.Fatalf("identical replacement reported a delta: %s", s)
	}
}

func TestGraphDirty(t *testing.T) {
	g := NewGraph()
	g.Add("inv-a", Input{Table: "D", Cols: []string{"st"}})
	g.Add("inv-b", Input{Table: "D", Cols: []string{"pv"}})
	g.Add("inv-c", Input{Table: "M"}) // whole-table dependency
	g.Add("inv-d", Input{Table: "D", Cols: []string{"st"}}, Input{Table: "M", Cols: []string{"pv"}})

	d := twoColTable("D")
	snap := d.Snapshot()
	if err := d.Set(1, "pv", rel.S("9")); err != nil {
		t.Fatal(err)
	}
	s := NewSet()
	s.Add(rel.DiffCodes(snap, d))

	dirty := g.Dirty(s)
	if dirty["inv-a"] || !dirty["inv-b"] || dirty["inv-c"] || dirty["inv-d"] {
		t.Fatalf("dirty set wrong: %v", dirty)
	}
	if got := g.DirtyList(s); len(got) != 1 || got[0] != "inv-b" {
		t.Fatalf("DirtyList = %v", got)
	}

	// nil Set ⇒ everything dirty (no history).
	all := g.Dirty(nil)
	for _, n := range g.Nodes() {
		if !all[n] {
			t.Fatalf("nil set did not dirty %s", n)
		}
	}
}

func TestSetConservativeNil(t *testing.T) {
	var s *Set
	if s.Empty() {
		t.Fatal("nil set must not report empty")
	}
	if !s.TableTouched("anything") || !s.Touches("anything", "col") {
		t.Fatal("nil set must be conservative")
	}
}
