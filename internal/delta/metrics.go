package delta

import "coherdb/internal/obs"

// Counters registers (or fetches) the delta-layer counters on reg:
//
//	coherdb_delta_rows_reused_total   — input rows a consumer did not
//	                                    re-scan because its node was skipped
//	coherdb_delta_nodes_skipped_total — consumer nodes (invariants,
//	                                    analyses, reconstructions) skipped
//	                                    because their inputs were untouched
//
// Both return nil when reg is nil; callers guard their Inc/Add sites.
func Counters(reg *obs.Registry) (rowsReused, nodesSkipped *obs.Counter) {
	if reg == nil {
		return nil, nil
	}
	reg.Help("coherdb_delta_rows_reused_total",
		"Input rows not re-scanned because the consuming node was delta-skipped.")
	reg.Help("coherdb_delta_nodes_skipped_total",
		"Consumer nodes skipped because their input columns were untouched by the delta.")
	return reg.Counter("coherdb_delta_rows_reused_total"),
		reg.Counter("coherdb_delta_nodes_skipped_total")
}
