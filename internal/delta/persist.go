package delta

import (
	"encoding/json"
	"fmt"
)

// graphJSON is the serialized form of a Graph: nodes in registration
// order, each with its input list. Input's fields are exported, so the
// wire format is the natural JSON of the in-memory structure.
type graphJSON struct {
	Nodes []graphNodeJSON `json:"nodes"`
}

type graphNodeJSON struct {
	Name   string  `json:"name"`
	Inputs []Input `json:"inputs"`
}

// EncodeGraph serializes g (nodes in registration order) so a later
// process can rebuild the dependency graph without re-analyzing SQL.
func EncodeGraph(g *Graph) ([]byte, error) {
	out := graphJSON{Nodes: make([]graphNodeJSON, 0, len(g.order))}
	for _, node := range g.order {
		out.Nodes = append(out.Nodes, graphNodeJSON{Name: node, Inputs: g.inputs[node]})
	}
	return json.Marshal(out)
}

// DecodeGraph inverts EncodeGraph, preserving node order.
func DecodeGraph(data []byte) (*Graph, error) {
	var in graphJSON
	if err := json.Unmarshal(data, &in); err != nil {
		return nil, fmt.Errorf("delta: decoding graph: %w", err)
	}
	g := NewGraph()
	for _, n := range in.Nodes {
		g.Add(n.Name, n.Inputs...)
	}
	return g, nil
}
