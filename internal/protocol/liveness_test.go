package protocol

import (
	"testing"

	"coherdb/internal/rel"
)

// TestBusyFamilyLiveness checks, on the generated table itself, that every
// transaction family forms a live state machine: the request rules allocate
// into states from which the response rules can always reach de-allocation,
// and no busy state is a dead end.
func TestBusyFamilyLiveness(t *testing.T) {
	d, _ := directoryTable(t)

	// Transition edges between busy states, from the response rows.
	next := map[string][]string{}
	dealloc := map[string]bool{}
	entry := map[string]bool{}
	for i := 0; i < d.NumRows(); i++ {
		cur := d.Get(i, "bdirst")
		nxt := d.Get(i, "nxtbdirst")
		switch {
		case d.Get(i, "bdiralloc").Equal(rel.S("alloc")):
			entry[nxt.Str()] = true
		case d.Get(i, "bdiralloc").Equal(rel.S("dealloc")):
			dealloc[cur.Str()] = true
		case IsBusyState(cur.Str()) && !nxt.IsNull():
			next[cur.Str()] = append(next[cur.Str()], nxt.Str())
		}
	}

	// Every busy state must be reachable from some entry state.
	reach := map[string]bool{}
	var stack []string
	for e := range entry {
		stack = append(stack, e)
		reach[e] = true
	}
	for len(stack) > 0 {
		s := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, n := range next[s] {
			if !reach[n] {
				reach[n] = true
				stack = append(stack, n)
			}
		}
	}
	for _, b := range BusyStates() {
		if !reach[b] {
			t.Errorf("busy state %s unreachable from any allocation", b)
		}
	}

	// Every busy state must reach a de-allocating state (liveness): walk
	// backwards from the dealloc states.
	prev := map[string][]string{}
	for s, ns := range next {
		for _, n := range ns {
			prev[n] = append(prev[n], s)
		}
	}
	live := map[string]bool{}
	stack = stack[:0]
	for s := range dealloc {
		live[s] = true
		stack = append(stack, s)
	}
	for len(stack) > 0 {
		s := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, p := range prev[s] {
			if !live[p] {
				live[p] = true
				stack = append(stack, p)
			}
		}
	}
	for _, b := range BusyStates() {
		if !live[b] {
			t.Errorf("busy state %s cannot reach de-allocation (stuck transaction)", b)
		}
	}

	// Transitions never leave the transaction family (also a §4.3
	// invariant; cross-checked here at the graph level).
	for s, ns := range next {
		for _, n := range ns {
			if IsBusyState(n) && BusyTxn(n) != BusyTxn(s) {
				t.Errorf("transition %s -> %s crosses families", s, n)
			}
		}
	}
}

// TestEveryResponseAdvancesOrCompletes verifies there are no response rows
// that leave the busy entry exactly as it was without any output: progress
// is guaranteed for every response the directory accepts.
func TestEveryResponseAdvancesOrCompletes(t *testing.T) {
	d, _ := directoryTable(t)
	for i := 0; i < d.NumRows(); i++ {
		if !IsResponse(d.Get(i, "inmsg").Str()) {
			continue
		}
		cur, nxt := d.Get(i, "bdirst"), d.Get(i, "nxtbdirst")
		counts := !d.Get(i, "nxtbdirpv").IsNull()
		sendsMsg := !d.Get(i, "locmsg").IsNull() || !d.Get(i, "remmsg").IsNull() || !d.Get(i, "memmsg").IsNull()
		if cur.Equal(nxt) && !counts && !sendsMsg {
			t.Errorf("row %d: response %s at %s makes no progress",
				i, d.Get(i, "inmsg"), cur)
		}
	}
}
