package protocol

import (
	"math/rand"
	"testing"

	"coherdb/internal/constraint"
	"coherdb/internal/rel"
	"coherdb/internal/sqlmini"
)

func TestRuleSetBasics(t *testing.T) {
	rs := NewRuleSet()
	rs.Add(Rule{ID: "a", When: `x = "1"`, Set: map[string]string{"y": "p"}})
	rs.Addf("b%d", []any{2}, `x = "2"`, map[string]string{"y": "q"})
	if rs.Len() != 2 {
		t.Fatal("len")
	}
	if got := rs.Rules(); len(got) != 2 || got[0].ID != "a" || got[1].ID != "b2" {
		t.Fatalf("rules = %+v", got)
	}
	if rs.LegalityExpr() == "" {
		t.Fatal("legality empty")
	}
}

func TestRuleSetDuplicateIDPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	rs := NewRuleSet()
	rs.Add(Rule{ID: "x", When: "a = 1"})
	rs.Add(Rule{ID: "x", When: "a = 2"})
}

func TestRuleSetEmptyIDPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewRuleSet().Add(Rule{When: "a = 1"})
}

func TestCompileRulePriority(t *testing.T) {
	// Overlapping rules: the first matching rule defines every output,
	// even the ones it leaves at NULL.
	s := constraint.NewSpec("prio")
	mustDo(t, s.AddInput("x", "1", "2"))
	mustDo(t, s.AddOutput("y", "p", "q"))
	mustDo(t, s.AddOutput("z", "r"))
	rs := NewRuleSet()
	rs.Add(Rule{ID: "specific", When: `x = "1"`, Set: map[string]string{"y": "p"}}) // z stays NULL
	rs.Add(Rule{ID: "general", When: `x <> NULL`, Set: map[string]string{"y": "q", "z": "r"}})
	if err := rs.CompileInto(s, "x", []string{"y", "z"}); err != nil {
		t.Fatal(err)
	}
	tab, _, err := constraint.Solve(s)
	if err != nil {
		t.Fatal(err)
	}
	row1 := tab.Select(func(r rel.Row) bool { return r.Get("x").Equal(rel.S("1")) })
	if row1.NumRows() != 1 || !row1.Get(0, "y").Equal(rel.S("p")) || !row1.Get(0, "z").IsNull() {
		t.Fatalf("priority violated:\n%s", tab)
	}
	row2 := tab.Select(func(r rel.Row) bool { return r.Get("x").Equal(rel.S("2")) })
	if row2.NumRows() != 1 || !row2.Get(0, "y").Equal(rel.S("q")) || !row2.Get(0, "z").Equal(rel.S("r")) {
		t.Fatalf("general rule broken:\n%s", tab)
	}
}

// TestQuickCompiledRulesMatchDirectEvaluation is the compiler's soundness
// property: solving the compiled ternary constraints yields exactly the
// table obtained by directly applying the first matching rule to every
// legal input combination.
func TestQuickCompiledRulesMatchDirectEvaluation(t *testing.T) {
	rng := rand.New(rand.NewSource(2003))
	for trial := 0; trial < 30; trial++ {
		inVals := []string{"a", "b", "c"}[:1+rng.Intn(3)]
		outVals := []string{"p", "q"}

		// Random rules over two input columns.
		type simpleRule struct {
			x, y string // conditions on in1 (and in2 when y != "")
			set  map[string]string
		}
		var simples []simpleRule
		rs := NewRuleSet()
		n := 1 + rng.Intn(4)
		for k := 0; k < n; k++ {
			r := simpleRule{x: inVals[rng.Intn(len(inVals))], set: map[string]string{}}
			when := `in1 = "` + r.x + `"`
			if rng.Intn(2) == 0 {
				r.y = inVals[rng.Intn(len(inVals))]
				when += ` and in2 = "` + r.y + `"`
			}
			if rng.Intn(2) == 0 {
				r.set["out1"] = outVals[rng.Intn(len(outVals))]
			}
			if rng.Intn(2) == 0 {
				r.set["out2"] = outVals[rng.Intn(len(outVals))]
			}
			rs.Add(Rule{ID: string(rune('r' + k)), When: when, Set: r.set})
			simples = append(simples, r)
		}

		spec := constraint.NewSpec("q")
		mustDo(t, spec.AddColumn(constraint.Column{Name: "in1", Values: inVals, NoNull: true}))
		mustDo(t, spec.AddColumn(constraint.Column{Name: "in2", Values: inVals, NoNull: true}))
		mustDo(t, spec.AddColumn(constraint.Column{Name: "out1", Kind: constraint.Output, Values: outVals}))
		mustDo(t, spec.AddColumn(constraint.Column{Name: "out2", Kind: constraint.Output, Values: outVals}))
		if err := rs.CompileInto(spec, "in1", []string{"out1", "out2"}); err != nil {
			t.Fatal(err)
		}
		got, _, err := constraint.Solve(spec)
		if err != nil {
			t.Fatal(err)
		}

		// Direct evaluation: for each input combo, the first matching
		// rule's Set defines the outputs; combos with no match are
		// illegal (pruned by the legality constraint).
		want := rel.MustNewTable("q", "in1", "in2", "out1", "out2")
		for _, v1 := range inVals {
			for _, v2 := range inVals {
				matched := false
				for _, r := range simples {
					if r.x != v1 || (r.y != "" && r.y != v2) {
						continue
					}
					o1, o2 := rel.Null(), rel.Null()
					if v, ok := r.set["out1"]; ok {
						o1 = rel.S(v)
					}
					if v, ok := r.set["out2"]; ok {
						o2 = rel.S(v)
					}
					want.MustInsert(rel.S(v1), rel.S(v2), o1, o2)
					matched = true
					break
				}
				_ = matched
			}
		}
		eq, err := got.EqualRows(want.SetName(got.Name()))
		if err != nil || !eq {
			t.Fatalf("trial %d: compiled table differs\ncompiled:\n%s\ndirect:\n%s",
				trial, got, want)
		}
	}
}

func TestCompileLegalityConstraintPrunes(t *testing.T) {
	s := constraint.NewSpec("legal")
	mustDo(t, s.AddColumn(constraint.Column{Name: "x", Values: []string{"1", "2", "3"}, NoNull: true}))
	mustDo(t, s.AddColumn(constraint.Column{Name: "y", Kind: constraint.Output, Values: []string{"p"}}))
	rs := NewRuleSet()
	rs.Add(Rule{ID: "only1", When: `x = "1"`, Set: map[string]string{"y": "p"}})
	if err := rs.CompileInto(s, "x", []string{"y"}); err != nil {
		t.Fatal(err)
	}
	tab, _, err := constraint.Solve(s)
	if err != nil {
		t.Fatal(err)
	}
	if tab.NumRows() != 1 {
		t.Fatalf("legality failed to prune: %d rows\n%s", tab.NumRows(), tab)
	}
}

func TestCompileInvalidConstraintSurfaces(t *testing.T) {
	s := constraint.NewSpec("bad")
	mustDo(t, s.AddInput("x", "1"))
	mustDo(t, s.AddOutput("y", "p"))
	rs := NewRuleSet()
	rs.Add(Rule{ID: "broken", When: `x = `, Set: map[string]string{"y": "p"}})
	if err := rs.CompileInto(s, "x", []string{"y"}); err == nil {
		t.Fatal("broken When must fail compilation")
	}
}

func mustDo(t testing.TB, err error) {
	t.Helper()
	if err != nil {
		t.Fatal(err)
	}
}

var _ = sqlmini.MapEnv{}
