package protocol

import (
	"fmt"

	"coherdb/internal/constraint"
)

// The seven controllers besides the directory (§2: "several controllers
// including the directory, node, remote access cache, cache, and memory
// controllers that are distributed and replicated throughout the system";
// §6: "a total of 8 controller database tables"). Each is specified the
// same way as D: column tables plus column constraints compiled from
// transition rules.
//
// Message (source, destination) role pairs follow the deadlock model of
// §4.1: only inter-quad hops and the home directory<->memory hop occupy
// virtual channels, so they carry distinct role pairs (local->home,
// home->remote, remote->home, home->local, home->home). Node-internal hops
// (cache <-> node interface <-> processor) are written local->local and are
// never assigned a channel.
const (
	MemoryTable    = "M"
	CacheTable     = "C"
	NodeTable      = "N"
	RACTable       = "R"
	IOBridgeTable  = "IO"
	InterruptTable = "INT"
	SyncTable      = "SY"
)

// ctrlBuilder carries the shared boilerplate of the small controller specs.
type ctrlBuilder struct {
	spec *constraint.Spec
	rs   *RuleSet
	outs []string
}

func newCtrl(name string) *ctrlBuilder {
	s := constraint.NewSpec(name)
	RegisterFuncs(s.RegisterFunc)
	return &ctrlBuilder{spec: s, rs: NewRuleSet()}
}

func (b *ctrlBuilder) input(name string, noNull bool, vals ...string) {
	if err := b.spec.AddColumn(constraint.Column{Name: name, Kind: constraint.Input, Values: vals, NoNull: noNull}); err != nil {
		panic(err)
	}
}

func (b *ctrlBuilder) output(name string, vals ...string) {
	if err := b.spec.AddColumn(constraint.Column{Name: name, Kind: constraint.Output, Values: vals}); err != nil {
		panic(err)
	}
	b.outs = append(b.outs, name)
}

// msgOutput declares a message output column group (msg, src, dest, rsrc).
func (b *ctrlBuilder) msgOutput(prefix string, msgs []string, srcs, dests []string, rsrcs []string) {
	b.output(prefix, msgs...)
	b.output(prefix+"src", srcs...)
	b.output(prefix+"dest", dests...)
	b.output(prefix+"rsrc", rsrcs...)
}

func (b *ctrlBuilder) rule(id, when string, set map[string]string) {
	b.rs.Add(Rule{ID: id, When: when, Set: set})
}

func (b *ctrlBuilder) finish(legalityCol string) (*constraint.Spec, error) {
	if err := b.rs.CompileInto(b.spec, legalityCol, b.outs); err != nil {
		return nil, err
	}
	return b.spec, nil
}

// msgSet builds a message output group value set.
func msgSet(prefix, msg, src, dest, rsrc string) map[string]string {
	return map[string]string{
		prefix: msg, prefix + "src": src, prefix + "dest": dest, prefix + "rsrc": rsrc,
	}
}

// BuildMemorySpec constructs the home memory controller table M. It
// services the directory's memory accesses and forwarded writebacks; the
// §4.2 dependency row R1 — (wb, home, home) in, (compl, home, home) out —
// comes from this table.
func BuildMemorySpec() (*constraint.Spec, error) {
	b := newCtrl(MemoryTable)
	b.input("inmsg", true, "mread", "mwrite", "mrmw", "mwrpart", "wb")
	b.input("inmsgsrc", true, RoleHome)
	b.input("inmsgdest", true, RoleHome)
	b.input("inmsgrsrc", true, QMem)
	b.input("bankst", true, "ready", "refresh")
	b.msgOutput("dirmsg", []string{"mdata", "mdone", "compl", "retry"},
		[]string{RoleHome}, []string{RoleHome}, []string{QResp})
	b.msgOutput("dirmsg2", []string{"mdone"},
		[]string{RoleHome}, []string{RoleHome}, []string{QResp})
	b.output("dramcmd", "rcas", "wcas", "rmw")

	type mrow struct{ in, out, out2, cmd string }
	rows := []mrow{
		{"mread", "mdata", "", "rcas"},
		{"mwrite", "mdone", "", "wcas"},
		{"mrmw", "mdata", "mdone", "rmw"},
		{"mwrpart", "mdone", "", "wcas"},
		{"wb", "compl", "", "wcas"},
	}
	for _, r := range rows {
		set := msgSet("dirmsg", r.out, RoleHome, RoleHome, QResp)
		set["dramcmd"] = r.cmd
		if r.out2 != "" {
			for k, v := range msgSet("dirmsg2", r.out2, RoleHome, RoleHome, QResp) {
				set[k] = v
			}
		}
		b.rule(r.in+"@ready", all(eq("inmsg", r.in), eq("bankst", "ready")), set)
		// During a refresh the access is bounced back to the directory.
		b.rule(r.in+"@refresh", all(eq("inmsg", r.in), eq("bankst", "refresh")),
			msgSet("dirmsg", "retry", RoleHome, RoleHome, QResp))
	}
	return b.finish("inmsg")
}

// BuildCacheSpec constructs the per-processor cache controller table C: the
// 4-state MESI protocol [7] with the transient states of a real pipeline.
// In the deadlock analysis this controller acts in the remote role: its
// snoop rows (sinv in -> idone out, etc.) induce the remote->home
// dependencies. Requests toward the node interface and responses delivered
// by it are node-internal (local->local). A retried transaction aborts to
// a stable state and the processor re-executes the operation, so retries
// never induce a channel dependency.
func BuildCacheSpec() (*constraint.Spec, error) {
	b := newCtrl(CacheTable)
	states := append(CacheStates(), CacheTransients()...)
	b.input("inmsg", true,
		"prread", "prwrite", "previct", "prflush",
		"sinv", "sread", "sflush",
		"data", "datax", "upgack", "wbcompl", "retry", "nack")
	b.input("inmsgsrc", true, RoleLocal, RoleHome)
	b.input("inmsgdest", true, RoleLocal, RoleRemote)
	b.input("inmsgrsrc", true, QReq, QResp)
	b.input("cachest", true, states...)
	b.msgOutput("busmsg", []string{"read", "readex", "upgrade", "wb", "replhint"},
		[]string{RoleLocal}, []string{RoleLocal}, []string{QReq})
	b.msgOutput("snpmsg", []string{"idone", "sdone", "sdata", "swbdata"},
		[]string{RoleRemote}, []string{RoleHome}, []string{QResp})
	b.output("prresp", "pdata", "pdone", "pstall")
	b.output("nxtcachest", states...)

	// Snoops arrive from home over the inter-quad channel; everything else
	// is node-internal.
	b.spec.MustConstrain("inmsgsrc",
		in("inmsg", "sinv", "sread", "sflush")+
			` ? inmsgsrc = "home" : inmsgsrc = "local"`)
	b.spec.MustConstrain("inmsgdest",
		in("inmsg", "sinv", "sread", "sflush")+
			` ? inmsgdest = "remote" : inmsgdest = "local"`)
	b.spec.MustConstrain("inmsgrsrc",
		`isrequest(inmsg) ? inmsgrsrc = "reqq" : inmsgrsrc = "respq"`)

	pr := func(st string) map[string]string { return map[string]string{"prresp": "pdata", "nxtcachest": st} }
	done := func(st string) map[string]string { return map[string]string{"prresp": "pdone", "nxtcachest": st} }
	abort := func(st string) map[string]string { return map[string]string{"prresp": "pstall", "nxtcachest": st} }
	buscall := func(msg, nxt string) map[string]string {
		set := msgSet("busmsg", msg, RoleLocal, RoleLocal, QReq)
		set["nxtcachest"] = nxt
		return set
	}
	snoop := func(msg, nxt string) map[string]string {
		set := msgSet("snpmsg", msg, RoleRemote, RoleHome, QResp)
		set["nxtcachest"] = nxt
		return set
	}
	whenAt := func(msg, st string) string { return all(eq("inmsg", msg), eq("cachest", st)) }

	// Processor loads.
	b.rule("prread@I", whenAt("prread", CacheI), buscall("read", "IS_d"))
	for _, st := range []string{CacheS, CacheE, CacheM} {
		b.rule("prread@"+st, whenAt("prread", st), pr(st))
	}
	for _, st := range CacheTransients() {
		b.rule("prread@"+st, whenAt("prread", st), abort(st))
	}
	// Processor stores.
	b.rule("prwrite@I", whenAt("prwrite", CacheI), buscall("readex", "IM_d"))
	b.rule("prwrite@S", whenAt("prwrite", CacheS), buscall("upgrade", "SM_w"))
	b.rule("prwrite@E", whenAt("prwrite", CacheE), done(CacheM))
	b.rule("prwrite@M", whenAt("prwrite", CacheM), done(CacheM))
	for _, st := range CacheTransients() {
		b.rule("prwrite@"+st, whenAt("prwrite", st), abort(st))
	}
	// Evictions and flushes. Evicting an invalid line is a no-op.
	b.rule("previct@S", whenAt("previct", CacheS), buscall("replhint", CacheI))
	b.rule("previct@E", whenAt("previct", CacheE), buscall("replhint", CacheI))
	b.rule("previct@M", whenAt("previct", CacheM), buscall("wb", "MI_w"))
	b.rule("previct@I", whenAt("previct", CacheI), done(CacheI))
	b.rule("prflush@M", whenAt("prflush", CacheM), buscall("wb", "MI_w"))
	b.rule("prflush@S", whenAt("prflush", CacheS), buscall("replhint", CacheI))
	b.rule("prflush@E", whenAt("prflush", CacheE), buscall("replhint", CacheI))
	b.rule("prflush@I", whenAt("prflush", CacheI), done(CacheI))

	// Snoops. A modified owner answers sinv with its data attached
	// (swbdata); with a writeback already in flight (MI_w) it answers
	// idone — the §4.2 race.
	b.rule("sinv@S", whenAt("sinv", CacheS), snoop("idone", CacheI))
	b.rule("sinv@E", whenAt("sinv", CacheE), snoop("idone", CacheI))
	b.rule("sinv@M", whenAt("sinv", CacheM), snoop("swbdata", CacheI))
	b.rule("sinv@MI_w", whenAt("sinv", "MI_w"), snoop("idone", "II_s"))
	b.rule("sinv@IS_d", whenAt("sinv", "IS_d"), snoop("idone", "IS_d"))
	// A racing replacement hint can leave the line already invalid, and a
	// racing exclusive request can catch an upgrade in flight; both
	// acknowledge the invalidation.
	b.rule("sinv@I", whenAt("sinv", CacheI), snoop("idone", CacheI))
	b.rule("sinv@SM_w", whenAt("sinv", "SM_w"), snoop("idone", "II_s"))
	// Snoop misses on the remaining transients answer benignly, as
	// hardware does: an invalidation finds nothing to invalidate, a read
	// finds nothing to supply.
	b.rule("sinv@IM_d", whenAt("sinv", "IM_d"), snoop("idone", "IM_d"))
	b.rule("sinv@II_s", whenAt("sinv", "II_s"), snoop("idone", "II_s"))
	for _, st := range []string{CacheI, "IS_d", "IM_d", "SM_w", "II_s"} {
		b.rule("sread@"+st, whenAt("sread", st), snoop("sdone", st))
	}
	b.rule("sflush@I", whenAt("sflush", CacheI), snoop("idone", CacheI))
	b.rule("sflush@IS_d", whenAt("sflush", "IS_d"), snoop("idone", "IS_d"))
	b.rule("sflush@IM_d", whenAt("sflush", "IM_d"), snoop("idone", "IM_d"))
	b.rule("sflush@SM_w", whenAt("sflush", "SM_w"), snoop("idone", "II_s"))
	b.rule("sflush@II_s", whenAt("sflush", "II_s"), snoop("idone", "II_s"))
	b.rule("sread@M", whenAt("sread", CacheM), snoop("sdata", CacheS))
	b.rule("sread@E", whenAt("sread", CacheE), snoop("sdone", CacheS))
	b.rule("sread@S", whenAt("sread", CacheS), snoop("sdone", CacheS))
	// A read snoop racing an in-flight writeback takes the dirty data and
	// the whole line: the owner's pending writeback will be retried and
	// dropped, so it must not keep a copy.
	b.rule("sread@MI_w", whenAt("sread", "MI_w"), snoop("swbdata", "II_s"))
	b.rule("sflush@M", whenAt("sflush", CacheM), snoop("sdata", CacheI))
	b.rule("sflush@E", whenAt("sflush", CacheE), snoop("sdata", CacheI))
	b.rule("sflush@S", whenAt("sflush", CacheS), snoop("idone", CacheI))
	b.rule("sflush@MI_w", whenAt("sflush", "MI_w"), snoop("swbdata", "II_s"))

	// Responses (delivered node-internally by N).
	b.rule("data@IS_d", whenAt("data", "IS_d"), pr(CacheS))
	b.rule("datax@IS_d", whenAt("datax", "IS_d"), pr(CacheE))
	b.rule("datax@IM_d", whenAt("datax", "IM_d"), done(CacheM))
	b.rule("upgack@SM_w", whenAt("upgack", "SM_w"), done(CacheM))
	b.rule("nack@SM_w", whenAt("nack", "SM_w"), abort(CacheI))
	b.rule("wbcompl@MI_w", whenAt("wbcompl", "MI_w"), done(CacheI))
	b.rule("wbcompl@II_s", whenAt("wbcompl", "II_s"), done(CacheI))
	b.rule("nack@MI_w", whenAt("nack", "MI_w"), done(CacheI))
	// Retried transactions abort; the processor re-executes.
	b.rule("retry@IS_d", whenAt("retry", "IS_d"), abort(CacheI))
	b.rule("retry@IM_d", whenAt("retry", "IM_d"), abort(CacheI))
	b.rule("retry@SM_w", whenAt("retry", "SM_w"), abort(CacheS))
	b.rule("retry@MI_w", whenAt("retry", "MI_w"), abort(CacheM))
	// A transaction invalidated by a racing snoop aborts to I.
	b.rule("retry@II_s", whenAt("retry", "II_s"), abort(CacheI))
	b.rule("nack@II_s", whenAt("nack", "II_s"), abort(CacheI))

	return b.finish("cachest")
}

// BuildNodeSpec constructs the node interface controller table N: it owns
// the MSHRs, injects node requests into the network (local role), delivers
// completions node-internally, and closes each completed transaction with
// the final compl toward home (§4.3).
func BuildNodeSpec() (*constraint.Spec, error) {
	b := newCtrl(NodeTable)
	requests := []string{"read", "readex", "upgrade", "readinv", "wb", "pwb",
		"flush", "replhint", "prefetch", "ioread", "iowrite", "ucread",
		"ucwrite", "fetchadd", "sync", "intr"}
	completions := []string{"data", "datax", "upgack", "wbcompl", "flcompl",
		"iodata", "iocompl", "ucdata", "uccompl", "atdata", "pfdata",
		"syncack", "intrack", "replack", "nack", "retry"}
	b.input("inmsg", true, append(append([]string{}, requests...), completions...)...)
	b.input("inmsgsrc", true, RoleLocal, RoleHome)
	b.input("inmsgdest", true, RoleLocal, RoleHome)
	b.input("inmsgrsrc", true, QReq, QResp)
	b.input("mshrst", true, "idle", "pending")
	b.msgOutput("netmsg", append(append([]string{}, requests...), "compl"),
		[]string{RoleLocal}, []string{RoleHome}, []string{QReq, QResp})
	b.msgOutput("cresp", completions,
		[]string{RoleLocal}, []string{RoleLocal}, []string{QResp})
	b.output("nxtmshrst", "idle", "pending")

	// Requests arrive node-internally from the cache; completions arrive
	// from home over the inter-quad response channel.
	b.spec.MustConstrain("inmsgsrc",
		in("inmsg", requests...)+` ? inmsgsrc = "local" : inmsgsrc = "home"`)
	b.spec.MustConstrain("inmsgdest",
		`inmsgdest = "local"`)
	b.spec.MustConstrain("inmsgrsrc",
		`isrequest(inmsg) ? inmsgrsrc = "reqq" : inmsgrsrc = "respq"`)

	// Requests: injected when an MSHR is free, bounced otherwise.
	for _, q := range requests {
		set := msgSet("netmsg", q, RoleLocal, RoleHome, QReq)
		set["nxtmshrst"] = "pending"
		b.rule(q+"@idle", all(eq("inmsg", q), eq("mshrst", "idle")), set)
		b.rule(q+"@pending", all(eq("inmsg", q), eq("mshrst", "pending")),
			msgSet("cresp", "retry", RoleLocal, RoleLocal, QResp))
	}
	// Completions: delivered to the cache; transactions with a -c state at
	// the directory are closed with the final compl (§4.3).
	needsCompl := map[string]bool{
		"data": true, "datax": true, "upgack": true, "wbcompl": true,
		"flcompl": true, "iodata": true, "iocompl": true, "ucdata": true,
		"uccompl": true, "atdata": true, "pfdata": true, "syncack": true,
		"intrack": true,
	}
	for _, c := range completions {
		set := msgSet("cresp", c, RoleLocal, RoleLocal, QResp)
		set["nxtmshrst"] = "idle"
		if needsCompl[c] {
			for k, v := range msgSet("netmsg", "compl", RoleLocal, RoleHome, QResp) {
				set[k] = v
			}
		}
		b.rule(c+"@pending", all(eq("inmsg", c), eq("mshrst", "pending")), set)
	}
	return b.finish("mshrst")
}

// BuildRACSpec constructs the remote access cache controller table R: the
// quad-level cache that satisfies local misses to remote lines and fields
// incoming snoops for them.
func BuildRACSpec() (*constraint.Spec, error) {
	b := newCtrl(RACTable)
	states := []string{"I", "S", "M", "IS_p", "IM_p", "MI_p"}
	b.input("inmsg", true,
		"read", "readex", "wb",
		"data", "datax", "wbcompl", "retry",
		"sinv", "sread", "sflush")
	b.input("inmsgsrc", true, RoleLocal, RoleHome)
	b.input("inmsgdest", true, RoleLocal, RoleRemote)
	b.input("inmsgrsrc", true, QReq, QResp)
	b.input("racst", true, states...)
	b.msgOutput("netmsg", []string{"read", "readex", "wb"},
		[]string{RoleLocal}, []string{RoleHome}, []string{QReq})
	b.msgOutput("snpmsg", []string{"idone", "sdone", "sdata", "swbdata"},
		[]string{RoleRemote}, []string{RoleHome}, []string{QResp})
	b.msgOutput("locresp", []string{"data", "datax", "retry"},
		[]string{RoleLocal}, []string{RoleLocal}, []string{QResp})
	b.output("nxtracst", states...)

	b.spec.MustConstrain("inmsgsrc",
		in("inmsg", "read", "readex", "wb")+` ? inmsgsrc = "local" : inmsgsrc = "home"`)
	b.spec.MustConstrain("inmsgdest",
		in("inmsg", "sinv", "sread", "sflush")+` ? inmsgdest = "remote" : inmsgdest = "local"`)
	b.spec.MustConstrain("inmsgrsrc",
		`isrequest(inmsg) ? inmsgrsrc = "reqq" : inmsgrsrc = "respq"`)

	whenAt := func(msg, st string) string { return all(eq("inmsg", msg), eq("racst", st)) }
	fwd := func(msg, nxt string) map[string]string {
		set := msgSet("netmsg", msg, RoleLocal, RoleHome, QReq)
		set["nxtracst"] = nxt
		return set
	}
	hit := func(msg, nxt string) map[string]string {
		set := msgSet("locresp", msg, RoleLocal, RoleLocal, QResp)
		set["nxtracst"] = nxt
		return set
	}
	snp := func(msg, nxt string) map[string]string {
		set := msgSet("snpmsg", msg, RoleRemote, RoleHome, QResp)
		set["nxtracst"] = nxt
		return set
	}

	// Local misses to remote lines.
	b.rule("read@I", whenAt("read", "I"), fwd("read", "IS_p"))
	b.rule("read@S", whenAt("read", "S"), hit("data", "S"))
	b.rule("read@M", whenAt("read", "M"), hit("data", "M"))
	b.rule("readex@I", whenAt("readex", "I"), fwd("readex", "IM_p"))
	b.rule("readex@S", whenAt("readex", "S"), fwd("readex", "IM_p"))
	b.rule("readex@M", whenAt("readex", "M"), hit("datax", "M"))
	b.rule("wb@M", whenAt("wb", "M"), fwd("wb", "MI_p"))
	for _, st := range []string{"IS_p", "IM_p", "MI_p"} {
		for _, q := range []string{"read", "readex", "wb"} {
			b.rule(q+"@"+st, whenAt(q, st), hit("retry", st))
		}
	}
	// Network responses; a retried miss aborts and the node re-issues.
	b.rule("data@IS_p", whenAt("data", "IS_p"), hit("data", "S"))
	b.rule("datax@IM_p", whenAt("datax", "IM_p"), hit("datax", "M"))
	b.rule("wbcompl@MI_p", whenAt("wbcompl", "MI_p"), hit("data", "I"))
	b.rule("retry@IS_p", whenAt("retry", "IS_p"), hit("retry", "I"))
	b.rule("retry@IM_p", whenAt("retry", "IM_p"), hit("retry", "I"))
	b.rule("retry@MI_p", whenAt("retry", "MI_p"), hit("retry", "M"))
	// Incoming snoops for remote lines cached here.
	b.rule("sinv@S", whenAt("sinv", "S"), snp("idone", "I"))
	b.rule("sinv@M", whenAt("sinv", "M"), snp("swbdata", "I"))
	b.rule("sinv@MI_p", whenAt("sinv", "MI_p"), snp("idone", "MI_p"))
	b.rule("sread@M", whenAt("sread", "M"), snp("sdata", "S"))
	b.rule("sread@S", whenAt("sread", "S"), snp("sdone", "S"))
	b.rule("sflush@M", whenAt("sflush", "M"), snp("sdata", "I"))
	b.rule("sflush@S", whenAt("sflush", "S"), snp("idone", "I"))

	return b.finish("racst")
}

// BuildIOBridgeSpec constructs the I/O bridge controller table IO.
func BuildIOBridgeSpec() (*constraint.Spec, error) {
	b := newCtrl(IOBridgeTable)
	b.input("inmsg", true, "ioread", "iowrite", "iodata", "iocompl", "intr")
	b.input("inmsgsrc", true, RoleLocal, RoleHome)
	b.input("inmsgdest", true, RoleLocal, RoleRemote)
	b.input("inmsgrsrc", true, QReq, QResp)
	b.input("iost", true, "idle", "rdpend", "wrpend")
	b.msgOutput("netmsg", []string{"ioread", "iowrite", "intrack"},
		[]string{RoleLocal, RoleRemote}, []string{RoleHome}, []string{QReq, QResp})
	b.msgOutput("devresp", []string{"iodata", "iocompl", "retry"},
		[]string{RoleLocal}, []string{RoleLocal}, []string{QResp})
	b.output("nxtiost", "idle", "rdpend", "wrpend")

	b.spec.MustConstrain("inmsgsrc",
		in("inmsg", "ioread", "iowrite")+` ? inmsgsrc = "local" : inmsgsrc = "home"`)
	b.spec.MustConstrain("inmsgdest",
		`inmsg = "intr" ? inmsgdest = "remote" : inmsgdest = "local"`)
	b.spec.MustConstrain("inmsgrsrc",
		`isrequest(inmsg) ? inmsgrsrc = "reqq" : inmsgrsrc = "respq"`)

	whenAt := func(msg, st string) string { return all(eq("inmsg", msg), eq("iost", st)) }
	b.rule("ioread@idle", whenAt("ioread", "idle"),
		merge(msgSet("netmsg", "ioread", RoleLocal, RoleHome, QReq), map[string]string{"nxtiost": "rdpend"}))
	b.rule("iowrite@idle", whenAt("iowrite", "idle"),
		merge(msgSet("netmsg", "iowrite", RoleLocal, RoleHome, QReq), map[string]string{"nxtiost": "wrpend"}))
	for _, st := range []string{"rdpend", "wrpend"} {
		b.rule("ioread@"+st, whenAt("ioread", st), msgSet("devresp", "retry", RoleLocal, RoleLocal, QResp))
		b.rule("iowrite@"+st, whenAt("iowrite", st), msgSet("devresp", "retry", RoleLocal, RoleLocal, QResp))
	}
	b.rule("iodata@rdpend", whenAt("iodata", "rdpend"),
		merge(msgSet("devresp", "iodata", RoleLocal, RoleLocal, QResp), map[string]string{"nxtiost": "idle"}))
	b.rule("iocompl@wrpend", whenAt("iocompl", "wrpend"),
		merge(msgSet("devresp", "iocompl", RoleLocal, RoleLocal, QResp), map[string]string{"nxtiost": "idle"}))
	// A forwarded interrupt is delivered to the device and acknowledged
	// back to home over the response channel.
	b.rule("intr@idle", whenAt("intr", "idle"),
		msgSet("netmsg", "intrack", RoleRemote, RoleHome, QResp))
	b.rule("intr@rdpend", whenAt("intr", "rdpend"),
		msgSet("netmsg", "intrack", RoleRemote, RoleHome, QResp))
	b.rule("intr@wrpend", whenAt("intr", "wrpend"),
		msgSet("netmsg", "intrack", RoleRemote, RoleHome, QResp))
	return b.finish("iost")
}

// BuildInterruptSpec constructs the interrupt delivery controller table INT.
func BuildInterruptSpec() (*constraint.Spec, error) {
	b := newCtrl(InterruptTable)
	b.input("inmsg", true, "intr", "intrack")
	b.input("inmsgsrc", true, RoleLocal, RoleHome)
	b.input("inmsgdest", true, RoleLocal)
	b.input("inmsgrsrc", true, QReq, QResp)
	b.input("intst", true, "idle", "masked", "pending")
	b.msgOutput("netmsg", []string{"intr"},
		[]string{RoleLocal}, []string{RoleHome}, []string{QReq})
	b.msgOutput("cpuresp", []string{"intrack", "retry"},
		[]string{RoleLocal}, []string{RoleLocal}, []string{QResp})
	b.output("nxtintst", "idle", "masked", "pending")

	b.spec.MustConstrain("inmsgsrc",
		`inmsg = "intr" ? inmsgsrc = "local" : inmsgsrc = "home"`)
	b.spec.MustConstrain("inmsgrsrc",
		`isrequest(inmsg) ? inmsgrsrc = "reqq" : inmsgrsrc = "respq"`)

	whenAt := func(msg, st string) string { return all(eq("inmsg", msg), eq("intst", st)) }
	b.rule("intr@idle", whenAt("intr", "idle"),
		merge(msgSet("netmsg", "intr", RoleLocal, RoleHome, QReq), map[string]string{"nxtintst": "pending"}))
	b.rule("intr@masked", whenAt("intr", "masked"), msgSet("cpuresp", "retry", RoleLocal, RoleLocal, QResp))
	b.rule("intr@pending", whenAt("intr", "pending"), msgSet("cpuresp", "retry", RoleLocal, RoleLocal, QResp))
	b.rule("intrack@pending", whenAt("intrack", "pending"),
		merge(msgSet("cpuresp", "intrack", RoleLocal, RoleLocal, QResp), map[string]string{"nxtintst": "idle"}))
	return b.finish("intst")
}

// BuildSyncSpec constructs the barrier/fence controller table SY.
func BuildSyncSpec() (*constraint.Spec, error) {
	b := newCtrl(SyncTable)
	b.input("inmsg", true, "sync", "syncack")
	b.input("inmsgsrc", true, RoleLocal, RoleHome)
	b.input("inmsgdest", true, RoleLocal)
	b.input("inmsgrsrc", true, QReq, QResp)
	b.input("syncst", true, "idle", "draining")
	b.msgOutput("netmsg", []string{"sync"},
		[]string{RoleLocal}, []string{RoleHome}, []string{QReq})
	b.msgOutput("cpuresp", []string{"syncack", "retry"},
		[]string{RoleLocal}, []string{RoleLocal}, []string{QResp})
	b.output("nxtsyncst", "idle", "draining")

	b.spec.MustConstrain("inmsgsrc",
		`inmsg = "sync" ? inmsgsrc = "local" : inmsgsrc = "home"`)
	b.spec.MustConstrain("inmsgrsrc",
		`isrequest(inmsg) ? inmsgrsrc = "reqq" : inmsgrsrc = "respq"`)

	whenAt := func(msg, st string) string { return all(eq("inmsg", msg), eq("syncst", st)) }
	b.rule("sync@idle", whenAt("sync", "idle"),
		merge(msgSet("netmsg", "sync", RoleLocal, RoleHome, QReq), map[string]string{"nxtsyncst": "draining"}))
	b.rule("sync@draining", whenAt("sync", "draining"), msgSet("cpuresp", "retry", RoleLocal, RoleLocal, QResp))
	b.rule("syncack@draining", whenAt("syncack", "draining"),
		merge(msgSet("cpuresp", "syncack", RoleLocal, RoleLocal, QResp), map[string]string{"nxtsyncst": "idle"}))
	return b.finish("syncst")
}

// SpecBuilders returns the eight controller spec builders keyed by table
// name, in a stable order.
func SpecBuilders() []struct {
	Name  string
	Build func() (*constraint.Spec, error)
} {
	return []struct {
		Name  string
		Build func() (*constraint.Spec, error)
	}{
		{DirectoryTable, BuildDirectorySpec},
		{MemoryTable, BuildMemorySpec},
		{CacheTable, BuildCacheSpec},
		{NodeTable, BuildNodeSpec},
		{RACTable, BuildRACSpec},
		{IOBridgeTable, BuildIOBridgeSpec},
		{InterruptTable, BuildInterruptSpec},
		{SyncTable, BuildSyncSpec},
	}
}

// BuildAllSpecs builds all eight controller specifications.
func BuildAllSpecs() (map[string]*constraint.Spec, error) {
	out := make(map[string]*constraint.Spec, 8)
	for _, sb := range SpecBuilders() {
		s, err := sb.Build()
		if err != nil {
			return nil, fmt.Errorf("protocol: building %s: %w", sb.Name, err)
		}
		out[sb.Name] = s
	}
	return out, nil
}
