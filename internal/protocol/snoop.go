package protocol

import (
	"coherdb/internal/constraint"
	"coherdb/internal/rel"
)

// A second protocol, demonstrating the paper's generality claim (§6: "The
// approach can be easily applied to other cache coherence protocols such as
// those described in [2, 10]"): a broadcast snooping MSI protocol in the
// style of Sorin et al. [10]. Three controllers — the bus arbiter, the
// snooping cache and the snooping memory — specified exactly like the ASURA
// tables: column tables plus compiled column constraints.
//
// Bus transactions: gets (get shared), getx (get exclusive), upgr (upgrade)
// and wbb (writeback). The arbiter serializes one transaction at a time;
// every cache observes each transaction tagged own/other; the owner (or
// memory, when no cache owns) supplies data on the response channel.
const (
	SnoopBusTable    = "SB"
	SnoopCacheTable  = "SC"
	SnoopMemoryTable = "SM"
)

// Snooping MSI cache states, with the transient states of a split-
// transaction bus: IS_b/IM_b/SM_b await the own transaction's data or
// order, MI_b awaits the writeback's completion.
func snoopCacheStates() []string {
	return []string{"M", "S", "I", "IS_b", "IM_b", "SM_b", "MI_b"}
}

var snoopBusRequests = []string{"gets", "getx", "upgr", "wbb"}

// BuildSnoopBusSpec constructs the bus arbiter table SB: it serializes
// requests (one outstanding transaction) and broadcasts each granted
// transaction to the snoopers and to memory.
func BuildSnoopBusSpec() (*constraint.Spec, error) {
	b := newCtrl(SnoopBusTable)
	b.input("inmsg", true, append(append([]string{}, snoopBusRequests...), "bdone")...)
	b.input("inmsgsrc", true, RoleLocal, RoleHome)
	b.input("inmsgdest", true, RoleHome)
	b.input("inmsgrsrc", true, QReq, QResp)
	b.input("busst", true, "free", "granted")
	b.msgOutput("bcast", snoopBusRequests,
		[]string{RoleHome}, []string{RoleRemote}, []string{QReq})
	b.msgOutput("nackmsg", []string{"bretry"},
		[]string{RoleHome}, []string{RoleLocal}, []string{QResp})
	b.output("nxtbusst", "free", "granted")

	b.spec.MustConstrain("inmsgsrc",
		`inmsg = "bdone" ? inmsgsrc = "home" : inmsgsrc = "local"`)
	b.spec.MustConstrain("inmsgrsrc",
		`inmsg = "bdone" ? inmsgrsrc = "respq" : inmsgrsrc = "reqq"`)

	for _, q := range snoopBusRequests {
		set := msgSet("bcast", q, RoleHome, RoleRemote, QReq)
		set["nxtbusst"] = "granted"
		b.rule(q+"@free", all(eq("inmsg", q), eq("busst", "free")), set)
		b.rule(q+"@granted", all(eq("inmsg", q), eq("busst", "granted")),
			msgSet("nackmsg", "bretry", RoleHome, RoleLocal, QResp))
	}
	// The responder's completion frees the bus.
	b.rule("bdone@granted", all(eq("inmsg", "bdone"), eq("busst", "granted")),
		map[string]string{"nxtbusst": "free"})
	return b.finish("busst")
}

// BuildSnoopCacheSpec constructs the snooping cache table SC: processor
// operations issue bus requests; observed transactions are tagged own or
// other, and the protocol's MSI transitions follow Sorin et al.'s tables.
func BuildSnoopCacheSpec() (*constraint.Spec, error) {
	b := newCtrl(SnoopCacheTable)
	states := snoopCacheStates()
	b.input("inmsg", true,
		"prread", "prwrite", "previct",
		"gets", "getx", "upgr", "wbb",
		"bdata")
	b.input("inmsgsrc", true, RoleLocal, RoleHome)
	b.input("inmsgdest", true, RoleLocal, RoleRemote)
	b.input("inmsgrsrc", true, QReq, QResp)
	// who tags an observed bus transaction: the cache's own request
	// coming back in bus order, or another cache's.
	b.input("who", false, "own", "other")
	b.input("cachest", true, states...)
	b.msgOutput("busmsg", snoopBusRequests,
		[]string{RoleLocal}, []string{RoleHome}, []string{QReq})
	b.msgOutput("dresp", []string{"bdata", "bdone"},
		[]string{RoleRemote}, []string{RoleHome}, []string{QResp})
	b.output("prresp", "pdata", "pdone", "pstall")
	b.output("nxtcachest", states...)

	b.spec.MustConstrain("inmsgsrc",
		in("inmsg", "prread", "prwrite", "previct")+
			` ? inmsgsrc = "local" : inmsgsrc = "home"`)
	b.spec.MustConstrain("inmsgdest",
		in("inmsg", "prread", "prwrite", "previct")+
			` ? inmsgdest = "local" : inmsgdest = "remote"`)
	b.spec.MustConstrain("inmsgrsrc",
		`inmsg = "bdata" ? inmsgrsrc = "respq" : inmsgrsrc = "reqq"`)
	b.spec.MustConstrain("who",
		in("inmsg", "gets", "getx", "upgr", "wbb")+` ? who <> NULL : who = NULL`)

	whenPr := func(msg, st string) string { return all(eq("inmsg", msg), eq("cachest", st)) }
	whenBus := func(msg, who, st string) string {
		return all(eq("inmsg", msg), eq("who", who), eq("cachest", st))
	}
	req := func(msg, nxt string) map[string]string {
		set := msgSet("busmsg", msg, RoleLocal, RoleHome, QReq)
		set["nxtcachest"] = nxt
		return set
	}
	pr := func(resp, nxt string) map[string]string {
		return map[string]string{"prresp": resp, "nxtcachest": nxt}
	}
	supply := func(nxt string) map[string]string {
		set := msgSet("dresp", "bdata", RoleRemote, RoleHome, QResp)
		set["nxtcachest"] = nxt
		return set
	}

	// Processor operations.
	b.rule("prread@I", whenPr("prread", "I"), req("gets", "IS_b"))
	b.rule("prread@S", whenPr("prread", "S"), pr("pdata", "S"))
	b.rule("prread@M", whenPr("prread", "M"), pr("pdata", "M"))
	b.rule("prwrite@I", whenPr("prwrite", "I"), req("getx", "IM_b"))
	b.rule("prwrite@S", whenPr("prwrite", "S"), req("upgr", "SM_b"))
	b.rule("prwrite@M", whenPr("prwrite", "M"), pr("pdone", "M"))
	b.rule("previct@S", whenPr("previct", "S"), pr("pdone", "I"))
	b.rule("previct@M", whenPr("previct", "M"), req("wbb", "MI_b"))
	b.rule("previct@I", whenPr("previct", "I"), pr("pdone", "I"))
	for _, st := range []string{"IS_b", "IM_b", "SM_b", "MI_b"} {
		for _, op := range []string{"prread", "prwrite", "previct"} {
			b.rule(op+"@"+st, whenPr(op, st), pr("pstall", st))
		}
	}

	// Own transactions observed in bus order.
	b.rule("own-gets@IS_b", whenBus("gets", "own", "IS_b"), map[string]string{"nxtcachest": "IS_b"})
	b.rule("own-getx@IM_b", whenBus("getx", "own", "IM_b"), map[string]string{"nxtcachest": "IM_b"})
	b.rule("own-upgr@SM_b", whenBus("upgr", "own", "SM_b"),
		merge(supply("M"), map[string]string{"prresp": "pdone", "dresp": "bdone"}))
	b.rule("own-wbb@MI_b", whenBus("wbb", "own", "MI_b"),
		merge(supply("I"), map[string]string{"prresp": "pdone"})) // data to memory
	// Data for the own transaction arrives on the response channel.
	b.rule("bdata@IS_b", all(eq("inmsg", "bdata"), eq("cachest", "IS_b")), pr("pdata", "S"))
	b.rule("bdata@IM_b", all(eq("inmsg", "bdata"), eq("cachest", "IM_b")), pr("pdone", "M"))

	// Other caches' transactions: the owner supplies and downgrades;
	// sharers invalidate on exclusive requests.
	b.rule("other-gets@M", whenBus("gets", "other", "M"), supply("S"))
	b.rule("other-gets@S", whenBus("gets", "other", "S"), map[string]string{"nxtcachest": "S"})
	b.rule("other-gets@I", whenBus("gets", "other", "I"), map[string]string{"nxtcachest": "I"})
	b.rule("other-getx@M", whenBus("getx", "other", "M"), supply("I"))
	b.rule("other-getx@S", whenBus("getx", "other", "S"), map[string]string{"nxtcachest": "I"})
	b.rule("other-getx@I", whenBus("getx", "other", "I"), map[string]string{"nxtcachest": "I"})
	b.rule("other-upgr@S", whenBus("upgr", "other", "S"), map[string]string{"nxtcachest": "I"})
	b.rule("other-upgr@I", whenBus("upgr", "other", "I"), map[string]string{"nxtcachest": "I"})
	b.rule("other-wbb@I", whenBus("wbb", "other", "I"), map[string]string{"nxtcachest": "I"})
	// A racing own transaction observed from another cache aborts ours.
	b.rule("other-getx@IS_b", whenBus("getx", "other", "IS_b"), map[string]string{"nxtcachest": "IS_b"})
	b.rule("other-getx@SM_b", whenBus("getx", "other", "SM_b"), map[string]string{"nxtcachest": "IM_b"})
	b.rule("other-gets@SM_b", whenBus("gets", "other", "SM_b"), map[string]string{"nxtcachest": "SM_b"})
	b.rule("other-upgr@SM_b", whenBus("upgr", "other", "SM_b"), map[string]string{"nxtcachest": "IM_b"})
	b.rule("other-gets@MI_b", whenBus("gets", "other", "MI_b"), supply("MI_b"))
	b.rule("other-getx@MI_b", whenBus("getx", "other", "MI_b"), supply("I"))

	return b.finish("cachest")
}

// BuildSnoopMemorySpec constructs the snooping memory table SM: memory
// observes every transaction and supplies data when no cache owns the line
// (tracked by a single owned bit, as in [10]'s memory-side filter).
func BuildSnoopMemorySpec() (*constraint.Spec, error) {
	b := newCtrl(SnoopMemoryTable)
	b.input("inmsg", true, append(append([]string{}, snoopBusRequests...), "bdata")...)
	b.input("inmsgsrc", true, RoleHome, RoleRemote)
	b.input("inmsgdest", true, RoleRemote, RoleHome)
	b.input("inmsgrsrc", true, QReq, QResp)
	b.input("owned", true, "yes", "no")
	b.msgOutput("dresp", []string{"bdata"},
		[]string{RoleHome}, []string{RoleHome}, []string{QResp})
	b.msgOutput("donemsg", []string{"bdone"},
		[]string{RoleHome}, []string{RoleHome}, []string{QResp})
	b.output("nxtowned", "yes", "no")

	b.spec.MustConstrain("inmsgsrc",
		`inmsg = "bdata" ? inmsgsrc = "remote" : inmsgsrc = "home"`)
	b.spec.MustConstrain("inmsgdest",
		`inmsg = "bdata" ? inmsgdest = "home" : inmsgdest = "remote"`)
	b.spec.MustConstrain("inmsgrsrc",
		`inmsg = "bdata" ? inmsgrsrc = "respq" : inmsgrsrc = "reqq"`)

	whenAt := func(msg, owned string) string { return all(eq("inmsg", msg), eq("owned", owned)) }
	data := func(owned string) map[string]string {
		set := msgSet("dresp", "bdata", RoleHome, RoleHome, QResp)
		for k, v := range msgSet("donemsg", "bdone", RoleHome, RoleHome, QResp) {
			set[k] = v
		}
		set["nxtowned"] = owned
		return set
	}
	done := func(owned string) map[string]string {
		set := msgSet("donemsg", "bdone", RoleHome, RoleHome, QResp)
		set["nxtowned"] = owned
		return set
	}
	// Unowned lines are supplied by memory; owned lines by the owner (the
	// observing memory just updates its filter and completes the bus
	// phase when the owner's data passes by).
	b.rule("gets@no", whenAt("gets", "no"), data("no"))
	b.rule("gets@yes", whenAt("gets", "yes"), done("no")) // owner downgrades; line now clean-shared
	b.rule("getx@no", whenAt("getx", "no"), data("yes"))
	b.rule("getx@yes", whenAt("getx", "yes"), done("yes")) // ownership migrates
	b.rule("upgr@no", whenAt("upgr", "no"), done("yes"))
	b.rule("upgr@yes", whenAt("upgr", "yes"), done("yes"))
	b.rule("wbb@no", whenAt("wbb", "no"), done("no"))
	b.rule("wbb@yes", whenAt("wbb", "yes"), done("no"))
	// The owner's supplied data is absorbed into memory.
	b.rule("bdata@yes", whenAt("bdata", "yes"), map[string]string{"nxtowned": "yes"})
	b.rule("bdata@no", whenAt("bdata", "no"), map[string]string{"nxtowned": "no"})
	return b.finish("owned")
}

// SnoopSpecBuilders returns the snooping protocol's controller builders.
func SnoopSpecBuilders() []struct {
	Name  string
	Build func() (*constraint.Spec, error)
} {
	return []struct {
		Name  string
		Build func() (*constraint.Spec, error)
	}{
		{SnoopBusTable, BuildSnoopBusSpec},
		{SnoopCacheTable, BuildSnoopCacheSpec},
		{SnoopMemoryTable, BuildSnoopMemorySpec},
	}
}

// BuildSnoopAssignment constructs the snooping system's channel assignment:
// the request channel BUS0 into the arbiter, the ordered broadcast channel
// BUS1 toward the snoopers, and the data/completion response channel BUS2.
func BuildSnoopAssignment() *rel.Table {
	t := rel.MustNewTable("V", "m", "s", "d", "v")
	add := func(m, s, d, v string) {
		t.MustInsert(rel.S(m), rel.S(s), rel.S(d), rel.S(v))
	}
	for _, m := range snoopBusRequests {
		add(m, RoleLocal, RoleHome, "BUS0")  // request to the arbiter
		add(m, RoleHome, RoleRemote, "BUS1") // the ordered broadcast
	}
	add("bdata", RoleRemote, RoleHome, "BUS2") // owner's data toward memory/requester
	add("bdata", RoleHome, RoleHome, "BUS2")   // memory's data
	add("bdone", RoleRemote, RoleHome, "BUS2")
	add("bdone", RoleHome, RoleHome, "BUS2")
	add("bretry", RoleHome, RoleLocal, "BUS2")
	return t
}
