package protocol

import (
	"sort"
	"strings"
)

// Directory states (§2): the sharing status a directory entry records for a
// line. I = not cached anywhere, SI = shared (or invalid) in one or more
// caches, MESI = exclusively owned (modified or exclusive) by one cache.
const (
	DirI    = "I"
	DirSI   = "SI"
	DirMESI = "MESI"
)

// DirStates returns the stable directory states.
func DirStates() []string { return []string{DirI, DirSI, DirMESI} }

// Presence-vector encodings (§2): the 16-bit hardware vector is abstracted
// in the tables to zero (no sharers), one (exactly one owner) and gone (one
// or more sharers). The §4.3 invariant ties them to the directory state:
// I <-> zero, MESI <-> one, SI <-> gone.
const (
	PVZero = "zero"
	PVOne  = "one"
	PVGone = "gone"
)

// PVEncodings returns the presence-vector encodings.
func PVEncodings() []string { return []string{PVZero, PVOne, PVGone} }

// Presence-vector update operations (§2): what the hardware applies to the
// real vector on a state transition.
const (
	PVInc   = "inc"   // add a sharer
	PVDec   = "dec"   // remove a sharer
	PVRepl  = "repl"  // replace with the requestor (ownership transfer)
	PVDRepl = "drepl" // decrement; replace if the result is zero
	PVClear = "clear" // zero the vector
	PVLoad  = "load"  // load pending-response count from the vector
)

// PVOps returns the presence-vector update operations.
func PVOps() []string { return []string{PVInc, PVDec, PVRepl, PVDRepl, PVClear, PVLoad} }

// Cache line states of the 4-state MESI protocol [7] used by the cache
// controller, plus the transient states a real controller moves through.
const (
	CacheM = "M"
	CacheE = "E"
	CacheS = "S"
	CacheI = "I"
)

// CacheStates returns the stable MESI cache states.
func CacheStates() []string { return []string{CacheM, CacheE, CacheS, CacheI} }

// CacheTransients returns the transient cache-controller states: IS_d is an
// I->S miss awaiting data, IM_d an I->M miss, SM_w an upgrade awaiting
// grant, MI_w a writeback awaiting completion, and II_s a line being
// snooped away while a writeback is in flight.
func CacheTransients() []string { return []string{"IS_d", "IM_d", "SM_w", "MI_w", "II_s"} }

// busyFamily describes the busy-directory states of one transaction type at
// the directory controller: Busy-<txn>-<pending> where pending names the
// outstanding responses (s = snoops, d = data from memory, m = memory write
// done, w = writeback race resolution, c = final ack from the requestor;
// combinations like sd mean both are pending). The controller "may go
// through a sequence of these states for a single transaction" (§2.1).
type busyFamily struct {
	Txn      string
	Request  string // the request message that allocates the entry
	Pendings []string
}

// Pending tags: d = memory data, s = sharer invalidations (counted via the
// busy presence vector), sd = both, w = owner snoop response, m = memory
// write done, dm = both memory responses of an atomic, sm = owner flush
// data then memory write, a = forwarded interrupt ack, c = final compl from
// the requestor.
var busyFamilies = []busyFamily{
	{"rd", "read", []string{"d", "w", "c"}},
	{"rx", "readex", []string{"sd", "s", "d", "w", "c"}},
	{"ri", "readinv", []string{"sd", "s", "d", "w", "c"}},
	{"ug", "upgrade", []string{"s", "c"}},
	{"wb", "wb", []string{"m", "c"}},
	{"pw", "pwb", []string{"m", "c"}},
	{"fl", "flush", []string{"s", "sm", "m", "c"}},
	{"pf", "prefetch", []string{"d", "c"}},
	{"ior", "ioread", []string{"d", "c"}},
	{"iow", "iowrite", []string{"m", "c"}},
	{"ucr", "ucread", []string{"d", "c"}},
	{"ucw", "ucwrite", []string{"m", "c"}},
	{"at", "fetchadd", []string{"dm", "d", "m", "c"}},
	{"sy", "sync", []string{"c"}},
	{"in", "intr", []string{"a", "c"}},
}

// BusyState names the busy-directory state of transaction txn with the
// given pending set, e.g. BusyState("rx", "sd") = "Busy-rx-sd".
func BusyState(txn, pending string) string {
	return "Busy-" + txn + "-" + pending
}

// BusyStates returns every busy-directory state in declaration order. The
// paper reports "around 40 Busy states"; this catalog has exactly 40.
func BusyStates() []string {
	var out []string
	for _, f := range busyFamilies {
		for _, p := range f.Pendings {
			out = append(out, BusyState(f.Txn, p))
		}
	}
	return out
}

// IsBusyState reports whether s is a busy-directory state.
func IsBusyState(s string) bool {
	return strings.HasPrefix(s, "Busy-")
}

// BusyTxn returns the transaction tag of a busy state ("rx" for
// "Busy-rx-sd"), or "" if s is not a busy state.
func BusyTxn(s string) string {
	if !IsBusyState(s) {
		return ""
	}
	rest := strings.TrimPrefix(s, "Busy-")
	i := strings.IndexByte(rest, '-')
	if i < 0 {
		return ""
	}
	return rest[:i]
}

// BusyPending returns the pending tag of a busy state ("sd" for
// "Busy-rx-sd"), or "" if s is not a busy state.
func BusyPending(s string) string {
	if !IsBusyState(s) {
		return ""
	}
	rest := strings.TrimPrefix(s, "Busy-")
	i := strings.IndexByte(rest, '-')
	if i < 0 {
		return ""
	}
	return rest[i+1:]
}

// TxnRequest returns the request message that opens the transaction with
// the given busy tag ("rx" -> "readex").
func TxnRequest(txn string) string {
	for _, f := range busyFamilies {
		if f.Txn == txn {
			return f.Request
		}
	}
	return ""
}

// TxnTags returns the transaction tags in declaration order.
func TxnTags() []string {
	out := make([]string, len(busyFamilies))
	for i, f := range busyFamilies {
		out[i] = f.Txn
	}
	return out
}

// Node roles (§2.1): local initiates a request, home owns the memory and
// directory for the line, remote potentially caches it.
const (
	RoleLocal  = "local"
	RoleHome   = "home"
	RoleRemote = "remote"
)

// Roles returns the three node roles.
func Roles() []string { return []string{RoleLocal, RoleHome, RoleRemote} }

// Queue resources of the directory controller implementation (Fig. 5).
const (
	QReq  = "reqq"
	QResp = "respq"
	QLoc  = "locq"
	QRem  = "remq"
	QMem  = "memq"
	QUpd  = "updq"
)

// QueueNames returns the implementation queue resource names.
func QueueNames() []string {
	return []string{QReq, QResp, QLoc, QRem, QMem, QUpd}
}

// SortedBusyStates returns the busy states sorted lexicographically, for
// stable display.
func SortedBusyStates() []string {
	out := BusyStates()
	sort.Strings(out)
	return out
}
