// Package protocol defines the ASURA-style directory-based MESI cache
// coherence protocol of the paper: the message catalog (~50 message types
// classified as requests and responses), the directory / busy-directory
// state spaces (~40 busy states), the presence-vector encodings and update
// operations, and the eight controller table specifications (directory,
// memory, cache, node interface, remote access cache, I/O bridge, interrupt
// and sync controllers) expressed as column tables plus SQL column
// constraints in the paper's dialect.
//
// The published fragments of the paper — the Figure 1 message classes, the
// Figure 3 readex rows of table D, the §4.3 invariants and the §4.2 virtual
// channel assignment — are reproduced exactly; the remainder of the protocol
// is completed in the same style so that table D reaches the published scale
// (30 columns, ~500 rows, ~40 busy states).
package protocol

import (
	"fmt"
	"sort"

	"coherdb/internal/rel"
	"coherdb/internal/sqlmini"
)

// Class partitions protocol messages into requests and responses; the
// virtual channel assignment of §4.2 is based on this classification.
type Class uint8

// Message classes.
const (
	Request Class = iota
	Response
)

func (c Class) String() string {
	if c == Request {
		return "request"
	}
	return "response"
}

// Message is one protocol message type.
type Message struct {
	Name  string
	Class Class
	// Data reports whether the message carries a cache line of data.
	Data bool
	// Desc is a one-line description for the Figure 1 catalog.
	Desc string
}

// The message catalog. Messages named in the paper (readex, sinv, mread,
// data, idone, compl, retry, wb, Dfdback) keep the paper's spelling; the
// rest complete the set of memory, I/O, uncached, atomic and special
// transactions to the published "around 50" scale.
var catalog = []Message{
	// Processor memory requests (local -> home).
	{"read", Request, false, "read a line shared"},
	{"readex", Request, false, "read a line exclusive"},
	{"upgrade", Request, false, "upgrade shared line to exclusive"},
	{"readinv", Request, false, "read once and invalidate (no caching)"},
	{"wb", Request, true, "write back a modified line"},
	{"pwb", Request, true, "partial write back (sub-line)"},
	{"flush", Request, false, "flush a line to memory everywhere"},
	{"replhint", Request, false, "replacement hint: shared copy dropped"},
	{"prefetch", Request, false, "prefetch a line shared"},
	// I/O, uncached and atomic requests (local -> home).
	{"ioread", Request, false, "I/O space read"},
	{"iowrite", Request, true, "I/O space write"},
	{"ucread", Request, false, "uncached memory read"},
	{"ucwrite", Request, true, "uncached memory write"},
	{"fetchadd", Request, false, "atomic fetch-and-add"},
	{"sync", Request, false, "memory barrier / fence"},
	{"intr", Request, false, "cross-processor interrupt"},
	// Snoop requests (home -> remote).
	{"sinv", Request, false, "snoop: invalidate cached copy"},
	{"sread", Request, false, "snoop: supply data, downgrade to shared"},
	{"sflush", Request, false, "snoop: supply data and invalidate"},
	// Memory access requests (home directory -> home memory).
	{"mread", Request, false, "memory read for a transaction"},
	{"mwrite", Request, true, "memory write of writeback data"},
	{"mrmw", Request, false, "memory read-modify-write (atomics)"},
	{"mwrpart", Request, true, "memory partial write"},
	// Implementation-defined request (§5).
	{"Dfdback", Request, false, "feedback request when update queue full"},

	// Responses home -> local (completion of processor transactions).
	{"data", Response, true, "line data, shared"},
	{"datax", Response, true, "line data, exclusive"},
	{"compl", Response, false, "transaction complete"},
	{"retry", Response, false, "busy: retry the request later"},
	{"nack", Response, false, "request rejected in current state"},
	{"upgack", Response, false, "upgrade granted"},
	{"wbcompl", Response, false, "writeback accepted"},
	{"flcompl", Response, false, "flush complete"},
	{"iodata", Response, true, "I/O read data"},
	{"iocompl", Response, false, "I/O write complete"},
	{"ucdata", Response, true, "uncached read data"},
	{"uccompl", Response, false, "uncached write complete"},
	{"atdata", Response, true, "atomic op old value"},
	{"pfdata", Response, true, "prefetch data"},
	{"syncack", Response, false, "barrier drained"},
	{"intrack", Response, false, "interrupt delivered"},
	{"replack", Response, false, "replacement hint accepted"},
	// Snoop responses (remote -> home).
	{"idone", Response, false, "invalidation done"},
	{"sdone", Response, false, "snoop done, line was clean"},
	{"sdata", Response, true, "snoop data from owner"},
	{"swbdata", Response, true, "snoop raced a writeback; data attached"},
	// Memory responses (home memory -> home directory).
	{"mdata", Response, true, "memory read data"},
	{"mdone", Response, false, "memory write done"},
	// Processor-side operations seen by the cache controller.
	{"prread", Request, false, "processor load"},
	{"prwrite", Request, false, "processor store"},
	{"previct", Request, false, "processor line eviction"},
	{"prflush", Request, false, "processor cache flush op"},
}

var catalogByName = func() map[string]Message {
	m := make(map[string]Message, len(catalog))
	for _, msg := range catalog {
		if _, dup := m[msg.Name]; dup {
			panic(fmt.Sprintf("protocol: duplicate message %q", msg.Name))
		}
		m[msg.Name] = msg
	}
	return m
}()

// Messages returns the full catalog in declaration order.
func Messages() []Message { return append([]Message(nil), catalog...) }

// MessageNames returns all message names, sorted.
func MessageNames() []string {
	out := make([]string, 0, len(catalog))
	for _, m := range catalog {
		out = append(out, m.Name)
	}
	sort.Strings(out)
	return out
}

// LookupMessage returns the catalog entry for name.
func LookupMessage(name string) (Message, bool) {
	m, ok := catalogByName[name]
	return m, ok
}

// IsRequest reports whether name is a request message.
func IsRequest(name string) bool {
	m, ok := catalogByName[name]
	return ok && m.Class == Request
}

// IsResponse reports whether name is a response message.
func IsResponse(name string) bool {
	m, ok := catalogByName[name]
	return ok && m.Class == Response
}

// CarriesData reports whether name carries a cache line of data.
func CarriesData(name string) bool {
	m, ok := catalogByName[name]
	return ok && m.Data
}

// messagesOf returns the names in the catalog satisfying keep, in catalog
// order.
func messagesOf(keep func(Message) bool) []string {
	var out []string
	for _, m := range catalog {
		if keep(m) {
			out = append(out, m.Name)
		}
	}
	return out
}

// RequestNames returns all request message names in catalog order.
func RequestNames() []string {
	return messagesOf(func(m Message) bool { return m.Class == Request })
}

// ResponseNames returns all response message names in catalog order.
func ResponseNames() []string {
	return messagesOf(func(m Message) bool { return m.Class == Response })
}

// RegisterFuncs installs the protocol predicates used by constraints and
// invariants (the paper's isrequest, plus isresponse and carriesdata) into
// any function registry, e.g. a sqlmini.DB or a constraint.Spec.
func RegisterFuncs(register func(name string, fn sqlmini.Func)) {
	oneArg := func(name string, f func(string) bool) sqlmini.Func {
		return func(args []rel.Value) (rel.Value, error) {
			if len(args) != 1 {
				return rel.Null(), fmt.Errorf("protocol: %s wants 1 argument, got %d", name, len(args))
			}
			if args[0].IsNull() {
				return rel.B(false), nil
			}
			return rel.B(f(args[0].Str())), nil
		}
	}
	register("isrequest", oneArg("isrequest", IsRequest))
	register("isresponse", oneArg("isresponse", IsResponse))
	register("carriesdata", oneArg("carriesdata", CarriesData))
	register("isbusy", oneArg("isbusy", IsBusyState))
}
