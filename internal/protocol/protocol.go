package protocol

import (
	"fmt"
	"sync"

	"coherdb/internal/constraint"
	"coherdb/internal/rel"
	"coherdb/internal/sqlmini"
)

// GenerateAll builds all eight controller specifications, solves them in
// parallel with the incremental solver, installs the resulting tables in
// db, registers the protocol predicates, and returns per-table solve
// statistics keyed by table name.
func GenerateAll(db *sqlmini.DB) (map[string]constraint.Stats, error) {
	return GenerateAllOpts(db, constraint.Options{})
}

// GenerateAllOpts is GenerateAll with explicit solver options (workers,
// tracer, metrics), forwarded to every per-controller solve.
func GenerateAllOpts(db *sqlmini.DB, opts constraint.Options) (map[string]constraint.Stats, error) {
	RegisterFuncs(db.Register)
	builders := SpecBuilders()
	type result struct {
		name  string
		tab   *rel.Table
		stats constraint.Stats
		err   error
	}
	results := make([]result, len(builders))
	var wg sync.WaitGroup
	for i, sb := range builders {
		wg.Add(1)
		go func(i int, name string, build func() (*constraint.Spec, error)) {
			defer wg.Done()
			spec, err := build()
			if err != nil {
				results[i] = result{name: name, err: err}
				return
			}
			tab, stats, err := constraint.SolveOpts(spec, opts)
			results[i] = result{name: name, tab: tab, stats: stats, err: err}
		}(i, sb.Name, sb.Build)
	}
	wg.Wait()
	stats := make(map[string]constraint.Stats, len(builders))
	for _, r := range results {
		if r.err != nil {
			return nil, fmt.Errorf("protocol: generating %s: %w", r.name, r.err)
		}
		db.PutTable(r.tab)
		stats[r.name] = r.stats
	}
	return stats, nil
}

// Figure1Table renders the message catalog as a relation (the paper's
// Figure 1): message name, class, whether it carries data, description.
func Figure1Table() *rel.Table {
	t := rel.MustNewTable("messages", "message", "class", "data", "description")
	for _, m := range Messages() {
		t.MustInsert(rel.S(m.Name), rel.S(m.Class.String()), rel.B(m.Data), rel.S(m.Desc))
	}
	return t
}

// Virtual channel names (§4.2). VC0 carries requests from local to home,
// VC1 requests from home to remote, VC2 responses from remote to home (and,
// once VC4 exists, responses from home memory to the home directory), VC3
// responses from home to local, VC4 requests from the home directory to the
// home memory controller. VC5 and the dedicated path are introduced by the
// final fix.
const (
	VC0 = "VC0"
	VC1 = "VC1"
	VC2 = "VC2"
	VC3 = "VC3"
	VC4 = "VC4"
	VC5 = "VC5"
	// DPath marks the dedicated hardware path from the directory to the
	// home memory controller added to resolve the Fig. 4 deadlock; a
	// dedicated per-transaction path is not a shared finite channel, so
	// messages routed over it are omitted from V.
	DPath = "DPATH"
)

// Assignment names for BuildAssignment.
const (
	// AssignInitial is the initial 4-channel assignment: the home
	// directory<->memory traffic shares VC0/VC2 with the inter-quad
	// traffic. §4.2: "several cycles leading to deadlocks were found;
	// most of these deadlocks involved the directory controller and the
	// memory controller at the home node".
	AssignInitial = "initial4"
	// AssignVC4 adds VC4 for directory->memory requests. §4.2:
	// "Application of the method to this new assignment discovered this
	// deadlock" — the VC2/VC4 cycle of Fig. 4.
	AssignVC4 = "vc4"
	// AssignFixed routes directory->memory requests over the dedicated
	// hardware path (removing them from the channel dependency graph) and
	// gives the final completion acknowledgements their own VC5.
	AssignFixed = "fixed"
)

// vcRow is one (message, source, destination, channel) assignment.
type vcRow struct {
	m, s, d, v string
}

// interQuadRows returns the assignments shared by every variant: the
// inter-quad request/response channels VC0-VC3, assigned by source,
// destination and the request/response classification (§4.2).
func interQuadRows() []vcRow {
	var rows []vcRow
	// Requests local -> home.
	for _, m := range []string{"read", "readex", "upgrade", "readinv", "wb",
		"pwb", "flush", "replhint", "prefetch", "ioread", "iowrite",
		"ucread", "ucwrite", "fetchadd", "sync", "intr"} {
		rows = append(rows, vcRow{m, RoleLocal, RoleHome, VC0})
	}
	// Requests home -> remote (snoops and forwarded interrupts).
	for _, m := range []string{"sinv", "sread", "sflush", "intr"} {
		rows = append(rows, vcRow{m, RoleHome, RoleRemote, VC1})
	}
	// Responses remote -> home.
	for _, m := range []string{"idone", "sdone", "sdata", "swbdata", "intrack"} {
		rows = append(rows, vcRow{m, RoleRemote, RoleHome, VC2})
	}
	// Responses home -> local.
	for _, m := range []string{"data", "datax", "compl", "retry", "nack",
		"upgack", "wbcompl", "flcompl", "iodata", "iocompl", "ucdata",
		"uccompl", "atdata", "pfdata", "syncack", "intrack", "replack"} {
		rows = append(rows, vcRow{m, RoleHome, RoleLocal, VC3})
	}
	return rows
}

// dirMemRequests are the home directory -> home memory messages.
var dirMemRequests = []string{"mread", "mwrite", "mrmw", "mwrpart", "wb"}

// memDirResponses are the home memory -> home directory messages.
var memDirResponses = []string{"mdata", "mdone", "compl", "retry"}

// BuildAssignment constructs the virtual channel assignment table V
// (columns m, s, d, v) for the named variant. Messages routed over the
// dedicated path are omitted: a dedicated path is not a shared channel
// resource and induces no dependencies.
func BuildAssignment(name string) (*rel.Table, error) {
	t := rel.MustNewTable("V", "m", "s", "d", "v")
	rows := interQuadRows()
	switch name {
	case AssignInitial:
		// Home-local traffic shares the inter-quad channels.
		for _, m := range dirMemRequests {
			rows = append(rows, vcRow{m, RoleHome, RoleHome, VC0})
		}
		for _, m := range memDirResponses {
			rows = append(rows, vcRow{m, RoleHome, RoleHome, VC2})
		}
		// The final completion from the requestor shares VC0.
		rows = append(rows, vcRow{"compl", RoleLocal, RoleHome, VC0})
	case AssignVC4:
		for _, m := range dirMemRequests {
			rows = append(rows, vcRow{m, RoleHome, RoleHome, VC4})
		}
		for _, m := range memDirResponses {
			rows = append(rows, vcRow{m, RoleHome, RoleHome, VC2})
		}
		// The final completion shares the response channel toward home.
		rows = append(rows, vcRow{"compl", RoleLocal, RoleHome, VC2})
	case AssignFixed:
		// mread and mwrite — the directory->memory accesses that can be
		// triggered while processing a response — move to the dedicated
		// path and are omitted from V. Forwarded writebacks and the
		// remaining request-path accesses stay on VC4.
		for _, m := range []string{"mrmw", "mwrpart", "wb"} {
			rows = append(rows, vcRow{m, RoleHome, RoleHome, VC4})
		}
		for _, m := range memDirResponses {
			rows = append(rows, vcRow{m, RoleHome, RoleHome, VC2})
		}
		// The final completion gets its own channel.
		rows = append(rows, vcRow{"compl", RoleLocal, RoleHome, VC5})
	default:
		return nil, fmt.Errorf("protocol: unknown assignment %q", name)
	}
	for _, r := range rows {
		t.MustInsert(rel.S(r.m), rel.S(r.s), rel.S(r.d), rel.S(r.v))
	}
	return t, nil
}

// AssignmentNames returns the assignment variants in the order of the §4.2
// narrative.
func AssignmentNames() []string {
	return []string{AssignInitial, AssignVC4, AssignFixed}
}
