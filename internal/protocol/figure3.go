package protocol

import "coherdb/internal/constraint"

// Figure3FragmentSpec builds the readex fragment of the directory table as
// published in Fig. 3: three input columns (incoming message, directory
// state including busy states, presence vector) and five output columns.
// Its assignment space is small enough for the monolithic solver, so it is
// the workload for the §3 incremental-vs-monolithic comparison (C1).
//
// Scale (extra copies of the nxtdirst column family) multiplies the
// assignment space so the comparison can be swept; scale 0 or 1 is the
// plain fragment.
func Figure3FragmentSpec(scale int) (*constraint.Spec, error) {
	s := constraint.NewSpec("D_readex")
	steps := []error{
		s.AddInput("inmsg", "readex", "data", "idone"),
		s.AddInput("dirst", "I", "SI", "Busy-sd", "Busy-d", "Busy-s"),
		s.AddInput("dirpv", "zero", "one", "gone"),
		s.AddOutput("locmsg", "compl-data"),
		s.AddOutput("remmsg", "sinv"),
		s.AddOutput("memmsg", "mread"),
		s.AddOutput("nxtdirst", "MESI", "Busy-sd", "Busy-d", "Busy-s"),
		s.AddOutput("nxtdirpv", "repl", "dec"),
		s.Constrain("inmsg", `inmsg <> NULL`),
		s.Constrain("dirst",
			`inmsg = readex ? (dirst = I and dirpv = zero) or (dirst = SI and dirpv <> zero) :
			 inmsg = data ? dirst = Busy-sd or dirst = Busy-d :
			 dirst = Busy-sd or dirst = Busy-s`),
		s.Constrain("dirpv",
			`inmsg = data and dirst = Busy-d ? dirpv = zero :
			 inmsg = idone and dirst = Busy-s ? dirpv = zero :
			 inmsg = readex and dirst = I ? dirpv = zero : dirpv <> NULL`),
		s.Constrain("remmsg", `inmsg = readex and dirst = SI ? remmsg = sinv : remmsg = NULL`),
		s.Constrain("memmsg", `inmsg = readex ? memmsg = mread : memmsg = NULL`),
		s.Constrain("locmsg",
			`(inmsg = data and dirst = Busy-d) or (inmsg = idone and dirst = Busy-s) ?
			 locmsg = compl-data : locmsg = NULL`),
		s.Constrain("nxtdirst",
			`inmsg = readex and dirst = I ? nxtdirst = Busy-d :
			 inmsg = readex ? nxtdirst = Busy-sd :
			 inmsg = data and dirst = Busy-sd ? nxtdirst = Busy-s :
			 inmsg = idone and dirst = Busy-sd ? nxtdirst = Busy-d :
			 nxtdirst = MESI`),
		s.Constrain("nxtdirpv",
			`(inmsg = data and dirst = Busy-d) or (inmsg = idone and dirst = Busy-s) ?
			 nxtdirpv = repl :
			 inmsg = idone and dirst = Busy-sd ? nxtdirpv = dec : nxtdirpv = NULL`),
	}
	for _, err := range steps {
		if err != nil {
			return nil, err
		}
	}
	// Widen the spec for the sweep: each extra column copies the
	// nxtdirst family, multiplying the assignment space by 5.
	for i := 1; i < scale; i++ {
		col := "aux" + string(rune('a'+i-1))
		if err := s.AddOutput(col, "MESI", "Busy-sd", "Busy-d", "Busy-s"); err != nil {
			return nil, err
		}
		if err := s.Constrain(col,
			`inmsg = readex and dirst = I ? `+col+` = Busy-d :
			 inmsg = readex ? `+col+` = Busy-sd :
			 inmsg = data and dirst = Busy-sd ? `+col+` = Busy-s :
			 inmsg = idone and dirst = Busy-sd ? `+col+` = Busy-d :
			 `+col+` = MESI`); err != nil {
			return nil, err
		}
	}
	return s, nil
}
