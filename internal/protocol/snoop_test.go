package protocol

import (
	"testing"

	"coherdb/internal/constraint"
	"coherdb/internal/deadlock"
	"coherdb/internal/rel"
	"coherdb/internal/sqlmini"
)

// The generality demonstration (§6): the same methodology applied to a
// broadcast snooping MSI protocol in the style of [10].

func snoopTables(t testing.TB) []*rel.Table {
	t.Helper()
	var out []*rel.Table
	for _, sb := range SnoopSpecBuilders() {
		spec, err := sb.Build()
		if err != nil {
			t.Fatalf("%s: %v", sb.Name, err)
		}
		tab, _, err := constraint.Solve(spec)
		if err != nil {
			t.Fatalf("%s: %v", sb.Name, err)
		}
		if tab.Empty() {
			t.Fatalf("%s generated empty", sb.Name)
		}
		out = append(out, tab)
	}
	return out
}

func TestSnoopTablesGenerate(t *testing.T) {
	tables := snoopTables(t)
	if len(tables) != 3 {
		t.Fatalf("tables = %d", len(tables))
	}
	for _, tab := range tables {
		t.Logf("%s: %d rows x %d cols", tab.Name(), tab.NumRows(), tab.NumCols())
	}
}

func TestSnoopDeterminism(t *testing.T) {
	// The generic determinism check works unchanged on the new protocol.
	db := sqlmini.NewDB()
	RegisterFuncs(db.Register)
	for _, tab := range snoopTables(t) {
		db.PutTable(tab)
	}
	db.SetStrictNulls(true)
	checks := map[string]string{
		"SB": `SELECT inmsg, busst, COUNT(*) AS n FROM SB GROUP BY inmsg, busst HAVING COUNT(*) > 1`,
		"SC": `SELECT inmsg, who, cachest, COUNT(*) AS n FROM SC GROUP BY inmsg, who, cachest HAVING COUNT(*) > 1`,
		"SM": `SELECT inmsg, owned, COUNT(*) AS n FROM SM GROUP BY inmsg, owned HAVING COUNT(*) > 1`,
	}
	for name, sql := range checks {
		empty, err := db.QueryEmpty(sql)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !empty {
			t.Fatalf("%s is nondeterministic", name)
		}
	}
}

func TestSnoopInvariants(t *testing.T) {
	db := sqlmini.NewDB()
	RegisterFuncs(db.Register)
	for _, tab := range snoopTables(t) {
		db.PutTable(tab)
	}
	db.SetStrictNulls(true)
	invariants := map[string]string{
		// An exclusive request observed by any other cache invalidates it.
		"getx-invalidates": `SELECT cachest, nxtcachest FROM SC WHERE
			inmsg = 'getx' AND who = 'other' AND cachest IN ('M', 'S')
			AND NOT nxtcachest = 'I'`,
		// The owner always supplies data when another cache reads.
		"owner-supplies": `SELECT inmsg, dresp FROM SC WHERE
			who = 'other' AND cachest = 'M' AND inmsg IN ('gets', 'getx')
			AND NOT dresp = 'bdata'`,
		// Memory supplies exactly when no cache owns.
		"memory-supplies-unowned": `SELECT inmsg, owned, dresp FROM SM WHERE
			inmsg IN ('gets', 'getx') AND owned = 'no' AND dresp IS NULL`,
		"memory-defers-owned": `SELECT inmsg, owned, dresp FROM SM WHERE
			inmsg IN ('gets', 'getx') AND owned = 'yes' AND dresp IS NOT NULL`,
		// The arbiter never grants two transactions at once.
		"bus-serializes": `SELECT inmsg, busst, bcast FROM SB WHERE
			busst = 'granted' AND bcast IS NOT NULL`,
	}
	for name, sql := range invariants {
		empty, err := db.QueryEmpty(sql)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !empty {
			tab, _ := db.Query(sql)
			t.Fatalf("invariant %s violated:\n%s", name, tab)
		}
	}
}

func TestSnoopDeadlockFree(t *testing.T) {
	// The same §4.1 analysis, unchanged, over the snooping system.
	tables := snoopTables(t)
	v := BuildSnoopAssignment()
	rep, err := deadlock.Analyze(tables, v, deadlock.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Deadlocked() {
		t.Fatalf("snooping bus assignment deadlocks:\n%s", rep.Graph.Describe())
	}
	if len(rep.Graph.Edges()) == 0 {
		t.Fatal("no dependencies found — assignment or tables miswired")
	}
	t.Logf("snoop VCG: %d channels, %d edges, acyclic", len(rep.Graph.Nodes()), len(rep.Graph.Edges()))
}

func TestSnoopSharedBusDeadlocks(t *testing.T) {
	// Counterpoint: collapsing the broadcast onto the request channel (a
	// single store-and-forward bus hop) creates the classic arbiter
	// self-dependency, and the analysis finds it.
	tables := snoopTables(t)
	v := BuildSnoopAssignment()
	shared := v.Clone()
	for i := 0; i < shared.NumRows(); i++ {
		if shared.Get(i, "v").Equal(rel.S("BUS1")) {
			if err := shared.Set(i, "v", rel.S("BUS0")); err != nil {
				t.Fatal(err)
			}
		}
	}
	rep, err := deadlock.Analyze(tables, shared, deadlock.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Deadlocked() {
		t.Fatal("shared request/broadcast channel should cycle")
	}
}
