package protocol

// DirectoryRules builds the full transition rule set of the directory
// controller. Rules fall into three groups, mirroring §2.1 and §3:
//
//  1. retry rules — a request that finds the line busy is answered with a
//     retry response; the conflicting busy state is enumerated explicitly
//     for requests in the same address class (all transaction
//     interleavings), and is a dontcare otherwise.
//  2. request rules — a request that finds the line idle is processed
//     according to the directory state: snoops and memory accesses are
//     issued and a busy entry is allocated in the transaction's first
//     pending state.
//  3. response rules — snoop, memory and completion responses advance the
//     busy entry through its pending states and finally complete the
//     transaction, updating the directory. Every de-allocation row carries
//     a compl, establishing the §4.3 serialization invariant.
//
// Two rows published in the paper anchor the design: the Fig. 2/3 readex
// flow (sinv and mread issued in parallel from SI, Busy-sd -> Busy-s on
// data, -> Busy-d on the last idone), and the §4.2 dependency rows — the
// directory emits mread upon processing an idone (readex against a modified
// owner that raced a writeback), and the home memory controller answers a
// forwarded wb with a compl.
func DirectoryRules() *RuleSet {
	rs := NewRuleSet()
	addRetryRules(rs)
	addRequestRules(rs)
	addResponseRules(rs)
	return rs
}

// --- output helpers ---------------------------------------------------

// loc builds the locmsg output columns (home -> local requester).
func loc(msg string) map[string]string {
	return map[string]string{
		"locmsg": msg, "locmsgsrc": RoleHome, "locmsgdest": RoleLocal, "locmsgrsrc": QLoc,
	}
}

// rem adds the remmsg output columns (home -> remote) to set.
func rem(set map[string]string, msg string) map[string]string {
	set["remmsg"] = msg
	set["remmsgsrc"] = RoleHome
	set["remmsgdest"] = RoleRemote
	set["remmsgrsrc"] = QRem
	return set
}

// mem adds the memmsg output columns (home directory -> home memory).
func mem(set map[string]string, msg string) map[string]string {
	set["memmsg"] = msg
	set["memmsgsrc"] = RoleHome
	set["memmsgdest"] = RoleHome
	set["memmsgrsrc"] = QMem
	return set
}

// busyAlloc records allocation of a busy entry in state st; load notes that
// the pending-snoop count is loaded from the presence vector.
func busyAlloc(set map[string]string, st string, load bool) map[string]string {
	set["nxtbdirst"] = st
	set["bdiralloc"] = "alloc"
	set["bdirupd"] = "upd"
	if load {
		set["nxtbdirpv"] = PVLoad
	}
	return set
}

// busyTo records a busy-state transition; dec notes a pending-count
// decrement.
func busyTo(set map[string]string, st string, dec bool) map[string]string {
	set["nxtbdirst"] = st
	set["bdirupd"] = "upd"
	if dec {
		set["nxtbdirpv"] = PVDec
	}
	return set
}

// busyFree records de-allocation of the busy entry.
func busyFree(set map[string]string) map[string]string {
	set["nxtbdirst"] = DirI
	set["bdiralloc"] = "dealloc"
	set["bdirupd"] = "upd"
	return set
}

// dirTo records a directory update to state st with presence-vector op pv;
// alloc is "alloc", "dealloc" or "" for no allocation change.
func dirTo(set map[string]string, st, pv, alloc string) map[string]string {
	set["nxtdirst"] = st
	set["nxtdirpv"] = pv
	set["dirupd"] = "upd"
	if alloc != "" {
		set["diralloc"] = alloc
	}
	return set
}

func merge(sets ...map[string]string) map[string]string {
	out := make(map[string]string)
	for _, s := range sets {
		for k, v := range s {
			out[k] = v
		}
	}
	return out
}

func cloneSet(set map[string]string) map[string]string {
	out := make(map[string]string, len(set))
	for k, v := range set {
		out[k] = v
	}
	return out
}

// --- rule groups --------------------------------------------------------

func addRetryRules(rs *RuleSet) {
	// Cacheable requests: one row per conflicting busy state.
	for _, q := range cacheableRequests() {
		for _, b := range addressedBusyStates() {
			rs.Add(Rule{
				ID:   "retry/" + q + "@" + b,
				When: all(eq("inmsg", q), eq("bdirhit", "hit"), eq("bdirst", b)),
				Set:  loc("retry"),
			})
		}
	}
	// Uncached requests conflict only with the uncached families.
	for _, q := range uncachedRequests() {
		for _, b := range uncachedBusyStates() {
			rs.Add(Rule{
				ID:   "retry/" + q + "@" + b,
				When: all(eq("inmsg", q), eq("bdirhit", "hit"), eq("bdirst", b)),
				Set:  loc("retry"),
			})
		}
	}
	// Special requests: busy state is a dontcare.
	for _, q := range specialRequests() {
		rs.Add(Rule{
			ID:   "retry/" + q,
			When: all(eq("inmsg", q), eq("bdirhit", "hit"), "bdirst = NULL"),
			Set:  loc("retry"),
		})
	}
}

func addRequestRules(rs *RuleSet) {
	whenReq := func(q, dirst string) string {
		return all(eq("inmsg", q), eq("bdirhit", "miss"), eq("dirst", dirst))
	}
	whenUC := func(q string) string {
		return all(eq("inmsg", q), eq("bdirhit", "miss"))
	}
	add := func(id, when string, set map[string]string) {
		rs.Add(Rule{ID: id, When: when, Set: set})
	}

	// read: get a shared copy. At MESI the owner is asked to supply data
	// and downgrade.
	add("read@I", whenReq("read", DirI),
		busyAlloc(mem(map[string]string{}, "mread"), BusyState("rd", "d"), false))
	add("read@SI", whenReq("read", DirSI),
		busyAlloc(mem(map[string]string{}, "mread"), BusyState("rd", "d"), false))
	add("read@MESI", whenReq("read", DirMESI),
		busyAlloc(rem(map[string]string{}, "sread"), BusyState("rd", "w"), false))

	// readex (Fig. 2): from SI, sinv and mread are issued in parallel and
	// the entry waits in Busy-sd; from MESI the modified owner is
	// invalidated first and memory is read only after its idone (§4.2).
	add("readex@I", whenReq("readex", DirI),
		busyAlloc(mem(map[string]string{}, "mread"), BusyState("rx", "d"), false))
	add("readex@SI", whenReq("readex", DirSI),
		busyAlloc(rem(mem(map[string]string{}, "mread"), "sinv"), BusyState("rx", "sd"), true))
	add("readex@MESI", whenReq("readex", DirMESI),
		busyAlloc(rem(map[string]string{}, "sinv"), BusyState("rx", "w"), false))

	// readinv mirrors readex but leaves the line uncached.
	add("readinv@I", whenReq("readinv", DirI),
		busyAlloc(mem(map[string]string{}, "mread"), BusyState("ri", "d"), false))
	add("readinv@SI", whenReq("readinv", DirSI),
		busyAlloc(rem(mem(map[string]string{}, "mread"), "sinv"), BusyState("ri", "sd"), true))
	add("readinv@MESI", whenReq("readinv", DirMESI),
		busyAlloc(rem(map[string]string{}, "sinv"), BusyState("ri", "w"), false))

	// upgrade: S -> M without data; legal only while the line is shared.
	add("upgrade@SI", whenReq("upgrade", DirSI),
		busyAlloc(rem(map[string]string{}, "sinv"), BusyState("ug", "s"), true))
	add("upgrade@I", whenReq("upgrade", DirI), loc("nack"))
	add("upgrade@MESI", whenReq("upgrade", DirMESI), loc("nack"))

	// wb: forwarded to the home memory controller (§4.2: the wb(B)
	// request reaches D first and is forwarded to the home memory).
	add("wb@MESI", whenReq("wb", DirMESI),
		busyAlloc(mem(map[string]string{}, "wb"), BusyState("wb", "m"), false))
	add("wb@I", whenReq("wb", DirI), loc("nack"))
	add("wb@SI", whenReq("wb", DirSI), loc("nack"))

	// pwb: partial writeback keeps ownership.
	add("pwb@MESI", whenReq("pwb", DirMESI),
		busyAlloc(mem(map[string]string{}, "mwrpart"), BusyState("pw", "m"), false))
	add("pwb@I", whenReq("pwb", DirI), loc("nack"))
	add("pwb@SI", whenReq("pwb", DirSI), loc("nack"))

	// flush: push the line to memory and invalidate all copies.
	add("flush@I", whenReq("flush", DirI),
		busyAlloc(loc("flcompl"), BusyState("fl", "c"), false))
	add("flush@SI", whenReq("flush", DirSI),
		busyAlloc(rem(map[string]string{}, "sinv"), BusyState("fl", "s"), true))
	add("flush@MESI", whenReq("flush", DirMESI),
		busyAlloc(rem(map[string]string{}, "sflush"), BusyState("fl", "sm"), false))

	// replhint: a sharer dropped its copy; adjust the vector in place.
	add("replhint@SI", whenReq("replhint", DirSI),
		merge(loc("replack"), map[string]string{"nxtdirpv": PVDRepl, "dirupd": "upd"}))
	add("replhint@I", whenReq("replhint", DirI), loc("nack"))
	add("replhint@MESI", whenReq("replhint", DirMESI), loc("nack"))

	// prefetch: pull a shared copy from memory; never disturbs an owner.
	add("prefetch@I", whenReq("prefetch", DirI),
		busyAlloc(mem(map[string]string{}, "mread"), BusyState("pf", "d"), false))
	add("prefetch@SI", whenReq("prefetch", DirSI),
		busyAlloc(mem(map[string]string{}, "mread"), BusyState("pf", "d"), false))
	add("prefetch@MESI", whenReq("prefetch", DirMESI), loc("nack"))

	// Uncached, I/O and atomic requests bypass the directory.
	add("ioread", whenUC("ioread"),
		busyAlloc(mem(map[string]string{}, "mread"), BusyState("ior", "d"), false))
	add("iowrite", whenUC("iowrite"),
		busyAlloc(mem(map[string]string{}, "mwrite"), BusyState("iow", "m"), false))
	add("ucread", whenUC("ucread"),
		busyAlloc(mem(map[string]string{}, "mread"), BusyState("ucr", "d"), false))
	add("ucwrite", whenUC("ucwrite"),
		busyAlloc(mem(map[string]string{}, "mwrite"), BusyState("ucw", "m"), false))
	add("fetchadd", whenUC("fetchadd"),
		busyAlloc(mem(map[string]string{}, "mrmw"), BusyState("at", "dm"), false))

	// sync: acknowledged once the directory pipeline is drained.
	add("sync", whenUC("sync"),
		busyAlloc(loc("syncack"), BusyState("sy", "c"), false))

	// intr: forwarded to the remote processor.
	add("intr", whenUC("intr"),
		busyAlloc(rem(map[string]string{}, "intr"), BusyState("in", "a"), false))
}

func addResponseRules(rs *RuleSet) {
	whenResp := func(msg, st, pv string) string {
		conds := []string{eq("inmsg", msg), eq("bdirst", st)}
		if pv != "" {
			conds = append(conds, eq("bdirpv", pv))
		}
		return all(conds...)
	}
	add := func(id string, when string, set map[string]string) {
		rs.Add(Rule{ID: id, When: when, Set: set})
	}
	// complClose closes a transaction's -c state.
	complClose := func(txn string) {
		add(txn+"/c+compl", all(eq("inmsg", "compl"), eq("inmsgsrc", RoleLocal),
			eq("bdirst", BusyState(txn, "c"))), busyFree(map[string]string{}))
	}

	// read.
	rdDone := func(pv string, alloc string) map[string]string {
		return dirTo(merge(loc("data"), busyTo(map[string]string{}, BusyState("rd", "c"), false)),
			DirSI, pv, alloc)
	}
	add("rd/d+mdata", whenResp("mdata", BusyState("rd", "d"), ""), rdDone(PVInc, "alloc"))
	add("rd/w+sdata", whenResp("sdata", BusyState("rd", "w"), ""), rdDone(PVInc, ""))
	add("rd/w+sdone", whenResp("sdone", BusyState("rd", "w"), ""),
		busyTo(mem(map[string]string{}, "mread"), BusyState("rd", "d"), false))
	add("rd/w+swbdata", whenResp("swbdata", BusyState("rd", "w"), ""), rdDone(PVRepl, ""))
	complClose("rd")

	// readex and readinv share the two-phase shape; they differ in the
	// completion message and final directory state.
	type exDone struct {
		msg   string
		dirst string
		pv    string
		alloc string
	}
	dones := map[string]exDone{
		"rx": {"datax", DirMESI, PVRepl, "alloc"},
		"ri": {"data", DirI, PVClear, "dealloc"},
	}
	for _, txn := range []string{"rx", "ri"} {
		d := dones[txn]
		sd, sSt, dSt, w, c := BusyState(txn, "sd"), BusyState(txn, "s"), BusyState(txn, "d"), BusyState(txn, "w"), BusyState(txn, "c")
		complete := dirTo(merge(loc(d.msg), busyTo(map[string]string{}, c, false)), d.dirst, d.pv, d.alloc)

		// Fig. 2/3: Busy-sd -> Busy-s on data, -> Busy-d on last idone.
		add(txn+"/sd+mdata", whenResp("mdata", sd, ""), busyTo(map[string]string{}, sSt, false))
		add(txn+"/sd+idone.gone", whenResp("idone", sd, PVGone), busyTo(map[string]string{}, sd, true))
		add(txn+"/sd+idone.one", whenResp("idone", sd, PVOne), busyTo(map[string]string{}, dSt, false))
		add(txn+"/s+idone.gone", whenResp("idone", sSt, PVGone), busyTo(map[string]string{}, sSt, true))
		add(txn+"/s+idone.one", whenResp("idone", sSt, PVOne), cloneSet(complete))
		add(txn+"/d+mdata", whenResp("mdata", dSt, ""), cloneSet(complete))
		// §4.2: the modified owner was invalidated (its writeback raced);
		// only now is memory read — the idone -> mread dependency row.
		add(txn+"/w+idone", whenResp("idone", w, PVOne),
			busyTo(mem(map[string]string{}, "mread"), dSt, false))
		add(txn+"/w+swbdata", whenResp("swbdata", w, ""), cloneSet(complete))
		complClose(txn)
	}

	// upgrade: counted invalidations, then grant.
	ugS := BusyState("ug", "s")
	add("ug/s+idone.gone", whenResp("idone", ugS, PVGone), busyTo(map[string]string{}, ugS, true))
	add("ug/s+idone.one", whenResp("idone", ugS, PVOne),
		dirTo(merge(loc("upgack"), busyTo(map[string]string{}, BusyState("ug", "c"), false)), DirMESI, PVRepl, ""))
	complClose("ug")

	// wb: the forwarded writeback is completed by the home memory
	// controller's compl (§4.2), then ownership is released.
	add("wb/m+compl", all(eq("inmsg", "compl"), eq("inmsgsrc", RoleHome), eq("bdirst", BusyState("wb", "m"))),
		dirTo(merge(loc("wbcompl"), busyTo(map[string]string{}, BusyState("wb", "c"), false)), DirI, PVClear, "dealloc"))
	complClose("wb")

	// pwb: memory write, ownership retained.
	add("pw/m+mdone", whenResp("mdone", BusyState("pw", "m"), ""),
		merge(loc("wbcompl"), busyTo(map[string]string{}, BusyState("pw", "c"), false)))
	complClose("pw")

	// flush.
	flDone := dirTo(merge(loc("flcompl"), busyTo(map[string]string{}, BusyState("fl", "c"), false)), DirI, PVClear, "dealloc")
	add("fl/s+idone.gone", whenResp("idone", BusyState("fl", "s"), PVGone),
		busyTo(map[string]string{}, BusyState("fl", "s"), true))
	add("fl/s+idone.one", whenResp("idone", BusyState("fl", "s"), PVOne), cloneSet(flDone))
	add("fl/sm+sdata", whenResp("sdata", BusyState("fl", "sm"), ""),
		busyTo(mem(map[string]string{}, "mwrite"), BusyState("fl", "m"), false))
	add("fl/sm+swbdata", whenResp("swbdata", BusyState("fl", "sm"), ""),
		busyTo(mem(map[string]string{}, "mwrite"), BusyState("fl", "m"), false))
	add("fl/m+mdone", whenResp("mdone", BusyState("fl", "m"), ""), cloneSet(flDone))
	complClose("fl")

	// prefetch.
	add("pf/d+mdata", whenResp("mdata", BusyState("pf", "d"), ""),
		dirTo(merge(loc("pfdata"), busyTo(map[string]string{}, BusyState("pf", "c"), false)), DirSI, PVInc, "alloc"))
	complClose("pf")

	// I/O and uncached accesses.
	add("ior/d+mdata", whenResp("mdata", BusyState("ior", "d"), ""),
		merge(loc("iodata"), busyTo(map[string]string{}, BusyState("ior", "c"), false)))
	complClose("ior")
	add("iow/m+mdone", whenResp("mdone", BusyState("iow", "m"), ""),
		merge(loc("iocompl"), busyTo(map[string]string{}, BusyState("iow", "c"), false)))
	complClose("iow")
	add("ucr/d+mdata", whenResp("mdata", BusyState("ucr", "d"), ""),
		merge(loc("ucdata"), busyTo(map[string]string{}, BusyState("ucr", "c"), false)))
	complClose("ucr")
	add("ucw/m+mdone", whenResp("mdone", BusyState("ucw", "m"), ""),
		merge(loc("uccompl"), busyTo(map[string]string{}, BusyState("ucw", "c"), false)))
	complClose("ucw")

	// fetchadd: memory returns the old value and the write done, in
	// either order.
	atDM, atD, atM := BusyState("at", "dm"), BusyState("at", "d"), BusyState("at", "m")
	add("at/dm+mdata", whenResp("mdata", atDM, ""), busyTo(map[string]string{}, atM, false))
	add("at/dm+mdone", whenResp("mdone", atDM, ""), busyTo(map[string]string{}, atD, false))
	add("at/m+mdone", whenResp("mdone", atM, ""),
		merge(loc("atdata"), busyTo(map[string]string{}, BusyState("at", "c"), false)))
	add("at/d+mdata", whenResp("mdata", atD, ""),
		merge(loc("atdata"), busyTo(map[string]string{}, BusyState("at", "c"), false)))
	complClose("at")

	// sync and interrupt.
	complClose("sy")
	add("in/a+intrack", whenResp("intrack", BusyState("in", "a"), ""),
		merge(loc("intrack"), busyTo(map[string]string{}, BusyState("in", "c"), false)))
	complClose("in")
}
