package protocol

import (
	"fmt"
	"strings"

	"coherdb/internal/constraint"
)

// Rule is one controller transition case: when the input condition When
// holds, the output columns take the values in Set (outputs not listed are
// NULL, i.e. noop). Rules are the authoring form; they compile into the
// paper's per-column ternary constraint chains:
//
//	when1 ? col = v1 : when2 ? col = v2 : ... : col = NULL
//
// so the spec handed to the solver is exactly the paper's database input.
// A rule's When must be written over input columns only; the first matching
// rule (in order) defines every output of a row.
type Rule struct {
	// ID identifies the rule in diagnostics, e.g. "readex@SI".
	ID string
	// When is an input condition in the constraint dialect.
	When string
	// Set maps output columns to their values. The special value "NULL"
	// (or an absent column) means noop.
	Set map[string]string
}

// RuleSet accumulates rules for one controller spec and compiles them.
type RuleSet struct {
	rules []Rule
	ids   map[string]struct{}
}

// NewRuleSet returns an empty rule set.
func NewRuleSet() *RuleSet {
	return &RuleSet{ids: make(map[string]struct{})}
}

// Add appends a rule. Duplicate IDs panic: protocol specs are static and a
// duplicate is an authoring bug.
func (rs *RuleSet) Add(r Rule) {
	if r.ID == "" {
		panic("protocol: rule without ID")
	}
	if _, dup := rs.ids[r.ID]; dup {
		panic(fmt.Sprintf("protocol: duplicate rule ID %q", r.ID))
	}
	rs.ids[r.ID] = struct{}{}
	rs.rules = append(rs.rules, r)
}

// Addf is Add with a formatted ID.
func (rs *RuleSet) Addf(idFormat string, args []any, when string, set map[string]string) {
	rs.Add(Rule{ID: fmt.Sprintf(idFormat, args...), When: when, Set: set})
}

// Len returns the number of rules.
func (rs *RuleSet) Len() int { return len(rs.rules) }

// Rules returns the rules in order.
func (rs *RuleSet) Rules() []Rule { return append([]Rule(nil), rs.rules...) }

// CompileInto attaches the compiled constraints to spec: one ternary chain
// per output column (over the rules that mention it, in priority order),
// and a legality disjunction over all rule conditions attached to
// legalityCol (pass "" to skip the legality constraint when per-column
// input constraints already define legality exactly).
func (rs *RuleSet) CompileInto(spec *constraint.Spec, legalityCol string, outputs []string) error {
	if legalityCol != "" {
		var sb strings.Builder
		for i, r := range rs.rules {
			if i > 0 {
				sb.WriteString(" or ")
			}
			sb.WriteString("(")
			sb.WriteString(r.When)
			sb.WriteString(")")
		}
		if err := spec.Constrain(legalityCol, sb.String()); err != nil {
			return fmt.Errorf("protocol: legality constraint: %w", err)
		}
	}
	for _, col := range outputs {
		expr := rs.chainFor(col)
		if expr == "" {
			continue
		}
		if err := spec.Constrain(col, expr); err != nil {
			return fmt.Errorf("protocol: constraint for %s: %w", col, err)
		}
	}
	return nil
}

// chainFor builds the ternary constraint chain for one output column.
// Every rule participates (with NULL when it does not set the column) so
// that rule priority is preserved even for overlapping conditions.
func (rs *RuleSet) chainFor(col string) string {
	var sb strings.Builder
	any := false
	for _, r := range rs.rules {
		v, ok := r.Set[col]
		if ok && v != "NULL" {
			any = true
		}
	}
	if !any {
		// A column no rule ever sets is noop everywhere.
		return col + " = NULL"
	}
	for _, r := range rs.rules {
		v, ok := r.Set[col]
		if !ok {
			v = "NULL"
		}
		sb.WriteString("(")
		sb.WriteString(r.When)
		sb.WriteString(") ? ")
		sb.WriteString(col)
		sb.WriteString(" = ")
		sb.WriteString(quoteVal(v))
		sb.WriteString(" : ")
	}
	// No rule matched: output must be NULL (such rows are pruned by the
	// legality constraint anyway).
	sb.WriteString(col)
	sb.WriteString(" = NULL")
	return sb.String()
}

// quoteVal renders a rule value as a constraint literal. "NULL" stays the
// NULL keyword; everything else becomes a double-quoted symbol so hyphened
// state names parse unambiguously.
func quoteVal(v string) string {
	if v == "NULL" {
		return "NULL"
	}
	return `"` + v + `"`
}

// LegalityExpr returns the OR of all rule conditions — the set of legal
// input combinations covered by the rules.
func (rs *RuleSet) LegalityExpr() string {
	var sb strings.Builder
	for i, r := range rs.rules {
		if i > 0 {
			sb.WriteString(" or ")
		}
		sb.WriteString("(")
		sb.WriteString(r.When)
		sb.WriteString(")")
	}
	return sb.String()
}

// eq builds the atom `col = "value"` (or `col = NULL`).
func eq(col, val string) string { return col + " = " + quoteVal(val) }

// ne builds the atom `col <> "value"` (or `col <> NULL`).
func ne(col, val string) string { return col + " <> " + quoteVal(val) }

// in builds `col in ("a", "b", ...)`.
func in(col string, vals ...string) string {
	var sb strings.Builder
	sb.WriteString(col)
	sb.WriteString(" in (")
	for i, v := range vals {
		if i > 0 {
			sb.WriteString(", ")
		}
		sb.WriteString(quoteVal(v))
	}
	sb.WriteString(")")
	return sb.String()
}

// all joins conditions with and.
func all(conds ...string) string {
	return "(" + strings.Join(conds, " and ") + ")"
}

// anyOf joins conditions with or.
func anyOf(conds ...string) string {
	return "(" + strings.Join(conds, " or ") + ")"
}
